(** OpenStack-Nova-style integration (section 4.5.2).

    Sysadmins never touch hypervisors directly (section 4.5.1) — they
    call the cloud orchestrator, which drives hosts through a generic
    ComputeDriver.  HyperTP adds one operation to that interface: "host
    live upgrade", implemented with guest-state saving (akin to
    suspend), kexec of the new hypervisor, and guest-state restoring
    (akin to resume).  This module operates on {e real} simulated hosts
    ({!Hv.Host.t}), unlike the abstract planner in {!Btrplace}. *)

type driver = {
  driver_name : string;
  suspend : Hv.Host.t -> string -> unit;
  resume : Hv.Host.t -> string -> unit;
  live_migration :
    src:Hv.Host.t -> dst:Hv.Host.t -> vm:string -> Hypertp.Migrate.report;
  host_live_upgrade :
    Hv.Host.t -> target:Hv.Kind.t -> Hypertp.Inplace.report;
}

val libvirt_driver : driver
(** The generic-library path every surveyed orchestrator uses. *)

type t

val create : ?driver:driver -> unit -> t
val add_host : t -> Hv.Host.t -> unit
val hosts : t -> Hv.Host.t list
val host_of_vm : t -> string -> string option
(** Nova's database view of instance placement. *)

val instances : t -> (string * string) list
(** (vm, host) pairs, sorted by VM name. *)

val db_consistent : t -> bool
(** The database matches reality on every host. *)

type upgrade_report = {
  host : string;
  migrated_away : (string * string) list; (** (vm, destination host) *)
  inplace : Hypertp.Inplace.report option; (** None if host was left empty *)
}

val host_live_upgrade :
  t -> host:string -> target:Hv.Kind.t -> upgrade_report
(** The new one-click API: migrate away the VMs that do not support
    InPlaceTP (Evacuate-style, choosing the least-loaded other host),
    transplant the rest in place, update the database.  Raises
    [Invalid_argument] on unknown hosts or if an evacuation cannot be
    placed. *)

val schedule_instance : t -> Vmstate.Vm.config -> string
(** The HyperTP-aware scheduler filter (section 4.5.2, item 4): among
    hosts with capacity, prefer those whose resident VMs share the new
    instance's InPlaceTP-compatibility — keeping transplantable VMs
    together so whole hosts upgrade with a single kexec and the rest
    evacuate wholesale.  Ties break toward the least-loaded host.
    Raises [Invalid_argument] when no host has capacity. *)

val boot_instance : t -> ?host:string -> Vmstate.Vm.config -> string
(** Create the instance on the given (or scheduled) host and record it
    in Nova's database; returns the chosen host. *)

val affinity_score : t -> string -> float
(** Fraction of the majority compatibility class on a host (1.0 = all
    VMs agree) — the metric the filter optimises. *)
