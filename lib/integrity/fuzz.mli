(** Seeded corruption-fuzzing harness for the UISR salvage decoder.

    Each case mutates a pristine encoded blob with one {!Corrupt}
    mutator and feeds it to {!Uisr.Codec.decode_verified}.  The decoder
    must hold two properties over every applied case: it never raises,
    and it never classifies a mutant as [Intact].  Salvaged-vs-rejected
    proportions are reported, quantifying how much of the damage the
    per-section checksums can recover from. *)

type stats = {
  cases : int;
  applied : int;   (** mutations producing a blob distinct from the input *)
  skipped : int;   (** inapplicable mutations *)
  raised : int;    (** decode_verified raised — must be 0 *)
  intact_accepted : int;  (** mutants classified [Intact] — must be 0 *)
  salvaged : int;
  rejected : int;
  pristine_intact : bool;
      (** every unmutated pool blob classified [Intact] *)
  by_kind : (Corrupt.kind * int) list;  (** applied count per mutator *)
}

val ok : stats -> bool
(** No raises, no mutants accepted as pristine, pristine pool intact,
    and at least one mutation applied. *)

val run :
  ?vcpus:int -> ?ram_mib:int -> seed:int64 -> cases:int -> unit -> stats
(** [run ~seed ~cases ()] fuzzes [cases] mutated blobs drawn over a
    pool of {!Gen} states.  Deterministic in [seed].  Raises
    [Invalid_argument] on a non-positive [cases]. *)

val pp : Format.formatter -> stats -> unit
