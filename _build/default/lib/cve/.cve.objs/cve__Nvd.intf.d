lib/cve/nvd.mli: Cvss Format
