type t = Xen | Kvm | Bhyve
type hv_type = Type1 | Type2

let equal a b =
  match (a, b) with
  | Xen, Xen | Kvm, Kvm | Bhyve, Bhyve -> true
  | (Xen | Kvm | Bhyve), _ -> false

let all = [ Xen; Kvm; Bhyve ]
let other = function Xen -> Kvm | Kvm -> Xen | Bhyve -> Kvm
let to_string = function Xen -> "xen" | Kvm -> "kvm" | Bhyve -> "bhyve"

let of_string = function
  | "xen" | "Xen" -> Some Xen
  | "kvm" | "KVM" -> Some Kvm
  | "bhyve" | "Bhyve" -> Some Bhyve
  | _ -> None

let platform = function
  | Xen -> Workload.Profile.P_xen
  | Kvm -> Workload.Profile.P_kvm
  | Bhyve -> Workload.Profile.P_bhyve

let pp fmt t = Format.pp_print_string fmt (to_string t)

let pp_hv_type fmt = function
  | Type1 -> Format.pp_print_string fmt "type-I"
  | Type2 -> Format.pp_print_string fmt "type-II"
