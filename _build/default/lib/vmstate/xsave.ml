type component = { id : int; data : int64 array }

type t = { xcr0 : int64; xstate_bv : int64; components : component list }

(* Component payload sizes (in 64-bit words), matching the
   architectural XSAVE area: 512-byte legacy region, 256 bytes of XMM
   registers, 256 bytes of YMM high halves. *)
let component_words = function
  | 0 -> 64 (* legacy x87/FXSAVE region *)
  | 1 -> 32 (* XMM *)
  | 2 -> 32 (* YMM high halves *)
  | _ -> 8

let generate rng =
  let ids = [ 0; 1; 2 ] in
  let components =
    List.map
      (fun id ->
        { id; data = Array.init (component_words id) (fun _ -> Sim.Rng.int64 rng) })
      ids
  in
  let bv =
    List.fold_left (fun acc id -> Int64.logor acc (Int64.shift_left 1L id)) 0L ids
  in
  { xcr0 = bv; xstate_bv = bv; components }

let equal a b =
  Int64.equal a.xcr0 b.xcr0
  && Int64.equal a.xstate_bv b.xstate_bv
  && List.length a.components = List.length b.components
  && List.for_all2
       (fun (x : component) y ->
         x.id = y.id && Array.for_all2 Int64.equal x.data y.data)
       a.components b.components

let size_bytes t =
  let header = 64 in
  List.fold_left
    (fun acc c -> acc + (8 * Array.length c.data))
    header t.components

let pp fmt t =
  Format.fprintf fmt "xsave[xcr0=%Lx, %d components, %dB]" t.xcr0
    (List.length t.components) (size_bytes t)
