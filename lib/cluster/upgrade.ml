type timing = {
  migration_count : int;
  inplace_vm_count : int;
  migration_time : Sim.Time.t;
  upgrade_tail : Sim.Time.t;
  total : Sim.Time.t;
}

(* Per-action setup: BtrPlace/Nova round-trips, pre-migration checks,
   storage hand-off.  Calibrated so a ~150-migration plan lands near the
   paper's "up to 19 minutes". *)
let migration_setup = Sim.Time.of_sec_f 3.5

(* Both estimates are pure in a small profile key — (nic, RAM,
   workload) and the riding-VM count respectively — but campaign
   planning asks for them once per host.  Memoised so a 10k-host fleet
   computes each distinct profile once instead of building 10k
   identical Precopy plans and boot models. *)
let mig_memo :
    (Hw.Nic.t * Hw.Units.bytes_ * Vmstate.Vm.workload_kind, Sim.Time.t)
    Hypertp.Costs.Memo.t =
  Hypertp.Costs.Memo.create 64

let migration_op_time ~nic ~(vm : Model.vm) =
  Hypertp.Costs.Memo.find_or_add mig_memo
    (nic, vm.Model.ram, vm.Model.workload)
    (fun (nic, ram, workload) ->
      let params = Migration.Precopy.default_params ~nic () in
      let plan =
        Migration.Precopy.plan params ~page_bytes:Hw.Units.page_size_4k
          ~total_pages:(Hw.Units.frames_of_bytes ram)
          ~dirty_pages_per_sec:
            (Workload.Profile.dirty_pages_per_sec workload ~ram
               ~page_kind:Hw.Units.Page_2m)
      in
      Sim.Time.sum
        [ migration_setup; plan.Migration.Precopy.precopy_time;
          plan.Migration.Precopy.stop_copy_time ])

let inplace_memo : (int, Sim.Time.t) Hypertp.Costs.Memo.t =
  Hypertp.Costs.Memo.create 16

let inplace_host_time ~vms =
  (* kexec into the target on a G5K node + per-VM translate/restore.
     Host-level, not per-VM downtime: boot dominates.  The same estimate
     feeds Campaign's straggler deadlines. *)
  Hypertp.Costs.Memo.find_or_add inplace_memo vms (fun vms ->
      let machine = Hw.Machine.g5k_node () in
      let boot = Sim.Time.to_sec_f (Xenhv.Xen.boot_time ~machine) in
      Sim.Time.of_sec_f
        (Hypertp.Costs.expected_host_upgrade_seconds ~boot_seconds:boot ~vms))

let reboot_host_time = Sim.Time.sec 60 (* firmware + full kernel boot *)

let execute ~nic (plan : Btrplace.plan) =
  Hypertp.Log.info (fun m ->
      m "upgrade: executing plan with %d migrations, %d VMs in place"
        plan.Btrplace.migration_count plan.Btrplace.inplace_vm_count);
  let migration_time = ref Sim.Time.zero in
  let last_upgrade = ref Sim.Time.zero in
  Array.iter
    (fun action ->
      match action with
      | Btrplace.Migrate { vm; src; dst } ->
        let op = migration_op_time ~nic ~vm in
        Hypertp.Log.debug (fun m ->
            m "upgrade: migrate %s %s -> %s (%a)" vm.Model.vm_name src dst
              Sim.Time.pp op);
        migration_time := Sim.Time.add !migration_time op
      | Btrplace.Upgrade_inplace { node; vms_in_place } ->
        Hypertp.Log.debug (fun m ->
            m "upgrade: in-place %s with %d VMs riding" node vms_in_place);
        last_upgrade :=
          (if vms_in_place > 0 then inplace_host_time ~vms:vms_in_place
           else reboot_host_time)
      | Btrplace.Take_offline _ | Btrplace.Bring_online _ -> ())
    plan.Btrplace.actions;
  let t =
    {
      migration_count = plan.Btrplace.migration_count;
      inplace_vm_count = plan.Btrplace.inplace_vm_count;
      migration_time = !migration_time;
      upgrade_tail = !last_upgrade;
      total = Sim.Time.add !migration_time !last_upgrade;
    }
  in
  Hypertp.Log.info (fun m ->
      m "upgrade: plan executed, total %a" Sim.Time.pp t.total);
  t

let sweep ?(nodes = 10) ?(vms_per_node = 10) ~fractions () =
  let nic = Hw.Nic.create ~bandwidth_gbps:10.0 () in
  List.map
    (fun fraction ->
      let model =
        Model.make ~nodes ~vms_per_node ~vm_ram:(Hw.Units.gib 4)
          ~node_ram:(Hw.Units.gib 96) ~inplace_fraction:fraction
          ~workload_mix:
            [ (Vmstate.Vm.Wl_streaming, 0.3); (Vmstate.Vm.Wl_spec "mcf", 0.3);
              (Vmstate.Vm.Wl_idle, 0.4) ]
          ()
      in
      let plan = Btrplace.plan_upgrade model in
      assert (Btrplace.capacity_safe model);
      (fraction, execute ~nic plan))
    fractions

(* ---- Fault-aware execution: per-host InPlaceTP failure fallback ---- *)

type fallback = Migrate_and_reboot | Recovered_reboot

type host_failure = {
  failed_node : string;
  failed_vms : int;
  fallback : fallback;
  added : Sim.Time.t;
}

type faulty_timing = {
  base : timing;
  failures : host_failure list;
  vms_inplace_ok : int;
  vms_migrated_fallback : int;
  vms_recovered : int;
  added_time : Sim.Time.t;
  total_with_faults : Sim.Time.t;
}

let vms_accounted t =
  t.vms_inplace_ok + t.vms_migrated_fallback + t.vms_recovered

let execute_faulty ?ctx ?fault ?(fallback_vm_ram = Hw.Units.gib 4)
    ?(fallback_workload = Vmstate.Vm.Wl_idle) ~nic (plan : Btrplace.plan) =
  let fault = (Hypertp.Ctx.resolve ?ctx ?fault ()).Hypertp.Ctx.fault in
  let base = execute ~nic plan in
  let fire ~vm site =
    match fault with Some f -> Fault.fire f ~vm site | None -> false
  in
  let failures = ref [] in
  let ok = ref 0 and migrated = ref 0 and recovered = ref 0 in
  let added = ref Sim.Time.zero in
  Array.iter
    (fun action ->
      match action with
      | Btrplace.Upgrade_inplace { node; vms_in_place } when vms_in_place > 0 ->
        if fire ~vm:node Fault.Host_crash then begin
          (* Whether the fault landed before or after the host's
             point-of-no-return is decided by a per-host RNG that is
             independent of the fault plan's stream, so raising the
             failure probability never perturbs which hosts fail. *)
          let coin = Sim.Rng.create (Int64.of_int (Hashtbl.hash node)) in
          let pre_pnr = Sim.Rng.float coin 1.0 < 0.5 in
          let failure =
            if pre_pnr then begin
              (* InPlaceTP rolled back: VMs are intact on the source, so
                 fall back to MigrationTP-draining the host, then reboot
                 it empty. *)
              let vm i =
                {
                  Model.vm_name = Printf.sprintf "%s-fb%d" node i;
                  ram = fallback_vm_ram;
                  inplace_compatible = false;
                  workload = fallback_workload;
                }
              in
              let drain =
                Sim.Time.sum
                  (List.init vms_in_place (fun i ->
                       migration_op_time ~nic ~vm:(vm i)))
              in
              migrated := !migrated + vms_in_place;
              Hypertp.Log.warn (fun m ->
                  m "upgrade: %s failed pre-PNR; draining %d VMs then \
                     rebooting"
                    node vms_in_place);
              {
                failed_node = node;
                failed_vms = vms_in_place;
                fallback = Migrate_and_reboot;
                added = Sim.Time.add drain reboot_host_time;
              }
            end
            else begin
              (* Post-PNR: the ReHype-style ladder recovered the VMs on
                 the target, at the cost of a full host reboot. *)
              recovered := !recovered + vms_in_place;
              Hypertp.Log.warn (fun m ->
                  m "upgrade: %s failed post-PNR; %d VMs recovered, full \
                     reboot"
                    node vms_in_place);
              {
                failed_node = node;
                failed_vms = vms_in_place;
                fallback = Recovered_reboot;
                added = reboot_host_time;
              }
            end
          in
          failures := failure :: !failures;
          added := Sim.Time.add !added failure.added
        end
        else ok := !ok + vms_in_place
      | Btrplace.Upgrade_inplace _ | Btrplace.Migrate _
      | Btrplace.Take_offline _ | Btrplace.Bring_online _ ->
        ())
    plan.Btrplace.actions;
  {
    base;
    failures = List.rev !failures;
    vms_inplace_ok = !ok;
    vms_migrated_fallback = !migrated;
    vms_recovered = !recovered;
    added_time = !added;
    total_with_faults = Sim.Time.add base.total !added;
  }

let sweep_faulty ?(nodes = 10) ?(vms_per_node = 10) ?(seed = 0xC1A5L)
    ~probabilities () =
  let nic = Hw.Nic.create ~bandwidth_gbps:10.0 () in
  List.map
    (fun p ->
      let model =
        Model.make ~nodes ~vms_per_node ~vm_ram:(Hw.Units.gib 4)
          ~node_ram:(Hw.Units.gib 96) ~inplace_fraction:1.0
          ~workload_mix:
            [ (Vmstate.Vm.Wl_streaming, 0.3); (Vmstate.Vm.Wl_spec "mcf", 0.3);
              (Vmstate.Vm.Wl_idle, 0.4) ]
          ()
      in
      let plan = Btrplace.plan_upgrade model in
      assert (Btrplace.capacity_safe model);
      let fault =
        Fault.make ~seed
          [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability p } ]
      in
      (p, execute_faulty ~fault ~nic plan))
    probabilities

let pp_timing fmt t =
  Format.fprintf fmt
    "%d migrations (%a) + %d VMs in place (tail %a) => total %a"
    t.migration_count Sim.Time.pp t.migration_time t.inplace_vm_count
    Sim.Time.pp t.upgrade_tail Sim.Time.pp t.total

let pp_faulty_timing fmt t =
  Format.fprintf fmt
    "%a; %d host failures (+%a): %d VMs in place ok, %d drained by fallback \
     migration, %d recovered post-PNR => total %a"
    pp_timing t.base (List.length t.failures) Sim.Time.pp t.added_time
    t.vms_inplace_ok t.vms_migrated_fallback t.vms_recovered Sim.Time.pp
    t.total_with_faults
