(** Deterministic sharded execution of independent simulation tasks.

    A fleet is partitioned into region shards, each simulated by a pure
    task (own {!Engine}, own derived seed).  {!map} runs the tasks
    under one of three schedules and always returns results in
    task-index order, so for pure tasks all modes produce an identical
    result array — the mode decides wall-clock, never bytes:

    - [Sequential] — tasks in index order on the calling domain.
    - [Rotated k] — [k] rotation batches on the calling domain (batch
      [r] serves tasks [r, r+k, r+2k, ...]); a different execution
      order, the same results.  The sequential fallback schedule for
      sharded fleets.
    - [Parallel {shards; domains}] — tasks grouped into [shards]
      contiguous chunks, dealt to [domains] stdlib domains through an
      atomic counter.

    Exceptions raised by a task are re-raised in the calling domain
    (parallel workers stop dealing new chunks once one failed). *)

type mode =
  | Sequential
  | Rotated of int
  | Parallel of { shards : int; domains : int }

val validate : mode -> (unit, string) result
(** [Rotated k] needs [k >= 1]; [Parallel] needs both counts [>= 1]. *)

val to_string : mode -> string
(** ["seq"], ["rotated:K"] or ["parallel:SxD"]; inverse of
    {!of_string}. *)

val of_string : string -> (mode, string) result
(** Accepts ["seq"]/["sequential"], ["rotated:K"]/["rot:K"],
    ["parallel:SxD"]/["par:SxD"] and ["parallel:S"] (domains = S). *)

val shards_used : mode -> int -> int
(** Worker batches the mode actually uses over [n] tasks (clamped to
    [n]); benchmark metadata. *)

val domains_used : mode -> int -> int
(** Domains the mode actually spawns over [n] tasks (1 unless
    [Parallel]); benchmark metadata. *)

val map : mode -> int -> (int -> 'a) -> 'a array
(** [map mode n f] computes [\[| f 0; ...; f (n-1) |\]] under the
    mode's schedule.  [f] must be pure (up to its own engine state) and
    safe to call from another domain when the mode is [Parallel].
    Raises [Invalid_argument] on a negative [n] or an invalid mode. *)
