(** A span: a named interval of virtual time with attributes and
    point-in-time event annotations.

    Spans are created and closed by {!Tracer}; all timestamps come from
    {!Sim.Time} (never the wall clock), so a trace of a seeded run is
    deterministic and replayable.  A span belongs to a [track] — the
    horizontal lane exporters render it on (one per engine, host or
    VM) — and may name a parent span for logical nesting. *)

type id = int

type kind =
  | Interval  (** has a start and, once finished, a stop *)
  | Instant   (** a zero-length point event *)

type t

val id : t -> id
val parent : t -> id option
val name : t -> string
val track : t -> string
val kind : t -> kind

val start : t -> Sim.Time.t

val stop : t -> Sim.Time.t option
(** [None] while the span is still open (or was never finished). *)

val duration : t -> Sim.Time.t option
(** [stop - start]; [None] while open. *)

val attrs : t -> (string * string) list
(** Key/value attributes, in the order they were attached. *)

val events : t -> (Sim.Time.t * string) list
(** Point annotations inside the span, in the order they were added. *)

val set_attr : t -> string -> string -> unit
(** Attach (or append — duplicate keys are kept) an attribute. *)

val add_event : t -> at:Sim.Time.t -> string -> unit

val pp : Format.formatter -> t -> unit

(**/**)

val make :
  id:id -> ?parent:id -> kind:kind -> track:string ->
  attrs:(string * string) list -> at:Sim.Time.t -> string -> t
(** Used by {!Tracer}; not part of the public surface. *)

val finish : t -> at:Sim.Time.t -> unit
