(* The single fleet-shape value.  Regions -> hosts -> VMs, with
   optional per-region staged-spare pools and wire budgets.  Every
   fleet-level entry point ([Fleet.simulate], [Campaign.run_fleet],
   [Controlplane.config_of_topology], [Stream.Service.mix_of_topology])
   consumes one of these instead of ad-hoc host-count integers; the
   legacy int arguments are deprecated wrappers that build a [flat]
   or [uniform] topology and stay byte-identical. *)

type region = {
  rg_name : string;
  rg_hosts : int;
  rg_vms_per_host : int;
  rg_spares : int;  (* staged spare lanes; 0 = inherit the campaign config *)
  rg_wire_budget : int option;  (* bytes on the wire; None = unlimited *)
}

type t = { tp_regions : region array }

let site = "Topology"

let region ?(spares = 0) ?wire_budget ~name ~hosts ~vms_per_host () =
  { rg_name = name; rg_hosts = hosts; rg_vms_per_host = vms_per_host;
    rg_spares = spares; rg_wire_budget = wire_budget }

let regions t = t.tp_regions
let n_regions t = Array.length t.tp_regions

let hosts t =
  Array.fold_left (fun acc r -> acc + r.rg_hosts) 0 t.tp_regions

let vms t =
  Array.fold_left (fun acc r -> acc + (r.rg_hosts * r.rg_vms_per_host)) 0
    t.tp_regions

let region_name i = "r" ^ string_of_int i

let make regions =
  { tp_regions = Array.of_list regions }

(* [hosts] is the fleet total, split as evenly as possible with the
   remainder on the lowest region indices — the same split rule the
   control plane uses for its admission budget. *)
let uniform ?(spares = 0) ?wire_budget ~regions ~hosts ~vms_per_host () =
  if regions < 1 then
    Hypertp_error.raise_error ~site "uniform: need at least one region";
  let base = hosts / regions and rem = hosts mod regions in
  {
    tp_regions =
      Array.init regions (fun i ->
          {
            rg_name = region_name i;
            rg_hosts = (base + if i < rem then 1 else 0);
            rg_vms_per_host = vms_per_host;
            rg_spares = spares;
            rg_wire_budget = wire_budget;
          });
  }

(* One anonymous region holding the whole fleet: the shape every legacy
   [~hosts]/[~vms_per_host] entry point maps to. *)
let flat ~hosts ~vms_per_host =
  {
    tp_regions =
      [| { rg_name = region_name 0; rg_hosts = hosts;
           rg_vms_per_host = vms_per_host; rg_spares = 0;
           rg_wire_budget = None } |];
  }

let validate t =
  let err fmt = Printf.ksprintf (fun reason -> Error (Hypertp_error.make ~site reason)) fmt in
  let n = Array.length t.tp_regions in
  if n < 1 then err "a topology needs at least one region"
  else begin
    let seen = Hashtbl.create n in
    let rec check i =
      if i >= n then Ok t
      else
        let r = t.tp_regions.(i) in
        if String.trim r.rg_name = "" then err "region %d has an empty name" i
        else if String.contains r.rg_name ' ' || String.contains r.rg_name ';'
                || String.contains r.rg_name ':'
        then err "region name %S contains a reserved character" r.rg_name
        else if Hashtbl.mem seen r.rg_name then
          err "duplicate region name %S" r.rg_name
        else if r.rg_hosts < 2 then
          err "region %S needs at least 2 hosts (campaigns drain into peers)"
            r.rg_name
        else if r.rg_vms_per_host < 1 then
          err "region %S needs at least 1 VM per host" r.rg_name
        else if r.rg_spares < 0 then
          err "region %S has a negative spare pool" r.rg_name
        else if (match r.rg_wire_budget with Some b -> b < 0 | None -> false)
        then err "region %S has a negative wire budget" r.rg_name
        else begin
          Hashtbl.add seen r.rg_name ();
          check (i + 1)
        end
    in
    check 0
  end

let validate_exn t =
  match validate t with
  | Ok t -> t
  | Error e -> raise (Hypertp_error.Error e)

(* --- CLI spec syntax ---

   Uniform shorthand:  "RxHxV"            R regions x H hosts each x V VMs/host
   Region list:        "name:H:V[:spares[:wire]];..."

   [spec] renders the shorthand whenever the topology is uniform with
   default names/spares/budgets, the region list otherwise; [of_spec]
   accepts both, so [of_spec (spec t) = t] round-trips. *)

let spec t =
  let rs = t.tp_regions in
  let n = Array.length rs in
  let is_uniform =
    n > 0
    && Array.for_all
         (fun r ->
           r.rg_hosts = rs.(0).rg_hosts
           && r.rg_vms_per_host = rs.(0).rg_vms_per_host
           && r.rg_spares = 0 && r.rg_wire_budget = None)
         rs
    && Array.for_all (fun i -> rs.(i).rg_name = region_name i)
         (Array.init n (fun i -> i))
  in
  if is_uniform then
    Printf.sprintf "%dx%dx%d" n rs.(0).rg_hosts rs.(0).rg_vms_per_host
  else
    String.concat ";"
      (Array.to_list
         (Array.map
            (fun r ->
              let base =
                Printf.sprintf "%s:%d:%d" r.rg_name r.rg_hosts
                  r.rg_vms_per_host
              in
              match (r.rg_spares, r.rg_wire_budget) with
              | 0, None -> base
              | s, None -> Printf.sprintf "%s:%d" base s
              | s, Some w -> Printf.sprintf "%s:%d:%d" base s w)
            rs))

let of_spec s =
  let s = String.trim s in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let pos_int what v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "bad %s %S" what v)
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let uniform_of r h v =
    let* r = pos_int "region count" r in
    let* h = pos_int "host count" h in
    let* vv = pos_int "vms per host" v in
    if r < 1 then fail "need at least one region"
    else
      Ok
        {
          tp_regions =
            Array.init r (fun i ->
                { rg_name = region_name i; rg_hosts = h; rg_vms_per_host = vv;
                  rg_spares = 0; rg_wire_budget = None });
        }
  in
  let region_of part =
    match String.split_on_char ':' part with
    | [ name; h; v ] ->
      let* h = pos_int "host count" h in
      let* v = pos_int "vms per host" v in
      Ok (region ~name ~hosts:h ~vms_per_host:v ())
    | [ name; h; v; sp ] ->
      let* h = pos_int "host count" h in
      let* v = pos_int "vms per host" v in
      let* sp = pos_int "spare count" sp in
      Ok (region ~spares:sp ~name ~hosts:h ~vms_per_host:v ())
    | [ name; h; v; sp; w ] ->
      let* h = pos_int "host count" h in
      let* v = pos_int "vms per host" v in
      let* sp = pos_int "spare count" sp in
      let* w = pos_int "wire budget" w in
      Ok (region ~spares:sp ~wire_budget:w ~name ~hosts:h ~vms_per_host:v ())
    | _ -> fail "bad region %S (want name:hosts:vms[:spares[:wire]])" part
  in
  let parsed =
    if String.contains s ';' || String.contains s ':' then
      let parts = List.filter (fun p -> p <> "") (String.split_on_char ';' s) in
      if parts = [] then fail "empty topology spec"
      else
        let rec go acc = function
          | [] -> Ok { tp_regions = Array.of_list (List.rev acc) }
          | p :: tl ->
            let* r = region_of p in
            go (r :: acc) tl
        in
        go [] parts
    else
      match String.split_on_char 'x' s with
      | [ r; h; v ] -> uniform_of r h v
      | _ ->
        fail
          "bad topology spec %S (want RxHxV, e.g. 4x250x8, or \
           name:hosts:vms[:spares[:wire]];...)"
          s
  in
  match parsed with
  | Error _ as e -> e
  | Ok t -> (
    (* Per-region hosts in the shorthand, so "64x15625x8" is the
       million-host fleet; validate while we are here. *)
    match validate t with
    | Ok t -> Ok t
    | Error e -> Error (Hypertp_error.to_string e))

let pp fmt t =
  Format.fprintf fmt "@[<v>topology: %d regions, %d hosts, %d VMs@," (n_regions t)
    (hosts t) (vms t);
  Array.iter
    (fun r ->
      Format.fprintf fmt "  %s: %d hosts x %d VMs%s%s@," r.rg_name r.rg_hosts
        r.rg_vms_per_host
        (if r.rg_spares > 0 then Printf.sprintf ", %d spares" r.rg_spares
         else "")
        (match r.rg_wire_budget with
        | Some w -> Printf.sprintf ", wire budget %d B" w
        | None -> ""))
    t.tp_regions;
  Format.fprintf fmt "@]"
