type conn = { host : Hv.Host.t; kind : Hv.Kind.t }

exception Uri_mismatch of { uri : string; running : string }

let uri_of_kind = function
  | Hv.Kind.Xen -> "xen:///system"
  | Hv.Kind.Kvm -> "qemu:///system"
  | Hv.Kind.Bhyve -> "bhyve:///system"

let kind_of_uri uri =
  match String.index_opt uri ':' with
  | None -> None
  | Some i -> (
    match String.sub uri 0 i with
    | "xen" -> Some Hv.Kind.Xen
    | "qemu" | "kvm" -> Some Hv.Kind.Kvm
    | "bhyve" -> Some Hv.Kind.Bhyve
    | _ -> None)

let connect host ~uri =
  let wanted =
    match kind_of_uri uri with
    | Some k -> k
    | None -> invalid_arg ("Libvirt.connect: bad URI " ^ uri)
  in
  match Hv.Host.hypervisor_kind host with
  | None -> invalid_arg "Libvirt.connect: host runs no hypervisor"
  | Some running ->
    if not (Hv.Kind.equal running wanted) then
      raise (Uri_mismatch { uri; running = Hv.Kind.to_string running });
    { host; kind = running }

let reconnect conn =
  match Hv.Host.hypervisor_kind conn.host with
  | None -> invalid_arg "Libvirt.reconnect: host runs no hypervisor"
  | Some kind -> { conn with kind }

type dom_state = Dom_running | Dom_paused | Dom_shutoff

type dominfo = {
  dom_name : string;
  dom_vcpus : int;
  dom_memory_kib : int;
  dom_state : dom_state;
}

let info_of_vm (vm : Vmstate.Vm.t) =
  {
    dom_name = vm.config.name;
    dom_vcpus = vm.config.vcpus;
    dom_memory_kib = vm.config.ram / 1024;
    dom_state =
      (match vm.run_state with
      | Vmstate.Vm.Running -> Dom_running
      | Vmstate.Vm.Paused -> Dom_paused
      | Vmstate.Vm.Suspended -> Dom_shutoff);
  }

let check_live conn =
  match Hv.Host.hypervisor_kind conn.host with
  | Some k when Hv.Kind.equal k conn.kind -> ()
  | Some k ->
    raise (Uri_mismatch { uri = uri_of_kind conn.kind; running = Hv.Kind.to_string k })
  | None -> invalid_arg "Libvirt: connection to a dead hypervisor"

let list_all_domains conn =
  check_live conn;
  List.map info_of_vm (Hv.Host.vms conn.host)

let dominfo conn name =
  check_live conn;
  match Hv.Host.find_vm conn.host name with
  | Some vm -> info_of_vm vm
  | None -> invalid_arg ("Libvirt.dominfo: no domain " ^ name)

let suspend conn name =
  check_live conn;
  Hv.Host.pause_vm conn.host name

let resume conn name =
  check_live conn;
  Hv.Host.resume_vm conn.host name

let node_info conn =
  check_live conn;
  Format.asprintf "%s on %a" (Hv.Host.hypervisor_name conn.host)
    Hw.Machine.pp conn.host.Hv.Host.machine

let migrate_live conn ~dest name =
  check_live conn;
  check_live dest;
  Hypertp.Migrate.run ~src:conn.host ~dst:dest.host ~vm_names:[ name ] ()

let hypervisor_agnostic f host =
  match Hv.Host.hypervisor_kind host with
  | None -> invalid_arg "Libvirt: host runs no hypervisor"
  | Some kind -> f (connect host ~uri:(uri_of_kind kind))
