lib/core/tcb.mli: Format
