examples/cluster_upgrade.mli:
