type platform = P_xen | P_kvm | P_bhyve

let equal_platform a b =
  match (a, b) with
  | P_xen, P_xen | P_kvm, P_kvm | P_bhyve, P_bhyve -> true
  | (P_xen | P_kvm | P_bhyve), _ -> false

let pp_platform fmt = function
  | P_xen -> Format.pp_print_string fmt "Xen"
  | P_kvm -> Format.pp_print_string fmt "KVM"
  | P_bhyve -> Format.pp_print_string fmt "bhyve"

(* Calibration: Fig. 11 shows ~29 kQPS on Xen rising ~37 % after landing
   on KVM; Fig. 12 shows ~1.4 kQPS / ~5-6 ms for MySQL with only a small
   platform difference; Table 6 gives the Darknet iteration time. *)

(* bhyve's virtio path sits between Xen and KVM for these workloads
   (no published anchor in the paper; calibrated as KVM x ~0.95). *)
let redis_qps = function P_xen -> 29_000.0 | P_kvm -> 39_700.0 | P_bhyve -> 37_500.0
let mysql_qps = function P_xen -> 1_400.0 | P_kvm -> 1_460.0 | P_bhyve -> 1_430.0
let mysql_latency_ms = function P_xen -> 5.7 | P_kvm -> 5.4 | P_bhyve -> 5.5
let darknet_iteration_s = function P_xen -> 2.044 | P_kvm -> 2.010 | P_bhyve -> 2.050
let streaming_mbps = function P_xen -> 8.0 | P_kvm -> 8.0 | P_bhyve -> 8.0

let precopy_qps_factor = function
  | Vmstate.Vm.Wl_mysql -> 0.32 (* Fig. 12: -68 % throughput *)
  | Vmstate.Vm.Wl_redis -> 0.48 (* Fig. 11: roughly halved during copy *)
  | Vmstate.Vm.Wl_streaming -> 0.90
  | Vmstate.Vm.Wl_idle | Vmstate.Vm.Wl_spec _ | Vmstate.Vm.Wl_darknet -> 1.0

let precopy_latency_factor = function
  | Vmstate.Vm.Wl_mysql -> 3.52 (* Fig. 12: +252 % latency *)
  | Vmstate.Vm.Wl_redis -> 2.1
  | Vmstate.Vm.Wl_streaming -> 1.5
  | Vmstate.Vm.Wl_idle | Vmstate.Vm.Wl_spec _ | Vmstate.Vm.Wl_darknet -> 1.0

let precopy_slowdown = function
  | Vmstate.Vm.Wl_darknet -> 1.25 (* Table 6: 2.672 s iterations under Xen migration *)
  | Vmstate.Vm.Wl_spec _ -> 1.03
  | Vmstate.Vm.Wl_idle -> 1.0
  | Vmstate.Vm.Wl_redis | Vmstate.Vm.Wl_mysql | Vmstate.Vm.Wl_streaming -> 1.1

let dirty_pages_per_sec kind ~ram ~page_kind =
  (* Dirty logging happens at 4 KiB granularity even over huge-page
     backing (logdirty shatters large mappings), so rates are 4 KiB
     pages/second regardless of the guest's page size.  Fractions are
     calibrated so the redis/mysql migrations of Figs. 11-12 converge in
     a couple of rounds (~78 s of pre-copy for 8 GiB over 1 Gbps) while
     idle VMs converge immediately (Table 4). *)
  ignore page_kind;
  let gib = Hw.Units.to_gib_f ram in
  let pages_per_gib =
    float_of_int (Hw.Units.pages_of_bytes Hw.Units.Page_4k (Hw.Units.gib 1))
  in
  let working_set_fraction_per_sec =
    match kind with
    | Vmstate.Vm.Wl_idle -> 0.00005 (* kernel housekeeping *)
    | Vmstate.Vm.Wl_redis -> 0.002
    | Vmstate.Vm.Wl_mysql -> 0.003
    | Vmstate.Vm.Wl_spec _ -> 0.0012
    | Vmstate.Vm.Wl_darknet -> 0.0008
    | Vmstate.Vm.Wl_streaming -> 0.0005
  in
  Float.max 1.0 (working_set_fraction_per_sec *. pages_per_gib *. gib)

let transplant_residual_overhead = function
  | Vmstate.Vm.Wl_spec _ -> 1.01 (* Table 5: a few percent over a full run *)
  | Vmstate.Vm.Wl_darknet -> 1.02
  | Vmstate.Vm.Wl_idle -> 1.0
  | Vmstate.Vm.Wl_redis | Vmstate.Vm.Wl_mysql | Vmstate.Vm.Wl_streaming -> 1.02
