(* Tests for the replicated hierarchical control plane: regional
   sub-controllers with their own journals under a root supervisor, and
   the headline invariant — for any seeded schedule of controller
   crashes, supervision partitions and leader handoffs (including a
   crash in the middle of a resume replay), the final report and the
   merged journal are byte-identical to the uninterrupted run. *)

module CP = Cluster.Controlplane

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let small_cfg =
  { CP.default_config with CP.regions = 3; hosts_per_region = 6;
    global_concurrency = 6 }

let host_injections p =
  [
    { Fault.site = Fault.Host_crash; trigger = Fault.Probability p };
    { Fault.site = Fault.Host_timeout; trigger = Fault.Probability (p /. 2.0) };
    { Fault.site = Fault.Host_flap; trigger = Fault.Probability (p /. 3.0) };
  ]

let finished = function
  | CP.Finished (r, b) -> (r, b)
  | CP.Crashed _ -> Alcotest.fail "control plane crashed unexpectedly"

(* Drive a run/resume chain to completion, threading one chaos plan,
   and return both the report and the final bundle. *)
let rec complete ~fault = function
  | CP.Finished (r, b) -> (r, b)
  | CP.Crashed bundle -> complete ~fault (CP.resume ~fault bundle)

(* The reference a chaotic run must reproduce byte-for-byte: same seed,
   same host-site injections, no control-plane faults.  The host plan
   must be present (not [None]) so the per-region derived cursors
   advance identically. *)
let reference ~seed ~p cfg =
  let fault = Fault.make ~seed (host_injections p) in
  let r, b = finished (CP.run ~fault cfg) in
  (CP.summary r, CP.merged_to_string b)

(* --- clean-run behaviour --- *)

let test_clean_run_pinned () =
  let r, b = finished (CP.run small_cfg) in
  checki "every host upgraded in place" (3 * 6) r.CP.cp_hosts_inplace;
  checki "nothing drained" 0 r.CP.cp_hosts_drained;
  checki "nothing exposed" 0 r.CP.cp_hosts_exposed;
  checkb "positive wall clock" true
    Sim.Time.(Sim.Time.zero < r.CP.cp_wall_clock);
  checkb "exposure strictly inside (0, baseline)" true
    (r.CP.cp_exposed_host_hours > 0.0
    && r.CP.cp_exposed_host_hours < r.CP.cp_baseline_exposed_host_hours);
  (* admit + complete per host plus a finish per region — and no
     reallocation grants: the symmetric regions finish within jitter of
     each other, well inside the realloc lag, so every grant fires after
     the whole fleet is done and finds no recipient *)
  checki "journal entries" ((2 * 18) + 3) (CP.bundle_length b);
  (* byte-determinism of the whole pipeline *)
  let r', b' = finished (CP.run small_cfg) in
  checks "summary deterministic" (CP.summary r) (CP.summary r');
  checks "merged journal deterministic" (CP.merged_to_string b)
    (CP.merged_to_string b');
  checks "bundle deterministic" (CP.bundle_to_string b)
    (CP.bundle_to_string b')

let test_config_validation () =
  let bad msg cfg =
    checkb msg true
      (try
         ignore (CP.run cfg);
         false
       with Hypertp.Error.Error e -> e.Hypertp.Error.site = "Controlplane")
  in
  bad "zero regions" { small_cfg with CP.regions = 0 };
  bad "budget below region count" { small_cfg with CP.global_concurrency = 2 };
  bad "timeout below heartbeat"
    { small_cfg with CP.heartbeat_timeout = Sim.Time.sec 2 };
  bad "realloc lag inside detection window"
    { small_cfg with CP.realloc_lag = Sim.Time.sec 15 };
  bad "straggler factor below flap ceiling"
    { small_cfg with CP.straggler_factor = 1.1 }

let count_sub needle s =
  let n = String.length needle and total = ref 0 in
  for i = 0 to String.length s - n do
    if String.sub s i n = needle then incr total
  done;
  !total

let test_reallocation_observable () =
  (* Regions are uniform, so asymmetry has to come from host faults:
     with per-region derived plans, some regions take slow fallback
     drains and finish well past the others' finish + realloc lag — the
     early finishers' slots are granted to the stragglers, durably, as
     [Limit_raised] entries in the recipients' journals. *)
  let fault = Fault.make ~seed:3L (host_injections 0.6) in
  let _, b = finished (CP.run ~fault small_cfg) in
  let merged = CP.merged_to_string b in
  checkb "at least one grant journaled" true
    (count_sub "limit-raised" merged >= 1);
  checki "every region finishes" 3 (count_sub "region-finished" merged)

let test_host_faults_manifest () =
  let fault = Fault.make ~seed:3L (host_injections 0.6) in
  let r, _ = finished (CP.run ~fault small_cfg) in
  checkb "ladder engaged somewhere" true
    (r.CP.cp_hosts_drained + r.CP.cp_hosts_exposed > 0);
  checki "accounting closes" (3 * 6)
    (r.CP.cp_hosts_inplace + r.CP.cp_hosts_drained + r.CP.cp_hosts_exposed);
  let hosts = List.concat_map (fun rr -> rr.CP.rr_hosts) r.CP.cp_regions in
  checkb "deferred hosts billed to campaign end" true
    (List.for_all
       (fun h ->
         h.CP.h_status <> CP.Deferred_exposed
         || Sim.Time.equal h.CP.h_done_at r.CP.cp_wall_clock)
       hosts)

(* --- crash-survival invariants --- *)

let test_subctl_crash_byte_identity () =
  let seed = 41L and p = 0.35 in
  let ref_summary, ref_merged = reference ~seed ~p small_cfg in
  List.iter
    (fun nth ->
      let fault =
        Fault.make ~seed
          (host_injections p
          @ [ { Fault.site = Fault.Subctl_crash; trigger = Fault.Nth_hit nth } ])
      in
      let r, b = finished (CP.run ~fault small_cfg) in
      checks
        (Printf.sprintf "summary identical (crash at append %d)" nth)
        ref_summary (CP.summary r);
      checks
        (Printf.sprintf "merged journal identical (crash at append %d)" nth)
        ref_merged (CP.merged_to_string b))
    [ 1; 7; 23; 40 ]

let test_partition_spurious_restart () =
  let seed = 41L and p = 0.35 in
  let ref_summary, ref_merged = reference ~seed ~p small_cfg in
  let metrics = Obs.Metrics.create () in
  let fault =
    Fault.make ~seed
      (host_injections p
      @ [ { Fault.site = Fault.Ctl_partition; trigger = Fault.Nth_hit 3 } ])
  in
  let r, b = finished (CP.run ~fault ~metrics small_cfg) in
  checks "summary identical across a partition" ref_summary (CP.summary r);
  checks "merged journal identical across a partition" ref_merged
    (CP.merged_to_string b);
  (* The victim was healthy: the restart is spurious, and it is counted
     in the metrics registry (never in the report). *)
  let spurious =
    Array.exists
      (fun region ->
        Obs.Metrics.value
          (Obs.Metrics.counter metrics
             ~labels:
               [ ("engine", "controlplane"); ("kind", "spurious");
                 ("region", Printf.sprintf "r%d" region) ]
             "hypertp_ctl_restarts_total")
        > 0.0)
      [| 0; 1; 2 |]
  in
  checkb "spurious restart counted in metrics" true spurious

let test_root_crash_then_handoff () =
  let seed = 41L and p = 0.35 in
  let ref_summary, ref_merged = reference ~seed ~p small_cfg in
  let fault =
    Fault.make ~seed
      (host_injections p
      @ [ { Fault.site = Fault.Root_crash; trigger = Fault.Nth_hit 4 } ])
  in
  match CP.run ~fault small_cfg with
  | CP.Finished _ -> Alcotest.fail "root crash never fired"
  | CP.Crashed bundle ->
    (* The bundle survives serialisation; the new leader rebuilds the
       global view purely from the parsed sub-journals. *)
    let bundle' =
      match CP.bundle_of_string (CP.bundle_to_string bundle) with
      | Ok b -> b
      | Error e -> Alcotest.failf "bundle round-trip: %s" e
    in
    checki "round-trip preserves entries" (CP.bundle_length bundle)
      (CP.bundle_length bundle');
    let r, b = complete ~fault (CP.resume ~fault bundle') in
    checks "summary identical after leader handoff" ref_summary
      (CP.summary r);
    checks "merged journal identical after leader handoff" ref_merged
      (CP.merged_to_string b)

let test_resume_rejects_mismatched_fault () =
  let fault =
    Fault.make ~seed:5L
      (host_injections 0.6
      @ [ { Fault.site = Fault.Root_crash; trigger = Fault.Nth_hit 2 } ])
  in
  match CP.run ~fault small_cfg with
  | CP.Finished _ -> Alcotest.fail "root crash never fired"
  | CP.Crashed bundle ->
    checkb "mismatched fault plan rejected with a precise site" true
      (try
         ignore (CP.resume ~fault:(Fault.make ~seed:6L (host_injections 0.6)) bundle);
         false
       with Hypertp.Error.Error e ->
         e.Hypertp.Error.site = "Controlplane.resume")

(* The headline qcheck: a random schedule of control-plane faults —
   which sites, which hits, against which chaos stream — must leave the
   completed campaign byte-identical to the uninterrupted run. *)
let test_crash_schedule_byte_identity_qcheck () =
  let site_gen =
    QCheck.oneofl
      [ Fault.Subctl_crash; Fault.Root_crash; Fault.Ctl_partition;
        Fault.Crash_during_resume ]
  in
  let schedule_gen =
    QCheck.(
      pair (int_range 0 500)
        (list_of_size Gen.(1 -- 4) (pair site_gen (int_range 1 60))))
  in
  let prop (seed, schedule) =
    let seed64 = Int64.of_int ((seed * 6151) + 17) in
    let p = 0.35 in
    let ref_summary, ref_merged = reference ~seed:seed64 ~p small_cfg in
    let chaos =
      Fault.make ~seed:seed64
        (host_injections p
        @ List.map
            (fun (site, nth) -> { Fault.site; trigger = Fault.Nth_hit nth })
            schedule)
    in
    let r, b = complete ~fault:chaos (CP.run ~fault:chaos small_cfg) in
    if CP.summary r <> ref_summary then
      QCheck.Test.fail_reportf "summary diverged under schedule seed=%d" seed;
    if CP.merged_to_string b <> ref_merged then
      QCheck.Test.fail_reportf
        "merged journal diverged under schedule seed=%d" seed;
    true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:30 ~name:"crash-schedule byte identity"
       schedule_gen prop)

(* The double-fault golden: the root dies, and the next two leaders die
   again in the middle of their resume replays.  The merged timeline of
   the finished chain is pinned byte-for-byte. *)
let double_fault_chain () =
  let fault =
    Fault.make ~seed:11L
      (host_injections 0.4
      @ [ { Fault.site = Fault.Root_crash; trigger = Fault.Nth_hit 3 };
          { Fault.site = Fault.Crash_during_resume; trigger = Fault.Nth_hit 4 };
          { Fault.site = Fault.Crash_during_resume; trigger = Fault.Nth_hit 9 } ])
  in
  let crashes = ref 0 in
  let rec go = function
    | CP.Finished (r, b) -> (r, b)
    | CP.Crashed bundle ->
      incr crashes;
      go (CP.resume ~fault bundle)
  in
  let r, b = go (CP.run ~fault small_cfg) in
  (!crashes, r, b)

let test_double_crash_during_resume_golden () =
  let crashes, r, b = double_fault_chain () in
  checkb "at least three leader deaths (root + two during replays)" true
    (crashes >= 3);
  let ref_summary, ref_merged = reference ~seed:11L ~p:0.4 small_cfg in
  checks "summary identical after the double fault" ref_summary
    (CP.summary r);
  checks "merged journal identical after the double fault" ref_merged
    (CP.merged_to_string b);
  let golden =
    let path =
      List.find Sys.file_exists
        [ "golden/controlplane_double_resume.txt";
          "test/golden/controlplane_double_resume.txt" ]
    in
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  checks "merged timeline matches the golden pin" golden
    (CP.merged_to_string b)

(* --- serialisation --- *)

let test_bundle_parse_errors () =
  let reject s =
    match CP.bundle_of_string s with
    | Ok _ -> Alcotest.failf "accepted garbage: %S" s
    | Error e -> checkb "error is descriptive" true (String.length e > 0)
  in
  reject "";
  reject "not a bundle";
  reject "hypertp-controlplane-bundle v99\nconfig regions=1";
  (* valid magic, broken config *)
  reject "hypertp-controlplane-bundle v1\nconfig regions=banana";
  (* entry outside any region *)
  let _, b = finished (CP.run small_cfg) in
  let text = CP.bundle_to_string b in
  let lines = String.split_on_char '\n' text in
  let no_headers =
    String.concat "\n"
      (List.filter
         (fun l ->
           String.length l < 7 || String.sub l 0 7 <> "region ")
         lines)
  in
  reject no_headers

let suites =
  [
    ( "controlplane.run",
      [
        Alcotest.test_case "clean run (pinned + deterministic)" `Quick
          test_clean_run_pinned;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "reallocation grants journaled" `Quick
          test_reallocation_observable;
        Alcotest.test_case "host faults manifest" `Quick
          test_host_faults_manifest;
      ] );
    ( "controlplane.crash",
      [
        Alcotest.test_case "subctl crash byte identity" `Quick
          test_subctl_crash_byte_identity;
        Alcotest.test_case "partition -> spurious restart" `Quick
          test_partition_spurious_restart;
        Alcotest.test_case "root crash -> leader handoff" `Quick
          test_root_crash_then_handoff;
        Alcotest.test_case "mismatched fault rejected" `Quick
          test_resume_rejects_mismatched_fault;
        Alcotest.test_case "crash-schedule byte identity (qcheck)" `Slow
          test_crash_schedule_byte_identity_qcheck;
        Alcotest.test_case "double crash during resume (golden)" `Quick
          test_double_crash_during_resume_golden;
      ] );
    ( "controlplane.bundle",
      [ Alcotest.test_case "parse errors" `Quick test_bundle_parse_errors ] );
  ]
