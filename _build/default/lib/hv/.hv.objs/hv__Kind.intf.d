lib/hv/kind.mli: Format Workload
