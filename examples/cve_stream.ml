(* Serve a small fleet through five virtual years of CVE traffic and
   compare the three policies on cumulative exposed host-hours.

     dune exec examples/cve_stream.exe *)

let () =
  (* A busy regime: 30 disclosures a year against months-long rollout
     campaigns (concurrency 2, tempo 16000), so campaigns overlap and
     the cost-aware policy's skipped no-win campaigns pay off. *)
  let base =
    {
      Stream.Service.default_config with
      Stream.Service.mix =
        { Stream.Service.xen_hosts = 20; kvm_hosts = 16; bhyve_hosts = 0 };
      rate_per_year = 30.0;
      concurrency = 2;
      tempo = 16000.0;
      seed = 0x5EEDL;
    }
  in
  Printf.printf "Serving %.0f virtual years at %.0f CVEs/year over %d hosts\n\n"
    base.Stream.Service.years base.Stream.Service.rate_per_year
    (base.Stream.Service.mix.Stream.Service.xen_hosts
    + base.Stream.Service.mix.Stream.Service.kvm_hosts);
  let results =
    List.map
      (fun policy ->
        let metrics = Obs.Metrics.create () in
        let report, journal =
          Stream.Service.run_to_completion ~metrics
            { base with Stream.Service.policy }
        in
        Format.printf "%a@.  (journal: %d entries)@.@."
          Stream.Service.pp_report report
          (Stream.Service.journal_length journal);
        (policy, report.Stream.Service.exposed_host_hours))
      Stream.Policy.all_kinds
  in
  let hh k = List.assoc k results in
  Printf.printf
    "cost-aware %.1f hh vs transplant-all %.1f hh vs defer-all %.1f hh\n"
    (hh Stream.Policy.Cost_aware)
    (hh Stream.Policy.Transplant_all)
    (hh Stream.Policy.Defer_all);
  (* The crash-and-resume path: a controller crash mid-stream, the
     journal picked back up, and the same report at the end. *)
  let fault =
    Fault.make
      [ { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 40 } ]
  in
  let report, _ = Stream.Service.run_to_completion ~fault base in
  let clean, _ = Stream.Service.run_to_completion base in
  Printf.printf "crash-and-resume report identical: %b\n"
    (String.equal
       (Stream.Service.report_to_string report)
       (Stream.Service.report_to_string clean))
