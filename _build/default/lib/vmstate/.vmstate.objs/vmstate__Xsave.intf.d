lib/vmstate/xsave.mli: Format Sim
