(** Cluster-upgrade execution timing (Fig. 13).

    BtrPlace executes migration actions sequentially (the conservative
    setting operators use — cf. Alibaba's 15-day, 45k-VM maintenance
    [59]); host upgrades overlap with the following group's migrations,
    so the wall-clock is dominated by the migration chain plus the last
    upgrade. *)

type timing = {
  migration_count : int;
  inplace_vm_count : int;
  migration_time : Sim.Time.t;   (** sum of sequential migration ops *)
  upgrade_tail : Sim.Time.t;     (** the non-overlapped last host upgrade *)
  total : Sim.Time.t;
}

val migration_op_time :
  nic:Hw.Nic.t -> vm:Model.vm -> Sim.Time.t
(** One live-migration action: setup + pre-copy + stop-and-copy over
    the cluster network. *)

val inplace_host_time : vms:int -> Sim.Time.t
(** One InPlaceTP host upgrade (kexec + restore of [vms] VMs) on a
    cluster node. *)

val reboot_host_time : Sim.Time.t
(** Full reboot of a drained host (the migration-only path). *)

val execute : nic:Hw.Nic.t -> Btrplace.plan -> timing

val sweep :
  ?nodes:int -> ?vms_per_node:int -> fractions:float list -> unit ->
  (float * timing) list
(** Run the section 5.4 experiment for each InPlaceTP-compatible
    fraction: 10 nodes x 10 VMs (1 vCPU / 4 GiB; 30 % streaming, 30 %
    CPU+memory, 40 % idle) on a 10 Gbps network. *)

val pp_timing : Format.formatter -> timing -> unit
