let hypervisor_of = function
  | Hv.Kind.Xen -> (module Xenhv.Xen : Hv.Intf.S)
  | Hv.Kind.Kvm -> (module Kvmhv.Kvm : Hv.Intf.S)
  | Hv.Kind.Bhyve -> (module Bhyvehv.Bhyve : Hv.Intf.S)

let provision ?seed ~name ~machine ~hv configs =
  let host = Hv.Host.create ?seed ~name machine in
  Hv.Host.boot_hypervisor host (hypervisor_of hv);
  List.iter (fun config -> ignore (Hv.Host.create_vm host config)) configs;
  host

type outcome =
  [ `Applied of Inplace.report
  | `Advised of Hv.Kind.t
  | `No_action
  | `No_safe_alternative ]

type response = { advice : Cve.Window.advice; outcome : outcome }

let transplant_inplace ?ctx ?options ?rng ?fault ?obs ?metrics ~host ~target
    () =
  Inplace.run ?ctx ?options ?rng ?fault ?obs ?metrics ~host
    ~target:(hypervisor_of target) ()

let transplant_migration ?ctx ?rng ?fault ?retry ?obs ?metrics ~src ~dst
    ?vm_names () =
  Migrate.run ?ctx ?rng ?fault ?retry ?obs ?metrics ~src ~dst ?vm_names ()

let transplant_shadow ?ctx ?rng ?fault ?retry ?obs ?metrics ?params ?ladder
    ~src ~spare ~target ?vm_names () =
  Migrate.run_shadow ?ctx ?rng ?fault ?retry ?obs ?metrics ?params ?ladder
    ~src ~spare ~target:(hypervisor_of target) ?vm_names ()

let respond_to_cve ?ctx ?options ?rng ?fault ~host ~cve_id ~mode () =
  let site = "Api.respond_to_cve" in
  let record =
    match Cve.Nvd.find cve_id with
    | Some r -> r
    | None ->
      Error.raise_errorf ~site
        ~hint:"list known ids with the `cve` CLI command" "unknown CVE %s"
        cve_id
  in
  let current =
    match Hv.Host.hypervisor_kind host with
    | Some k -> Hv.Kind.to_string k
    | None ->
      Error.raise_error ~site
        ~hint:"boot one first, e.g. with Api.provision" "host has no hypervisor"
  in
  let advice =
    Cve.Window.advise ~fleet:(List.map Hv.Kind.to_string Hv.Kind.all) ~current
      record
  in
  let outcome =
    match advice with
    | Cve.Window.Transplant_to target_name -> (
      let target =
        match Hv.Kind.of_string target_name with
        | Some k -> k
        | None ->
          Error.raise_errorf ~site "unknown target %s" target_name
      in
      match mode with
      | `Apply ->
        `Applied (transplant_inplace ?ctx ?options ?rng ?fault ~host ~target ())
      | `Advise -> `Advised target)
    (* Plain [advise] never returns [Wait_for_patch]; only the
       cost-aware stream policy does. *)
    | Cve.Window.Wait_for_patch | Cve.Window.No_action -> `No_action
    | Cve.Window.No_safe_alternative -> `No_safe_alternative
  in
  { advice; outcome }

let respond_to_cve_legacy ?options ?rng ?fault ~host ~cve_id ?(apply = true) ()
    =
  respond_to_cve ?options ?rng ?fault ~host ~cve_id
    ~mode:(if apply then `Apply else `Advise)
    ()

let applied_report r =
  match r.outcome with `Applied rep -> Some rep | _ -> None
