(* Tests for the pre-copy live-migration engine. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let params ?(streams = 1) () =
  Migration.Precopy.default_params
    ~nic:(Hw.Nic.create ~bandwidth_gbps:1.0 ())
    ~streams ()

let gib_pages = Hw.Units.frames_of_bytes (Hw.Units.gib 1)

let test_idle_vm_converges_fast () =
  let plan =
    Migration.Precopy.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:15.0
  in
  checkb "few rounds" true (List.length plan.Migration.Precopy.rounds <= 2);
  checkb "tiny final set" true (plan.Migration.Precopy.final_pages < 200);
  (* 1 GiB over ~118 MB/s: around 9 seconds of pre-copy (Table 4). *)
  let t = Sim.Time.to_sec_f plan.Migration.Precopy.precopy_time in
  checkb "~9s precopy" true (t > 8.0 && t < 11.0)

let test_busy_vm_more_rounds () =
  let busy =
    Migration.Precopy.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:4_000.0
  in
  let idle =
    Migration.Precopy.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:15.0
  in
  checkb "more rounds when busy" true
    (List.length busy.Migration.Precopy.rounds
    > List.length idle.Migration.Precopy.rounds);
  checkb "longer stop" true
    Sim.Time.(idle.Migration.Precopy.stop_copy_time
              < busy.Migration.Precopy.stop_copy_time)

let test_round_cap_respected () =
  (* A rate just under the link rate: rounds shrink too slowly to reach
     the stop threshold, so the cap must stop the loop. *)
  let plan =
    Migration.Precopy.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:28_000.0
  in
  checki "capped at max rounds" 5 (List.length plan.Migration.Precopy.rounds)

let test_zero_dirty_single_round () =
  (* An idle guest: round 0 sends everything and nothing is left. *)
  let plan =
    Migration.Precopy.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:0.0
  in
  checki "exactly one round" 1 (List.length plan.Migration.Precopy.rounds);
  checki "empty stop-and-copy" 0 plan.Migration.Precopy.final_pages

let test_divergent_rate_structured_error () =
  (* At or above the link rate the plan cannot converge: a structured
     error pointing at the shadow watchdog, not a silent cap. *)
  (match
     Migration.Precopy.plan (params ()) ~page_bytes:4096
       ~total_pages:gib_pages ~dirty_pages_per_sec:1e9
   with
  | _ -> Alcotest.fail "divergent plan must raise"
  | exception Hypertp_error.Error err ->
    Alcotest.check Alcotest.string "site" "Precopy.plan"
      err.Hypertp_error.site;
    checkb "hint names the watchdog" true
      (match err.Hypertp_error.hint with
      | Some h ->
        let has needle =
          let lh = String.length h and ln = String.length needle in
          let rec at i =
            i + ln <= lh && (String.sub h i ln = needle || at (i + 1))
          in
          at 0
        in
        has "watchdog" && has "shadow_diverge"
      | None -> false));
  (* Negative and non-finite rates are caller bugs, not divergence. *)
  checkb "negative rejected" true
    (match
       Migration.Precopy.plan (params ()) ~page_bytes:4096
         ~total_pages:gib_pages ~dirty_pages_per_sec:(-1.0)
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_converges_predicate () =
  checkb "idle converges" true
    (Migration.Precopy.converges (params ()) ~page_bytes:4096
       ~dirty_pages_per_sec:100.0);
  checkb "hot loop does not" false
    (Migration.Precopy.converges (params ()) ~page_bytes:4096
       ~dirty_pages_per_sec:1e8)

let test_stream_sharing_slows () =
  let one =
    Migration.Precopy.plan (params ~streams:1 ()) ~page_bytes:4096
      ~total_pages:gib_pages ~dirty_pages_per_sec:15.0
  in
  let four =
    Migration.Precopy.plan (params ~streams:4 ()) ~page_bytes:4096
      ~total_pages:gib_pages ~dirty_pages_per_sec:15.0
  in
  let r = Sim.Time.to_sec_f four.Migration.Precopy.precopy_time
          /. Sim.Time.to_sec_f one.Migration.Precopy.precopy_time in
  checkb "4 streams ~4x slower" true (r > 3.5 && r < 4.5)

let prop_rounds_shrink =
  QCheck.Test.make ~name:"convergent plans have strictly shrinking rounds"
    QCheck.(int_range 10 2_000)
    (fun dirty ->
      let plan =
        Migration.Precopy.plan (params ()) ~page_bytes:4096
          ~total_pages:gib_pages ~dirty_pages_per_sec:(float_of_int dirty)
      in
      let rec shrinking = function
        | (a : Migration.Precopy.round) :: (b :: _ as rest) ->
          b.pages_sent < a.pages_sent && shrinking rest
        | [ _ ] | [] -> true
      in
      shrinking plan.Migration.Precopy.rounds)

let prop_total_bytes_accounted =
  QCheck.Test.make ~name:"wire bytes = pages sent x (page size + overhead)"
    (* The dirty range stays below the 1 Gbps link rate (~28.9k 4 KiB
       pages/s): at or above it, [plan] now refuses structurally. *)
    QCheck.(pair (int_range 100 100_000) (int_range 1 25_000))
    (fun (pages, dirty) ->
      let p = params () in
      let plan =
        Migration.Precopy.plan p ~page_bytes:4096 ~total_pages:pages
          ~dirty_pages_per_sec:(float_of_int dirty)
      in
      let sent =
        List.fold_left
          (fun acc (r : Migration.Precopy.round) -> acc + r.pages_sent)
          0 plan.Migration.Precopy.rounds
        + plan.Migration.Precopy.final_pages
      in
      plan.Migration.Precopy.total_bytes
      = sent * (4096 + p.Migration.Precopy.page_overhead_bytes))

let test_copy_memory () =
  let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
  let rng = Sim.Rng.create 1L in
  let mk () =
    Vmstate.Guest_mem.create ~pmem ~rng ~bytes:(Hw.Units.mib 32)
      ~page_kind:Hw.Units.Page_2m ()
  in
  let src = mk () and dst = mk () in
  Vmstate.Guest_mem.touch_random src rng 10;
  let copied = Migration.Precopy.copy_memory ~src ~dst in
  checki "all pages" (Vmstate.Guest_mem.page_count src) copied;
  checkb "checksums equal" true
    (Int64.equal (Vmstate.Guest_mem.checksum src) (Vmstate.Guest_mem.checksum dst));
  checki "destination clean" 0 (Vmstate.Guest_mem.dirty_count dst)

let test_copy_memory_mismatch () =
  let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
  let rng = Sim.Rng.create 1L in
  let a =
    Vmstate.Guest_mem.create ~pmem ~rng ~bytes:(Hw.Units.mib 32)
      ~page_kind:Hw.Units.Page_2m ()
  in
  let b =
    Vmstate.Guest_mem.create ~pmem ~rng ~bytes:(Hw.Units.mib 16)
      ~page_kind:Hw.Units.Page_2m ()
  in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Precopy.copy_memory: page count mismatch") (fun () ->
      ignore (Migration.Precopy.copy_memory ~src:a ~dst:b))

let test_run_live_converges_and_verifies () =
  let pmem = Hw.Pmem.create ~frames:(512 * 128) () in
  let rng = Sim.Rng.create 5L in
  let mk () =
    Vmstate.Guest_mem.create ~pmem ~rng ~bytes:(Hw.Units.mib 64)
      ~page_kind:Hw.Units.Page_2m ()
  in
  let src = mk () and dst = mk () in
  let r =
    Migration.Precopy.run_live (params ()) ~src ~dst
      ~dirty_pages_per_sec:2_000.0 ~rng
  in
  checkb "memory equal at the end" true r.Migration.Precopy.memory_equal;
  checkb "multiple rounds under load" true
    (List.length r.Migration.Precopy.live_rounds >= 2);
  checkb "rounds shrink" true
    (let sent =
       List.map
         (fun (x : Migration.Precopy.live_round) -> x.guest_pages_sent)
         r.Migration.Precopy.live_rounds
     in
     List.sort (fun a b -> Int.compare b a) sent = sent);
  checkb "copied at least one full pass" true
    (r.Migration.Precopy.pages_copied_total
    >= Vmstate.Guest_mem.page_count src);
  checki "source dirty log drained" 0 (Vmstate.Guest_mem.dirty_count src)

let test_run_live_idle_single_round () =
  let pmem = Hw.Pmem.create ~frames:(512 * 128) () in
  let rng = Sim.Rng.create 6L in
  let mk () =
    Vmstate.Guest_mem.create ~pmem ~rng ~bytes:(Hw.Units.mib 64)
      ~page_kind:Hw.Units.Page_2m ()
  in
  let src = mk () and dst = mk () in
  let r =
    Migration.Precopy.run_live (params ()) ~src ~dst ~dirty_pages_per_sec:1.0
      ~rng
  in
  checkb "memory equal" true r.Migration.Precopy.memory_equal;
  checkb "at most a tail round" true
    (List.length r.Migration.Precopy.live_rounds <= 2);
  checkb "tiny final set" true (r.Migration.Precopy.final_guest_pages <= 2)

let test_run_live_round_cap () =
  let pmem = Hw.Pmem.create ~frames:(512 * 128) () in
  let rng = Sim.Rng.create 7L in
  let mk () =
    Vmstate.Guest_mem.create ~pmem ~rng ~bytes:(Hw.Units.mib 32)
      ~page_kind:Hw.Units.Page_2m ()
  in
  let src = mk () and dst = mk () in
  let r =
    Migration.Precopy.run_live (params ()) ~src ~dst ~dirty_pages_per_sec:1e7
      ~rng
  in
  checkb "capped" true
    (List.length r.Migration.Precopy.live_rounds
    <= (params ()).Migration.Precopy.max_rounds);
  checkb "still ends bit-identical (stop-and-copy)" true
    r.Migration.Precopy.memory_equal

let suites =
  [
    ( "migration.precopy",
      [
        Alcotest.test_case "idle converges fast" `Quick test_idle_vm_converges_fast;
        Alcotest.test_case "busy needs more rounds" `Quick test_busy_vm_more_rounds;
        Alcotest.test_case "round cap" `Quick test_round_cap_respected;
        Alcotest.test_case "zero dirty rate = one round" `Quick
          test_zero_dirty_single_round;
        Alcotest.test_case "divergent rate = structured error" `Quick
          test_divergent_rate_structured_error;
        Alcotest.test_case "convergence predicate" `Quick test_converges_predicate;
        Alcotest.test_case "stream sharing" `Quick test_stream_sharing_slows;
        Alcotest.test_case "copy memory" `Quick test_copy_memory;
        Alcotest.test_case "copy mismatch rejected" `Quick test_copy_memory_mismatch;
        Alcotest.test_case "live precopy converges + verifies" `Quick
          test_run_live_converges_and_verifies;
        Alcotest.test_case "live precopy idle" `Quick test_run_live_idle_single_round;
        Alcotest.test_case "live precopy round cap" `Quick test_run_live_round_cap;
        qtest prop_rounds_shrink;
        qtest prop_total_bytes_accounted;
      ] );
  ]
