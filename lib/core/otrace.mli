(** Thin optional-tracer helpers for the transplant engines.

    Every engine takes an optional {!Obs.Tracer.t}; these wrappers make
    the un-traced path free ([None] short-circuits) and route each span
    open/close through {!Log} at debug level, so [-v -v] on the CLI
    narrates the same structure the exporter emits. *)

val attach : Obs.Tracer.t -> Obs.Tracer.t
(** Install the {!Log}-routing hook on a tracer and return it.  The
    engines call this on every tracer they are handed; installing twice
    is harmless. *)

val start :
  Obs.Tracer.t option -> at:Sim.Time.t -> ?parent:Obs.Span.t ->
  ?track:string -> ?attrs:(string * string) list -> string ->
  Obs.Span.t option

val finish : Obs.Tracer.t option -> Obs.Span.t option -> at:Sim.Time.t -> unit

val span :
  Obs.Tracer.t option -> at:Sim.Time.t -> until:Sim.Time.t ->
  ?parent:Obs.Span.t -> ?track:string -> ?attrs:(string * string) list ->
  string -> Obs.Span.t option
(** Record an already-delimited interval. *)

val instant :
  Obs.Tracer.t option -> at:Sim.Time.t -> ?parent:Obs.Span.t ->
  ?track:string -> ?attrs:(string * string) list -> string -> unit

val event : Obs.Span.t option -> at:Sim.Time.t -> string -> unit
(** Annotate a span (no-op when the span is absent). *)

(** {1 Optional-registry metric helpers}

    The same short-circuit convention for {!Obs.Metrics}: registry
    lookups are by (name, labels), so handles are re-derived per call
    and sites stay one-liners. *)

val count :
  Obs.Metrics.t option -> ?by:float -> ?labels:Obs.Metrics.labels -> string ->
  unit

val gauge_set :
  Obs.Metrics.t option -> ?labels:Obs.Metrics.labels -> string -> float -> unit

val observe :
  Obs.Metrics.t option -> ?labels:Obs.Metrics.labels -> buckets:float list ->
  string -> float -> unit

val seconds_buckets : float list
(** Shared histogram bounds (seconds) for phase/downtime durations. *)
