lib/pram/parse.ml: Build Bytes Entry Format Hw Int64 Layout List
