lib/cluster/btrplace.ml: Format List Model Stdlib
