(** BtrPlace-style reconfiguration planning (Hermenier et al. [20]).

    The cluster upgrade of section 5.4: hosts are taken offline in
    groups; VMs that cannot tolerate InPlaceTP downtime are migrated to
    online hosts under capacity constraints, the host is upgraded
    (InPlaceTP transplants the remaining VMs with it), and the next
    group follows.  A final rebalance restores an even spread.  The plan
    lists every action in execution order. *)

type action =
  | Migrate of { vm : Model.vm; src : string; dst : string }
  | Take_offline of string
  | Upgrade_inplace of { node : string; vms_in_place : int }
  | Bring_online of string

type plan = {
  actions : action list;
  migration_count : int;
  inplace_vm_count : int; (** VMs upgraded without moving *)
}

exception No_capacity of string

val plan_upgrade : ?group_size:int -> Model.t -> plan
(** Generate and {e apply} the rolling-upgrade plan on the model (the
    model ends fully upgraded and rebalanced).  Raises {!No_capacity}
    if evicted VMs cannot be placed anywhere.  Default group size 1. *)

val capacity_safe : Model.t -> bool
(** No node over capacity, every VM placed exactly once. *)

val pp_plan : Format.formatter -> plan -> unit
