(* Control-plane benchmark: a 1k-host fleet split across 4 regional
   sub-controllers, with and without a sub-controller crash in the
   middle of the campaign.  Reports real wall-clock, allocation and
   journal volume for both runs, the recovery overhead (the crashed
   run's extra real time), and pins the headline robustness invariant —
   the crashed run's report and merged journal are byte-identical to
   the undisturbed run's.

   Emits BENCH_controlplane.json (consumed by the control-plane
   fault-sweep CI job). *)

open Bench_util
module CP = Cluster.Controlplane

let hosts = 1_000
let regions = 4
let vms_per_host = 8
let fault_seed = 29L

let config =
  {
    CP.default_config with
    CP.regions;
    hosts_per_region = hosts / regions;
    vms_per_host;
    global_concurrency = 32;
  }

let host_injections =
  [
    { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.15 };
    { Fault.site = Fault.Host_timeout; trigger = Fault.Probability 0.05 };
    { Fault.site = Fault.Host_flap; trigger = Fault.Probability 0.05 };
  ]

type point = {
  p_label : string;
  p_wall_s : float;  (* real time *)
  p_minor_words : float;
  p_entries : int;  (* journal entries across all regions *)
  p_restarts : int;  (* sub-controller incarnations beyond the first *)
  p_exposed_hh : float;
  p_sim_wall_s : float;
}

let run_once ~label ~extra () =
  let fault = Fault.make ~seed:fault_seed (host_injections @ extra) in
  let metrics = Obs.Metrics.create () in
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r, b =
    match CP.run ~fault ~metrics config with
    | CP.Finished (r, b) -> (r, b)
    | CP.Crashed _ ->
      (* Only sub-controller crashes are armed; those are absorbed
         inside the run by heartbeat detection and journal recovery. *)
      assert false
  in
  let wall = Unix.gettimeofday () -. t0 in
  let restarts =
    List.fold_left
      (fun acc region ->
        acc
        + int_of_float
            (Obs.Metrics.value
               (Obs.Metrics.counter metrics
                  ~labels:
                    [ ("engine", "controlplane"); ("kind", "crash");
                      ("region", Printf.sprintf "r%d" region) ]
                  "hypertp_ctl_restarts_total")))
      0
      (List.init regions Fun.id)
  in
  ( {
      p_label = label;
      p_wall_s = wall;
      p_minor_words = Gc.minor_words () -. words0;
      p_entries = CP.bundle_length b;
      p_restarts = restarts;
      p_exposed_hh = r.CP.cp_exposed_host_hours;
      p_sim_wall_s = Sim.Time.to_sec_f r.CP.cp_wall_clock;
    },
    CP.summary r,
    CP.merged_to_string b )

let emit points identical =
  let oc = open_out "BENCH_controlplane.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"controlplane\",\n  \"hosts\": %d,\n  \
     \"regions\": %d,\n  \"vms_per_host\": %d,\n  \
     \"global_concurrency\": %d,\n  \"crash_byte_identical\": %b,\n  \
     \"points\": [\n"
    hosts regions vms_per_host config.CP.global_concurrency identical;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"label\": \"%s\", \"wall_clock_s\": %.3f, \"minor_words\": \
         %.0f, \"entries\": %d, \"subctl_restarts\": %d, \
         \"exposed_host_hours\": %.4f, \"sim_wall_clock_s\": %.3f}%s\n"
        p.p_label p.p_wall_s p.p_minor_words p.p_entries p.p_restarts
        p.p_exposed_hh p.p_sim_wall_s
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  note "wrote BENCH_controlplane.json@."

let run () =
  header
    (Printf.sprintf
       "Hierarchical control plane: %d hosts / %d regions, calm vs crashed"
       hosts regions);
  Format.printf "%-10s %-10s %-14s %-9s %-9s %-12s %s@." "run" "wall(s)"
    "minor-words" "entries" "restarts" "exposed-hh" "sim-wall";
  let show p =
    Format.printf "%-10s %-10.3f %-14.0f %-9d %-9d %-12.3f %.1fs@." p.p_label
      p.p_wall_s p.p_minor_words p.p_entries p.p_restarts p.p_exposed_hh
      p.p_sim_wall_s
  in
  let calm, calm_summary, calm_merged = run_once ~label:"calm" ~extra:[] () in
  show calm;
  (* Kill a sub-controller roughly mid-campaign (the calm run journals
     ~2 entries per host, so half the fleet in is halfway through), and
     once more late in the tail. *)
  let crashed, crashed_summary, crashed_merged =
    run_once ~label:"crashed"
      ~extra:
        [ { Fault.site = Fault.Subctl_crash;
            trigger = Fault.Nth_hit (calm.p_entries / 2) };
          { Fault.site = Fault.Subctl_crash;
            trigger = Fault.Nth_hit (calm.p_entries - 50) } ]
      ()
  in
  show crashed;
  let identical =
    calm_summary = crashed_summary && calm_merged = crashed_merged
  in
  if not identical then begin
    Format.eprintf
      "FATAL: crashed control-plane run diverged from the calm run@.";
    exit 1
  end;
  if crashed.p_restarts < 2 then begin
    Format.eprintf "FATAL: the armed sub-controller crashes never fired@.";
    exit 1
  end;
  note "crashed run byte-identical to calm run (%d restarts absorbed)@."
    crashed.p_restarts;
  note "recovery overhead: %+.3fs real (%+.0f%% of calm)@."
    (crashed.p_wall_s -. calm.p_wall_s)
    ((crashed.p_wall_s -. calm.p_wall_s) /. calm.p_wall_s *. 100.0);
  emit [ calm; crashed ] identical
