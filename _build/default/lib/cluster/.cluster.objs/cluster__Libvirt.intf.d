lib/cluster/libvirt.mli: Hv Hypertp
