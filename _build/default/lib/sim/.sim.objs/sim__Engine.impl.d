lib/sim/engine.ml: Array Time
