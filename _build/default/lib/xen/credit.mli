(** Xen's credit scheduler run-queues — the canonical example of VM
    Management State: per-pCPU queues referencing every runnable vCPU,
    reconstructed from the domain set after transplant rather than
    translated (section 3.1). *)

type vcpu_ref = { domid : int; vcpu_index : int }

type t

val create : pcpus:int -> t
(** Raises [Invalid_argument] on a non-positive count. *)

val pcpus : t -> int

val insert_domain : t -> domid:int -> vcpus:int -> unit
(** Assign the domain's vCPUs round-robin across run-queues with fresh
    credits. *)

val remove_domain : t -> domid:int -> unit
val queue_lengths : t -> int list
val total_queued : t -> int

val credits_of : t -> vcpu_ref -> int option

val tick : t -> unit
(** Burn credits from the head of each queue and rotate (coarse model of
    the 30 ms credit accounting tick). *)

val rebuild : t -> (int * int) list -> unit
(** [rebuild t doms] resets all queues and re-inserts [(domid, vcpus)] —
    the post-transplant reconstruction. *)

val consistent : t -> (int * int) list -> bool
(** Every vCPU of every listed domain queued exactly once, nothing
    stale. *)

val state_bytes : t -> int
val pp : Format.formatter -> t -> unit
