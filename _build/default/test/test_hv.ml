(* Tests for the hypervisor abstraction layer and the management-state
   substrates (credit scheduler, CFS, xenstore, kvmtool, NPT). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Kind --- *)

let test_kind () =
  checkb "other xen" true (Hv.Kind.other Hv.Kind.Xen = Hv.Kind.Kvm);
  checkb "other kvm" true (Hv.Kind.other Hv.Kind.Kvm = Hv.Kind.Xen);
  checkb "of_string" true (Hv.Kind.of_string "xen" = Some Hv.Kind.Xen);
  checkb "of_string bad" true (Hv.Kind.of_string "esxi" = None);
  checkb "platform map" true
    (Hv.Kind.platform Hv.Kind.Kvm = Workload.Profile.P_kvm)

(* --- Npt --- *)

let test_npt_sizing () =
  let frames_1gib_4k =
    Hv.Npt.table_frames_needed
      ~guest_frames:(Hw.Units.frames_of_bytes (Hw.Units.gib 1))
      ~page_kind:Hw.Units.Page_4k
  in
  let frames_1gib_2m =
    Hv.Npt.table_frames_needed
      ~guest_frames:(Hw.Units.frames_of_bytes (Hw.Units.gib 1))
      ~page_kind:Hw.Units.Page_2m
  in
  (* 1 GiB at 4K: 512 L1 pages + 1 L2 + 1 L3 + 1 L4. *)
  checki "4k table frames" 515 frames_1gib_4k;
  checki "2m elides the leaf level" 3 frames_1gib_2m

let test_npt_lifecycle () =
  let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
  let before = Hw.Pmem.free_frames pmem in
  let npt =
    Hv.Npt.build ~pmem ~guest_frames:(512 * 16) ~page_kind:Hw.Units.Page_2m
      ~metadata_factor:1.25
  in
  checkb "frames taken" true (Hw.Pmem.free_frames pmem < before);
  checkb "not freed" false (Hv.Npt.is_freed npt);
  Hv.Npt.free npt ~pmem;
  checkb "freed" true (Hv.Npt.is_freed npt);
  checki "returned" before (Hw.Pmem.free_frames pmem);
  (* Double free is a no-op. *)
  Hv.Npt.free npt ~pmem;
  checki "idempotent" before (Hw.Pmem.free_frames pmem)

(* --- Credit scheduler --- *)

let test_credit_insert_remove () =
  let s = Xenhv.Credit.create ~pcpus:4 in
  Xenhv.Credit.insert_domain s ~domid:1 ~vcpus:6;
  checki "queued" 6 (Xenhv.Credit.total_queued s);
  checkb "round robin" true
    (List.for_all (fun l -> l >= 1) (Xenhv.Credit.queue_lengths s));
  Xenhv.Credit.remove_domain s ~domid:1;
  checki "empty" 0 (Xenhv.Credit.total_queued s)

let test_credit_consistency () =
  let s = Xenhv.Credit.create ~pcpus:2 in
  Xenhv.Credit.insert_domain s ~domid:1 ~vcpus:2;
  Xenhv.Credit.insert_domain s ~domid:2 ~vcpus:3;
  checkb "consistent" true (Xenhv.Credit.consistent s [ (1, 2); (2, 3) ]);
  checkb "missing domain detected" false (Xenhv.Credit.consistent s [ (1, 2) ]);
  checkb "phantom domain detected" false
    (Xenhv.Credit.consistent s [ (1, 2); (2, 3); (5, 1) ]);
  Xenhv.Credit.rebuild s [ (7, 4) ];
  checkb "rebuild consistent" true (Xenhv.Credit.consistent s [ (7, 4) ]);
  checki "rebuild queued" 4 (Xenhv.Credit.total_queued s)

let test_credit_tick_rotation () =
  let s = Xenhv.Credit.create ~pcpus:1 in
  Xenhv.Credit.insert_domain s ~domid:1 ~vcpus:2;
  let head_credits () =
    Xenhv.Credit.credits_of s { Xenhv.Credit.domid = 1; vcpu_index = 0 }
  in
  let c0 = Option.get (head_credits ()) in
  Xenhv.Credit.tick s;
  checkb "credits burned" true (Option.get (head_credits ()) < c0)

(* --- CFS --- *)

let test_cfs_basics () =
  let rq = Kvmhv.Cfs.create () in
  Kvmhv.Cfs.enqueue_vm rq ~vm_name:"a" ~vcpus:2;
  Kvmhv.Cfs.enqueue_vm rq ~vm_name:"b" ~vcpus:1;
  checki "runnable" 3 (Kvmhv.Cfs.runnable rq);
  checkb "consistent" true (Kvmhv.Cfs.consistent rq [ ("a", 2); ("b", 1) ]);
  Kvmhv.Cfs.dequeue_vm rq ~vm_name:"a";
  checki "after dequeue" 1 (Kvmhv.Cfs.runnable rq);
  checkb "stale detected" false (Kvmhv.Cfs.consistent rq [ ("a", 2); ("b", 1) ])

let test_cfs_fair_pick () =
  let rq = Kvmhv.Cfs.create () in
  Kvmhv.Cfs.enqueue_vm rq ~vm_name:"a" ~vcpus:1;
  Kvmhv.Cfs.enqueue_vm rq ~vm_name:"b" ~vcpus:1;
  (* Over many picks both threads run equally often. *)
  let counts = Hashtbl.create 2 in
  for _ = 1 to 100 do
    match Kvmhv.Cfs.pick_next rq with
    | Some th ->
      Hashtbl.replace counts th.Kvmhv.Cfs.vm_name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts th.Kvmhv.Cfs.vm_name))
    | None -> Alcotest.fail "empty rq"
  done;
  checki "a picked half" 50 (Hashtbl.find counts "a");
  checki "b picked half" 50 (Hashtbl.find counts "b")

(* --- Xenstore --- *)

let test_xenstore_rw () =
  let xs = Xenhv.Xenstore.create () in
  Xenhv.Xenstore.write xs "/local/domain/1/name" "vm1";
  Alcotest.check (Alcotest.option Alcotest.string) "read back" (Some "vm1")
    (Xenhv.Xenstore.read xs "/local/domain/1/name");
  Alcotest.check (Alcotest.option Alcotest.string) "missing" None
    (Xenhv.Xenstore.read xs "/nope")

let test_xenstore_list_rm () =
  let xs = Xenhv.Xenstore.create () in
  Xenhv.Xenstore.register_domain xs ~domid:1 ~name:"a" ~memory_kib:1024 ~vcpus:1;
  Xenhv.Xenstore.register_domain xs ~domid:2 ~name:"b" ~memory_kib:1024 ~vcpus:1;
  Alcotest.check (Alcotest.list Alcotest.int) "domain ids" [ 1; 2 ]
    (Xenhv.Xenstore.domain_ids xs);
  Xenhv.Xenstore.unregister_domain xs ~domid:1;
  Alcotest.check (Alcotest.list Alcotest.int) "after rm" [ 2 ]
    (Xenhv.Xenstore.domain_ids xs);
  Alcotest.check (Alcotest.option Alcotest.string) "subtree gone" None
    (Xenhv.Xenstore.read xs "/local/domain/1/name")

let test_xenstore_path_validation () =
  let xs = Xenhv.Xenstore.create () in
  Alcotest.check_raises "relative path"
    (Invalid_argument "Xenstore: path must be absolute") (fun () ->
      Xenhv.Xenstore.write xs "foo" "bar")

(* --- Kvmtool --- *)

let test_kvmtool_processes () =
  let k = Kvmhv.Kvmtool.create () in
  let p1 = Kvmhv.Kvmtool.spawn k ~vm_name:"a" ~guest_bytes:(Hw.Units.gib 1) in
  let p2 = Kvmhv.Kvmtool.spawn k ~vm_name:"b" ~guest_bytes:(Hw.Units.gib 2) in
  checkb "distinct pids" true (p1.Kvmhv.Kvmtool.pid <> p2.Kvmhv.Kvmtool.pid);
  checki "count" 2 (Kvmhv.Kvmtool.count k);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Kvmtool.spawn: duplicate VM a") (fun () ->
      ignore (Kvmhv.Kvmtool.spawn k ~vm_name:"a" ~guest_bytes:1024));
  Kvmhv.Kvmtool.kill k ~vm_name:"a";
  checkb "killed" true (Kvmhv.Kvmtool.find k ~vm_name:"a" = None)

(* --- Host --- *)

let mk_host ?(machine = Hw.Machine.m1 ()) () =
  Hv.Host.create ~name:"t-host" machine

let test_host_boot_and_vms () =
  let host = mk_host () in
  checkb "nothing running" true (Hv.Host.hypervisor_kind host = None);
  Hv.Host.boot_hypervisor host (module Xenhv.Xen);
  checkb "xen up" true (Hv.Host.hypervisor_kind host = Some Hv.Kind.Xen);
  ignore
    (Hv.Host.create_vm host
       (Vmstate.Vm.config ~name:"a" ~ram:(Hw.Units.mib 64) ()));
  ignore
    (Hv.Host.create_vm host
       (Vmstate.Vm.config ~name:"b" ~ram:(Hw.Units.mib 64) ()));
  checki "two vms" 2 (Hv.Host.vm_count host);
  Alcotest.check (Alcotest.list Alcotest.string) "names" [ "a"; "b" ]
    (Hv.Host.vm_names host);
  checkb "mgmt consistent" true (Hv.Host.management_consistent host)

let test_host_double_boot_rejected () =
  let host = mk_host () in
  Hv.Host.boot_hypervisor host (module Kvmhv.Kvm);
  Alcotest.check_raises "double boot"
    (Invalid_argument "Host.boot_hypervisor: a hypervisor is running")
    (fun () -> Hv.Host.boot_hypervisor host (module Xenhv.Xen))

let test_host_duplicate_vm_rejected () =
  let host = mk_host () in
  Hv.Host.boot_hypervisor host (module Kvmhv.Kvm);
  let cfg = Vmstate.Vm.config ~name:"dup" ~ram:(Hw.Units.mib 32) () in
  ignore (Hv.Host.create_vm host cfg);
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Host.create_vm: duplicate VM name dup") (fun () ->
      ignore (Hv.Host.create_vm host cfg))

let test_host_pause_resume () =
  let host = mk_host () in
  Hv.Host.boot_hypervisor host (module Xenhv.Xen);
  let vm =
    Hv.Host.create_vm host (Vmstate.Vm.config ~name:"p" ~ram:(Hw.Units.mib 32) ())
  in
  Hv.Host.pause_all host;
  checkb "paused" false (Vmstate.Vm.is_running vm);
  Hv.Host.resume_all host;
  checkb "resumed" true (Vmstate.Vm.is_running vm)

let test_host_detach_keeps_memory () =
  let host = mk_host () in
  Hv.Host.boot_hypervisor host (module Xenhv.Xen);
  let vm =
    Hv.Host.create_vm host (Vmstate.Vm.config ~name:"d" ~ram:(Hw.Units.mib 32) ())
  in
  let checksum = Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem in
  let detached = Hv.Host.detach_vm host "d" in
  checki "no vms left" 0 (Hv.Host.vm_count host);
  checkb "same object" true (detached == vm);
  checkb "memory intact" true
    (Int64.equal checksum (Vmstate.Guest_mem.checksum detached.Vmstate.Vm.mem));
  checkb "backing intact" true
    (Vmstate.Guest_mem.verify_backing detached.Vmstate.Vm.mem = [])

let test_host_shutdown_destroy () =
  let host = mk_host () in
  Hv.Host.boot_hypervisor host (module Kvmhv.Kvm);
  ignore
    (Hv.Host.create_vm host (Vmstate.Vm.config ~name:"x" ~ram:(Hw.Units.mib 32) ()));
  let used = Hw.Pmem.used_frames host.Hv.Host.pmem in
  checkb "frames in use" true (used > 0);
  Hv.Host.shutdown_hypervisor host ~keep_guest_memory:false;
  checkb "nothing running" true (Hv.Host.hypervisor_kind host = None);
  checki "everything freed" 0 (Hw.Pmem.used_frames host.Hv.Host.pmem)

let test_host_crash_leaves_allocations () =
  let host = mk_host () in
  Hv.Host.boot_hypervisor host (module Xenhv.Xen);
  ignore
    (Hv.Host.create_vm host (Vmstate.Vm.config ~name:"c" ~ram:(Hw.Units.mib 32) ()));
  let used = Hw.Pmem.used_frames host.Hv.Host.pmem in
  let vms = Hv.Host.crash_hypervisor host in
  checki "one vm recovered" 1 (List.length vms);
  checkb "nothing running" true (Hv.Host.hypervisor_kind host = None);
  checki "allocations untouched (reboot will reclaim)" used
    (Hw.Pmem.used_frames host.Hv.Host.pmem)

let suites =
  [
    ("hv.kind", [ Alcotest.test_case "kinds" `Quick test_kind ]);
    ( "hv.npt",
      [
        Alcotest.test_case "table sizing" `Quick test_npt_sizing;
        Alcotest.test_case "lifecycle" `Quick test_npt_lifecycle;
      ] );
    ( "xen.credit",
      [
        Alcotest.test_case "insert/remove" `Quick test_credit_insert_remove;
        Alcotest.test_case "consistency check" `Quick test_credit_consistency;
        Alcotest.test_case "tick rotation" `Quick test_credit_tick_rotation;
      ] );
    ( "kvm.cfs",
      [
        Alcotest.test_case "basics" `Quick test_cfs_basics;
        Alcotest.test_case "fair picking" `Quick test_cfs_fair_pick;
      ] );
    ( "xen.xenstore",
      [
        Alcotest.test_case "read/write" `Quick test_xenstore_rw;
        Alcotest.test_case "list/rm" `Quick test_xenstore_list_rm;
        Alcotest.test_case "path validation" `Quick test_xenstore_path_validation;
      ] );
    ( "kvm.kvmtool",
      [ Alcotest.test_case "process table" `Quick test_kvmtool_processes ] );
    ( "hv.host",
      [
        Alcotest.test_case "boot and vms" `Quick test_host_boot_and_vms;
        Alcotest.test_case "double boot rejected" `Quick test_host_double_boot_rejected;
        Alcotest.test_case "duplicate vm rejected" `Quick test_host_duplicate_vm_rejected;
        Alcotest.test_case "pause/resume" `Quick test_host_pause_resume;
        Alcotest.test_case "detach keeps memory" `Quick test_host_detach_keeps_memory;
        Alcotest.test_case "shutdown destroys" `Quick test_host_shutdown_destroy;
        Alcotest.test_case "crash leaves allocations" `Quick
          test_host_crash_leaves_allocations;
      ] );
  ]
