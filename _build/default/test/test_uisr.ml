(* Tests for the UISR: wire primitives, CRC, codec round-trips,
   corruption rejection, fixups. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest
let rng () = Sim.Rng.create 0xF00DL

open Uisr

(* --- Wire --- *)

let test_wire_scalars () =
  let w = Wire.Writer.create () in
  Wire.Writer.u8 w 0xAB;
  Wire.Writer.u16 w 0xCDEF;
  Wire.Writer.u32 w 0x12345678;
  Wire.Writer.u64 w 0x1122334455667788L;
  Wire.Writer.bool w true;
  Wire.Writer.string w "hello";
  let r = Wire.Reader.create (Wire.Writer.contents w) in
  checki "u8" 0xAB (Wire.Reader.u8 r);
  checki "u16" 0xCDEF (Wire.Reader.u16 r);
  checki "u32" 0x12345678 (Wire.Reader.u32 r);
  Alcotest.check Alcotest.int64 "u64" 0x1122334455667788L (Wire.Reader.u64 r);
  checkb "bool" true (Wire.Reader.bool r);
  Alcotest.check Alcotest.string "string" "hello" (Wire.Reader.string r);
  checkb "eof" true (Wire.Reader.eof r)

let test_wire_list_array () =
  let w = Wire.Writer.create () in
  Wire.Writer.list w (Wire.Writer.u32 w) [ 1; 2; 3 ];
  Wire.Writer.array w (Wire.Writer.u16 w) [| 9; 8 |];
  let r = Wire.Reader.create (Wire.Writer.contents w) in
  Alcotest.check (Alcotest.list Alcotest.int) "list" [ 1; 2; 3 ]
    (Wire.Reader.list r Wire.Reader.u32);
  Alcotest.check (Alcotest.array Alcotest.int) "array" [| 9; 8 |]
    (Wire.Reader.array r Wire.Reader.u16)

let test_wire_truncation () =
  let w = Wire.Writer.create () in
  Wire.Writer.u64 w 1L;
  let short = Bytes.sub (Wire.Writer.contents w) 0 3 in
  let r = Wire.Reader.create short in
  Alcotest.check_raises "truncated" Wire.Reader.Truncated (fun () ->
      ignore (Wire.Reader.u64 r))

let test_wire_section () =
  let w = Wire.Writer.create () in
  Wire.Writer.section w ~tag:0x42 (fun inner -> Wire.Writer.u32 inner 7);
  let r = Wire.Reader.create (Wire.Writer.contents w) in
  let tag, v =
    Wire.Reader.section r (fun ~tag inner -> (tag, Wire.Reader.u32 inner))
  in
  checki "tag" 0x42 tag;
  checki "payload" 7 v

let test_wire_section_underconsumed () =
  let w = Wire.Writer.create () in
  Wire.Writer.section w ~tag:1 (fun inner -> Wire.Writer.u32 inner 7);
  let r = Wire.Reader.create (Wire.Writer.contents w) in
  checkb "underconsumption rejected" true
    (try
       ignore (Wire.Reader.section r (fun ~tag:_ _ -> ()));
       false
     with Wire.Reader.Bad_format _ -> true)

let test_crc_known () =
  (* CRC32("123456789") = 0xCBF43926 — the canonical check value. *)
  Alcotest.check Alcotest.int32 "check value" 0xCBF43926l
    (Wire.crc32 (Bytes.of_string "123456789"))

let test_crc_append_check () =
  let data = Bytes.of_string "some payload" in
  let framed = Wire.append_crc data in
  (match Wire.check_crc framed with
  | Ok body -> Alcotest.check Alcotest.string "body" "some payload" (Bytes.to_string body)
  | Error e -> Alcotest.fail e);
  Bytes.set framed 2 'X';
  checkb "corruption detected" true (Result.is_error (Wire.check_crc framed))

let prop_crc_flip_detected =
  QCheck.Test.make ~name:"single byte flip always breaks the CRC"
    QCheck.(pair (string_of_size (Gen.int_range 1 200)) (int_range 0 10_000))
    (fun (s, pos) ->
      let framed = Wire.append_crc (Bytes.of_string s) in
      let i = pos mod Bytes.length framed in
      let b = Bytes.copy framed in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
      Result.is_error (Wire.check_crc b))

(* --- Vm_state / Codec --- *)

let sample_vm ?(pins = Vmstate.Ioapic.xen_pins) ?(vcpus = 2) () =
  let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
  let vm =
    Vmstate.Vm.create ~pmem ~rng:(rng ()) ~ioapic_pins:pins
      (Vmstate.Vm.config ~name:"uisr-test" ~vcpus ~ram:(Hw.Units.mib 64)
         ~workload:Vmstate.Vm.Wl_redis ())
  in
  Vmstate.Vm.pause vm;
  vm

let test_of_vm_requires_pause () =
  let vm = sample_vm () in
  Vmstate.Vm.resume vm;
  Alcotest.check_raises "running rejected"
    (Invalid_argument "Vm_state.of_vm: VM must be paused or suspended first")
    (fun () -> ignore (Vm_state.of_vm ~source_hypervisor:"xen" vm))

let test_of_vm_shape () =
  let vm = sample_vm () in
  let u = Vm_state.of_vm ~source_hypervisor:"xen-4.12.1" vm in
  checki "vcpus" 2 (Vm_state.vcpu_count u);
  checki "frames covered" (Hw.Units.frames_of_bytes (Hw.Units.mib 64))
    (Vm_state.total_mapped_frames u);
  checkb "net device captured unplugged" true
    (List.exists
       (fun (d : Vm_state.device_snapshot) -> d.dev_unplugged)
       u.devices);
  checkb "disk captured with state" true
    (List.exists
       (fun (d : Vm_state.device_snapshot) ->
         (not d.dev_unplugged) && Array.length d.dev_emulation_state > 0)
       u.devices)

let test_memmap_pow2 () =
  let vm = sample_vm () in
  let entries = Vm_state.memmap_of_guest_mem vm.Vmstate.Vm.mem in
  List.iter
    (fun (e : Vm_state.memmap_entry) ->
      checkb "power of two" true (e.frames land (e.frames - 1) = 0))
    entries

let test_codec_roundtrip () =
  let vm = sample_vm () in
  let u = Vm_state.of_vm ~source_hypervisor:"xen-4.12.1" vm in
  match Codec.decode (Codec.encode u) with
  | Ok u' -> checkb "roundtrip equal" true (Vm_state.equal u u')
  | Error e -> Alcotest.fail (Format.asprintf "%a" Codec.pp_error e)

let test_codec_roundtrip_many_shapes () =
  List.iter
    (fun (pins, vcpus) ->
      let u =
        Vm_state.of_vm ~source_hypervisor:"kvm-5.3.1" (sample_vm ~pins ~vcpus ())
      in
      match Codec.decode (Codec.encode u) with
      | Ok u' -> checkb "roundtrip" true (Vm_state.equal u u')
      | Error e -> Alcotest.fail (Format.asprintf "%a" Codec.pp_error e))
    [ (24, 1); (24, 10); (48, 1); (48, 6) ]

let test_codec_rejects_corruption () =
  let u = Vm_state.of_vm ~source_hypervisor:"xen" (sample_vm ()) in
  let blob = Codec.encode u in
  Bytes.set blob 40 (Char.chr (Char.code (Bytes.get blob 40) lxor 0xFF));
  checkb "corrupted rejected" true (Result.is_error (Codec.decode blob))

let test_codec_rejects_truncation () =
  let u = Vm_state.of_vm ~source_hypervisor:"xen" (sample_vm ()) in
  let blob = Codec.encode u in
  let short = Bytes.sub blob 0 (Bytes.length blob / 2) in
  checkb "truncated rejected" true (Result.is_error (Codec.decode short))

let test_codec_rejects_bad_magic () =
  let u = Vm_state.of_vm ~source_hypervisor:"xen" (sample_vm ()) in
  let blob = Codec.encode u in
  Bytes.set blob 0 'Z';
  (* Re-frame with a fresh CRC so only the magic is wrong. *)
  let body = Bytes.sub blob 0 (Bytes.length blob - 4) in
  let reframed = Wire.append_crc body in
  checkb "bad magic" true
    (match Codec.decode reframed with Error Codec.Bad_magic -> true | _ -> false)

let test_codec_rejects_bad_version () =
  let u = Vm_state.of_vm ~source_hypervisor:"xen" (sample_vm ()) in
  let blob = Codec.encode u in
  let body = Bytes.sub blob 0 (Bytes.length blob - 4) in
  Bytes.set_uint16_le body 4 99;
  let reframed = Wire.append_crc body in
  checkb "bad version" true
    (match Codec.decode reframed with
    | Error (Codec.Unsupported_version 99) -> true
    | _ -> false)

let test_codec_sizes () =
  let small = Vm_state.of_vm ~source_hypervisor:"xen" (sample_vm ~vcpus:1 ()) in
  let big = Vm_state.of_vm ~source_hypervisor:"xen" (sample_vm ~vcpus:10 ()) in
  checkb "more vcpus -> bigger platform UISR" true
    (Codec.platform_size_bytes big > Codec.platform_size_bytes small);
  checkb "platform excludes memmap" true
    (Codec.platform_size_bytes small < Codec.size_bytes small);
  (* Fig 14: ~5 KiB at 1 vCPU, ~38 KiB at 10 vCPUs. *)
  let kb1 = float_of_int (Codec.platform_size_bytes small) /. 1024.0 in
  let kb10 = float_of_int (Codec.platform_size_bytes big) /. 1024.0 in
  checkb "1 vCPU platform in 2..9 KiB" true (kb1 > 2.0 && kb1 < 9.0);
  checkb "10 vCPU platform in 20..50 KiB" true (kb10 > 20.0 && kb10 < 50.0)

let prop_codec_roundtrip_random_vcpus =
  QCheck.Test.make ~name:"codec roundtrip across random vCPU counts" ~count:20
    QCheck.(int_range 1 8)
    (fun vcpus ->
      let u = Vm_state.of_vm ~source_hypervisor:"x" (sample_vm ~vcpus ()) in
      match Codec.decode (Codec.encode u) with
      | Ok u' -> Vm_state.equal u u'
      | Error _ -> false)

(* --- Fixup --- *)

let test_fixup_lossiness () =
  checkb "dropped live pins lossy" true
    (Fixup.is_lossy (Fixup.Ioapic_pins_dropped { kept = 24; dropped_connected = 3 }));
  checkb "dropped masked pins not lossy" false
    (Fixup.is_lossy (Fixup.Ioapic_pins_dropped { kept = 24; dropped_connected = 0 }));
  checkb "msr drop lossy" true (Fixup.is_lossy (Fixup.Msr_dropped 0x10));
  checkb "container change not lossy" false (Fixup.is_lossy Fixup.Lapic_container_changed);
  checkb "rescan not lossy" false (Fixup.is_lossy (Fixup.Device_rescanned 1))

let test_fixup_equal () =
  checkb "equal" true
    (Fixup.equal (Fixup.Msr_dropped 1) (Fixup.Msr_dropped 1));
  checkb "not equal" false
    (Fixup.equal (Fixup.Msr_dropped 1) (Fixup.Device_rescanned 1))

let suites =
  [
    ( "uisr.wire",
      [
        Alcotest.test_case "scalars" `Quick test_wire_scalars;
        Alcotest.test_case "lists and arrays" `Quick test_wire_list_array;
        Alcotest.test_case "truncation" `Quick test_wire_truncation;
        Alcotest.test_case "sections" `Quick test_wire_section;
        Alcotest.test_case "underconsumed section" `Quick test_wire_section_underconsumed;
        Alcotest.test_case "crc known value" `Quick test_crc_known;
        Alcotest.test_case "crc append/check" `Quick test_crc_append_check;
        qtest prop_crc_flip_detected;
      ] );
    ( "uisr.codec",
      [
        Alcotest.test_case "of_vm requires pause" `Quick test_of_vm_requires_pause;
        Alcotest.test_case "of_vm shape" `Quick test_of_vm_shape;
        Alcotest.test_case "memmap entries are pow2" `Quick test_memmap_pow2;
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "roundtrip across shapes" `Quick
          test_codec_roundtrip_many_shapes;
        Alcotest.test_case "corruption rejected" `Quick test_codec_rejects_corruption;
        Alcotest.test_case "truncation rejected" `Quick test_codec_rejects_truncation;
        Alcotest.test_case "bad magic rejected" `Quick test_codec_rejects_bad_magic;
        Alcotest.test_case "bad version rejected" `Quick test_codec_rejects_bad_version;
        Alcotest.test_case "sizes (Fig 14)" `Quick test_codec_sizes;
        qtest prop_codec_roundtrip_random_vcpus;
      ] );
    ( "uisr.fixup",
      [
        Alcotest.test_case "lossiness" `Quick test_fixup_lossiness;
        Alcotest.test_case "equality" `Quick test_fixup_equal;
      ] );
  ]
