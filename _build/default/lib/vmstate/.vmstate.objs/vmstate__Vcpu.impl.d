lib/vmstate/vcpu.ml: Format Lapic Mtrr Regs Xsave
