type vcpu_ref = { domid : int; vcpu_index : int }

type entry = { vref : vcpu_ref; mutable credits : int }

type t = {
  npcpus : int;
  queues : entry list ref array;
  mutable next_queue : int;
}

let initial_credits = 30_000 (* 30 ms in microseconds, one accounting period *)

let create ~pcpus =
  if pcpus <= 0 then invalid_arg "Credit.create: non-positive pcpus";
  { npcpus = pcpus; queues = Array.init pcpus (fun _ -> ref []); next_queue = 0 }

let pcpus t = t.npcpus

let insert_domain t ~domid ~vcpus =
  for vcpu_index = 0 to vcpus - 1 do
    let q = t.queues.(t.next_queue) in
    q := !q @ [ { vref = { domid; vcpu_index }; credits = initial_credits } ];
    t.next_queue <- (t.next_queue + 1) mod t.npcpus
  done

let remove_domain t ~domid =
  Array.iter
    (fun q -> q := List.filter (fun e -> e.vref.domid <> domid) !q)
    t.queues

let queue_lengths t =
  Array.to_list (Array.map (fun q -> List.length !q) t.queues)

let total_queued t = List.fold_left ( + ) 0 (queue_lengths t)

let credits_of t vref =
  let found = ref None in
  Array.iter
    (fun q ->
      List.iter
        (fun e ->
          if e.vref.domid = vref.domid && e.vref.vcpu_index = vref.vcpu_index
          then found := Some e.credits)
        !q)
    t.queues;
  !found

let tick t =
  Array.iter
    (fun q ->
      match !q with
      | [] -> ()
      | head :: rest ->
        head.credits <- head.credits - 10_000;
        if head.credits <= 0 then begin
          head.credits <- initial_credits;
          q := rest @ [ head ]
        end)
    t.queues

let rebuild t doms =
  Array.iter (fun q -> q := []) t.queues;
  t.next_queue <- 0;
  List.iter (fun (domid, vcpus) -> insert_domain t ~domid ~vcpus) doms

let consistent t doms =
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (domid, vcpus) ->
      for vcpu_index = 0 to vcpus - 1 do
        Hashtbl.replace expected (domid, vcpu_index) 0
      done)
    doms;
  let ok = ref true in
  Array.iter
    (fun q ->
      List.iter
        (fun e ->
          let key = (e.vref.domid, e.vref.vcpu_index) in
          match Hashtbl.find_opt expected key with
          | None -> ok := false (* stale vCPU queued *)
          | Some n -> Hashtbl.replace expected key (n + 1))
        !q)
    t.queues;
  Hashtbl.iter (fun _ n -> if n <> 1 then ok := false) expected;
  !ok

let state_bytes t =
  (* Queue heads + one entry per queued vCPU (pointers + credits + prio). *)
  (t.npcpus * 64) + (total_queued t * 48)

let pp fmt t =
  Format.fprintf fmt "credit[%d pcpus: %a]" t.npcpus
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Format.pp_print_int)
    (queue_lengths t)
