(** CVSS v2 base scoring (the paper rates flaws by CVSS v2: critical
    means score >= 7, medium means 4 <= score < 7 — section 2). *)

type access_vector = Local | Adjacent_network | Network
type access_complexity = High | Medium_c | Low_c
type authentication = Multiple | Single | None_a
type impact = None_i | Partial | Complete

type vector = {
  av : access_vector;
  ac : access_complexity;
  au : authentication;
  conf : impact;
  integ : impact;
  avail : impact;
}

val base_score : vector -> float
(** The CVSS v2 base equation, rounded to one decimal as NVD reports. *)

val parse : string -> (vector, string) result
(** Parse "AV:N/AC:L/Au:N/C:C/I:C/A:C" notation. *)

val to_string : vector -> string

type severity = Low | Medium | Critical

val severity_of_score : float -> severity
(** [>= 7.0] critical, [>= 4.0] medium, below low (paper's thresholds;
    NVD v2 calls 7+ "high" but the paper says critical). *)

val pp_severity : Format.formatter -> severity -> unit
