lib/cluster/fleet.ml: Cve Format Hashtbl Hv Hw Hypertp Int64 List Option Printf Sim Vmstate
