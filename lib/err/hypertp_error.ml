(* Structured error carried by every user-facing failure in the
   toolkit.  Replaces the scattered [Invalid_argument]/[Failure]
   raises that used to live in Api, Campaign, Fleet and Fault.parse:
   callers can match on one exception, and the CLI renders every
   failure the same way (site, reason, optional hint).

   The library sits below [fault] in the dependency graph so that all
   layers — fault injection, core engines, cluster — share the single
   exception constructor.  [Hypertp.Error] re-exports this module, so
   [Hypertp.Error.Error] and [Hypertp_error.Error] are the same
   exception. *)

type t = {
  site : string;  (** the entry point that rejected, e.g. ["Campaign.run"] *)
  reason : string;  (** what was wrong, in one sentence *)
  hint : string option;  (** how to fix it, when we know *)
}

exception Error of t

let make ~site ?hint reason = { site; reason; hint }
let raise_error ~site ?hint reason = raise (Error (make ~site ?hint reason))

let raise_errorf ~site ?hint fmt =
  Format.kasprintf (fun reason -> raise_error ~site ?hint reason) fmt

let to_string e =
  match e.hint with
  | None -> Printf.sprintf "%s: %s" e.site e.reason
  | Some h -> Printf.sprintf "%s: %s (hint: %s)" e.site e.reason h

let pp fmt e = Format.pp_print_string fmt (to_string e)
