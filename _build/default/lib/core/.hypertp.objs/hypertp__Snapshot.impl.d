lib/core/snapshot.ml: Array Bytes Char Format Hv Reader String Uisr Vmstate Writer
