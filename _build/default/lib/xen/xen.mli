(** The simulated Xen hypervisor (type-I, 4.12 HVM), re-engineered for
    HyperTP.

    Implements {!Hv.Intf.S}: domains carry Xen-specific VM_i State
    (p2m/NPT, shared-info frame, event channels), the credit scheduler
    and xenstore form the VM Management State, platform state is
    saved/loaded through the native HVM save-record stream, and a
    calibrated cost model reproduces the paper's Xen-side timings
    (slow type-I reboot, heavy libxl resume, sequential migration
    receive). *)

include Hv.Intf.S

val domid : domain -> int
val event_channels : domain -> Event_channel.t
val grant_table : domain -> Grant_table.t
val npt_frames : domain -> int
val xenstore : t -> Xenstore.t
val scheduler : t -> Credit.t
