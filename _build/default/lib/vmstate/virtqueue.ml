type desc = {
  addr : Hw.Frame.Gfn.t;
  len : int;
  write : bool;
  next : int;
}

type t = {
  ring_size : int;
  descs : desc array;
  mutable avail : int;
  mutable used : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create rng ~size ~guest_frames =
  if not (is_pow2 size) then invalid_arg "Virtqueue.create: size not a power of two";
  if guest_frames <= 0 then invalid_arg "Virtqueue.create: no guest frames";
  let descs =
    Array.init size (fun i ->
        {
          addr = Hw.Frame.Gfn.of_int (Sim.Rng.int rng guest_frames);
          len = 64 + Sim.Rng.int rng 4032;
          write = Sim.Rng.int rng 2 = 1;
          next = (if i land 1 = 0 && i + 1 < size then i + 1 else -1);
        })
  in
  (* A live queue: the guest has posted some buffers, the device has
     completed a prefix of them. *)
  let avail = Sim.Rng.int rng (size * 4) in
  let used = Stdlib.max 0 (avail - Sim.Rng.int rng (Stdlib.min size (avail + 1))) in
  { ring_size = size; descs; avail; used }

let size t = t.ring_size
let avail_idx t = t.avail
let used_idx t = t.used
let in_flight t = t.avail - t.used

let guest_post t n =
  if n < 0 then invalid_arg "Virtqueue.guest_post: negative";
  if in_flight t + n > t.ring_size then
    invalid_arg "Virtqueue.guest_post: ring full";
  t.avail <- t.avail + n

let device_complete t n =
  if n < 0 then invalid_arg "Virtqueue.device_complete: negative";
  if t.used + n > t.avail then
    invalid_arg "Virtqueue.device_complete: overtaking avail";
  t.used <- t.used + n

let quiesce t = t.used <- t.avail

let descriptor t i =
  if i < 0 || i >= t.ring_size then invalid_arg "Virtqueue.descriptor: index";
  t.descs.(i)

(* Serialisation: header word (size, avail, used packed), then two words
   per descriptor. *)
let to_words t =
  let words = Array.make (1 + (2 * t.ring_size)) 0L in
  words.(0) <-
    Int64.logor
      (Int64.of_int (t.ring_size land 0xFFFF))
      (Int64.logor
         (Int64.shift_left (Int64.of_int (t.avail land 0xFFFFFF)) 16)
         (Int64.shift_left (Int64.of_int (t.used land 0xFFFFFF)) 40));
  Array.iteri
    (fun i d ->
      words.(1 + (2 * i)) <- Int64.of_int (Hw.Frame.Gfn.to_int d.addr);
      words.(2 + (2 * i)) <-
        Int64.logor
          (Int64.of_int (d.len land 0xFFFFFF))
          (Int64.logor
             (Int64.shift_left (if d.write then 1L else 0L) 24)
             (Int64.shift_left
                (Int64.of_int ((d.next + 1) land 0xFFFF))
                32)))
    t.descs;
  words

let of_words words =
  if Array.length words < 1 then invalid_arg "Virtqueue.of_words: empty";
  let header = words.(0) in
  let field off width =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical header off)
         (Int64.sub (Int64.shift_left 1L width) 1L))
  in
  let ring_size = field 0 16 in
  if not (is_pow2 ring_size) then invalid_arg "Virtqueue.of_words: bad size";
  if Array.length words <> 1 + (2 * ring_size) then
    invalid_arg "Virtqueue.of_words: truncated";
  let avail = field 16 24 in
  let used = field 40 24 in
  if used > avail then invalid_arg "Virtqueue.of_words: used ahead of avail";
  let descs =
    Array.init ring_size (fun i ->
        let w2 = words.(2 + (2 * i)) in
        let f off width =
          Int64.to_int
            (Int64.logand
               (Int64.shift_right_logical w2 off)
               (Int64.sub (Int64.shift_left 1L width) 1L))
        in
        {
          addr = Hw.Frame.Gfn.of_int (Int64.to_int words.(1 + (2 * i)));
          len = f 0 24;
          write = f 24 1 = 1;
          next = f 32 16 - 1;
        })
  in
  { ring_size; descs; avail; used }

let equal a b =
  a.ring_size = b.ring_size && a.avail = b.avail && a.used = b.used
  && Array.for_all2
       (fun (x : desc) y ->
         Hw.Frame.Gfn.equal x.addr y.addr && x.len = y.len
         && Bool.equal x.write y.write && x.next = y.next)
       a.descs b.descs

let pp fmt t =
  Format.fprintf fmt "vq[%d descs, avail %d, used %d, %d in flight]"
    t.ring_size t.avail t.used (in_flight t)
