let makespan ~workers jobs =
  if workers <= 0 then invalid_arg "Costs.makespan: non-positive workers";
  match jobs with
  | [] -> 0.0
  | _ ->
    let sorted = List.sort (fun a b -> Float.compare b a) jobs in
    let loads = Array.make workers 0.0 in
    let place job =
      let best = ref 0 in
      for i = 1 to workers - 1 do
        if loads.(i) < loads.(!best) then best := i
      done;
      loads.(!best) <- loads.(!best) +. job
    in
    List.iter place sorted;
    Array.fold_left Float.max 0.0 loads

let mem_factor (m : Hw.Machine.t) = m.costs.Hw.Machine.mem_factor

let pram_build_seconds m ~gib ~entries =
  ((0.33 +. (0.11 *. gib)) +. (0.4e-6 *. float_of_int entries)) *. mem_factor m

let pram_finalize_seconds m ~total_gib nvms =
  (0.012 +. (0.018 *. total_gib) +. (0.004 *. float_of_int nvms))
  *. mem_factor m

let pram_parse_seconds m ~metadata_pages ~entries ~covered_frames =
  ((15e-6 *. float_of_int metadata_pages)
  +. (2e-6 *. float_of_int entries)
  +. (0.3e-6 *. float_of_int covered_frames))
  *. mem_factor m

let uisr_encode_seconds ~bytes_len = 2e-9 *. float_of_int bytes_len
let resume_seconds ~nvms = 0.003 *. float_of_int nvms

let audit_sweep_seconds m ~frames_swept ~vms =
  ((0.2e-6 *. float_of_int frames_swept) +. (0.002 *. float_of_int vms))
  *. mem_factor m

let scrub_seconds m ~frames_freed ~findings =
  ((5e-6 *. float_of_int frames_freed) +. (0.001 *. float_of_int findings))
  *. mem_factor m

let per_riding_vm_seconds = 0.4

let expected_host_upgrade_seconds ~boot_seconds ~vms =
  boot_seconds +. (per_riding_vm_seconds *. float_of_int vms)

(* Shadow-host cutover: staging the spare is the target boot plus a
   per-VM skeleton pre-restore, all paid while the source serves; the
   identity swap itself is a fixed ARP/route flip on top of the final
   dirty set; reclaim tears the source copies down after the commit. *)
let shadow_prestage_vm_seconds = 0.25

let shadow_stage_seconds ~boot_seconds ~vms =
  if boot_seconds < 0.0 then
    invalid_arg "Costs.shadow_stage_seconds: negative boot time";
  boot_seconds +. (shadow_prestage_vm_seconds *. float_of_int vms)

let shadow_flip_seconds = 0.0005
let shadow_reclaim_seconds ~vms = 0.5 +. (0.15 *. float_of_int vms)

let straggler_deadline_seconds ~factor ~expected =
  if factor < 1.0 then
    invalid_arg "Costs.straggler_deadline_seconds: factor below 1.0";
  if expected < 0.0 then
    invalid_arg "Costs.straggler_deadline_seconds: negative expected duration";
  factor *. expected

(* Per-host estimates are pure functions of small keys (hv pair, VM
   profile), yet campaign planning used to recompute them once per
   host — at 10k hosts that is 10k identical Precopy plans and boot
   models.  [Memo] caches them; correctness is unchanged because the
   underlying estimators are deterministic. *)
module Memo = struct
  (* The caches behind [Upgrade.migration_op_time] and
     [inplace_host_time] are module-level, so sharded fleet runs hit
     them from several domains at once.  A mutex keeps the table
     consistent; determinism is unaffected because the memoised
     estimators are pure — whichever domain wins the race stores the
     same value every other domain would have. *)
  type ('a, 'b) t = { tbl : ('a, 'b) Hashtbl.t; lock : Mutex.t }

  let create n : ('a, 'b) t = { tbl = Hashtbl.create n; lock = Mutex.create () }

  let find_or_add t key f =
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.tbl key with
    | Some v ->
      Mutex.unlock t.lock;
      v
    | None ->
      (* Compute outside the lock: [f] may be expensive, and a second
         domain asking for the same key should not serialise on it.
         Re-check before storing so the table never holds duplicates. *)
      Mutex.unlock t.lock;
      let v = f key in
      Mutex.lock t.lock;
      if not (Hashtbl.mem t.tbl key) then Hashtbl.add t.tbl key v;
      Mutex.unlock t.lock;
      v
end
