type checks = {
  guest_memory_intact : bool;
  pram_parse_ok : bool;
  kexec_image_intact : bool;
  uisr_roundtrip_ok : bool;
  management_consistent : bool;
  platform_preserved : bool;
  devices_preserved : bool;
}

let all_ok c =
  c.guest_memory_intact && c.pram_parse_ok && c.kexec_image_intact
  && c.uisr_roundtrip_ok && c.management_consistent && c.platform_preserved
  && c.devices_preserved

type recovery_detail = {
  recovery_faults : Fault.site list;
  restore_retries : int;
  quarantined : string list;
  salvaged : (string * string list) list;
  mgmt_rebuilds : int;
  full_reboot : bool;
  recovery_time : Sim.Time.t;
  audit_findings : int;
  audit_scrubbed : int;
}

type outcome =
  | Committed
  | Rolled_back of Fault.site
  | Recovered of recovery_detail

type report = {
  source : string;
  target : string;
  vm_count : int;
  phases : Phases.t;
  fixups : (string * Uisr.Fixup.t list) list;
  uisr_platform_bytes : int;
  pram_accounting : Pram.Layout.accounting;
  frames_wiped : int;
  checks : checks;
  outcome : outcome;
  audit : Audit.report option;
}

(* Platform state must survive modulo recorded fixups: vCPUs and PIT
   exactly; the IOAPIC up to the pin count both sides share; MSRs minus
   the recorded drops. *)
let platform_preserved ~(before : Uisr.Vm_state.t) ~(after : Uisr.Vm_state.t)
    ~fixups =
  let dropped_msrs =
    List.filter_map
      (function Uisr.Fixup.Msr_dropped i -> Some i | _ -> None)
      fixups
  in
  let strip_msrs (v : Vmstate.Vcpu.t) =
    {
      v with
      regs =
        {
          v.regs with
          msrs =
            List.filter
              (fun (m : Vmstate.Regs.msr) -> not (List.mem m.index dropped_msrs))
              v.regs.msrs;
        };
    }
  in
  let vcpus_ok =
    List.length before.vcpus = List.length after.vcpus
    && List.for_all2
         (fun b a -> Vmstate.Vcpu.equal (strip_msrs b) a)
         before.vcpus after.vcpus
  in
  let shared_pins =
    Stdlib.min
      (Vmstate.Ioapic.pin_count before.ioapic)
      (Vmstate.Ioapic.pin_count after.ioapic)
  in
  let ioapic_ok =
    let truncate io =
      fst (Vmstate.Ioapic.truncate io ~pins:shared_pins)
    in
    Vmstate.Ioapic.equal (truncate before.ioapic) (truncate after.ioapic)
  in
  let pit_ok = Vmstate.Pit.equal before.pit after.pit in
  vcpus_ok && ioapic_ok && pit_ok

let devices_preserved ~(before : Uisr.Vm_state.t) (vm : Vmstate.Vm.t) =
  List.length before.devices = Array.length vm.devices
  && List.for_all2
       (fun (s : Uisr.Vm_state.device_snapshot) (d : Vmstate.Device.t) ->
         s.dev_id = d.id && s.dev_kind = d.kind
         && s.dev_tcp_connections = d.tcp_connections)
       before.devices
       (Array.to_list vm.devices)

(* Transplant aborted before the point-of-no-return: unwind staging and
   resume on the source hypervisor. *)
exception Rollback of Fault.site

let empty_accounting =
  {
    Pram.Layout.pointer_pages = 0;
    root_pages = 0;
    file_info_pages = 0;
    node_pages = 0;
    total_pages = 0;
    total_bytes = 0;
    entry_count = 0;
  }

(* Recovery-ladder cost constants (ReHype-style, Le & Tamir 2014): a
   failed per-VM restore attempt, triaging a quarantined VM, and the
   last-resort full firmware reboot. *)
let restore_retry_seconds = 0.5
let quarantine_triage_seconds = 0.1
let salvage_repair_seconds = 0.05
let full_reboot_seconds = 60.0

(* Replay the finished run's timeline into an optional tracer and roll
   the phase durations into the metrics registry.  Phase spans are laid
   back-to-back from t=0 using the exact [Sim.Time.t] values stored in
   the report, so [Phases.of_trace] reconciles with the report to the
   tick; recovery-ladder rungs become sequential children of the
   recovery phase, per-VM restores parallel children of restoration. *)
let emit_obs obs metrics ~source ~target ~(phases : Phases.t) ~rungs ~restores
    ~outcome_label ~events =
  let track = "inplace" in
  let root =
    Otrace.start obs ~at:Sim.Time.zero ~track
      ~attrs:
        [ ("engine", "inplace"); ("source", source); ("target", target);
          ("outcome", outcome_label) ]
      "inplace"
  in
  let c = ref Sim.Time.zero in
  let phase name d children =
    let s =
      Otrace.start obs ~at:!c ?parent:root ~track (Phases.span_prefix ^ name)
    in
    children s !c;
    c := Sim.Time.add !c d;
    Otrace.finish obs s ~at:!c
  in
  phase "pram" phases.Phases.pram (fun _ _ -> ());
  phase "translation" phases.Phases.translation (fun _ _ -> ());
  phase "reboot" phases.Phases.reboot (fun _ _ -> ());
  let reboot_end = !c in
  phase "restoration" phases.Phases.restoration (fun p start ->
      List.iter
        (fun (vm, secs) ->
          ignore
            (Otrace.span obs ~at:start
               ~until:(Sim.Time.add start (Sim.Time.of_sec_f secs))
               ?parent:p ~track:("vm:" ^ vm) ~attrs:[ ("vm", vm) ]
               ("restore:" ^ vm)))
        restores);
  phase "recovery" phases.Phases.recovery (fun p start ->
      let rc = ref start in
      List.iter
        (fun (short, attrs, secs) ->
          let until = Sim.Time.add !rc (Sim.Time.of_sec_f secs) in
          ignore
            (Otrace.span obs ~at:!rc ~until ?parent:p ~track ~attrs
               ("rung:" ^ short));
          rc := until)
        rungs);
  (* The NIC starts initialising when the new kernel boots and runs in
     parallel with restoration (section 5.2). *)
  ignore
    (Otrace.span obs ~at:reboot_end
       ~until:(Sim.Time.add reboot_end phases.Phases.network) ?parent:root
       ~track:"network"
       (Phases.span_prefix ^ "network"));
  List.iter (fun (at, label) -> Otrace.event root ~at label) events;
  let stop = Sim.Time.max !c (Sim.Time.add reboot_end phases.Phases.network) in
  Otrace.finish obs root ~at:stop;
  let obs_phase name d =
    Otrace.observe metrics
      ~labels:[ ("engine", "inplace"); ("phase", name) ]
      ~buckets:Otrace.seconds_buckets "hypertp_phase_seconds"
      (Sim.Time.to_sec_f d)
  in
  obs_phase "pram" phases.Phases.pram;
  obs_phase "translation" phases.Phases.translation;
  obs_phase "reboot" phases.Phases.reboot;
  obs_phase "restoration" phases.Phases.restoration;
  obs_phase "recovery" phases.Phases.recovery;
  obs_phase "network" phases.Phases.network;
  Otrace.observe metrics
    ~labels:[ ("engine", "inplace") ]
    ~buckets:Otrace.seconds_buckets "hypertp_downtime_seconds"
    (Sim.Time.to_sec_f (Phases.downtime phases));
  List.iter
    (fun (short, _, _) ->
      Otrace.count metrics
        ~labels:[ ("engine", "inplace"); ("rung", short) ]
        "hypertp_recovery_rungs_total")
    rungs;
  Otrace.count metrics
    ~labels:[ ("engine", "inplace"); ("outcome", outcome_label) ]
    "hypertp_transplants_total"

let run ?ctx ?options ?rng ?fault ?obs ?metrics ~(host : Hv.Host.t)
    ~target:(module T : Hv.Intf.S) () =
  let c = Ctx.resolve ?ctx ?options ?rng ?fault ?obs ?metrics () in
  let options = c.Ctx.options in
  let rng =
    match c.Ctx.rng with Some r -> r | None -> Sim.Rng.create 0x1A2BL
  in
  let fault = c.Ctx.fault in
  let obs = c.Ctx.obs in
  let metrics = c.Ctx.metrics in
  let (Hv.Host.Packed ((module S), _, _)) = Hv.Host.running_exn host in
  if Hv.Kind.equal S.kind T.kind then
    invalid_arg "Inplace.run: target equals the running hypervisor";
  let vm_names = Hv.Host.vm_names host in
  if vm_names = [] then invalid_arg "Inplace.run: no VMs to transplant";
  let machine = host.Hv.Host.machine in
  let pmem = host.Hv.Host.pmem in
  let workers =
    if options.Options.parallel_translation then Hw.Machine.worker_threads machine
    else 1
  in
  let obs = Option.map Otrace.attach obs in
  let jit () = Sim.Rng.jitter rng 0.02 in
  let fire ?vm site =
    match fault with
    | Some f ->
      let fired = Fault.fire f ?vm site in
      if fired then begin
        Log.warn (fun m ->
            m "fault injected at %a%s" Fault.pp_site site
              (match vm with Some v -> " (" ^ v ^ ")" | None -> ""));
        Otrace.count metrics
          ~labels:
            [ ("engine", "inplace");
              ("site", Format.asprintf "%a" Fault.pp_site site) ]
          "hypertp_faults_total"
      end;
      fired
    | None -> false
  in
  Log.info (fun m ->
      m "InPlaceTP %s -> %s on %s: %d VMs, options %a" S.name T.name
        machine.Hw.Machine.name (List.length vm_names) Options.pp options);

  (* Per-VM pre-transplant ground truth for the correctness checks. *)
  let vms = List.map (fun n -> (n, Option.get (Hv.Host.find_vm host n))) vm_names in
  let checksums_before =
    List.map (fun (n, vm) -> (n, Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem)) vms
  in

  (* Staging state, unwound transactionally if a pre-PNR fault fires. *)
  let staged_image = ref None in
  let staged_pram = ref None in
  let paused = ref false in
  let pram_spent = ref 0.0 in
  let translation_spent = ref 0.0 in
  let built_acct = ref empty_accounting in
  try
    (* Step 1: stage the target's kernel image (ahead of time). *)
    let image =
      Kexec.load ~pmem ~kernel:T.name ~size:T.kernel_image_bytes
        ~cmdline:"console=ttyS0"
    in
    staged_image := Some image;
    if fire Fault.Kexec_load then raise (Rollback Fault.Kexec_load);

    (* Step 2a: build PRAM while VMs run (or later, inside the downtime,
       if the preparation optimisation is off). *)
    let granularity =
      if options.Options.huge_page_pram then Hw.Units.Page_2m else Hw.Units.Page_4k
    in
    let pram_inputs =
      List.map
        (fun (n, vm) ->
          ( n,
            vm.Vmstate.Vm.config.ram,
            Uisr.Vm_state.memmap_of_guest_mem vm.Vmstate.Vm.mem ))
        vms
    in
    List.iter
      (fun (n, _) ->
        if fire ~vm:n Fault.Pram_build then raise (Rollback Fault.Pram_build))
      vms;
    let pram_image = Pram.Build.build ~pmem ~granularity pram_inputs in
    staged_pram := Some pram_image;
    let acct = Pram.Build.accounting pram_image in
    built_acct := acct;
    let per_file_entries =
      List.map
        (fun f -> List.length f.Pram.Build.entries)
        (Pram.Build.files pram_image)
    in
    let pram_jobs =
      List.map2
        (fun (_, vm) entries ->
          Costs.pram_build_seconds machine
            ~gib:(Hw.Units.to_gib_f vm.Vmstate.Vm.config.ram)
            ~entries)
        vms per_file_entries
    in
    let pram_seconds = Costs.makespan ~workers pram_jobs *. jit () in
    pram_spent := pram_seconds;
    Log.debug (fun m ->
        m "PRAM built: %a (%.3f s)" Pram.Layout.pp_accounting acct pram_seconds);

    (* Step 2b: pause all VMs — downtime begins. *)
    Hv.Host.pause_all host;
    paused := true;
    Log.debug (fun m -> m "VMs paused; downtime window opens");

    (* Step 3: translate VM_i State to UISR (to_uisr_xxx family). *)
    let save_jobs =
      let (Hv.Host.Packed ((module S), shv, table)) = Hv.Host.running_exn host in
      List.map
        (fun (n, _) ->
          match Hashtbl.find_opt table n with
          | None -> assert false
          | Some dom -> Sim.Time.to_sec_f (S.save_cost shv dom))
        vms
    in
    translation_spent := Costs.makespan ~workers save_jobs;
    let uisrs = Hv.Host.to_uisr_all host in
    let blobs =
      List.map
        (fun (n, u) ->
          if fire ~vm:n Fault.Uisr_encode then raise (Rollback Fault.Uisr_encode);
          let b = Uisr.Codec.encode u in
          translation_spent :=
            !translation_spent +. Costs.uisr_encode_seconds ~bytes_len:(Bytes.length b);
          (n, u, b))
        uisrs
    in
    let uisr_platform_bytes =
      List.fold_left
        (fun acc (_, u, _) -> acc + Uisr.Codec.platform_size_bytes u)
        0 blobs
    in
    let encode_seconds =
      List.fold_left
        (fun acc (_, _, b) -> acc +. Costs.uisr_encode_seconds ~bytes_len:(Bytes.length b))
        0.0 blobs
    in
    let total_gib = List.fold_left (fun acc (_, vm) -> acc +. Hw.Units.to_gib_f vm.Vmstate.Vm.config.ram) 0.0 vms in
    let translation_seconds =
      (Costs.makespan ~workers save_jobs +. encode_seconds
      +. Costs.pram_finalize_seconds machine ~total_gib (List.length vms))
      *. jit ()
    in
    (* Without the preparation optimisation PRAM construction happens here,
       inside the downtime window. *)
    let pram_phase, translation_seconds =
      if options.Options.prepare_before_pause then (pram_seconds, translation_seconds)
      else (0.0, translation_seconds +. pram_seconds)
    in

    (* Point of no return: drop the source hypervisor without orderly
       teardown — the micro-reboot reclaims its heap, NPTs and
       management state; guest memory stays allocated and in place.
       From here on a fault cannot abort; it must be recovered from on
       the target side (ReHype-style). *)
    let detached = Hv.Host.crash_hypervisor host in
    let recovery_faults = ref [] in
    let note site =
      if not (List.mem site !recovery_faults) then
        recovery_faults := site :: !recovery_faults
    in
    let recovery_seconds = ref 0.0 in
    let full_reboot = ref false in
    (* Recovery-ladder rungs in firing order, each a (name, span attrs,
       seconds) triple: the trace lays them out sequentially inside the
       recovery phase span, and their seconds sum to recovery_seconds. *)
    let rungs = ref [] in
    let rung short attrs secs =
      recovery_seconds := !recovery_seconds +. secs;
      rungs := (short, attrs, secs) :: !rungs
    in

    (* Step 4: micro-reboot into the target with the PRAM pointer on its
       command line. *)
    let image = Kexec.with_pram_pointer image (Pram.Build.pointer_mfn pram_image) in
    staged_image := Some image;
    let preserve = Pram.Build.preserve_predicate pram_image in
    if fire Fault.Kexec_jump then Kexec.clobber ~pmem image;
    let jump = Kexec.execute ~pmem image ~preserve in
    Log.debug (fun m ->
        m "kexec jump: %d frames reclaimed, image %s" jump.Kexec.frames_wiped
          (if jump.Kexec.image_intact then "intact" else "CLOBBERED"));
    if not jump.Kexec.image_intact then begin
      (* The integrity check caught a clobbered image after the source
         hypervisor was already gone: fall back to a full firmware
         reboot of the target — PRAM-preserved guest memory still
         rides along (ReHype's microreboot premise). *)
      note Fault.Kexec_jump;
      full_reboot := true;
      rung "full_reboot" [ ("cause", "kexec_clobber") ] full_reboot_seconds;
      Log.warn (fun m -> m "kexec image clobbered: full-reboot fallback")
    end;
    if fire Fault.Host_crash then begin
      (* The host crashes during the vulnerable window between jump and
         restoration: account a full reboot, then proceed to restore
         from the preserved PRAM + UISR staging. *)
      note Fault.Host_crash;
      full_reboot := true;
      rung "full_reboot" [ ("cause", "host_crash") ] full_reboot_seconds
    end;
    let pointer =
      match Kexec.pram_pointer_of_cmdline (Kexec.cmdline image) with
      | Some mfn -> mfn
      | None -> invalid_arg "Inplace.run: PRAM pointer lost from cmdline"
    in
    (* In-page bit-rot during the vulnerable window: flip a byte inside
       one VM's file-info page.  The pmem sentinel stays intact, so only
       the per-page CRC added at build time can catch it. *)
    List.iteri
      (fun i (n, _) ->
        if fire ~vm:n Fault.Pram_corrupt then begin
          note Fault.Pram_corrupt;
          ignore (Pram.Build.corrupt_file pram_image ~index:i)
        end)
      vms;
    (* Early boot: the target parses PRAM sequentially and reserves guest
       memory before its allocator comes up.  The verified parse
       contains per-file damage: a VM whose pages fail their CRC is
       lost, but its siblings still parse and get re-reserved. *)
    let parsed = Pram.Parse.parse_verified ~pmem ~image:pram_image pointer in
    let pram_damaged = ref [] in
    let pram_parse_ok =
      match parsed with
      | Ok outcomes ->
        List.length outcomes = List.length vms
        && List.for_all2
             (fun (n, vm) outcome ->
               match outcome with
               | Pram.Parse.File_damaged err ->
                 Log.warn (fun m ->
                     m "PRAM file for %s damaged: %a" n Pram.Parse.pp_error err);
                 pram_damaged := n :: !pram_damaged;
                 (* Contained damage is the recovery ladder's business
                    (the VM is quarantined below), not a parse failure. *)
                 true
               | Pram.Parse.File_ok f ->
                 String.equal f.Pram.Parse.name n
                 && List.fold_left (fun a e -> a + Pram.Entry.frames e) 0 f.entries
                    = Hw.Units.frames_of_bytes vm.Vmstate.Vm.config.ram)
             vms outcomes
      | Error err ->
        Log.warn (fun m -> m "PRAM table lost: %a" Pram.Parse.pp_error err);
        false
    in
    let covered_frames =
      List.fold_left
        (fun acc (_, vm) -> acc + Hw.Units.frames_of_bytes vm.Vmstate.Vm.config.ram)
        0 vms
    in
    let parse_seconds =
      Costs.pram_parse_seconds machine ~metadata_pages:acct.Pram.Layout.total_pages
        ~entries:acct.Pram.Layout.entry_count ~covered_frames
    in
    let boot_seconds = Sim.Time.to_sec_f (T.boot_time ~machine) in
    let reboot_seconds = (boot_seconds +. parse_seconds) *. jit () in
    Hv.Host.boot_hypervisor host (module T);
    Kexec.unload ~pmem image;
    staged_image := None;

    (* Step 5+6: restore each VM from UISR onto its untouched memory.
       Recovery ladder on post-PNR faults: retry a failed restore up to
       the configured limit, quarantine VMs whose UISR blob no longer
       decodes, and escalate management-rebuild failures. *)
    let quarantined = ref [] in
    let salvaged = ref [] in
    let restore_retries = ref 0 in
    let restore_results =
      List.filter_map
        (fun (n, u, blob) ->
          let blob =
            if fire ~vm:n Fault.Uisr_decode then begin
              note Fault.Uisr_decode;
              (* Damage a mandatory section: the per-section CRC catches
                 it, but there is no salvaging a vCPU table. *)
              Uisr.Codec.corrupt_section ~tag:Uisr.Codec.tag_vcpu blob
            end
            else blob
          in
          let blob =
            if fire ~vm:n Fault.Uisr_corrupt then begin
              note Fault.Uisr_corrupt;
              (* Damage a salvageable section: the decoder discards the
                 PIT and substitutes architectural reset defaults. *)
              Uisr.Codec.corrupt_section ~tag:Uisr.Codec.tag_pit blob
            end
            else blob
          in
          let quarantine why =
            Log.warn (fun m -> m "quarantining %s: %s" n why);
            quarantined := n :: !quarantined;
            rung "quarantine" [ ("vm", n); ("why", why) ]
              quarantine_triage_seconds;
            None
          in
          let restore ~before ~salvage =
            let roundtrip = Uisr.Vm_state.equal before u in
            let mem = (List.assoc n detached).Vmstate.Vm.mem in
            let rec attempt k =
              if fire ~vm:n Fault.Vm_restore then begin
                note Fault.Vm_restore;
                rung "restore_retry" [ ("vm", n) ] restore_retry_seconds;
                if k > options.Options.restore_retry_limit then None
                else begin
                  incr restore_retries;
                  attempt (k + 1)
                end
              end
              else Some (Hv.Host.restore_from_uisr host ~mem before)
            in
            match attempt 1 with
            | None -> quarantine "restore retries exhausted"
            | Some fixups -> Some (n, before, fixups, roundtrip, salvage)
          in
          if List.mem n !pram_damaged then
            quarantine "PRAM file-info page failed its CRC; frames not re-reserved"
          else
            let report = Uisr.Codec.decode_verified ~frame_ok:preserve blob in
            match report.Uisr.Integrity.verdict with
            | Uisr.Integrity.Intact -> (
              match report.Uisr.Integrity.state with
              | None -> quarantine "decoder returned no state" (* unreachable *)
              | Some decoded -> restore ~before:decoded ~salvage:None)
            | Uisr.Integrity.Salvaged diags -> (
              match report.Uisr.Integrity.state with
              | None -> quarantine "salvage produced no state" (* unreachable *)
              | Some s ->
                let msgs =
                  List.map
                    (fun d ->
                      Format.asprintf "%a" Uisr.Integrity.pp_diagnostic d)
                    diags
                in
                Log.warn (fun m ->
                    m "salvaging %s: %d diagnostic(s)" n (List.length diags));
                salvaged := (n, msgs) :: !salvaged;
                rung "salvage" [ ("vm", n) ] salvage_repair_seconds;
                restore ~before:s ~salvage:(Some msgs))
            | Uisr.Integrity.Rejected d ->
              quarantine
                (Format.asprintf "UISR rejected (%a)" Uisr.Integrity.pp_diagnostic
                   d))
        blobs
    in
    let survivors = List.length restore_results in
    let restore_jobs =
      let (Hv.Host.Packed ((module T'), thv, table)) = Hv.Host.running_exn host in
      List.map
        (fun (n, _, _, _, _) ->
          match Hashtbl.find_opt table n with
          | None -> assert false
          | Some dom -> Sim.Time.to_sec_f (T'.restore_cost thv dom))
        restore_results
    in
    let rebuild_cost = Sim.Time.to_sec_f (Hv.Host.rebuild_management_state host) in
    let mgmt_rebuilds = ref 0 in
    let rec mgmt_attempt k =
      if fire Fault.Mgmt_rebuild then begin
        note Fault.Mgmt_rebuild;
        if k >= 3 then begin
          full_reboot := true;
          rung "full_reboot" [ ("cause", "mgmt_rebuild") ] full_reboot_seconds
        end
        else begin
          incr mgmt_rebuilds;
          rung "mgmt_rebuild" []
            (Sim.Time.to_sec_f (Hv.Host.rebuild_management_state host));
          mgmt_attempt (k + 1)
        end
      end
    in
    mgmt_attempt 1;
    let restoration_raw =
      Costs.makespan ~workers restore_jobs
      +. rebuild_cost
      +. Costs.resume_seconds ~nvms:survivors
    in
    (* With early restoration, VM restores start as soon as the services
       KVM VMs need are up (section 4.2.5); without it they wait for the
       whole system to settle, paying a boot-tail penalty. *)
    let restoration_seconds =
      (if options.Options.early_restoration then restoration_raw
       else restoration_raw +. (0.15 *. boot_seconds))
      *. jit ()
    in

    (* Step 7: resume guests, free ephemeral PRAM metadata. *)
    Hv.Host.resume_all host;
    Pram.Build.release pram_image ~pmem;
    staged_pram := None;
    Log.info (fun m ->
        m "transplant complete: downtime %.3f s"
          (translation_seconds +. reboot_seconds +. restoration_seconds
          +. !recovery_seconds));

    (* Step 8 (optional, Ctx-armed): post-commit residual audit.  Sweep
       the target world against a fresh-boot reference of the target,
       scrub-and-recheck on findings, and escalate the recovery ladder
       if the scrub fails — a world with known residue must not report
       Committed.  Audit and scrub time are charged as recovery rungs,
       so the obs spans and the downtime model both see them. *)
    let audit_report = ref None in
    let audit_residue = ref false in
    let audit_findings = ref 0 in
    let audit_scrubbed = ref 0 in
    (match c.Ctx.audit with
    | None -> ()
    | Some acfg ->
      let reference =
        Audit.reference_of_fresh_boot ~machine (module T : Hv.Intf.S)
      in
      let source_ref =
        Audit.reference_of_fresh_boot ~machine (module S : Hv.Intf.S)
      in
      let downtime =
        Sim.Time.of_sec_f
          (translation_seconds +. reboot_seconds +. restoration_seconds
          +. !recovery_seconds)
      in
      let world =
        Audit.world
          ~baseline:(List.map (fun (n, u, _) -> (n, u)) blobs)
          ~downtime
          ~salvaged:(List.map fst !salvaged)
          host
      in
      let world =
        if fire Fault.Residual_leak then begin
          (* The transplant left residue behind: orphaned PRAM, source
             heap frames, a stale kernel frame and a retained staged
             blob.  The audit below must catch all of it. *)
          note Fault.Residual_leak;
          let victim = fst (List.hd vms) in
          Audit.Plant.apply ~reference ~source:source_ref world
            [ Audit.Plant.Pram_page; Audit.Plant.Hv_frames 2;
              Audit.Plant.Kexec_frame; Audit.Plant.Stale_blob victim ]
        end
        else world
      in
      let sweep w =
        let r = Audit.run ~reference ~source:source_ref w in
        rung "audit"
          [ ("findings", string_of_int (List.length r.Audit.r_findings)) ]
          (Costs.audit_sweep_seconds machine
             ~frames_swept:r.Audit.r_frames_swept
             ~vms:(List.length (Hv.Host.vms host)));
        r
      in
      let first = sweep world in
      audit_report := Some first;
      audit_findings := List.length first.Audit.r_findings;
      if not (Audit.clean first) then begin
        audit_residue := true;
        Log.warn (fun m ->
            m "post-commit audit: %d residual finding(s)" !audit_findings);
        if not acfg.Ctx.audit_scrub then ()
        else if fire Fault.Scrub_fail then begin
          note Fault.Scrub_fail;
          full_reboot := true;
          rung "full_reboot" [ ("cause", "scrub_fail") ] full_reboot_seconds;
          Log.warn (fun m -> m "scrub failed: full-reboot fallback")
        end
        else begin
          let sc = Audit.scrub world first in
          rung "scrub"
            [ ("freed", string_of_int sc.Audit.sc_frames_freed) ]
            (Costs.scrub_seconds machine
               ~frames_freed:sc.Audit.sc_frames_freed
               ~findings:!audit_findings);
          let second = sweep sc.Audit.sc_world in
          audit_report := Some second;
          audit_scrubbed :=
            !audit_findings - List.length second.Audit.r_findings;
          if not (Audit.clean second) then begin
            full_reboot := true;
            rung "full_reboot" [ ("cause", "residual_state") ]
              full_reboot_seconds;
            Log.warn (fun m ->
                m "scrub left %d finding(s): full-reboot fallback"
                  (List.length second.Audit.r_findings))
          end
        end
      end);

    (* Checks, over the VMs that survived (quarantined ones are the
       recovery report's business, not the invariants'). *)
    let surviving_vms =
      List.filter (fun (n, _) -> not (List.mem n !quarantined)) vms
    in
    let after_uisrs =
      List.map
        (fun n ->
          Hv.Host.pause_vm host n;
          let u = Hv.Host.to_uisr host n in
          Hv.Host.resume_vm host n;
          (n, u))
        (Hv.Host.vm_names host)
    in
    let guest_memory_intact =
      List.for_all
        (fun (n, vm0) ->
          let vm = Option.get (Hv.Host.find_vm host n) in
          Vmstate.Guest_mem.verify_backing vm.Vmstate.Vm.mem = []
          && Int64.equal
               (Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem)
               (List.assoc n checksums_before)
          && vm.Vmstate.Vm.mem == vm0.Vmstate.Vm.mem (* literally in place *))
        surviving_vms
    in
    (* Salvaged VMs run on substituted defaults: the preservation checks
       only bind the VMs restored from intact state. *)
    let intact_results =
      List.filter (fun (_, _, _, _, salvage) -> salvage = None) restore_results
    in
    let platform_ok =
      List.for_all
        (fun (n, before, fixups, _, _) ->
          platform_preserved ~before ~after:(List.assoc n after_uisrs) ~fixups)
        intact_results
    in
    let devices_ok =
      List.for_all
        (fun (n, before, _, _, _) ->
          devices_preserved ~before (Option.get (Hv.Host.find_vm host n)))
        intact_results
    in
    let checks =
      {
        guest_memory_intact;
        pram_parse_ok;
        (* A full-reboot fallback reloads the target from scratch and
           does not depend on the (possibly clobbered) staged image. *)
        kexec_image_intact = jump.Kexec.image_intact || !full_reboot;
        uisr_roundtrip_ok =
          List.for_all (fun (_, _, _, ok, _) -> ok) intact_results;
        management_consistent = Hv.Host.management_consistent host;
        platform_preserved = platform_ok;
        devices_preserved = devices_ok;
      }
    in
    let outcome =
      if
        !recovery_faults = [] && !restore_retries = 0 && !quarantined = []
        && !salvaged = [] && !mgmt_rebuilds = 0
        && not !full_reboot && not !audit_residue
      then Committed
      else
        Recovered
          {
            recovery_faults = List.rev !recovery_faults;
            restore_retries = !restore_retries;
            quarantined = List.rev !quarantined;
            salvaged = List.rev !salvaged;
            mgmt_rebuilds = !mgmt_rebuilds;
            full_reboot = !full_reboot;
            recovery_time = Sim.Time.of_sec_f !recovery_seconds;
            audit_findings = !audit_findings;
            audit_scrubbed = !audit_scrubbed;
          }
    in
    let phases =
      {
        Phases.pram = Sim.Time.of_sec_f pram_phase;
        translation = Sim.Time.of_sec_f translation_seconds;
        reboot = Sim.Time.of_sec_f reboot_seconds;
        restoration = Sim.Time.of_sec_f restoration_seconds;
        recovery = Sim.Time.of_sec_f !recovery_seconds;
        network = Hw.Nic.init_time machine.Hw.Machine.nic;
      }
    in
    let restores =
      List.map2
        (fun (n, _, _, _, _) secs -> (n, secs))
        restore_results restore_jobs
    in
    emit_obs obs metrics ~source:S.name ~target:T.name ~phases
      ~rungs:(List.rev !rungs) ~restores
      ~outcome_label:(match outcome with Committed -> "committed" | _ -> "recovered")
      ~events:
        [ (phases.Phases.pram, "vms_paused");
          ( Sim.Time.add phases.Phases.pram phases.Phases.translation,
            "point_of_no_return" );
          (Phases.total phases, "vms_resumed") ];
    {
      source = S.name;
      target = T.name;
      vm_count = List.length vms;
      phases;
      fixups = List.map (fun (n, _, f, _, _) -> (n, f)) restore_results;
      uisr_platform_bytes;
      pram_accounting = acct;
      frames_wiped = jump.Kexec.frames_wiped;
      checks;
      outcome;
      audit = !audit_report;
    }
  with Rollback site ->
    (* Abort cleanly: discard staging, resume every VM on the source
       hypervisor, and prove with the regular checks that nothing
       leaked.  The paper's pipeline makes this cheap — before the
       kexec jump the source hypervisor still owns the machine. *)
    (match !staged_pram with
    | Some p -> Pram.Build.release p ~pmem
    | None -> ());
    (match !staged_image with
    | Some i -> Kexec.unload ~pmem i
    | None -> ());
    let resume_cost =
      if !paused then begin
        Hv.Host.resume_all host;
        Costs.resume_seconds ~nvms:(List.length vms)
      end
      else 0.0
    in
    Log.warn (fun m ->
        m "transplant rolled back at %a: VMs resumed on %s" Fault.pp_site site
          S.name);
    let guest_memory_intact =
      List.for_all
        (fun (n, vm0) ->
          let vm = Option.get (Hv.Host.find_vm host n) in
          Vmstate.Guest_mem.verify_backing vm.Vmstate.Vm.mem = []
          && Int64.equal
               (Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem)
               (List.assoc n checksums_before)
          && vm.Vmstate.Vm.mem == vm0.Vmstate.Vm.mem)
        vms
    in
    let checks =
      {
        guest_memory_intact;
        (* The aborted steps never ran; their checks hold vacuously. *)
        pram_parse_ok = true;
        kexec_image_intact = true;
        uisr_roundtrip_ok = true;
        management_consistent = Hv.Host.management_consistent host;
        platform_preserved = true;
        devices_preserved = true;
      }
    in
    let phases =
      {
        Phases.pram = Sim.Time.of_sec_f !pram_spent;
        translation = Sim.Time.of_sec_f !translation_spent;
        reboot = Sim.Time.zero;
        restoration = Sim.Time.of_sec_f resume_cost;
        recovery = Sim.Time.zero;
        network = Sim.Time.zero;
      }
    in
    emit_obs obs metrics ~source:S.name ~target:T.name ~phases ~rungs:[]
      ~restores:[] ~outcome_label:"rolled_back"
      ~events:
        [ ( Phases.total phases,
            Format.asprintf "rollback:%a" Fault.pp_site site ) ];
    {
      source = S.name;
      target = T.name;
      vm_count = List.length vms;
      phases;
      fixups = [];
      uisr_platform_bytes = 0;
      pram_accounting = !built_acct;
      frames_wiped = 0;
      checks;
      outcome = Rolled_back site;
      audit = None;
    }

let pp_outcome fmt = function
  | Committed -> Format.pp_print_string fmt "committed"
  | Rolled_back site ->
    Format.fprintf fmt "rolled back (fault at %a)" Fault.pp_site site
  | Recovered d ->
    Format.fprintf fmt
      "recovered in %a (faults: %a; %d restore retries, %d extra mgmt rebuilds%s%s%s)"
      Sim.Time.pp d.recovery_time
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         Fault.pp_site)
      d.recovery_faults d.restore_retries d.mgmt_rebuilds
      (match d.salvaged with
      | [] -> ""
      | s ->
        ", salvaged: "
        ^ String.concat " "
            (List.map
               (fun (vm, diags) ->
                 Printf.sprintf "%s(%d diag)" vm (List.length diags))
               s))
      (match d.quarantined with
      | [] -> ""
      | q -> ", quarantined: " ^ String.concat " " q)
      ((if d.audit_findings > 0 then
          Printf.sprintf ", audit: %d finding(s), %d scrubbed"
            d.audit_findings d.audit_scrubbed
        else "")
      ^ if d.full_reboot then ", full reboot" else "")

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>InPlaceTP %s -> %s (%d VMs)@,%a@,pram: %a@,uisr platform: %a@,\
     frames wiped: %d@,outcome: %a@,checks: %s@]"
    r.source r.target r.vm_count Phases.pp r.phases Pram.Layout.pp_accounting
    r.pram_accounting Hw.Units.pp_bytes r.uisr_platform_bytes r.frames_wiped
    pp_outcome r.outcome
    (if all_ok r.checks then "all ok" else "FAILED")
