type error = Truncated | Unknown_ioctl of int | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated stream"
  | Unknown_ioctl c -> Format.fprintf fmt "unknown ioctl 0x%x" c
  | Malformed msg -> Format.fprintf fmt "malformed: %s" msg

let kvm_get_regs = 0x8090
let kvm_get_sregs = 0x8091
let kvm_get_msrs = 0x8092
let kvm_get_fpu = 0x8093
let kvm_get_lapic = 0x8094
let kvm_get_xsave = 0x8095
let kvm_get_xcrs = 0x8096
let kvm_get_irqchip = 0x8097
let kvm_get_pit2 = 0x8098
let vcpu_marker = 0x80FF

type platform = {
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t;
  pit : Vmstate.Pit.t;
}

open Uisr.Wire

let ioctl w code body =
  let payload = Writer.create () in
  body payload;
  Writer.u32 w code;
  Writer.u32 w (Writer.size payload);
  Bytes.iter (fun c -> Writer.u8 w (Char.code c)) (Writer.contents payload)

(* KVM orders GPRs rax..r15, then rip, rflags (struct kvm_regs). *)
let put_regs w (g : Vmstate.Regs.gprs) =
  List.iter (Writer.u64 w)
    [ g.rax; g.rbx; g.rcx; g.rdx; g.rsi; g.rdi; g.rsp; g.rbp;
      g.r8; g.r9; g.r10; g.r11; g.r12; g.r13; g.r14; g.r15;
      g.rip; g.rflags ]

let get_regs r : Vmstate.Regs.gprs =
  let rax = Reader.u64 r in let rbx = Reader.u64 r in
  let rcx = Reader.u64 r in let rdx = Reader.u64 r in
  let rsi = Reader.u64 r in let rdi = Reader.u64 r in
  let rsp = Reader.u64 r in let rbp = Reader.u64 r in
  let r8 = Reader.u64 r in let r9 = Reader.u64 r in
  let r10 = Reader.u64 r in let r11 = Reader.u64 r in
  let r12 = Reader.u64 r in let r13 = Reader.u64 r in
  let r14 = Reader.u64 r in let r15 = Reader.u64 r in
  let rip = Reader.u64 r in let rflags = Reader.u64 r in
  { rax; rbx; rcx; rdx; rsi; rdi; rsp; rbp; r8; r9; r10; r11; r12; r13;
    r14; r15; rip; rflags }

(* struct kvm_segment: base, limit, selector, attrs unpacked. *)
let put_sregs w (s : Vmstate.Regs.sregs) =
  let seg (x : Vmstate.Regs.segment) =
    Writer.u64 w x.base;
    Writer.i32 w x.limit;
    Writer.u16 w x.selector;
    Writer.u16 w x.attrs
  in
  (* kvm_sregs order: cs ds es fs gs ss tr ldt. *)
  List.iter seg [ s.cs; s.ds; s.es; s.fs; s.gs; s.ss; s.tr; s.ldt ];
  List.iter (Writer.u64 w) [ s.cr0; s.cr2; s.cr3; s.cr4; s.efer; s.apic_base ]

let get_sregs r : Vmstate.Regs.sregs =
  let seg () : Vmstate.Regs.segment =
    let base = Reader.u64 r in
    let limit = Reader.i32 r in
    let selector = Reader.u16 r in
    let attrs = Reader.u16 r in
    { selector; base; limit; attrs }
  in
  let cs = seg () in let ds = seg () in let es = seg () in
  let fs = seg () in let gs = seg () in let ss = seg () in
  let tr = seg () in let ldt = seg () in
  let cr0 = Reader.u64 r in let cr2 = Reader.u64 r in
  let cr3 = Reader.u64 r in let cr4 = Reader.u64 r in
  let efer = Reader.u64 r in let apic_base = Reader.u64 r in
  { cs; ds; es; fs; gs; ss; tr; ldt; cr0; cr2; cr3; cr4; efer; apic_base }

let put_msrs w (msrs : Vmstate.Regs.msr list) =
  Writer.list w
    (fun (m : Vmstate.Regs.msr) ->
      Writer.u32 w m.index;
      Writer.u32 w 0 (* reserved, as in struct kvm_msr_entry *);
      Writer.u64 w m.value)
    msrs

let get_msrs r =
  Reader.list r (fun r ->
      let index = Reader.u32 r in
      let _reserved = Reader.u32 r in
      let value = Reader.u64 r in
      { Vmstate.Regs.index; value })

let put_fpu w (f : Vmstate.Regs.fpu) =
  (* struct kvm_fpu: fcw/fsw/ftw lead, mxcsr trails the register file. *)
  Writer.u16 w f.fcw;
  Writer.u16 w f.fsw;
  Writer.u16 w f.ftw;
  Writer.array w (Writer.u64 w) f.st;
  Writer.array w (Writer.u64 w) f.xmm;
  Writer.i32 w f.mxcsr

let get_fpu r : Vmstate.Regs.fpu =
  let fcw = Reader.u16 r in
  let fsw = Reader.u16 r in
  let ftw = Reader.u16 r in
  let st = Reader.array r Reader.u64 in
  let xmm = Reader.array r Reader.u64 in
  let mxcsr = Reader.i32 r in
  { fcw; fsw; ftw; mxcsr; st; xmm }

(* KVM_GET_LAPIC returns the 4 KiB register page; we serialise the
   architectural registers in page-offset order (ID 0x20, VER 0x30,
   TPR 0x80, ... IRR before ISR as in the page layout). *)
let put_lapic w (l : Vmstate.Lapic.t) =
  Writer.u32 w l.apic_id;
  Writer.u32 w l.version;
  Writer.u8 w l.tpr;
  Writer.array w (Writer.u64 w) l.irr;
  Writer.array w (Writer.u64 w) l.isr;
  Writer.array w (Writer.u64 w) l.tmr;
  Writer.i32 w l.ldr;
  Writer.i32 w l.dfr;
  Writer.i32 w l.svr;
  Writer.array w (Writer.i32 w) l.lvt;
  Writer.i32 w l.timer_icr;
  Writer.i32 w l.timer_ccr;
  Writer.i32 w l.timer_dcr;
  Writer.bool w l.enabled

let get_lapic r : Vmstate.Lapic.t =
  let apic_id = Reader.u32 r in
  let version = Reader.u32 r in
  let tpr = Reader.u8 r in
  let irr = Reader.array r Reader.u64 in
  let isr = Reader.array r Reader.u64 in
  let tmr = Reader.array r Reader.u64 in
  let ldr = Reader.i32 r in
  let dfr = Reader.i32 r in
  let svr = Reader.i32 r in
  let lvt = Reader.array r Reader.i32 in
  let timer_icr = Reader.i32 r in
  let timer_ccr = Reader.i32 r in
  let timer_dcr = Reader.i32 r in
  let enabled = Reader.bool r in
  { apic_id; version; tpr; ldr; dfr; svr; isr; irr; tmr; lvt; timer_dcr;
    timer_icr; timer_ccr; enabled }

let put_xsave w (x : Vmstate.Xsave.t) =
  Writer.u64 w x.xstate_bv;
  Writer.list w
    (fun (c : Vmstate.Xsave.component) ->
      Writer.u32 w c.id;
      Writer.array w (Writer.u64 w) c.data)
    x.components

let put_xcrs w (x : Vmstate.Xsave.t) =
  (* struct kvm_xcrs: one entry, XCR0. *)
  Writer.u32 w 1;
  Writer.u32 w 0 (* xcr index 0 *);
  Writer.u64 w x.xcr0

let put_irqchip w (io : Vmstate.Ioapic.t) =
  if Vmstate.Ioapic.pin_count io > Vmstate.Ioapic.kvm_pins then
    invalid_arg "Ioctl_stream: IOAPIC exceeds KVM's 24 pins";
  Writer.u32 w io.id;
  Writer.array w
    (fun (p : Vmstate.Ioapic.redirection) ->
      Writer.u8 w p.vector;
      Writer.u8 w
        ((p.delivery_mode lor (p.dest_mode lsl 3) lor (p.polarity lsl 4)
          lor (p.trigger_mode lsl 5) lor (if p.masked then 0x40 else 0)));
      Writer.u8 w p.dest)
    io.pins

let get_irqchip r : Vmstate.Ioapic.t =
  let id = Reader.u32 r in
  let pins =
    Reader.array r (fun r ->
        let vector = Reader.u8 r in
        let flags = Reader.u8 r in
        let dest = Reader.u8 r in
        {
          Vmstate.Ioapic.vector;
          delivery_mode = flags land 0x7;
          dest_mode = (flags lsr 3) land 1;
          polarity = (flags lsr 4) land 1;
          trigger_mode = (flags lsr 5) land 1;
          masked = flags land 0x40 <> 0;
          dest;
        })
  in
  { id; pins }

let put_pit2 w (p : Vmstate.Pit.t) =
  Writer.array w
    (fun (c : Vmstate.Pit.channel) ->
      (* struct kvm_pit_channel_state field order. *)
      Writer.u32 w c.count;
      Writer.u16 w c.latched_count;
      Writer.u8 w c.read_state;
      Writer.u8 w c.write_state;
      Writer.u8 w c.status;
      Writer.u8 w c.mode;
      Writer.u8 w (if c.bcd then 1 else 0);
      Writer.u8 w (if c.gate then 1 else 0))
    p.channels;
  Writer.bool w p.speaker_data_on

let get_pit2 r : Vmstate.Pit.t =
  let channels =
    Reader.array r (fun r ->
        let count = Reader.u32 r in
        let latched_count = Reader.u16 r in
        let read_state = Reader.u8 r in
        let write_state = Reader.u8 r in
        let status = Reader.u8 r in
        let mode = Reader.u8 r in
        let bcd = Reader.u8 r = 1 in
        let gate = Reader.u8 r = 1 in
        { Vmstate.Pit.count; latched_count; status; read_state; write_state;
          mode; bcd; gate })
  in
  let speaker_data_on = Reader.bool r in
  { channels; speaker_data_on }

let encode (p : platform) =
  let w = Writer.create () in
  List.iter
    (fun (v : Vmstate.Vcpu.t) ->
      ioctl w vcpu_marker (fun w -> Writer.u32 w v.index);
      ioctl w kvm_get_regs (fun w -> put_regs w v.regs.gprs);
      ioctl w kvm_get_sregs (fun w -> put_sregs w v.regs.sregs);
      (* MTRR state travels inside the MSR list. *)
      ioctl w kvm_get_msrs (fun w ->
          put_msrs w (v.regs.msrs @ Vmstate.Mtrr.to_msrs v.mtrr));
      ioctl w kvm_get_fpu (fun w -> put_fpu w v.regs.fpu);
      ioctl w kvm_get_lapic (fun w -> put_lapic w v.lapic);
      ioctl w kvm_get_xcrs (fun w -> put_xcrs w v.xsave);
      ioctl w kvm_get_xsave (fun w -> put_xsave w v.xsave))
    p.vcpus;
  ioctl w kvm_get_irqchip (fun w -> put_irqchip w p.ioapic);
  ioctl w kvm_get_pit2 (fun w -> put_pit2 w p.pit);
  Writer.contents w

(* MSR indices that belong to the MTRR block. *)
let is_mtrr_msr index =
  index = 0x2FF
  || (index >= 0x200 && index < 0x210)
  || List.mem index
       [ 0x250; 0x258; 0x259; 0x268; 0x269; 0x26A; 0x26B; 0x26C; 0x26D; 0x26E; 0x26F ]

exception Unknown_code of int

type partial_vcpu = {
  mutable k_index : int;
  mutable k_regs : Vmstate.Regs.gprs option;
  mutable k_sregs : Vmstate.Regs.sregs option;
  mutable k_msrs : Vmstate.Regs.msr list option;
  mutable k_fpu : Vmstate.Regs.fpu option;
  mutable k_lapic : Vmstate.Lapic.t option;
  mutable k_xcr0 : int64 option;
  mutable k_xsave : (int64 * Vmstate.Xsave.component list) option;
}

let decode data =
  let r = Reader.create data in
  let vcpus = ref [] in
  let current = ref None in
  let ioapic = ref None in
  let pit = ref None in
  let finish_current () =
    match !current with
    | None -> ()
    | Some p -> (
      match (p.k_regs, p.k_sregs, p.k_msrs, p.k_fpu, p.k_lapic, p.k_xcr0, p.k_xsave) with
      | Some gprs, Some sregs, Some all_msrs, Some fpu, Some lapic,
        Some xcr0, Some (xstate_bv, components) ->
        let mtrr_msrs, msrs =
          List.partition (fun (m : Vmstate.Regs.msr) -> is_mtrr_msr m.index) all_msrs
        in
        let mtrr =
          match Vmstate.Mtrr.of_msrs mtrr_msrs with
          | Some m -> m
          | None -> Reader.fail r "incomplete MTRR MSR block"
        in
        let vcpu : Vmstate.Vcpu.t =
          { index = p.k_index; regs = { gprs; sregs; msrs; fpu }; lapic;
            mtrr; xsave = { xcr0; xstate_bv; components } }
        in
        vcpus := vcpu :: !vcpus;
        current := None
      | _ -> Reader.fail r "incomplete vCPU ioctl group")
  in
  try
    while not (Reader.eof r) do
      let code = Reader.u32 r in
      let len = Reader.u32 r in
      if Reader.remaining r < len then raise Reader.Truncated;
      let body = Bytes.create len in
      for i = 0 to len - 1 do
        Bytes.set_uint8 body i (Reader.u8 r)
      done;
      let br = Reader.create body in
      if code = vcpu_marker then begin
        finish_current ();
        current :=
          Some
            { k_index = Reader.u32 br; k_regs = None; k_sregs = None;
              k_msrs = None; k_fpu = None; k_lapic = None; k_xcr0 = None;
              k_xsave = None }
      end
      else begin
        let need_vcpu () =
          match !current with
          | Some p -> p
          | None -> Reader.fail br "vCPU ioctl outside vCPU group"
        in
        if code = kvm_get_regs then (need_vcpu ()).k_regs <- Some (get_regs br)
        else if code = kvm_get_sregs then
          (need_vcpu ()).k_sregs <- Some (get_sregs br)
        else if code = kvm_get_msrs then
          (need_vcpu ()).k_msrs <- Some (get_msrs br)
        else if code = kvm_get_fpu then (need_vcpu ()).k_fpu <- Some (get_fpu br)
        else if code = kvm_get_lapic then
          (need_vcpu ()).k_lapic <- Some (get_lapic br)
        else if code = kvm_get_xcrs then begin
          let n = Reader.u32 br in
          if n <> 1 then Reader.fail br "unexpected xcr count";
          let _idx = Reader.u32 br in
          (need_vcpu ()).k_xcr0 <- Some (Reader.u64 br)
        end
        else if code = kvm_get_xsave then begin
          let xstate_bv = Reader.u64 br in
          let components =
            Reader.list br (fun r ->
                let id = Reader.u32 r in
                let data = Reader.array r Reader.u64 in
                { Vmstate.Xsave.id; data })
          in
          (need_vcpu ()).k_xsave <- Some (xstate_bv, components)
        end
        else if code = kvm_get_irqchip then begin
          finish_current ();
          ioapic := Some (get_irqchip br)
        end
        else if code = kvm_get_pit2 then begin
          finish_current ();
          pit := Some (get_pit2 br)
        end
        else raise (Unknown_code code)
      end
    done;
    finish_current ();
    match (!ioapic, !pit) with
    | Some ioapic, Some pit ->
      let vcpus =
        List.sort
          (fun (a : Vmstate.Vcpu.t) b -> Int.compare a.index b.index)
          !vcpus
      in
      Ok { vcpus; ioapic; pit }
    | _ -> Error (Malformed "missing IRQCHIP or PIT2")
  with
  | Reader.Truncated -> Error Truncated
  | Reader.Bad_format e -> Error (Malformed (Reader.format_error_to_string e))
  | Unknown_code c -> Error (Unknown_ioctl c)
