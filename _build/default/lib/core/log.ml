(* The framework's log source.  Operators running transplants through
   the CLI or Nova can raise the level to watch each workflow step. *)

let src = Logs.Src.create "hypertp" ~doc:"HyperTP transplant framework"

include (val Logs.src_log src : Logs.LOG)
