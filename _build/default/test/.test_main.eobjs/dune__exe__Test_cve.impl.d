test/test_cve.ml: Alcotest Cve Float List Option Printf QCheck QCheck_alcotest Result
