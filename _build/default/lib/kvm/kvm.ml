let kind = Hv.Kind.Kvm
let name = "kvm-5.3.1"
let version = "5.3.1"
let hv_type = Hv.Kind.Type2
let platform = Workload.Profile.P_kvm
let ioapic_pins = Vmstate.Ioapic.kvm_pins
let kernel_image_bytes = Hw.Units.mib 24 (* vmlinuz + initrd with kvm.ko *)
let sequential_migration_receive = false
let supports_msr _ = true (* Linux's MSR emulation covers our guest set *)

type domain = {
  fd : int;
  dvm : Vmstate.Vm.t;
  ept : Hv.Npt.t;
  vcpu_fds : int list;
  mutable detached : bool;
}

type t = {
  machine : Hw.Machine.t;
  pmem : Hw.Pmem.t;
  mutable doms : domain list;
  rq : Cfs.t;
  vmm : Kvmtool.t;
  mutable next_fd : int;
  host_heap : (Hw.Frame.Mfn.t * int) list;
  mutable alive : bool;
}

let ept_metadata_factor = 1.0 (* EPT carries no extra auditing structures *)
let host_heap_frames = Hw.Units.frames_of_bytes (Hw.Units.mib 32)

let boot ~machine ~pmem ~rng:_ =
  let host_heap = Hw.Pmem.alloc_extents pmem host_heap_frames in
  List.iter
    (fun (start, len) ->
      for i = 0 to len - 1 do
        Hw.Pmem.write pmem (Hw.Frame.Mfn.add start i) 0x4C494E55585F4850L
      done)
    host_heap;
  {
    machine;
    pmem;
    doms = [];
    rq = Cfs.create ();
    vmm = Kvmtool.create ();
    next_fd = 16;
    host_heap;
    alive = true;
  }

(* Type-II boot = one Linux kernel; with the early-restoration
   optimisation VM restores begin as soon as KVM services are up
   (section 4.2.5).  Calibrated to Fig. 6: ~1.5 s on M1, ~2.3 s on M2. *)
let boot_time ~machine =
  let cpu = machine.Hw.Machine.cpu in
  let threads = Hw.Cpu.total_threads cpu in
  let gib = Hw.Units.to_gib_f machine.Hw.Machine.ram in
  Sim.Time.of_sec_f
    (1.336 +. (0.010 *. float_of_int threads) +. (0.004 *. gib))

let machine t = t.machine
let pmem t = t.pmem
let check_alive t = if not t.alive then invalid_arg "Kvm: hypervisor is down"

let shutdown t =
  check_alive t;
  if t.doms <> [] then invalid_arg "Kvm.shutdown: domains remain";
  List.iter (fun (start, len) -> Hw.Pmem.free_extent t.pmem start len) t.host_heap;
  t.alive <- false

let adopt_vm t (vm : Vmstate.Vm.t) =
  check_alive t;
  let ept =
    Hv.Npt.build ~pmem:t.pmem
      ~guest_frames:(Hw.Units.frames_of_bytes vm.config.ram)
      ~page_kind:vm.config.page_kind ~metadata_factor:ept_metadata_factor
  in
  let fd = t.next_fd in
  let vcpu_fds = List.init vm.config.vcpus (fun i -> fd + 1 + i) in
  t.next_fd <- fd + 1 + vm.config.vcpus;
  let dom = { fd; dvm = vm; ept; vcpu_fds; detached = false } in
  t.doms <- t.doms @ [ dom ];
  ignore (Kvmtool.spawn t.vmm ~vm_name:vm.config.name ~guest_bytes:vm.config.ram);
  Cfs.enqueue_vm t.rq ~vm_name:vm.config.name ~vcpus:vm.config.vcpus;
  dom

let create_vm t ~rng config =
  check_alive t;
  let vm = Vmstate.Vm.create ~pmem:t.pmem ~rng ~ioapic_pins config in
  adopt_vm t vm

let free_vmi_state t dom =
  if not dom.detached then begin
    dom.detached <- true;
    Hv.Npt.free dom.ept ~pmem:t.pmem;
    Cfs.dequeue_vm t.rq ~vm_name:dom.dvm.Vmstate.Vm.config.name;
    Kvmtool.kill t.vmm ~vm_name:dom.dvm.Vmstate.Vm.config.name;
    t.doms <- List.filter (fun d -> d.fd <> dom.fd) t.doms
  end

let detach_vm t dom =
  check_alive t;
  free_vmi_state t dom;
  dom.dvm

let destroy_vm t dom =
  check_alive t;
  free_vmi_state t dom;
  Vmstate.Guest_mem.free dom.dvm.Vmstate.Vm.mem

let domains t = t.doms

let find_domain t vm_name =
  List.find_opt
    (fun d -> String.equal d.dvm.Vmstate.Vm.config.name vm_name)
    t.doms

let vm dom = dom.dvm
let pause _t dom = Vmstate.Vm.pause dom.dvm
let resume _t dom = Vmstate.Vm.resume dom.dvm

let native_context dom =
  Ioctl_stream.encode
    {
      Ioctl_stream.vcpus = Array.to_list dom.dvm.Vmstate.Vm.vcpus;
      ioapic = dom.dvm.Vmstate.Vm.ioapic;
      pit = dom.dvm.Vmstate.Vm.pit;
    }

let to_uisr dom =
  if Vmstate.Vm.is_running dom.dvm then
    invalid_arg "Kvm.to_uisr: VM must be paused";
  let plat =
    match Ioctl_stream.decode (native_context dom) with
    | Ok p -> p
    | Error e ->
      invalid_arg
        (Format.asprintf "Kvm.to_uisr: ioctl stream: %a" Ioctl_stream.pp_error e)
  in
  let base = Uisr.Vm_state.of_vm ~source_hypervisor:name dom.dvm in
  { base with vcpus = plat.Ioctl_stream.vcpus;
    ioapic = plat.Ioctl_stream.ioapic; pit = plat.Ioctl_stream.pit }


let from_uisr t ~rng ~mem (uisr : Uisr.Vm_state.t) =
  check_alive t;
  let fixups = ref [] in
  if not (String.equal uisr.source_hypervisor name) then
    fixups := Uisr.Fixup.Lapic_container_changed :: !fixups;
  let ioapic =
    if Vmstate.Ioapic.pin_count uisr.ioapic > ioapic_pins then begin
      (* Xen's 48-pin IOAPIC: disconnect the upper pins (section 4.2.1). *)
      let truncated, dropped_connected =
        Vmstate.Ioapic.truncate uisr.ioapic ~pins:ioapic_pins
      in
      fixups :=
        Uisr.Fixup.Ioapic_pins_dropped
          { kept = ioapic_pins; dropped_connected }
        :: !fixups;
      truncated
    end
    else uisr.ioapic
  in
  let devices = Hv.Restore.devices_of_snapshots ~rng fixups uisr.devices in
  let config = Hv.Restore.config_of_uisr ~devices uisr in
  let vm : Vmstate.Vm.t =
    {
      config;
      vcpus = Array.of_list uisr.vcpus;
      ioapic;
      pit = uisr.pit;
      devices = Array.of_list devices;
      mem;
      run_state = Vmstate.Vm.Paused;
    }
  in
  (adopt_vm t vm, List.rev !fixups)

(* --- memory-separation accounting --- *)

let vmi_state_bytes _t dom =
  Hv.Npt.bytes dom.ept
  + (List.length dom.vcpu_fds * 4096) (* struct kvm_vcpu + run page *)
  + Bytes.length (native_context dom)

let management_state_bytes t =
  Cfs.state_bytes t.rq + Kvmtool.state_bytes t.vmm

let hv_state_bytes _t = host_heap_frames * 4096

let rebuild_management_state t =
  check_alive t;
  Cfs.rebuild t.rq
    (List.map
       (fun d ->
         (d.dvm.Vmstate.Vm.config.name, Array.length d.dvm.Vmstate.Vm.vcpus))
       t.doms);
  let per_dom = 0.002 *. t.machine.Hw.Machine.costs.Hw.Machine.mgmt_factor in
  Sim.Time.of_sec_f (0.005 +. (per_dom *. float_of_int (List.length t.doms)))

let management_state_consistent t =
  Cfs.consistent t.rq
    (List.map
       (fun d ->
         (d.dvm.Vmstate.Vm.config.name, Array.length d.dvm.Vmstate.Vm.vcpus))
       t.doms)

(* --- calibrated costs --- *)

let cost_factor t =
  t.machine.Hw.Machine.costs.Hw.Machine.cpu_factor
  *. t.machine.Hw.Machine.costs.Hw.Machine.mgmt_factor

let save_cost t dom =
  let vcpus = float_of_int (Array.length dom.dvm.Vmstate.Vm.vcpus) in
  let gib = Hw.Units.to_gib_f dom.dvm.Vmstate.Vm.config.ram in
  Sim.Time.of_sec_f
    ((0.030 +. (0.006 *. vcpus) +. (0.008 *. gib)) *. cost_factor t)

let restore_cost t dom =
  let vcpus = float_of_int (Array.length dom.dvm.Vmstate.Vm.vcpus) in
  let gib = Hw.Units.to_gib_f dom.dvm.Vmstate.Vm.config.ram in
  Sim.Time.of_sec_f
    ((0.060 +. (0.010 *. vcpus) +. (0.020 *. gib)) *. cost_factor t)

let migration_resume_cost ~machine ~vcpus =
  let f = machine.Hw.Machine.costs.Hw.Machine.mgmt_factor in
  Sim.Time.of_sec_f ((0.0032 +. (0.00025 *. float_of_int vcpus)) *. f)

(* --- extras --- *)

let vm_fd dom = dom.fd
let ept_frames dom = Hv.Npt.frames dom.ept
let vmm_process t ~vm_name = Kvmtool.find t.vmm ~vm_name
let run_queue t = t.rq
