(* Deterministic pristine inputs for the corruption fuzzer: a full VM is
   provisioned on a private pmem, paused, and captured through the same
   [Vm_state.of_vm] path the transplant engines use, so every fuzz case
   starts from a state the semantic validator accepts with zero
   diagnostics. *)

let vm_state ?(vcpus = 2) ?(ram_mib = 64) ~seed () =
  let rng = Sim.Rng.create seed in
  let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
  let vm =
    Vmstate.Vm.create ~pmem ~rng
      (Vmstate.Vm.config
         ~name:(Printf.sprintf "fuzz-%Lx" seed)
         ~vcpus ~ram:(Hw.Units.mib ram_mib) ~workload:Vmstate.Vm.Wl_redis ())
  in
  Vmstate.Vm.pause vm;
  Uisr.Vm_state.of_vm ~source_hypervisor:"fuzz" vm

let blob ?vcpus ?ram_mib ~seed () =
  Uisr.Codec.encode (vm_state ?vcpus ?ram_mib ~seed ())
