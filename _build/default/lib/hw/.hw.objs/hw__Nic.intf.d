lib/hw/nic.mli: Format Sim Units
