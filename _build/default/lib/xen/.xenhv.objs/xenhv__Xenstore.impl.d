lib/xen/xenstore.ml: Hashtbl Int List Printf String
