lib/xen/credit.mli: Format
