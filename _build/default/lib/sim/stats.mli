(** Summary statistics over samples of simulated measurements.

    The paper reports averages when the standard deviation is low and
    box plots otherwise (section 5.2.1); this module provides both. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  q1 : float;
  q3 : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val percentile : float list -> float -> float
(** [percentile samples p] with [p] in [\[0, 100\]], linear interpolation. *)

val mean : float list -> float
val stddev : float list -> float

val low_variance : summary -> bool
(** True when the coefficient of variation is below 5 %: the paper's
    criterion for reporting a plain average rather than a box plot. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering: mean +/- stddev [min..max]. *)

val pp_boxplot : Format.formatter -> summary -> unit
(** Five-number rendering: min q1 median q3 max. *)
