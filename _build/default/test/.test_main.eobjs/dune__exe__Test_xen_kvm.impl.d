test/test_xen_kvm.ml: Alcotest Array Bytes Format Hv Hw Kvmhv List Option Result Sim Uisr Vmstate Xenhv
