lib/uisr/wire.mli:
