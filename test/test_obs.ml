(* Tests for the observability subsystem: span tracer, metrics
   registry, exporters, and the engine instrumentation — in particular
   the reconciliation property that [Phases.of_trace] over an engine's
   span tree equals the hand-accumulated phase record exactly. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let checks = Alcotest.check Alcotest.string

let small_vm ?(name = "vm0") ?(mib = 256) ?(workload = Vmstate.Vm.Wl_idle) () =
  Vmstate.Vm.config ~name ~vcpus:1 ~ram:(Hw.Units.mib mib) ~workload
    ~inplace_compatible:true ()

let xen_host ?(vms = [ small_vm () ]) () =
  Hypertp.Api.provision ~name:"h" ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Xen
    vms

let kvm_host ?(name = "dst") () =
  Hypertp.Api.provision ~name ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Kvm []

(* --- Tracer --- *)

let test_tracer_nesting () =
  let tr = Obs.Tracer.create () in
  let root = Obs.Tracer.start tr ~at:Sim.Time.zero ~track:"a" "root" in
  let child =
    Obs.Tracer.start tr ~at:(Sim.Time.ms 10) ~parent:root ~track:"a" "child"
  in
  Obs.Tracer.finish tr child ~at:(Sim.Time.ms 20);
  Obs.Tracer.finish tr root ~at:(Sim.Time.ms 30);
  checki "two spans" 2 (Obs.Tracer.count tr);
  match Obs.Tracer.spans tr with
  | [ r; c ] ->
    checks "oldest first" "root" (Obs.Span.name r);
    checkb "child parented" true (Obs.Span.parent c = Some (Obs.Span.id r));
    checkb "root has no parent" true (Obs.Span.parent r = None);
    checkb "child duration" true
      (Obs.Span.duration c = Some (Sim.Time.ms 10));
    checkb "root still longer" true
      (Obs.Span.duration r = Some (Sim.Time.ms 30))
  | _ -> Alcotest.fail "expected exactly two spans"

let test_tracer_ring_buffer () =
  let tr = Obs.Tracer.create ~capacity:4 () in
  for i = 1 to 6 do
    let s =
      Obs.Tracer.start tr ~at:(Sim.Time.ms i) (Printf.sprintf "s%d" i)
    in
    Obs.Tracer.finish tr s ~at:(Sim.Time.ms (i + 1))
  done;
  checki "bounded" 4 (Obs.Tracer.count tr);
  checki "capacity" 4 (Obs.Tracer.capacity tr);
  checki "dropped" 2 (Obs.Tracer.dropped tr);
  checks "oldest survivor is s3" "s3"
    (Obs.Span.name (List.hd (Obs.Tracer.spans tr)))

let test_tracer_hook () =
  let tr = Obs.Tracer.create () in
  let log = ref [] in
  Obs.Tracer.set_hook tr (fun dir sp _at ->
      log := (dir, Obs.Span.name sp) :: !log);
  let s = Obs.Tracer.start tr ~at:Sim.Time.zero "work" in
  Obs.Tracer.finish tr s ~at:(Sim.Time.ms 5);
  Obs.Tracer.instant tr ~at:(Sim.Time.ms 6) "blip";
  checkb "open/close/instant routed" true
    (List.rev !log
    = [ (`Open, "work"); (`Close, "work"); (`Open, "blip") ]);
  Obs.Tracer.clear_hook tr;
  Obs.Tracer.instant tr ~at:(Sim.Time.ms 7) "silent";
  checki "hook cleared" 3 (List.length !log)

let test_tracer_finish_before_start_rejected () =
  let tr = Obs.Tracer.create () in
  let s = Obs.Tracer.start tr ~at:(Sim.Time.ms 10) "s" in
  Alcotest.check_raises "backwards finish"
    (Invalid_argument "Span.finish: stop before start: s") (fun () ->
      Obs.Tracer.finish tr s ~at:(Sim.Time.ms 5))

(* --- Metrics --- *)

let test_metrics_counter_identity () =
  let m = Obs.Metrics.create () in
  let a = Obs.Metrics.counter m ~labels:[ ("k", "v") ] "c" in
  let b = Obs.Metrics.counter m ~labels:[ ("k", "v") ] "c" in
  let other = Obs.Metrics.counter m ~labels:[ ("k", "w") ] "c" in
  Obs.Metrics.inc a;
  Obs.Metrics.inc ~by:2.0 b;
  checkf "same (name,labels) shares state" 3.0 (Obs.Metrics.value a);
  checkf "different labels independent" 0.0 (Obs.Metrics.value other)

let test_metrics_gauge () =
  let m = Obs.Metrics.create () in
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set g 4.5;
  Obs.Metrics.set g 2.5;
  checkf "last write wins" 2.5 (Obs.Metrics.value g)

let test_metrics_kind_mismatch () =
  let m = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter m "x");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: x already registered as a counter") (fun () ->
      ignore (Obs.Metrics.gauge m "x"))

let test_histogram_bucket_boundaries () =
  (* Upper-bound inclusive: a value equal to a bound lands in that
     bucket, the first value strictly above goes to the next. *)
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m ~buckets:[ 1.0; 2.0; 5.0 ] "h" in
  checki "below first bound" 0 (Obs.Metrics.bucket_index h 0.5);
  checki "exactly on bound -> that bucket" 0 (Obs.Metrics.bucket_index h 1.0);
  checki "just above" 1 (Obs.Metrics.bucket_index h 1.0000001);
  checki "on second bound" 1 (Obs.Metrics.bucket_index h 2.0);
  checki "mid" 2 (Obs.Metrics.bucket_index h 2.5);
  checki "overflow" 3 (Obs.Metrics.bucket_index h 6.0);
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.0; 2.0; 6.0 ];
  checkb "per-bucket counts" true
    (Obs.Metrics.bucket_counts h = [ 2; 1; 0; 1 ]);
  checki "observations" 4 (Obs.Metrics.observations h);
  checkf "sum" 9.5 (Obs.Metrics.sum h)

let test_histogram_bad_buckets () =
  let m = Obs.Metrics.create () in
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Metrics: histogram buckets must be strictly increasing")
    (fun () ->
      ignore (Obs.Metrics.histogram m ~buckets:[ 1.0; 1.0 ] "bad"))

let test_histogram_summary () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m ~buckets:[ 10.0 ] "s" in
  checkb "no samples, no summary" true (Obs.Metrics.summary h = None);
  List.iter (Obs.Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  match Obs.Metrics.summary h with
  | None -> Alcotest.fail "summary expected"
  | Some s -> checkf "mean" 2.5 s.Sim.Stats.mean

(* --- Exporters --- *)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let test_open_metrics_format () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m ~labels:[ ("engine", "inplace") ] "t_total" in
  Obs.Metrics.inc ~by:3.0 c;
  let h = Obs.Metrics.histogram m ~buckets:[ 1.0; 2.0 ] "d_seconds" in
  Obs.Metrics.observe h 1.5;
  let out = Obs.Export.open_metrics m in
  checkb "counter TYPE" true (contains out "# TYPE t_total counter");
  checkb "labelled sample" true
    (contains out "t_total{engine=\"inplace\"} 3");
  checkb "histogram TYPE" true (contains out "# TYPE d_seconds histogram");
  checkb "cumulative le buckets" true
    (contains out "d_seconds_bucket{le=\"1\"} 0"
    && contains out "d_seconds_bucket{le=\"2\"} 1"
    && contains out "d_seconds_bucket{le=\"+Inf\"} 1");
  checkb "sum and count" true
    (contains out "d_seconds_sum 1.5" && contains out "d_seconds_count 1");
  checkb "terminated" true (contains out "# EOF\n")

let test_chrome_trace_format () =
  let tr = Obs.Tracer.create () in
  let s =
    Obs.Tracer.start tr ~at:(Sim.Time.us 1500) ~track:"main"
      ~attrs:[ ("k", "v") ] "work"
  in
  Obs.Tracer.finish tr s ~at:(Sim.Time.us 2500);
  Obs.Tracer.instant tr ~at:(Sim.Time.us 3000) "blip";
  let out = Obs.Export.chrome_trace tr in
  checkb "complete event" true (contains out "\"ph\":\"X\"");
  checkb "instant event" true (contains out "\"ph\":\"i\"");
  checkb "us timestamps" true (contains out "\"ts\":1500.000");
  checkb "duration" true (contains out "\"dur\":1000.000");
  checkb "args carried" true (contains out "\"k\":\"v\"");
  checkb "thread metadata" true (contains out "\"thread_name\"")

(* --- Engine reconciliation: InPlaceTP --- *)

let phases_equal a b =
  let open Hypertp.Phases in
  Sim.Time.equal a.pram b.pram
  && Sim.Time.equal a.translation b.translation
  && Sim.Time.equal a.reboot b.reboot
  && Sim.Time.equal a.restoration b.restoration
  && Sim.Time.equal a.recovery b.recovery
  && Sim.Time.equal a.network b.network

let traced_inplace ?fault ~vms () =
  let host = xen_host ~vms () in
  let tr = Obs.Tracer.create () in
  let m = Obs.Metrics.create () in
  let r =
    Hypertp.Api.transplant_inplace ?fault ~obs:tr ~metrics:m ~host
      ~target:Hv.Kind.Kvm ()
  in
  (r, tr, m)

let test_inplace_reconciles_fault_free () =
  let r, tr, m =
    traced_inplace ~vms:[ small_vm (); small_vm ~name:"vm1" () ] ()
  in
  checkb "committed" true (r.Hypertp.Inplace.outcome = Hypertp.Inplace.Committed);
  let derived = Hypertp.Phases.of_trace (Obs.Tracer.spans tr) in
  checkb "phases reconcile exactly" true
    (phases_equal derived r.Hypertp.Inplace.phases);
  checkb "downtime reconciles exactly" true
    (Sim.Time.equal
       (Hypertp.Phases.downtime derived)
       (Hypertp.Phases.downtime r.Hypertp.Inplace.phases));
  (* Per-VM restore spans ride on their own tracks. *)
  let restores =
    List.filter
      (fun s ->
        String.length (Obs.Span.name s) >= 8
        && String.sub (Obs.Span.name s) 0 8 = "restore:")
      (Obs.Tracer.spans tr)
  in
  checki "one restore span per VM" 2 (List.length restores);
  checkf "transplant counted" 1.0
    (Obs.Metrics.value
       (Obs.Metrics.counter m
          ~labels:[ ("engine", "inplace"); ("outcome", "committed") ]
          "hypertp_transplants_total"))

let test_inplace_reconciles_faulty () =
  List.iter
    (fun site ->
      let fault =
        Fault.make ~seed:7L [ { Fault.site; trigger = Fault.Nth_hit 1 } ]
      in
      let r, tr, _ = traced_inplace ~fault ~vms:[ small_vm () ] () in
      checkb "recovered" true
        (match r.Hypertp.Inplace.outcome with
        | Hypertp.Inplace.Recovered _ -> true
        | _ -> false);
      let derived = Hypertp.Phases.of_trace (Obs.Tracer.spans tr) in
      checkb "faulty phases reconcile exactly" true
        (phases_equal derived r.Hypertp.Inplace.phases);
      checkb "recovery phase non-zero" true
        Sim.Time.(Sim.Time.zero < derived.Hypertp.Phases.recovery);
      (* The recovery ladder shows up as rung spans. *)
      checkb "rung span present" true
        (List.exists
           (fun s ->
             String.length (Obs.Span.name s) >= 5
             && String.sub (Obs.Span.name s) 0 5 = "rung:")
           (Obs.Tracer.spans tr)))
    [ Fault.Vm_restore; Fault.Uisr_corrupt ]

let test_inplace_reconciles_rollback () =
  let fault =
    Fault.make ~seed:3L
      [ { Fault.site = Fault.Kexec_load; trigger = Fault.Nth_hit 1 } ]
  in
  let r, tr, m = traced_inplace ~fault ~vms:[ small_vm () ] () in
  checkb "rolled back" true
    (match r.Hypertp.Inplace.outcome with
    | Hypertp.Inplace.Rolled_back Fault.Kexec_load -> true
    | _ -> false);
  let derived = Hypertp.Phases.of_trace (Obs.Tracer.spans tr) in
  checkb "rollback phases reconcile exactly" true
    (phases_equal derived r.Hypertp.Inplace.phases);
  checkf "fault counted at its site" 1.0
    (Obs.Metrics.value
       (Obs.Metrics.counter m
          ~labels:[ ("engine", "inplace"); ("site", "kexec_load") ]
          "hypertp_faults_total"));
  checkf "rollback outcome counted" 1.0
    (Obs.Metrics.value
       (Obs.Metrics.counter m
          ~labels:[ ("engine", "inplace"); ("outcome", "rolled_back") ]
          "hypertp_transplants_total"))

let test_chrome_trace_deterministic () =
  let export () =
    let _, tr, _ = traced_inplace ~vms:[ small_vm (); small_vm ~name:"vm1" () ] () in
    Obs.Export.chrome_trace tr
  in
  checkb "byte-identical across same-seed runs" true (export () = export ())

let test_open_metrics_deterministic () =
  let export () =
    let _, _, m = traced_inplace ~vms:[ small_vm () ] () in
    Obs.Export.open_metrics m
  in
  checkb "byte-identical across same-seed runs" true (export () = export ())

(* --- Engine reconciliation: MigrationTP --- *)

let test_migrate_span_extent_and_counters () =
  let src = xen_host ~vms:[ small_vm ~mib:512 () ] () in
  let dst = kvm_host () in
  let tr = Obs.Tracer.create () in
  let m = Obs.Metrics.create () in
  let r =
    Hypertp.Api.transplant_migration ~obs:tr ~metrics:m ~src ~dst ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  let root =
    List.find
      (fun s -> Obs.Span.name s = "migrate:vm0")
      (Obs.Tracer.spans tr)
  in
  checkb "root span extent = total_time" true
    (Obs.Span.duration root = Some v.Hypertp.Migrate.total_time);
  checkb "per-round children present" true
    (List.exists (fun s -> Obs.Span.name s = "round") (Obs.Tracer.spans tr));
  checkf "migration counted" 1.0
    (Obs.Metrics.value
       (Obs.Metrics.counter m
          ~labels:[ ("engine", "migrate"); ("outcome", "completed") ]
          "hypertp_migrations_total"));
  checkf "no retries" 0.0
    (Obs.Metrics.value
       (Obs.Metrics.counter m ~labels:[ ("engine", "migrate") ]
          "hypertp_migration_retries_total"));
  checkb "wire bytes counted" true
    (Obs.Metrics.value
       (Obs.Metrics.counter m ~labels:[ ("engine", "migrate") ]
          "hypertp_wire_bytes_total")
    > 0.0)

let test_migrate_retry_instrumentation () =
  let src = xen_host ~vms:[ small_vm ~mib:512 () ] () in
  let dst = kvm_host () in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Migration_link_drop;
          trigger = Fault.Nth_hit 1 } ]
  in
  let tr = Obs.Tracer.create () in
  let m = Obs.Metrics.create () in
  let r =
    Hypertp.Api.transplant_migration ~fault ~obs:tr ~metrics:m ~src ~dst ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  checkb "completed after retry" true
    (match v.Hypertp.Migrate.outcome with
    | Hypertp.Migrate.Completed_after_retries 1 -> true
    | _ -> false);
  checkf "retry counted" 1.0
    (Obs.Metrics.value
       (Obs.Metrics.counter m ~labels:[ ("engine", "migrate") ]
          "hypertp_migration_retries_total"));
  checkb "dropped attempt + backoff spans" true
    (List.exists
       (fun s -> Obs.Span.name s = "precopy_attempt")
       (Obs.Tracer.spans tr)
    && List.exists (fun s -> Obs.Span.name s = "backoff") (Obs.Tracer.spans tr));
  let root =
    List.find
      (fun s -> Obs.Span.name s = "migrate:vm0")
      (Obs.Tracer.spans tr)
  in
  checkb "root extent still = total_time" true
    (Obs.Span.duration root = Some v.Hypertp.Migrate.total_time)

(* --- Campaign instrumentation --- *)

module C = Cluster.Campaign

let attempt_spans tr =
  List.filter
    (fun s ->
      String.length (Obs.Span.name s) >= 8
      && String.sub (Obs.Span.name s) 0 8 = "attempt:")
    (Obs.Tracer.spans tr)

let test_campaign_timeline () =
  let tr = Obs.Tracer.create () in
  let m = Obs.Metrics.create () in
  (match C.run ~obs:tr ~metrics:m C.default_config with
  | C.Finished (r, _) ->
    checki "one attempt span per host" (List.length r.C.hosts)
      (List.length (attempt_spans tr));
    checkb "all attempts closed with result" true
      (List.for_all
         (fun s ->
           Obs.Span.stop s <> None
           && List.mem_assoc "result" (Obs.Span.attrs s))
         (attempt_spans tr));
    let root =
      List.find (fun s -> Obs.Span.name s = "campaign") (Obs.Tracer.spans tr)
    in
    checkb "root span covers the wall clock minus rebalance" true
      (Obs.Span.duration root
      = Some (Sim.Time.sub r.C.wall_clock r.C.rebalance_time));
    checkb "journal checkpoints traced" true
      (List.exists
         (fun s -> Obs.Span.name s = "journal:checkpoint")
         (Obs.Tracer.spans tr));
    checkf "attempts counted" 10.0
      (Obs.Metrics.value
         (Obs.Metrics.counter m
            ~labels:[ ("engine", "campaign"); ("step", "inplace") ]
            "hypertp_campaign_attempts_total"));
    checkf "gauge settles at zero" 0.0
      (Obs.Metrics.value
         (Obs.Metrics.gauge m ~labels:[ ("engine", "campaign") ]
            "hypertp_campaign_running"))
  | C.Crashed _ -> Alcotest.fail "clean campaign crashed")

let test_campaign_resume_reemits_timeline () =
  let fault () =
    Fault.make ~seed:11L
      [ { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 4 } ]
  in
  let j =
    match C.run ~fault:(fault ()) C.default_config with
    | C.Crashed j -> j
    | C.Finished _ -> Alcotest.fail "expected a controller crash"
  in
  (* A fresh tracer given to [resume] sees the whole campaign again:
     journal replay funnels through the same apply path as live events. *)
  let tr = Obs.Tracer.create () in
  match C.resume ~fault:(fault ()) ~obs:tr j with
  | C.Finished (r, _) ->
    checki "full timeline re-emitted" (List.length r.C.hosts)
      (List.length (attempt_spans tr));
    checkb "root span present and closed" true
      (List.exists
         (fun s -> Obs.Span.name s = "campaign" && Obs.Span.stop s <> None)
         (Obs.Tracer.spans tr))
  | C.Crashed _ -> Alcotest.fail "resume crashed"

let suites =
  [ ( "obs.tracer",
      [ Alcotest.test_case "nesting" `Quick test_tracer_nesting;
        Alcotest.test_case "ring buffer" `Quick test_tracer_ring_buffer;
        Alcotest.test_case "hook" `Quick test_tracer_hook;
        Alcotest.test_case "backwards finish" `Quick
          test_tracer_finish_before_start_rejected ] );
    ( "obs.metrics",
      [ Alcotest.test_case "counter identity" `Quick
          test_metrics_counter_identity;
        Alcotest.test_case "gauge" `Quick test_metrics_gauge;
        Alcotest.test_case "kind mismatch" `Quick test_metrics_kind_mismatch;
        Alcotest.test_case "bucket boundaries" `Quick
          test_histogram_bucket_boundaries;
        Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
        Alcotest.test_case "summary" `Quick test_histogram_summary ] );
    ( "obs.export",
      [ Alcotest.test_case "openmetrics format" `Quick
          test_open_metrics_format;
        Alcotest.test_case "chrome trace format" `Quick
          test_chrome_trace_format ] );
    ( "obs.engines",
      [ Alcotest.test_case "inplace reconciles (fault-free)" `Quick
          test_inplace_reconciles_fault_free;
        Alcotest.test_case "inplace reconciles (faulty)" `Quick
          test_inplace_reconciles_faulty;
        Alcotest.test_case "inplace reconciles (rollback)" `Quick
          test_inplace_reconciles_rollback;
        Alcotest.test_case "chrome trace deterministic" `Quick
          test_chrome_trace_deterministic;
        Alcotest.test_case "openmetrics deterministic" `Quick
          test_open_metrics_deterministic;
        Alcotest.test_case "migrate span extent" `Quick
          test_migrate_span_extent_and_counters;
        Alcotest.test_case "migrate retries" `Quick
          test_migrate_retry_instrumentation;
        Alcotest.test_case "campaign timeline" `Quick test_campaign_timeline;
        Alcotest.test_case "campaign resume re-emits" `Quick
          test_campaign_resume_reemits_timeline ] ) ]
