type costs = {
  cpu_factor : float;
  mgmt_factor : float;
  mem_factor : float;
  dom0_device_init : Sim.Time.t;
}

type t = {
  name : string;
  cpu : Cpu.t;
  ram : Units.bytes_;
  nic : Nic.t;
  reserved_threads : int;
  costs : costs;
}

let create ~name ~cpu ~ram ~nic ?(reserved_threads = 2) ~costs () =
  if ram <= 0 then invalid_arg "Machine.create: non-positive RAM";
  if reserved_threads < 0 then invalid_arg "Machine.create: negative reserved";
  { name; cpu; ram; nic; reserved_threads; costs }

(* Calibration notes (see EXPERIMENTS.md for the full comparison):
   - M1 is the baseline: cpu_factor 1.0.
   - M2's cores run at 1.7 GHz vs 2.5 GHz -> cpu_factor 1.47; dual-socket
     toolstack round-trips roughly double management latency
     (mgmt_factor 2.0); its four-SSD storage makes dom0 device bring-up
     slow, which is what stretches the KVM->Xen reboot to ~17.8 s
     (Fig. 10 d-f). NIC init: 6.6 s measured on M1, 2.3 s on M2
     (section 5.2.1). *)

let m1 () =
  create ~name:"M1"
    ~cpu:(Cpu.create ~sockets:1 ~cores_per_socket:4 ~threads_per_core:2 ~freq_ghz:2.5)
    ~ram:(Units.gib 16)
    ~nic:(Nic.create ~bandwidth_gbps:1.0 ~init_time:(Sim.Time.ms 6_600) ())
    ~costs:
      {
        cpu_factor = 1.0;
        mgmt_factor = 1.0;
        mem_factor = 1.0;
        dom0_device_init = Sim.Time.ms 500;
      }
    ()

let m2 () =
  create ~name:"M2"
    ~cpu:(Cpu.create ~sockets:2 ~cores_per_socket:14 ~threads_per_core:2 ~freq_ghz:1.7)
    ~ram:(Units.gib 64)
    ~nic:(Nic.create ~bandwidth_gbps:1.0 ~init_time:(Sim.Time.ms 2_300) ())
    ~costs:
      {
        cpu_factor = 1.47;
        mgmt_factor = 2.0;
        mem_factor = 1.11;
        dom0_device_init = Sim.Time.ms 4_500;
      }
    ()

let g5k_node () =
  create ~name:"G5K"
    ~cpu:(Cpu.create ~sockets:2 ~cores_per_socket:8 ~threads_per_core:2 ~freq_ghz:2.4)
    ~ram:(Units.gib 96)
    ~nic:(Nic.create ~bandwidth_gbps:10.0 ~init_time:(Sim.Time.ms 2_000) ())
    ~costs:
      {
        cpu_factor = 1.05;
        mgmt_factor = 1.6;
        mem_factor = 1.05;
        dom0_device_init = Sim.Time.ms 2_000;
      }
    ()

let worker_threads t = Cpu.usable_threads t.cpu ~reserved:t.reserved_threads
let fresh_pmem ?seed t = Pmem.create ?seed ~frames:(Units.frames_of_bytes t.ram) ()

let max_vms t ~vm_ram =
  if vm_ram <= 0 then invalid_arg "Machine.max_vms: non-positive VM RAM";
  let available = t.ram - Units.gib 2 in
  Stdlib.max 0 (available / vm_ram)

let pp fmt t =
  Format.fprintf fmt "%s: %a, %a RAM, %a" t.name Cpu.pp t.cpu Units.pp_bytes
    t.ram Nic.pp t.nic
