lib/core/phases.mli: Format Sim
