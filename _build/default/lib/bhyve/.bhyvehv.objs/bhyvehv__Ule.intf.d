lib/bhyve/ule.mli: Format
