lib/vmstate/virtqueue.mli: Format Hw Sim
