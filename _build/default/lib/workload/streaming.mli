(** Video-streaming server model (the cluster experiment of section 5.4
    runs 30 % of VMs as streaming servers with external clients).

    Streaming tolerates short gaps thanks to client-side buffering; the
    model reports how much of the client buffer a transplant consumes and
    whether playback stalled. *)

type result = {
  delivered_mb : float;
  stall_s : float;      (** total playback stall experienced by clients *)
  buffer_low_s : float; (** time spent below the refill threshold *)
}

val stream :
  rng:Sim.Rng.t -> sched:Sched.t -> duration_s:float ->
  ?client_buffer_s:float -> unit -> result
(** [client_buffer_s] (default 10 s) of content buffered ahead. *)
