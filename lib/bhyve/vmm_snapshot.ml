type error = Bad_magic | Truncated | Malformed of string

let pp_error fmt = function
  | Bad_magic -> Format.pp_print_string fmt "bad magic"
  | Truncated -> Format.pp_print_string fmt "truncated snapshot"
  | Malformed msg -> Format.fprintf fmt "malformed: %s" msg

let ioapic_pins = 32
let magic = 0x42485956l (* "BHYV" *)

type platform = {
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t;
  pit : Vmstate.Pit.t;
}

open Uisr.Wire

(* Per-vCPU block, fixed order: segment state first (the VMCS dump
   order), then control registers, GPRs, FPU, MSR table, LAPIC page,
   MTRR block, XSAVE area. *)
let put_vcpu w (v : Vmstate.Vcpu.t) =
  Writer.u32 w v.index;
  let s = v.regs.sregs in
  let seg (x : Vmstate.Regs.segment) =
    Writer.u16 w x.selector;
    Writer.u16 w x.attrs;
    Writer.i32 w x.limit;
    Writer.u64 w x.base
  in
  List.iter seg [ s.es; s.cs; s.ss; s.ds; s.fs; s.gs; s.ldt; s.tr ];
  List.iter (Writer.u64 w) [ s.cr0; s.cr2; s.cr3; s.cr4; s.efer; s.apic_base ];
  let g = v.regs.gprs in
  List.iter (Writer.u64 w)
    [ g.rdi; g.rsi; g.rdx; g.rcx; g.r8; g.r9; g.rax; g.rbx; g.rbp; g.r10;
      g.r11; g.r12; g.r13; g.r14; g.r15; g.rsp; g.rip; g.rflags ];
  let f = v.regs.fpu in
  Writer.array w (Writer.u64 w) f.xmm;
  Writer.array w (Writer.u64 w) f.st;
  Writer.u16 w f.fcw;
  Writer.u16 w f.fsw;
  Writer.u16 w f.ftw;
  Writer.i32 w f.mxcsr;
  Writer.list w
    (fun (m : Vmstate.Regs.msr) ->
      Writer.u32 w m.index;
      Writer.u64 w m.value)
    v.regs.msrs;
  let l = v.lapic in
  Writer.u32 w l.apic_id;
  Writer.u32 w l.version;
  Writer.u8 w l.tpr;
  Writer.i32 w l.ldr;
  Writer.i32 w l.dfr;
  Writer.i32 w l.svr;
  Writer.array w (Writer.u64 w) l.tmr;
  Writer.array w (Writer.u64 w) l.irr;
  Writer.array w (Writer.u64 w) l.isr;
  Writer.array w (Writer.i32 w) l.lvt;
  Writer.i32 w l.timer_dcr;
  Writer.i32 w l.timer_icr;
  Writer.i32 w l.timer_ccr;
  Writer.bool w l.enabled;
  let m = v.mtrr in
  Writer.u32 w m.def_type;
  Writer.array w (Writer.u64 w) m.fixed;
  Writer.array w
    (fun (r : Vmstate.Mtrr.variable_range) ->
      Writer.u64 w r.base;
      Writer.u64 w r.mask)
    m.variable;
  let x = v.xsave in
  Writer.u64 w x.xcr0;
  Writer.u64 w x.xstate_bv;
  Writer.list w
    (fun (c : Vmstate.Xsave.component) ->
      Writer.u32 w c.id;
      Writer.array w (Writer.u64 w) c.data)
    x.components

let get_vcpu r : Vmstate.Vcpu.t =
  let index = Reader.u32 r in
  let seg () : Vmstate.Regs.segment =
    let selector = Reader.u16 r in
    let attrs = Reader.u16 r in
    let limit = Reader.i32 r in
    let base = Reader.u64 r in
    { selector; base; limit; attrs }
  in
  let es = seg () in let cs = seg () in let ss = seg () in
  let ds = seg () in let fs = seg () in let gs = seg () in
  let ldt = seg () in let tr = seg () in
  let cr0 = Reader.u64 r in let cr2 = Reader.u64 r in
  let cr3 = Reader.u64 r in let cr4 = Reader.u64 r in
  let efer = Reader.u64 r in let apic_base = Reader.u64 r in
  let sregs : Vmstate.Regs.sregs =
    { cs; ds; es; fs; gs; ss; tr; ldt; cr0; cr2; cr3; cr4; efer; apic_base }
  in
  let rdi = Reader.u64 r in let rsi = Reader.u64 r in
  let rdx = Reader.u64 r in let rcx = Reader.u64 r in
  let r8 = Reader.u64 r in let r9 = Reader.u64 r in
  let rax = Reader.u64 r in let rbx = Reader.u64 r in
  let rbp = Reader.u64 r in let r10 = Reader.u64 r in
  let r11 = Reader.u64 r in let r12 = Reader.u64 r in
  let r13 = Reader.u64 r in let r14 = Reader.u64 r in
  let r15 = Reader.u64 r in let rsp = Reader.u64 r in
  let rip = Reader.u64 r in let rflags = Reader.u64 r in
  let gprs : Vmstate.Regs.gprs =
    { rax; rbx; rcx; rdx; rsi; rdi; rsp; rbp; r8; r9; r10; r11; r12; r13;
      r14; r15; rip; rflags }
  in
  let xmm = Reader.array r Reader.u64 in
  let st = Reader.array r Reader.u64 in
  let fcw = Reader.u16 r in
  let fsw = Reader.u16 r in
  let ftw = Reader.u16 r in
  let mxcsr = Reader.i32 r in
  let fpu : Vmstate.Regs.fpu = { fcw; fsw; ftw; mxcsr; st; xmm } in
  let msrs =
    Reader.list r (fun r ->
        let index = Reader.u32 r in
        let value = Reader.u64 r in
        { Vmstate.Regs.index; value })
  in
  let apic_id = Reader.u32 r in
  let version = Reader.u32 r in
  let tpr = Reader.u8 r in
  let ldr = Reader.i32 r in
  let dfr = Reader.i32 r in
  let svr = Reader.i32 r in
  let tmr = Reader.array r Reader.u64 in
  let irr = Reader.array r Reader.u64 in
  let isr = Reader.array r Reader.u64 in
  let lvt = Reader.array r Reader.i32 in
  let timer_dcr = Reader.i32 r in
  let timer_icr = Reader.i32 r in
  let timer_ccr = Reader.i32 r in
  let enabled = Reader.bool r in
  let lapic : Vmstate.Lapic.t =
    { apic_id; version; tpr; ldr; dfr; svr; isr; irr; tmr; lvt; timer_dcr;
      timer_icr; timer_ccr; enabled }
  in
  let def_type = Reader.u32 r in
  let fixed = Reader.array r Reader.u64 in
  let variable =
    Reader.array r (fun r ->
        let base = Reader.u64 r in
        let mask = Reader.u64 r in
        { Vmstate.Mtrr.base; mask })
  in
  let mtrr : Vmstate.Mtrr.t = { def_type; fixed; variable } in
  let xcr0 = Reader.u64 r in
  let xstate_bv = Reader.u64 r in
  let components =
    Reader.list r (fun r ->
        let id = Reader.u32 r in
        let data = Reader.array r Reader.u64 in
        { Vmstate.Xsave.id; data })
  in
  { index; regs = { gprs; sregs; msrs; fpu }; lapic; mtrr;
    xsave = { xcr0; xstate_bv; components } }

let put_ioapic w (io : Vmstate.Ioapic.t) =
  if Vmstate.Ioapic.pin_count io > ioapic_pins then
    invalid_arg "Vmm_snapshot: IOAPIC exceeds bhyve's 32 pins";
  Writer.u32 w io.id;
  Writer.array w
    (fun (p : Vmstate.Ioapic.redirection) ->
      Writer.u32 w
        (p.vector lor (p.delivery_mode lsl 8) lor (p.dest_mode lsl 11)
        lor (p.polarity lsl 13) lor (p.trigger_mode lsl 15)
        lor (if p.masked then 1 lsl 16 else 0));
      Writer.u32 w p.dest)
    io.pins

let get_ioapic r : Vmstate.Ioapic.t =
  let id = Reader.u32 r in
  let pins =
    Reader.array r (fun r ->
        let word = Reader.u32 r in
        let dest = Reader.u32 r in
        {
          Vmstate.Ioapic.vector = word land 0xFF;
          delivery_mode = (word lsr 8) land 0x7;
          dest_mode = (word lsr 11) land 1;
          polarity = (word lsr 13) land 1;
          trigger_mode = (word lsr 15) land 1;
          masked = (word lsr 16) land 1 = 1;
          dest;
        })
  in
  { id; pins }

let put_pit w (p : Vmstate.Pit.t) =
  Writer.array w
    (fun (c : Vmstate.Pit.channel) ->
      Writer.u16 w c.count;
      Writer.u16 w c.latched_count;
      Writer.u8 w c.mode;
      Writer.u8 w c.status;
      Writer.u8 w c.read_state;
      Writer.u8 w c.write_state;
      Writer.bool w c.bcd;
      Writer.bool w c.gate)
    p.channels;
  Writer.bool w p.speaker_data_on

let get_pit r : Vmstate.Pit.t =
  let channels =
    Reader.array r (fun r ->
        let count = Reader.u16 r in
        let latched_count = Reader.u16 r in
        let mode = Reader.u8 r in
        let status = Reader.u8 r in
        let read_state = Reader.u8 r in
        let write_state = Reader.u8 r in
        let bcd = Reader.bool r in
        let gate = Reader.bool r in
        { Vmstate.Pit.count; latched_count; status; read_state; write_state;
          mode; bcd; gate })
  in
  let speaker_data_on = Reader.bool r in
  { channels; speaker_data_on }

let encode (p : platform) =
  let w = Writer.create () in
  Writer.i32 w magic;
  Writer.u32 w (List.length p.vcpus);
  List.iter (put_vcpu w) p.vcpus;
  put_ioapic w p.ioapic;
  put_pit w p.pit;
  Writer.contents w

let decode data =
  let r = Reader.create data in
  try
    let m = Reader.i32 r in
    if not (Int32.equal m magic) then Error Bad_magic
    else begin
      let n = Reader.u32 r in
      let vcpus = List.init n (fun _ -> get_vcpu r) in
      let ioapic = get_ioapic r in
      let pit = get_pit r in
      if not (Reader.eof r) then Error (Malformed "trailing bytes")
      else Ok { vcpus; ioapic; pit }
    end
  with
  | Reader.Truncated -> Error Truncated
  | Reader.Bad_format e -> Error (Malformed (Reader.format_error_to_string e))
