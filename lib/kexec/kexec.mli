(** Micro-reboot via kexec (section 4.2.4).

    The target hypervisor's binaries are staged into reserved RAM ahead
    of time (workflow step 1); the jump hands control to the new kernel
    without firmware re-initialisation, scrubbing all memory except the
    staged image and the regions a preserve predicate (built from PRAM)
    protects.  The PRAM pointer travels on the new kernel's command
    line. *)

type image

val load :
  pmem:Hw.Pmem.t -> kernel:string -> size:Hw.Units.bytes_ ->
  cmdline:string -> image
(** Stage a kernel image: allocates and reserves frames for it.
    Raises {!Hw.Pmem.Out_of_memory}. *)

val kernel : image -> string
val cmdline : image -> string
val image_frames : image -> int

val with_pram_pointer : image -> Hw.Frame.Mfn.t -> image
(** Append [pram=0x<mfn>] to the staged command line. *)

val pram_pointer_of_cmdline : string -> Hw.Frame.Mfn.t option
(** Parse the [pram=] argument back out (what the target's early boot
    does). *)

val clobber : pmem:Hw.Pmem.t -> image -> unit
(** Deliberately corrupt the staged image's first frame (fault
    injection): the next {!execute} must report it non-intact. *)

type jump_report = {
  frames_wiped : int;
  image_intact : bool;  (** staged image survived its own jump *)
}

val execute :
  pmem:Hw.Pmem.t -> image -> preserve:(Hw.Frame.Mfn.t -> bool) -> jump_report
(** Perform the jump: scrub every allocated, unpreserved, unreserved
    frame {e and} return it to the allocator.  After this, the old
    hypervisor's HV State, NPTs and management structures are gone —
    only reserved regions (staged image, PRAM metadata) and preserved
    regions (guest memory) survive. *)

val unload : pmem:Hw.Pmem.t -> image -> unit
(** Free the staged image (after the new kernel has relocated itself). *)

val pp : Format.formatter -> image -> unit
