lib/hw/machine.mli: Cpu Format Nic Pmem Sim Units
