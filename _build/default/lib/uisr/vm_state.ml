type memmap_entry = {
  gfn : Hw.Frame.Gfn.t;
  mfn : Hw.Frame.Mfn.t;
  frames : int;
}

type device_snapshot = {
  dev_id : int;
  dev_kind : Vmstate.Device.kind;
  dev_unplugged : bool;
  dev_emulation_state : int64 array;
  dev_queues : int64 array array;
  dev_tcp_connections : int;
}

type t = {
  vm_name : string;
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t;
  pit : Vmstate.Pit.t;
  devices : device_snapshot list;
  page_kind : Hw.Units.page_kind;
  ram_bytes : Hw.Units.bytes_;
  memmap : memmap_entry list;
  source_hypervisor : string;
  workload : Vmstate.Vm.workload_kind;
  inplace_compatible : bool;
}

(* Split a run of [frames] into power-of-two entries, largest first.
   PRAM page entries carry a power-of-two size so they can represent
   hypervisor-side large pages (section 4.2.2, Fig. 4). *)
let rec pow2_split gfn mfn frames acc =
  if frames = 0 then List.rev acc
  else begin
    let rec largest p = if 2 * p <= frames then largest (2 * p) else p in
    let chunk = largest 1 in
    let entry = { gfn; mfn; frames = chunk } in
    pow2_split
      (Hw.Frame.Gfn.add gfn chunk)
      (Hw.Frame.Mfn.add mfn chunk)
      (frames - chunk) (entry :: acc)
  end

let memmap_of_guest_mem mem =
  List.concat_map
    (fun (gfn, mfn, frames) -> pow2_split gfn mfn frames [])
    (Vmstate.Guest_mem.extents mem)

let snapshot_device (d : Vmstate.Device.t) =
  (* Emulated network devices are unplugged before transplant and
     rescanned after; their emulation state is not carried over. *)
  let unplug = Vmstate.Device.is_network d && not (Vmstate.Device.is_passthrough d) in
  {
    dev_id = d.id;
    dev_kind = d.kind;
    dev_unplugged = unplug;
    dev_emulation_state = (if unplug then [||] else Array.copy d.emulation_state);
    dev_queues =
      (if unplug then [||]
       else Array.map Vmstate.Virtqueue.to_words d.queues);
    dev_tcp_connections = d.tcp_connections;
  }

let of_vm ~source_hypervisor (vm : Vmstate.Vm.t) =
  if Vmstate.Vm.is_running vm then
    invalid_arg "Vm_state.of_vm: VM must be paused or suspended first";
  {
    vm_name = vm.config.name;
    vcpus = Array.to_list vm.vcpus;
    ioapic = vm.ioapic;
    pit = vm.pit;
    devices = Array.to_list (Array.map snapshot_device vm.devices);
    page_kind = vm.config.page_kind;
    ram_bytes = vm.config.ram;
    memmap = memmap_of_guest_mem vm.mem;
    source_hypervisor;
    workload = vm.config.workload;
    inplace_compatible = vm.config.inplace_compatible;
  }

let total_mapped_frames t =
  List.fold_left (fun acc e -> acc + e.frames) 0 t.memmap

let vcpu_count t = List.length t.vcpus

let equal_device a b =
  a.dev_id = b.dev_id && a.dev_kind = b.dev_kind
  && Bool.equal a.dev_unplugged b.dev_unplugged
  && Array.for_all2 Int64.equal a.dev_emulation_state b.dev_emulation_state
  && Array.length a.dev_queues = Array.length b.dev_queues
  && Array.for_all2
       (fun qa qb -> Array.for_all2 Int64.equal qa qb)
       a.dev_queues b.dev_queues
  && a.dev_tcp_connections = b.dev_tcp_connections

let equal_memmap_entry a b =
  Hw.Frame.Gfn.equal a.gfn b.gfn && Hw.Frame.Mfn.equal a.mfn b.mfn
  && a.frames = b.frames

let equal a b =
  String.equal a.vm_name b.vm_name
  && List.length a.vcpus = List.length b.vcpus
  && List.for_all2 Vmstate.Vcpu.equal a.vcpus b.vcpus
  && Vmstate.Ioapic.equal a.ioapic b.ioapic
  && Vmstate.Pit.equal a.pit b.pit
  && List.length a.devices = List.length b.devices
  && List.for_all2 equal_device a.devices b.devices
  && a.page_kind = b.page_kind && a.ram_bytes = b.ram_bytes
  && List.length a.memmap = List.length b.memmap
  && List.for_all2 equal_memmap_entry a.memmap b.memmap
  && String.equal a.source_hypervisor b.source_hypervisor
  && a.workload = b.workload
  && Bool.equal a.inplace_compatible b.inplace_compatible

let pp fmt t =
  Format.fprintf fmt
    "uisr[%s from %s: %d vcpus, %a, %d devices, %d memmap entries]" t.vm_name
    t.source_hypervisor (vcpu_count t) Hw.Units.pp_bytes t.ram_bytes
    (List.length t.devices) (List.length t.memmap)
