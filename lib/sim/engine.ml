(* A binary min-heap over (time, sequence) keys. The sequence number makes
   the execution order of simultaneous events equal to their scheduling
   order, which pins down determinism. *)

type event = { at : Time.t; seq : int; run : unit -> unit }

type timer_notice = [ `Fired | `Cancelled ]

type t = {
  mutable clock : Time.t;
  mutable heap : event array;
  mutable size : int;
  mutable next_seq : int;
  mutable timer_hook : (Time.t -> timer_notice -> unit) option;
}

let dummy = { at = Time.zero; seq = -1; run = ignore }

let create () =
  { clock = Time.zero; heap = Array.make 64 dummy; size = 0; next_seq = 0;
    timer_hook = None }

let set_timer_hook t hook = t.timer_hook <- Some hook
let clear_timer_hook t = t.timer_hook <- None

let notify t notice =
  match t.timer_hook with None -> () | Some hook -> hook t.clock notice
let now t = t.clock
let pending t = t.size

let before a b =
  match Time.compare a.at b.at with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ev =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0;
  top

let schedule_at t at run =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  push t { at; seq; run }

let schedule_after t delay run = schedule_at t (Time.add t.clock delay) run

let schedule_every t ?start period f =
  if Time.(period <= zero) then
    invalid_arg "Engine.schedule_every: period must be positive";
  let rec tick at =
    schedule_at t at (fun () ->
        match f () with
        | `Continue -> tick (Time.add t.clock period)
        | `Stop -> ())
  in
  tick (match start with Some s -> s | None -> Time.add t.clock period)

(* A timer is a scheduled event behind a revocable guard: the heap entry
   stays put, but a cancelled guard makes it a no-op when popped. *)

type timer_state = Timer_pending | Timer_fired | Timer_cancelled

type timer = { mutable state : timer_state; owner : t }

let schedule_timer_at t at run =
  let timer = { state = Timer_pending; owner = t } in
  schedule_at t at (fun () ->
      if timer.state = Timer_pending then begin
        timer.state <- Timer_fired;
        notify t `Fired;
        run ()
      end);
  timer

let schedule_timer_after t delay run =
  schedule_timer_at t (Time.add t.clock delay) run

let cancel timer =
  if timer.state = Timer_pending then begin
    timer.state <- Timer_cancelled;
    notify timer.owner `Cancelled
  end

let timer_pending timer = timer.state = Timer_pending

let run t =
  while t.size > 0 do
    let ev = pop t in
    t.clock <- ev.at;
    ev.run ()
  done

let run_until t limit =
  let continue = ref true in
  while !continue && t.size > 0 do
    if Time.(t.heap.(0).at <= limit) then begin
      let ev = pop t in
      t.clock <- ev.at;
      ev.run ()
    end
    else continue := false
  done;
  if Time.(t.clock < limit) then t.clock <- limit
