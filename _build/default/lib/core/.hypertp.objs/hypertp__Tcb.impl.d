lib/core/tcb.ml: Format List
