type app = {
  name : string;
  suite : [ `Int | `Fp ];
  kvm_time_s : float;
  xen_time_s : float;
}

(* Table 5, columns "KVM Time" and "Xen Time". *)
let all =
  [
    { name = "perlbench"; suite = `Int; kvm_time_s = 474.31; xen_time_s = 477.39 };
    { name = "gcc"; suite = `Int; kvm_time_s = 345.92; xen_time_s = 346.24 };
    { name = "bwaves"; suite = `Fp; kvm_time_s = 943.96; xen_time_s = 941.36 };
    { name = "mcf"; suite = `Int; kvm_time_s = 466.78; xen_time_s = 465.83 };
    { name = "cactuBSSN"; suite = `Fp; kvm_time_s = 323.78; xen_time_s = 325.74 };
    { name = "namd"; suite = `Fp; kvm_time_s = 308.77; xen_time_s = 310.58 };
    { name = "parest"; suite = `Fp; kvm_time_s = 663.50; xen_time_s = 666.87 };
    { name = "povray"; suite = `Fp; kvm_time_s = 558.38; xen_time_s = 550.73 };
    { name = "lbm"; suite = `Fp; kvm_time_s = 308.55; xen_time_s = 306.27 };
    { name = "omnetpp"; suite = `Int; kvm_time_s = 557.65; xen_time_s = 560.94 };
    { name = "wrf"; suite = `Fp; kvm_time_s = 650.81; xen_time_s = 686.62 };
    { name = "xalancbmk"; suite = `Int; kvm_time_s = 496.66; xen_time_s = 488.86 };
    { name = "x264"; suite = `Int; kvm_time_s = 630.68; xen_time_s = 634.67 };
    { name = "blender"; suite = `Fp; kvm_time_s = 457.93; xen_time_s = 456.97 };
    { name = "cam4"; suite = `Fp; kvm_time_s = 539.63; xen_time_s = 569.20 };
    { name = "deepsjeng"; suite = `Int; kvm_time_s = 456.65; xen_time_s = 457.75 };
    { name = "imagick"; suite = `Fp; kvm_time_s = 707.99; xen_time_s = 712.16 };
    { name = "leela"; suite = `Int; kvm_time_s = 738.87; xen_time_s = 741.29 };
    { name = "nab"; suite = `Fp; kvm_time_s = 554.47; xen_time_s = 570.73 };
    { name = "exchange2"; suite = `Int; kvm_time_s = 580.84; xen_time_s = 578.83 };
    { name = "fotonik3d"; suite = `Fp; kvm_time_s = 405.29; xen_time_s = 398.53 };
    { name = "roms"; suite = `Fp; kvm_time_s = 432.87; xen_time_s = 442.74 };
    { name = "xz"; suite = `Int; kvm_time_s = 530.10; xen_time_s = 527.98 };
  ]

let find name = List.find (fun a -> String.equal a.name name) all

let base_time app = function
  | Profile.P_kvm -> app.kvm_time_s
  | Profile.P_xen -> app.xen_time_s
  | Profile.P_bhyve -> app.kvm_time_s *. 1.02 (* no paper anchor; near KVM *)

let names = List.map (fun a -> a.name) all
