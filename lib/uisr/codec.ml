type error =
  | Truncated
  | Bad_magic
  | Unsupported_version of int
  | Crc_mismatch of string
  | Malformed of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated blob"
  | Bad_magic -> Format.pp_print_string fmt "bad magic"
  | Unsupported_version v -> Format.fprintf fmt "unsupported version %d" v
  | Crc_mismatch msg -> Format.fprintf fmt "crc mismatch: %s" msg
  | Malformed msg -> Format.fprintf fmt "malformed: %s" msg

let format_version = 2
let legacy_format_version = 1
let magic = "UISR"

(* v2 envelope flags byte. *)
let flag_section_crcs = 0x01

(* Section tags. *)
let tag_vm_info = 0x0001
let tag_vcpu = 0x0010
let tag_ioapic = 0x0011
let tag_pit = 0x0012
let tag_devices = 0x0020
let tag_memmap = 0x0030

let section_name tag =
  if tag = tag_vm_info then "vm_info"
  else if tag = tag_vcpu then "vcpu"
  else if tag = tag_ioapic then "ioapic"
  else if tag = tag_pit then "pit"
  else if tag = tag_devices then "devices"
  else if tag = tag_memmap then "memmap"
  else Printf.sprintf "tag 0x%04x" tag

open Wire

(* --- encoders --- *)

let put_gprs w (g : Vmstate.Regs.gprs) =
  List.iter (Writer.u64 w)
    [ g.rax; g.rbx; g.rcx; g.rdx; g.rsi; g.rdi; g.rsp; g.rbp;
      g.r8; g.r9; g.r10; g.r11; g.r12; g.r13; g.r14; g.r15;
      g.rip; g.rflags ]

let put_segment w (s : Vmstate.Regs.segment) =
  Writer.u16 w s.selector;
  Writer.u64 w s.base;
  Writer.i32 w s.limit;
  Writer.u16 w s.attrs

let put_sregs w (s : Vmstate.Regs.sregs) =
  List.iter (put_segment w) [ s.cs; s.ds; s.es; s.fs; s.gs; s.ss; s.tr; s.ldt ];
  List.iter (Writer.u64 w) [ s.cr0; s.cr2; s.cr3; s.cr4; s.efer; s.apic_base ]

let put_msr w (m : Vmstate.Regs.msr) =
  Writer.u32 w m.index;
  Writer.u64 w m.value

let put_fpu w (f : Vmstate.Regs.fpu) =
  Writer.u16 w f.fcw;
  Writer.u16 w f.fsw;
  Writer.u16 w f.ftw;
  Writer.i32 w f.mxcsr;
  Writer.array w (Writer.u64 w) f.st;
  Writer.array w (Writer.u64 w) f.xmm

let put_lapic w (l : Vmstate.Lapic.t) =
  Writer.u32 w l.apic_id;
  Writer.u32 w l.version;
  Writer.u8 w l.tpr;
  Writer.i32 w l.ldr;
  Writer.i32 w l.dfr;
  Writer.i32 w l.svr;
  Writer.array w (Writer.u64 w) l.isr;
  Writer.array w (Writer.u64 w) l.irr;
  Writer.array w (Writer.u64 w) l.tmr;
  Writer.array w (Writer.i32 w) l.lvt;
  Writer.i32 w l.timer_dcr;
  Writer.i32 w l.timer_icr;
  Writer.i32 w l.timer_ccr;
  Writer.bool w l.enabled

let put_mtrr w (m : Vmstate.Mtrr.t) =
  Writer.u32 w m.def_type;
  Writer.array w (Writer.u64 w) m.fixed;
  Writer.array w
    (fun (r : Vmstate.Mtrr.variable_range) ->
      Writer.u64 w r.base;
      Writer.u64 w r.mask)
    m.variable

let put_xsave w (x : Vmstate.Xsave.t) =
  Writer.u64 w x.xcr0;
  Writer.u64 w x.xstate_bv;
  Writer.list w
    (fun (c : Vmstate.Xsave.component) ->
      Writer.u32 w c.id;
      Writer.array w (Writer.u64 w) c.data)
    x.components

let put_vcpu w (v : Vmstate.Vcpu.t) =
  Writer.u32 w v.index;
  put_gprs w v.regs.gprs;
  put_sregs w v.regs.sregs;
  Writer.list w (put_msr w) v.regs.msrs;
  put_fpu w v.regs.fpu;
  put_lapic w v.lapic;
  put_mtrr w v.mtrr;
  put_xsave w v.xsave

let put_ioapic w (io : Vmstate.Ioapic.t) =
  Writer.u32 w io.id;
  Writer.array w
    (fun (r : Vmstate.Ioapic.redirection) ->
      Writer.u8 w r.vector;
      Writer.u8 w r.delivery_mode;
      Writer.u8 w r.dest_mode;
      Writer.u8 w r.polarity;
      Writer.u8 w r.trigger_mode;
      Writer.bool w r.masked;
      Writer.u8 w r.dest)
    io.pins

let put_pit w (p : Vmstate.Pit.t) =
  Writer.array w
    (fun (c : Vmstate.Pit.channel) ->
      Writer.u16 w c.count;
      Writer.u16 w c.latched_count;
      Writer.u8 w c.status;
      Writer.u8 w c.read_state;
      Writer.u8 w c.write_state;
      Writer.u8 w c.mode;
      Writer.bool w c.bcd;
      Writer.bool w c.gate)
    p.channels;
  Writer.bool w p.speaker_data_on

let device_kind_code = function
  | Vmstate.Device.Net_emulated -> 0
  | Vmstate.Device.Net_passthrough -> 1
  | Vmstate.Device.Blk_emulated -> 2
  | Vmstate.Device.Blk_passthrough -> 3
  | Vmstate.Device.Serial_console -> 4

let device_kind_of_code r = function
  | 0 -> Vmstate.Device.Net_emulated
  | 1 -> Vmstate.Device.Net_passthrough
  | 2 -> Vmstate.Device.Blk_emulated
  | 3 -> Vmstate.Device.Blk_passthrough
  | 4 -> Vmstate.Device.Serial_console
  | n -> Reader.fail r (Printf.sprintf "device kind %d" n)

let put_device w (d : Vm_state.device_snapshot) =
  Writer.u32 w d.dev_id;
  Writer.u8 w (device_kind_code d.dev_kind);
  Writer.bool w d.dev_unplugged;
  Writer.array w (Writer.u64 w) d.dev_emulation_state;
  Writer.array w (fun q -> Writer.array w (Writer.u64 w) q) d.dev_queues;
  Writer.u32 w d.dev_tcp_connections

let put_memmap_entry w (e : Vm_state.memmap_entry) =
  Writer.u64 w (Int64.of_int (Hw.Frame.Gfn.to_int e.gfn));
  Writer.u64 w (Int64.of_int (Hw.Frame.Mfn.to_int e.mfn));
  Writer.u32 w e.frames

let put_vm_info ~wstring w (t : Vm_state.t) =
  wstring w t.vm_name;
  wstring w t.source_hypervisor;
  Writer.u8 w (match t.page_kind with Hw.Units.Page_4k -> 0 | Hw.Units.Page_2m -> 1);
  Writer.u64 w (Int64.of_int t.ram_bytes);
  (match t.workload with
  | Vmstate.Vm.Wl_idle -> Writer.u8 w 0; wstring w ""
  | Vmstate.Vm.Wl_redis -> Writer.u8 w 1; wstring w ""
  | Vmstate.Vm.Wl_mysql -> Writer.u8 w 2; wstring w ""
  | Vmstate.Vm.Wl_spec app -> Writer.u8 w 3; wstring w app
  | Vmstate.Vm.Wl_darknet -> Writer.u8 w 4; wstring w ""
  | Vmstate.Vm.Wl_streaming -> Writer.u8 w 5; wstring w "");
  Writer.bool w t.inplace_compatible

(* One pooled writer shared across every encode: per-VM translation in
   a fleet campaign reuses the same backing buffer and section scratch
   pool instead of allocating O(sections) buffers per VM.  Safe because
   encoding is synchronous and non-reentrant (section bodies only call
   put_* helpers), and [Writer.contents] copies the bytes out. *)
let pooled_writer = lazy (Writer.create ())

let encode_body ~version (t : Vm_state.t) =
  let w = Lazy.force pooled_writer in
  Writer.reset w;
  (* header *)
  Writer.u8 w (Char.code magic.[0]);
  Writer.u8 w (Char.code magic.[1]);
  Writer.u8 w (Char.code magic.[2]);
  Writer.u8 w (Char.code magic.[3]);
  Writer.u16 w version;
  let wstring, wsection =
    if version >= 2 then begin
      Writer.u8 w flag_section_crcs;
      (Writer.string, Writer.section_crc)
    end
    else (Writer.string16, Writer.section)
  in
  wsection w ~tag:tag_vm_info (fun w -> put_vm_info ~wstring w t);
  List.iter
    (fun v -> wsection w ~tag:tag_vcpu (fun w -> put_vcpu w v))
    t.vcpus;
  wsection w ~tag:tag_ioapic (fun w -> put_ioapic w t.ioapic);
  wsection w ~tag:tag_pit (fun w -> put_pit w t.pit);
  wsection w ~tag:tag_devices (fun w ->
      Writer.list w (put_device w) t.devices);
  wsection w ~tag:tag_memmap (fun w ->
      Writer.list w (put_memmap_entry w) t.memmap);
  Writer.contents w

let encode t = Wire.append_crc (encode_body ~version:format_version t)
let encode_v1 t = Wire.append_crc (encode_body ~version:legacy_format_version t)

(* --- decoders --- *)

let get_gprs r : Vmstate.Regs.gprs =
  let u () = Reader.u64 r in
  let rax = u () in let rbx = u () in let rcx = u () in let rdx = u () in
  let rsi = u () in let rdi = u () in let rsp = u () in let rbp = u () in
  let r8 = u () in let r9 = u () in let r10 = u () in let r11 = u () in
  let r12 = u () in let r13 = u () in let r14 = u () in let r15 = u () in
  let rip = u () in let rflags = u () in
  { rax; rbx; rcx; rdx; rsi; rdi; rsp; rbp; r8; r9; r10; r11; r12; r13;
    r14; r15; rip; rflags }

let get_segment r : Vmstate.Regs.segment =
  let selector = Reader.u16 r in
  let base = Reader.u64 r in
  let limit = Reader.i32 r in
  let attrs = Reader.u16 r in
  { selector; base; limit; attrs }

let get_sregs r : Vmstate.Regs.sregs =
  let cs = get_segment r in let ds = get_segment r in
  let es = get_segment r in let fs = get_segment r in
  let gs = get_segment r in let ss = get_segment r in
  let tr = get_segment r in let ldt = get_segment r in
  let cr0 = Reader.u64 r in let cr2 = Reader.u64 r in
  let cr3 = Reader.u64 r in let cr4 = Reader.u64 r in
  let efer = Reader.u64 r in let apic_base = Reader.u64 r in
  { cs; ds; es; fs; gs; ss; tr; ldt; cr0; cr2; cr3; cr4; efer; apic_base }

let get_msr r : Vmstate.Regs.msr =
  let index = Reader.u32 r in
  let value = Reader.u64 r in
  { index; value }

let get_fpu r : Vmstate.Regs.fpu =
  let fcw = Reader.u16 r in
  let fsw = Reader.u16 r in
  let ftw = Reader.u16 r in
  let mxcsr = Reader.i32 r in
  let st = Reader.array r Reader.u64 in
  let xmm = Reader.array r Reader.u64 in
  { fcw; fsw; ftw; mxcsr; st; xmm }

let get_lapic r : Vmstate.Lapic.t =
  let apic_id = Reader.u32 r in
  let version = Reader.u32 r in
  let tpr = Reader.u8 r in
  let ldr = Reader.i32 r in
  let dfr = Reader.i32 r in
  let svr = Reader.i32 r in
  let isr = Reader.array r Reader.u64 in
  let irr = Reader.array r Reader.u64 in
  let tmr = Reader.array r Reader.u64 in
  let lvt = Reader.array r Reader.i32 in
  let timer_dcr = Reader.i32 r in
  let timer_icr = Reader.i32 r in
  let timer_ccr = Reader.i32 r in
  let enabled = Reader.bool r in
  { apic_id; version; tpr; ldr; dfr; svr; isr; irr; tmr; lvt; timer_dcr;
    timer_icr; timer_ccr; enabled }

let get_mtrr r : Vmstate.Mtrr.t =
  let def_type = Reader.u32 r in
  let fixed = Reader.array r Reader.u64 in
  let variable =
    Reader.array r (fun r ->
        let base = Reader.u64 r in
        let mask = Reader.u64 r in
        { Vmstate.Mtrr.base; mask })
  in
  { def_type; fixed; variable }

let get_xsave r : Vmstate.Xsave.t =
  let xcr0 = Reader.u64 r in
  let xstate_bv = Reader.u64 r in
  let components =
    Reader.list r (fun r ->
        let id = Reader.u32 r in
        let data = Reader.array r Reader.u64 in
        { Vmstate.Xsave.id; data })
  in
  { xcr0; xstate_bv; components }

let get_vcpu r : Vmstate.Vcpu.t =
  let index = Reader.u32 r in
  let gprs = get_gprs r in
  let sregs = get_sregs r in
  let msrs = Reader.list r get_msr in
  let fpu = get_fpu r in
  let lapic = get_lapic r in
  let mtrr = get_mtrr r in
  let xsave = get_xsave r in
  { index; regs = { gprs; sregs; msrs; fpu }; lapic; mtrr; xsave }

let get_ioapic r : Vmstate.Ioapic.t =
  let id = Reader.u32 r in
  let pins =
    Reader.array r (fun r ->
        let vector = Reader.u8 r in
        let delivery_mode = Reader.u8 r in
        let dest_mode = Reader.u8 r in
        let polarity = Reader.u8 r in
        let trigger_mode = Reader.u8 r in
        let masked = Reader.bool r in
        let dest = Reader.u8 r in
        { Vmstate.Ioapic.vector; delivery_mode; dest_mode; polarity;
          trigger_mode; masked; dest })
  in
  { id; pins }

let get_pit r : Vmstate.Pit.t =
  let channels =
    Reader.array r (fun r ->
        let count = Reader.u16 r in
        let latched_count = Reader.u16 r in
        let status = Reader.u8 r in
        let read_state = Reader.u8 r in
        let write_state = Reader.u8 r in
        let mode = Reader.u8 r in
        let bcd = Reader.bool r in
        let gate = Reader.bool r in
        { Vmstate.Pit.count; latched_count; status; read_state; write_state;
          mode; bcd; gate })
  in
  let speaker_data_on = Reader.bool r in
  { channels; speaker_data_on }

let get_device r : Vm_state.device_snapshot =
  let dev_id = Reader.u32 r in
  let dev_kind = device_kind_of_code r (Reader.u8 r) in
  let dev_unplugged = Reader.bool r in
  let dev_emulation_state = Reader.array r Reader.u64 in
  let dev_queues = Reader.array r (fun r -> Reader.array r Reader.u64) in
  let dev_tcp_connections = Reader.u32 r in
  { dev_id; dev_kind; dev_unplugged; dev_emulation_state; dev_queues;
    dev_tcp_connections }

let get_memmap_entry r : Vm_state.memmap_entry =
  let gfn = Hw.Frame.Gfn.of_int (Int64.to_int (Reader.u64 r)) in
  let mfn = Hw.Frame.Mfn.of_int (Int64.to_int (Reader.u64 r)) in
  let frames = Reader.u32 r in
  { gfn; mfn; frames }

type partial = {
  mutable p_name : string option;
  mutable p_source : string option;
  mutable p_page_kind : Hw.Units.page_kind option;
  mutable p_ram : int option;
  mutable p_workload : Vmstate.Vm.workload_kind option;
  mutable p_inplace : bool option;
  mutable p_vcpus : Vmstate.Vcpu.t list; (* reversed *)
  mutable p_ioapic : Vmstate.Ioapic.t option;
  mutable p_pit : Vmstate.Pit.t option;
  mutable p_devices : Vm_state.device_snapshot list option;
  mutable p_memmap : Vm_state.memmap_entry list option;
}

let empty_partial () =
  { p_name = None; p_source = None; p_page_kind = None; p_ram = None;
    p_workload = None; p_inplace = None;
    p_vcpus = []; p_ioapic = None; p_pit = None; p_devices = None;
    p_memmap = None }

let get_vm_info ~rstring r p =
  p.p_name <- Some (rstring r);
  p.p_source <- Some (rstring r);
  p.p_page_kind <-
    Some
      (match Reader.u8 r with
      | 0 -> Hw.Units.Page_4k
      | 1 -> Hw.Units.Page_2m
      | n -> Reader.fail r (Printf.sprintf "page kind %d" n));
  p.p_ram <- Some (Int64.to_int (Reader.u64 r));
  let wl_code = Reader.u8 r in
  let wl_arg = rstring r in
  p.p_workload <-
    Some
      (match wl_code with
      | 0 -> Vmstate.Vm.Wl_idle
      | 1 -> Vmstate.Vm.Wl_redis
      | 2 -> Vmstate.Vm.Wl_mysql
      | 3 -> Vmstate.Vm.Wl_spec wl_arg
      | 4 -> Vmstate.Vm.Wl_darknet
      | 5 -> Vmstate.Vm.Wl_streaming
      | n -> Reader.fail r (Printf.sprintf "workload %d" n));
  p.p_inplace <- Some (Reader.bool r)

(* Decode one section's payload into the partial.  Raises on unknown
   tags and on any malformation inside the payload. *)
let apply_section ~rstring ~tag r p =
  if tag = tag_vm_info then get_vm_info ~rstring r p
  else if tag = tag_vcpu then p.p_vcpus <- get_vcpu r :: p.p_vcpus
  else if tag = tag_ioapic then p.p_ioapic <- Some (get_ioapic r)
  else if tag = tag_pit then p.p_pit <- Some (get_pit r)
  else if tag = tag_devices then p.p_devices <- Some (Reader.list r get_device)
  else if tag = tag_memmap then
    p.p_memmap <- Some (Reader.list r get_memmap_entry)
  else Reader.fail r (Printf.sprintf "unknown tag 0x%x" tag)

let assemble p =
  match (p.p_name, p.p_source, p.p_page_kind, p.p_ram, p.p_ioapic,
         p.p_pit, p.p_devices, p.p_memmap, p.p_workload, p.p_inplace)
  with
  | ( Some vm_name, Some source_hypervisor, Some page_kind,
      Some ram_bytes, Some ioapic, Some pit, Some devices, Some memmap,
      Some workload, Some inplace_compatible )
    ->
    Some
      {
        Vm_state.vm_name;
        vcpus = List.rev p.p_vcpus;
        ioapic;
        pit;
        devices;
        page_kind;
        ram_bytes;
        memmap;
        source_hypervisor;
        workload;
        inplace_compatible;
      }
  | _ -> None

let decode blob =
  match Wire.check_crc blob with
  | Error msg -> Error (Crc_mismatch msg)
  | Ok body -> (
    let r = Reader.create body in
    try
      let m =
        try String.init 4 (fun _ -> Char.chr (Reader.u8 r))
        with Reader.Truncated -> raise Exit
      in
      if not (String.equal m magic) then Error Bad_magic
      else begin
        let version = Reader.u16 r in
        if version <> format_version && version <> legacy_format_version then
          Error (Unsupported_version version)
        else begin
          let rstring, rsection =
            if version >= 2 then begin
              let _flags = Reader.u8 r in
              let rsection =
                if _flags land flag_section_crcs <> 0 then Reader.section_crc
                else Reader.section
              in
              (Reader.string, rsection)
            end
            else (Reader.string16, Reader.section)
          in
          let p = empty_partial () in
          while not (Reader.eof r) do
            rsection r (fun ~tag r -> apply_section ~rstring ~tag r p)
          done;
          match assemble p with
          | Some state -> Ok state
          | None -> Error (Malformed "missing mandatory section")
        end
      end
    with
    | Reader.Truncated | Exit -> Error Truncated
    | Reader.Bad_format e -> Error (Malformed (Reader.format_error_to_string e)))

(* --- the salvage decoder --- *)

let fatal_tag tag =
  tag = tag_vm_info || tag = tag_vcpu || tag = tag_devices || tag = tag_memmap

let singleton_present p tag =
  (tag = tag_vm_info && p.p_name <> None)
  || (tag = tag_ioapic && p.p_ioapic <> None)
  || (tag = tag_pit && p.p_pit <> None)
  || (tag = tag_devices && p.p_devices <> None)
  || (tag = tag_memmap && p.p_memmap <> None)

let decode_verified_v2 ?frame_ok ~outer_ok body =
  let blen = Bytes.length body in
  let flags = Bytes.get_uint8 body 6 in
  let has_crc = flags land flag_section_crcs <> 0 in
  let trailer = if has_crc then 4 else 0 in
  let p = empty_partial () in
  let scan_diags = ref [] in
  let total = ref 0 and ok = ref 0 in
  let add d = scan_diags := d :: !scan_diags in
  let pos = ref 7 in
  let stop = ref false in
  while (not !stop) && !pos < blen do
    if blen - !pos < 6 + trailer then begin
      add
        (Integrity.diag ~offset:!pos ~section:"envelope" ~fatal:false
           (Printf.sprintf "%d bytes of trailing garbage (truncated section header)"
              (blen - !pos)));
      stop := true
    end
    else begin
      let tag = Bytes.get_uint16_le body !pos in
      let name = section_name tag in
      let slen =
        Int32.to_int (Bytes.get_int32_le body (!pos + 2)) land 0xFFFFFFFF
      in
      if slen > blen - !pos - 6 - trailer then begin
        add
          (Integrity.diag ~offset:!pos ~section:name ~fatal:(fatal_tag tag)
             (Printf.sprintf
                "section claims %d bytes but only %d remain (length-field lie)"
                slen
                (blen - !pos - 6 - trailer)));
        stop := true
      end
      else begin
        incr total;
        let payload_pos = !pos + 6 in
        let crc_ok =
          (not has_crc)
          ||
          let stored = Bytes.get_int32_le body (payload_pos + slen) in
          Int32.equal stored (Wire.crc32_sub body ~pos:payload_pos ~len:slen)
        in
        if not crc_ok then
          add
            (Integrity.diag ~offset:!pos ~section:name ~fatal:(fatal_tag tag)
               "section CRC mismatch, content discarded")
        else if singleton_present p tag then
          add
            (Integrity.diag ~offset:!pos ~section:name ~fatal:false
               "duplicate section ignored (first occurrence wins)")
        else begin
          let payload = Bytes.sub body payload_pos slen in
          let r = Reader.create ~section:tag payload in
          match
            apply_section ~rstring:Reader.string ~tag r p;
            if Reader.remaining r > 0 then
              Reader.fail r
                (Printf.sprintf "%d bytes unconsumed" (Reader.remaining r))
          with
          | () -> incr ok
          | exception Reader.Truncated ->
            add
              (Integrity.diag ~offset:!pos ~section:name ~fatal:(fatal_tag tag)
                 "section payload truncated")
          | exception Reader.Bad_format e ->
            add
              (Integrity.diag ~offset:!pos ~section:name ~fatal:(fatal_tag tag)
                 (Reader.format_error_to_string e))
          | exception Invalid_argument msg ->
            add
              (Integrity.diag ~offset:!pos ~section:name ~fatal:(fatal_tag tag)
                 msg)
        end;
        pos := payload_pos + slen + trailer
      end
    end
  done;
  let scan_diags = List.rev !scan_diags in
  (* Salvage rung: substitute power-on defaults for damaged or missing
     non-critical sections. *)
  let scan_diags =
    if p.p_pit = None then begin
      p.p_pit <- Some Integrity.default_pit;
      scan_diags
      @ [ Integrity.diag ~section:"pit" ~fatal:false
            "PIT section unusable; substituted power-on defaults" ]
    end
    else scan_diags
  in
  let scan_diags =
    if p.p_ioapic = None then begin
      p.p_ioapic <- Some (Integrity.default_ioapic ~pins:24);
      scan_diags
      @ [ Integrity.diag ~section:"ioapic" ~fatal:false
            "IOAPIC section unusable; substituted all-masked pins" ]
    end
    else scan_diags
  in
  let scan_diags =
    if p.p_vcpus = [] then
      scan_diags
      @ [ Integrity.diag ~section:"vcpu" ~fatal:true "no usable vCPU section" ]
    else scan_diags
  in
  match assemble p with
  | None -> (
    match List.find_opt (fun d -> d.Integrity.diag_fatal) scan_diags with
    | Some d ->
      { Integrity.verdict = Rejected d; state = None;
        sections_total = !total; sections_ok = !ok }
    | None ->
      Integrity.rejected ~section:"envelope" ~sections_total:!total
        ~sections_ok:!ok "mandatory section missing")
  | Some state ->
    let semantic_diags = Integrity.validate ?frame_ok state in
    Integrity.verdict_of ~outer_ok ~scan_diags ~semantic_diags ~state
      ~sections_total:!total ~sections_ok:!ok

let decode_verified ?frame_ok blob =
  let len = Bytes.length blob in
  let reject ?offset ~section reason =
    Integrity.rejected ?offset ~section ~sections_total:0 ~sections_ok:0 reason
  in
  try
    if len < 10 then reject ~section:"envelope" "blob too short to be a UISR"
    else begin
      let outer_ok, body =
        match Wire.check_crc blob with
        | Ok body -> (true, body)
        | Error _ -> (false, Bytes.sub blob 0 (len - 4))
      in
      if Bytes.length body < 6 then
        reject ~section:"envelope" "blob too short to be a UISR"
      else if
        not
          (Char.equal (Bytes.get body 0) magic.[0]
          && Char.equal (Bytes.get body 1) magic.[1]
          && Char.equal (Bytes.get body 2) magic.[2]
          && Char.equal (Bytes.get body 3) magic.[3])
      then reject ~offset:0 ~section:"envelope" "bad magic"
      else begin
        let version = Bytes.get_uint16_le body 4 in
        if version = legacy_format_version then begin
          (* v1 has no per-section checksums: the envelope CRC is all
             there is, so damage cannot be localized or salvaged. *)
          if not outer_ok then
            reject ~section:"envelope"
              "v1 blob with envelope CRC mismatch (no per-section checksums \
               to salvage from)"
          else
            match decode blob with
            | Error e ->
              reject ~section:"envelope" (Format.asprintf "%a" pp_error e)
            | Ok state ->
              let sections = 5 + List.length state.Vm_state.vcpus in
              let semantic_diags = Integrity.validate ?frame_ok state in
              Integrity.verdict_of ~outer_ok:true ~scan_diags:[]
                ~semantic_diags ~state ~sections_total:sections
                ~sections_ok:sections
        end
        else if version = format_version then begin
          if Bytes.length body < 7 then
            reject ~section:"envelope" "v2 blob truncated before flags"
          else decode_verified_v2 ?frame_ok ~outer_ok body
        end
        else
          reject ~offset:4 ~section:"envelope"
            (Printf.sprintf "unsupported version %d" version)
      end
    end
  with e ->
    (* decode_verified is total by contract; this is the backstop. *)
    reject ~section:"envelope"
      (Printf.sprintf "decoder exception: %s" (Printexc.to_string e))

(* --- deterministic corruption helpers --- *)

let corrupt blob =
  if Bytes.length blob = 0 then invalid_arg "Codec.corrupt: empty blob";
  let b = Bytes.copy blob in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  b

let corrupt_section ~tag blob =
  let b = Bytes.copy blob in
  let blen = Bytes.length b - 4 (* outer CRC *) in
  if blen < 7 then invalid_arg "Codec.corrupt_section: blob too short";
  if Bytes.get_uint16_le b 4 <> format_version then
    invalid_arg "Codec.corrupt_section: not a v2 blob";
  let trailer =
    if Bytes.get_uint8 b 6 land flag_section_crcs <> 0 then 4 else 0
  in
  let rec find pos =
    if pos + 6 > blen then
      invalid_arg
        (Printf.sprintf "Codec.corrupt_section: no section 0x%04x" tag)
    else begin
      let t = Bytes.get_uint16_le b pos in
      let slen = Int32.to_int (Bytes.get_int32_le b (pos + 2)) land 0xFFFFFFFF in
      if t = tag then begin
        if slen = 0 then
          invalid_arg "Codec.corrupt_section: empty section payload";
        let i = pos + 6 + (slen / 2) in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF))
      end
      else find (pos + 6 + slen + trailer)
    end
  in
  find 7;
  b

let size_bytes t = Bytes.length (encode t)

let platform_size_bytes t =
  let without_memmap = { t with Vm_state.memmap = [] } in
  (* Subtract the empty memmap section's framing too. *)
  Bytes.length (encode without_memmap)
