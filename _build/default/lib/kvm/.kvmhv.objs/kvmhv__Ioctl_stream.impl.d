lib/kvm/ioctl_stream.ml: Bytes Char Format Int List Reader Uisr Vmstate Writer
