type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep 62 bits so the value is a non-negative OCaml int. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1), then into [0, bound). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let jitter t pct =
  if pct < 0.0 then invalid_arg "Rng.jitter: negative";
  1.0 -. pct +. float t (2.0 *. pct)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
