lib/pram/entry.ml: Format Hw Int Int64 List Uisr
