(** Xen's native HVM save-record stream.

    This is the format xc_domain_hvm_getcontext produces: a header
    record followed by typed, length-prefixed records (CPU per vCPU,
    LAPIC, LAPIC_REGS, MTRR, XSAVE per vCPU; IOAPIC and PIT per domain)
    and an END marker.  It differs from both the UISR codec and KVM's
    ioctl stream in tags, record granularity and field layout — the
    heterogeneity HyperTP translates across. *)

type error =
  | Bad_header
  | Truncated
  | Unknown_typecode of int
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

(* Xen public/arch-x86/hvm/save.h typecodes. *)
val typecode_header : int (* 1 *)
val typecode_cpu : int (* 2 *)
val typecode_ioapic : int (* 4 *)
val typecode_lapic : int (* 5 *)
val typecode_lapic_regs : int (* 6 *)
val typecode_pit : int (* 10 *)
val typecode_mtrr : int (* 14 *)
val typecode_xsave : int (* 16 *)
val typecode_end : int (* 0 *)

type platform = {
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t;
  pit : Vmstate.Pit.t;
}

val encode : platform -> bytes
val decode : bytes -> (platform, error) result

val record_count : platform -> int
(** Number of records in the stream (header + per-vCPU + per-domain +
    END). *)
