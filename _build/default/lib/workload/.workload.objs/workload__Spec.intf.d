lib/workload/spec.mli: Sched Sim Spec_data
