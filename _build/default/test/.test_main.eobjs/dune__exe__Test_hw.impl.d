test/test_hw.ml: Alcotest Float Gen Hashtbl Hw List QCheck QCheck_alcotest Sim
