(** Network interface and link model.

    Transfers over a link share its bandwidth; the paper's migration
    experiments run over a dedicated 1 Gbps Ethernet pair (machine M1)
    and the cluster over 10 Gbps (section 5.1). *)

type t

val create :
  bandwidth_gbps:float -> ?latency:Sim.Time.t -> ?efficiency:float ->
  ?init_time:Sim.Time.t -> unit -> t
(** [efficiency] (default 0.95) models protocol overhead: the usable
    fraction of raw bandwidth.  [init_time] is the time for the card to
    come back up after a host reboot (the "Network" phase of Fig. 6). *)

val bandwidth_gbps : t -> float
val init_time : t -> Sim.Time.t
val latency : t -> Sim.Time.t

val throughput_bytes_per_sec : t -> streams:int -> float
(** Per-stream goodput when [streams] transfers share the link. *)

val transfer_time : t -> streams:int -> Units.bytes_ -> Sim.Time.t
(** Time to push [bytes] down one of [streams] concurrent streams,
    including one propagation latency. *)

val pp : Format.formatter -> t -> unit
