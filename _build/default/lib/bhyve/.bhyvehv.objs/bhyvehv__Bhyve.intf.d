lib/bhyve/bhyve.mli: Hv Ule
