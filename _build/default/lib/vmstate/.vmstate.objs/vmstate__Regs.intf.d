lib/vmstate/regs.mli: Format Sim
