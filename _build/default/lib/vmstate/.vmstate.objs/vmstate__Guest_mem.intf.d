lib/vmstate/guest_mem.mli: Hw Sim
