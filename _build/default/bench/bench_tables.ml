(* Regeneration of the paper's tables: Table 1 (vulnerability study),
   Table 4 (migration downtime/time), Table 5 (SPECrate), Table 6
   (Darknet), plus the section 4.4 TCB accounting. *)

open Bench_util

(* --- Table 1 --- *)

let table1 () =
  header "Table 1: critical and medium vulnerabilities per year (Xen/KVM)";
  Format.printf "year   xen crit/med   kvm crit/med   common crit/med@.";
  let rows = Cve.Nvd.table1 () in
  List.iter
    (fun (r : Cve.Nvd.table1_row) ->
      Format.printf "%4d     %3d / %3d      %3d / %3d       %3d / %3d@."
        r.row_year r.xen_crit r.xen_med r.kvm_crit r.kvm_med r.common_crit
        r.common_med)
    rows;
  let t = Cve.Nvd.total rows in
  Format.printf "total    %3d / %3d      %3d / %3d       %3d / %3d@."
    t.xen_crit t.xen_med t.kvm_crit t.kvm_med t.common_crit t.common_med;
  note "paper totals: 55/136(sic, column sums to 171), 13/56, 1/2@.";
  subheader "section 2.1 category breakdown (critical)";
  let show ~xen label =
    Format.printf "%s:@." label;
    List.iter
      (fun (c, n) ->
        Format.printf "  %-22s %d@."
          (Format.asprintf "%a" Cve.Nvd.pp_category c)
          n)
      (Cve.Nvd.category_breakdown ~xen Cve.Cvss.Critical)
  in
  show ~xen:true "Xen";
  show ~xen:false "KVM";
  subheader "section 2.2 vulnerability windows";
  Format.printf "KVM: %a@." Cve.Window.pp_stats (Cve.Window.kvm_stats ());
  note "paper: 24 windows, mean 71 days, 60%% over 60 days, max 180, min 8@."

(* --- Table 2 / Table 3 --- *)

let table2_3 () =
  header "Table 2: Xen <-> UISR <-> KVM state mapping (as implemented)";
  Format.printf "%-14s %-12s %-22s %-18s@." "Xen HVM record" "(typecode)"
    "UISR section" "KVM payload";
  let rows =
    [
      ("CPU", Xenhv.Hvm_records.typecode_cpu, "VCPU.regs/sregs/fpu",
       "KVM_GET_(S)REGS/FPU/MSRS");
      ("LAPIC", Xenhv.Hvm_records.typecode_lapic, "VCPU.lapic (control)",
       "KVM_GET_LAPIC");
      ("LAPIC_REGS", Xenhv.Hvm_records.typecode_lapic_regs,
       "VCPU.lapic (registers)", "KVM_GET_LAPIC");
      ("MTRR", Xenhv.Hvm_records.typecode_mtrr, "VCPU.mtrr",
       "KVM_GET_MSRS (0x200..0x2FF)");
      ("XSAVE", Xenhv.Hvm_records.typecode_xsave, "VCPU.xsave",
       "KVM_GET_XCRS + KVM_GET_XSAVE");
      ("IOAPIC", Xenhv.Hvm_records.typecode_ioapic, "IOAPIC (48 pins)",
       "KVM_GET_IRQCHIP (24 pins)");
      ("PIT", Xenhv.Hvm_records.typecode_pit, "PIT", "KVM_GET_PIT2");
    ]
  in
  List.iter
    (fun (xen, code, uisr, kvm) ->
      Format.printf "%-14s (%d)%9s %-22s %-18s@." xen code "" uisr kvm)
    rows;
  note "bhyve maps the same UISR sections onto its flat vmm snapshot (32 pins)@.";
  header "Table 3: experimental environment";
  List.iter
    (fun m -> Format.printf "  %a@." Hw.Machine.pp m)
    [ Hw.Machine.m1 (); Hw.Machine.m2 (); Hw.Machine.g5k_node () ];
  Format.printf "  benchmarks: SPECrate 2017 (23 apps), MySQL+sysbench, Redis,@.";
  Format.printf "  Darknet/MNIST, video streaming (cluster mix)@."

(* --- Table 4 --- *)

let migrate_single ~rng ~seed ~dst_kind ~vcpus ~gib =
  let src = fresh_xen_host ~seed [ vm_config ~vcpus ~gib () ] in
  let dst = fresh_dst ~seed:(Int64.add seed 1L) dst_kind in
  let r = Hypertp.Api.transplant_migration ~rng ~src ~dst () in
  List.hd r.Hypertp.Migrate.per_vm

let table4 () =
  header "Table 4: MigrationTP vs Xen->Xen live migration (1 vCPU, 1 GiB)";
  let measure kind =
    repeat (fun rng ->
        let seed = seed_of_rng rng in
        let v = migrate_single ~rng ~seed ~dst_kind:kind ~vcpus:1 ~gib:1 in
        (v.Hypertp.Migrate.downtime, v.Hypertp.Migrate.total_time))
  in
  let xen = measure Hv.Kind.Xen and tp = measure Hv.Kind.Kvm in
  let down l = Sim.Stats.summarize (List.map (fun (d, _) -> Sim.Time.to_ms_f d) l) in
  let total l = summarize_seconds (List.map snd l) in
  Format.printf "                     Xen->Xen        MigrationTP (Xen->KVM)@.";
  Format.printf "downtime        %10.2f ms        %10.2f ms@."
    (down xen).Sim.Stats.mean (down tp).Sim.Stats.mean;
  Format.printf "migration time  %10.3f s         %10.3f s@."
    (total xen).Sim.Stats.mean (total tp).Sim.Stats.mean;
  note "paper: downtime 133.59 ms vs 4.96 ms; time 9.564 s vs 9.63 s@."

(* --- Table 5 --- *)

let table5 () =
  header "Table 5: SPECrate 2017 under InPlaceTP and MigrationTP (2 vCPU, 8 GiB, M1)";
  (* Downtime for the in-place gap on M1 with an 8 GiB VM, and the
     pre-copy window for the migration runs, measured once from the
     actual machinery. *)
  let seed = 17L in
  let host = fresh_xen_host ~seed [ vm_config ~vcpus:2 ~gib:8 () ] in
  let ip = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let gap = Sim.Time.to_sec_f (Hypertp.Phases.downtime ip.phases) in
  let src = fresh_xen_host ~seed:29L [ vm_config ~vcpus:2 ~gib:8 ~workload:(Vmstate.Vm.Wl_spec "gcc") () ] in
  let dst = fresh_dst ~seed:31L Hv.Kind.Kvm in
  let mig = Hypertp.Api.transplant_migration ~src ~dst () in
  let mig_vm = List.hd mig.Hypertp.Migrate.per_vm in
  let precopy = Sim.Time.to_sec_f mig_vm.Hypertp.Migrate.precopy_time in
  let mig_down = Sim.Time.to_sec_f mig_vm.Hypertp.Migrate.downtime in
  let rng = Sim.Rng.create 41L in
  let sched_ip at =
    Workload.Sched.make ~initial:Workload.Profile.P_xen
      [ (at, Workload.Sched.Stopped);
        (at +. gap, Workload.Sched.Running Workload.Profile.P_kvm) ]
  in
  let sched_mig at =
    Workload.Sched.make ~initial:Workload.Profile.P_xen
      [ (at, Workload.Sched.Degraded (Workload.Profile.P_xen, 1.03));
        (at +. precopy, Workload.Sched.Stopped);
        (at +. precopy +. mig_down, Workload.Sched.Running Workload.Profile.P_kvm) ]
  in
  Format.printf
    "%-12s %9s %9s | %9s %7s | %9s %7s@." "benchmark" "KVM(s)" "Xen(s)"
    "InPlace(s)" "deg%" "MigrTP(s)" "deg%";
  let max_ip = ref 0.0 and max_mig = ref 0.0 in
  List.iter
    (fun app ->
      let mid = Workload.Spec_data.base_time app Workload.Profile.P_xen /. 2.0 in
      let run_ip =
        Workload.Spec.run_app ~rng ~sched:(sched_ip mid) ~residual_overhead_s:2.0 app
      in
      let run_mig =
        Workload.Spec.run_app ~rng ~sched:(sched_mig (mid -. (precopy /. 2.0)))
          ~residual_overhead_s:2.0 app
      in
      max_ip := Float.max !max_ip run_ip.Workload.Spec.degradation_pct;
      max_mig := Float.max !max_mig run_mig.Workload.Spec.degradation_pct;
      Format.printf "%-12s %9.2f %9.2f | %9.2f %7.2f | %9.2f %7.2f@."
        app.Workload.Spec_data.name app.Workload.Spec_data.kvm_time_s
        app.Workload.Spec_data.xen_time_s run_ip.Workload.Spec.time_s
        run_ip.Workload.Spec.degradation_pct run_mig.Workload.Spec.time_s
        run_mig.Workload.Spec.degradation_pct)
    Workload.Spec_data.all;
  Format.printf "max degradation: InPlaceTP %.2f%%, MigrationTP %.2f%%@." !max_ip !max_mig;
  note "paper: max 4.19%% (InPlaceTP, deepsjeng) and 4.81%% (MigrationTP, fotonik3d)@."

(* --- Table 6 --- *)

let table6 () =
  header "Table 6: Darknet MNIST training iterations (100 iterations)";
  (* Measure the InPlaceTP gap for the same 2 vCPU / 8 GiB VM. *)
  let host = fresh_xen_host ~seed:53L [ vm_config ~vcpus:2 ~gib:8 () ] in
  let ip = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let gap = Sim.Time.to_sec_f (Hypertp.Phases.downtime ip.phases) in
  let mk_sched = function
    | `Default -> Workload.Sched.always Workload.Profile.P_xen
    | `Xen_migration ->
      (* Table 6: Xen->Xen migration stretches iterations to ~2.67 s. *)
      Workload.Sched.make ~initial:Workload.Profile.P_xen
        [ (100.0, Workload.Sched.Degraded (Workload.Profile.P_xen, 1.31));
          (176.0, Workload.Sched.Running Workload.Profile.P_xen) ]
    | `Inplace ->
      Workload.Sched.make ~initial:Workload.Profile.P_xen
        [ (100.0, Workload.Sched.Stopped);
          (100.0 +. gap, Workload.Sched.Running Workload.Profile.P_kvm) ]
    | `Migration_tp ->
      Workload.Sched.make ~initial:Workload.Profile.P_xen
        [ (100.0, Workload.Sched.Degraded (Workload.Profile.P_xen, 1.098));
          (176.0, Workload.Sched.Running Workload.Profile.P_kvm) ]
  in
  let run tag =
    let r =
      Workload.Darknet.train ~rng:(Sim.Rng.create 67L) ~sched:(mk_sched tag)
        ~iterations:100
    in
    r.Workload.Darknet.longest_s
  in
  Format.printf "Default       Xen migration   InPlaceTP     MigrationTP@.";
  Format.printf "%.3f s       %.3f s         %.3f s       %.3f s@."
    (run `Default) (run `Xen_migration) (run `Inplace) (run `Migration_tp);
  note "paper: 2.044 / 2.672 / 4.970 / 2.244 s@."

(* --- TCB --- *)

let tcb () =
  header "Section 4.4: trusted computing base accounting";
  Format.printf "%a@." Hypertp.Tcb.pp_table ()
