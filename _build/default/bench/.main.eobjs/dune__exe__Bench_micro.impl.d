bench/bench_micro.ml: Analyze Array Bechamel Benchmark Cve Format Hashtbl Hw Instance List Measure Migration Pram Sim Staged Test Time Toolkit Uisr Vmstate Xenhv
