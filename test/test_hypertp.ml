(* Tests for the HyperTP framework: InPlaceTP, MigrationTP, memory
   separation, options/ablations, the CVE-driven API, TCB accounting. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small_vm ?(name = "vm0") ?(vcpus = 1) ?(mib = 256)
    ?(workload = Vmstate.Vm.Wl_idle) ?(inplace_compatible = true) () =
  Vmstate.Vm.config ~name ~vcpus ~ram:(Hw.Units.mib mib) ~workload
    ~inplace_compatible ()

let xen_host ?(machine = Hw.Machine.m1 ()) ?(vms = [ small_vm () ]) () =
  Hypertp.Api.provision ~name:"h" ~machine ~hv:Hv.Kind.Xen vms

let kvm_host ?(machine = Hw.Machine.m1 ()) ?(vms = []) ?(name = "dst") () =
  Hypertp.Api.provision ~name ~machine ~hv:Hv.Kind.Kvm vms

(* --- InPlaceTP --- *)

let test_inplace_all_checks_pass () =
  let host = xen_host ~vms:[ small_vm (); small_vm ~name:"vm1" ~vcpus:2 () ] () in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  checkb "all checks" true (Hypertp.Inplace.all_ok r.checks);
  checki "both vms" 2 r.vm_count;
  checkb "host now kvm" true
    (Hv.Host.hypervisor_kind host = Some Hv.Kind.Kvm);
  checkb "vms running" true
    (List.for_all Vmstate.Vm.is_running (Hv.Host.vms host))

let test_inplace_reverse_direction () =
  let host = kvm_host ~name:"h" ~vms:[ small_vm () ] () in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Xen () in
  checkb "all checks" true (Hypertp.Inplace.all_ok r.checks);
  checkb "host now xen" true (Hv.Host.hypervisor_kind host = Some Hv.Kind.Xen);
  (* KVM->Xen pays the type-I boot: much longer downtime (Fig. 10). *)
  checkb "downtime dominated by xen boot" true
    (Sim.Time.to_sec_f (Hypertp.Phases.downtime r.phases) > 6.0)

let test_inplace_same_target_rejected () =
  let host = xen_host () in
  Alcotest.check_raises "same hv"
    (Invalid_argument "Inplace.run: target equals the running hypervisor")
    (fun () ->
      ignore (Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Xen ()))

let test_inplace_no_vms_rejected () =
  let host = xen_host ~vms:[] () in
  Alcotest.check_raises "no vms"
    (Invalid_argument "Inplace.run: no VMs to transplant") (fun () ->
      ignore (Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm ()))

let test_inplace_phase_calibration_m1 () =
  (* The paper's basic scenario: 1 vCPU / 1 GiB on M1 -> ~1.7 s downtime
     (Fig. 6). *)
  let host = xen_host ~vms:[ small_vm ~mib:1024 () ] () in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let d = Sim.Time.to_sec_f (Hypertp.Phases.downtime r.phases) in
  checkb "downtime ~1.7s" true (d > 1.4 && d < 2.1);
  let reboot = Sim.Time.to_sec_f r.phases.Hypertp.Phases.reboot in
  checkb "reboot dominates (~70%)" true (reboot /. d > 0.6)

let test_inplace_phase_calibration_m2 () =
  let host =
    xen_host ~machine:(Hw.Machine.m2 ()) ~vms:[ small_vm ~mib:1024 () ] ()
  in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let d = Sim.Time.to_sec_f (Hypertp.Phases.downtime r.phases) in
  checkb "downtime ~3.0s on M2" true (d > 2.5 && d < 3.6)

let test_inplace_fixups_recorded () =
  let host = xen_host () in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let fixes = List.assoc "vm0" r.fixups in
  checkb "ioapic truncation" true
    (List.exists
       (function Uisr.Fixup.Ioapic_pins_dropped _ -> true | _ -> false)
       fixes);
  checkb "container change" true
    (List.exists
       (function Uisr.Fixup.Lapic_container_changed -> true | _ -> false)
       fixes)

let test_inplace_guest_memory_physically_in_place () =
  let host = xen_host () in
  let vm_before = Option.get (Hv.Host.find_vm host "vm0") in
  let mfn0 = Vmstate.Guest_mem.mfn_of_page vm_before.Vmstate.Vm.mem 0 in
  ignore (Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm ());
  let vm_after = Option.get (Hv.Host.find_vm host "vm0") in
  checkb "same guest_mem object" true
    (vm_after.Vmstate.Vm.mem == vm_before.Vmstate.Vm.mem);
  checkb "same first frame" true
    (Hw.Frame.Mfn.equal mfn0 (Vmstate.Guest_mem.mfn_of_page vm_after.Vmstate.Vm.mem 0))

let test_inplace_tcp_connections_survive () =
  let host = xen_host () in
  let conns_before =
    Vmstate.Vm.total_tcp_connections (Option.get (Hv.Host.find_vm host "vm0"))
  in
  ignore (Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm ());
  let conns_after =
    Vmstate.Vm.total_tcp_connections (Option.get (Hv.Host.find_vm host "vm0"))
  in
  checki "unplug/rescan keeps TCP (section 4.2.3)" conns_before conns_after

let test_inplace_passthrough_devices () =
  (* Section 4.2.3: pass-through devices are paused (driver state lives
     in guest memory and rides along); they are NOT unplugged/rescanned
     and end up running again. *)
  let vms =
    [ Vmstate.Vm.config ~name:"pt" ~ram:(Hw.Units.mib 256)
        ~device_kinds:
          [ Vmstate.Device.Net_passthrough; Vmstate.Device.Blk_passthrough;
            Vmstate.Device.Serial_console ]
        () ]
  in
  let host = xen_host ~vms () in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  checkb "ok" true (Hypertp.Inplace.all_ok r.checks);
  checkb "no rescan fixups for pass-through" true
    (List.for_all
       (fun (_, fixes) ->
         not
           (List.exists
              (function Uisr.Fixup.Device_rescanned _ -> true | _ -> false)
              fixes))
       r.fixups);
  let vm = Option.get (Hv.Host.find_vm host "pt") in
  Array.iter
    (fun (d : Vmstate.Device.t) ->
      checkb "device running after resume" true
        (d.run_state = Vmstate.Device.Dev_running))
    vm.Vmstate.Vm.devices

let test_inplace_preserves_ring_state () =
  (* The emulated disk's virtqueue indices are emulation state that must
     land unchanged on the target (section 4.2.3). *)
  let host = xen_host () in
  let vm = Option.get (Hv.Host.find_vm host "vm0") in
  let blk_queue_indices v =
    Array.to_list v.Vmstate.Vm.devices
    |> List.filter (fun (d : Vmstate.Device.t) -> d.kind = Vmstate.Device.Blk_emulated)
    |> List.concat_map (fun (d : Vmstate.Device.t) ->
           Array.to_list
             (Array.map
                (fun q ->
                  (Vmstate.Virtqueue.avail_idx q, Vmstate.Virtqueue.used_idx q))
                d.queues))
  in
  (* Pause first so the quiesced indices are the ground truth. *)
  Hv.Host.pause_vm host "vm0";
  Hv.Host.resume_vm host "vm0";
  let before = blk_queue_indices vm in
  ignore (Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm ());
  let after = blk_queue_indices (Option.get (Hv.Host.find_vm host "vm0")) in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "ring indices identical" before after

let test_inplace_roundtrip_back () =
  (* Xen -> KVM -> Xen: the full vulnerability-window story. *)
  let host = xen_host () in
  let r1 = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let r2 = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Xen () in
  checkb "first leg ok" true (Hypertp.Inplace.all_ok r1.checks);
  checkb "second leg ok" true (Hypertp.Inplace.all_ok r2.checks);
  checkb "back on xen" true (Hv.Host.hypervisor_kind host = Some Hv.Kind.Xen)

let test_inplace_scales_with_vms () =
  let vms n = List.init n (fun i -> small_vm ~name:(Printf.sprintf "v%d" i) ~mib:128 ()) in
  let run n =
    let host = xen_host ~vms:(vms n) () in
    let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
    checkb "ok" true (Hypertp.Inplace.all_ok r.checks);
    Sim.Time.to_sec_f (Hypertp.Phases.downtime r.phases)
  in
  let d1 = run 1 and d8 = run 8 in
  checkb "more vms, more downtime" true (d8 > d1);
  checkb "but sublinear (parallelism + shared reboot)" true (d8 < 4.0 *. d1)

(* The big integration property: InPlaceTP preserves everything it
   promises, for arbitrary VM shapes, fleet sizes and directions. *)
let prop_inplace_always_correct =
  let gen =
    QCheck.Gen.(
      let direction = oneofl Hv.Kind.[ (Xen, Kvm); (Kvm, Xen); (Xen, Bhyve);
                                       (Bhyve, Kvm); (Kvm, Bhyve); (Bhyve, Xen) ] in
      quad direction (int_range 1 4) (int_range 1 3) (int_range 1 4))
  in
  QCheck.Test.make ~name:"InPlaceTP all-checks for random configs" ~count:15
    (QCheck.make gen)
    (fun ((src, dst), nvms, vcpus, mib128) ->
      let vms =
        List.init nvms (fun i ->
            Vmstate.Vm.config
              ~name:(Printf.sprintf "q%d" i)
              ~vcpus
              ~ram:(Hw.Units.mib (128 * mib128))
              ())
      in
      let host =
        Hypertp.Api.provision
          ~seed:(Int64.of_int (Hashtbl.hash (nvms, vcpus, mib128)))
          ~name:"prop" ~machine:(Hw.Machine.m1 ()) ~hv:src vms
      in
      let r = Hypertp.Api.transplant_inplace ~host ~target:dst () in
      Hypertp.Inplace.all_ok r.checks
      && Hv.Host.hypervisor_kind host = Some dst
      && Hv.Host.vm_count host = nvms
      && List.for_all Vmstate.Vm.is_running (Hv.Host.vms host)
      && Sim.Time.to_sec_f (Hypertp.Phases.downtime r.phases) < 30.0
      (* the Azure maintenance ceiling the paper adopts *))

(* --- Options / ablations --- *)

let ablation_downtime options =
  let host = xen_host ~vms:[ small_vm ~mib:1024 () ] () in
  let r = Hypertp.Inplace.run ~options ~host ~target:(module Kvmhv.Kvm) () in
  (r, Sim.Time.to_sec_f (Hypertp.Phases.downtime r.phases))

let test_ablation_prepare_before_pause () =
  let _, with_prep = ablation_downtime Hypertp.Options.default in
  let r_no, without =
    ablation_downtime
      { Hypertp.Options.default with prepare_before_pause = false }
  in
  checkb "preparation shrinks downtime" true (with_prep < without);
  checkb "pram phase moved into downtime" true
    (Sim.Time.to_sec_f r_no.phases.Hypertp.Phases.pram = 0.0)

let test_ablation_huge_pages () =
  let r_huge, d_huge = ablation_downtime Hypertp.Options.default in
  let r_4k, d_4k =
    ablation_downtime { Hypertp.Options.default with huge_page_pram = false }
  in
  checkb "4K PRAM much bigger" true
    (r_4k.pram_accounting.Pram.Layout.total_bytes
    > 50 * r_huge.pram_accounting.Pram.Layout.total_bytes);
  checkb "4K parse slows the reboot" true (d_4k > d_huge)

let test_ablation_early_restoration () =
  let _, d_early = ablation_downtime Hypertp.Options.default in
  let _, d_late =
    ablation_downtime { Hypertp.Options.default with early_restoration = false }
  in
  checkb "early restoration helps" true (d_early < d_late)

let test_ablation_parallel () =
  (* Parallelism matters with many VMs. *)
  let vms = List.init 6 (fun i -> small_vm ~name:(Printf.sprintf "v%d" i) ~mib:256 ()) in
  let run options =
    let host = xen_host ~vms () in
    let r = Hypertp.Inplace.run ~options ~host ~target:(module Kvmhv.Kvm) () in
    Sim.Time.to_sec_f (Hypertp.Phases.total r.phases)
  in
  let par = run Hypertp.Options.default in
  let seq = run { Hypertp.Options.default with parallel_translation = false } in
  checkb "parallel faster with 6 VMs" true (par < seq)

(* --- MigrationTP --- *)

let test_migration_tp_basic () =
  let src = xen_host ~vms:[ small_vm ~mib:512 () ] () in
  let dst = kvm_host () in
  let r = Hypertp.Api.transplant_migration ~src ~dst () in
  checkb "kind heterogeneous" true (r.kind = `Migration_tp);
  checkb "memory equal" true r.checks.Hypertp.Migrate.memory_equal;
  checkb "conns preserved" true r.checks.Hypertp.Migrate.connections_preserved;
  checkb "dst mgmt consistent" true r.checks.Hypertp.Migrate.management_consistent;
  checki "vm landed" 1 (Hv.Host.vm_count dst);
  checki "source emptied" 0 (Hv.Host.vm_count src)

let test_migration_downtime_asymmetry () =
  (* Table 4: MigrationTP's downtime is ~27x below Xen->Xen's. *)
  let mk_src () = xen_host ~vms:[ small_vm ~mib:1024 () ] () in
  let r_tp =
    Hypertp.Api.transplant_migration ~src:(mk_src ()) ~dst:(kvm_host ()) ()
  in
  let xen_dst =
    Hypertp.Api.provision ~name:"xdst" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen []
  in
  let r_xen =
    Hypertp.Api.transplant_migration ~src:(mk_src ()) ~dst:xen_dst ()
  in
  checkb "homogeneous detected" true (r_xen.kind = `Homogeneous);
  let d_tp = Sim.Time.to_ms_f (List.hd r_tp.per_vm).Hypertp.Migrate.downtime in
  let d_xen = Sim.Time.to_ms_f (List.hd r_xen.per_vm).Hypertp.Migrate.downtime in
  checkb "migrationtp ms-scale" true (d_tp < 30.0);
  checkb "xen ~130ms" true (d_xen > 80.0 && d_xen < 220.0);
  checkb "order-of-magnitude gap" true (d_xen /. d_tp > 5.0);
  (* Total migration time is roughly equal (Table 4: ~9.6 s). *)
  let t_tp = Sim.Time.to_sec_f r_tp.total_time in
  let t_xen = Sim.Time.to_sec_f r_xen.total_time in
  checkb "~9.6s total" true (t_tp > 8.0 && t_tp < 12.0);
  checkb "totals close" true (Float.abs (t_tp -. t_xen) < 1.5)

let test_migration_sequential_receive_variance () =
  (* Fig. 8: migrating several VMs at once, Xen's sequential receive
     spreads downtimes; kvmtool's parallel receive keeps them flat. *)
  let vms =
    List.init 4 (fun i -> small_vm ~name:(Printf.sprintf "v%d" i) ~mib:256 ())
  in
  let r_tp =
    Hypertp.Api.transplant_migration ~src:(xen_host ~vms ()) ~dst:(kvm_host ()) ()
  in
  let xen_dst =
    Hypertp.Api.provision ~name:"xd2" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen []
  in
  let r_xen =
    Hypertp.Api.transplant_migration ~src:(xen_host ~vms ()) ~dst:xen_dst ()
  in
  let downtimes r =
    List.map
      (fun (v : Hypertp.Migrate.vm_report) -> Sim.Time.to_ms_f v.downtime)
      r.Hypertp.Migrate.per_vm
  in
  let spread l = List.fold_left Float.max 0.0 l -. List.fold_left Float.min 1e9 l in
  checkb "xen spread >> tp spread" true
    (spread (downtimes r_xen) > 10.0 *. spread (downtimes r_tp));
  checkb "xen queue waits grow" true
    (List.exists
       (fun (v : Hypertp.Migrate.vm_report) ->
         Sim.Time.to_ms_f v.queue_wait > 50.0)
       r_xen.per_vm)

let test_migration_link_failure_safe () =
  (* DESIGN.md failure injection: a link drop mid-round must leave the
     source VM resident, running and consistent, and the destination
     clean. *)
  let src = xen_host ~vms:[ small_vm ~mib:512 ~workload:Vmstate.Vm.Wl_redis () ] () in
  let dst = kvm_host ~name:"dfail" () in
  let dst_used_before = Hw.Pmem.used_frames dst.Hv.Host.pmem in
  let src_vm = Option.get (Hv.Host.find_vm src "vm0") in
  let checksum = Vmstate.Guest_mem.checksum src_vm.Vmstate.Vm.mem in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Migration_link_drop; trigger = Fault.On_vm "vm0" } ]
  in
  let r = Hypertp.Migrate.run ~fault ~src ~dst () in
  let v = List.hd r.per_vm in
  checkb "aborted outcome" true
    (match v.Hypertp.Migrate.outcome with
    | Hypertp.Migrate.Aborted_link_failure 0 -> true
    | _ -> false);
  checki "all attempts burnt" 2 v.Hypertp.Migrate.retries;
  checkb "zero downtime" true
    (Sim.Time.equal v.Hypertp.Migrate.downtime Sim.Time.zero);
  checkb "source still resident" true (Hv.Host.find_vm src "vm0" <> None);
  checkb "source still running" true (Vmstate.Vm.is_running src_vm);
  checkb "source memory unperturbed" true
    (Int64.equal checksum (Vmstate.Guest_mem.checksum src_vm.Vmstate.Vm.mem));
  checki "nothing landed on destination" 0 (Hv.Host.vm_count dst);
  checki "destination memory released" dst_used_before
    (Hw.Pmem.used_frames dst.Hv.Host.pmem);
  checkb "source mgmt consistent" true (Hv.Host.management_consistent src)

let test_migration_partial_failure () =
  (* One VM's link dies; the other completes normally. *)
  let src =
    xen_host
      ~vms:[ small_vm ~name:"ok" (); small_vm ~name:"doomed" () ]
      ()
  in
  let dst = kvm_host ~name:"dpart" () in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Migration_link_drop;
          trigger = Fault.On_vm "doomed" } ]
  in
  let r = Hypertp.Migrate.run ~fault ~src ~dst () in
  checkb "ok completed" true
    (List.exists
       (fun (v : Hypertp.Migrate.vm_report) ->
         v.vm_name = "ok" && v.outcome = Hypertp.Migrate.Completed)
       r.per_vm);
  checkb "ok landed" true (Hv.Host.find_vm dst "ok" <> None);
  checkb "doomed stayed" true (Hv.Host.find_vm src "doomed" <> None);
  checkb "dst consistent" true r.checks.Hypertp.Migrate.management_consistent

let test_ioapic_harmonization () =
  (* Section 4.2.1 future work: cap guests' IOAPIC at the repertoire
     minimum (24 pins) so no transplant ever drops a live pin. *)
  let vms =
    [ Vmstate.Vm.config ~name:"h0" ~ram:(Hw.Units.mib 256)
        ~compat_ioapic_pins:24 () ]
  in
  let host = xen_host ~vms () in
  let vm = Option.get (Hv.Host.find_vm host "h0") in
  checki "capped at creation under xen" 24
    (Vmstate.Ioapic.pin_count vm.Vmstate.Vm.ioapic);
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  checkb "ok" true (Hypertp.Inplace.all_ok r.checks);
  checkb "no lossy fixups at all" true
    (List.for_all
       (fun (_, fixes) -> not (List.exists Uisr.Fixup.is_lossy fixes))
       r.fixups);
  checkb "no pin-drop fixup either" true
    (List.for_all
       (fun (_, fixes) ->
         not
           (List.exists
              (function Uisr.Fixup.Ioapic_pins_dropped _ -> true | _ -> false)
              fixes))
       r.fixups)

let test_unharmonized_drops_pins () =
  (* Control: without the cap, Xen->KVM records a pin-drop fixup. *)
  let host = xen_host () in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  checkb "pin drop present" true
    (List.exists
       (fun (_, fixes) ->
         List.exists
           (function Uisr.Fixup.Ioapic_pins_dropped _ -> true | _ -> false)
           fixes)
       r.fixups)

let test_migration_unknown_vm () =
  let src = xen_host () in
  let dst = kvm_host ~name:"d9" () in
  Alcotest.check_raises "unknown vm"
    (Invalid_argument "Migrate.run: unknown VM nope") (fun () ->
      ignore (Hypertp.Api.transplant_migration ~src ~dst ~vm_names:[ "nope" ] ()))

(* --- Memsep --- *)

let test_memsep_proportions () =
  let host = xen_host ~vms:[ small_vm ~mib:1024 () ] () in
  let r = Hypertp.Memsep.of_host host in
  checkb "guest dominates" true
    (r.guest_state_bytes > 10 * r.hv_state_bytes);
  checkb "vmi state tiny" true
    (Hypertp.Memsep.translated_fraction r < 0.01);
  checkb "all categories populated" true
    (r.vmi_state_bytes > 0 && r.management_state_bytes > 0
   && r.hv_state_bytes > 0)

(* --- API --- *)

let test_api_respond_applies () =
  let host = xen_host () in
  let r =
    Hypertp.Api.respond_to_cve ~host ~cve_id:"CVE-2016-6258" ~mode:`Apply ()
  in
  checkb "advised kvm" true (r.advice = Cve.Window.Transplant_to "kvm");
  checkb "applied" true (Hypertp.Api.applied_report r <> None);
  checkb "now kvm" true (Hv.Host.hypervisor_kind host = Some Hv.Kind.Kvm)

let test_api_respond_no_apply () =
  let host = xen_host () in
  let r =
    Hypertp.Api.respond_to_cve ~host ~cve_id:"CVE-2016-6258" ~mode:`Advise ()
  in
  checkb "advice only" true (r.outcome = `Advised Hv.Kind.Kvm);
  checkb "still xen" true (Hv.Host.hypervisor_kind host = Some Hv.Kind.Xen);
  (* The deprecated boolean spelling maps onto the same modes. *)
  let host' = xen_host () in
  let r' =
    Hypertp.Api.respond_to_cve_legacy ~host:host' ~cve_id:"CVE-2016-6258"
      ~apply:false ()
  in
  checkb "legacy advice matches" true (r'.outcome = r.outcome);
  checkb "legacy host untouched" true
    (Hv.Host.hypervisor_kind host' = Some Hv.Kind.Xen)

let test_api_respond_common_flaw () =
  (* VENOM hits both Xen and KVM; with the three-hypervisor repertoire
     the policy escapes to bhyve (with the two-member fleet it would be
     No_safe_alternative — covered in test_cve). *)
  let host = xen_host () in
  let r =
    Hypertp.Api.respond_to_cve ~host ~cve_id:"CVE-2015-3456" ~mode:`Apply ()
  in
  checkb "escape to bhyve" true (r.advice = Cve.Window.Transplant_to "bhyve");
  checkb "applied" true (Hypertp.Api.applied_report r <> None);
  checkb "now on bhyve" true
    (Hv.Host.hypervisor_kind host = Some Hv.Kind.Bhyve)

let test_api_unknown_cve () =
  let host = xen_host () in
  checkb "unknown CVE raises a structured error" true
    (try
       ignore
         (Hypertp.Api.respond_to_cve ~host ~cve_id:"CVE-1999-0001"
            ~mode:`Apply ());
       false
     with Hypertp.Error.Error e ->
       e.Hypertp.Error.site = "Api.respond_to_cve"
       && e.Hypertp.Error.reason = "unknown CVE CVE-1999-0001"
       && e.Hypertp.Error.hint <> None)

(* --- Snapshot --- *)

let test_snapshot_roundtrip_bytes () =
  let host = xen_host () in
  let snap = Hypertp.Snapshot.capture host "vm0" in
  let blob = Hypertp.Snapshot.to_bytes snap in
  (match Hypertp.Snapshot.of_bytes blob with
  | Ok snap' ->
    Alcotest.check Alcotest.string "name" "vm0" (Hypertp.Snapshot.vm_name snap');
    checki "memory size" (Hypertp.Snapshot.memory_bytes snap)
      (Hypertp.Snapshot.memory_bytes snap')
  | Error e -> Alcotest.fail e);
  (* Corruption is detected. *)
  Bytes.set blob 20 (Char.chr (Char.code (Bytes.get blob 20) lxor 0xFF));
  checkb "corruption rejected" true
    (Result.is_error (Hypertp.Snapshot.of_bytes blob))

let test_snapshot_capture_keeps_vm_running () =
  let host = xen_host () in
  let _ = Hypertp.Snapshot.capture host "vm0" in
  checkb "still running after capture" true
    (Vmstate.Vm.is_running (Option.get (Hv.Host.find_vm host "vm0")))

let test_snapshot_cross_hypervisor_restore () =
  (* Suspend on Xen, resume on KVM: the Nova suspend/resume pair that
     HyperTP turns cross-hypervisor. *)
  let src = xen_host () in
  let vm = Option.get (Hv.Host.find_vm src "vm0") in
  Vmstate.Guest_mem.write_page vm.Vmstate.Vm.mem 0 0x5AFE5AFEL;
  let checksum = Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem in
  let snap = Hypertp.Snapshot.capture src "vm0" in
  let dst = kvm_host ~name:"snap-dst" () in
  let fixups = Hypertp.Snapshot.restore snap dst in
  let restored = Option.get (Hv.Host.find_vm dst "vm0") in
  checkb "running on kvm" true (Vmstate.Vm.is_running restored);
  checkb "memory image replayed" true
    (Int64.equal checksum (Vmstate.Guest_mem.checksum restored.Vmstate.Vm.mem));
  Alcotest.check Alcotest.int64 "specific page content" 0x5AFE5AFEL
    (Vmstate.Guest_mem.read_page restored.Vmstate.Vm.mem 0);
  checkb "cross-hypervisor fixups recorded" true
    (List.exists
       (function Uisr.Fixup.Ioapic_pins_dropped _ -> true | _ -> false)
       fixups);
  checkb "dst mgmt consistent" true (Hv.Host.management_consistent dst)

(* --- Tcb --- *)

let test_tcb_accounting () =
  Alcotest.check (Alcotest.float 0.01) "15 KLOC total" 14.6
    (Hypertp.Tcb.total_kloc ());
  Alcotest.check (Alcotest.float 0.01) "8.5 KLOC TCB" 8.5
    (Hypertp.Tcb.tcb_kloc ());
  checkb "~90% userspace (wording: nearly 90%)" true
    (Hypertp.Tcb.tcb_userspace_fraction () > 0.70)

let suites =
  [
    ( "hypertp.inplace",
      [
        Alcotest.test_case "all checks pass" `Quick test_inplace_all_checks_pass;
        Alcotest.test_case "reverse direction" `Quick test_inplace_reverse_direction;
        Alcotest.test_case "same target rejected" `Quick test_inplace_same_target_rejected;
        Alcotest.test_case "no vms rejected" `Quick test_inplace_no_vms_rejected;
        Alcotest.test_case "M1 calibration (Fig 6)" `Quick
          test_inplace_phase_calibration_m1;
        Alcotest.test_case "M2 calibration (Fig 6)" `Quick
          test_inplace_phase_calibration_m2;
        Alcotest.test_case "fixups recorded" `Quick test_inplace_fixups_recorded;
        Alcotest.test_case "guest memory stays in place" `Quick
          test_inplace_guest_memory_physically_in_place;
        Alcotest.test_case "TCP connections survive" `Quick
          test_inplace_tcp_connections_survive;
        Alcotest.test_case "pass-through devices (4.2.3)" `Quick
          test_inplace_passthrough_devices;
        Alcotest.test_case "virtqueue indices preserved (4.2.3)" `Quick
          test_inplace_preserves_ring_state;
        Alcotest.test_case "roundtrip back to xen" `Quick test_inplace_roundtrip_back;
        Alcotest.test_case "scaling with vms" `Quick test_inplace_scales_with_vms;
        QCheck_alcotest.to_alcotest prop_inplace_always_correct;
      ] );
    ( "hypertp.options",
      [
        Alcotest.test_case "prepare before pause" `Quick
          test_ablation_prepare_before_pause;
        Alcotest.test_case "huge pages" `Quick test_ablation_huge_pages;
        Alcotest.test_case "early restoration" `Quick test_ablation_early_restoration;
        Alcotest.test_case "parallel translation" `Quick test_ablation_parallel;
      ] );
    ( "hypertp.migrate",
      [
        Alcotest.test_case "basic migration" `Quick test_migration_tp_basic;
        Alcotest.test_case "downtime asymmetry (Table 4)" `Quick
          test_migration_downtime_asymmetry;
        Alcotest.test_case "sequential receive variance (Fig 8)" `Quick
          test_migration_sequential_receive_variance;
        Alcotest.test_case "link failure leaves source safe" `Quick
          test_migration_link_failure_safe;
        Alcotest.test_case "partial failure" `Quick test_migration_partial_failure;
        Alcotest.test_case "unknown vm" `Quick test_migration_unknown_vm;
      ] );
    ( "hypertp.harmonization",
      [
        Alcotest.test_case "capped IOAPIC avoids lossy fixups" `Quick
          test_ioapic_harmonization;
        Alcotest.test_case "uncapped control drops pins" `Quick
          test_unharmonized_drops_pins;
      ] );
    ( "hypertp.memsep",
      [ Alcotest.test_case "proportions" `Quick test_memsep_proportions ] );
    ( "hypertp.api",
      [
        Alcotest.test_case "respond applies" `Quick test_api_respond_applies;
        Alcotest.test_case "advice only" `Quick test_api_respond_no_apply;
        Alcotest.test_case "common flaw" `Quick test_api_respond_common_flaw;
        Alcotest.test_case "unknown cve" `Quick test_api_unknown_cve;
      ] );
    ( "hypertp.snapshot",
      [
        Alcotest.test_case "bytes roundtrip + crc" `Quick
          test_snapshot_roundtrip_bytes;
        Alcotest.test_case "capture keeps VM running" `Quick
          test_snapshot_capture_keeps_vm_running;
        Alcotest.test_case "suspend on xen, resume on kvm" `Quick
          test_snapshot_cross_hypervisor_restore;
      ] );
    ("hypertp.tcb", [ Alcotest.test_case "accounting" `Quick test_tcb_accounting ]);
  ]
