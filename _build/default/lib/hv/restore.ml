let filter_msrs ~supports_msr fixups (vcpu : Vmstate.Vcpu.t) =
  let keep, drop =
    List.partition
      (fun (m : Vmstate.Regs.msr) -> supports_msr m.index)
      vcpu.regs.msrs
  in
  List.iter
    (fun (m : Vmstate.Regs.msr) ->
      fixups := Uisr.Fixup.Msr_dropped m.index :: !fixups)
    drop;
  { vcpu with regs = { vcpu.regs with msrs = keep } }

let devices_of_snapshots ~rng fixups snapshots =
  List.map
    (fun (s : Uisr.Vm_state.device_snapshot) ->
      if s.dev_unplugged then begin
        fixups := Uisr.Fixup.Device_rescanned s.dev_id :: !fixups;
        let fresh =
          Vmstate.Device.generate rng ~id:s.dev_id ~kind:s.dev_kind ()
        in
        { fresh with tcp_connections = s.dev_tcp_connections;
          run_state = Vmstate.Device.Dev_paused }
      end
      else
        {
          Vmstate.Device.id = s.dev_id;
          kind = s.dev_kind;
          run_state = Vmstate.Device.Dev_paused;
          emulation_state = Array.copy s.dev_emulation_state;
          queues = Array.map Vmstate.Virtqueue.of_words s.dev_queues;
          tcp_connections = s.dev_tcp_connections;
        })
    snapshots

let config_of_uisr ~devices (uisr : Uisr.Vm_state.t) =
  Vmstate.Vm.config ~vcpus:(List.length uisr.vcpus) ~ram:uisr.ram_bytes
    ~page_kind:uisr.page_kind
    ~device_kinds:(List.map (fun (d : Vmstate.Device.t) -> d.kind) devices)
    ~workload:uisr.workload ~inplace_compatible:uisr.inplace_compatible
    ~name:uisr.vm_name ()
