(** Redis + redis-benchmark model (Fig. 11).

    Produces a QPS-per-second timeline under a given execution schedule:
    steady rate per platform, halved-ish during pre-copy, zero while
    paused, with a small residual-warmup dip after a resume. *)

val qps_timeline :
  rng:Sim.Rng.t -> sched:Sched.t -> duration_s:float -> Sim.Trace.t
(** One sample per second in [\[0, duration_s)]. *)

val mean_qps : Sim.Trace.t -> from_s:float -> until_s:float -> float
