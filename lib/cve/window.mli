(** Vulnerability-window statistics (section 2.2) and the transplant
    decision (section 1).

    A vulnerability window is the time between a flaw's identification
    and the patched hypervisor running in the datacenter; HyperTP exists
    to cover exactly this interval. *)

type stats = {
  count : int;
  mean_days : float;
  min_days : int;
  max_days : int;
  over_60_fraction : float;
}

val kvm_stats : unit -> stats
(** Statistics over the KVM vulnerabilities with documented windows
    (Red Hat tracker subset: avg 71 days, 60%+ above 60 days). *)

val xen_stats : unit -> stats

type advice =
  | No_action            (** severity below the transplant threshold *)
  | Transplant_to of string  (** a safe alternate hypervisor exists *)
  | Wait_for_patch
      (** a safe alternative exists, but the expected patch delay
          undercuts the transplant cost — only {!advise_costed} returns
          this; plain {!advise} never does *)
  | No_safe_alternative  (** every hypervisor in the fleet is affected *)

val advise : fleet:string list -> current:string -> Nvd.record -> advice
(** The operator's decision procedure: on a critical flaw affecting
    [current], pick the first fleet member not affected by it.
    [fleet]/[current] use "xen" / "kvm" names. *)

val affected : Nvd.record -> string -> bool
(** Whether the record affects the named hypervisor ("xen" / "kvm" /
    "bhyve" — bhyve shares neither studied codebase, so it is never
    affected).  Raises [Invalid_argument] on an unknown name. *)

(** {1 Cost-aware advice}

    {!advise} answers "is there somewhere safe to go"; operating a live
    fleet also asks "is going there worth it".  When the patch is
    expected before a transplant campaign could pay for itself, waiting
    exposed is the cheaper mitigation. *)

val transplant_break_even_days :
  transplant_cost_hours:float -> risk_weight:float -> float
(** The patch-delay crossover: waiting is preferred when the expected
    delay (days) is at most [transplant_cost_hours / (24 x risk_weight)].
    [risk_weight] scales exposed host-hours into the cost currency
    (e.g. CVSS score / 10).  Raises [Invalid_argument] on a negative
    cost or non-positive weight. *)

val advise_costed :
  fleet:string list -> current:string -> transplant_cost_hours:float ->
  ?risk_weight:float -> Nvd.timed -> advice
(** {!advise}, refined by the crossover: a {!Transplant_to} verdict
    becomes {!Wait_for_patch} when the record's expected patch delay is
    at or below the break-even point.  [risk_weight] defaults to 1. *)

val empirical_windows : unit -> int list
(** The documented vulnerability windows (days) the synthetic streams
    sample patch delays from. *)

val sample_patch_delay :
  rng:Sim.Rng.t -> ?coordinated_fraction:float -> unit -> float
(** Draw a patch-availability delay in days: with probability
    [coordinated_fraction] (default 0.3) the patch ships with the
    advisory (0.25-3 days, the XSA-style coordinated release);
    otherwise one of {!empirical_windows}, jittered +/-20 %.  Exactly
    two RNG draws per call, so seeded streams stay aligned.  Raises
    [Invalid_argument] if the fraction is outside [0, 1]. *)

val transplants_needed_per_year :
  fleet:string list -> current:string -> (int * int) list
(** For each studied year, how many transplants the policy would have
    triggered — the paper's argument that the count stays low. *)

val pp_stats : Format.formatter -> stats -> unit
val pp_advice : Format.formatter -> advice -> unit
