(** Supervised rolling-transplant campaign controller.

    [Cluster.Upgrade.execute*] prices a rolling upgrade by summing
    precomputed action times — fine for Fig. 13, useless for operating
    a real fleet remediation, which is a multi-hour supervised process
    racing an active attacker.  This module runs the same BtrPlace plan
    as a {e supervised campaign} on the discrete-event engine
    ({!Sim.Engine}):

    - {b Admission control.}  At most [concurrency] hosts are in flight
      at once, further clamped by {!Btrplace.max_concurrent_drains} so
      the campaign never drains more hosts than spare capacity admits.
    - {b Straggler detection.}  Every host attempt carries a deadline
      ([straggler_factor] x its expected duration, from the
      {!Hypertp.Costs} estimates); a cancellable {!Sim.Engine.timer}
      escalates attempts that overrun it.
    - {b Degradation ladder.}  InPlaceTP -> shadow-host cutover (when
      [shadow_spares > 0] and a staged spare lane is free) ->
      MigrationTP drain -> {e defer}: a deferred host stays on the
      vulnerable hypervisor, accruing exposed host-hours (Fig. 1), and
      is retried once at campaign end.  A completed cutover frees its
      source as the next spare, so the lanes are a concurrency bound,
      not a consumable; a failed cutover returns its lane and the host
      falls through to the drain (never shadow twice).
    - {b Circuit breaker.}  When the failure rate over the last
      [breaker_window] attempts reaches [breaker_threshold], admission
      pauses for [breaker_cooldown], then resumes {e half-open} at
      halved concurrency; [breaker_window] consecutive successes close
      it again (hysteresis).
    - {b Checkpoint / resume.}  Every host-level event is journaled
      (with the fault-plan cursor); a {!Fault.Controller_crash} kills
      the controller mid-campaign and {!resume} replays the journal and
      continues to a final report identical to the uninterrupted run.

    Fault sites consulted per host admission, in order:
    {!Fault.Host_flap}, {!Fault.Host_crash}, {!Fault.Host_timeout} —
    always all three, so equal seeds keep probability streams aligned
    and failure sets are nested across probabilities (the
    [sweep_faulty] monotonicity property, lifted to campaigns).  When
    several fire, the costliest manifestation governs (timeout >
    flap > crash).  Shadow admissions additionally consult the five
    shadow sites ({!Fault.Spare_exhausted}, {!Fault.Shadow_stage_fail},
    {!Fault.Shadow_stream_drop}, {!Fault.Shadow_diverge},
    {!Fault.Swap_partition}, in that order) — but {e only} when the
    plan arms at least one of them, so journals recorded under
    shadow-free plans keep their fault cursors bit-for-bit.  Secondary
    decisions (drain failure, end-of-campaign retry, duration jitter)
    come from per-host RNGs derived from [seed], independent of the
    plan's stream. *)

type config = {
  nodes : int;
  vms_per_node : int;
  vm_ram : Hw.Units.bytes_;
  node_ram : Hw.Units.bytes_;
  inplace_fraction : float;
  concurrency : int;  (** requested; clamped by spare capacity *)
  straggler_factor : float;  (** deadline = factor x expected; >= 1.2 *)
  breaker_window : int;  (** K: rolling window length *)
  breaker_threshold : float;  (** trip when failures/K >= threshold *)
  breaker_cooldown : Sim.Time.t;
  jitter_pct : float;  (** per-host duration noise in [0, 0.1]; 0 = ideal *)
  drain_flakiness : float;  (** P(drain fallback also fails) per host *)
  retry_flakiness : float;  (** P(end-of-campaign retry fails) per host *)
  seed : int64;  (** feeds the derived per-host RNGs only *)
  shadow_spares : int;
      (** staged spare lanes for the {!Shadow} ladder rung; [0]
          (default) disables the rung entirely — campaigns and their
          journals are then byte-identical to pre-shadow runs *)
}

val default_config : config
(** 10x10 paper cluster, fully InPlaceTP-compatible, concurrency 4,
    straggler factor 2.0, breaker 5/0.4/120 s, jitter 5 %. *)

type ladder_step = Inplace | Shadow | Drain | Retry

type manifestation = Crash | Timeout | Flap

type event =
  | Admitted of ladder_step
  | Flap_failure  (** first leg of a flap: failed, then recovered *)
  | Straggler_cancelled  (** deadline exceeded; attempt cancelled *)
  | Attempt_failed of { step : ladder_step; manifestation : manifestation }
  | Attempt_completed of ladder_step
  | Deferred  (** ladder exhausted; host parked on the vulnerable hv *)
  | Breaker_opened
  | Breaker_half_opened
  | Breaker_closed
  | Campaign_finished

val pp_event : Format.formatter -> event -> unit

type host_status =
  | Upgraded_inplace  (** InPlaceTP succeeded (possibly not first try) *)
  | Shadow_cutover
      (** evacuated by a shadow-host cutover onto a staged spare *)
  | Drained  (** fell back to a MigrationTP drain + empty reboot *)
  | Deferred_resolved  (** deferred, but the end-of-campaign retry won *)
  | Deferred_exposed  (** still on the vulnerable hypervisor at the end *)

type audit_verdict =
  | A_clean  (** the post-commit residual audit found nothing *)
  | A_scrubbed  (** findings were remediated by the scrub pass *)
  | A_failed  (** the scrub failed; residue was left on the host *)

val verdict_to_string : audit_verdict -> string
val verdict_of_string : string -> audit_verdict option

type host_record = {
  hr_node : string;
  hr_vms_in_place : int;  (** VMs riding InPlaceTP on this host *)
  hr_drain_migrations : int;  (** planned pre-upgrade evacuations *)
  hr_status : host_status;
  hr_attempts : int;
  hr_manifestations : manifestation list;  (** injected failures, in order *)
  hr_timeline : (Sim.Time.t * event) list;  (** this host's events *)
  hr_expected : Sim.Time.t;  (** a-priori attempt estimate (deadline basis) *)
  hr_done_at : Sim.Time.t;
      (** when the host left the vulnerable hypervisor; campaign end for
          {!Deferred_exposed} *)
  hr_exposure_hours : float;  (** host-hours exposed since campaign start *)
  hr_audit : audit_verdict option;
      (** post-commit audit verdict of the successful InPlaceTP attempt;
          [None] when the fault plan does not arm
          {!Fault.Residual_leak} / {!Fault.Scrub_fail}, or when the host
          ended drained/exposed (nothing landed in place to audit) *)
}

type report = {
  cfg : config;
  base : Upgrade.timing;  (** the unsupervised timing of the same plan *)
  effective_concurrency : int;  (** after the capacity clamp *)
  hosts : host_record list;  (** in admission order *)
  wall_clock : Sim.Time.t;  (** includes the final rebalance tail *)
  rebalance_time : Sim.Time.t;
  exposed_host_hours : float;  (** sum over hosts *)
  baseline_exposed_host_hours : float;
      (** no-transplant reference: every host exposed for the whole
          campaign *)
  deferred : string list;  (** hosts whose ladder reached {e defer} *)
  deferred_exposure_hours : float;
      (** exposure accrued by the deferred set; > 0 iff it is non-empty *)
  breaker_trips : int;
  vms_total : int;
  vms_inplace_ok : int;
  vms_shadow : int;  (** VMs moved whole-host by shadow cutovers *)
  vms_drained : int;
  vms_on_deferred : int;  (** alive but still on the vulnerable hv *)
  vms_migrated_planned : int;  (** distinct VMs moved by the plan *)
  audit_verdicts : (string * audit_verdict) list;
      (** per-host audit verdicts in admission order; empty when the
          plan never armed the audit sites *)
}

val vms_accounted : report -> int
(** [vms_inplace_ok + vms_shadow + vms_drained + vms_on_deferred +
    vms_migrated_planned]; always equals [vms_total] — no VM is lost,
    only delayed or left exposed. *)

(** {1 Journal} *)

type journal
(** The campaign's checkpoint state: config plus every host-level event
    (with the fault-plan cursor after each).  Appended to after every
    event; sufficient to resume an interrupted campaign. *)

val journal_config : journal -> config
val journal_length : journal -> int

val journal_to_string : journal -> string
(** Line-oriented text serialisation (for [--resume-from] files). *)

val journal_of_string : string -> (journal, string) result

(** {1 Running} *)

type run_result =
  | Finished of report * journal
  | Crashed of journal
      (** a {!Fault.Controller_crash} fired; resume from the journal *)

val run :
  ?ctx:Hypertp.Ctx.t -> ?fault:Fault.t -> ?obs:Obs.Tracer.t ->
  ?metrics:Obs.Metrics.t -> config -> run_result
(** Execute the campaign.  [ctx] bundles the fault plan, tracer and
    metrics registry ({!Hypertp.Ctx.t}); the individual optional
    arguments are deprecated spellings that override the corresponding
    [ctx] field.  Raises [Hypertp.Error.Error] (site ["Campaign"]) on a
    malformed config (non-positive concurrency, straggler factor below
    1.2, jitter outside [0, 0.1], threshold outside [0, 1], ...).

    [obs] records the campaign on virtual time: a root [campaign] span
    on the [controller] track, one [attempt:<step>] span per admission
    on its host's [host:<node>] track (closed with a [result]
    attribute; flap legs become events on the open span), breaker
    transitions and journal checkpoints as instants, and every engine
    timer fire/cancel on the [engine] track.  Because all state
    mutations funnel through the journal apply path, a resumed
    campaign re-emits the entire timeline into whatever tracer it is
    given.  [metrics] accumulates attempt/failure/completion counters,
    breaker trips, a running-attempts gauge and, once finished, the
    exposure and wall-clock gauges. *)

val resume :
  ?ctx:Hypertp.Ctx.t -> ?fault:Fault.t -> ?obs:Obs.Tracer.t ->
  ?metrics:Obs.Metrics.t -> journal -> run_result
(** Replay the journal — re-validating it against a {e restarted} copy
    of the fault plan (same injections and seed as the original run) —
    then continue the campaign live.  The final report is identical to
    the uninterrupted run's.  Raises [Hypertp.Error.Error] (site
    ["Campaign.resume"]) if the journal does not match the plan. *)

val run_to_completion :
  ?ctx:Hypertp.Ctx.t -> ?fault:Fault.t -> ?obs:Obs.Tracer.t ->
  ?metrics:Obs.Metrics.t -> config -> report
(** [run], resuming across any number of controller crashes.  With
    [obs], each crash-and-resume cycle replays the journal into the
    same tracer, so the trace accumulates one timeline per life of the
    controller — pass a fresh tracer per call if that is not wanted. *)

val sweep :
  ?config:config -> ?seed:int64 -> probabilities:float list -> unit ->
  (float * report) list
(** Run one campaign per per-host failure probability ([Host_crash],
    probability trigger, all plans sharing [seed] — default [0xC1A5L],
    matching {!Upgrade.sweep_faulty}): failure sets are nested and
    wall-clock is monotone in the probability. *)

val pp_host_record : Format.formatter -> host_record -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Region-sharded fleets}

    [run_fleet] scales the campaign controller to million-host fleets
    by partitioning a {!Topology.t} into region shards, each simulated
    by its own campaign (own {!Sim.Engine}, own derived seed and fault
    plan) under a {!Hypertp.Ctx.sharding} schedule ({!Sim.Shard.mode}):
    sequential, rotated batches, or parallel on stdlib domains.

    Determinism contract: a region's campaign is a pure function of the
    fleet config and the region (seed and fault plan are derived from
    the fleet seed and the region {e name}), so every schedule produces
    byte-identical summaries, journals ({!fleet_journals_to_string})
    and {!fleet_digest}s for the same inputs — the mode only trades
    wall-clock.  The qcheck suite and CI pin this.

    The fleet config's [nodes]/[vms_per_node]/[shadow_spares] fields
    are overridden per region by the topology ([rg_spares = 0] inherits
    the config's spare count); [obs]/[metrics] from the context are
    {e not} threaded into shards — a shared tracer is not domain-safe
    and would make the trace schedule-dependent. *)

(** Scalar per-region outcome (no per-host records — at fleet scale a
    million boxed timelines would defeat the packed journal). *)
type summary = {
  s_region : string;
  s_hosts : int;
  s_vms : int;
  s_wall_clock : Sim.Time.t;
  s_exposed_host_hours : float;
  s_baseline_exposed_host_hours : float;
  s_breaker_trips : int;
  s_inplace : int;
  s_shadow : int;
  s_drained : int;
  s_retried : int;
  s_exposed : int;
  s_attempts : int;
  s_events : int;  (** journal length *)
  s_resumes : int;  (** controller crashes survived *)
}

type fleet_report = {
  f_topology : Topology.t;
  f_mode : Hypertp.Ctx.sharding;
  f_shards : int;  (** shard batches actually used (clamped) *)
  f_domains : int;  (** domains actually spawned *)
  f_summaries : summary array;  (** region order *)
  f_journals : journal array;  (** region order *)
  f_wall_clock : Sim.Time.t;  (** slowest region (regions run in parallel
                                  in simulated time) *)
  f_exposed_host_hours : float;  (** sum over regions *)
  f_baseline_exposed_host_hours : float;
  f_breaker_trips : int;
  f_resumes : int;
  f_minor_words : float;
      (** minor-heap words allocated by the region simulations,
          measured inside each shard task (summed across domains);
          schedule metadata, excluded from {!fleet_digest} *)
}

val run_fleet :
  ?ctx:Hypertp.Ctx.t -> ?fault:Fault.t -> ?sharding:Hypertp.Ctx.sharding ->
  topology:Topology.t -> config -> fleet_report
(** Simulate one campaign per region of [topology] under
    [ctx.sharding] (default [Sequential]; the [?sharding] argument
    overrides the [ctx] field).  The topology is validated
    ({!Topology.validate}); raises [Hypertp.Error.Error] on an invalid
    topology, sharding mode, or region config.  A [?fault] plan is
    re-derived per region (same injections, region-derived seed);
    {!Fault.Controller_crash} crashes are resumed transparently and
    counted in [s_resumes]. *)

val fleet_digest : fleet_report -> int
(** Order-insensitive digest of topology, config and every region's
    summary and packed journal words.  Equal across sharding modes for
    the same fleet inputs; schedule metadata ([f_mode], [f_shards],
    [f_domains], [f_minor_words], wall-clock seconds) is excluded. *)

val fleet_journals_to_string : fleet_report -> string
(** Concatenated region journals under a fleet header — the
    byte-identity witness the mode-equivalence tests compare. *)

val pp_summary : Format.formatter -> summary -> unit

val pp_fleet : Format.formatter -> fleet_report -> unit
(** Schedule-free rendering (no mode/domain/timing fields), including
    the digest — CI diffs this byte-for-byte between sequential and
    sharded runs. *)
