lib/pram/layout.mli: Format
