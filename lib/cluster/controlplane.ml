type config = {
  regions : int;
  hosts_per_region : int;
  vms_per_host : int;
  global_concurrency : int;
  straggler_factor : float;
  breaker_window : int;
  breaker_threshold : float;
  breaker_cooldown : Sim.Time.t;
  jitter_pct : float;
  drain_flakiness : float;
  heartbeat_every : Sim.Time.t;
  heartbeat_timeout : Sim.Time.t;
  realloc_lag : Sim.Time.t;
  seed : int64;
}

let default_config =
  {
    regions = 4;
    hosts_per_region = 25;
    vms_per_host = 8;
    global_concurrency = 8;
    straggler_factor = 2.0;
    breaker_window = 5;
    breaker_threshold = 0.4;
    breaker_cooldown = Sim.Time.sec 120;
    jitter_pct = 0.05;
    drain_flakiness = 0.25;
    heartbeat_every = Sim.Time.sec 5;
    heartbeat_timeout = Sim.Time.sec 12;
    realloc_lag = Sim.Time.sec 22;
    seed = 0x5EEDL;
  }

(* The control plane's region grid is uniform by construction (its
   admission-budget split assumes equal regions), so only a uniform
   topology maps onto it; anything ragged is a structured error rather
   than a silent reshape. *)
let config_of_topology topology base =
  let topology = Topology.validate_exn topology in
  let rs = Topology.regions topology in
  let r0 = rs.(0) in
  Array.iter
    (fun (r : Topology.region) ->
      if
        r.Topology.rg_hosts <> r0.Topology.rg_hosts
        || r.Topology.rg_vms_per_host <> r0.Topology.rg_vms_per_host
      then
        Hypertp_error.raise_errorf ~site:"Controlplane"
          ~hint:
            "the control plane splits its admission budget over equal \
             regions; use Campaign.run_fleet for ragged topologies"
          "non-uniform topology: region %s is %dx%d but %s is %dx%d"
          r.Topology.rg_name r.Topology.rg_hosts r.Topology.rg_vms_per_host
          r0.Topology.rg_name r0.Topology.rg_hosts r0.Topology.rg_vms_per_host)
    rs;
  {
    base with
    regions = Array.length rs;
    hosts_per_region = r0.Topology.rg_hosts;
    vms_per_host = r0.Topology.rg_vms_per_host;
  }

type step = Inplace | Drain
type manifestation = Crash | Timeout | Flap

type host_status = Upgraded_inplace | Drained | Deferred_exposed

type event =
  | Admitted of step
  | Flap_failure
  | Straggler_cancelled
  | Attempt_failed of { step : step; manifestation : manifestation }
  | Attempt_completed of step
  | Breaker_opened
  | Breaker_half_opened
  | Breaker_closed
  | Limit_raised of { from_region : int; slots : int }
  | Region_finished

type host_record = {
  h_name : string;
  h_status : host_status;
  h_attempts : int;
  h_manifestations : manifestation list;
  h_done_at : Sim.Time.t;
  h_exposure_hours : float;
}

type region_report = {
  rr_region : int;
  rr_hosts : host_record list;
  rr_finished_at : Sim.Time.t;
  rr_breaker_trips : int;
  rr_deferred : string list;
}

type report = {
  cp_cfg : config;
  cp_regions : region_report list;
  cp_wall_clock : Sim.Time.t;
  cp_exposed_host_hours : float;
  cp_baseline_exposed_host_hours : float;
  cp_hosts_inplace : int;
  cp_hosts_drained : int;
  cp_hosts_exposed : int;
}

(* Manifestation timing fractions, shared with [Campaign]: the cost
   order timeout > flap > crash keeps the straggler deadline (>= 1.2 x
   expected) strictly above the final flap leg (1.10x) and any jittered
   success (<= 1.10x), so only a [d_timeout] decision ever reaches the
   deadline. *)
let crash_frac = 0.5
let flap_leg1_frac = 0.55
let flap_final_frac = 1.10
let drain_fail_frac = 0.6

let min_straggler_factor = 1.2
let max_jitter_pct = 0.1

let validate_config (cfg : config) =
  let bad msg = Hypertp_error.raise_error ~site:"Controlplane" msg in
  if cfg.regions < 1 then bad "need at least 1 region";
  if cfg.hosts_per_region < 1 then bad "hosts_per_region must be at least 1";
  if cfg.vms_per_host < 1 then bad "vms_per_host must be at least 1";
  if cfg.global_concurrency < cfg.regions then
    bad "global_concurrency below the region count (each region needs a slot)";
  if cfg.straggler_factor < min_straggler_factor then
    bad "straggler_factor below 1.2 (deadline must dominate a flap)";
  if cfg.breaker_window < 1 then bad "breaker_window must be at least 1";
  if cfg.breaker_threshold < 0.0 || cfg.breaker_threshold > 1.0 then
    bad "breaker_threshold outside [0, 1]";
  if cfg.jitter_pct < 0.0 || cfg.jitter_pct > max_jitter_pct then
    bad "jitter_pct outside [0, 0.1] (success must beat the deadline)";
  if cfg.drain_flakiness < 0.0 || cfg.drain_flakiness > 1.0 then
    bad "drain_flakiness outside [0, 1]";
  if Sim.Time.(cfg.heartbeat_every <= zero) then
    bad "heartbeat_every must be positive";
  if Sim.Time.(cfg.heartbeat_timeout <= cfg.heartbeat_every) then
    bad "heartbeat_timeout must exceed heartbeat_every";
  if
    Sim.Time.(
      cfg.realloc_lag
      < add cfg.heartbeat_timeout
          (add cfg.heartbeat_every cfg.heartbeat_every))
  then
    bad
      "realloc_lag below heartbeat_timeout + 2 x heartbeat_every (a \
       reallocation could land inside the grantor's detection window)"

(* --- derived per-host randomness, independent of the fault plan --- *)

let region_name r = Printf.sprintf "r%d" r
let host_name r i = Printf.sprintf "r%d-h%d" r i

let derived seed salt key =
  Sim.Rng.create (Int64.logxor seed (Int64.of_int (Hashtbl.hash (salt, key))))

let coin cfg salt host p = Sim.Rng.float (derived cfg.seed salt host) 1.0 < p

let host_jitter cfg host =
  Sim.Rng.jitter (derived cfg.seed "jitter" host) cfg.jitter_pct

(* Per-region host fault plans: the caller plan's host-site injections,
   re-seeded per region, so one region's fault stream never shifts when
   another region's interleaving changes.  Region journal cursors track
   these derived plans only. *)
let host_sites = [ Fault.Host_flap; Fault.Host_crash; Fault.Host_timeout ]

let derive_hplan fault r =
  Option.map
    (fun f ->
      let inj =
        List.filter (fun i -> List.mem i.Fault.site host_sites)
          (Fault.injections f)
      in
      Fault.make
        ~seed:
          (Int64.logxor (Fault.seed f)
             (Int64.of_int (Hashtbl.hash ("region", r))))
        inj)
    fault

(* --- journal --- *)

type decision = { d_flap : bool; d_crash : bool; d_timeout : bool }

type entry = {
  ce_at : Sim.Time.t; (* derived logical time, never the engine clock *)
  ce_host : string option;
  ce_event : event;
  ce_decision : decision option; (* Some iff Admitted Inplace *)
  ce_cursor : int; (* region host-plan trace length after this entry *)
}

let dummy_entry =
  { ce_at = Sim.Time.zero; ce_host = None; ce_event = Region_finished;
    ce_decision = None; ce_cursor = 0 }

type bundle = { b_config : config; b_journals : entry Sim.Vec.t array }

let bundle_config b = b.b_config

let bundle_length b =
  Array.fold_left (fun acc j -> acc + Sim.Vec.length j) 0 b.b_journals

(* --- controller state --- *)

type running_att = {
  ra_step : step;
  ra_started : Sim.Time.t;
  ra_decision : decision option;
  mutable ra_flapped : bool;
}

type hstate =
  | H_pending
  | H_running of running_att
  | H_failed_needs_drain
  | H_done of host_status * Sim.Time.t

type breaker = B_closed | B_open_until of Sim.Time.t | B_half_open

type rstate = {
  r_index : int;
  base_limit : int;
  hstates : hstate array;
  attempts : int array;
  manifests : manifestation list array; (* newest first *)
  mutable breaker : breaker;
  mutable window : bool list; (* newest first, <= breaker_window long *)
  mutable half_successes : int;
  mutable half_failed : bool;
  mutable trips : int;
  mutable granted : int; (* slots received via Limit_raised *)
  mutable limit : int;
  mutable running : int;
  mutable next_pending : int;
  mutable needs_drain : int list;
  mutable n_done : int;
  mutable finished_at : Sim.Time.t option;
  mutable hplan : Fault.t option; (* derived; rebuilt on every replay *)
  mutable entries : entry Sim.Vec.t; (* the durable journal *)
  (* supervision (root-side, volatile — never load-bearing) *)
  mutable alive : bool;
  mutable incarnation : int;
  mutable last_seen : Sim.Time.t;
  mutable partitioned_until : Sim.Time.t;
  mutable span : Obs.Span.t option;
}

type st = {
  cfg : config;
  expected : Sim.Time.t;
  deadline : Sim.Time.t;
  drain_span : Sim.Time.t;
  regions : rstate array;
  chaos : Fault.t option; (* caller plan: control-plane sites only *)
  partition_rng : Sim.Rng.t array; (* per-region heal-delay stream *)
  realloc_done : bool array; (* volatile ledger, re-derived on handoff *)
  obs : Obs.Tracer.t option;
  metrics : Obs.Metrics.t option;
  mutable root_span : Obs.Span.t option;
  mutable dispatch_gen : int;
}

exception Root_died
exception Subctl_died

let base_limit_of (cfg : config) r =
  (cfg.global_concurrency / cfg.regions)
  + (if r < cfg.global_concurrency mod cfg.regions then 1 else 0)

let make_st ?fault ?obs ?metrics (cfg : config) =
  let obs = Option.map Hypertp.Otrace.attach obs in
  let chaos_seed =
    match fault with Some f -> Fault.seed f | None -> 0xC7A05L
  in
  let root_span =
    Hypertp.Otrace.start obs ~at:Sim.Time.zero ~track:"root"
      ~attrs:
        [ ("engine", "controlplane");
          ("regions", string_of_int cfg.regions);
          ("hosts", string_of_int (cfg.regions * cfg.hosts_per_region));
          ("concurrency", string_of_int cfg.global_concurrency) ]
      "controlplane"
  in
  let regions =
    Array.init cfg.regions (fun r ->
        let base = base_limit_of cfg r in
        {
          r_index = r;
          base_limit = base;
          hstates = Array.make cfg.hosts_per_region H_pending;
          attempts = Array.make cfg.hosts_per_region 0;
          manifests = Array.make cfg.hosts_per_region [];
          breaker = B_closed;
          window = [];
          half_successes = 0;
          half_failed = false;
          trips = 0;
          granted = 0;
          limit = base;
          running = 0;
          next_pending = 0;
          needs_drain = [];
          n_done = 0;
          finished_at = None;
          hplan = derive_hplan fault r;
          entries =
            Sim.Vec.create
              ~capacity:(Stdlib.max 16 (4 * cfg.hosts_per_region))
              dummy_entry;
          alive = true;
          incarnation = 0;
          last_seen = Sim.Time.zero;
          partitioned_until = Sim.Time.zero;
          span =
            Hypertp.Otrace.start obs ~at:Sim.Time.zero ?parent:root_span
              ~track:("region:" ^ region_name r)
              ~attrs:
                [ ("region", region_name r); ("base_limit", string_of_int base) ]
              ("subctl:" ^ region_name r);
        })
  in
  let expected = Upgrade.inplace_host_time ~vms:cfg.vms_per_host in
  {
    cfg;
    expected;
    deadline =
      Sim.Time.of_sec_f
        (Hypertp.Costs.straggler_deadline_seconds ~factor:cfg.straggler_factor
           ~expected:(Sim.Time.to_sec_f expected));
    drain_span =
      Sim.Time.add (Sim.Time.scale 2.0 expected) Upgrade.reboot_host_time;
    regions;
    chaos = fault;
    partition_rng =
      Array.init cfg.regions (fun r ->
          derived chaos_seed "partition" (region_name r));
    realloc_done = Array.make cfg.regions false;
    obs;
    metrics;
    root_span;
    dispatch_gen = 0;
  }

let all_finished st =
  Array.for_all (fun r -> r.finished_at <> None) st.regions

let fire_chaos st ?vm site =
  match st.chaos with None -> false | Some f -> Fault.fire f ?vm site

let cursor r =
  match r.hplan with None -> 0 | Some f -> Fault.trace_length f

let fire_hplan r ?vm site =
  match r.hplan with None -> false | Some f -> Fault.fire f ?vm site

let hours t = Sim.Time.to_sec_f t /. 3600.0

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* --- event naming (logs, obs attrs, serialisation) --- *)

let step_to_string = function Inplace -> "inplace" | Drain -> "drain"

let man_to_string = function
  | Crash -> "crash"
  | Timeout -> "timeout"
  | Flap -> "flap"

let event_label = function
  | Admitted step -> "admitted(" ^ step_to_string step ^ ")"
  | Flap_failure -> "flap-leg"
  | Straggler_cancelled -> "straggler-cancelled"
  | Attempt_failed { step; manifestation } ->
    Printf.sprintf "failed(%s, %s)" (step_to_string step)
      (man_to_string manifestation)
  | Attempt_completed step -> "completed(" ^ step_to_string step ^ ")"
  | Breaker_opened -> "breaker-opened"
  | Breaker_half_opened -> "breaker-half-open"
  | Breaker_closed -> "breaker-closed"
  | Limit_raised { from_region; slots } ->
    Printf.sprintf "limit-raised(+%d from r%d)" slots from_region
  | Region_finished -> "region-finished"

(* --- apply: the single funnel every mutation goes through --- *)

let push_window st r ok =
  (match r.breaker with
  | B_half_open ->
    if ok then r.half_successes <- r.half_successes + 1
    else begin
      r.half_successes <- 0;
      r.half_failed <- true
    end
  | B_closed | B_open_until _ -> ());
  r.window <- take st.cfg.breaker_window (ok :: r.window)

let full_limit r = r.base_limit + r.granted

let recompute_limit r =
  r.limit <-
    (match r.breaker with
    | B_half_open -> Stdlib.max 1 (full_limit r / 2)
    | B_closed | B_open_until _ -> full_limit r)

let host_idx st r h =
  let rec scan i =
    if i >= Array.length r.hstates then
      Hypertp_error.raise_errorf ~site:"Controlplane"
        ~hint:"the journal must come from a campaign with the same config"
        "unknown host in journal: %s" h
    else if String.equal (host_name r.r_index i) h then i
    else scan (i + 1)
  in
  ignore st;
  scan 0

let resolve_failure st r i manifestation at =
  r.running <- r.running - 1;
  r.manifests.(i) <- manifestation :: r.manifests.(i);
  match r.hstates.(i) with
  | H_running ra -> (
    match ra.ra_step with
    | Inplace ->
      r.hstates.(i) <- H_failed_needs_drain;
      r.needs_drain <- i :: r.needs_drain;
      push_window st r false
    | Drain ->
      r.hstates.(i) <- H_done (Deferred_exposed, at);
      r.n_done <- r.n_done + 1;
      push_window st r false)
  | _ ->
    Hypertp_error.raise_error ~site:"Controlplane"
      "failure recorded for a host not running"

let apply st r e =
  let at = e.ce_at in
  match (e.ce_event, e.ce_host) with
  | Admitted step, Some h ->
    let i = host_idx st r h in
    (match (step, r.hstates.(i)) with
    | Inplace, H_pending | Drain, H_failed_needs_drain -> ()
    | _ ->
      Hypertp_error.raise_error ~site:"Controlplane"
        "admission out of ladder order");
    if step = Inplace && e.ce_decision = None then
      Hypertp_error.raise_error ~site:"Controlplane"
        "in-place admission without a fault decision";
    r.hstates.(i) <-
      H_running
        { ra_step = step; ra_started = at; ra_decision = e.ce_decision;
          ra_flapped = false };
    r.running <- r.running + 1;
    r.attempts.(i) <- r.attempts.(i) + 1
  | Flap_failure, Some h -> (
    match r.hstates.(host_idx st r h) with
    | H_running ra -> ra.ra_flapped <- true
    | _ ->
      Hypertp_error.raise_error ~site:"Controlplane"
        "flap leg for a host not running")
  | Straggler_cancelled, Some h ->
    resolve_failure st r (host_idx st r h) Timeout at
  | Attempt_failed { manifestation; _ }, Some h ->
    resolve_failure st r (host_idx st r h) manifestation at
  | Attempt_completed step, Some h ->
    let i = host_idx st r h in
    r.running <- r.running - 1;
    (match step with
    | Inplace -> r.hstates.(i) <- H_done (Upgraded_inplace, at)
    | Drain -> r.hstates.(i) <- H_done (Drained, at));
    r.n_done <- r.n_done + 1;
    push_window st r true
  | Breaker_opened, None ->
    r.trips <- r.trips + 1;
    r.breaker <- B_open_until (Sim.Time.add at st.cfg.breaker_cooldown);
    r.window <- [];
    r.half_failed <- false
  | Breaker_half_opened, None ->
    r.breaker <- B_half_open;
    r.half_successes <- 0;
    r.half_failed <- false;
    recompute_limit r
  | Breaker_closed, None ->
    r.breaker <- B_closed;
    recompute_limit r
  | Limit_raised { slots; _ }, None ->
    r.granted <- r.granted + slots;
    recompute_limit r
  | Region_finished, None -> r.finished_at <- Some at
  | _ ->
    Hypertp_error.raise_error ~site:"Controlplane" "malformed journal entry"

(* Narration + span/metric bookkeeping for one applied entry.  Live
   appends and [resume]'s replay both funnel through here, so a leader
   handoff re-emits the merged timeline the crashed incarnations
   emitted. *)
let observe st r e =
  let at = e.ce_at in
  let rname = region_name r.r_index in
  let track = "region:" ^ rname in
  let labels = [ ("engine", "controlplane"); ("region", rname) ] in
  Hypertp.Log.info (fun m ->
      m "controlplane %s%s: %s at %a" rname
        (match e.ce_host with Some h -> " " ^ h | None -> "")
        (event_label e.ce_event) Sim.Time.pp at);
  let host_attrs =
    match e.ce_host with Some h -> [ ("host", h) ] | None -> []
  in
  (match e.ce_event with
  | Admitted step ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track
      ~attrs:(("step", step_to_string step) :: host_attrs)
      "admitted";
    Hypertp.Otrace.count st.metrics
      ~labels:(("step", step_to_string step) :: labels)
      "hypertp_ctl_attempts_total"
  | Flap_failure ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track ~attrs:host_attrs
      "flap_leg"
  | Straggler_cancelled ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track ~attrs:host_attrs
      "straggler_cancelled";
    Hypertp.Otrace.count st.metrics
      ~labels:(("manifestation", "timeout") :: labels)
      "hypertp_ctl_failures_total"
  | Attempt_failed { manifestation; step } ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track
      ~attrs:
        (("step", step_to_string step)
        :: ("manifestation", man_to_string manifestation)
        :: host_attrs)
      "attempt_failed";
    Hypertp.Otrace.count st.metrics
      ~labels:(("manifestation", man_to_string manifestation) :: labels)
      "hypertp_ctl_failures_total"
  | Attempt_completed step ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track
      ~attrs:(("step", step_to_string step) :: host_attrs)
      "attempt_completed";
    Hypertp.Otrace.count st.metrics
      ~labels:(("step", step_to_string step) :: labels)
      "hypertp_ctl_completions_total"
  | Breaker_opened ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track "breaker:opened";
    Hypertp.Otrace.count st.metrics ~labels "hypertp_ctl_breaker_trips_total"
  | Breaker_half_opened ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track
      "breaker:half_open"
  | Breaker_closed ->
    Hypertp.Otrace.instant st.obs ~at ?parent:r.span ~track "breaker:closed"
  | Limit_raised { from_region; slots } ->
    Hypertp.Otrace.instant st.obs ~at ?parent:st.root_span ~track:"root"
      ~attrs:
        [ ("to", rname); ("from", region_name from_region);
          ("slots", string_of_int slots) ]
      "realloc";
    Hypertp.Otrace.count st.metrics ~labels "hypertp_ctl_reallocs_total"
  | Region_finished ->
    (match r.span with
    | Some s -> Obs.Span.set_attr s "trips" (string_of_int r.trips)
    | None -> ());
    Hypertp.Otrace.finish st.obs r.span ~at;
    r.span <- None);
  Hypertp.Otrace.gauge_set st.metrics ~labels "hypertp_ctl_running"
    (float_of_int r.running)

(* Journal-then-crash: the entry is applied, observed and persisted
   before [Subctl_crash] is consulted, so every recovery makes at least
   one entry of progress and a crashed sub-controller never loses the
   event it was recording.  The chaos consult happens on the caller
   plan, not the cursor-tracked region plan, so crashing runs journal
   byte-identically to calm ones. *)
let append st r ?host ?decision ~at ev =
  let e =
    { ce_at = at; ce_host = host; ce_event = ev; ce_decision = decision;
      ce_cursor = 0 }
  in
  apply st r e;
  observe st r e;
  let crashed =
    r.alive && fire_chaos st ~vm:(region_name r.r_index) Fault.Subctl_crash
  in
  Sim.Vec.push r.entries { e with ce_cursor = cursor r };
  if crashed then begin
    r.alive <- false;
    Hypertp.Otrace.instant st.obs ~at ?parent:st.root_span ~track:"root"
      ~attrs:
        [ ("region", region_name r.r_index);
          ("incarnation", string_of_int r.incarnation) ]
      "subctl:crashed";
    Hypertp.Otrace.count st.metrics
      ~labels:[ ("engine", "controlplane"); ("region", region_name r.r_index) ]
      "hypertp_ctl_subctl_crashes_total";
    raise Subctl_died
  end

(* --- derived logical events ---

   A region's future is a pure function of its journal-applied state:
   each running host carries exactly one next event at a derived
   absolute time, and an open breaker carries its reopen instant.  The
   dispatcher and crash catch-up both consume the same derivation in
   the same total order (time, kind, region, host), which is what makes
   recovery timeline-neutral. *)

type host_ev = Hv_flapleg | Hv_fail of manifestation | Hv_complete | Hv_straggler

type raction = R_reopen | R_host of int * host_ev

let kind_reopen = 1
let kind_host = 2

let next_of_running st r i ra =
  let name = host_name r.r_index i in
  let from span = Sim.Time.add ra.ra_started span in
  match ra.ra_step with
  | Inplace -> (
    let d =
      match ra.ra_decision with
      | Some d -> d
      | None ->
        Hypertp_error.raise_error ~site:"Controlplane"
          "in-place attempt without decision"
    in
    if d.d_timeout then (from st.deadline, Hv_straggler)
    else if d.d_flap then
      if ra.ra_flapped then
        (from (Sim.Time.scale flap_final_frac st.expected), Hv_fail Flap)
      else (from (Sim.Time.scale flap_leg1_frac st.expected), Hv_flapleg)
    else if d.d_crash then
      (from (Sim.Time.scale crash_frac st.expected), Hv_fail Crash)
    else
      (from (Sim.Time.scale (host_jitter st.cfg name) st.expected), Hv_complete))
  | Drain ->
    if coin st.cfg "drain" name st.cfg.drain_flakiness then
      (from (Sim.Time.scale drain_fail_frac st.drain_span), Hv_fail Crash)
    else (from st.drain_span, Hv_complete)

(* Minimum pending logical event of one region, keyed for the global
   comparator. *)
let region_candidate st r =
  if r.finished_at <> None then None
  else begin
    let best = ref None in
    let consider t kind host act =
      match !best with
      | Some (t', kind', host', _)
        when Sim.Time.(t' < t)
             || (Sim.Time.equal t' t
                && (kind' < kind || (kind' = kind && host' <= host))) ->
        ()
      | _ -> best := Some (t, kind, host, act)
    in
    (match r.breaker with
    | B_open_until u -> consider u kind_reopen (-1) R_reopen
    | B_closed | B_half_open -> ());
    Array.iteri
      (fun i h ->
        match h with
        | H_running ra ->
          let t, ev = next_of_running st r i ra in
          consider t kind_host i (R_host (i, ev))
        | _ -> ())
      r.hstates;
    !best
  end

(* --- live execution: settle + admission --- *)

let rec settle st r ~at =
  (* 1. Ladder escalations: a failed in-place attempt drains next.
     Escalation keeps the host's admission slot and ignores the breaker.
     The work-list is drained sorted; the state guard skips entries a
     replay re-pushed for hosts already escalated. *)
  let drainable = List.sort compare r.needs_drain in
  r.needs_drain <- [];
  List.iter
    (fun i -> if r.hstates.(i) = H_failed_needs_drain then admit st r i Drain ~at)
    drainable;
  (* 2. Breaker transitions. *)
  (match r.breaker with
  | B_closed | B_half_open ->
    let fails = List.length (List.filter not r.window) in
    let rate = float_of_int fails /. float_of_int st.cfg.breaker_window in
    if
      (r.breaker = B_half_open && r.half_failed)
      || (fails > 0 && rate >= st.cfg.breaker_threshold)
    then append st r ~at Breaker_opened
    else if
      r.breaker = B_half_open && r.half_successes >= st.cfg.breaker_window
    then append st r ~at Breaker_closed
  | B_open_until _ -> ());
  (* 3. Admission: fill free slots lowest-index first unless the breaker
     is open.  [next_pending] is a monotone cursor — a host never
     returns to [H_pending]. *)
  let n = Array.length r.hstates in
  let skip () =
    while r.next_pending < n && r.hstates.(r.next_pending) <> H_pending do
      r.next_pending <- r.next_pending + 1
    done
  in
  (match r.breaker with
  | B_open_until _ -> ()
  | B_closed | B_half_open ->
    skip ();
    while r.next_pending < n && r.running < r.limit do
      admit st r r.next_pending Inplace ~at;
      skip ()
    done);
  skip ();
  (* 4. Region end: every host terminal. *)
  if r.running = 0 && r.next_pending >= n && r.n_done = n && r.finished_at = None
  then append st r ~at Region_finished

and admit st r i step ~at =
  let name = host_name r.r_index i in
  let decision =
    match step with
    | Inplace ->
      (* Always consult all three sites in a fixed order so the derived
         plan's probability stream stays aligned across fault plans. *)
      let d_flap = fire_hplan r ~vm:name Fault.Host_flap in
      let d_crash = fire_hplan r ~vm:name Fault.Host_crash in
      let d_timeout = fire_hplan r ~vm:name Fault.Host_timeout in
      Some { d_flap; d_crash; d_timeout }
    | Drain -> None
  in
  append st r ~host:name ?decision ~at (Admitted step)

(* Process one derived logical event of one region, stamping its derived
   time — the dispatcher calls this at [at] on the engine clock, crash
   catch-up calls it later with the same stamp, and the journal cannot
   tell the difference. *)
let process_raction st r ~at act =
  match act with
  | R_reopen -> (
    match r.breaker with
    | B_open_until _ ->
      append st r ~at Breaker_half_opened;
      settle st r ~at
    | B_closed | B_half_open -> ())
  | R_host (i, hv) -> (
    let name = host_name r.r_index i in
    match r.hstates.(i) with
    | H_running ra -> (
      match hv with
      | Hv_flapleg ->
        (* First leg: the host fails, then recovers.  Not an attempt
           outcome — it must not count toward the breaker. *)
        append st r ~host:name ~at Flap_failure
      | Hv_straggler ->
        append st r ~host:name ~at Straggler_cancelled;
        settle st r ~at
      | Hv_fail m ->
        append st r ~host:name ~at
          (Attempt_failed { step = ra.ra_step; manifestation = m });
        settle st r ~at
      | Hv_complete ->
        append st r ~host:name ~at (Attempt_completed ra.ra_step);
        settle st r ~at)
    | _ ->
      Hypertp_error.raise_error ~site:"Controlplane"
        "derived event for a host not running")

(* --- journal replay (recovery and leader handoff) --- *)

let reset_region st r =
  Array.fill r.hstates 0 (Array.length r.hstates) H_pending;
  Array.fill r.attempts 0 (Array.length r.attempts) 0;
  Array.fill r.manifests 0 (Array.length r.manifests) [];
  r.breaker <- B_closed;
  r.window <- [];
  r.half_successes <- 0;
  r.half_failed <- false;
  r.trips <- 0;
  r.granted <- 0;
  r.limit <- r.base_limit;
  r.running <- 0;
  r.next_pending <- 0;
  r.needs_drain <- [];
  r.n_done <- 0;
  r.finished_at <- None;
  r.hplan <- derive_hplan st.chaos r.r_index

(* Replay a region journal from scratch: rebuild the volatile state and
   re-validate every entry against a freshly derived region fault plan.
   [Crash_during_resume] is consulted once per replayed entry — it kills
   the recovering controller (the root), aborting the incarnation. *)
let replay st r ~emit =
  reset_region st r;
  let rname = region_name r.r_index in
  let plan_seed () =
    match r.hplan with Some f -> Fault.seed f | None -> 0L
  in
  let entry_no = ref 0 in
  Sim.Vec.iter
    (fun e ->
      incr entry_no;
      if fire_chaos st ~vm:rname Fault.Crash_during_resume then begin
        Hypertp.Otrace.instant st.obs ~at:e.ce_at ?parent:st.root_span
          ~track:"root"
          ~attrs:[ ("region", rname); ("entry", string_of_int !entry_no) ]
          "crash_during_resume";
        Hypertp.Otrace.count st.metrics
          ~labels:[ ("engine", "controlplane"); ("region", rname) ]
          "hypertp_ctl_resume_crashes_total";
        raise Root_died
      end;
      (match (e.ce_event, e.ce_host, e.ce_decision) with
      | Admitted Inplace, Some h, Some d ->
        let f_flap = fire_hplan r ~vm:h Fault.Host_flap in
        let f_crash = fire_hplan r ~vm:h Fault.Host_crash in
        let f_timeout = fire_hplan r ~vm:h Fault.Host_timeout in
        if
          r.hplan <> None
          && (f_flap <> d.d_flap || f_crash <> d.d_crash
            || f_timeout <> d.d_timeout)
        then
          Hypertp_error.raise_errorf ~site:"Controlplane.resume"
            ~hint:
              "resume with the fault plan the crashed run used: region \
               plans derive from its seed, so a different seed or \
               injection list decides host faults differently"
            "region %s journal entry %d (host %s admission at %s) disagrees \
             with the derived fault plan (seed %Ld)"
            rname !entry_no h (Sim.Time.to_string e.ce_at) (plan_seed ())
      | Admitted Inplace, _, None ->
        Hypertp_error.raise_errorf ~site:"Controlplane.resume"
          "region %s journal entry %d: in-place admission without decision"
          rname !entry_no
      | _ -> ());
      apply st r e;
      if emit then observe st r e;
      if r.hplan <> None && cursor r <> e.ce_cursor then
        Hypertp_error.raise_errorf ~site:"Controlplane.resume"
          ~hint:
            "every earlier entry matched, so the fault specs (or seed) \
             differ from the crashed run's"
          "region %s journal entry %d (%s at %s): fault-plan cursor \
           diverged — the journal records %d fire decisions, the replayed \
           plan took %d"
          rname !entry_no
          (match e.ce_host with Some h -> "host " ^ h | None -> "region")
          (Sim.Time.to_string e.ce_at) e.ce_cursor (cursor r))
    r.entries

(* Recover a sub-controller at engine time [upto]: replay the journal,
   finish whatever settle the crash interrupted (stamped at the last
   entry), then catch up — process the backlog of derived events with
   stamps strictly below [upto], each at its original stamp.  If the
   fresh incarnation crashes again mid-recovery the root restarts it
   immediately (journal-then-crash guarantees an entry of progress per
   attempt, so this terminates); only [Crash_during_resume] escapes, by
   killing the root itself. *)
let recover st r ~upto ~spurious =
  let first = ref true in
  let again = ref true in
  while !again do
    r.incarnation <- r.incarnation + 1;
    r.alive <- false;
    let kind = if !first && spurious then "spurious" else "crash" in
    first := false;
    Hypertp.Otrace.instant st.obs ~at:upto ?parent:st.root_span ~track:"root"
      ~attrs:
        [ ("region", region_name r.r_index);
          ("incarnation", string_of_int r.incarnation); ("kind", kind) ]
      "subctl:restart";
    Hypertp.Otrace.count st.metrics
      ~labels:
        [ ("engine", "controlplane"); ("region", region_name r.r_index);
          ("kind", kind) ]
      "hypertp_ctl_restarts_total";
    try
      replay st r ~emit:false;
      r.alive <- true;
      let t_last =
        match Sim.Vec.last r.entries with
        | Some e -> e.ce_at
        | None -> Sim.Time.zero
      in
      settle st r ~at:t_last;
      let rec catch_up () =
        if r.finished_at = None then
          match region_candidate st r with
          | Some (t, _, _, act) when Sim.Time.(t < upto) ->
            process_raction st r ~at:t act;
            catch_up ()
          | _ -> ()
      in
      catch_up ();
      again := false
    with Subctl_died -> ()
  done;
  r.last_seen <- upto

(* --- results --- *)

let make_bundle st =
  { b_config = st.cfg; b_journals = Array.map (fun r -> r.entries) st.regions }

let make_report st =
  let wall =
    Array.fold_left
      (fun acc r ->
        match r.finished_at with
        | Some t -> Sim.Time.max acc t
        | None ->
          Hypertp_error.raise_error ~site:"Controlplane"
            "report requested before all regions finished")
      Sim.Time.zero st.regions
  in
  let region_reports =
    Array.to_list
      (Array.map
         (fun r ->
           let hosts =
             Array.to_list
               (Array.mapi
                  (fun i h ->
                    let status, done_at =
                      match h with
                      | H_done (Deferred_exposed, _) -> (Deferred_exposed, wall)
                      | H_done (s, at) -> (s, at)
                      | _ ->
                        Hypertp_error.raise_error ~site:"Controlplane"
                          "unfinished host in report"
                    in
                    {
                      h_name = host_name r.r_index i;
                      h_status = status;
                      h_attempts = r.attempts.(i);
                      h_manifestations = List.rev r.manifests.(i);
                      h_done_at = done_at;
                      h_exposure_hours = hours done_at;
                    })
                  r.hstates)
           in
           {
             rr_region = r.r_index;
             rr_hosts = hosts;
             rr_finished_at =
               (match r.finished_at with Some t -> t | None -> assert false);
             rr_breaker_trips = r.trips;
             rr_deferred =
               List.filter_map
                 (fun h ->
                   if h.h_status = Deferred_exposed then Some h.h_name
                   else None)
                 hosts;
           })
         st.regions)
  in
  let all_hosts = List.concat_map (fun rr -> rr.rr_hosts) region_reports in
  let count p =
    List.length (List.filter (fun h -> p h.h_status) all_hosts)
  in
  let r =
    {
      cp_cfg = st.cfg;
      cp_regions = region_reports;
      cp_wall_clock = wall;
      cp_exposed_host_hours =
        List.fold_left (fun a h -> a +. h.h_exposure_hours) 0.0 all_hosts;
      cp_baseline_exposed_host_hours =
        float_of_int (st.cfg.regions * st.cfg.hosts_per_region) *. hours wall;
      cp_hosts_inplace = count (( = ) Upgraded_inplace);
      cp_hosts_drained = count (( = ) Drained);
      cp_hosts_exposed = count (( = ) Deferred_exposed);
    }
  in
  let labels = [ ("engine", "controlplane") ] in
  Hypertp.Otrace.gauge_set st.metrics ~labels "hypertp_ctl_exposed_host_hours"
    r.cp_exposed_host_hours;
  Hypertp.Otrace.gauge_set st.metrics ~labels
    "hypertp_ctl_wall_clock_seconds"
    (Sim.Time.to_sec_f r.cp_wall_clock);
  Hypertp.Otrace.finish st.obs st.root_span ~at:wall;
  st.root_span <- None;
  r

type run_result = Finished of report * bundle | Crashed of bundle

(* --- the root supervisor: dispatcher + heartbeats --- *)

type ctx = { st : st; eng : Sim.Engine.t }

let make_ctx st = { st; eng = Sim.Engine.create () }

type gaction = G_realloc of int | G_region of int * raction

(* Minimum pending derived event across the whole fleet, in the total
   order (time, kind, region, host) with reallocation first. *)
let global_next st =
  if all_finished st then None
  else begin
    let best = ref None in
    let consider t kind region host act =
      match !best with
      | Some (t', k', r', h', _)
        when Sim.Time.(t' < t)
             || (Sim.Time.equal t' t
                && (k' < kind
                   || (k' = kind && (r' < region || (r' = region && h' <= host)))))
        ->
        ()
      | _ -> best := Some (t, kind, region, host, act)
    in
    Array.iteri
      (fun j r ->
        (match r.finished_at with
        | Some tf when not st.realloc_done.(j) ->
          consider (Sim.Time.add tf st.cfg.realloc_lag) 0 j (-1) (G_realloc j)
        | _ -> ());
        if r.alive then
          match region_candidate st r with
          | Some (t, kind, host, act) ->
            consider t kind j host (G_region (j, act))
          | None -> ())
      st.regions;
    !best
  end

(* A finished region's slots arrive [realloc_lag] after its finish
   stamp.  Reconcile-on-read: a dead region's journal may be missing
   derived events (including its own finish) that logically precede
   this reallocation, so recover every dead region before reading who
   is still unfinished.  The grant is durable — a [Limit_raised] entry
   in the recipient's journal — so a leader handoff re-derives the
   ledger with no root-private state. *)
let process_realloc st ~at j =
  st.realloc_done.(j) <- true;
  Array.iter
    (fun r ->
      if (not r.alive) && r.finished_at = None then
        recover st r ~upto:at ~spurious:false)
    st.regions;
  match Array.find_opt (fun r -> r.finished_at = None) st.regions with
  | None -> ()
  | Some recipient -> (
    let slots = full_limit st.regions.(j) in
    try
      append st recipient ~at (Limit_raised { from_region = j; slots });
      settle st recipient ~at
    with Subctl_died -> ())

let rec arm_dispatch ctx =
  let st = ctx.st in
  st.dispatch_gen <- st.dispatch_gen + 1;
  let gen = st.dispatch_gen in
  match global_next st with
  | None -> ()
  | Some (at, _, _, _, act) ->
    Sim.Engine.schedule_at ctx.eng at (fun () ->
        if st.dispatch_gen = gen then begin
          (match act with
          | G_realloc j -> process_realloc st ~at j
          | G_region (ridx, ract) -> (
            let r = st.regions.(ridx) in
            if r.alive then
              try process_raction st r ~at ract with Subctl_died -> ()));
          arm_dispatch ctx
        end)

(* One root heartbeat tick: consult [Root_crash], collect heartbeats
   (dropping them through active partitions, arming new partitions via
   [Ctl_partition]), then detect and recover any sub-controller silent
   past the timeout. *)
let tick ctx () =
  let st = ctx.st in
  if all_finished st then `Stop
  else begin
    let now = Sim.Engine.now ctx.eng in
    if fire_chaos st ~vm:"root" Fault.Root_crash then begin
      Hypertp.Otrace.instant st.obs ~at:now ?parent:st.root_span ~track:"root"
        "root:crashed";
      Hypertp.Otrace.count st.metrics
        ~labels:[ ("engine", "controlplane") ]
        "hypertp_ctl_root_crashes_total";
      raise Root_died
    end;
    Array.iter
      (fun r ->
        if r.finished_at = None && r.alive then begin
          if fire_chaos st ~vm:(region_name r.r_index) Fault.Ctl_partition
          then begin
            let u = Sim.Rng.float st.partition_rng.(r.r_index) 1.0 in
            r.partitioned_until <-
              Sim.Time.add now
                (Sim.Time.scale (1.0 +. (2.0 *. u)) st.cfg.heartbeat_timeout);
            Hypertp.Otrace.instant st.obs ~at:now ?parent:st.root_span
              ~track:"root"
              ~attrs:
                [ ("region", region_name r.r_index);
                  ("heals_at", Sim.Time.to_string r.partitioned_until) ]
              "ctl:partitioned";
            Hypertp.Otrace.count st.metrics
              ~labels:
                [ ("engine", "controlplane");
                  ("region", region_name r.r_index) ]
              "hypertp_ctl_partitions_total"
          end;
          if Sim.Time.(r.partitioned_until <= now) then r.last_seen <- now
        end)
      st.regions;
    let recovered = ref false in
    Array.iter
      (fun r ->
        if
          r.finished_at = None
          && Sim.Time.(st.cfg.heartbeat_timeout < diff now r.last_seen)
        then begin
          recover st r ~upto:now ~spurious:r.alive;
          recovered := true
        end)
      st.regions;
    if !recovered then arm_dispatch ctx;
    `Continue
  end

let drive ctx =
  Sim.Engine.schedule_every ctx.eng ctx.st.cfg.heartbeat_every (tick ctx);
  try
    arm_dispatch ctx;
    Sim.Engine.run ctx.eng;
    Finished (make_report ctx.st, make_bundle ctx.st)
  with Root_died -> Crashed (make_bundle ctx.st)

let run ?ctx:run_ctx ?fault ?obs ?metrics cfg =
  let c = Hypertp.Ctx.resolve ?ctx:run_ctx ?fault ?obs ?metrics () in
  validate_config cfg;
  let st =
    make_st ?fault:c.Hypertp.Ctx.fault ?obs:c.Hypertp.Ctx.obs
      ?metrics:c.Hypertp.Ctx.metrics cfg
  in
  let ctx = make_ctx st in
  Array.iter
    (fun r -> try settle st r ~at:Sim.Time.zero with Subctl_died -> ())
    st.regions;
  drive ctx

let resume ?ctx:run_ctx ?fault ?obs ?metrics bundle =
  let c = Hypertp.Ctx.resolve ?ctx:run_ctx ?fault ?obs ?metrics () in
  validate_config bundle.b_config;
  let st =
    make_st ?fault:c.Hypertp.Ctx.fault ?obs:c.Hypertp.Ctx.obs
      ?metrics:c.Hypertp.Ctx.metrics bundle.b_config
  in
  Array.iteri
    (fun i r ->
      r.entries <-
        Sim.Vec.of_list dummy_entry (Sim.Vec.to_list bundle.b_journals.(i)))
    st.regions;
  let ctx = make_ctx st in
  Hypertp.Otrace.instant st.obs ~at:Sim.Time.zero ?parent:st.root_span
    ~track:"root" "leader:handoff";
  Hypertp.Otrace.count st.metrics
    ~labels:[ ("engine", "controlplane") ]
    "hypertp_ctl_handoffs_total";
  try
    (* Leader handoff: the new root's entire view is re-derived from the
       sub-journals — replay them all (re-emitting the merged timeline),
       rebuild the reallocation ledger from the durable [Limit_raised]
       grants, and finish whatever settle each crash interrupted. *)
    Array.iter (fun r -> replay st r ~emit:true) st.regions;
    Array.iter
      (fun r ->
        Sim.Vec.iter
          (fun e ->
            match e.ce_event with
            | Limit_raised { from_region; _ } ->
              st.realloc_done.(from_region) <- true
            | _ -> ())
          r.entries)
      st.regions;
    Array.iter
      (fun r ->
        if r.finished_at = None then begin
          let t_last =
            match Sim.Vec.last r.entries with
            | Some e -> e.ce_at
            | None -> Sim.Time.zero
          in
          try settle st r ~at:t_last with Subctl_died -> ()
        end)
      st.regions;
    drive ctx
  with Root_died -> Crashed (make_bundle st)

let run_to_completion ?ctx ?fault ?obs ?metrics cfg =
  let c = Hypertp.Ctx.resolve ?ctx ?fault ?obs ?metrics () in
  let fault = c.Hypertp.Ctx.fault
  and obs = c.Hypertp.Ctx.obs
  and metrics = c.Hypertp.Ctx.metrics in
  (* The chaos plan is passed through as-is (not restarted), so an
     Nth_hit on a control-plane site fires once across the whole
     run/resume chain. *)
  let rec go = function
    | Finished (report, _) -> report
    | Crashed b -> go (resume ?fault ?obs ?metrics b)
  in
  go (run ?fault ?obs ?metrics cfg)

(* --- rendering + serialisation --- *)

let summary r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "controlplane: %d regions x %d hosts, global concurrency %d, wall %s\n"
       r.cp_cfg.regions r.cp_cfg.hosts_per_region r.cp_cfg.global_concurrency
       (Sim.Time.to_string r.cp_wall_clock));
  List.iter
    (fun rr ->
      let c s = List.length (List.filter (fun h -> h.h_status = s) rr.rr_hosts) in
      Buffer.add_string buf
        (Printf.sprintf
           "region %d: finished %s | inplace %d drained %d exposed %d | \
            breaker trips %d\n"
           rr.rr_region
           (Sim.Time.to_string rr.rr_finished_at)
           (c Upgraded_inplace) (c Drained) (c Deferred_exposed)
           rr.rr_breaker_trips))
    r.cp_regions;
  Buffer.add_string buf
    (Printf.sprintf
       "fleet: inplace %d drained %d exposed %d | exposed-host-hours %.6f \
        (baseline %.6f)\n"
       r.cp_hosts_inplace r.cp_hosts_drained r.cp_hosts_exposed
       r.cp_exposed_host_hours r.cp_baseline_exposed_host_hours);
  Buffer.contents buf

let merged_to_string b =
  let items = ref [] in
  Array.iteri
    (fun ridx j ->
      let seq = ref 0 in
      Sim.Vec.iter
        (fun e ->
          items := (e.ce_at, ridx, !seq, e) :: !items;
          incr seq)
        j)
    b.b_journals;
  let sorted =
    List.sort
      (fun (t1, r1, s1, _) (t2, r2, s2, _) ->
        match Sim.Time.compare t1 t2 with
        | 0 -> ( match compare r1 r2 with 0 -> compare s1 s2 | c -> c)
        | c -> c)
      (List.rev !items)
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (t, ridx, _, e) ->
      Buffer.add_string buf
        (Printf.sprintf "t=%d r%d %s %s\n" (Sim.Time.to_ns t) ridx
           (match e.ce_host with Some h -> h | None -> "-")
           (event_label e.ce_event)))
    sorted;
  Buffer.contents buf

let bundle_magic = "hypertp-controlplane-bundle v1"

let entry_line buf e =
  let kind =
    match e.ce_event with
    | Admitted step -> "adm step=" ^ step_to_string step
    | Flap_failure -> "flapleg"
    | Straggler_cancelled -> "strag"
    | Attempt_failed { step; manifestation } ->
      Printf.sprintf "fail step=%s man=%s" (step_to_string step)
        (man_to_string manifestation)
    | Attempt_completed step -> "done step=" ^ step_to_string step
    | Breaker_opened -> "bopen"
    | Breaker_half_opened -> "bhalf"
    | Breaker_closed -> "bclosed"
    | Limit_raised { from_region; slots } ->
      Printf.sprintf "raise from=%d slots=%d" from_region slots
    | Region_finished -> "rfin"
  in
  let decision =
    match e.ce_decision with
    | Some d ->
      Printf.sprintf " flap=%d crash=%d timeout=%d" (Bool.to_int d.d_flap)
        (Bool.to_int d.d_crash) (Bool.to_int d.d_timeout)
    | None -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "e at=%d host=%s %s%s cursor=%d\n" (Sim.Time.to_ns e.ce_at)
       (match e.ce_host with Some h -> h | None -> "-")
       kind decision e.ce_cursor)

let config_line (c : config) =
  Printf.sprintf
    "config regions=%d hosts=%d vms=%d conc=%d straggler=%.17g window=%d \
     threshold=%.17g cooldown_ns=%d jitter=%.17g drain=%.17g hb_every_ns=%d \
     hb_timeout_ns=%d lag_ns=%d seed=%Ld"
    c.regions c.hosts_per_region c.vms_per_host c.global_concurrency
    c.straggler_factor c.breaker_window c.breaker_threshold
    (Sim.Time.to_ns c.breaker_cooldown)
    c.jitter_pct c.drain_flakiness
    (Sim.Time.to_ns c.heartbeat_every)
    (Sim.Time.to_ns c.heartbeat_timeout)
    (Sim.Time.to_ns c.realloc_lag)
    c.seed

let bundle_to_string b =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (bundle_magic ^ "\n");
  Buffer.add_string buf (config_line b.b_config ^ "\n");
  Array.iteri
    (fun i j ->
      Buffer.add_string buf
        (Printf.sprintf "region idx=%d entries=%d\n" i (Sim.Vec.length j));
      Sim.Vec.iter (entry_line buf) j)
    b.b_journals;
  Buffer.contents buf

exception Parse of string

let bundle_of_string s =
  let fail msg = raise (Parse msg) in
  let kv tok =
    match String.index_opt tok '=' with
    | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
    | None -> None
  in
  let fields line = List.filter_map kv (String.split_on_char ' ' line) in
  let get fs k =
    match List.assoc_opt k fs with
    | Some v -> v
    | None -> fail (Printf.sprintf "missing field %S" k)
  in
  let int_f fs k =
    match int_of_string_opt (get fs k) with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad integer in field %S" k)
  in
  let float_f fs k =
    match float_of_string_opt (get fs k) with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad float in field %S" k)
  in
  let step_of fs =
    match get fs "step" with
    | "inplace" -> Inplace
    | "drain" -> Drain
    | other -> fail (Printf.sprintf "unknown step %S" other)
  in
  let man_of fs =
    match get fs "man" with
    | "crash" -> Crash
    | "timeout" -> Timeout
    | "flap" -> Flap
    | other -> fail (Printf.sprintf "unknown manifestation %S" other)
  in
  let kinds =
    [ "adm"; "flapleg"; "strag"; "fail"; "done"; "bopen"; "bhalf"; "bclosed";
      "raise"; "rfin" ]
  in
  try
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
    in
    match lines with
    | magic :: cfg_line :: rest ->
      if magic <> bundle_magic then
        fail (Printf.sprintf "bad magic %S (want %S)" magic bundle_magic);
      let fs = fields cfg_line in
      let config =
        {
          regions = int_f fs "regions";
          hosts_per_region = int_f fs "hosts";
          vms_per_host = int_f fs "vms";
          global_concurrency = int_f fs "conc";
          straggler_factor = float_f fs "straggler";
          breaker_window = int_f fs "window";
          breaker_threshold = float_f fs "threshold";
          breaker_cooldown = Sim.Time.ns (int_f fs "cooldown_ns");
          jitter_pct = float_f fs "jitter";
          drain_flakiness = float_f fs "drain";
          heartbeat_every = Sim.Time.ns (int_f fs "hb_every_ns");
          heartbeat_timeout = Sim.Time.ns (int_f fs "hb_timeout_ns");
          realloc_lag = Sim.Time.ns (int_f fs "lag_ns");
          seed =
            (match Int64.of_string_opt (get fs "seed") with
            | Some v -> v
            | None -> fail "bad seed");
        }
      in
      if config.regions < 1 then fail "config has no regions";
      let journals =
        Array.init config.regions (fun _ -> Sim.Vec.create dummy_entry)
      in
      let current = ref (-1) in
      List.iter
        (fun line ->
          if String.length line > 7 && String.sub line 0 7 = "region " then begin
            let fs = fields line in
            let idx = int_f fs "idx" in
            if idx < 0 || idx >= config.regions then
              fail (Printf.sprintf "region index %d out of range" idx);
            current := idx
          end
          else if String.length line > 2 && String.sub line 0 2 = "e " then begin
            if !current < 0 then fail "journal entry before any region header";
            let toks = String.split_on_char ' ' line in
            let fs = fields line in
            let kind =
              match List.find_opt (fun t -> List.mem t kinds) toks with
              | Some k -> k
              | None -> fail (Printf.sprintf "no event kind in line %S" line)
            in
            let event =
              match kind with
              | "adm" -> Admitted (step_of fs)
              | "flapleg" -> Flap_failure
              | "strag" -> Straggler_cancelled
              | "fail" ->
                Attempt_failed { step = step_of fs; manifestation = man_of fs }
              | "done" -> Attempt_completed (step_of fs)
              | "bopen" -> Breaker_opened
              | "bhalf" -> Breaker_half_opened
              | "bclosed" -> Breaker_closed
              | "raise" ->
                Limit_raised
                  { from_region = int_f fs "from"; slots = int_f fs "slots" }
              | "rfin" -> Region_finished
              | _ -> assert false
            in
            let decision =
              match List.assoc_opt "flap" fs with
              | Some _ ->
                Some
                  {
                    d_flap = int_f fs "flap" <> 0;
                    d_crash = int_f fs "crash" <> 0;
                    d_timeout = int_f fs "timeout" <> 0;
                  }
              | None -> None
            in
            Sim.Vec.push
              journals.(!current)
              {
                ce_at = Sim.Time.ns (int_f fs "at");
                ce_host =
                  (match get fs "host" with "-" -> None | h -> Some h);
                ce_event = event;
                ce_decision = decision;
                ce_cursor = int_f fs "cursor";
              }
          end
          else fail (Printf.sprintf "unparseable line %S" line))
        rest;
      Ok { b_config = config; b_journals = journals }
    | _ -> fail "truncated bundle (want magic + config lines)"
  with Parse msg -> Error msg
