(** Nested page tables (EPT / p2m), the bulkiest hypervisor-dependent
    part of VM_i State.

    Structure and content are dictated by the processor vendor, but each
    hypervisor allocates and manages its own instance — so NPTs are
    rebuilt from the UISR memory map at restore time, never copied
    (section 3.1).  Table frames come from host memory and are {e not}
    preserved across the micro-reboot. *)

type t

val table_frames_needed :
  guest_frames:int -> page_kind:Hw.Units.page_kind -> int
(** 4-level x86-64 paging: with 2 MiB guest pages the leaf level is
    elided (512x fewer table pages). *)

val build :
  pmem:Hw.Pmem.t -> guest_frames:int -> page_kind:Hw.Units.page_kind ->
  metadata_factor:float -> t
(** [metadata_factor >= 1.0] models per-hypervisor bookkeeping around
    the architectural tables (Xen's p2m auditing structures are heavier
    than KVM's). *)

val frames : t -> int
val bytes : t -> Hw.Units.bytes_
val free : t -> pmem:Hw.Pmem.t -> unit
val is_freed : t -> bool
