lib/cluster/nova.ml: Bool Float Hashtbl Hv Hw Hypertp List String Vmstate
