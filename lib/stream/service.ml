(* The CVE-stream campaign service: a fleet living under years of
   vulnerability traffic.

   The fleet is three static populations (hosts whose *home*
   hypervisor is Xen, KVM or bhyve).  A daemon loop on {!Sim.Engine}
   ticks every [batch_days], drains the arrivals the generator put
   before now, and opens one *episode* per (critical CVE x affected
   population).  The policy prices two mitigations in exposed
   host-hours — wait out the patch delay, or run a supervised
   {!Cluster.Campaign} moving the whole population to the advised safe
   hypervisor — and commits the cheaper one.  The campaign simulation
   priced at decision time *is* the execution when chosen: the same
   report's per-host completion times, stretched by [tempo] into
   calendar days, become the hosts' coverage times.

   Contention: campaigns on one population serialise through
   [p_free_at] (a queued campaign starts when the population frees),
   so no host is ever double-booked; campaigns on different
   populations overlap freely.  A critical arrival that finds its
   population busy may *preempt* (config flag or the
   {!Fault.Campaign_preempt} site): every in-flight campaign on the
   population is truncated at now, its not-yet-covered hosts released
   back to exposure, and the new campaign books from now.

   Everything is journaled (with the fault-plan cursor, like
   {!Cluster.Campaign}): a {!Fault.Controller_crash} kills the service
   mid-stream and {!resume} replays the journal against a restarted
   plan, re-validating every entry, then continues to a report
   byte-identical to the uninterrupted run's. *)

type mix = { xen_hosts : int; kvm_hosts : int; bhyve_hosts : int }

type config = {
  years : float;
  mix : mix;
  vms_per_host : int;
  rate_per_year : float;
  critical_fraction : float;
  coordinated_fraction : float;
  policy : Policy.kind;
  tempo : float;
  concurrency : int;
  inplace_fraction : float;
  batch_days : float;
  preempt : bool;
  seed : int64;
  track_bookings : bool;
}

let default_config =
  {
    years = 5.0;
    mix = { xen_hosts = 20; kvm_hosts = 16; bhyve_hosts = 0 };
    vms_per_host = 4;
    rate_per_year = 14.0;
    critical_fraction = 0.45;
    coordinated_fraction = 0.3;
    policy = Policy.Cost_aware;
    tempo = 40.0;
    concurrency = 4;
    inplace_fraction = 1.0;
    batch_days = 0.25;
    preempt = false;
    seed = 0xCAFEL;
    track_bookings = false;
  }

type booking = { b_episode : int; mutable b_start : float; mutable b_end : float }

type report = {
  r_config : config;
  cves_total : int;
  criticals : int;
  mediums : int;
  episodes : int;  (** critical (CVE x affected population) pairs *)
  campaigns : int;
  preemptions : int;
  released_hosts : int;
  exposed_host_hours : float;
  medium_exposed_host_hours : float;
  uncovered_critical : int;
  virtual_days : float;
  journal_entries : int;
  bookings : (string * (int * float * float) list) list;
      (** per population, chronological; empty unless [track_bookings] *)
}

type journal = { j_config : config; j_entries : string list }

let journal_config j = j.j_config
let journal_length j = List.length j.j_entries

type run_result = Finished of report * journal | Crashed of journal

let site = "Stream.Service"

let validate cfg =
  let bad fmt = Hypertp_error.raise_errorf ~site fmt in
  if cfg.years <= 0.0 then bad "years must be positive";
  if cfg.vms_per_host < 1 then bad "vms_per_host must be at least 1";
  if cfg.rate_per_year <= 0.0 then bad "rate_per_year must be positive";
  if cfg.tempo <= 0.0 then bad "tempo must be positive";
  if cfg.concurrency < 1 then bad "concurrency must be at least 1";
  if cfg.batch_days <= 0.0 then bad "batch_days must be positive";
  if cfg.inplace_fraction < 0.0 || cfg.inplace_fraction > 1.0 then
    bad "inplace_fraction outside [0, 1]";
  if cfg.critical_fraction < 0.0 || cfg.critical_fraction > 1.0 then
    bad "critical_fraction outside [0, 1]";
  if cfg.coordinated_fraction < 0.0 || cfg.coordinated_fraction > 1.0 then
    bad "coordinated_fraction outside [0, 1]";
  List.iter
    (fun n ->
      if n < 0 then bad "population sizes must be non-negative";
      if n = 1 then
        bad "a population needs at least 2 hosts (campaigns roll host-by-host)")
    [ cfg.mix.xen_hosts; cfg.mix.kvm_hosts; cfg.mix.bhyve_hosts ]

(* The campaign service models one population per hypervisor, so a
   topology maps onto a mix by region {e name}: regions must be named
   after the repertoire ("xen" / "kvm" / "bhyve"), absent populations
   default to 0.  VM density rides in separately ([vms_per_host] is
   fleet-global here), so only the host counts transfer. *)
let mix_of_topology topology =
  let topology = Cluster.Topology.validate_exn topology in
  Array.fold_left
    (fun mix (r : Cluster.Topology.region) ->
      match r.Cluster.Topology.rg_name with
      | "xen" -> { mix with xen_hosts = r.Cluster.Topology.rg_hosts }
      | "kvm" -> { mix with kvm_hosts = r.Cluster.Topology.rg_hosts }
      | "bhyve" -> { mix with bhyve_hosts = r.Cluster.Topology.rg_hosts }
      | name ->
        Hypertp_error.raise_errorf ~site
          ~hint:"name the topology's regions after the repertoire, e.g. \
                 --topology xen:60:8;kvm:40:8"
          "unknown population %S (the service models xen/kvm/bhyve)" name)
    { xen_hosts = 0; kvm_hosts = 0; bhyve_hosts = 0 }
    (Cluster.Topology.regions topology)

(* {2 Config / journal text round-trip} *)

let config_to_line c =
  Printf.sprintf
    "config years=%.6f xen=%d kvm=%d bhyve=%d vph=%d rate=%.6f crit=%.6f \
     coord=%.6f policy=%s tempo=%.6f conc=%d inplace=%.6f batch=%.6f \
     preempt=%b seed=%Ld track=%b"
    c.years c.mix.xen_hosts c.mix.kvm_hosts c.mix.bhyve_hosts c.vms_per_host
    c.rate_per_year c.critical_fraction c.coordinated_fraction
    (Policy.kind_to_string c.policy)
    c.tempo c.concurrency c.inplace_fraction c.batch_days c.preempt c.seed
    c.track_bookings

let config_of_line line =
  let ( let* ) = Result.bind in
  match String.split_on_char ' ' line with
  | "config" :: kvs ->
    let assoc = ref [] in
    let malformed = ref None in
    List.iter
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i ->
          assoc :=
            ( String.sub kv 0 i,
              String.sub kv (i + 1) (String.length kv - i - 1) )
            :: !assoc
        | None -> malformed := Some kv)
      kvs;
    (match !malformed with
    | Some kv -> Error (Printf.sprintf "malformed config field %S" kv)
    | None ->
      let get k =
        match List.assoc_opt k !assoc with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "config field %s missing" k)
      in
      let num conv k =
        let* v = get k in
        match conv v with
        | Some x -> Ok x
        | None -> Error (Printf.sprintf "config field %s unreadable" k)
      in
      let f = num float_of_string_opt in
      let i = num int_of_string_opt in
      let b = num bool_of_string_opt in
      let* years = f "years" in
      let* xen_hosts = i "xen" in
      let* kvm_hosts = i "kvm" in
      let* bhyve_hosts = i "bhyve" in
      let* vms_per_host = i "vph" in
      let* rate_per_year = f "rate" in
      let* critical_fraction = f "crit" in
      let* coordinated_fraction = f "coord" in
      let* policy = num Policy.kind_of_string "policy" in
      let* tempo = f "tempo" in
      let* concurrency = i "conc" in
      let* inplace_fraction = f "inplace" in
      let* batch_days = f "batch" in
      let* preempt = b "preempt" in
      let* seed = num Int64.of_string_opt "seed" in
      let* track_bookings = b "track" in
      Ok
        {
          years;
          mix = { xen_hosts; kvm_hosts; bhyve_hosts };
          vms_per_host;
          rate_per_year;
          critical_fraction;
          coordinated_fraction;
          policy;
          tempo;
          concurrency;
          inplace_fraction;
          batch_days;
          preempt;
          seed;
          track_bookings;
        })
  | _ -> Error "missing config line"

let magic = "cvestream-journal v1"

let journal_to_string j =
  String.concat "\n"
    ((magic :: config_to_line j.j_config :: j.j_entries) @ [ "" ])

let journal_of_string s =
  match String.split_on_char '\n' s with
  | m :: cfg_line :: rest when String.equal m magic -> (
    match config_of_line cfg_line with
    | Error e -> Error e
    | Ok cfg ->
      let entries =
        List.filter (fun l -> not (String.equal l "")) rest
      in
      Ok { j_config = cfg; j_entries = entries })
  | _ -> Error "not a cvestream journal (bad magic line)"

(* {2 The run} *)

(* Internal per-population state. *)
type pop = {
  p_name : string;
  p_hosts : int;
  mutable p_free_at : float;  (** day the last booked campaign ends *)
  mutable p_active : episode list;
      (** episodes still accruing exposure, newest first *)
  mutable p_inflight : episode list;
      (** campaigns still rolling hosts, newest first — outlives
          [p_active] membership when the patch lands mid-campaign *)
  mutable p_bookings : booking list;  (** newest first *)
}

and episode = {
  e_id : int;
  e_pop : pop;
  e_arrival : float;
  e_patch_cap : float;  (** min(arrival + patch delay, horizon) *)
  mutable e_cover : float option array;
      (** per host: day it left the vulnerable hypervisor; [None] =
          exposed until the patch *)
  mutable e_camp_end : float;
  e_booking : booking option;
}

exception Crash

let derive_seed seed ep_id =
  Int64.logxor seed (Int64.mul (Int64.of_int (ep_id + 1)) 0x9E3779B97F4A7C15L)

let fleet_names = [ "xen"; "kvm"; "bhyve" ]

let run_internal ?fault ?obs ?metrics ~replay cfg =
  validate cfg;
  let horizon = cfg.years *. 365.0 in
  let engine = Sim.Engine.create () in
  let day_to_time d = Sim.Time.of_sec_f (d *. 86400.0) in
  let now_day () = Sim.Time.to_sec_f (Sim.Engine.now engine) /. 86400.0 in
  let now () = Sim.Engine.now engine in
  (* Metrics: the live dashboard. *)
  let m_cves sev =
    Option.map
      (fun m -> Obs.Metrics.counter m ~labels:[ ("severity", sev) ]
           ~help:"CVEs admitted from the stream" "stream_cves_total")
      metrics
  in
  let m_crit = m_cves "critical" and m_med = m_cves "medium" in
  let m_counter name help =
    Option.map (fun m -> Obs.Metrics.counter m ~help name) metrics
  in
  let m_gauge name help =
    Option.map (fun m -> Obs.Metrics.gauge m ~help name) metrics
  in
  let m_campaigns =
    m_counter "stream_campaigns_total" "campaigns committed by the policy"
  in
  let m_preempt =
    m_counter "stream_preemptions_total" "campaigns preempted by later criticals"
  in
  let m_exposed =
    m_gauge "stream_exposed_host_hours" "cumulative critical exposure"
  in
  let m_day = m_gauge "stream_virtual_day" "service clock, virtual days" in
  let inc c = Option.iter (fun c -> Obs.Metrics.inc c) c in
  let gset g v = Option.iter (fun g -> Obs.Metrics.set g v) g in
  (* Journal plumbing: every entry is validated against the replay
     prefix, then the crash site is consulted — but a crash can only
     fire on entries *beyond* the prefix, so a resume replays past the
     original crash point instead of dying there again. *)
  let entries = ref [] in
  let emitted = ref 0 in
  let replay_len = Array.length replay in
  let cursor () =
    match fault with Some p -> Fault.trace_length p | None -> 0
  in
  let emit line =
    if !emitted < replay_len && not (String.equal replay.(!emitted) line) then
      Hypertp_error.raise_errorf ~site:"Stream.Service.resume"
        ~hint:"the journal was recorded under a different config, seed or \
               fault plan"
        "journal mismatch at entry %d: recorded %S, replayed %S" !emitted
        replay.(!emitted) line;
    entries := line :: !entries;
    incr emitted;
    let crashed =
      match fault with
      | Some p -> Fault.fire p Fault.Controller_crash
      | None -> false
    in
    if crashed && !emitted > replay_len then raise Crash
  in
  (* The arrival stream: generated up front (consulting the burst
     site), drained by the batch tick. *)
  let gen_cfg =
    {
      Gen.years = cfg.years;
      rate_per_year = cfg.rate_per_year;
      class_mix = Gen.default.Gen.class_mix;
      critical_fraction = cfg.critical_fraction;
      coordinated_fraction = cfg.coordinated_fraction;
      base_year = Gen.default.Gen.base_year;
      seed = cfg.seed;
    }
  in
  let arrivals = Array.of_list (Gen.generate ?fault gen_cfg) in
  let pops =
    List.filter_map
      (fun (name, hosts) ->
        if hosts = 0 then None
        else
          Some
            { p_name = name; p_hosts = hosts; p_free_at = 0.0; p_active = [];
              p_inflight = []; p_bookings = [] })
      [ ("xen", cfg.mix.xen_hosts); ("kvm", cfg.mix.kvm_hosts);
        ("bhyve", cfg.mix.bhyve_hosts) ]
  in
  (* Totals. *)
  let cves_total = ref 0 in
  let criticals = ref 0 in
  let mediums = ref 0 in
  let n_episodes = ref 0 in
  let campaigns = ref 0 in
  let preemptions = ref 0 in
  let released_hosts = ref 0 in
  let exposed_hh = ref 0.0 in
  let medium_hh = ref 0.0 in
  let uncovered = ref 0 in
  let next_ep = ref 0 in
  (* The campaign backend: the whole population rolls to the advised
     hypervisor under supervision.  Fault-free — stream-level faults
     live at the service layer; the campaign's own jitter comes from
     the derived seed, so the report is a pure function of (config
     seed, episode id) and both the pricing pass and the committed
     execution see the same wall clock. *)
  let simulate_campaign pop ep_id =
    let camp =
      {
        Cluster.Campaign.default_config with
        Cluster.Campaign.nodes = pop.p_hosts;
        vms_per_node = cfg.vms_per_host;
        vm_ram = Hw.Units.gib 1;
        node_ram = Hw.Units.gib (Stdlib.max 8 (4 * cfg.vms_per_host));
        inplace_fraction = cfg.inplace_fraction;
        concurrency = cfg.concurrency;
        jitter_pct = 0.02;
        seed = derive_seed cfg.seed ep_id;
      }
    in
    Cluster.Campaign.run_to_completion camp
  in
  let covers_of start (rep : Cluster.Campaign.report) =
    Array.of_list
      (List.map
         (fun hr ->
           match hr.Cluster.Campaign.hr_status with
           | Cluster.Campaign.Deferred_exposed -> None
           | _ ->
             Some
               (start
               +. cfg.tempo
                  *. Sim.Time.to_sec_f hr.Cluster.Campaign.hr_done_at
                  /. 86400.0))
         rep.Cluster.Campaign.hosts)
  in
  let exposure_from t0 covers patch_cap =
    Array.fold_left
      (fun acc c ->
        let stop =
          match c with Some c -> Float.min c patch_cap | None -> patch_cap
        in
        acc +. (Float.max 0.0 (stop -. t0) *. 24.0))
      0.0 covers
  in
  let wall_days (rep : Cluster.Campaign.report) =
    cfg.tempo *. Sim.Time.to_sec_f rep.Cluster.Campaign.wall_clock /. 86400.0
  in
  let schedule_close ep =
    let target = Sim.Time.max (now ()) (day_to_time ep.e_patch_cap) in
    Sim.Engine.schedule_at engine target (fun () ->
        let hh = exposure_from ep.e_arrival ep.e_cover ep.e_patch_cap in
        exposed_hh := !exposed_hh +. hh;
        gset m_exposed !exposed_hh;
        ep.e_pop.p_active <-
          List.filter (fun e -> e.e_id <> ep.e_id) ep.e_pop.p_active;
        emit
          (Printf.sprintf "C %d %s %.6f %d" ep.e_id ep.e_pop.p_name hh
             (cursor ())))
  in
  let preempt_pop pop t new_ep_id =
    let released = ref 0 in
    (* Truncate every campaign still rolling hosts — including ones
       whose episode already closed (patch landed mid-campaign): their
       hosts are still mid-roll and must not be double-booked. *)
    List.iter
      (fun ep ->
        if ep.e_camp_end > t then begin
          Array.iteri
            (fun i c ->
              match c with
              | Some c when c > t ->
                ep.e_cover.(i) <- None;
                incr released
              | _ -> ())
            ep.e_cover;
          ep.e_camp_end <- t;
          Option.iter
            (fun b ->
              b.b_end <- Float.max b.b_start (Float.min b.b_end t))
            ep.e_booking
        end)
      pop.p_inflight;
    pop.p_inflight <- [];
    pop.p_free_at <- t;
    incr preemptions;
    released_hosts := !released_hosts + !released;
    inc m_preempt;
    Option.iter
      (fun tr ->
        Obs.Tracer.instant tr ~at:(now ()) ~track:("pop:" ^ pop.p_name)
          ~attrs:[ ("released", string_of_int !released) ]
          "preempt")
      obs;
    emit
      (Printf.sprintf "P %d %s %d %d" new_ep_id pop.p_name !released
         (cursor ()))
  in
  let process_episode (ev : Gen.event) pop =
    let t = now_day () in
    let body = ev.Gen.cve.Cve.Nvd.body in
    let patch_cap =
      Float.min (ev.Gen.day +. ev.Gen.cve.Cve.Nvd.patch_delay_days) horizon
    in
    let ep_id = !next_ep in
    incr next_ep;
    incr n_episodes;
    let advice = Cve.Window.advise ~fleet:fleet_names ~current:pop.p_name body in
    let wait_hh =
      float_of_int pop.p_hosts *. Float.max 0.0 (patch_cap -. t) *. 24.0
    in
    (* Price the campaign exactly when a policy might buy it: the
       simulated report is reused as the execution if committed. *)
    let sim =
      match (advice, cfg.policy) with
      | Cve.Window.Transplant_to _, (Policy.Cost_aware | Policy.Transplant_all)
        ->
        Some (simulate_campaign pop ep_id)
      | _ -> None
    in
    let start0 = Float.max t pop.p_free_at in
    let transplant_hh =
      Option.map
        (fun rep -> exposure_from t (covers_of start0 rep) patch_cap)
        sim
    in
    let action = Policy.decide cfg.policy ~advice ~transplant_hh ~wait_hh in
    (match (action, advice) with
    | Policy.Defer, Cve.Window.Transplant_to _ ->
      if
        Policy.scalar_transplant_hh ~hosts:pop.p_hosts
          ~vms_per_host:cfg.vms_per_host ~concurrency:cfg.concurrency
          ~tempo:cfg.tempo
        < wait_hh
      then incr uncovered
    | _ -> ());
    let d_start, d_wall, ep =
      match action with
      | Policy.Transplant _ ->
        let rep = Option.get sim in
        let busy = pop.p_free_at > t in
        let do_preempt =
          busy
          && (cfg.preempt
             ||
             match fault with
             | Some p -> Fault.fire p Fault.Campaign_preempt
             | None -> false)
        in
        if do_preempt then preempt_pop pop t ep_id;
        let start = Float.max t pop.p_free_at in
        let wall = wall_days rep in
        let booking =
          if cfg.track_bookings then
            Some { b_episode = ep_id; b_start = start; b_end = start +. wall }
          else None
        in
        let ep =
          {
            e_id = ep_id;
            e_pop = pop;
            e_arrival = ev.Gen.day;
            e_patch_cap = patch_cap;
            e_cover = covers_of start rep;
            e_camp_end = start +. wall;
            e_booking = booking;
          }
        in
        pop.p_free_at <- start +. wall;
        pop.p_active <- ep :: pop.p_active;
        (* Prune against *now*, not [start]: a queued campaign's start
           is the predecessor's end, and the predecessor is still
           rolling today — dropping it here would hide it from a later
           preemption. *)
        pop.p_inflight <-
          ep :: List.filter (fun e -> e.e_camp_end > t) pop.p_inflight;
        Option.iter (fun b -> pop.p_bookings <- b :: pop.p_bookings) booking;
        incr campaigns;
        inc m_campaigns;
        Option.iter
          (fun tr ->
            ignore
              (Obs.Tracer.span tr ~at:(day_to_time start)
                 ~until:(day_to_time (start +. wall))
                 ~track:("pop:" ^ pop.p_name)
                 ~attrs:[ ("cve", body.Cve.Nvd.id) ]
                 ("campaign:" ^ string_of_int ep_id)))
          obs;
        (start, wall, ep)
      | Policy.Wait | Policy.Defer ->
        ( t,
          0.0,
          {
            e_id = ep_id;
            e_pop = pop;
            e_arrival = ev.Gen.day;
            e_patch_cap = patch_cap;
            e_cover = Array.make pop.p_hosts None;
            e_camp_end = t;
            e_booking = None;
          } )
    in
    let thh =
      match transplant_hh with
      | Some v -> Printf.sprintf "%.6f" v
      | None -> "-"
    in
    emit
      (Printf.sprintf "D %d %s %s %.6f %.6f %s %.6f %d" ep_id pop.p_name
         (Policy.action_to_string action)
         d_start d_wall thh wait_hh (cursor ()));
    schedule_close ep
  in
  let process_arrival (ev : Gen.event) =
    let body = ev.Gen.cve.Cve.Nvd.body in
    incr cves_total;
    (match body.Cve.Nvd.severity with
    | Cve.Cvss.Critical ->
      incr criticals;
      inc m_crit
    | Cve.Cvss.Medium | Cve.Cvss.Low ->
      incr mediums;
      inc m_med);
    emit (Printf.sprintf "A %s %d" (Gen.event_to_string ev) (cursor ()));
    List.iter
      (fun pop ->
        if Cve.Window.affected body pop.p_name then begin
          match body.Cve.Nvd.severity with
          | Cve.Cvss.Critical -> process_episode ev pop
          | Cve.Cvss.Medium | Cve.Cvss.Low ->
            (* Mediums never trigger campaigns (the advise threshold);
               their exposure is accounted on the side. *)
            let patch_cap =
              Float.min
                (ev.Gen.day +. ev.Gen.cve.Cve.Nvd.patch_delay_days)
                horizon
            in
            medium_hh :=
              !medium_hh
              +. float_of_int pop.p_hosts
                 *. Float.max 0.0 (patch_cap -. ev.Gen.day)
                 *. 24.0
        end)
      pops
  in
  let idx = ref 0 in
  Sim.Engine.schedule_every engine
    (day_to_time cfg.batch_days)
    (fun () ->
      let t = now_day () in
      gset m_day t;
      while
        !idx < Array.length arrivals
        && arrivals.(!idx).Gen.day <= t +. 1e-9
      do
        process_arrival arrivals.(!idx);
        incr idx
      done;
      if !idx >= Array.length arrivals then `Stop else `Continue);
  let finish () =
    Sim.Engine.run engine;
    gset m_day horizon;
    gset m_exposed !exposed_hh;
    let bookings =
      List.filter_map
        (fun pop ->
          if not cfg.track_bookings then None
          else
            Some
              ( pop.p_name,
                (* A fully-preempted queued campaign truncates to a
                   zero-length interval: it never ran, so it does not
                   book the population. *)
                List.filter_map
                  (fun b ->
                    if b.b_end > b.b_start then
                      Some (b.b_episode, b.b_start, b.b_end)
                    else None)
                  (List.rev pop.p_bookings) ))
        pops
    in
    let journal = { j_config = cfg; j_entries = List.rev !entries } in
    let report =
      {
        r_config = cfg;
        cves_total = !cves_total;
        criticals = !criticals;
        mediums = !mediums;
        episodes = !n_episodes;
        campaigns = !campaigns;
        preemptions = !preemptions;
        released_hosts = !released_hosts;
        exposed_host_hours = !exposed_hh;
        medium_exposed_host_hours = !medium_hh;
        uncovered_critical = !uncovered;
        virtual_days = horizon;
        journal_entries = List.length journal.j_entries;
        bookings;
      }
    in
    Finished (report, journal)
  in
  try finish ()
  with Crash -> Crashed { j_config = cfg; j_entries = List.rev !entries }

let run ?fault ?obs ?metrics cfg =
  run_internal ?fault ?obs ?metrics ~replay:[||] cfg

let resume ?fault ?obs ?metrics journal =
  let fault = Option.map Fault.restart fault in
  run_internal ?fault ?obs ?metrics
    ~replay:(Array.of_list journal.j_entries)
    journal.j_config

let run_to_completion ?fault ?obs ?metrics cfg =
  let rec go = function
    | Finished (report, journal) -> (report, journal)
    | Crashed journal -> go (resume ?fault ?obs ?metrics journal)
  in
  go (run ?fault ?obs ?metrics cfg)

let report_to_string r =
  String.concat "\n"
    [
      Printf.sprintf "policy=%s hosts=%d/%d/%d vms_per_host=%d years=%.2f"
        (Policy.kind_to_string r.r_config.policy)
        r.r_config.mix.xen_hosts r.r_config.mix.kvm_hosts
        r.r_config.mix.bhyve_hosts r.r_config.vms_per_host r.r_config.years;
      Printf.sprintf
        "cves=%d criticals=%d mediums=%d episodes=%d campaigns=%d \
         preemptions=%d released=%d"
        r.cves_total r.criticals r.mediums r.episodes r.campaigns r.preemptions
        r.released_hosts;
      Printf.sprintf
        "exposed_hh=%.6f medium_exposed_hh=%.6f uncovered_critical=%d \
         journal_entries=%d"
        r.exposed_host_hours r.medium_exposed_host_hours r.uncovered_critical
        r.journal_entries;
    ]

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>%s policy over %.1f virtual years: %d CVEs (%d critical), %d \
     campaigns, %d preemptions;@ exposure %.1f critical host-hours (%.1f \
     medium), %d uncovered@]"
    (Policy.kind_to_string r.r_config.policy)
    r.r_config.years r.cves_total r.criticals r.campaigns r.preemptions
    r.exposed_host_hours r.medium_exposed_host_hours r.uncovered_critical
