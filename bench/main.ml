(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (section 5) from the simulated system, plus the
   section 4.2.5 ablations and Bechamel micro-benchmarks.

   Usage:
     dune exec bench/main.exe            # everything, paper order
     dune exec bench/main.exe -- table4 fig6 fig13
     dune exec bench/main.exe -- --list *)

let targets : (string * string * (unit -> unit)) list =
  [
    ("table1", "vulnerability study (Table 1 + section 2.2)", Bench_tables.table1);
    ("table2", "state mapping + environment (Tables 2-3)", Bench_tables.table2_3);
    ("table4", "migration downtime/time (Table 4)", Bench_tables.table4);
    ("fig6", "InPlaceTP time breakdown (Fig 6)", Bench_figures.fig6);
    ("fig7", "InPlaceTP scalability Xen->KVM (Fig 7)", Bench_figures.fig7);
    ("fig8", "MigrationTP downtime sweeps (Fig 8, with Fig 9)", Bench_figures.fig8_9);
    ("fig9", "total migration time sweeps (Fig 9, with Fig 8)", Bench_figures.fig8_9);
    ("fig10", "InPlaceTP scalability KVM->Xen (Fig 10)", Bench_figures.fig10);
    ("fig11", "Redis timelines (Fig 11)", Bench_figures.fig11);
    ("fig12", "MySQL timelines (Fig 12)", Bench_figures.fig12);
    ("table5", "SPECrate 2017 impact (Table 5)", Bench_tables.table5);
    ("table6", "Darknet iterations (Table 6)", Bench_tables.table6);
    ("fig13", "cluster upgrade (Fig 13)", Bench_figures.fig13);
    ("fig14", "memory overhead (Fig 14)", Bench_figures.fig14);
    ("tcb", "TCB accounting (section 4.4)", Bench_tables.tcb);
    ("memsep", "memory separation (Fig 2)", Bench_figures.memsep);
    ("ablation", "optimisation ablations (section 4.2.5)", Bench_figures.ablation);
    ("repertoire", "all six transplant directions (incl. bhyve)", Bench_figures.repertoire);
    ("fleet", "Fig 1 fleet exposure scenario", Bench_figures.fleet);
    ("campaign", "supervised campaign controller (emits BENCH_campaign.json)",
     Bench_figures.campaign);
    ("scale", "fleet-scale campaign sweep (emits BENCH_scale.json); accepts \
               --hosts N --mode seq|rotated:K|parallel:SxD",
     fun () -> Bench_scale.run ());
    ("shadow", "shadow-host cutover frontier: downtime vs spares vs wire \
                (emits BENCH_shadow.json); accepts --hosts N",
     fun () -> Bench_shadow.run ());
    ("cvestream",
     "CVE-stream policy benchmark: cost-aware vs transplant-all vs defer-all \
      (emits BENCH_cvestream.json); accepts --hosts/--tempo/--conc/--rate/--years",
     fun () -> Bench_cvestream.run ());
    ("controlplane",
     "hierarchical control plane, calm vs crashed (emits \
      BENCH_controlplane.json)", Bench_controlplane.run);
    ("micro", "Bechamel micro-benchmarks", Bench_micro.run);
  ]

(* fig8/fig9 share one generator; the full run invokes it once. *)
let default_order =
  [ "table1"; "table2"; "table4"; "fig6"; "fig7"; "fig8"; "fig10"; "fig11"; "fig12";
    "table5"; "table6"; "fig13"; "fig14"; "tcb"; "memsep"; "ablation";
    "repertoire"; "fleet"; "campaign"; "shadow"; "cvestream"; "controlplane";
    "micro" ]

let run_target name =
  match List.find_opt (fun (n, _, _) -> String.equal n name) targets with
  | Some (_, _, f) -> f ()
  | None ->
    Format.eprintf "unknown target %s; try --list@." name;
    exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "--list" ] ->
    List.iter (fun (n, d, _) -> Format.printf "%-8s %s@." n d) targets
  | "scale" :: (_ :: _ as rest) ->
    (* Single-size mode for CI: bench scale --hosts 1000 --mode parallel:4x4 *)
    let sizes, mode =
      let rec parse sizes mode = function
        | [] -> (sizes, mode)
        | "--hosts" :: v :: tl -> (
          match int_of_string_opt v with
          | Some h when h >= 2 -> parse (Some [ h ]) mode tl
          | _ ->
            Format.eprintf "scale: --hosts expects an integer >= 2@.";
            exit 1)
        | "--mode" :: v :: tl -> (
          match Sim.Shard.of_string v with
          | Ok m -> parse sizes (Some m) tl
          | Error e ->
            Format.eprintf "scale: --mode: %s@." e;
            exit 1)
        | arg :: _ ->
          Format.eprintf
            "usage: scale [--hosts N] [--mode seq|rotated:K|parallel:SxD] \
             (got %s)@."
            arg;
          exit 1
      in
      parse None None rest
    in
    Bench_scale.run ?sizes ?mode ()
  | "cvestream" :: (_ :: _ as rest) ->
    (* Small mode for CI: bench cvestream --hosts 36 --conc 2 --tempo 16000 *)
    let knobs =
      let rec parse k = function
        | [] -> k
        | "--hosts" :: v :: tl -> (
          match int_of_string_opt v with
          | Some h when h >= 2 ->
            parse { k with Bench_cvestream.k_hosts = h } tl
          | _ ->
            Format.eprintf "cvestream: --hosts expects an integer >= 2@.";
            exit 1)
        | "--conc" :: v :: tl -> (
          match int_of_string_opt v with
          | Some c when c >= 1 -> parse { k with Bench_cvestream.k_conc = c } tl
          | _ ->
            Format.eprintf "cvestream: --conc expects a positive integer@.";
            exit 1)
        | "--tempo" :: v :: tl -> (
          match float_of_string_opt v with
          | Some t when t > 0.0 ->
            parse { k with Bench_cvestream.k_tempo = t } tl
          | _ ->
            Format.eprintf "cvestream: --tempo expects a positive float@.";
            exit 1)
        | "--rate" :: v :: tl -> (
          match float_of_string_opt v with
          | Some r when r > 0.0 ->
            parse { k with Bench_cvestream.k_rate = r } tl
          | _ ->
            Format.eprintf "cvestream: --rate expects a positive float@.";
            exit 1)
        | "--years" :: v :: tl -> (
          match float_of_string_opt v with
          | Some y when y > 0.0 ->
            parse { k with Bench_cvestream.k_years = y } tl
          | _ ->
            Format.eprintf "cvestream: --years expects a positive float@.";
            exit 1)
        | arg :: _ ->
          Format.eprintf
            "usage: cvestream [--hosts N] [--conc N] [--tempo F] [--rate F] \
             [--years F] (got %s)@."
            arg;
          exit 1
      in
      parse Bench_cvestream.default_knobs rest
    in
    Bench_cvestream.run ~knobs ()
  | "shadow" :: (_ :: _ as rest) ->
    (* Single-size mode for CI: bench shadow --hosts 200 *)
    let hosts =
      match rest with
      | [ "--hosts"; n ] -> (
        match int_of_string_opt n with
        | Some h when h >= 2 -> h
        | _ ->
          Format.eprintf "shadow: --hosts expects an integer >= 2@.";
          exit 1)
      | _ ->
        Format.eprintf "usage: shadow [--hosts N]@.";
        exit 1
    in
    Bench_shadow.run ~hosts ()
  | [] ->
    Format.printf
      "HyperTP evaluation harness: regenerating every table and figure@.";
    List.iter run_target default_order
  | names -> List.iter run_target names
