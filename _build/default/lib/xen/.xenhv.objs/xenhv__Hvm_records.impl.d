lib/xen/hvm_records.ml: Bytes Char Format Hashtbl Int Int32 Int64 List Reader Uisr Vmstate Writer
