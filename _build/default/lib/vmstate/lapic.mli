(** Local APIC state (one per vCPU).

    Table 2 of the paper maps Xen's LAPIC and LAPIC_REGS records to KVM's
    MSRS and LAPIC_REGS: the architectural content is identical, only the
    container differs — which is exactly what UISR exploits. *)

type t = {
  apic_id : int;
  version : int;
  tpr : int;          (** task priority *)
  ldr : int32;        (** logical destination *)
  dfr : int32;        (** destination format *)
  svr : int32;        (** spurious interrupt vector *)
  isr : int64 array;  (** in-service bitmap, 4 x 64 bits *)
  irr : int64 array;  (** interrupt-request bitmap *)
  tmr : int64 array;  (** trigger-mode bitmap *)
  lvt : int32 array;  (** 7 local vector table entries *)
  timer_dcr : int32;  (** divide configuration *)
  timer_icr : int32;  (** initial count *)
  timer_ccr : int32;  (** current count *)
  enabled : bool;     (** software-enable bit mirrored from SVR *)
}

val generate : Sim.Rng.t -> apic_id:int -> t
val equal : t -> t -> bool

val pending_interrupts : t -> int
(** Number of bits set in IRR — must survive transplant unchanged. *)

val pp : Format.formatter -> t -> unit
