lib/vmstate/mtrr.ml: Array Format Int64 List Option Regs Sim
