(* Growable array ("vector") used by hot paths that previously consed
   lists and reversed them.  OCaml 5.1 has no Stdlib.Dynarray (5.2+),
   so we hand-roll the few operations the simulator needs.

   Elements are stored in [0, len); the backing store doubles on
   overflow.  [push] order is preserved: element [i] was the (i+1)-th
   pushed, so no final [List.rev] is needed. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;  (** padding value for unused slots; never observed *)
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let clear t =
  (* Drop references so the GC can reclaim payloads. *)
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = ref (max 1 (Array.length t.data)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))
let to_array t = Array.sub t.data 0 t.len

let of_list dummy xs =
  let t = create ~capacity:(max 1 (List.length xs)) dummy in
  List.iter (push t) xs;
  t
