(** Discrete-event simulation engine.

    Events are closures scheduled at absolute virtual times and executed
    in time order; ties break in scheduling order, which keeps every run
    deterministic.  Handlers may schedule further events. *)

type t

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero}. *)

val now : t -> Time.t
(** Current virtual time.  Inside a handler, this is the event's time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at e t f] runs [f] when the clock reaches [t].  Raises
    [Invalid_argument] if [t] is in the past. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_after e d f] runs [f] at [now e + d]. *)

(** {1 Cancellable timers}

    A scheduled event cannot be removed from the heap, but a {!timer}
    wraps its closure with a revocable guard: cancelling before the fire
    time turns the event into a no-op.  This is what supervision code
    needs — arm a completion event and a deadline event for the same
    task and cancel whichever loses the race. *)

type timer

val schedule_timer_at : t -> Time.t -> (unit -> unit) -> timer
(** Like {!schedule_at}, but returns a handle that can revoke the
    event. *)

val schedule_timer_after : t -> Time.t -> (unit -> unit) -> timer
(** Like {!schedule_after}, but cancellable. *)

val cancel : timer -> unit
(** Revoke the timer.  A no-op if it already fired or was cancelled. *)

val schedule_every :
  t -> ?start:Time.t -> Time.t -> (unit -> [ `Continue | `Stop ]) -> unit
(** [schedule_every e d f] runs [f] at [start] (default [now e + d]) and
    then every [d] thereafter, until [f] returns [`Stop].  This is the
    heartbeat surface supervision layers are built on: the control
    plane's root supervisor ticks on it to collect sub-controller
    heartbeats and arm detection timeouts.  Each firing counts as one
    engine event; the callback decides continuation, so there is no
    handle to cancel — return [`Stop].  Raises [Invalid_argument] if
    [d] is not strictly positive. *)

val timer_pending : timer -> bool
(** [true] until the timer fires or is cancelled. *)

(** {1 Timer observability}

    Supervision layers want every timer fire and cancellation on the
    record (the observability subsystem turns them into trace events).
    The hook is invoked with the engine's clock at the moment the
    notice happens: the fire time for [`Fired], the cancellation time —
    not the would-be fire time — for [`Cancelled].  Plain
    {!schedule_at} events are not reported; only cancellable timers
    are. *)

type timer_notice = [ `Fired | `Cancelled ]

val set_timer_hook : t -> (Time.t -> timer_notice -> unit) -> unit
(** Install the (single) timer observer, replacing any previous one. *)

val clear_timer_hook : t -> unit

val run : t -> unit
(** Execute events until the queue is empty. *)

val run_until : t -> Time.t -> unit
(** Execute events with time [<= limit], then advance the clock to
    [limit] (even if the queue still holds later events). *)

val pending : t -> int
(** Number of events not yet executed. *)
