(** The simulated KVM hypervisor (Linux 5.3 + kvmtool, type-II),
    re-engineered for HyperTP.

    Implements {!Hv.Intf.S}: VMs are kvmtool processes over vm/vcpu file
    descriptors, EPT is the hypervisor-dependent VM_i State, the host
    CFS run-queue is the VM Management State, platform state moves
    through an ioctl-payload stream (with MTRR folded into MSRS and a
    24-pin irqchip), and the cost model reproduces KVM's fast type-II
    reboot and lightweight resume. *)

include Hv.Intf.S

val vm_fd : domain -> int
val ept_frames : domain -> int
val vmm_process : t -> vm_name:string -> Kvmtool.process option
val run_queue : t -> Cfs.t
