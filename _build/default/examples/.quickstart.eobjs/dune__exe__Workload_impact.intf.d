examples/workload_impact.mli:
