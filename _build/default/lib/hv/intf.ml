(** The HYPERVISOR signature: what a hypervisor must provide to be
    HyperTP-compliant.

    Re-engineering a hypervisor for HyperTP means implementing exactly
    this: booting, VM lifecycle, a native state container, the
    [to_uisr]/[from_uisr] translation pair, management-state rebuild,
    and the calibrated costs of each operation.  Both {!Xenhv.Xen} and
    {!Kvmhv.Kvm} implement it; everything above (InPlaceTP, MigrationTP,
    the cluster orchestrator) is written against this signature only —
    the paper's claim that UISR makes adding the (N+1)-th hypervisor a
    one-codec job rather than an N-codec one. *)

module type S = sig
  val kind : Kind.t
  val name : string
  val version : string
  val hv_type : Kind.hv_type
  val platform : Workload.Profile.platform

  val ioapic_pins : int
  (** Pin count of this hypervisor's virtual IOAPIC (48 for Xen, 24 for
      KVM — the section 4.2.1 compatibility gap). *)

  val kernel_image_bytes : Hw.Units.bytes_
  (** Size of the kexec-staged boot image (hypervisor [+ dom0 kernel]). *)

  val sequential_migration_receive : bool
  (** Xen's receive path processes incoming VMs one at a time, which
      spreads multi-VM migration downtimes (Fig. 8, right); kvmtool runs
      one process per VM and receives in parallel. *)

  val supports_msr : int -> bool
  (** Whether this hypervisor can restore a given MSR; unsupported ones
      are dropped with a recorded fixup. *)

  type t
  (** A booted hypervisor instance on one host. *)

  type domain
  (** A VM under this hypervisor's management (its VM_i State). *)

  val boot : machine:Hw.Machine.t -> pmem:Hw.Pmem.t -> rng:Sim.Rng.t -> t
  (** Bring the hypervisor up: allocates its HV State from host memory. *)

  val boot_time : machine:Hw.Machine.t -> Sim.Time.t
  (** Kernel boot duration on this machine (excludes PRAM parsing, which
      depends on the structure being handed over). *)

  val machine : t -> Hw.Machine.t
  val pmem : t -> Hw.Pmem.t

  val shutdown : t -> unit
  (** Free HV State.  Raises [Invalid_argument] if domains remain. *)

  val create_vm : t -> rng:Sim.Rng.t -> Vmstate.Vm.config -> domain
  (** Fresh VM: allocates guest memory, generates state, builds this
      hypervisor's VM_i State (nested page tables, ...). *)

  val adopt_vm : t -> Vmstate.Vm.t -> domain
  (** Take over an existing VM (restore path): builds fresh VM_i State
      around untouched architectural state + guest memory. *)

  val detach_vm : t -> domain -> Vmstate.Vm.t
  (** Remove the VM from this hypervisor, freeing its VM_i State but
      keeping guest memory and architectural state alive — the
      transplant hand-off. *)

  val destroy_vm : t -> domain -> unit
  (** Full teardown including guest memory. *)

  val domains : t -> domain list
  val find_domain : t -> string -> domain option
  val vm : domain -> Vmstate.Vm.t
  val pause : t -> domain -> unit
  val resume : t -> domain -> unit

  val native_context : domain -> bytes
  (** The hypervisor's own save format for platform state (Xen: HVM save
      records via xc_domain_hvm_getcontext; KVM: ioctl payload stream).
      Each hypervisor's layout is different — this is what UISR
      abstracts over. *)

  val to_uisr : domain -> Uisr.Vm_state.t
  (** Translate VM_i State into the neutral representation
      (struct uisr* to_uisr_xxx family).  The VM must be paused. *)

  val from_uisr :
    t -> rng:Sim.Rng.t -> mem:Vmstate.Guest_mem.t -> Uisr.Vm_state.t ->
    domain * Uisr.Fixup.t list
  (** Restore a VM from UISR onto this hypervisor, attaching the given
      (in-place or freshly copied) guest memory.  Applies and records
      platform fixups.  The resulting domain is paused. *)

  (* Memory-separation accounting (Fig. 2). *)

  val vmi_state_bytes : t -> domain -> Hw.Units.bytes_
  val management_state_bytes : t -> Hw.Units.bytes_
  val hv_state_bytes : t -> Hw.Units.bytes_

  val rebuild_management_state : t -> Sim.Time.t
  (** Rebuild scheduler queues etc. from the current domain set (this
      state is reconstructed, never translated); returns its cost. *)

  val management_state_consistent : t -> bool
  (** Invariant: every runnable vCPU of every domain is referenced by
      the scheduler's queues, and nothing else is. *)

  (* Calibrated cost model (see Hw.Machine for the machine factors). *)

  val save_cost : t -> domain -> Sim.Time.t
  (** Per-VM [to_uisr] translation cost. *)

  val restore_cost : t -> domain -> Sim.Time.t
  (** Per-VM [from_uisr] restoration cost. *)

  val migration_resume_cost : machine:Hw.Machine.t -> vcpus:int -> Sim.Time.t
  (** Destination-side resume during live migration — Xen's toolstack
      takes ~130 ms where kvmtool needs ~5 ms (Table 4). *)
end
