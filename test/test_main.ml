(* Aggregated test runner: one Alcotest suite per library. *)

let () =
  Alcotest.run "hypertp"
    (Test_sim.suites @ Test_hw.suites @ Test_vmstate.suites
   @ Test_workload.suites @ Test_uisr.suites @ Test_pram.suites
   @ Test_kexec.suites @ Test_hv.suites @ Test_xen_kvm.suites
   @ Test_bhyve.suites @ Test_migration.suites @ Test_shadow.suites
   @ Test_cve.suites
   @ Test_fault.suites @ Test_integrity.suites @ Test_audit.suites
   @ Test_hypertp.suites
   @ Test_cluster.suites @ Test_campaign.suites @ Test_controlplane.suites
   @ Test_topology.suites @ Test_ctx.suites
   @ Test_extras.suites @ Test_obs.suites @ Test_stream.suites)
