lib/hw/frame.ml: Format Hashtbl Int
