lib/hw/nic.ml: Format Sim
