(** The span collector: opens and closes {!Span}s against virtual time
    and retains them in a bounded ring buffer.

    Memory is bounded: the tracer holds at most [capacity] spans; once
    full, recording a new span evicts the oldest one ({!dropped} counts
    the evictions).  Exporters tolerate a parent evicted from under its
    children.

    The tracer itself never reads a clock — every operation takes an
    explicit [at] from the caller's virtual timeline — so a seeded run
    produces a byte-identical trace every time. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to 4096 spans; it must be positive. *)

val start :
  t -> at:Sim.Time.t -> ?parent:Span.t -> ?track:string ->
  ?attrs:(string * string) list -> string -> Span.t
(** Open an interval span.  [track] defaults to ["main"]. *)

val finish : t -> Span.t -> at:Sim.Time.t -> unit
(** Close a span.  Raises [Invalid_argument] if already closed or if
    [at] precedes the span's start. *)

val instant :
  t -> at:Sim.Time.t -> ?parent:Span.t -> ?track:string ->
  ?attrs:(string * string) list -> string -> unit
(** Record a zero-length point event. *)

val span :
  t -> at:Sim.Time.t -> until:Sim.Time.t -> ?parent:Span.t ->
  ?track:string -> ?attrs:(string * string) list -> string -> Span.t
(** Record an already-delimited interval in one call. *)

val spans : t -> Span.t list
(** Retained spans, oldest first (recording order). *)

val count : t -> int
val capacity : t -> int

val dropped : t -> int
(** Spans evicted by the ring since creation. *)

val set_hook : t -> ([ `Open | `Close ] -> Span.t -> Sim.Time.t -> unit) -> unit
(** Install the (single) span observer: called on every span open and
    close with the span and the timestamp; an {!instant} notifies once
    as [`Open].  The core library routes this to its log source so
    [-v -v] narrates the trace. *)

val clear_hook : t -> unit
