examples/cve_response.mli:
