(* Tests for the two hypervisor implementations: native state codecs,
   UISR bridges, the cross-hypervisor round-trip that is HyperTP's core
   correctness claim. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let rng () = Sim.Rng.create 0x7E57L

let sample_platform ?(pins = Vmstate.Ioapic.xen_pins) ?(vcpus = 2) () =
  let g = rng () in
  ( List.init vcpus (fun index -> Vmstate.Vcpu.generate g ~index),
    Vmstate.Ioapic.generate g ~pins,
    Vmstate.Pit.generate g )

(* --- Xen HVM records --- *)

let test_hvm_records_roundtrip () =
  let vcpus, ioapic, pit = sample_platform () in
  let p = { Xenhv.Hvm_records.vcpus; ioapic; pit } in
  match Xenhv.Hvm_records.decode (Xenhv.Hvm_records.encode p) with
  | Ok p' ->
    checkb "vcpus" true
      (List.for_all2 Vmstate.Vcpu.equal p.Xenhv.Hvm_records.vcpus
         p'.Xenhv.Hvm_records.vcpus);
    checkb "ioapic" true
      (Vmstate.Ioapic.equal p.Xenhv.Hvm_records.ioapic p'.Xenhv.Hvm_records.ioapic);
    checkb "pit" true
      (Vmstate.Pit.equal p.Xenhv.Hvm_records.pit p'.Xenhv.Hvm_records.pit)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Xenhv.Hvm_records.pp_error e)

let test_hvm_records_rejects_garbage () =
  checkb "garbage" true
    (Result.is_error (Xenhv.Hvm_records.decode (Bytes.of_string "garbage!")));
  let vcpus, ioapic, pit = sample_platform ~vcpus:1 () in
  let blob = Xenhv.Hvm_records.encode { Xenhv.Hvm_records.vcpus; ioapic; pit } in
  let truncated = Bytes.sub blob 0 (Bytes.length blob - 20) in
  checkb "truncated" true (Result.is_error (Xenhv.Hvm_records.decode truncated))

let test_hvm_record_count () =
  let vcpus, ioapic, pit = sample_platform ~vcpus:3 () in
  (* header + 5 records per vCPU + IOAPIC + PIT + END. *)
  checki "record count" (1 + 15 + 2 + 1)
    (Xenhv.Hvm_records.record_count { Xenhv.Hvm_records.vcpus; ioapic; pit })

(* --- KVM ioctl stream --- *)

let test_ioctl_stream_roundtrip () =
  let vcpus, ioapic, pit = sample_platform ~pins:Vmstate.Ioapic.kvm_pins () in
  let p = { Kvmhv.Ioctl_stream.vcpus; ioapic; pit } in
  match Kvmhv.Ioctl_stream.decode (Kvmhv.Ioctl_stream.encode p) with
  | Ok p' ->
    checkb "vcpus (incl. MTRR via MSRs)" true
      (List.for_all2 Vmstate.Vcpu.equal p.Kvmhv.Ioctl_stream.vcpus
         p'.Kvmhv.Ioctl_stream.vcpus);
    checkb "irqchip" true
      (Vmstate.Ioapic.equal p.Kvmhv.Ioctl_stream.ioapic
         p'.Kvmhv.Ioctl_stream.ioapic);
    checkb "pit2" true
      (Vmstate.Pit.equal p.Kvmhv.Ioctl_stream.pit p'.Kvmhv.Ioctl_stream.pit)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Kvmhv.Ioctl_stream.pp_error e)

let test_ioctl_stream_rejects_48_pins () =
  let vcpus, ioapic, pit = sample_platform ~pins:48 () in
  Alcotest.check_raises "48 pins refused"
    (Invalid_argument "Ioctl_stream: IOAPIC exceeds KVM's 24 pins") (fun () ->
      ignore (Kvmhv.Ioctl_stream.encode { Kvmhv.Ioctl_stream.vcpus; ioapic; pit }))

let test_native_formats_differ () =
  (* The same platform state encodes to different bytes under each
     hypervisor's native format — the heterogeneity UISR bridges. *)
  let vcpus, ioapic, pit = sample_platform ~pins:24 ~vcpus:1 () in
  let xen_blob = Xenhv.Hvm_records.encode { Xenhv.Hvm_records.vcpus; ioapic; pit } in
  let kvm_blob = Kvmhv.Ioctl_stream.encode { Kvmhv.Ioctl_stream.vcpus; ioapic; pit } in
  checkb "different encodings" false (Bytes.equal xen_blob kvm_blob)

(* --- Hypervisor modules over a host --- *)

let boot_host (module H : Hv.Intf.S) =
  let machine = Hw.Machine.m1 () in
  let host = Hv.Host.create ~name:"hv-test" machine in
  Hv.Host.boot_hypervisor host (module H);
  host

(* --- PV plumbing: event channels + grant tables --- *)

let test_event_channel_lifecycle () =
  let t = Xenhv.Event_channel.create () in
  let p = Xenhv.Event_channel.alloc_unbound t ~remote_domid:0 in
  checkb "unbound at alloc" true
    (Xenhv.Event_channel.binding t p = Some Xenhv.Event_channel.Unbound);
  Xenhv.Event_channel.bind_interdomain t p ~remote_domid:0 ~remote_port:7;
  checkb "bound" true
    (Xenhv.Event_channel.binding t p
    = Some (Xenhv.Event_channel.Interdomain { remote_domid = 0; remote_port = 7 }));
  Alcotest.check_raises "double bind"
    (Invalid_argument "Event_channel.bind_interdomain: port already bound")
    (fun () ->
      Xenhv.Event_channel.bind_interdomain t p ~remote_domid:0 ~remote_port:8);
  checkb "not pending" false (Xenhv.Event_channel.pending t p);
  Xenhv.Event_channel.send t p;
  checkb "pending after send" true (Xenhv.Event_channel.pending t p);
  Xenhv.Event_channel.consume t p;
  checkb "consumed" false (Xenhv.Event_channel.pending t p);
  let v = Xenhv.Event_channel.bind_virq t ~virq:0 in
  checki "two ports" 2 (List.length (Xenhv.Event_channel.ports t));
  checki "both bound" 2 (Xenhv.Event_channel.bound_count t);
  Xenhv.Event_channel.close t v;
  checki "one left" 1 (List.length (Xenhv.Event_channel.ports t));
  checki "close_all" 1 (Xenhv.Event_channel.close_all t)

let test_grant_table_lifecycle () =
  let t = Xenhv.Grant_table.create () in
  let frame = Hw.Frame.Gfn.of_int 42 in
  let g = Xenhv.Grant_table.grant t ~frame ~granted_to:0 ~readonly:false in
  checki "active" 1 (Xenhv.Grant_table.active t);
  Xenhv.Grant_table.map t g;
  checki "mapped" 1 (Xenhv.Grant_table.mapped_count t);
  Alcotest.check_raises "double map"
    (Invalid_argument "Grant_table.map: already mapped") (fun () ->
      Xenhv.Grant_table.map t g);
  Alcotest.check_raises "revoke while mapped"
    (Invalid_argument "Grant_table.revoke: grant still mapped by the backend")
    (fun () -> Xenhv.Grant_table.revoke t g);
  Xenhv.Grant_table.unmap t g;
  Xenhv.Grant_table.revoke t g;
  checki "gone" 0 (Xenhv.Grant_table.active t)

let test_pv_plumbing_built_per_domain () =
  let machine = Hw.Machine.m1 () in
  let pmem = Hw.Machine.fresh_pmem machine in
  let hv = Xenhv.Xen.boot ~machine ~pmem ~rng:(rng ()) in
  let dom =
    Xenhv.Xen.create_vm hv ~rng:(rng ())
      (Vmstate.Vm.config ~name:"pv" ~ram:(Hw.Units.mib 64) ())
  in
  (* Default config: net + blk emulated + console -> 3 devices, each
     with 2 channels, plus console + store + timer VIRQ. *)
  checki "event channels" 9
    (List.length (Xenhv.Event_channel.ports (Xenhv.Xen.event_channels dom)));
  checki "ring grants mapped" (3 * 32)
    (Xenhv.Grant_table.mapped_count (Xenhv.Xen.grant_table dom));
  (* Every granted frame is a real guest frame. *)
  let vm = Xenhv.Xen.vm dom in
  let npages = Vmstate.Guest_mem.page_count vm.Vmstate.Vm.mem in
  List.iter
    (fun gfn ->
      checkb "grant inside guest" true
        (Hw.Frame.Gfn.to_int gfn < npages * 512))
    (Xenhv.Grant_table.granted_frames (Xenhv.Xen.grant_table dom))

let test_xen_domain_lifecycle () =
  let host = boot_host (module Xenhv.Xen) in
  let _vm =
    Hv.Host.create_vm host
      (Vmstate.Vm.config ~name:"d1" ~vcpus:2 ~ram:(Hw.Units.mib 128) ())
  in
  let (Hv.Host.Packed ((module H), hv, _)) = Hv.Host.running_exn host in
  checki "one domain" 1 (List.length (H.domains hv));
  checkb "mgmt consistent" true (H.management_state_consistent hv);
  checkb "vmi state nonzero" true
    (List.for_all (fun d -> H.vmi_state_bytes hv d > 0) (H.domains hv));
  Hv.Host.destroy_vm host "d1";
  checki "gone" 0 (List.length (H.domains hv))

let test_xen_ioapic_is_48_pin () =
  let host = boot_host (module Xenhv.Xen) in
  let vm =
    Hv.Host.create_vm host (Vmstate.Vm.config ~name:"x" ~ram:(Hw.Units.mib 32) ())
  in
  checki "48 pins" 48 (Vmstate.Ioapic.pin_count vm.Vmstate.Vm.ioapic)

let test_kvm_ioapic_is_24_pin () =
  let host = boot_host (module Kvmhv.Kvm) in
  let vm =
    Hv.Host.create_vm host (Vmstate.Vm.config ~name:"k" ~ram:(Hw.Units.mib 32) ())
  in
  checki "24 pins" 24 (Vmstate.Ioapic.pin_count vm.Vmstate.Vm.ioapic)

let test_to_uisr_requires_pause () =
  let host = boot_host (module Xenhv.Xen) in
  ignore
    (Hv.Host.create_vm host (Vmstate.Vm.config ~name:"r" ~ram:(Hw.Units.mib 32) ()));
  Alcotest.check_raises "running rejected"
    (Invalid_argument "Xen.to_uisr: VM must be paused") (fun () ->
      ignore (Hv.Host.to_uisr host "r"))

let test_xen_to_uisr_content () =
  let host = boot_host (module Xenhv.Xen) in
  let vm =
    Hv.Host.create_vm host
      (Vmstate.Vm.config ~name:"u" ~vcpus:3 ~ram:(Hw.Units.mib 64) ())
  in
  Hv.Host.pause_vm host "u";
  let u = Hv.Host.to_uisr host "u" in
  checkb "platform routed through native codec intact" true
    (List.for_all2 Vmstate.Vcpu.equal (Array.to_list vm.Vmstate.Vm.vcpus)
       u.Uisr.Vm_state.vcpus);
  Alcotest.check Alcotest.string "source tag" "xen-4.12.1"
    u.Uisr.Vm_state.source_hypervisor

(* The HyperTP core claim: Xen -> UISR -> KVM -> UISR -> Xen preserves
   platform state modulo the recorded fixups. *)
let test_cross_hypervisor_roundtrip () =
  let src = boot_host (module Xenhv.Xen) in
  ignore
    (Hv.Host.create_vm src
       (Vmstate.Vm.config ~name:"rt" ~vcpus:2 ~ram:(Hw.Units.mib 64) ()));
  Hv.Host.pause_vm src "rt";
  let u_xen = Hv.Host.to_uisr src "rt" in

  (* Restore under KVM on a second host. *)
  let dst = boot_host (module Kvmhv.Kvm) in
  let mem_copy =
    Vmstate.Guest_mem.create ~pmem:dst.Hv.Host.pmem ~rng:dst.Hv.Host.rng
      ~bytes:(Hw.Units.mib 64) ~page_kind:Hw.Units.Page_2m ()
  in
  let fixups = Hv.Host.restore_from_uisr dst ~mem:mem_copy u_xen in
  checkb "pins dropped recorded" true
    (List.exists
       (function Uisr.Fixup.Ioapic_pins_dropped _ -> true | _ -> false)
       fixups);
  checkb "container change recorded" true
    (List.exists
       (function Uisr.Fixup.Lapic_container_changed -> true | _ -> false)
       fixups);
  checkb "net device rescanned" true
    (List.exists
       (function Uisr.Fixup.Device_rescanned _ -> true | _ -> false)
       fixups);

  (* Capture under KVM and bring it back to Xen. *)
  let u_kvm = Hv.Host.to_uisr dst "rt" in
  checki "kvm side has 24 pins" 24
    (Vmstate.Ioapic.pin_count u_kvm.Uisr.Vm_state.ioapic);
  checkb "vcpu state identical across the hop" true
    (List.for_all2 Vmstate.Vcpu.equal u_xen.Uisr.Vm_state.vcpus
       u_kvm.Uisr.Vm_state.vcpus);
  checkb "pit identical" true
    (Vmstate.Pit.equal u_xen.Uisr.Vm_state.pit u_kvm.Uisr.Vm_state.pit);

  let back = boot_host (module Xenhv.Xen) in
  let mem_back =
    Vmstate.Guest_mem.create ~pmem:back.Hv.Host.pmem ~rng:back.Hv.Host.rng
      ~bytes:(Hw.Units.mib 64) ~page_kind:Hw.Units.Page_2m ()
  in
  let fixups_back = Hv.Host.restore_from_uisr back ~mem:mem_back u_kvm in
  checkb "extension recorded on the way back" true
    (List.exists
       (function Uisr.Fixup.Ioapic_pins_extended _ -> true | _ -> false)
       fixups_back);
  let u_back = Hv.Host.to_uisr back "rt" in
  checkb "vcpus preserved end-to-end" true
    (List.for_all2 Vmstate.Vcpu.equal u_xen.Uisr.Vm_state.vcpus
       u_back.Uisr.Vm_state.vcpus);
  (* The first 24 pins survive; the dropped upper pins come back masked. *)
  let first24 io = fst (Vmstate.Ioapic.truncate io ~pins:24) in
  checkb "lower pins preserved" true
    (Vmstate.Ioapic.equal
       (first24 u_xen.Uisr.Vm_state.ioapic)
       (first24 u_back.Uisr.Vm_state.ioapic))

(* Differential fix-point: once the state has absorbed the first hop's
   fixups (Xen -> KVM), the UISR codec round-trip is the identity and
   the next hop (KVM -> bhyve) changes nothing beyond its own declared
   fixups. *)
let test_differential_fixpoint () =
  let src = boot_host (module Xenhv.Xen) in
  ignore
    (Hv.Host.create_vm src
       (Vmstate.Vm.config ~name:"fx" ~vcpus:2 ~ram:(Hw.Units.mib 64) ()));
  Hv.Host.pause_vm src "fx";
  let u_xen = Hv.Host.to_uisr src "fx" in

  let kvm = boot_host (module Kvmhv.Kvm) in
  let mem_kvm =
    Vmstate.Guest_mem.create ~pmem:kvm.Hv.Host.pmem ~rng:kvm.Hv.Host.rng
      ~bytes:(Hw.Units.mib 64) ~page_kind:Hw.Units.Page_2m ()
  in
  ignore (Hv.Host.restore_from_uisr kvm ~mem:mem_kvm u_xen);
  let u_kvm = Hv.Host.to_uisr kvm "fx" in

  (* After one hop the state is a codec fix-point: decode o encode is
     the identity and re-encoding is byte-stable. *)
  let blob = Uisr.Codec.encode u_kvm in
  (match Uisr.Codec.decode blob with
  | Ok u ->
    checkb "decode o encode = id" true (Uisr.Vm_state.equal u u_kvm);
    checkb "re-encoding is byte-stable" true
      (Bytes.equal blob (Uisr.Codec.encode u))
  | Error e -> Alcotest.fail (Format.asprintf "%a" Uisr.Codec.pp_error e));

  (* Land it on bhyve: the only vCPU-visible change is the declared
     MC-bank MSR drop; everything bhyve supports is a fix-point. *)
  let bhy = boot_host (module Bhyvehv.Bhyve) in
  let mem_bhy =
    Vmstate.Guest_mem.create ~pmem:bhy.Hv.Host.pmem ~rng:bhy.Hv.Host.rng
      ~bytes:(Hw.Units.mib 64) ~page_kind:Hw.Units.Page_2m ()
  in
  let fixups = Hv.Host.restore_from_uisr bhy ~mem:mem_bhy u_kvm in
  checkb "24 -> 32 pin extension recorded" true
    (List.exists
       (function
         | Uisr.Fixup.Ioapic_pins_extended { from_pins = 24; to_pins = 32 } ->
           true
         | _ -> false)
       fixups);
  let u_bhy = Hv.Host.to_uisr bhy "fx" in
  let strip (v : Vmstate.Vcpu.t) =
    { v with
      regs =
        { v.regs with
          msrs =
            List.filter
              (fun (m : Vmstate.Regs.msr) ->
                Bhyvehv.Bhyve.supports_msr m.index)
              v.regs.msrs } }
  in
  checkb "vcpus a fix-point modulo declared MSR drops" true
    (List.for_all2
       (fun a b -> Vmstate.Vcpu.equal (strip a) (strip b))
       u_kvm.Uisr.Vm_state.vcpus u_bhy.Uisr.Vm_state.vcpus);
  checkb "pit a fix-point" true
    (Vmstate.Pit.equal u_kvm.Uisr.Vm_state.pit u_bhy.Uisr.Vm_state.pit);
  (* The lower 24 pins -- everything KVM had -- survive the extension. *)
  let low io = fst (Vmstate.Ioapic.truncate io ~pins:24) in
  checkb "low pins a fix-point" true
    (Vmstate.Ioapic.equal
       (low u_kvm.Uisr.Vm_state.ioapic)
       (low u_bhy.Uisr.Vm_state.ioapic));
  (* The salvage decoder agrees the hop output is pristine. *)
  let r = Uisr.Codec.decode_verified (Uisr.Codec.encode u_bhy) in
  checkb "verified intact" true
    (r.Uisr.Integrity.verdict = Uisr.Integrity.Intact)

let test_msr_drop_fixup () =
  (* Give a vCPU an MSR Xen refuses (AMD range) and restore under Xen. *)
  let src = boot_host (module Kvmhv.Kvm) in
  let vm =
    Hv.Host.create_vm src (Vmstate.Vm.config ~name:"msr" ~ram:(Hw.Units.mib 32) ())
  in
  vm.Vmstate.Vm.vcpus.(0) <-
    (let v = vm.Vmstate.Vm.vcpus.(0) in
     { v with regs = Vmstate.Regs.with_msr v.regs 0xC0010015 5L });
  Hv.Host.pause_vm src "msr";
  let u = Hv.Host.to_uisr src "msr" in
  let dst = boot_host (module Xenhv.Xen) in
  let mem =
    Vmstate.Guest_mem.create ~pmem:dst.Hv.Host.pmem ~rng:dst.Hv.Host.rng
      ~bytes:(Hw.Units.mib 32) ~page_kind:Hw.Units.Page_2m ()
  in
  let fixups = Hv.Host.restore_from_uisr dst ~mem u in
  checkb "msr drop recorded" true
    (List.exists
       (function Uisr.Fixup.Msr_dropped 0xC0010015 -> true | _ -> false)
       fixups);
  let restored = Option.get (Hv.Host.find_vm dst "msr") in
  checkb "msr actually gone" true
    (Vmstate.Regs.msr_value restored.Vmstate.Vm.vcpus.(0).regs 0xC0010015 = None)

let test_boot_time_ordering () =
  (* Type-I (Xen+dom0) boots much slower than type-II; M2 slower than M1
     (the Fig. 6 vs Fig. 10 asymmetry). *)
  let m1 = Hw.Machine.m1 () and m2 = Hw.Machine.m2 () in
  let xb1 = Sim.Time.to_sec_f (Xenhv.Xen.boot_time ~machine:m1) in
  let xb2 = Sim.Time.to_sec_f (Xenhv.Xen.boot_time ~machine:m2) in
  let kb1 = Sim.Time.to_sec_f (Kvmhv.Kvm.boot_time ~machine:m1) in
  let kb2 = Sim.Time.to_sec_f (Kvmhv.Kvm.boot_time ~machine:m2) in
  checkb "xen m1 ~7.5s" true (xb1 > 6.5 && xb1 < 8.5);
  checkb "xen m2 ~17.5s" true (xb2 > 15.5 && xb2 < 19.0);
  checkb "kvm m1 ~1.5s" true (kb1 > 1.2 && kb1 < 1.8);
  checkb "kvm m2 ~2.3s" true (kb2 > 1.9 && kb2 < 2.7);
  checkb "type-I slower" true (xb1 > 3.0 *. kb1)

let test_resume_cost_asymmetry () =
  (* Table 4: Xen's toolstack resume is ~27x kvmtool's. *)
  let machine = Hw.Machine.m1 () in
  let x = Sim.Time.to_ms_f (Xenhv.Xen.migration_resume_cost ~machine ~vcpus:1) in
  let k = Sim.Time.to_ms_f (Kvmhv.Kvm.migration_resume_cost ~machine ~vcpus:1) in
  checkb "xen ~128ms" true (x > 100.0 && x < 160.0);
  checkb "kvmtool ~3.5ms" true (k > 2.0 && k < 6.0);
  checkb "order of magnitude gap" true (x /. k > 20.0)

let test_shutdown_requires_empty () =
  let host = boot_host (module Xenhv.Xen) in
  ignore
    (Hv.Host.create_vm host (Vmstate.Vm.config ~name:"z" ~ram:(Hw.Units.mib 32) ()));
  let (Hv.Host.Packed ((module H), hv, _)) = Hv.Host.running_exn host in
  Alcotest.check_raises "domains remain"
    (Invalid_argument "Xen.shutdown: domains remain") (fun () -> H.shutdown hv)

let suites =
  [
    ( "xen.native_format",
      [
        Alcotest.test_case "hvm records roundtrip" `Quick test_hvm_records_roundtrip;
        Alcotest.test_case "garbage rejected" `Quick test_hvm_records_rejects_garbage;
        Alcotest.test_case "record count" `Quick test_hvm_record_count;
      ] );
    ( "kvm.native_format",
      [
        Alcotest.test_case "ioctl stream roundtrip" `Quick test_ioctl_stream_roundtrip;
        Alcotest.test_case "48-pin ioapic refused" `Quick test_ioctl_stream_rejects_48_pins;
        Alcotest.test_case "formats differ" `Quick test_native_formats_differ;
      ] );
    ( "xen.pv_plumbing",
      [
        Alcotest.test_case "event channel lifecycle" `Quick
          test_event_channel_lifecycle;
        Alcotest.test_case "grant table lifecycle" `Quick
          test_grant_table_lifecycle;
        Alcotest.test_case "built per domain" `Quick
          test_pv_plumbing_built_per_domain;
      ] );
    ( "hv.implementations",
      [
        Alcotest.test_case "xen domain lifecycle" `Quick test_xen_domain_lifecycle;
        Alcotest.test_case "xen builds 48-pin guests" `Quick test_xen_ioapic_is_48_pin;
        Alcotest.test_case "kvm builds 24-pin guests" `Quick test_kvm_ioapic_is_24_pin;
        Alcotest.test_case "to_uisr requires pause" `Quick test_to_uisr_requires_pause;
        Alcotest.test_case "xen to_uisr content" `Quick test_xen_to_uisr_content;
        Alcotest.test_case "cross-hypervisor roundtrip" `Quick
          test_cross_hypervisor_roundtrip;
        Alcotest.test_case "differential fix-point after one hop" `Quick
          test_differential_fixpoint;
        Alcotest.test_case "msr drop fixup" `Quick test_msr_drop_fixup;
        Alcotest.test_case "boot time calibration" `Quick test_boot_time_ordering;
        Alcotest.test_case "resume cost asymmetry (Table 4)" `Quick
          test_resume_cost_asymmetry;
        Alcotest.test_case "shutdown requires empty" `Quick test_shutdown_requires_empty;
      ] );
  ]
