lib/vmstate/vm.ml: Array Device Format Guest_mem Hw Ioapic List Pit Stdlib Vcpu
