type grant_ref = int

type entry = {
  frame : Hw.Frame.Gfn.t;
  granted_to : int;
  readonly : bool;
  mapped : bool;
}

type t = { table : (grant_ref, entry) Hashtbl.t; mutable next_ref : grant_ref }

let create () = { table = Hashtbl.create 32; next_ref = 8 }

let grant t ~frame ~granted_to ~readonly =
  let gref = t.next_ref in
  t.next_ref <- gref + 1;
  Hashtbl.replace t.table gref { frame; granted_to; readonly; mapped = false };
  gref

let entry t gref = Hashtbl.find_opt t.table gref

let entry_exn t gref =
  match Hashtbl.find_opt t.table gref with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Grant_table: unknown ref %d" gref)

let map t gref =
  let e = entry_exn t gref in
  if e.mapped then invalid_arg "Grant_table.map: already mapped";
  Hashtbl.replace t.table gref { e with mapped = true }

let unmap t gref =
  let e = entry_exn t gref in
  if not e.mapped then invalid_arg "Grant_table.unmap: not mapped";
  Hashtbl.replace t.table gref { e with mapped = false }

let revoke t gref =
  let e = entry_exn t gref in
  if e.mapped then
    invalid_arg "Grant_table.revoke: grant still mapped by the backend";
  Hashtbl.remove t.table gref

let active t = Hashtbl.length t.table

let mapped_count t =
  Hashtbl.fold (fun _ e acc -> if e.mapped then acc + 1 else acc) t.table 0

let granted_frames t =
  List.sort Hw.Frame.Gfn.compare
    (Hashtbl.fold (fun _ e acc -> e.frame :: acc) t.table [])

let state_bytes t = active t * 24

let revoke_all_unmapped t =
  let victims =
    Hashtbl.fold
      (fun gref e acc -> if e.mapped then acc else gref :: acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) victims;
  List.length victims

let force_teardown t =
  let n = active t in
  Hashtbl.reset t.table;
  n
