(* One canonical rendering for located diagnostics, shared by the
   integrity verdicts ([Integrity.pp_diagnostic]), the wire decoder's
   [Bad_format] errors, and the residual auditor's findings.  Before
   this module the offset formatting diverged: the salvage diagnostics
   printed "section+N" while the wire errors printed "at byte N" — the
   latter is the documented form (DESIGN.md section 5e), so it wins. *)

let pp_location fmt ?section offset =
  match section with
  | Some tag -> Format.fprintf fmt "at byte %d in section 0x%04x" offset tag
  | None -> Format.fprintf fmt "at byte %d" offset

let location_to_string ?section offset =
  match section with
  | Some tag -> Printf.sprintf "at byte %d in section 0x%04x" offset tag
  | None -> Printf.sprintf "at byte %d" offset

let pp fmt ~label ~subject ?offset reason =
  match offset with
  | Some o ->
    Format.fprintf fmt "[%s] %s at byte %d: %s" label subject o reason
  | None -> Format.fprintf fmt "[%s] %s: %s" label subject reason
