(** Re-export of {!Hypertp_error} under [Hypertp.Error].

    The exception constructor is shared with the low-level [err]
    library, so [Hypertp.Error.Error] also matches failures raised by
    layers below [Hypertp] (e.g. [Fault.make]). *)

include module type of struct
  include Hypertp_error
end
