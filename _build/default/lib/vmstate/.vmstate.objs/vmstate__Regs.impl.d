lib/vmstate/regs.ml: Array Format Int64 List Sim
