lib/hw/units.mli: Format
