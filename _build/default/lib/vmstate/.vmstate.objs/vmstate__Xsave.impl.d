lib/vmstate/xsave.ml: Array Format Int64 List Sim
