(** Host physical memory.

    Memory is managed in 4 KiB machine frames grouped into 2 MiB chunks
    (512 frames).  The allocator hands out chunks from a deterministically
    shuffled pool so that a VM's memory is scattered across host RAM, as
    it is on a real machine — the situation the PRAM structure exists to
    describe (paper, section 4.2.2).

    Frames carry optional 64-bit {e content tags}.  Guest memory writes a
    tag per guest page; transplant correctness tests compare tags before
    and after the micro-reboot to verify that "Guest State is kept
    untouched" really holds. *)

type t

val create : ?seed:int64 -> frames:int -> unit -> t
(** [create ~frames] models a host with [frames] 4 KiB frames.  [frames]
    must be a positive multiple of 512. *)

val total_frames : t -> int
val free_frames : t -> int
val used_frames : t -> int

exception Out_of_memory

val alloc_frames : t -> ?align:int -> int -> Frame.Mfn.t list
(** [alloc_frames t n] allocates [n] frames, returned as the start MFNs of
    maximal contiguous runs would be ambiguous — instead every allocated
    frame is listed, in address order within each chunk but with chunks
    scattered.  [align] (default 1, in frames) must divide 512 and forces
    each contiguous run to start on that alignment; pass 512 to obtain
    2 MiB-aligned backing for huge pages.  Raises {!Out_of_memory}. *)

val alloc_extents : t -> ?align:int -> int -> (Frame.Mfn.t * int) list
(** Like {!alloc_frames} but returns (start, length) extents — the shape
    PRAM page entries are built from. *)

val free_extent : t -> Frame.Mfn.t -> int -> unit
(** Return an extent to the pool.  Raises [Invalid_argument] if any frame
    in it is not currently allocated or is reserved. *)

val reserve_extent : t -> Frame.Mfn.t -> int -> unit
(** Mark an allocated extent as reserved (kexec image, PRAM metadata):
    reserved frames survive {!wipe} and cannot be freed until
    {!unreserve_extent}. *)

val unreserve_extent : t -> Frame.Mfn.t -> int -> unit
val is_reserved : t -> Frame.Mfn.t -> bool
val is_allocated : t -> Frame.Mfn.t -> bool

val write : t -> Frame.Mfn.t -> int64 -> unit
(** Set the content tag of an allocated frame.  Raises on unallocated. *)

val read : t -> Frame.Mfn.t -> int64 option
(** Content tag, if one was ever written. *)

val wipe_unpreserved : t -> preserve:(Frame.Mfn.t -> bool) -> int
(** Simulate a reboot scrubbing memory: clear the content tag of every
    allocated frame for which [preserve] is false and which is not
    reserved.  Returns the number of frames wiped. *)

val reboot_reset : t -> preserve:(Frame.Mfn.t -> bool) -> int
(** What a kexec actually does to memory: every allocated frame that is
    neither reserved nor preserved is scrubbed {e and} returned to the
    allocator (the old hypervisor's heap, NPTs and management structures
    are reclaimed wholesale — nobody frees them politely).  Returns the
    number of frames reclaimed. *)

val iter_allocated : t -> (Frame.Mfn.t -> int64 option -> unit) -> unit
(** [iter_allocated t f] calls [f mfn tag] for every currently allocated
    frame with its content tag (if any), in a deterministic ascending
    order (full chunks by chunk index, then partial-chunk frames by
    frame number) independent of allocation history hash layout.  The
    post-transplant residual audit sweeps memory with this. *)

val pp_usage : Format.formatter -> t -> unit
