let attach tracer =
  Obs.Tracer.set_hook tracer (fun phase span at ->
      Log.debug (fun m ->
          m "%s %s [%s] at %a"
            (match (phase, Obs.Span.kind span) with
            | _, Obs.Span.Instant -> "instant"
            | `Open, _ -> "span open"
            | `Close, _ -> "span close")
            (Obs.Span.name span) (Obs.Span.track span) Sim.Time.pp at));
  tracer

let start obs ~at ?parent ?track ?attrs name =
  match obs with
  | None -> None
  | Some tr -> Some (Obs.Tracer.start tr ~at ?parent ?track ?attrs name)

let finish obs span ~at =
  match (obs, span) with
  | Some tr, Some s -> Obs.Tracer.finish tr s ~at
  | _ -> ()

let span obs ~at ~until ?parent ?track ?attrs name =
  match obs with
  | None -> None
  | Some tr -> Some (Obs.Tracer.span tr ~at ~until ?parent ?track ?attrs name)

let instant obs ~at ?parent ?track ?attrs name =
  match obs with
  | None -> ()
  | Some tr -> Obs.Tracer.instant tr ~at ?parent ?track ?attrs name

let event span ~at label =
  match span with None -> () | Some s -> Obs.Span.add_event s ~at label

(* --- optional-registry metric helpers --- *)

let count metrics ?(by = 1.0) ?(labels = []) name =
  match metrics with
  | None -> ()
  | Some m -> Obs.Metrics.inc ~by (Obs.Metrics.counter m ~labels name)

let gauge_set metrics ?(labels = []) name v =
  match metrics with
  | None -> ()
  | Some m -> Obs.Metrics.set (Obs.Metrics.gauge m ~labels name) v

let observe metrics ?(labels = []) ~buckets name v =
  match metrics with
  | None -> ()
  | Some m -> Obs.Metrics.observe (Obs.Metrics.histogram m ~labels ~buckets name) v

(* Shared duration buckets (seconds) for phase and downtime histograms:
   spans the paper's sub-second phases up to a full-reboot fallback. *)
let seconds_buckets =
  [ 0.01; 0.05; 0.1; 0.25; 0.5; 1.0; 2.0; 5.0; 10.0; 30.0; 60.0; 120.0 ]
