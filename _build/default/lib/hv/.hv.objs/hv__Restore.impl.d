lib/hv/restore.ml: Array List Uisr Vmstate
