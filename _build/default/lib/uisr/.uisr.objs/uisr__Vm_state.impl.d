lib/uisr/vm_state.ml: Array Bool Format Hw Int64 List String Vmstate
