(* Replicated hierarchical control plane: surviving controller crashes.

   The fleet is split into regions, each run by a sub-controller with
   its own journal, breaker and admission budget, under a root
   supervisor that detects sub-controller death by heartbeat timeout
   and rebuilds crashed regions from their journals.  The headline
   property demonstrated below: no matter where the controllers crash
   or partition — including a second crash in the middle of a resume
   replay — the final report and merged journal are byte-identical to
   the uninterrupted run.

   Run with: dune exec examples/controlplane_failover.exe *)

module CP = Cluster.Controlplane

let host_faults =
  [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.25 };
    { Fault.site = Fault.Host_timeout; trigger = Fault.Probability 0.1 };
    { Fault.site = Fault.Host_flap; trigger = Fault.Probability 0.1 } ]

let () =
  Format.printf "=== HyperTP hierarchical control plane ===@.@.";
  let cfg =
    { CP.default_config with CP.regions = 3; hosts_per_region = 8;
      global_concurrency = 6 }
  in

  (* 1. The reference run: host faults only, controllers never die. *)
  Format.printf "--- reference run (host faults, healthy controllers) ---@.";
  let reference =
    match CP.run ~fault:(Fault.make ~seed:11L host_faults) cfg with
    | CP.Finished (report, bundle) ->
      Format.printf "%s@." (CP.summary report);
      (CP.summary report, CP.merged_to_string bundle)
    | CP.Crashed _ -> assert false
  in

  (* 2. Kill a sub-controller mid-campaign and partition another.  The
     root notices the silence, restarts the region from its journal and
     catches it up; the run still [Finished]s, and everything derived
     from the timeline is unchanged. *)
  Format.printf "--- sub-controller crash + supervision partition ---@.";
  let chaotic =
    Fault.make ~seed:11L
      (host_faults
      @ [ { Fault.site = Fault.Subctl_crash; trigger = Fault.Nth_hit 9 };
          { Fault.site = Fault.Ctl_partition; trigger = Fault.Nth_hit 4 } ])
  in
  (match CP.run ~fault:chaotic cfg with
  | CP.Finished (report, bundle) ->
    Format.printf "report byte-identical to reference: %b@."
      (CP.summary report = fst reference);
    Format.printf "merged journal byte-identical to reference: %b@.@."
      (CP.merged_to_string bundle = snd reference)
  | CP.Crashed _ -> assert false);

  (* 3. Kill the root itself, then kill the next leader again while it
     is replaying a region journal (the double-fault).  Each death
     surfaces a bundle; handing it to [resume] is a leader handoff that
     re-derives the whole global view from the sub-journals.  The chaos
     plan is threaded through the chain as-is, so each Nth_hit fires
     exactly once. *)
  Format.printf "--- root crash, then crash during the resume replay ---@.";
  let double_fault =
    Fault.make ~seed:11L
      (host_faults
      @ [ { Fault.site = Fault.Root_crash; trigger = Fault.Nth_hit 4 };
          { Fault.site = Fault.Crash_during_resume; trigger = Fault.Nth_hit 7 } ])
  in
  let rec drive n = function
    | CP.Finished (report, bundle) ->
      Format.printf "finished after %d leader handoffs@." n;
      (report, bundle)
    | CP.Crashed bundle ->
      Format.printf "leader died with %d journaled events; handing off@."
        (CP.bundle_length bundle);
      drive (n + 1) (CP.resume ~fault:double_fault bundle)
  in
  let report, bundle = drive 0 (CP.run ~fault:double_fault cfg) in
  Format.printf "report byte-identical to reference: %b@."
    (CP.summary report = fst reference);
  Format.printf "merged journal byte-identical to reference: %b@.@."
    (CP.merged_to_string bundle = snd reference);

  (* 4. Bundles are plain text: durable, diffable, resumable. *)
  let text = CP.bundle_to_string bundle in
  Format.printf "--- bundle round-trip (%d bytes) ---@." (String.length text);
  (match CP.bundle_of_string text with
  | Ok bundle' ->
    Format.printf "round-trip preserved every entry: %b@."
      (CP.bundle_to_string bundle' = text)
  | Error e -> Format.printf "parse failed: %s@." e)
