lib/workload/mysql.mli: Sched Sim
