examples/quickstart.mli:
