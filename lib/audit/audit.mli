(** Differential post-transplant residual-state auditor.

    The transplant's security claim is that moving to a different
    hypervisor closes the vulnerability window — but the mitigation
    itself must not leak source-hypervisor state into the target world.
    This module proves the negative: after a transplant commits it
    sweeps the target world and compares everything it finds against a
    {e fresh-boot reference} of the target, flagging residue the
    reference cannot explain:

    - orphaned PRAM metadata pages (release was skipped or failed),
    - frames still tagged by the source hypervisor's HV State,
    - stale kexec image frames,
    - frames tagged by nobody the reference knows,
    - staged UISR blobs retained after commit (worse when still stamped
      with the source hypervisor's name),
    - management state copied verbatim instead of regenerated,
    - guest-visible fingerprints: clock state diverging from the
      pre-transplant capture beyond the modeled downtime, and device
      re-enumeration mismatches.

    Findings are severity-classified; {!scrub} remediates what can be
    remediated (its time is charged to the downtime model by the
    engines via [Hypertp.Costs]); {!Plant} is the seeded ground-truth
    injector the correctness properties are pinned against. *)

(** {1 Severity ladder} *)

type severity =
  | Benign  (** explainable, carries no information *)
  | Fingerprintable
      (** lets a guest or observer detect that a transplant happened
          (clock skew, device renumbering, unattributed frames) *)
  | Exploitable
      (** readable source-hypervisor state in the target world — the
          cross-domain residue attacks pivot on *)

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Benign] 0, [Fingerprintable] 1, [Exploitable] 2. *)

val pp_severity : Format.formatter -> severity -> unit

(** {1 Findings} *)

type kind =
  | Orphan_pram_page
  | Unreclaimed_hv_frame
  | Stale_kexec_frame
  | Unattributed_frame
  | Stale_uisr_blob
  | Mgmt_not_regenerated
  | Clock_skew
  | Device_mismatch

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_subject : string;
      (** ["mfn:N"] for frame findings, a VM name, or ["host"]; never
          contains spaces (the serialization relies on it) *)
  f_frame : int option;
  f_tag : int64 option;
  f_reason : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** Rendered through the shared {!Uisr.Diag} printer, same shape as the
    salvage diagnostics: ["[severity] kind subject: reason"]. *)

type report = {
  r_source : string;  (** ["-"] when no source reference was supplied *)
  r_target : string;
  r_frames_swept : int;
  r_guest_frames : int;
  r_findings : finding list;  (** deterministic order: frame findings in
      ascending sweep order, then staging, per-VM, management *)
}

val clean : report -> bool
val count : report -> severity -> int
val worst : report -> severity option
val pp_report : Format.formatter -> report -> unit

val to_string : report -> string
(** Deterministic line-based serialization; same report, byte-identical
    string. *)

val of_string : string -> (report, string) result
(** Inverse of {!to_string}: [of_string (to_string r) = Ok r]. *)

(** {1 Reference worlds} *)

type reference = {
  ref_hv : string;
  ref_tags : int64 list;
      (** sorted distinct non-guest content tags a fresh boot of this
          hypervisor legitimately writes (heap, nested page tables,
          per-domain metadata) *)
}

val reference_of_fresh_boot :
  ?seed:int64 -> machine:Hw.Machine.t -> (module Hv.Intf.S) -> reference
(** Boot the hypervisor on a scratch host of the same machine model
    with one small VM and collect every content tag it writes outside
    guest memory.  Fully deterministic for a fixed [seed]. *)

(** {1 The audited world} *)

type world = {
  w_host : Hv.Host.t;  (** the post-transplant host *)
  w_staging : (string * bytes) list;
      (** staged UISR blobs still held after commit (calm engines pass
          []) *)
  w_baseline : (string * Uisr.Vm_state.t) list;
      (** pre-transplant captures, for guest-visible fingerprint checks *)
  w_downtime : Sim.Time.t;  (** modeled downtime, quoted in clock-skew
      findings *)
  w_salvaged : string list;
      (** VMs restored with substituted power-on defaults — their
          default PIT is regenerated state, not residue *)
}

val world :
  ?staging:(string * bytes) list ->
  ?baseline:(string * Uisr.Vm_state.t) list ->
  ?downtime:Sim.Time.t -> ?salvaged:string list -> Hv.Host.t -> world

(** {1 Audit and scrub} *)

val run : reference:reference -> ?source:reference -> world -> report
(** Sweep the world.  [reference] is the fresh-boot reference of the
    {e target}; [source], when given, lets the sweep attribute foreign
    tags to the source hypervisor ([Unreclaimed_hv_frame], exploitable)
    instead of the weaker [Unattributed_frame]. *)

type scrub = {
  sc_world : world;  (** the world after remediation (staging dropped) *)
  sc_scrubbed : finding list;
  sc_unscrubbed : finding list;
      (** findings that cannot be remediated (a device topology change
          has already been observed by the guest) *)
  sc_frames_freed : int;
  sc_mgmt_rebuilds : int;
}

val scrub : world -> report -> scrub
(** Remediate: free residual frames, drop retained staging, restore
    captured clock state, rebuild management state.  Re-running {!run}
    on [sc_world] after a scrub with no [sc_unscrubbed] findings yields
    a clean report. *)

(** {1 Seeded residual planting (ground truth)} *)

module Plant : sig
  type t =
    | Pram_page  (** an orphaned PRAM metadata page *)
    | Hv_frames of int  (** [n] unreclaimed source-HV heap frames *)
    | Kexec_frame  (** a stale staged kernel image frame *)
    | Stale_blob of string  (** retain this VM's staged UISR blob *)
    | Clock_skew_plant of string  (** perturb this VM's PIT *)

  val to_string : t -> string

  val expected_finding : t -> kind
  (** The finding kind the auditor must report for this plant — the
      zero-false-negative property is checked against it. *)

  val apply : reference:reference -> source:reference -> world -> t list -> world
  (** Plant residue into the world.  Deterministic given the world. *)

  val random_plan : rng:Sim.Rng.t -> vms:string list -> int -> t list
  (** A seeded random plant schedule over the given VMs. *)
end
