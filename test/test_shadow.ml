(* Tests for shadow-host MigrationTP: the protocol plan and its engine
   watchdog, the abort-safety contract (qcheck over all five fault
   sites: any pre-swap fault leaves the source verified byte-identical
   and the report names the degraded strategy actually used), the
   golden cutover transcript, and the campaign's mid-shadow
   crash-then-resume determinism. *)

module S = Migration.Shadow
module M = Hypertp.Migrate
module C = Cluster.Campaign

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let qtest = QCheck_alcotest.to_alcotest

let has needle hay =
  let lh = String.length hay and ln = String.length needle in
  let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
  at 0

let params () =
  S.default_params ~nic:(Hw.Nic.create ~bandwidth_gbps:1.0 ()) ()

let gib_pages = Hw.Units.frames_of_bytes (Hw.Units.gib 1)

(* --- the analytic plan --- *)

let test_plan_converging () =
  let p =
    S.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:15.0
  in
  checkb "converging" true (p.S.verdict = S.Converging);
  checkb "no violator" true (p.S.violator = None);
  checkb "swap pays a real downtime" true
    (Sim.Time.compare p.S.cutover_downtime Sim.Time.zero > 0);
  (* The whole point of the shadow: on a hot guest the classic plan
     hits its round cap and stops-and-copies a large residue, while
     the deeper replay budget keeps shrinking to the tiny cutover
     threshold.  At 10k dirty pages/s the blackout is ~1.4% of
     classic's. *)
  let busy =
    S.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:10_000.0
  in
  let classic =
    Migration.Precopy.plan
      (Migration.Precopy.default_params
         ~nic:(Hw.Nic.create ~bandwidth_gbps:1.0 ())
         ())
      ~page_bytes:4096 ~total_pages:gib_pages ~dirty_pages_per_sec:10_000.0
  in
  checkb "busy cutover downtime < 20% of classic stop-and-copy" true
    (Sim.Time.to_sec_f busy.S.cutover_downtime
    < 0.2 *. Sim.Time.to_sec_f classic.Migration.Precopy.stop_copy_time)

let test_plan_diverging () =
  let p =
    S.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
      ~dirty_pages_per_sec:1e9
  in
  (match p.S.verdict with
  | S.Diverging i -> checkb "positive trip round" true (i >= 1)
  | S.Converging -> Alcotest.fail "1e9 pages/s must diverge");
  checkb "no swap, no downtime" true
    (Sim.Time.compare p.S.cutover_downtime Sim.Time.zero = 0);
  checki "no final dirty set" 0 p.S.final_pages;
  checkb "violator round named" true (p.S.violator <> None)

(* --- the engine watchdog agrees with the pure rule --- *)

let watchdog_rounds p =
  p.S.stream_round :: p.S.replay_rounds
  @ (match p.S.violator with Some r -> [ r ] | None -> [])

let prop_watchdog_agreement =
  QCheck.Test.make ~count:50
    ~name:"engine watchdog agrees with the analytic verdict"
    QCheck.(int_range 10 100_000)
    (fun dirty ->
      let p =
        S.plan (params ()) ~page_bytes:4096 ~total_pages:gib_pages
          ~dirty_pages_per_sec:(float_of_int dirty *. 1000.0)
      in
      let rounds = watchdog_rounds p in
      let engine = Sim.Engine.create () in
      let outcome = S.run_watchdog (params ()) ~engine ~rounds in
      match (S.watchdog_verdict (params ()) rounds, outcome) with
      | S.Converging, S.Watchdog_passed _ -> true
      | S.Diverging i, S.Watchdog_tripped { trip_round; _ } -> i = trip_round
      | S.Converging, S.Watchdog_tripped _
      | S.Diverging _, S.Watchdog_passed _ -> false)

(* --- abort safety: the qcheck pin --- *)

let provision_src ~seed ~vms =
  Hypertp.Api.provision ~seed ~name:"shadow-src" ~machine:(Hw.Machine.m1 ())
    ~hv:Hv.Kind.Xen
    (List.init vms (fun i ->
         Vmstate.Vm.config
           ~name:(Printf.sprintf "vm%d" i)
           ~ram:(Hw.Units.gib 1) ()))

let checksums host =
  List.map
    (fun (vm : Vmstate.Vm.t) ->
      (vm.Vmstate.Vm.config.Vmstate.Vm.name,
       Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem))
    (Hv.Host.vms host)

(* Any fault strictly before the identity swap must leave the source
   provably untouched: management plane consistent, every VM running
   with its entry checksum.  When the run then defers, the source still
   holds the (byte-identical) VMs; when the ladder degrades to classic
   MigrationTP, the report must name the site and carry the embedded
   classic report. *)
let prop_source_untouched_on_abort =
  let sites = Fault.shadow_sites in
  QCheck.Test.make ~count:40
    ~name:"pre-swap faults: source intact, degraded strategy named"
    QCheck.(
      quad (int_range 0 (List.length sites - 1)) (int_range 0 10_000)
        (int_range 1 3) bool)
    (fun (si, seed, vms, ladder) ->
      let site = List.nth sites si in
      let src = provision_src ~seed:(Int64.of_int seed) ~vms in
      let entry = checksums src in
      let spare = Hv.Host.create ~name:"shadow-spare" (Hw.Machine.m1 ()) in
      let fault =
        Fault.make ~seed:(Int64.of_int seed)
          [ { Fault.site; trigger = Fault.Nth_hit 1 } ]
      in
      let r =
        Hypertp.Api.transplant_shadow
          ~rng:(Sim.Rng.create (Int64.of_int seed))
          ~fault ~ladder ~src ~spare ~target:Hv.Kind.Kvm ()
      in
      if not r.M.sh_source_intact then
        QCheck.Test.fail_reportf "source damaged at %s"
          (Fault.site_to_string site);
      let expect_defer = site = Fault.Spare_exhausted || not ladder in
      (match r.M.sh_strategy with
      | M.Shadow_cutover ->
        QCheck.Test.fail_reportf "swap committed despite %s"
          (Fault.site_to_string site)
      | M.Shadow_deferred s ->
        if not expect_defer then
          QCheck.Test.fail_reportf "deferred with a live ladder at %s"
            (Fault.site_to_string site);
        if s <> site then QCheck.Test.fail_report "wrong site named";
        (* Deferred: the source still serves its VMs, byte-identical
           to entry. *)
        if checksums src <> entry then
          QCheck.Test.fail_report "source VMs not byte-identical";
        if not (List.for_all Vmstate.Vm.is_running (Hv.Host.vms src)) then
          QCheck.Test.fail_report "a source VM stopped";
        if Hv.Host.vm_count src <> vms then
          QCheck.Test.fail_report "source lost a VM"
      | M.Classic_fallback s ->
        if expect_defer then
          QCheck.Test.fail_reportf "classic ran at %s (ladder=%b)"
            (Fault.site_to_string site) ladder;
        if s <> site then QCheck.Test.fail_report "wrong site named";
        if r.M.sh_classic = None then
          QCheck.Test.fail_report "no embedded classic report";
        (* Degraded: classic MigrationTP moved the VMs to the staged
           spare — that is the ladder working, not damage. *)
        if Hv.Host.vm_count spare <> vms then
          QCheck.Test.fail_report "classic fallback lost a VM");
      true)

(* --- the committed cutover --- *)

let test_calm_cutover () =
  let src = provision_src ~seed:42L ~vms:2 in
  let spare = Hv.Host.create ~name:"shadow-spare" (Hw.Machine.m1 ()) in
  let r =
    Hypertp.Api.transplant_shadow ~rng:(Sim.Rng.create 42L) ~src ~spare
      ~target:Hv.Kind.Kvm ()
  in
  checkb "swap committed" true (r.M.sh_strategy = M.Shadow_cutover);
  checkb "vacuously intact" true r.M.sh_source_intact;
  checki "both VMs on the spare" 2 (Hv.Host.vm_count spare);
  checki "source reclaimed" 0 (Hv.Host.vm_count src);
  (match r.M.sh_checks with
  | Some c ->
    checkb "cutover checks pass" true
      (c.M.memory_equal && c.M.connections_preserved
     && c.M.management_consistent)
  | None -> Alcotest.fail "no cutover checks on a committed swap");
  (* The phase ledger reconciles exactly. *)
  let sum =
    List.fold_left
      (fun acc (_, d) -> Sim.Time.add acc d)
      Sim.Time.zero r.M.sh_phases
  in
  checkb "phases sum to the shadow time exactly" true
    (Sim.Time.compare sum r.M.sh_shadow_time = 0);
  checki "all five phases present" 5 (List.length r.M.sh_phases);
  checkb "watchdog cancelled once per VM" true (r.M.sh_watchdog_cancels = 2);
  (* The acceptance pin, at the engine level: the committed cutover's
     downtime stays under 20 % of classic MigrationTP on an identical
     pair (BENCH_shadow.json carries the same ratio at fleet scale). *)
  let csrc = provision_src ~seed:42L ~vms:2 in
  let cdst = Hv.Host.create ~name:"classic-dst" (Hw.Machine.m1 ()) in
  Hv.Host.boot_hypervisor cdst (Hypertp.Api.hypervisor_of Hv.Kind.Kvm);
  let classic =
    Hypertp.Api.transplant_migration ~rng:(Sim.Rng.create 42L) ~src:csrc
      ~dst:cdst ()
  in
  let classic_downtime =
    List.fold_left
      (fun acc (v : M.vm_report) -> Sim.Time.max acc v.M.downtime)
      Sim.Time.zero classic.M.per_vm
  in
  checkb "shadow downtime < 20% of classic on the same pair" true
    (Sim.Time.to_sec_f r.M.sh_downtime
    < 0.2 *. Sim.Time.to_sec_f classic_downtime)

let test_cutover_golden () =
  (* Mirrors `hypertp-cli shadow --vms 2` exactly (machine m1, Xen ->
     KVM, 1 GiB VMs, seed 42): the CLI transcript is the pin. *)
  let golden =
    let path =
      List.find Sys.file_exists
        [ "golden/shadow_cutover.txt"; "test/golden/shadow_cutover.txt" ]
    in
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let src = provision_src ~seed:42L ~vms:2 in
  let spare = Hv.Host.create ~name:"cli-spare" (Hw.Machine.m1 ()) in
  let r =
    Hypertp.Api.transplant_shadow ~rng:(Sim.Rng.create 42L) ~src ~spare
      ~target:Hv.Kind.Kvm ()
  in
  checks "cutover report matches the golden pin" golden
    (Format.asprintf "%a@." M.pp_shadow_report r)

(* --- the campaign's shadow rung --- *)

let test_campaign_shadow_rung () =
  (* Crash half the inplace attempts: with two spare lanes the failed
     hosts take the shadow rung until the lanes saturate, then drain. *)
  let cfg = { C.default_config with C.nodes = 6; shadow_spares = 2 } in
  let fault =
    Fault.make ~seed:3L
      [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.5 } ]
  in
  let r, j =
    match C.run ~fault cfg with
    | C.Finished (r, j) -> (r, j)
    | C.Crashed _ -> Alcotest.fail "no controller crash armed"
  in
  let n_shadow =
    List.length
      (List.filter (fun h -> h.C.hr_status = C.Shadow_cutover) r.C.hosts)
  in
  checkb "at least one host took the shadow rung" true (n_shadow >= 1);
  checkb "lanes bound concurrency, not totals" true
    (n_shadow <= List.length r.C.hosts);
  checki "shadow VMs counted" r.C.vms_shadow
    (List.fold_left
       (fun acc h ->
         if h.C.hr_status = C.Shadow_cutover then acc + h.C.hr_vms_in_place
         else acc)
       0 r.C.hosts);
  checki "accounting closes" r.C.vms_total (C.vms_accounted r);
  checkb "journal records the shadow admissions" true
    (has "shadow" (C.journal_to_string j))

let test_campaign_default_journal_shadow_free () =
  (* shadow_spares = 0 (the default) must leave campaigns and their
     journals byte-identical to pre-shadow runs: no shadow rung taken,
     no shadow token anywhere in the serialisation. *)
  let _, j =
    match C.run C.default_config with
    | C.Finished (r, j) -> (r, j)
    | C.Crashed _ -> Alcotest.fail "calm run crashed"
  in
  let text = C.journal_to_string j in
  checkb "no shadow tokens in the default journal" false
    (has "shadow" text || has "sspare" text)

let test_campaign_shadow_config_validation () =
  checkb "negative spares rejected" true
    (match C.run { C.default_config with C.shadow_spares = -1 } with
    | _ -> false
    | exception Hypertp.Error.Error e -> e.Hypertp.Error.site = "Campaign")

(* Crash-then-resume determinism with the shadow rung active and the
   shadow fault sites armed: the resumed report (structural equality,
   shadow fields included) matches the uninterrupted run, through a
   journal text round-trip. *)
let shadow_injections p =
  [
    { Fault.site = Fault.Host_crash; trigger = Fault.Probability p };
    { Fault.site = Fault.Shadow_stage_fail;
      trigger = Fault.Probability (p /. 2.0) };
    { Fault.site = Fault.Shadow_diverge;
      trigger = Fault.Probability (p /. 3.0) };
  ]

let rec complete ~fault = function
  | C.Finished (r, _) -> r
  | C.Crashed journal -> complete ~fault (C.resume ~fault journal)

let prop_resume_mid_shadow =
  QCheck.Test.make ~count:15 ~name:"resume determinism mid-shadow"
    QCheck.(
      triple (int_range 0 500) (oneofl [ 0.35; 0.6; 0.9 ]) (int_range 1 30))
    (fun (seed, p, crash_after) ->
      let fault_seed = Int64.of_int (seed * 7919) in
      let cfg =
        { C.default_config with
          C.seed = Int64.of_int seed; nodes = 6; shadow_spares = 2 }
      in
      let plain () = Fault.make ~seed:fault_seed (shadow_injections p) in
      let crashing () =
        Fault.make ~seed:fault_seed
          (shadow_injections p
          @ [ { Fault.site = Fault.Controller_crash;
                trigger = Fault.Nth_hit crash_after } ])
      in
      let uninterrupted =
        complete ~fault:(plain ()) (C.run ~fault:(plain ()) cfg)
      in
      let resumed =
        match C.run ~fault:(crashing ()) cfg with
        | C.Finished (r, _) -> r
        | C.Crashed journal ->
          let text = C.journal_to_string journal in
          let journal' =
            match C.journal_of_string text with
            | Ok j -> j
            | Error e -> QCheck.Test.fail_reportf "journal round-trip: %s" e
          in
          complete ~fault:(crashing ())
            (C.resume ~fault:(crashing ()) journal')
      in
      if uninterrupted <> resumed then
        QCheck.Test.fail_reportf
          "mid-shadow crash-then-resume diverged (seed=%d p=%.2f \
           crash_after=%d)"
          seed p crash_after;
      C.vms_accounted resumed = resumed.C.vms_total)

let suites =
  [
    ( "shadow.plan",
      [
        Alcotest.test_case "converging plan" `Quick test_plan_converging;
        Alcotest.test_case "diverging plan" `Quick test_plan_diverging;
        qtest prop_watchdog_agreement;
      ] );
    ( "shadow.abort",
      [
        qtest prop_source_untouched_on_abort;
        Alcotest.test_case "calm cutover" `Quick test_calm_cutover;
        Alcotest.test_case "cutover golden" `Quick test_cutover_golden;
      ] );
    ( "shadow.campaign",
      [
        Alcotest.test_case "shadow rung taken" `Quick
          test_campaign_shadow_rung;
        Alcotest.test_case "default journal shadow-free" `Quick
          test_campaign_default_journal_shadow_free;
        Alcotest.test_case "config validation" `Quick
          test_campaign_shadow_config_validation;
        Alcotest.test_case "resume determinism mid-shadow (qcheck)" `Slow
          (fun () -> QCheck.Test.check_exn prop_resume_mid_shadow);
      ] );
  ]
