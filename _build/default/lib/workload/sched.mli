(** Execution schedules: what condition a VM is in over time.

    Transplant machinery produces a schedule (running on Xen, degraded
    during pre-copy, paused during downtime, running on KVM); workload
    models integrate application progress over it. *)

type condition =
  | Running of Profile.platform
  | Degraded of Profile.platform * float
      (** running with a completion-time stretch factor > 1 *)
  | Stopped

type t
(** A piecewise-constant schedule covering [0, +inf). *)

val always : Profile.platform -> t

val make : initial:Profile.platform -> (float * condition) list -> t
(** [make ~initial changes] starts [Running initial] at t=0; [changes]
    are (time_s, condition) breakpoints, strictly increasing in time. *)

val condition_at : t -> float -> condition

val rate_factor : t -> float -> base:(Profile.platform -> float) -> float
(** Instantaneous rate at time [t]: [base p] under [Running p],
    [base p /. stretch] under [Degraded], 0 when stopped. *)

val work_between : t -> float -> float -> base:(Profile.platform -> float) -> float
(** Integral of {!rate_factor} over [\[t0, t1\]]. *)

val completion_time : t -> start:float -> work:float ->
  base:(Profile.platform -> float) -> float
(** Time at which [work] units accumulated since [start] complete.
    Raises [Invalid_argument] if the schedule ends stopped forever with
    work remaining (cannot happen with these constructors). *)

val breakpoints : t -> float list
(** Change times, ascending (excluding t = 0). *)

val pp : Format.formatter -> t -> unit
