lib/pram/build.mli: Entry Hw Layout Uisr
