lib/cluster/btrplace.mli: Format Model
