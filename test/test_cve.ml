(* Tests for the vulnerability study: CVSS v2 scoring, the Table 1
   dataset, window statistics and the transplant policy. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 0.051) msg
let qtest = QCheck_alcotest.to_alcotest

(* --- Cvss --- *)

let score s =
  match Cve.Cvss.parse s with
  | Ok v -> Cve.Cvss.base_score v
  | Error e -> Alcotest.fail e

(* Reference scores from the CVSS v2 specification / NVD calculator. *)
let test_cvss_known_scores () =
  checkf "worst case" 10.0 (score "AV:N/AC:L/Au:N/C:C/I:C/A:C");
  checkf "venom-like" 7.7 (score "AV:A/AC:L/Au:S/C:C/I:C/A:C");
  checkf "dos only" 5.0 (score "AV:N/AC:L/Au:N/C:N/I:N/A:P");
  checkf "local full" 7.2 (score "AV:L/AC:L/Au:N/C:C/I:C/A:C");
  checkf "no impact" 0.0 (score "AV:N/AC:L/Au:N/C:N/I:N/A:N")

let test_cvss_parse_roundtrip () =
  let s = "AV:A/AC:M/Au:S/C:P/I:N/A:C" in
  match Cve.Cvss.parse s with
  | Ok v -> Alcotest.check Alcotest.string "roundtrip" s (Cve.Cvss.to_string v)
  | Error e -> Alcotest.fail e

let test_cvss_parse_errors () =
  checkb "missing field" true (Result.is_error (Cve.Cvss.parse "AV:N/AC:L"));
  checkb "bad value" true
    (Result.is_error (Cve.Cvss.parse "AV:X/AC:L/Au:N/C:C/I:C/A:C"))

let test_severity_thresholds () =
  checkb "7.0 critical" true (Cve.Cvss.severity_of_score 7.0 = Cve.Cvss.Critical);
  checkb "6.9 medium" true (Cve.Cvss.severity_of_score 6.9 = Cve.Cvss.Medium);
  checkb "4.0 medium" true (Cve.Cvss.severity_of_score 4.0 = Cve.Cvss.Medium);
  checkb "3.9 low" true (Cve.Cvss.severity_of_score 3.9 = Cve.Cvss.Low)

let prop_cvss_score_bounds =
  let gen =
    QCheck.Gen.(
      let av = oneofl Cve.Cvss.[ Local; Adjacent_network; Network ] in
      let ac = oneofl Cve.Cvss.[ High; Medium_c; Low_c ] in
      let au = oneofl Cve.Cvss.[ Multiple; Single; None_a ] in
      let imp = oneofl Cve.Cvss.[ None_i; Partial; Complete ] in
      map
        (fun (av, ac, au, (c, i, a)) ->
          { Cve.Cvss.av; ac; au; conf = c; integ = i; avail = a })
        (quad av ac au (triple imp imp imp)))
  in
  QCheck.Test.make ~name:"cvss scores within [0, 10]"
    (QCheck.make gen)
    (fun v ->
      let s = Cve.Cvss.base_score v in
      s >= 0.0 && s <= 10.0)

let prop_cvss_impact_monotone =
  QCheck.Test.make ~name:"raising availability impact never lowers the score"
    (QCheck.make
       QCheck.Gen.(
         let av = oneofl Cve.Cvss.[ Local; Adjacent_network; Network ] in
         let imp = oneofl Cve.Cvss.[ None_i; Partial; Complete ] in
         pair av imp))
    (fun (av, conf) ->
      let mk avail =
        { Cve.Cvss.av; ac = Cve.Cvss.Low_c; au = Cve.Cvss.None_a; conf;
          integ = Cve.Cvss.None_i; avail }
      in
      Cve.Cvss.base_score (mk Cve.Cvss.Partial)
      >= Cve.Cvss.base_score (mk Cve.Cvss.None_i)
      && Cve.Cvss.base_score (mk Cve.Cvss.Complete)
         >= Cve.Cvss.base_score (mk Cve.Cvss.Partial))

(* --- Nvd dataset --- *)

let test_table1_matches_paper () =
  let rows = Cve.Nvd.table1 () in
  let expect =
    [ (2013, 3, 38, 3, 21, 0, 0); (2014, 4, 27, 1, 12, 0, 0);
      (2015, 11, 20, 1, 4, 1, 2); (2016, 6, 12, 3, 3, 0, 0);
      (2017, 17, 38, 1, 7, 0, 0); (2018, 7, 21, 2, 5, 0, 0);
      (2019, 7, 15, 2, 4, 0, 0) ]
  in
  List.iter2
    (fun (y, xc, xm, kc, km, cc, cm) (r : Cve.Nvd.table1_row) ->
      checki (Printf.sprintf "%d year" y) y r.row_year;
      checki (Printf.sprintf "%d xen crit" y) xc r.xen_crit;
      checki (Printf.sprintf "%d xen med" y) xm r.xen_med;
      checki (Printf.sprintf "%d kvm crit" y) kc r.kvm_crit;
      checki (Printf.sprintf "%d kvm med" y) km r.kvm_med;
      checki (Printf.sprintf "%d common crit" y) cc r.common_crit;
      checki (Printf.sprintf "%d common med" y) cm r.common_med)
    expect rows;
  let t = Cve.Nvd.total rows in
  checki "xen crit total" 55 t.xen_crit;
  checki "kvm crit total" 13 t.kvm_crit;
  checki "kvm med total" 56 t.kvm_med;
  checki "common crit total" 1 t.common_crit;
  checki "common med total" 2 t.common_med
  (* Note: the paper's total row says 136 Xen medium but its own column
     sums to 171; we follow the per-year values. *)

let test_real_cves_present () =
  checkb "VENOM" true (Cve.Nvd.find "CVE-2015-3456" <> None);
  checkb "alignment check DoS" true (Cve.Nvd.find "CVE-2015-8104" <> None);
  checkb "debug exception DoS" true (Cve.Nvd.find "CVE-2015-5307" <> None);
  (match Cve.Nvd.find "CVE-2016-6258" with
  | Some r ->
    checkb "7 day window" true (r.window_days = Some 7);
    checkb "xen only" true
      (Cve.Nvd.affects_xen r && not (Cve.Nvd.affects_kvm r))
  | None -> Alcotest.fail "CVE-2016-6258 missing");
  match Cve.Nvd.find "CVE-2015-3456" with
  | Some venom ->
    checkb "affects both" true
      (Cve.Nvd.affects_xen venom && Cve.Nvd.affects_kvm venom);
    checkb "critical" true (venom.severity = Cve.Cvss.Critical);
    checkb "qemu category" true (venom.category = Cve.Nvd.Qemu)
  | None -> Alcotest.fail "VENOM missing"

let test_vectors_match_severity () =
  List.iter
    (fun (r : Cve.Nvd.record) ->
      let s = Cve.Cvss.base_score r.vector in
      checkb
        (Printf.sprintf "%s vector band (%.1f)" r.id s)
        true
        (Cve.Cvss.severity_of_score s = r.severity))
    Cve.Nvd.all

let test_category_breakdown_shape () =
  let xen_crit = Cve.Nvd.category_breakdown ~xen:true Cve.Cvss.Critical in
  (* Section 2.1: PV mechanisms dominate Xen's critical flaws. *)
  (match xen_crit with
  | (Cve.Nvd.Pv_mechanisms, n) :: _ -> checkb "PV > 1/3" true (n * 3 >= 55)
  | _ -> Alcotest.fail "PV mechanisms should lead");
  let kvm_crit = Cve.Nvd.category_breakdown ~xen:false Cve.Cvss.Critical in
  checkb "no PV category for kvm" true
    (not (List.mem_assoc Cve.Nvd.Pv_mechanisms kvm_crit))

(* --- Window --- *)

let test_kvm_window_stats () =
  let s = Cve.Window.kvm_stats () in
  checki "24 documented windows" 24 s.Cve.Window.count;
  checkb "mean 71 (section 2.2)" true
    (Float.abs (s.Cve.Window.mean_days -. 71.0) < 0.5);
  checki "min 8 (CVE-2013-0311)" 8 s.Cve.Window.min_days;
  checki "max 180 (CVE-2017-12188)" 180 s.Cve.Window.max_days;
  checkb "60%+ above 60 days" true (s.Cve.Window.over_60_fraction >= 0.60)

let test_advice () =
  let fleet = [ "xen"; "kvm" ] in
  let venom = Option.get (Cve.Nvd.find "CVE-2015-3456") in
  checkb "no safe alternative for a common flaw" true
    (Cve.Window.advise ~fleet ~current:"xen" venom
    = Cve.Window.No_safe_alternative);
  let xen_only = Option.get (Cve.Nvd.find "CVE-2016-6258") in
  checkb "transplant to kvm" true
    (Cve.Window.advise ~fleet ~current:"xen" xen_only
    = Cve.Window.Transplant_to "kvm");
  checkb "kvm fleet unaffected" true
    (Cve.Window.advise ~fleet ~current:"kvm" xen_only = Cve.Window.No_action);
  let medium = Option.get (Cve.Nvd.find "CVE-2015-8104") in
  checkb "medium: no transplant" true
    (Cve.Window.advise ~fleet ~current:"xen" medium = Cve.Window.No_action)

(* Cost-aware advice: the wait-vs-transplant crossover.  With a 48
   host-hour campaign and unit risk weight the break-even sits at
   exactly 2 days of patch delay. *)
let test_costed_crossover () =
  let fleet = [ "xen"; "kvm"; "bhyve" ] in
  checkf "48h cost, unit weight" 2.0
    (Cve.Window.transplant_break_even_days ~transplant_cost_hours:48.0
       ~risk_weight:1.0);
  checkf "doubling the risk halves the break-even" 1.0
    (Cve.Window.transplant_break_even_days ~transplant_cost_hours:48.0
       ~risk_weight:2.0);
  (match
     Cve.Window.transplant_break_even_days ~transplant_cost_hours:(-1.0)
       ~risk_weight:1.0
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative cost must be rejected");
  let xen_only = Option.get (Cve.Nvd.find "CVE-2016-6258") in
  let costed delay =
    Cve.Window.advise_costed ~fleet ~current:"xen" ~transplant_cost_hours:48.0
      (Cve.Nvd.timed ~patch_delay_days:delay xen_only)
  in
  checkb "at the break-even the patch wins" true
    (costed 2.0 = Cve.Window.Wait_for_patch);
  checkb "just past it the transplant wins" true
    (costed 2.001 = Cve.Window.Transplant_to "kvm");
  checkb "a coordinated same-week patch always wins" true
    (costed 0.5 = Cve.Window.Wait_for_patch);
  (* The crossover only refines a Transplant_to verdict. *)
  let medium = Option.get (Cve.Nvd.find "CVE-2015-8104") in
  checkb "medium stays no-action" true
    (Cve.Window.advise_costed ~fleet ~current:"xen"
       ~transplant_cost_hours:1000.0
       (Cve.Nvd.timed ~patch_delay_days:100.0 medium)
    = Cve.Window.No_action);
  (* Raising the risk weight pulls the break-even below the delay. *)
  checkb "risk weight flips the verdict" true
    (Cve.Window.advise_costed ~fleet ~current:"xen" ~transplant_cost_hours:48.0
       ~risk_weight:2.0
       (Cve.Nvd.timed ~patch_delay_days:1.5 xen_only)
    = Cve.Window.Transplant_to "kvm")

let test_patch_delay_sampler () =
  let rng = Sim.Rng.create 11L in
  for _ = 1 to 200 do
    let d = Cve.Window.sample_patch_delay ~rng () in
    checkb "delay positive" true (d > 0.0)
  done;
  let rng = Sim.Rng.create 12L in
  for _ = 1 to 100 do
    let d = Cve.Window.sample_patch_delay ~rng ~coordinated_fraction:1.0 () in
    checkb "coordinated delays ship with the advisory" true
      (d >= 0.25 && d <= 3.0)
  done;
  let rng = Sim.Rng.create 13L in
  let min_window =
    float_of_int (List.fold_left Stdlib.min max_int (Cve.Window.empirical_windows ()))
  in
  for _ = 1 to 100 do
    let d = Cve.Window.sample_patch_delay ~rng ~coordinated_fraction:0.0 () in
    checkb "empirical delays stay near the documented windows" true
      (d >= 0.8 *. min_window)
  done;
  match Cve.Window.sample_patch_delay ~rng ~coordinated_fraction:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fraction outside [0, 1] must be rejected"

let test_taxonomy () =
  (* Every dataset record lands in exactly one class, and the string
     conversion round-trips. *)
  List.iter
    (fun r ->
      let t = Cve.Nvd.classify r in
      checkb "taxonomy round-trips" true
        (Cve.Nvd.taxonomy_of_string (Cve.Nvd.taxonomy_to_string t) = Some t))
    Cve.Nvd.all;
  let venom = Option.get (Cve.Nvd.find "CVE-2015-3456") in
  checkb "shared QEMU code is cross-domain" true
    (Cve.Nvd.classify venom = Cve.Nvd.Cross_domain);
  let meltdown = Option.get (Cve.Nvd.find "CVE-2017-5754") in
  checkb "hardware-level flaws are cross-domain" true
    (Cve.Nvd.classify meltdown = Cve.Nvd.Cross_domain);
  (* The timed wrapper: documented window as the default delay, the
     30-day low estimate otherwise, negatives rejected. *)
  let xen_only = Option.get (Cve.Nvd.find "CVE-2016-6258") in
  let t = Cve.Nvd.timed xen_only in
  checkf "documented window is the default delay"
    (float_of_int (Option.get xen_only.Cve.Nvd.window_days))
    t.Cve.Nvd.patch_delay_days;
  let undocumented =
    { xen_only with Cve.Nvd.id = "CVE-2016-9999"; window_days = None }
  in
  checkf "30-day low estimate when undocumented" 30.0
    (Cve.Nvd.timed undocumented).Cve.Nvd.patch_delay_days;
  match Cve.Nvd.timed ~patch_delay_days:(-1.0) xen_only with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay must be rejected"

let test_hardware_level_flaws () =
  checki "spectre v1/v2 + meltdown" 3 (List.length Cve.Nvd.hardware_level);
  (* Excluded from Table 1, per the paper's footnote. *)
  checkb "not in the table dataset" true
    (List.for_all
       (fun (h : Cve.Nvd.record) ->
         not (List.exists (fun r -> r.Cve.Nvd.id = h.Cve.Nvd.id) Cve.Nvd.all))
       Cve.Nvd.hardware_level);
  (match Cve.Nvd.find "CVE-2017-5754" with
  | Some meltdown ->
    checkb "hardware level" true (Cve.Nvd.is_hardware_level meltdown);
    checkb "216-day window" true (meltdown.window_days = Some 216);
    (* Transplant cannot escape the CPU, no matter the repertoire. *)
    checkb "no safe alternative even with three hypervisors" true
      (Cve.Window.advise ~fleet:[ "xen"; "kvm"; "bhyve" ] ~current:"xen"
         meltdown
      = Cve.Window.No_safe_alternative)
  | None -> Alcotest.fail "meltdown missing")

let test_transplants_per_year_low () =
  let per_year =
    Cve.Window.transplants_needed_per_year ~fleet:[ "xen"; "kvm" ]
      ~current:"xen"
  in
  checki "seven years" 7 (List.length per_year);
  (* Critical-only policy: a handful to a few dozen per year, never the
     medium flood. *)
  List.iter
    (fun (_, n) -> checkb "bounded" true (n >= 0 && n <= 20))
    per_year

let suites =
  [
    ( "cve.cvss",
      [
        Alcotest.test_case "known scores" `Quick test_cvss_known_scores;
        Alcotest.test_case "parse roundtrip" `Quick test_cvss_parse_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_cvss_parse_errors;
        Alcotest.test_case "severity thresholds" `Quick test_severity_thresholds;
        qtest prop_cvss_score_bounds;
        qtest prop_cvss_impact_monotone;
      ] );
    ( "cve.nvd",
      [
        Alcotest.test_case "Table 1 counts" `Quick test_table1_matches_paper;
        Alcotest.test_case "real CVEs embedded" `Quick test_real_cves_present;
        Alcotest.test_case "vectors match declared severity" `Quick
          test_vectors_match_severity;
        Alcotest.test_case "category breakdown" `Quick test_category_breakdown_shape;
      ] );
    ( "cve.window",
      [
        Alcotest.test_case "kvm window stats" `Quick test_kvm_window_stats;
        Alcotest.test_case "transplant advice" `Quick test_advice;
        Alcotest.test_case "cost-aware crossover" `Quick test_costed_crossover;
        Alcotest.test_case "patch-delay sampler" `Quick test_patch_delay_sampler;
        Alcotest.test_case "attack-surface taxonomy" `Quick test_taxonomy;
        Alcotest.test_case "hardware-level flaws (Spectre/Meltdown)" `Quick
          test_hardware_level_flaws;
        Alcotest.test_case "transplants/year stays low" `Quick
          test_transplants_per_year_low;
      ] );
  ]
