(** Page layout and size accounting for the PRAM structure (Fig. 4).

    The structure lives in 4 KiB metadata pages: the PRAM pointer page
    links root directory pages; root directory pages hold file pointers;
    each file-info page describes one VM's memory and heads a chain of
    node pages full of 8-byte page entries.  Fig. 14's "PRAM structures"
    series is the total byte count computed here. *)

val page_bytes : int (* 4096 *)

val node_header_bytes : int
val entries_per_node : int

val file_pointers_per_root : int
val root_pointers_per_pointer_page : int

val node_pages_for : entries:int -> int
val root_pages_for : files:int -> int

type accounting = {
  pointer_pages : int;
  root_pages : int;
  file_info_pages : int;
  node_pages : int;
  total_pages : int;
  total_bytes : int;
  entry_count : int;
}

val account : entries_per_file:int list -> accounting
(** Size the structure for one file per VM with the given entry
    counts. *)

val pp_accounting : Format.formatter -> accounting -> unit
