lib/hv/host.mli: Format Hashtbl Hw Intf Kind Sim Uisr Vmstate
