lib/workload/mysql.ml: Profile Sched Sim Vmstate
