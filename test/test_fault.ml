(* Tests for the fault-injection DSL and the transactional/recovery
   semantics it drives through InPlaceTP, MigrationTP and the cluster
   upgrade executor. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let small_vm ?(name = "vm0") ?(vcpus = 1) ?(mib = 256)
    ?(workload = Vmstate.Vm.Wl_idle) () =
  Vmstate.Vm.config ~name ~vcpus ~ram:(Hw.Units.mib mib) ~workload ()

let xen_host ?(vms = [ small_vm () ]) () =
  Hypertp.Api.provision ~name:"fh" ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Xen
    vms

let kvm_dst ?(name = "fdst") () =
  Hypertp.Api.provision ~name ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Kvm []

let one site trigger = Fault.make [ { Fault.site; trigger } ]

(* --- the plan DSL itself --- *)

let test_spec_parsing () =
  (match Fault.parse_injection "kexec_jump:1" with
  | Ok { Fault.site = Fault.Kexec_jump; trigger = Fault.Nth_hit 1 } -> ()
  | _ -> Alcotest.fail "kexec_jump:1");
  (match Fault.parse_injection "vm_restore:vm=vm3" with
  | Ok { Fault.site = Fault.Vm_restore; trigger = Fault.On_vm "vm3" } -> ()
  | _ -> Alcotest.fail "vm_restore:vm=vm3");
  (match Fault.parse_spec "migration_link_drop:p=0.1,seed=42" with
  | Ok
      {
        Fault.spec_injection =
          { Fault.site = Fault.Migration_link_drop;
            trigger = Fault.Probability p };
        spec_seed = Some 42L;
      } ->
    checkb "p" true (Float.equal p 0.1)
  | _ -> Alcotest.fail "migration_link_drop:p=0.1,seed=42");
  checkb "unknown site rejected" true
    (Result.is_error (Fault.parse_injection "warp_core:1"));
  checkb "bad probability rejected" true
    (Result.is_error (Fault.parse_injection "host_crash:p=1.5"));
  checkb "missing trigger rejected" true
    (Result.is_error (Fault.parse_injection "host_crash"));
  checkb "bad seed rejected" true
    (Result.is_error (Fault.parse_spec "host_crash:1,seed=banana"));
  (* round-trip every site name *)
  List.iter
    (fun s ->
      checkb (Fault.site_to_string s) true
        (Fault.site_of_string (Fault.site_to_string s) = Some s))
    Fault.all_sites

let test_trigger_validation () =
  checkb "nth_hit 0" true
    (try
       ignore (one Fault.Kexec_jump (Fault.Nth_hit 0));
       false
     with Hypertp_error.Error e ->
       e.Hypertp_error.site = "Fault.make"
       && e.Hypertp_error.reason = "kexec_jump: Nth_hit must be positive"
       && e.Hypertp_error.hint = Some "Nth_hit counts hits starting at 1");
  checkb "p > 1" true
    (try
       ignore (one Fault.Host_crash (Fault.Probability 1.5));
       false
     with Hypertp_error.Error e ->
       e.Hypertp_error.site = "Fault.make"
       && e.Hypertp_error.reason = "host_crash: probability outside [0, 1]"
       && e.Hypertp_error.hint = Some "use a probability in [0, 1], e.g. p=0.25")

let test_trace_determinism () =
  (* Same seed => bit-identical decision trace, draw by draw. *)
  let mk () =
    Fault.make ~seed:0xBEEFL
      [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability 0.3 } ]
  in
  let drive f =
    List.init 50 (fun i -> Fault.fire f ~vm:(Printf.sprintf "h%d" i) Fault.Host_crash)
  in
  let a = mk () and b = mk () in
  let ra = drive a and rb = drive b in
  checkb "same decisions" true (ra = rb);
  checkb "same trace" true (Fault.trace a = Fault.trace b);
  checkb "restart rewinds" true
    (drive (Fault.restart a) = ra);
  checkb "some fired" true (Fault.fired_count a > 0);
  checkb "some passed" true (Fault.fired_count a < 50)

let test_probability_monotone_subset () =
  (* One draw per hit regardless of outcome: with the same seed, the
     set of fired hits at p is a subset of the set at p' >= p. *)
  let drive p =
    let f =
      Fault.make ~seed:0x5EEDL
        [ { Fault.site = Fault.Host_crash; trigger = Fault.Probability p } ]
    in
    List.init 200 (fun _ -> Fault.fire f Fault.Host_crash)
  in
  let low = drive 0.2 and high = drive 0.7 in
  checkb "subset" true
    (List.for_all2 (fun l h -> (not l) || h) low high);
  checkb "strictly more" true
    (List.length (List.filter Fun.id high)
    > List.length (List.filter Fun.id low))

(* --- InPlaceTP: pre-PNR rollback --- *)

let rollback_invariant host site trigger =
  let before =
    List.map
      (fun (vm : Vmstate.Vm.t) ->
        (vm.config.name, Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem))
      (Hv.Host.vms host)
  in
  let used_before = Hw.Pmem.used_frames host.Hv.Host.pmem in
  let r =
    Hypertp.Api.transplant_inplace ~fault:(one site trigger) ~host
      ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Rolled_back s -> checkb "site" true (s = site)
  | _ -> Alcotest.fail "expected rollback");
  checkb "still on source" true
    (Hv.Host.hypervisor_kind host = Some Hv.Kind.Xen);
  checkb "all vms resumed" true
    (List.for_all Vmstate.Vm.is_running (Hv.Host.vms host));
  checkb "checks ok" true (Hypertp.Inplace.all_ok r.checks);
  checkb "checksums byte-identical" true
    (List.for_all
       (fun (vm : Vmstate.Vm.t) ->
         Int64.equal
           (Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem)
           (List.assoc vm.config.name before))
       (Hv.Host.vms host));
  checki "staging released" used_before (Hw.Pmem.used_frames host.Hv.Host.pmem);
  checkb "no reboot phase" true
    (Sim.Time.equal r.phases.Hypertp.Phases.reboot Sim.Time.zero)

let test_rollback_each_pre_pnr_site () =
  List.iter
    (fun site ->
      let host = xen_host ~vms:[ small_vm (); small_vm ~name:"vm1" () ] () in
      rollback_invariant host site (Fault.Nth_hit 1))
    (List.filter Fault.pre_pnr Fault.all_sites)

let prop_rollback_invariant =
  QCheck.Test.make ~count:30 ~name:"any pre-PNR fault rolls back cleanly"
    QCheck.(triple (int_range 0 2) (int_range 1 3) (int_range 1 2))
    (fun (site_i, vms, nth) ->
      let site = List.nth (List.filter Fault.pre_pnr Fault.all_sites) site_i in
      (* kexec_load is hit once; per-VM sites are hit once per VM *)
      let nth = if site = Fault.Kexec_load then 1 else Stdlib.min nth vms in
      let host =
        xen_host
          ~vms:
            (List.init vms (fun i ->
                 small_vm ~name:(Printf.sprintf "vm%d" i) ~mib:(128 * (i + 1))
                   ()))
          ()
      in
      rollback_invariant host site (Fault.Nth_hit nth);
      true)

(* --- InPlaceTP: post-PNR recovery ladder --- *)

let test_uisr_decode_quarantine () =
  let host =
    xen_host ~vms:[ small_vm (); small_vm ~name:"vm1" (); small_vm ~name:"vm2" () ] ()
  in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Uisr_decode (Fault.On_vm "vm1"))
      ~host ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d ->
    checkb "vm1 quarantined" true (d.quarantined = [ "vm1" ]);
    checkb "no full reboot" true (not d.full_reboot)
  | _ -> Alcotest.fail "expected recovery");
  checkb "host on target" true
    (Hv.Host.hypervisor_kind host = Some Hv.Kind.Kvm);
  checki "two survivors" 2 (Hv.Host.vm_count host);
  checkb "survivors intact" true r.checks.Hypertp.Inplace.guest_memory_intact;
  checkb "survivors running" true
    (List.for_all Vmstate.Vm.is_running (Hv.Host.vms host))

let test_restore_retry_then_success () =
  let host = xen_host () in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Vm_restore (Fault.Nth_hit 1))
      ~host ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d ->
    checki "one retry" 1 d.restore_retries;
    checkb "nothing quarantined" true (d.quarantined = []);
    checkb "recovery time counted" true
      (Sim.Time.to_sec_f d.recovery_time > 0.0)
  | _ -> Alcotest.fail "expected recovery");
  checki "vm survived" 1 (Hv.Host.vm_count host);
  checkb "checks ok" true (Hypertp.Inplace.all_ok r.checks);
  checkb "recovery in downtime" true
    (Sim.Time.to_sec_f (Hypertp.Phases.downtime r.phases)
    > Sim.Time.to_sec_f
        (Sim.Time.sum
           [ r.phases.Hypertp.Phases.translation; r.phases.reboot;
             r.phases.restoration ]))

let test_restore_retries_exhausted_quarantines () =
  (* On_vm fires on every attempt, so the default budget (1 + 2 retries)
     is exhausted and the VM is quarantined. *)
  let host = xen_host ~vms:[ small_vm (); small_vm ~name:"vm1" () ] () in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Vm_restore (Fault.On_vm "vm0"))
      ~host ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d ->
    checkb "vm0 quarantined" true (d.quarantined = [ "vm0" ]);
    checki "retry budget burnt" Hypertp.Options.default.restore_retry_limit
      d.restore_retries
  | _ -> Alcotest.fail "expected recovery");
  checki "vm1 survived" 1 (Hv.Host.vm_count host)

let test_kexec_jump_clobber_full_reboot () =
  let host = xen_host () in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Kexec_jump (Fault.Nth_hit 1))
      ~host ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d ->
    checkb "full reboot" true d.full_reboot;
    checkb "kexec_jump noted" true (List.mem Fault.Kexec_jump d.recovery_faults);
    checkb ">= 60 s recovery" true (Sim.Time.to_sec_f d.recovery_time >= 60.0)
  | _ -> Alcotest.fail "expected recovery");
  (* The VM still made it: PRAM-preserved memory + staged UISR survive
     the reboot (ReHype's premise). *)
  checki "vm survived" 1 (Hv.Host.vm_count host);
  checkb "checks ok despite clobber" true (Hypertp.Inplace.all_ok r.checks)

let test_mgmt_rebuild_retry () =
  let host = xen_host () in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Mgmt_rebuild (Fault.Nth_hit 1))
      ~host ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d ->
    checki "one extra rebuild" 1 d.mgmt_rebuilds;
    checkb "no full reboot" true (not d.full_reboot)
  | _ -> Alcotest.fail "expected recovery");
  checkb "management consistent" true
    r.checks.Hypertp.Inplace.management_consistent

let test_committed_when_no_fault_fires () =
  (* An armed plan whose trigger never matches must leave the run
     indistinguishable from a fault-free one. *)
  let host = xen_host () in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Vm_restore (Fault.On_vm "no-such-vm"))
      ~host ~target:Hv.Kind.Kvm ()
  in
  checkb "committed" true (r.Hypertp.Inplace.outcome = Hypertp.Inplace.Committed);
  checkb "all ok" true (Hypertp.Inplace.all_ok r.checks);
  checkb "zero recovery phase" true
    (Sim.Time.equal r.phases.Hypertp.Phases.recovery Sim.Time.zero)

let test_same_seed_same_fault_trace () =
  (* A stochastic InPlaceTP campaign replays bit-for-bit from its seed. *)
  let run () =
    let host = xen_host ~vms:[ small_vm (); small_vm ~name:"vm1" () ] () in
    let f =
      Fault.make ~seed:77L
        [ { Fault.site = Fault.Vm_restore; trigger = Fault.Probability 0.5 };
          { Fault.site = Fault.Uisr_decode; trigger = Fault.Probability 0.2 } ]
    in
    let r = Hypertp.Api.transplant_inplace ~fault:f ~host ~target:Hv.Kind.Kvm () in
    (Fault.trace f, r.Hypertp.Inplace.outcome)
  in
  let t1, o1 = run () and t2, o2 = run () in
  checkb "identical traces" true (t1 = t2);
  checkb "identical outcomes" true (o1 = o2)

(* --- MigrationTP: link faults, retry, backoff --- *)

let test_migration_retry_backoff_schedule () =
  (* Drop the first attempt only: the VM completes on attempt 2 after
     exactly one base backoff (500 ms). *)
  let src = xen_host () in
  let r =
    Hypertp.Migrate.run
      ~fault:(one Fault.Migration_link_drop (Fault.Nth_hit 1))
      ~src ~dst:(kvm_dst ()) ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  checkb "completed after 1 retry" true
    (v.Hypertp.Migrate.outcome = Hypertp.Migrate.Completed_after_retries 1);
  checki "retries" 1 v.Hypertp.Migrate.retries;
  checkb "backoff = 500 ms" true
    (Sim.Time.equal v.Hypertp.Migrate.retry_wait (Sim.Time.ms 500));
  checkb "wasted time counted" true
    (Sim.Time.to_sec_f v.Hypertp.Migrate.wasted_time > 0.0);
  checkb "wasted bytes on wire" true
    (v.Hypertp.Migrate.wire_bytes > v.Hypertp.Migrate.state_bytes);
  checkb "landed on destination" true
    (Hv.Host.find_vm src "vm0" = None)

let test_migration_budget_exhausted_backoff () =
  (* Every attempt drops: 3 attempts, 2 backoffs (0.5 s + 1.0 s). *)
  let src = xen_host () in
  let dst = kvm_dst () in
  let src_vm = Option.get (Hv.Host.find_vm src "vm0") in
  let checksum = Vmstate.Guest_mem.checksum src_vm.Vmstate.Vm.mem in
  let r =
    Hypertp.Migrate.run
      ~fault:(one Fault.Migration_link_drop (Fault.On_vm "vm0"))
      ~src ~dst ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  (match v.Hypertp.Migrate.outcome with
  | Hypertp.Migrate.Aborted_link_failure 0 -> ()
  | _ -> Alcotest.fail "expected abort in round 0");
  checki "two retries" 2 v.Hypertp.Migrate.retries;
  checkb "backoff = 1.5 s total" true
    (Sim.Time.equal v.Hypertp.Migrate.retry_wait (Sim.Time.ms 1500));
  checkb "zero downtime" true
    (Sim.Time.equal v.Hypertp.Migrate.downtime Sim.Time.zero);
  checkb "source vm untouched" true
    (Vmstate.Vm.is_running src_vm
    && Int64.equal checksum (Vmstate.Guest_mem.checksum src_vm.Vmstate.Vm.mem));
  checki "nothing on destination" 0 (Hv.Host.vm_count dst)

let test_migration_custom_retry_params () =
  let src = xen_host () in
  let retry =
    { Hypertp.Migrate.max_attempts = 5; backoff_base = Sim.Time.ms 100;
      backoff_factor = 3.0 }
  in
  let r =
    Hypertp.Migrate.run
      ~fault:(one Fault.Migration_link_drop (Fault.On_vm "vm0"))
      ~retry ~src ~dst:(kvm_dst ()) ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  checki "four retries" 4 v.Hypertp.Migrate.retries;
  (* 100 + 300 + 900 + 2700 ms *)
  checkb "geometric backoff" true
    (Sim.Time.equal v.Hypertp.Migrate.retry_wait (Sim.Time.ms 4000))

let test_migration_degrade_slows_but_completes () =
  let run fault =
    let src = xen_host ~vms:[ small_vm ~workload:Vmstate.Vm.Wl_redis () ] () in
    let r = Hypertp.Migrate.run ?fault ~src ~dst:(kvm_dst ()) () in
    List.hd r.Hypertp.Migrate.per_vm
  in
  let clean = run None in
  let degraded =
    run (Some (one Fault.Migration_link_degrade (Fault.On_vm "vm0")))
  in
  checkb "still completes" true
    (degraded.Hypertp.Migrate.outcome = Hypertp.Migrate.Completed);
  checkb "slower precopy" true
    (Sim.Time.to_sec_f degraded.Hypertp.Migrate.precopy_time
    > Sim.Time.to_sec_f clean.Hypertp.Migrate.precopy_time)

let test_aborted_wire_bytes_include_overhead () =
  (* The satellite bug: aborted rounds must charge the same per-page
     protocol framing as completed ones. *)
  let src = xen_host () in
  let r =
    Hypertp.Migrate.run
      ~fault:(one Fault.Migration_link_drop (Fault.On_vm "vm0"))
      ~src ~dst:(kvm_dst ()) ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  let per_page = Hw.Units.page_size_4k + 16 in
  checkb "aborted bytes counted" true (v.Hypertp.Migrate.wire_bytes > 0);
  checki "framing included (divisible by page+overhead)" 0
    (v.Hypertp.Migrate.wire_bytes mod per_page)

(* --- cluster: fallback + sweep --- *)

let test_sweep_faulty_monotone_and_accounted () =
  let sweep =
    Cluster.Upgrade.sweep_faulty ~probabilities:[ 0.0; 0.25; 0.5; 1.0 ] ()
  in
  let totals =
    List.map
      (fun (_, (t : Cluster.Upgrade.faulty_timing)) ->
        Sim.Time.to_sec_f t.Cluster.Upgrade.total_with_faults)
      sweep
  in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | [ _ ] | [] -> true
  in
  checkb "wall-clock strictly increasing" true (strictly_increasing totals);
  List.iter
    (fun (p, (t : Cluster.Upgrade.faulty_timing)) ->
      checki
        (Printf.sprintf "all VMs accounted at p=%.2f" p)
        t.Cluster.Upgrade.base.Cluster.Upgrade.inplace_vm_count
        (Cluster.Upgrade.vms_accounted t))
    sweep;
  (match sweep with
  | (_, t0) :: _ ->
    checki "no failures at p=0" 0 (List.length t0.Cluster.Upgrade.failures)
  | [] -> Alcotest.fail "empty sweep");
  (match List.rev sweep with
  | (_, t1) :: _ ->
    checki "every host fails at p=1" 10
      (List.length t1.Cluster.Upgrade.failures)
  | [] -> assert false)

let test_sweep_faulty_failed_hosts_nested () =
  (* Same seed: the hosts failing at p are a subset of those at p'>p. *)
  let sweep = Cluster.Upgrade.sweep_faulty ~probabilities:[ 0.3; 0.8 ] () in
  match sweep with
  | [ (_, lo); (_, hi) ] ->
    let nodes (t : Cluster.Upgrade.faulty_timing) =
      List.map
        (fun (f : Cluster.Upgrade.host_failure) ->
          f.Cluster.Upgrade.failed_node)
        t.Cluster.Upgrade.failures
    in
    checkb "nested failure sets" true
      (List.for_all (fun n -> List.mem n (nodes hi)) (nodes lo));
    checkb "strictly more failures" true
      (List.length (nodes hi) > List.length (nodes lo))
  | _ -> Alcotest.fail "expected two sweep points"

let suites =
  [
    ( "fault.plan",
      [
        Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
        Alcotest.test_case "trigger validation" `Quick test_trigger_validation;
        Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
        Alcotest.test_case "probability monotone subsets" `Quick
          test_probability_monotone_subset;
      ] );
    ( "fault.inplace",
      [
        Alcotest.test_case "rollback at each pre-PNR site" `Quick
          test_rollback_each_pre_pnr_site;
        qtest prop_rollback_invariant;
        Alcotest.test_case "uisr decode quarantine" `Quick
          test_uisr_decode_quarantine;
        Alcotest.test_case "restore retry then success" `Quick
          test_restore_retry_then_success;
        Alcotest.test_case "restore retries exhausted" `Quick
          test_restore_retries_exhausted_quarantines;
        Alcotest.test_case "kexec clobber full reboot" `Quick
          test_kexec_jump_clobber_full_reboot;
        Alcotest.test_case "mgmt rebuild retry" `Quick test_mgmt_rebuild_retry;
        Alcotest.test_case "committed when trigger never matches" `Quick
          test_committed_when_no_fault_fires;
        Alcotest.test_case "same seed same trace" `Quick
          test_same_seed_same_fault_trace;
      ] );
    ( "fault.migration",
      [
        Alcotest.test_case "retry backoff schedule" `Quick
          test_migration_retry_backoff_schedule;
        Alcotest.test_case "budget exhausted backoff" `Quick
          test_migration_budget_exhausted_backoff;
        Alcotest.test_case "custom retry params" `Quick
          test_migration_custom_retry_params;
        Alcotest.test_case "degraded link slows" `Quick
          test_migration_degrade_slows_but_completes;
        Alcotest.test_case "aborted wire bytes overhead" `Quick
          test_aborted_wire_bytes_include_overhead;
      ] );
    ( "fault.cluster",
      [
        Alcotest.test_case "sweep monotone, zero unaccounted" `Quick
          test_sweep_faulty_monotone_and_accounted;
        Alcotest.test_case "failed hosts nested across p" `Quick
          test_sweep_faulty_failed_hosts_nested;
      ] );
  ]
