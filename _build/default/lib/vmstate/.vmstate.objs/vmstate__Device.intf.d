lib/vmstate/device.mli: Format Sim Virtqueue
