test/test_cluster.ml: Alcotest Cluster Float Hv Hw Hypertp Int64 List Printf Sim Vmstate
