(* Shared helpers for the experiment harness: repetition, reporting in
   the paper's style (mean when variance is low, box plot otherwise). *)

let repetitions = 5 (* the paper repeats each experiment 5 times *)

let seeds = [ 11L; 23L; 37L; 51L; 73L ]

let repeat f =
  List.map (fun seed -> f (Sim.Rng.create seed)) seeds

let summarize_seconds times = Sim.Stats.summarize (List.map Sim.Time.to_sec_f times)

let pp_measure fmt s =
  if Sim.Stats.low_variance s then Format.fprintf fmt "%.3f s" s.Sim.Stats.mean
  else Format.fprintf fmt "box[%a] s" Sim.Stats.pp_boxplot s

let header title =
  Format.printf "@.==================================================================@.";
  Format.printf "%s@." title;
  Format.printf "==================================================================@."

let subheader title = Format.printf "@.--- %s ---@." title

let note fmt = Format.printf fmt

let vm_config ?(name = "vm0") ?(vcpus = 1) ?(gib = 1) ?(workload = Vmstate.Vm.Wl_idle) () =
  Vmstate.Vm.config ~name ~vcpus ~ram:(Hw.Units.gib gib) ~workload ()

let fresh_xen_host ?(machine = Hw.Machine.m1 ()) ~seed vms =
  Hypertp.Api.provision ~seed ~name:"bench-src" ~machine ~hv:Hv.Kind.Xen vms

let fresh_kvm_host ?(machine = Hw.Machine.m1 ()) ~seed vms =
  Hypertp.Api.provision ~seed ~name:"bench-src" ~machine ~hv:Hv.Kind.Kvm vms

let fresh_dst ?(machine = Hw.Machine.m1 ()) ~seed kind =
  Hypertp.Api.provision ~seed ~name:"bench-dst" ~machine ~hv:kind []

let seed_of_rng rng = Sim.Rng.int64 rng
