type component = {
  comp_name : string;
  kloc : float;
  in_tcb : bool;
  userspace : bool;
}

let components =
  [
    { comp_name = "hypervisor patches (Xen + KVM)"; kloc = 2.2; in_tcb = true;
      userspace = false };
    { comp_name = "userspace management tools (libxl, kvmtool, PRAM/kexec)";
      kloc = 5.2; in_tcb = true; userspace = true };
    { comp_name = "HyperTP orchestration"; kloc = 1.1; in_tcb = true;
      userspace = true };
    { comp_name = "testing, utilities and evaluation"; kloc = 6.1;
      in_tcb = false; userspace = true };
  ]

let total_kloc () = List.fold_left (fun acc c -> acc +. c.kloc) 0.0 components

let tcb_kloc () =
  List.fold_left
    (fun acc c -> if c.in_tcb then acc +. c.kloc else acc)
    0.0 components

let tcb_userspace_fraction () =
  let user =
    List.fold_left
      (fun acc c -> if c.in_tcb && c.userspace then acc +. c.kloc else acc)
      0.0 components
  in
  user /. tcb_kloc ()

let baseline_tcb_kloc = 2_000.0 (* millions of LOC: hypervisor + mgmt VM *)

let pp_table fmt () =
  Format.fprintf fmt "@[<v>HyperTP code size (section 4.4):@,";
  List.iter
    (fun c ->
      Format.fprintf fmt "  %-55s %5.1f KLOC%s%s@," c.comp_name c.kloc
        (if c.in_tcb then " [TCB]" else "")
        (if c.userspace then " [userspace]" else ""))
    components;
  Format.fprintf fmt
    "  total %.1f KLOC, TCB contribution %.1f KLOC (%.0f%% userspace),@,\
    \  vs. a baseline virtualization TCB of ~%.0f KLOC@]"
    (total_kloc ()) (tcb_kloc ())
    (100.0 *. tcb_userspace_fraction ())
    baseline_tcb_kloc
