(** Deterministic fault injection for transplant campaigns.

    A fault {e plan} names injection sites inside the transplant
    engines (PRAM construction, UISR encode/decode, kexec load/jump,
    per-VM restore, management rebuild, migration link) and a trigger
    for each: fire on the nth hit of the site, fire whenever a given VM
    reaches the site, or fire with a fixed probability drawn from the
    plan's own splitmix64 stream.  Every decision — fired or not — is
    appended to a trace, so a seeded stochastic campaign is reproducible
    bit-for-bit and two runs of the same plan can be compared with [=].

    The probability stream has a useful monotonicity property: because
    each hit consumes exactly one draw regardless of the outcome, two
    plans with the same seed and hit sequence but probabilities
    [p <= p'] fire on a {e subset} of the hits — failure campaigns are
    ordered, which is what makes `Cluster.Upgrade.sweep_faulty`'s
    wall-clock monotone in the failure probability. *)

type site =
  | Pram_build
  | Uisr_encode
  | Uisr_decode
  | Uisr_corrupt
      (** silent bit-rot in one UISR section — caught by per-section CRC
          and salvaged, not quarantined *)
  | Pram_corrupt
      (** in-page bit-rot in one VM's PRAM file-info page — caught by
          the page CRC; only that VM is lost *)
  | Kexec_load
  | Kexec_jump
  | Vm_restore
  | Mgmt_rebuild
  | Residual_leak
      (** the post-transplant world retains residual source-hypervisor
          state — orphaned PRAM pages, unreclaimed heap frames, a stale
          staged UISR blob — that the post-commit audit must catch *)
  | Scrub_fail
      (** the scrub pass fails to remediate an audit finding; the engine
          escalates the recovery ladder instead of reporting
          [Committed] *)
  | Migration_link_drop
  | Migration_link_degrade
  | Shadow_stage_fail
      (** pre-staging the target hypervisor on the spare host fails
          (boot error, capability mismatch); nothing has left the
          source *)
  | Shadow_stream_drop
      (** the checkpoint stream to the shadow dies mid-transfer; the
          shadow's half-built state is discarded *)
  | Shadow_diverge
      (** the guest's dirty rate outruns the replay link; the
          convergence watchdog must detect it and degrade the
          strategy *)
  | Swap_partition
      (** the network partitions during the identity-swap handshake —
          strictly before the flip, so the source keeps serving *)
  | Spare_exhausted
      (** no spare host with capacity is available at admission; the
          shadow strategy cannot even stage *)
  | Host_crash
  | Host_timeout  (** a host upgrade hangs past its straggler deadline *)
  | Host_flap  (** a host fails, recovers, then fails again mid-upgrade *)
  | Controller_crash  (** the campaign controller itself dies mid-run *)
  | Subctl_crash
      (** a regional sub-controller of the hierarchical control plane
          dies; its journal survives and the root supervisor restarts it
          after heartbeat-timeout detection *)
  | Root_crash
      (** the root supervisor dies; a new leader reconciles the global
          campaign state from the surviving sub-journals *)
  | Ctl_partition
      (** the root<->sub-controller supervision channel partitions for a
          seeded heal delay: heartbeats are dropped, so the root fences
          and restarts a perfectly healthy sub-controller *)
  | Crash_during_resume
      (** the recovering controller dies again mid-way through a journal
          replay — the double-fault case *)
  | Cve_burst
      (** the CVE stream generator compresses the next few inter-arrival
          gaps — a disclosure burst (a VENOM-style audit wave) that
          piles overlapping campaigns onto the fleet *)
  | Campaign_preempt
      (** the stream service preempts campaigns in flight when a
          critical CVE lands on an already-busy population: unfinished
          hosts are released back to the queue and the new campaign
          books the population from now *)

val all_sites : site list

val engine_sites : site list
(** Sites consulted inside the transplant engines (InPlaceTP /
    MigrationTP); the one-fault-per-site exhaustive campaign iterates
    these. *)

val shadow_sites : site list
(** Sites consulted by the shadow-host MigrationTP engine
    ({!Shadow_stage_fail}, {!Shadow_stream_drop}, {!Shadow_diverge},
    {!Swap_partition}, {!Spare_exhausted}) — all strictly pre-swap, so
    any of them firing must leave the source host untouched.  The
    exhaustive [fault-campaign] sweep iterates these against the shadow
    engine. *)

val cluster_sites : site list
(** Sites consulted by the cluster-level executors — the per-host
    fallback of [Cluster.Upgrade.execute_faulty] ([Host_crash]) and the
    supervised campaign controller ([Host_crash], [Host_timeout],
    [Host_flap], [Controller_crash]).  [Host_crash] appears in both
    lists: the InPlaceTP engine also consults it for the
    crash-in-vulnerable-window reboot path. *)

val controlplane_sites : site list
(** Sites consulted by the replicated hierarchical control plane
    ([Cluster.Controlplane]): [Subctl_crash] per sub-controller journal
    append, [Root_crash] per root supervisor heartbeat tick,
    [Ctl_partition] per heartbeat receipt, and [Crash_during_resume]
    per entry replayed during any journal recovery. *)

val stream_sites : site list
(** Sites consulted by the CVE-stream campaign service
    ([Stream.Service] / [Stream.Gen]): [Cve_burst] per generated
    arrival, [Campaign_preempt] per critical arrival that finds its
    population busy.  [Controller_crash] is also consulted there (per
    journal append), but it already belongs to {!cluster_sites}. *)

val site_to_string : site -> string
val site_of_string : string -> site option
val pp_site : Format.formatter -> site -> unit

(** Sites hit strictly before the InPlaceTP point-of-no-return (the
    kexec jump).  A fault at one of these aborts the transplant cleanly;
    anything else demands recovery on the target side. *)
val pre_pnr : site -> bool

val shadow_pre_swap : site -> bool
(** Whether the site fires strictly before the shadow-host identity
    swap.  True exactly for {!shadow_sites}: the abort-safety invariant
    (source untouched and running) must hold at every one of them. *)

val nearest_site : string -> string
(** The valid site name closest (Levenshtein) to the given string —
    used by the parse errors to suggest a correction for typos like
    ["shadow_strean_drop"]. *)

type trigger =
  | Nth_hit of int  (** fire on the nth hit of the site, 1-based *)
  | On_vm of string  (** fire on every hit attributed to this VM *)
  | Probability of float  (** fire per-hit with probability in [0,1] *)

type injection = { site : site; trigger : trigger }

val pp_injection : Format.formatter -> injection -> unit

type event = {
  ev_site : site;
  ev_vm : string option;
  ev_hit : int;  (** per-site hit counter at this event, 1-based *)
  ev_fired : bool;
}

type t

val make : ?seed:int64 -> injection list -> t
(** [make injections] builds a plan.  [seed] (default [0xFA17L]) feeds
    the probability stream.  Raises [Hypertp_error.Error] (site
    ["Fault.make"]) on a non-positive [Nth_hit] or a probability
    outside [0, 1]. *)

val none : unit -> t
(** A plan with no injections: every [fire] returns false (but is still
    traced). *)

val restart : t -> t
(** A fresh plan with the same injections and seed: counters, trace and
    probability stream rewound to the beginning. *)

val injections : t -> injection list
val seed : t -> int64

val fire : t -> ?vm:string -> site -> bool
(** [fire plan ~vm site] records a hit of [site] (attributed to [vm] if
    given) and returns whether an injection fires there.  One
    probability draw is consumed per hit of a probability-triggered
    site, fired or not. *)

val hits : t -> site -> int
(** Hits recorded so far at [site]. *)

val fired_count : t -> int
val trace : t -> event list
(** Chronological record of every decision. *)

val trace_length : t -> int
(** [List.length (trace t)], in O(1).  The campaign journal stamps a
    fault cursor on every entry, so this runs once per event — the
    count is maintained incrementally rather than re-walking the
    trace. *)

val pp_trace : Format.formatter -> t -> unit

val parse_injection : string -> (injection, string) result
(** Parse a [site:trigger] spec: ["kexec_jump:1"] (nth hit),
    ["vm_restore:vm=vm3"], ["migration_link_drop:p=0.1"]. *)

type spec = { spec_injection : injection; spec_seed : int64 option }

val parse_spec : string -> (spec, string) result
(** Parse a CLI [--fault] argument: [site:trigger[,seed=N]], e.g.
    ["migration_link_drop:p=0.1,seed=42"]. *)

val of_specs : spec list -> t
(** Combine parsed CLI specs into one plan; the last explicit seed
    wins. *)
