lib/workload/spec_data.ml: List Profile String
