(** Region-aware fleet shape.

    [Topology.t] is the single value describing a fleet — regions, each
    with a host count, a VMs-per-host density, an optional staged-spare
    pool and an optional wire budget.  It replaces the ad-hoc
    [~hosts]/[~regions] integer arguments that used to be repeated (and
    re-validated, inconsistently) across [Fleet.simulate],
    [Campaign.run_fleet], [Controlplane.run] and
    [Stream.Service.serve].  Legacy integer entry points remain as
    deprecated wrappers over {!flat}/{!uniform} and stay
    byte-identical.

    Topologies come from three places: the {!uniform} smart
    constructor, the {!of_spec} CLI parser (["64x15625x8"] or
    ["emea:250:8;apac:250:8"]), or {!make} over explicit {!region}
    values.  {!validate} checks the same invariants campaign config
    validation used to apply per entry point, returning a structured
    {!Hypertp_error.t}. *)

type region = private {
  rg_name : string;
  rg_hosts : int;
  rg_vms_per_host : int;
  rg_spares : int;
      (** staged spare lanes for shadow cutover; [0] means inherit the
          campaign config's pool *)
  rg_wire_budget : int option;  (** bytes on the wire; [None] = unlimited *)
}

type t

val region :
  ?spares:int -> ?wire_budget:int -> name:string -> hosts:int ->
  vms_per_host:int -> unit -> region

val make : region list -> t
(** Explicit region list, in order.  Not validated — call {!validate}. *)

val uniform :
  ?spares:int -> ?wire_budget:int -> regions:int -> hosts:int ->
  vms_per_host:int -> unit -> t
(** [hosts] is the fleet {e total}, split as evenly as possible with
    the remainder on the lowest region indices; regions are named
    ["r0"], ["r1"], ....  Raises {!Hypertp_error.Error} when
    [regions < 1]. *)

val flat : hosts:int -> vms_per_host:int -> t
(** One region ["r0"] holding the whole fleet — the shape every legacy
    [~hosts] entry point maps to. *)

val validate : t -> (t, Hypertp_error.t) result
(** At least one region; names non-empty, unique, free of [' '], [':'],
    [';']; each region has [hosts >= 2] (campaigns drain into peers),
    [vms_per_host >= 1], non-negative spares and wire budget. *)

val validate_exn : t -> t
(** {!validate}, raising {!Hypertp_error.Error}. *)

val regions : t -> region array
val n_regions : t -> int

val hosts : t -> int
(** Fleet-total hosts. *)

val vms : t -> int
(** Fleet-total VMs. *)

val spec : t -> string
(** Canonical CLI spec: the ["RxHxV"] shorthand when the topology is
    uniform with default names ([H] = hosts {e per region}), the
    ["name:hosts:vms\[:spares\[:wire\]\];..."] list otherwise.
    [of_spec (spec t)] round-trips. *)

val of_spec : string -> (t, string) result
(** Parse either {!spec} form; the result is validated.  Note the
    shorthand counts hosts per region: ["64x15625x8"] is the
    million-host fleet. *)

val pp : Format.formatter -> t -> unit
