type checks = {
  guest_memory_intact : bool;
  pram_parse_ok : bool;
  kexec_image_intact : bool;
  uisr_roundtrip_ok : bool;
  management_consistent : bool;
  platform_preserved : bool;
  devices_preserved : bool;
}

let all_ok c =
  c.guest_memory_intact && c.pram_parse_ok && c.kexec_image_intact
  && c.uisr_roundtrip_ok && c.management_consistent && c.platform_preserved
  && c.devices_preserved

type report = {
  source : string;
  target : string;
  vm_count : int;
  phases : Phases.t;
  fixups : (string * Uisr.Fixup.t list) list;
  uisr_platform_bytes : int;
  pram_accounting : Pram.Layout.accounting;
  frames_wiped : int;
  checks : checks;
}

(* Platform state must survive modulo recorded fixups: vCPUs and PIT
   exactly; the IOAPIC up to the pin count both sides share; MSRs minus
   the recorded drops. *)
let platform_preserved ~(before : Uisr.Vm_state.t) ~(after : Uisr.Vm_state.t)
    ~fixups =
  let dropped_msrs =
    List.filter_map
      (function Uisr.Fixup.Msr_dropped i -> Some i | _ -> None)
      fixups
  in
  let strip_msrs (v : Vmstate.Vcpu.t) =
    {
      v with
      regs =
        {
          v.regs with
          msrs =
            List.filter
              (fun (m : Vmstate.Regs.msr) -> not (List.mem m.index dropped_msrs))
              v.regs.msrs;
        };
    }
  in
  let vcpus_ok =
    List.length before.vcpus = List.length after.vcpus
    && List.for_all2
         (fun b a -> Vmstate.Vcpu.equal (strip_msrs b) a)
         before.vcpus after.vcpus
  in
  let shared_pins =
    Stdlib.min
      (Vmstate.Ioapic.pin_count before.ioapic)
      (Vmstate.Ioapic.pin_count after.ioapic)
  in
  let ioapic_ok =
    let truncate io =
      fst (Vmstate.Ioapic.truncate io ~pins:shared_pins)
    in
    Vmstate.Ioapic.equal (truncate before.ioapic) (truncate after.ioapic)
  in
  let pit_ok = Vmstate.Pit.equal before.pit after.pit in
  vcpus_ok && ioapic_ok && pit_ok

let devices_preserved ~(before : Uisr.Vm_state.t) (vm : Vmstate.Vm.t) =
  List.length before.devices = Array.length vm.devices
  && List.for_all2
       (fun (s : Uisr.Vm_state.device_snapshot) (d : Vmstate.Device.t) ->
         s.dev_id = d.id && s.dev_kind = d.kind
         && s.dev_tcp_connections = d.tcp_connections)
       before.devices
       (Array.to_list vm.devices)

let run ?(options = Options.default) ?(rng = Sim.Rng.create 0x1A2BL)
    ~(host : Hv.Host.t) ~target:(module T : Hv.Intf.S) () =
  let (Hv.Host.Packed ((module S), _, _)) = Hv.Host.running_exn host in
  if Hv.Kind.equal S.kind T.kind then
    invalid_arg "Inplace.run: target equals the running hypervisor";
  let vm_names = Hv.Host.vm_names host in
  if vm_names = [] then invalid_arg "Inplace.run: no VMs to transplant";
  let machine = host.Hv.Host.machine in
  let pmem = host.Hv.Host.pmem in
  let workers =
    if options.Options.parallel_translation then Hw.Machine.worker_threads machine
    else 1
  in
  let jit () = Sim.Rng.jitter rng 0.02 in
  Log.info (fun m ->
      m "InPlaceTP %s -> %s on %s: %d VMs, options %a" S.name T.name
        machine.Hw.Machine.name (List.length vm_names) Options.pp options);

  (* Per-VM pre-transplant ground truth for the correctness checks. *)
  let vms = List.map (fun n -> (n, Option.get (Hv.Host.find_vm host n))) vm_names in
  let checksums_before =
    List.map (fun (n, vm) -> (n, Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem)) vms
  in

  (* Step 1: stage the target's kernel image (ahead of time). *)
  let image =
    Kexec.load ~pmem ~kernel:T.name ~size:T.kernel_image_bytes
      ~cmdline:"console=ttyS0"
  in

  (* Step 2a: build PRAM while VMs run (or later, inside the downtime,
     if the preparation optimisation is off). *)
  let granularity =
    if options.Options.huge_page_pram then Hw.Units.Page_2m else Hw.Units.Page_4k
  in
  let pram_inputs =
    List.map
      (fun (n, vm) ->
        ( n,
          vm.Vmstate.Vm.config.ram,
          Uisr.Vm_state.memmap_of_guest_mem vm.Vmstate.Vm.mem ))
      vms
  in
  let pram_image = Pram.Build.build ~pmem ~granularity pram_inputs in
  let acct = Pram.Build.accounting pram_image in
  let per_file_entries =
    List.map
      (fun f -> List.length f.Pram.Build.entries)
      (Pram.Build.files pram_image)
  in
  let pram_jobs =
    List.map2
      (fun (_, vm) entries ->
        Costs.pram_build_seconds machine
          ~gib:(Hw.Units.to_gib_f vm.Vmstate.Vm.config.ram)
          ~entries)
      vms per_file_entries
  in
  let pram_seconds = Costs.makespan ~workers pram_jobs *. jit () in
  Log.debug (fun m ->
      m "PRAM built: %a (%.3f s)" Pram.Layout.pp_accounting acct pram_seconds);

  (* Step 2b: pause all VMs — downtime begins. *)
  Hv.Host.pause_all host;
  Log.debug (fun m -> m "VMs paused; downtime window opens");

  (* Step 3: translate VM_i State to UISR (to_uisr_xxx family). *)
  let save_jobs =
    let (Hv.Host.Packed ((module S), shv, table)) = Hv.Host.running_exn host in
    List.map
      (fun (n, _) ->
        match Hashtbl.find_opt table n with
        | None -> assert false
        | Some dom -> Sim.Time.to_sec_f (S.save_cost shv dom))
      vms
  in
  let uisrs = Hv.Host.to_uisr_all host in
  let blobs = List.map (fun (n, u) -> (n, u, Uisr.Codec.encode u)) uisrs in
  let uisr_platform_bytes =
    List.fold_left
      (fun acc (_, u, _) -> acc + Uisr.Codec.platform_size_bytes u)
      0 blobs
  in
  let encode_seconds =
    List.fold_left
      (fun acc (_, _, b) -> acc +. Costs.uisr_encode_seconds ~bytes_len:(Bytes.length b))
      0.0 blobs
  in
  let total_gib = List.fold_left (fun acc (_, vm) -> acc +. Hw.Units.to_gib_f vm.Vmstate.Vm.config.ram) 0.0 vms in
  let translation_seconds =
    (Costs.makespan ~workers save_jobs +. encode_seconds
    +. Costs.pram_finalize_seconds machine ~total_gib (List.length vms))
    *. jit ()
  in
  (* Without the preparation optimisation PRAM construction happens here,
     inside the downtime window. *)
  let pram_phase, translation_seconds =
    if options.Options.prepare_before_pause then (pram_seconds, translation_seconds)
    else (0.0, translation_seconds +. pram_seconds)
  in

  (* Drop the source hypervisor without orderly teardown: the
     micro-reboot reclaims its heap, NPTs and management state; guest
     memory stays allocated and in place. *)
  let detached = Hv.Host.crash_hypervisor host in

  (* Step 4: micro-reboot into the target with the PRAM pointer on its
     command line. *)
  let image = Kexec.with_pram_pointer image (Pram.Build.pointer_mfn pram_image) in
  let preserve = Pram.Build.preserve_predicate pram_image in
  let jump = Kexec.execute ~pmem image ~preserve in
  Log.debug (fun m ->
      m "kexec jump: %d frames reclaimed, image %s" jump.Kexec.frames_wiped
        (if jump.Kexec.image_intact then "intact" else "CLOBBERED"));
  let pointer =
    match Kexec.pram_pointer_of_cmdline (Kexec.cmdline image) with
    | Some mfn -> mfn
    | None -> invalid_arg "Inplace.run: PRAM pointer lost from cmdline"
  in
  (* Early boot: the target parses PRAM sequentially and reserves guest
     memory before its allocator comes up. *)
  let parsed = Pram.Parse.parse ~pmem ~image:pram_image pointer in
  let pram_parse_ok =
    match parsed with
    | Ok files ->
      List.length files = List.length vms
      && List.for_all2
           (fun (n, vm) f ->
             String.equal f.Pram.Parse.name n
             && List.fold_left (fun a e -> a + Pram.Entry.frames e) 0 f.entries
                = Hw.Units.frames_of_bytes vm.Vmstate.Vm.config.ram)
           vms files
    | Error _ -> false
  in
  let covered_frames =
    List.fold_left
      (fun acc (_, vm) -> acc + Hw.Units.frames_of_bytes vm.Vmstate.Vm.config.ram)
      0 vms
  in
  let parse_seconds =
    Costs.pram_parse_seconds machine ~metadata_pages:acct.Pram.Layout.total_pages
      ~entries:acct.Pram.Layout.entry_count ~covered_frames
  in
  let boot_seconds = Sim.Time.to_sec_f (T.boot_time ~machine) in
  let reboot_seconds = (boot_seconds +. parse_seconds) *. jit () in
  Hv.Host.boot_hypervisor host (module T);
  Kexec.unload ~pmem image;

  (* Step 5+6: restore each VM from UISR onto its untouched memory. *)
  let restore_results =
    List.map
      (fun (n, u, blob) ->
        let roundtrip =
          match Uisr.Codec.decode blob with
          | Ok decoded -> Uisr.Vm_state.equal decoded u
          | Error _ -> false
        in
        let mem = (List.assoc n detached).Vmstate.Vm.mem in
        let fixups = Hv.Host.restore_from_uisr host ~mem u in
        (n, u, fixups, roundtrip))
      blobs
  in
  let restore_jobs =
    let (Hv.Host.Packed ((module T'), thv, table)) = Hv.Host.running_exn host in
    List.map
      (fun (n, _, _, _) ->
        match Hashtbl.find_opt table n with
        | None -> assert false
        | Some dom -> Sim.Time.to_sec_f (T'.restore_cost thv dom))
      restore_results
  in
  let rebuild_cost = Sim.Time.to_sec_f (Hv.Host.rebuild_management_state host) in
  let restoration_raw =
    Costs.makespan ~workers restore_jobs
    +. rebuild_cost
    +. Costs.resume_seconds ~nvms:(List.length vms)
  in
  (* With early restoration, VM restores start as soon as the services
     KVM VMs need are up (section 4.2.5); without it they wait for the
     whole system to settle, paying a boot-tail penalty. *)
  let restoration_seconds =
    (if options.Options.early_restoration then restoration_raw
     else restoration_raw +. (0.15 *. boot_seconds))
    *. jit ()
  in

  (* Step 7: resume guests, free ephemeral PRAM metadata. *)
  Hv.Host.resume_all host;
  Pram.Build.release pram_image ~pmem;
  Log.info (fun m ->
      m "transplant complete: downtime %.3f s"
        (translation_seconds +. reboot_seconds +. restoration_seconds));

  (* Checks. *)
  let after_uisrs =
    List.map
      (fun n ->
        Hv.Host.pause_vm host n;
        let u = Hv.Host.to_uisr host n in
        Hv.Host.resume_vm host n;
        (n, u))
      vm_names
  in
  let guest_memory_intact =
    List.for_all
      (fun (n, vm0) ->
        let vm = Option.get (Hv.Host.find_vm host n) in
        Vmstate.Guest_mem.verify_backing vm.Vmstate.Vm.mem = []
        && Int64.equal
             (Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem)
             (List.assoc n checksums_before)
        && vm.Vmstate.Vm.mem == vm0.Vmstate.Vm.mem (* literally in place *))
      vms
  in
  let platform_ok =
    List.for_all
      (fun (n, before, fixups, _) ->
        platform_preserved ~before ~after:(List.assoc n after_uisrs) ~fixups)
      restore_results
  in
  let devices_ok =
    List.for_all
      (fun (n, before, _, _) ->
        devices_preserved ~before (Option.get (Hv.Host.find_vm host n)))
      restore_results
  in
  let checks =
    {
      guest_memory_intact;
      pram_parse_ok;
      kexec_image_intact = jump.Kexec.image_intact;
      uisr_roundtrip_ok =
        List.for_all (fun (_, _, _, ok) -> ok) restore_results;
      management_consistent = Hv.Host.management_consistent host;
      platform_preserved = platform_ok;
      devices_preserved = devices_ok;
    }
  in
  {
    source = S.name;
    target = T.name;
    vm_count = List.length vms;
    phases =
      {
        Phases.pram = Sim.Time.of_sec_f pram_phase;
        translation = Sim.Time.of_sec_f translation_seconds;
        reboot = Sim.Time.of_sec_f reboot_seconds;
        restoration = Sim.Time.of_sec_f restoration_seconds;
        network = Hw.Nic.init_time machine.Hw.Machine.nic;
      };
    fixups = List.map (fun (n, _, f, _) -> (n, f)) restore_results;
    uisr_platform_bytes;
    pram_accounting = acct;
    frames_wiped = jump.Kexec.frames_wiped;
    checks;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>InPlaceTP %s -> %s (%d VMs)@,%a@,pram: %a@,uisr platform: %a@,\
     frames wiped: %d@,checks: %s@]"
    r.source r.target r.vm_count Phases.pp r.phases Pram.Layout.pp_accounting
    r.pram_accounting Hw.Units.pp_bytes r.uisr_platform_bytes r.frames_wiped
    (if all_ok r.checks then "all ok" else "FAILED")
