examples/cluster_upgrade.ml: Cluster Format Hv Hw Hypertp Int64 List Printf Sim Vmstate
