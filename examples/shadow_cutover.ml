(* Near-zero-downtime transplant with a shadow host.

   Classic MigrationTP pays a full stop-and-copy downtime per VM.  The
   shadow-host strategy pre-stages the target hypervisor on a spare,
   streams the checkpoint and replays dirty state while the source
   keeps serving, and swaps identities atomically: the downtime
   shrinks to the final dirty set plus the swap handshake.  Every
   phase before the swap is abortable with the source provably
   untouched; aborts walk the degradation ladder (shadow -> classic
   MigrationTP -> defer).

   Run with: dune exec examples/shadow_cutover.exe *)

let provision_pair () =
  let src =
    Hypertp.Api.provision ~name:"prod0" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"vm0" ~workload:Vmstate.Vm.Wl_redis ();
        Vmstate.Vm.config ~name:"vm1" () ]
  in
  let spare = Hv.Host.create ~name:"spare0" (Hw.Machine.m1 ()) in
  (src, spare)

let () =
  Format.printf "=== shadow-host MigrationTP ===@.@.";

  (* 1. The calm run: stage the target on the spare, stream, converge,
     swap.  Compare the cutover downtime against classic MigrationTP
     on the same pair. *)
  Format.printf "--- calm cutover ---@.";
  let src, spare = provision_pair () in
  let r = Hypertp.Api.transplant_shadow ~src ~spare ~target:Hv.Kind.Kvm () in
  Format.printf "%a@.@." Hypertp.Migrate.pp_shadow_report r;

  let csrc, cspare = provision_pair () in
  Hv.Host.boot_hypervisor cspare (Hypertp.Api.hypervisor_of Hv.Kind.Kvm);
  let classic =
    Hypertp.Api.transplant_migration ~src:csrc ~dst:cspare ()
  in
  let classic_downtime =
    List.fold_left
      (fun acc (v : Hypertp.Migrate.vm_report) -> Sim.Time.max acc v.downtime)
      Sim.Time.zero classic.Hypertp.Migrate.per_vm
  in
  Format.printf
    "classic MigrationTP downtime on the same pair: %a@.shadow cutover \
     downtime: %a@.@."
    Sim.Time.pp classic_downtime Sim.Time.pp r.Hypertp.Migrate.sh_downtime;

  (* 2. A fault before the swap.  The checkpoint stream dies; the abort
     handler verifies the source intact and degrades to classic
     MigrationTP against the already-staged spare. *)
  Format.printf "--- stream drop: degrade to classic ---@.";
  let src, spare = provision_pair () in
  let fault =
    Fault.make ~seed:3L
      [ { Fault.site = Fault.Shadow_stream_drop; trigger = Fault.Nth_hit 2 } ]
  in
  let r = Hypertp.Api.transplant_shadow ~fault ~src ~spare ~target:Hv.Kind.Kvm () in
  Format.printf "%a@.@." Hypertp.Migrate.pp_shadow_report r;

  (* 3. The same fault with the ladder disabled: the run defers — the
     source keeps its VMs and the exposure window stays open. *)
  Format.printf "--- stream drop, ladder off: defer ---@.";
  let src, spare = provision_pair () in
  let fault =
    Fault.make ~seed:3L
      [ { Fault.site = Fault.Shadow_stream_drop; trigger = Fault.Nth_hit 2 } ]
  in
  let r =
    Hypertp.Api.transplant_shadow ~fault ~ladder:false ~src ~spare
      ~target:Hv.Kind.Kvm ()
  in
  Format.printf "%a@.@." Hypertp.Migrate.pp_shadow_report r;
  Format.printf "source still holds: %s@."
    (String.concat ", " (Hv.Host.vm_names src));

  (* 4. A guest that outruns the link.  The convergence watchdog (a
     cancellable deadline timer per replay round) trips instead of
     looping forever. *)
  Format.printf "@.--- injected divergence: watchdog trips ---@.";
  let src, spare = provision_pair () in
  let fault =
    Fault.make ~seed:9L
      [ { Fault.site = Fault.Shadow_diverge; trigger = Fault.Nth_hit 1 } ]
  in
  let r = Hypertp.Api.transplant_shadow ~fault ~src ~spare ~target:Hv.Kind.Kvm () in
  Format.printf "%a@." Hypertp.Migrate.pp_shadow_report r;
  Format.printf "watchdog trips: %d (timers cancelled in time: %d)@."
    r.Hypertp.Migrate.sh_watchdog_trips r.Hypertp.Migrate.sh_watchdog_cancels
