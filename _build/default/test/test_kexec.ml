(* Tests for the kexec micro-reboot machinery. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let mk_pmem () = Hw.Pmem.create ~frames:(512 * 64) ()

let test_load_reserves () =
  let pmem = mk_pmem () in
  let img =
    Kexec.load ~pmem ~kernel:"kvm-5.3.1" ~size:(Hw.Units.mib 24) ~cmdline:""
  in
  checki "frames" (Hw.Units.frames_of_bytes (Hw.Units.mib 24))
    (Kexec.image_frames img);
  Alcotest.check Alcotest.string "kernel" "kvm-5.3.1" (Kexec.kernel img)

let test_cmdline_pram_pointer () =
  let pmem = mk_pmem () in
  let img =
    Kexec.load ~pmem ~kernel:"xen" ~size:(Hw.Units.mib 1)
      ~cmdline:"console=ttyS0 loglevel=7"
  in
  let img = Kexec.with_pram_pointer img (Hw.Frame.Mfn.of_int 0xBEEF) in
  checkb "appended" true
    (String.length (Kexec.cmdline img) > String.length "console=ttyS0 loglevel=7");
  (match Kexec.pram_pointer_of_cmdline (Kexec.cmdline img) with
  | Some mfn -> checki "parsed back" 0xBEEF (Hw.Frame.Mfn.to_int mfn)
  | None -> Alcotest.fail "pointer lost");
  Alcotest.check (Alcotest.option Alcotest.int) "absent" None
    (Option.map Hw.Frame.Mfn.to_int
       (Kexec.pram_pointer_of_cmdline "console=ttyS0"))

let test_cmdline_malformed_pointer () =
  Alcotest.check (Alcotest.option Alcotest.int) "garbage value" None
    (Option.map Hw.Frame.Mfn.to_int
       (Kexec.pram_pointer_of_cmdline "pram=zzz quiet"))

let test_execute_wipes_and_preserves () =
  let pmem = mk_pmem () in
  let keep = Hw.Pmem.alloc_frames pmem 6 in
  let lose = Hw.Pmem.alloc_frames pmem 10 in
  List.iter (fun m -> Hw.Pmem.write pmem m 1L) keep;
  List.iter (fun m -> Hw.Pmem.write pmem m 2L) lose;
  let img = Kexec.load ~pmem ~kernel:"kvm" ~size:(Hw.Units.kib 64) ~cmdline:"" in
  let keep_set = List.map Hw.Frame.Mfn.to_int keep in
  let report =
    Kexec.execute ~pmem img ~preserve:(fun m ->
        List.mem (Hw.Frame.Mfn.to_int m) keep_set)
  in
  checki "wiped the rest" 10 report.Kexec.frames_wiped;
  checkb "image intact" true report.Kexec.image_intact;
  List.iter
    (fun m ->
      Alcotest.check (Alcotest.option Alcotest.int64) "kept" (Some 1L)
        (Hw.Pmem.read pmem m))
    keep;
  List.iter
    (fun m -> checkb "reclaimed" false (Hw.Pmem.is_allocated pmem m))
    lose

let test_execute_detects_image_clobber () =
  let pmem = mk_pmem () in
  let img = Kexec.load ~pmem ~kernel:"kvm" ~size:(Hw.Units.kib 8) ~cmdline:"" in
  (* Overwrite one image frame behind kexec's back.  The frame is
     reserved, so it survives the jump, but the content is wrong. *)
  (match Hw.Pmem.alloc_extents pmem 1 with
  | _ -> ());
  let victim =
    (* Find an image frame by probing reserved frames. *)
    let found = ref None in
    for f = 0 to Hw.Pmem.total_frames pmem - 1 do
      let m = Hw.Frame.Mfn.of_int f in
      if !found = None && Hw.Pmem.is_reserved pmem m then found := Some m
    done;
    Option.get !found
  in
  Hw.Pmem.write pmem victim 0xBAD0BAD0L;
  let report = Kexec.execute ~pmem img ~preserve:(fun _ -> false) in
  checkb "clobbered image detected" false report.Kexec.image_intact

let test_unload_frees () =
  let pmem = mk_pmem () in
  let before = Hw.Pmem.free_frames pmem in
  let img = Kexec.load ~pmem ~kernel:"kvm" ~size:(Hw.Units.mib 2) ~cmdline:"" in
  checkb "frames taken" true (Hw.Pmem.free_frames pmem < before);
  Kexec.unload ~pmem img;
  checki "all returned" before (Hw.Pmem.free_frames pmem)

let test_image_survives_own_jump () =
  let pmem = mk_pmem () in
  let img = Kexec.load ~pmem ~kernel:"xen" ~size:(Hw.Units.mib 4) ~cmdline:"" in
  let report = Kexec.execute ~pmem img ~preserve:(fun _ -> false) in
  checkb "reserved image not wiped" true report.Kexec.image_intact

let suites =
  [
    ( "kexec",
      [
        Alcotest.test_case "load reserves frames" `Quick test_load_reserves;
        Alcotest.test_case "pram pointer on cmdline" `Quick test_cmdline_pram_pointer;
        Alcotest.test_case "malformed pointer" `Quick test_cmdline_malformed_pointer;
        Alcotest.test_case "execute wipes and preserves" `Quick
          test_execute_wipes_and_preserves;
        Alcotest.test_case "image clobber detected" `Quick
          test_execute_detects_image_clobber;
        Alcotest.test_case "unload frees" `Quick test_unload_frees;
        Alcotest.test_case "image survives its jump" `Quick
          test_image_survives_own_jump;
      ] );
  ]
