(* CRC-32 (IEEE 802.3), table-driven.  Defined before the reader/writer
   modules so per-section checksums can use it. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_sub data ~pos ~len =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.get data i))))
           0xFFl)
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let crc32 data = crc32_sub data ~pos:0 ~len:(Bytes.length data)

module Writer = struct
  (* A writer owns its output buffer plus a free-list of scratch
     buffers shared with every sub-writer it spawns for TLV sections.
     Encoding a fleet's worth of VM states used to allocate one fresh
     Buffer per section; with the pool, a [reset] writer re-encodes
     into the same storage, so steady-state encoding does O(1)
     buffer allocation per blob rather than O(sections). *)
  type t = { buf : Buffer.t; scratch : Buffer.t Stack.t }

  let create () = { buf = Buffer.create 256; scratch = Stack.create () }

  let reset t = Buffer.clear t.buf

  let u8 t v = Buffer.add_uint8 t.buf (v land 0xFF)
  let u16 t v = Buffer.add_uint16_le t.buf (v land 0xFFFF)

  let u32 t v =
    Buffer.add_int32_le t.buf (Int32.of_int (v land 0xFFFFFFFF))

  let i32 t v = Buffer.add_int32_le t.buf v
  let u64 t v = Buffer.add_int64_le t.buf v
  let bool t v = u8 t (if v then 1 else 0)

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t.buf s

  let string16 t s =
    if String.length s > 0xFFFF then
      invalid_arg "Wire.string16: string longer than 64 KiB";
    u16 t (String.length s);
    Buffer.add_string t.buf s

  let list t f xs =
    u32 t (List.length xs);
    List.iter f xs

  let array t f xs =
    u32 t (Array.length xs);
    Array.iter f xs

  let size t = Buffer.length t.buf
  let contents t = Buffer.to_bytes t.buf

  let acquire_scratch t =
    match Stack.pop_opt t.scratch with
    | Some b ->
      Buffer.clear b;
      b
    | None -> Buffer.create 256

  let section t ~tag body =
    let b = acquire_scratch t in
    body { buf = b; scratch = t.scratch };
    u16 t tag;
    u32 t (Buffer.length b);
    Buffer.add_buffer t.buf b;
    Stack.push b t.scratch

  let section_crc t ~tag body =
    let b = acquire_scratch t in
    body { buf = b; scratch = t.scratch };
    let pb = Buffer.to_bytes b in
    u16 t tag;
    u32 t (Bytes.length pb);
    Buffer.add_bytes t.buf pb;
    Buffer.add_int32_le t.buf (crc32 pb);
    Stack.push b t.scratch
end

module Reader = struct
  type format_error = { offset : int; section : int option; reason : string }

  type t = {
    data : bytes;
    mutable pos : int;
    limit : int;
    sect : int option;
  }

  exception Truncated
  exception Bad_format of format_error

  let format_error_to_string e =
    Printf.sprintf "%s: %s"
      (Diag.location_to_string ?section:e.section e.offset)
      e.reason

  let create ?section data =
    { data; pos = 0; limit = Bytes.length data; sect = section }

  let fail t reason = raise (Bad_format { offset = t.pos; section = t.sect; reason })

  let need t n = if t.pos + n > t.limit then raise Truncated

  let u8 t =
    need t 1;
    let v = Bytes.get_uint8 t.data t.pos in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    need t 2;
    let v = Bytes.get_uint16_le t.data t.pos in
    t.pos <- t.pos + 2;
    v

  let i32 t =
    need t 4;
    let v = Bytes.get_int32_le t.data t.pos in
    t.pos <- t.pos + 4;
    v

  let u32 t = Int32.to_int (i32 t) land 0xFFFFFFFF

  let u64 t =
    need t 8;
    let v = Bytes.get_int64_le t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let bool t =
    let at = t.pos in
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n ->
      raise
        (Bad_format
           { offset = at; section = t.sect;
             reason = Printf.sprintf "invalid bool byte %d" n })

  let string t =
    let len = u32 t in
    need t len;
    let s = Bytes.sub_string t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let string16 t =
    let len = u16 t in
    need t len;
    let s = Bytes.sub_string t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let list t f =
    let n = u32 t in
    if n > t.limit - t.pos then raise Truncated;
    List.init n (fun _ -> f t)

  let array t f =
    let n = u32 t in
    if n > t.limit - t.pos then raise Truncated;
    Array.init n (fun _ -> f t)

  let remaining t = t.limit - t.pos
  let eof t = t.pos >= t.limit

  let run_section t ~tag ~len ~skip k =
    let sub = { data = t.data; pos = t.pos; limit = t.pos + len; sect = Some tag } in
    let result = k ~tag sub in
    if sub.pos <> sub.limit then
      fail sub (Printf.sprintf "%d bytes unconsumed" (sub.limit - sub.pos));
    t.pos <- t.pos + len + skip;
    result

  let section t k =
    let tag = u16 t in
    let len = u32 t in
    need t len;
    run_section t ~tag ~len ~skip:0 k

  let section_crc t k =
    let at = t.pos in
    let tag = u16 t in
    let len = u32 t in
    need t (len + 4);
    let stored = Bytes.get_int32_le t.data (t.pos + len) in
    let computed = crc32_sub t.data ~pos:t.pos ~len in
    if not (Int32.equal stored computed) then
      raise
        (Bad_format
           { offset = at; section = Some tag;
             reason =
               Printf.sprintf "section crc mismatch: stored %08lx, computed %08lx"
                 stored computed });
    run_section t ~tag ~len ~skip:4 k
end

let append_crc data =
  let out = Bytes.create (Bytes.length data + 4) in
  Bytes.blit data 0 out 0 (Bytes.length data);
  Bytes.set_int32_le out (Bytes.length data) (crc32 data);
  out

let check_crc data =
  let len = Bytes.length data in
  if len < 4 then Error "blob shorter than a CRC"
  else begin
    let body = Bytes.sub data 0 (len - 4) in
    let stored = Bytes.get_int32_le data (len - 4) in
    let computed = crc32 body in
    if Int32.equal stored computed then Ok body
    else
      Error
        (Printf.sprintf "CRC mismatch: stored %08lx, computed %08lx" stored
           computed)
  end
