lib/core/phases.ml: Format Sim
