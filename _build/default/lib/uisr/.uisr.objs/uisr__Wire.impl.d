lib/uisr/wire.ml: Array Buffer Bytes Char Int32 Lazy List Printf String
