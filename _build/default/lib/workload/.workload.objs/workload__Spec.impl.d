lib/workload/spec.ml: Float List Sched Sim Spec_data
