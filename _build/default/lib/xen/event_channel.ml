type port = int

type binding =
  | Unbound
  | Interdomain of { remote_domid : int; remote_port : port }
  | Virq of int
  | Pirq of int

type entry = { mutable bind : binding; mutable is_pending : bool }

type t = { table : (port, entry) Hashtbl.t; mutable next_port : port }

let create () = { table = Hashtbl.create 16; next_port = 1 }

let fresh t =
  let port = t.next_port in
  t.next_port <- port + 1;
  port

let alloc_unbound t ~remote_domid =
  ignore remote_domid;
  let port = fresh t in
  Hashtbl.replace t.table port { bind = Unbound; is_pending = false };
  port

let entry_exn t port =
  match Hashtbl.find_opt t.table port with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Event_channel: port %d not allocated" port)

let bind_interdomain t port ~remote_domid ~remote_port =
  let e = entry_exn t port in
  (match e.bind with
  | Unbound -> ()
  | Interdomain _ | Virq _ | Pirq _ ->
    invalid_arg "Event_channel.bind_interdomain: port already bound");
  e.bind <- Interdomain { remote_domid; remote_port }

let bind_virq t ~virq =
  let port = fresh t in
  Hashtbl.replace t.table port { bind = Virq virq; is_pending = false };
  port

let close t port =
  ignore (entry_exn t port);
  Hashtbl.remove t.table port

let binding t port =
  Option.map (fun e -> e.bind) (Hashtbl.find_opt t.table port)

let send t port = (entry_exn t port).is_pending <- true
let pending t port = (entry_exn t port).is_pending
let consume t port = (entry_exn t port).is_pending <- false

let ports t =
  List.sort Int.compare (Hashtbl.fold (fun p _ acc -> p :: acc) t.table [])

let bound_count t =
  Hashtbl.fold
    (fun _ e acc -> match e.bind with Unbound -> acc | _ -> acc + 1)
    t.table 0

let state_bytes t = Hashtbl.length t.table * 32

let close_all t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  n
