examples/fleet_timeline.mli:
