type vm = {
  vm_name : string;
  ram : Hw.Units.bytes_;
  inplace_compatible : bool;
  workload : Vmstate.Vm.workload_kind;
}

type node = {
  node_name : string;
  ram_capacity : Hw.Units.bytes_;
  mutable placed : vm list;
  mutable placed_count : int; (* = List.length placed, maintained by place/evict *)
  mutable used_bytes : Hw.Units.bytes_; (* = sum of placed RAM, ditto *)
  mutable upgraded : bool;
  mutable online : bool;
}

type t = { nodes : node list }

let make ?(seed = 0xC1D2L) ~nodes ~vms_per_node ~vm_ram ~node_ram
    ~inplace_fraction ~workload_mix () =
  if nodes <= 0 || vms_per_node <= 0 then
    invalid_arg "Model.make: non-positive sizes";
  if inplace_fraction < 0.0 || inplace_fraction > 1.0 then
    invalid_arg "Model.make: fraction out of range";
  let mix_total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 workload_mix in
  if Float.abs (mix_total -. 1.0) > 1e-6 then
    invalid_arg "Model.make: workload mix must sum to 1";
  let rng = Sim.Rng.create seed in
  let total = nodes * vms_per_node in
  let n_inplace =
    int_of_float (Float.round (inplace_fraction *. float_of_int total))
  in
  (* Deterministic workload assignment by cumulative fractions.  The
     per-VM float test [pos < cum] is hoisted into integer boundaries
     (least [i] with [i/total >= cum], found by binary search on the
     same float expression, so the classification is bit-identical to
     the old walk), and the hot loop compares ints — at a million VMs
     the float walk used to dominate [make]. *)
  let bounds =
    let pos i = float_of_int i /. float_of_int total in
    let cum = ref 0.0 in
    List.map
      (fun (w, f) ->
        cum := !cum +. f;
        let c = !cum in
        let lo = ref 0 and hi = ref total in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if pos mid < c then lo := mid + 1 else hi := mid
        done;
        (w, !lo))
      workload_mix
  in
  let workload_of i =
    let rec pick = function
      | [] -> Vmstate.Vm.Wl_idle
      | (w, b) :: rest -> if i < b then w else pick rest
    in
    pick bounds
  in
  (* Names match [Printf.sprintf "vm%03d"] / ["node%02d"] byte-for-byte;
     the sprintf pair allocated ~10x more and was the single largest
     heap cost of building a fleet-scale model. *)
  let vm_name i =
    if i < 10 then "vm00" ^ string_of_int i
    else if i < 100 then "vm0" ^ string_of_int i
    else "vm" ^ string_of_int i
  in
  let node_name j =
    if j < 10 then "node0" ^ string_of_int j else "node" ^ string_of_int j
  in
  (* Spread the InPlaceTP-compatible VMs uniformly across nodes. *)
  let flags = Array.init total (fun i -> i < n_inplace) in
  Sim.Rng.shuffle rng flags;
  let vm i =
    {
      vm_name = vm_name i;
      ram = vm_ram;
      inplace_compatible = flags.(i);
      workload = workload_of i;
    }
  in
  let node j =
    let placed =
      List.init vms_per_node (fun k -> vm ((j * vms_per_node) + k))
    in
    {
      node_name = node_name j;
      ram_capacity = node_ram;
      placed;
      placed_count = vms_per_node;
      used_bytes = List.fold_left (fun acc v -> acc + v.ram) 0 placed;
      upgraded = false;
      online = true;
    }
  in
  { nodes = List.init nodes node }

let used_ram node = node.used_bytes
let free_ram node = node.ram_capacity - node.used_bytes

let fits node vm =
  (* Keep 2 GiB of headroom for the hypervisor and administration OS. *)
  node.online && free_ram node - Hw.Units.gib 2 >= vm.ram

let place node vm =
  node.placed <- vm :: node.placed;
  node.placed_count <- node.placed_count + 1;
  node.used_bytes <- node.used_bytes + vm.ram

let evict node vm =
  if not (List.memq vm node.placed) then
    invalid_arg "Model.evict: VM not placed here";
  node.placed <- List.filter (fun v -> not (v == vm)) node.placed;
  node.placed_count <- node.placed_count - 1;
  node.used_bytes <- node.used_bytes - vm.ram

let find_node t name =
  match List.find_opt (fun n -> String.equal n.node_name name) t.nodes with
  | Some n -> n
  | None -> invalid_arg ("Model.find_node: " ^ name)

let total_vms t = List.fold_left (fun acc n -> acc + n.placed_count) 0 t.nodes

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf fmt "%s: %d VMs (%a used)%s%s@," n.node_name
        n.placed_count Hw.Units.pp_bytes (used_ram n)
        (if n.upgraded then " [upgraded]" else "")
        (if n.online then "" else " [offline]"))
    t.nodes;
  Format.fprintf fmt "@]"
