(** A virtual machine: configuration plus live architectural state.

    This is the hypervisor-{e independent} description of a VM.  Each
    hypervisor wraps it in its own native structures (Xen domain / KVM
    vm-fd) and keeps its own hypervisor-{e dependent} VM_i State around
    it (nested page tables, scheduler accounting). *)

type workload_kind =
  | Wl_idle
  | Wl_redis
  | Wl_mysql
  | Wl_spec of string  (** one SPECrate 2017 application *)
  | Wl_darknet
  | Wl_streaming

type config = {
  name : string;
  vcpus : int;
  ram : Hw.Units.bytes_;
  page_kind : Hw.Units.page_kind;
  device_kinds : Device.kind list;
  workload : workload_kind;
  inplace_compatible : bool;
  (** Whether this VM tolerates a few seconds of downtime (InPlaceTP) or
      must be live-migrated (section 5.4 varies this proportion). *)
  compat_ioapic_pins : int option;
  (** IOAPIC harmonisation (the forward-compatible fix the paper's
      section 4.2.1 sketches): cap the virtual IOAPIC at this many pins
      at creation time so no hypervisor in the repertoire has to
      disconnect live pins during transplant.  [None] uses the creating
      hypervisor's native pin count. *)
}

val config :
  ?vcpus:int -> ?ram:Hw.Units.bytes_ -> ?page_kind:Hw.Units.page_kind ->
  ?device_kinds:Device.kind list -> ?workload:workload_kind ->
  ?inplace_compatible:bool -> ?compat_ioapic_pins:int -> name:string ->
  unit -> config
(** Defaults: 1 vCPU, 1 GiB, 2 MiB pages (the paper's guest setup), an
    emulated NIC + emulated disk + console, idle, InPlaceTP-compatible,
    no IOAPIC cap. *)

type run_state = Running | Paused | Suspended

type t = {
  config : config;
  vcpus : Vcpu.t array;
  ioapic : Ioapic.t;
  pit : Pit.t;
  devices : Device.t array;
  mem : Guest_mem.t;
  mutable run_state : run_state;
}

val create :
  pmem:Hw.Pmem.t -> rng:Sim.Rng.t -> ?ioapic_pins:int -> config -> t
(** Instantiate the VM on a host: allocates guest memory, generates
    vCPU/platform/device state.  [ioapic_pins] defaults to the creating
    hypervisor's pin count (pass {!Ioapic.xen_pins} or
    {!Ioapic.kvm_pins}). *)

val pause : t -> unit
val resume : t -> unit
val suspend : t -> unit
val is_running : t -> bool

val total_tcp_connections : t -> int
val equal_platform : t -> t -> bool
(** vCPUs + IOAPIC + PIT equality (used by round-trip tests). *)

val pp : Format.formatter -> t -> unit
val pp_workload : Format.formatter -> workload_kind -> unit
