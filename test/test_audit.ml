(* Tests for the residual-state auditor: the differential sweep against
   a fresh-boot reference, severity classification, the scrub pass, the
   seeded residual-planting ground truth (zero false negatives), the
   deterministic report serialization, and the engine/campaign wiring
   of the post-commit audit rung. *)

module A = Audit
module C = Cluster.Campaign

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let qtest = QCheck_alcotest.to_alcotest

let machine () = Hw.Machine.m1 ()

let hv_module = function
  | Hv.Kind.Xen -> (module Xenhv.Xen : Hv.Intf.S)
  | Hv.Kind.Kvm -> (module Kvmhv.Kvm : Hv.Intf.S)
  | Hv.Kind.Bhyve -> (module Bhyvehv.Bhyve : Hv.Intf.S)

let small_vm ?(name = "vm0") ?(mib = 64) () =
  Vmstate.Vm.config ~name ~ram:(Hw.Units.mib mib) ()

let audited = Hypertp.Ctx.make ~audit:Hypertp.Ctx.audit_default ()

let one site trigger = Fault.make [ { Fault.site; trigger } ]

(* --- the pure auditor over a planted world --- *)

(* A target-hypervisor world with captured pre-transplant baselines:
   the fixture the planting properties run against. *)
let planted_setup () =
  let m = machine () in
  let host =
    Hypertp.Api.provision ~name:"pw" ~machine:m ~hv:Hv.Kind.Kvm
      [ small_vm (); small_vm ~name:"vm1" () ]
  in
  let reference = A.reference_of_fresh_boot ~machine:m (hv_module Hv.Kind.Kvm) in
  let source = A.reference_of_fresh_boot ~machine:m (hv_module Hv.Kind.Xen) in
  let baseline =
    List.map
      (fun vm ->
        Vmstate.Vm.pause vm;
        (* round-trip through the codec so the capture does not share
           the live VM's mutable platform state (the engines' baselines
           are decoded blobs too) *)
        let st =
          match
            Uisr.Codec.decode
              (Uisr.Codec.encode
                 (Uisr.Vm_state.of_vm ~source_hypervisor:source.A.ref_hv vm))
          with
          | Ok st -> st
          | Error _ -> Alcotest.fail "baseline round-trip"
        in
        Vmstate.Vm.resume vm;
        (vm.Vmstate.Vm.config.Vmstate.Vm.name, st))
      (Hv.Host.vms host)
  in
  (host, reference, source, baseline)

let fixture = lazy (planted_setup ())

let test_calm_world_audits_clean () =
  let host, reference, source, baseline = Lazy.force fixture in
  let r = A.run ~reference ~source (A.world ~baseline host) in
  checkb "clean" true (A.clean r);
  checkb "guest frames attributed" true (r.A.r_guest_frames > 0);
  checkb "swept beyond guest memory" true
    (r.A.r_frames_swept > r.A.r_guest_frames);
  checkb "no worst severity" true (A.worst r = None)

let test_planted_all_kinds_flagged_then_scrubbed () =
  let host, reference, source, baseline = Lazy.force fixture in
  let w = A.world ~baseline host in
  let plan =
    [ A.Plant.Pram_page; A.Plant.Hv_frames 3; A.Plant.Kexec_frame;
      A.Plant.Stale_blob "vm0"; A.Plant.Clock_skew_plant "vm1" ]
  in
  let w = A.Plant.apply ~reference ~source w plan in
  let r = A.run ~reference ~source w in
  let of_kind k =
    List.filter (fun f -> f.A.f_kind = k) r.A.r_findings
  in
  List.iter
    (fun p ->
      checkb (A.Plant.to_string p ^ " flagged") true
        (of_kind (A.Plant.expected_finding p) <> []))
    plan;
  checki "every planted hv frame flagged" 3
    (List.length (of_kind A.Unreclaimed_hv_frame));
  (* Severity ladder: readable source state is exploitable, observable
     artefacts are fingerprintable. *)
  checkb "orphan pram exploitable" true
    (List.for_all
       (fun f -> f.A.f_severity = A.Exploitable)
       (of_kind A.Orphan_pram_page @ of_kind A.Unreclaimed_hv_frame));
  checkb "source-stamped blob exploitable" true
    (List.for_all
       (fun f -> f.A.f_severity = A.Exploitable)
       (of_kind A.Stale_uisr_blob));
  checkb "kexec and clock fingerprintable" true
    (List.for_all
       (fun f -> f.A.f_severity = A.Fingerprintable)
       (of_kind A.Stale_kexec_frame @ of_kind A.Clock_skew));
  checkb "worst is exploitable" true (A.worst r = Some A.Exploitable);
  (* The scrub remediates all of it: frames freed, blob dropped, clock
     restored from the capture — and the recheck comes back clean. *)
  let sc = A.scrub w r in
  checki "frames freed (1 pram + 3 hv + 1 kexec)" 5 sc.A.sc_frames_freed;
  checkb "nothing unscrubbable" true (sc.A.sc_unscrubbed = []);
  checki "everything scrubbed" (List.length r.A.r_findings)
    (List.length sc.A.sc_scrubbed);
  checkb "recheck clean" true
    (A.clean (A.run ~reference ~source sc.A.sc_world))

(* Zero false negatives, pinned over random plant schedules: whatever
   the injector plants, the sweep reports — and the scrub returns the
   world to a clean state for the next case. *)
let prop_zero_false_negatives =
  QCheck.Test.make ~count:60 ~name:"planted residue is never missed"
    QCheck.(pair small_nat (int_range 1 6))
    (fun (seed, n) ->
      let host, reference, source, baseline = Lazy.force fixture in
      let rng = Sim.Rng.create (Int64.of_int (0xAB0 + seed)) in
      let plan = A.Plant.random_plan ~rng ~vms:[ "vm0"; "vm1" ] n in
      let w = A.Plant.apply ~reference ~source (A.world ~baseline host) plan in
      let r = A.run ~reference ~source w in
      let flagged k = List.exists (fun f -> f.A.f_kind = k) r.A.r_findings in
      let none_missed =
        List.for_all (fun p -> flagged (A.Plant.expected_finding p)) plan
      in
      if not none_missed then
        QCheck.Test.fail_reportf "missed a plant in [%s]"
          (String.concat "; " (List.map A.Plant.to_string plan));
      let sc = A.scrub w r in
      sc.A.sc_unscrubbed = []
      && A.clean (A.run ~reference ~source sc.A.sc_world))

(* --- deterministic serialization --- *)

let gen_finding =
  QCheck.Gen.(
    let* f_kind = oneofl A.all_kinds in
    let* f_severity = oneofl [ A.Benign; A.Fingerprintable; A.Exploitable ] in
    let* f_subject = oneofl [ "mfn:7"; "vm0"; "host"; "odd-subject_1" ] in
    let* f_frame = opt (int_range 0 2_000_000) in
    let* f_tag = opt (oneofl [ 0x1234L; -1L; Int64.min_int; 0L ]) in
    let* f_reason =
      oneofl
        [ ""; "x"; "frame still tagged by the source hypervisor xen-4.12.1";
          "reason with = signs, spaces and 0x00 text" ]
    in
    return { A.f_kind; f_severity; f_subject; f_frame; f_tag; f_reason })

let gen_report =
  QCheck.Gen.(
    let* r_source = oneofl [ "-"; "xen-4.12.1"; "kvm-5.3.1" ] in
    let* r_target = oneofl [ "kvm-5.3.1"; "bhyve-12.1" ] in
    let* r_frames_swept = int_range 0 1_000_000 in
    let* r_guest_frames = int_range 0 1_000_000 in
    let* r_findings = list_size (int_range 0 8) gen_finding in
    return { A.r_source; r_target; r_frames_swept; r_guest_frames; r_findings })

let prop_report_roundtrip =
  QCheck.Test.make ~count:200 ~name:"report serialization round-trips"
    (QCheck.make ~print:A.to_string gen_report)
    (fun r ->
      match A.of_string (A.to_string r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let test_report_parse_errors () =
  let reject s =
    match A.of_string s with
    | Ok _ -> Alcotest.failf "accepted garbage: %S" s
    | Error e -> checkb "error is descriptive" true (String.length e > 0)
  in
  reject "";
  reject "not an audit report";
  reject "hypertp-audit-report v1\nsource=x target=y\n";
  (* missing end line *)
  reject
    "hypertp-audit-report v1\n\
     source=x target=y frames_swept=1 guest_frames=0\n";
  (* finding-count mismatch on the end line *)
  reject
    "hypertp-audit-report v1\n\
     source=x target=y frames_swept=1 guest_frames=0\n\
     end findings=3\n"

(* --- engine wiring: InPlaceTP --- *)

let xen_host ?(vms = [ small_vm () ]) () =
  Hypertp.Api.provision ~name:"ah" ~machine:(machine ()) ~hv:Hv.Kind.Xen vms

let test_calm_transplants_audit_clean_all_directions () =
  List.iter
    (fun (src, tgt) ->
      let host =
        Hypertp.Api.provision ~name:"ah" ~machine:(machine ()) ~hv:src
          [ small_vm (); small_vm ~name:"vm1" () ]
      in
      let r = Hypertp.Api.transplant_inplace ~ctx:audited ~host ~target:tgt () in
      (match r.Hypertp.Inplace.outcome with
      | Hypertp.Inplace.Committed -> ()
      | o ->
        Alcotest.failf "calm audited run not committed: %s"
          (Format.asprintf "%a" Hypertp.Inplace.pp_outcome o));
      match r.Hypertp.Inplace.audit with
      | Some a -> checkb "zero findings" true (A.clean a)
      | None -> Alcotest.fail "audit armed but no report")
    [ (Hv.Kind.Xen, Hv.Kind.Kvm); (Hv.Kind.Kvm, Hv.Kind.Xen);
      (Hv.Kind.Xen, Hv.Kind.Bhyve) ]

let test_unarmed_run_has_no_report () =
  let host = xen_host () in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  checkb "no audit unless armed" true (r.Hypertp.Inplace.audit = None)

let recovered r =
  match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d -> d
  | o ->
    Alcotest.failf "expected Recovered, got %s"
      (Format.asprintf "%a" Hypertp.Inplace.pp_outcome o)

let test_leak_scrubbed_never_commits () =
  let host = xen_host () in
  let ctx =
    Hypertp.Ctx.with_fault (one Fault.Residual_leak (Fault.Nth_hit 1)) audited
  in
  let r = Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm () in
  let d = recovered r in
  checkb "leak noted" true (List.mem Fault.Residual_leak d.recovery_faults);
  checki "five plants found" 5 d.Hypertp.Inplace.audit_findings;
  checki "all five scrubbed" 5 d.Hypertp.Inplace.audit_scrubbed;
  checkb "no full reboot needed" true (not d.Hypertp.Inplace.full_reboot);
  (match r.Hypertp.Inplace.audit with
  | Some a -> checkb "final report is the clean recheck" true (A.clean a)
  | None -> Alcotest.fail "no report");
  checkb "checks still hold" true
    (Hypertp.Inplace.all_ok r.Hypertp.Inplace.checks)

let test_scrub_fail_escalates_to_full_reboot () =
  let host = xen_host () in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Residual_leak; trigger = Fault.Nth_hit 1 };
        { Fault.site = Fault.Scrub_fail; trigger = Fault.Nth_hit 1 } ]
  in
  let r =
    Hypertp.Api.transplant_inplace
      ~ctx:(Hypertp.Ctx.with_fault fault audited)
      ~host ~target:Hv.Kind.Kvm ()
  in
  let d = recovered r in
  checkb "both sites noted" true
    (List.mem Fault.Residual_leak d.recovery_faults
    && List.mem Fault.Scrub_fail d.recovery_faults);
  checki "nothing scrubbed" 0 d.Hypertp.Inplace.audit_scrubbed;
  checkb "escalated to the full-reboot rung" true d.Hypertp.Inplace.full_reboot;
  match r.Hypertp.Inplace.audit with
  | Some a ->
    checkb "residue reported, not hidden" true (not (A.clean a));
    checkb "worst is exploitable" true (A.worst a = Some A.Exploitable)
  | None -> Alcotest.fail "no report"

let test_leak_nth2_never_fires () =
  (* The site is consulted exactly once per transplant: an Nth_hit 2
     trigger can never fire, pinning the consultation count. *)
  let host = xen_host () in
  let ctx =
    Hypertp.Ctx.with_fault (one Fault.Residual_leak (Fault.Nth_hit 2)) audited
  in
  let r = Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm () in
  checkb "committed" true (r.Hypertp.Inplace.outcome = Hypertp.Inplace.Committed);
  match r.Hypertp.Inplace.audit with
  | Some a -> checkb "clean" true (A.clean a)
  | None -> Alcotest.fail "no report"

let test_salvage_then_audit_clean () =
  (* A salvaged VM's PIT was replaced with power-on defaults — the
     auditor must read that as regenerated state, not residue. *)
  let host = xen_host ~vms:[ small_vm (); small_vm ~name:"vm1" () ] () in
  let ctx =
    Hypertp.Ctx.with_fault (one Fault.Uisr_corrupt (Fault.On_vm "vm1")) audited
  in
  let r = Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm () in
  let d = recovered r in
  checkb "vm1 salvaged" true (List.map fst d.Hypertp.Inplace.salvaged = [ "vm1" ]);
  checki "no residual findings" 0 d.Hypertp.Inplace.audit_findings;
  match r.Hypertp.Inplace.audit with
  | Some a -> checkb "salvaged default PIT not flagged" true (A.clean a)
  | None -> Alcotest.fail "no report"

(* --- downtime charging and span reconciliation --- *)

let phases_equal a b =
  let open Hypertp.Phases in
  Sim.Time.equal a.pram b.pram
  && Sim.Time.equal a.translation b.translation
  && Sim.Time.equal a.reboot b.reboot
  && Sim.Time.equal a.restoration b.restoration
  && Sim.Time.equal a.recovery b.recovery
  && Sim.Time.equal a.network b.network

let test_audit_time_charged_to_downtime () =
  let run ctx =
    let host = xen_host () in
    Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm ()
  in
  let plain = run (Hypertp.Ctx.make ()) in
  let aud = run audited in
  checkb "both committed" true
    (plain.Hypertp.Inplace.outcome = Hypertp.Inplace.Committed
    && aud.Hypertp.Inplace.outcome = Hypertp.Inplace.Committed);
  checkb "calm run pays no recovery time" true
    (Sim.Time.equal plain.Hypertp.Inplace.phases.Hypertp.Phases.recovery
       Sim.Time.zero);
  checkb "audit sweep billed into the recovery phase" true
    Sim.Time.(
      Sim.Time.zero < aud.Hypertp.Inplace.phases.Hypertp.Phases.recovery)

let test_audit_rungs_reconcile_with_trace () =
  let host = xen_host () in
  let tr = Obs.Tracer.create () in
  let ctx =
    Hypertp.Ctx.make
      ~fault:(one Fault.Residual_leak (Fault.Nth_hit 1))
      ~obs:tr ~audit:Hypertp.Ctx.audit_default ()
  in
  let r = Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm () in
  let d = recovered r in
  let derived = Hypertp.Phases.of_trace (Obs.Tracer.spans tr) in
  checkb "phases reconcile from the trace" true
    (phases_equal derived r.Hypertp.Inplace.phases);
  checkb "recovery time matches the phase" true
    (Sim.Time.equal d.Hypertp.Inplace.recovery_time
       r.Hypertp.Inplace.phases.Hypertp.Phases.recovery);
  let rungs name =
    List.length
      (List.filter
         (fun s -> Obs.Span.name s = "rung:" ^ name)
         (Obs.Tracer.spans tr))
  in
  checki "sweep and recheck are two audit rungs" 2 (rungs "audit");
  checki "one scrub rung" 1 (rungs "scrub")

let test_costs_monotone () =
  let m = machine () in
  let s1 = Hypertp.Costs.audit_sweep_seconds m ~frames_swept:1_000 ~vms:1 in
  let s2 = Hypertp.Costs.audit_sweep_seconds m ~frames_swept:100_000 ~vms:4 in
  checkb "sweep positive and monotone" true (0.0 < s1 && s1 < s2);
  let c1 = Hypertp.Costs.scrub_seconds m ~frames_freed:1 ~findings:1 in
  let c2 = Hypertp.Costs.scrub_seconds m ~frames_freed:500 ~findings:6 in
  checkb "scrub positive and monotone" true (0.0 < c1 && c1 < c2)

(* --- determinism and the golden pin --- *)

(* Byte-for-byte the scenario the CI audit-sweep job runs: CLI defaults
   (m1, one 1 GiB VM, seed 42) with a planted leak and scrubbing off. *)
let planted_inplace ?(scrub = true) () =
  let host =
    Hypertp.Api.provision ~seed:42L ~name:"cli-host" ~machine:(machine ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"vm0" ~vcpus:1 ~ram:(Hw.Units.gib 1) () ]
  in
  let ctx =
    Hypertp.Ctx.make ~rng:(Sim.Rng.create 42L)
      ~fault:(one Fault.Residual_leak (Fault.Nth_hit 1))
      ~audit:{ Hypertp.Ctx.audit_scrub = scrub }
      ()
  in
  Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm ()

let audit_of r =
  match r.Hypertp.Inplace.audit with
  | Some a -> a
  | None -> Alcotest.fail "no audit report"

let test_same_seed_byte_identical () =
  let s1 = A.to_string (audit_of (planted_inplace ~scrub:false ())) in
  let s2 = A.to_string (audit_of (planted_inplace ~scrub:false ())) in
  checks "same seed, same bytes" s1 s2

let test_planted_golden () =
  let golden =
    let path =
      List.find Sys.file_exists
        [ "golden/audit_planted.txt"; "test/golden/audit_planted.txt" ]
    in
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let a = audit_of (planted_inplace ~scrub:false ()) in
  checks "planted report matches the golden pin" golden (A.to_string a);
  (* and the pin itself parses back to the same report *)
  match A.of_string golden with
  | Ok r -> checkb "golden parses to the live report" true (r = a)
  | Error e -> Alcotest.failf "golden does not parse: %s" e

(* --- the shared diagnostic shape --- *)

let test_diag_shared_shape () =
  let f =
    { A.f_kind = A.Orphan_pram_page; f_severity = A.Exploitable;
      f_subject = "mfn:9"; f_frame = Some 9; f_tag = Some 1L; f_reason = "r" }
  in
  checks "audit findings use the Diag shape"
    "[exploitable] orphan_pram_page mfn:9: r"
    (Format.asprintf "%a" A.pp_finding f);
  checks "Diag renders the documented shape" "[salvageable] pit at byte 12: r"
    (Format.asprintf "%t" (fun fmt ->
         Uisr.Diag.pp fmt ~label:"salvageable" ~subject:"pit" ~offset:12 "r"))

(* --- fault sites --- *)

let test_fault_sites_parse () =
  (match Fault.parse_injection "residual_leak:1" with
  | Ok { Fault.site = Fault.Residual_leak; trigger = Fault.Nth_hit 1 } -> ()
  | _ -> Alcotest.fail "residual_leak:1");
  (match Fault.parse_injection "scrub_fail:p=0.5" with
  | Ok { Fault.site = Fault.Scrub_fail; trigger = Fault.Probability 0.5 } -> ()
  | _ -> Alcotest.fail "scrub_fail:p=0.5");
  checkb "engine sites include the audit pair" true
    (List.mem Fault.Residual_leak Fault.engine_sites
    && List.mem Fault.Scrub_fail Fault.engine_sites);
  checkb "both are post-PNR" true
    ((not (Fault.pre_pnr Fault.Residual_leak))
    && not (Fault.pre_pnr Fault.Scrub_fail))

(* --- engine wiring: MigrationTP --- *)

let kvm_dst ?(name = "adst") () =
  Hypertp.Api.provision ~name ~machine:(machine ()) ~hv:Hv.Kind.Kvm []

let test_migrate_audit_time_charged () =
  let run ctx =
    let src = xen_host () and dst = kvm_dst () in
    Hypertp.Api.transplant_migration ~ctx ~src ~dst ()
  in
  let plain = run (Hypertp.Ctx.make ()) in
  let aud = run audited in
  checkb "plain run pays nothing" true
    (Sim.Time.equal plain.Hypertp.Migrate.audit_time Sim.Time.zero
    && plain.Hypertp.Migrate.audit = None);
  checkb "audit time charged" true
    Sim.Time.(Sim.Time.zero < aud.Hypertp.Migrate.audit_time);
  checkb "audit time lands in total_time" true
    (Sim.Time.equal aud.Hypertp.Migrate.total_time
       (Sim.Time.add plain.Hypertp.Migrate.total_time
          aud.Hypertp.Migrate.audit_time));
  checkb "destination world clean" true
    (aud.Hypertp.Migrate.checks.Hypertp.Migrate.residual_clean
    && match aud.Hypertp.Migrate.audit with
       | Some a -> A.clean a
       | None -> false)

let test_migrate_leak_scrubbed_stays_clean () =
  let src = xen_host () and dst = kvm_dst () in
  let ctx =
    Hypertp.Ctx.with_fault (one Fault.Residual_leak (Fault.Nth_hit 1)) audited
  in
  let r = Hypertp.Api.transplant_migration ~ctx ~src ~dst () in
  checkb "scrub-and-recheck keeps the check green" true
    r.Hypertp.Migrate.checks.Hypertp.Migrate.residual_clean;
  match r.Hypertp.Migrate.audit with
  | Some a -> checkb "recheck clean" true (A.clean a)
  | None -> Alcotest.fail "no report"

let test_migrate_scrub_fail_flags_residue () =
  let src = xen_host () and dst = kvm_dst () in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Residual_leak; trigger = Fault.Nth_hit 1 };
        { Fault.site = Fault.Scrub_fail; trigger = Fault.Nth_hit 1 } ]
  in
  let r =
    Hypertp.Api.transplant_migration
      ~ctx:(Hypertp.Ctx.with_fault fault audited)
      ~src ~dst ()
  in
  checkb "residual check fails" true
    (not r.Hypertp.Migrate.checks.Hypertp.Migrate.residual_clean);
  match r.Hypertp.Migrate.audit with
  | Some a ->
    checkb "residue reported" true (not (A.clean a));
    checkb "worst is exploitable" true (A.worst a = Some A.Exploitable)
  | None -> Alcotest.fail "no report"

(* --- campaign wiring: per-host audit verdicts --- *)

let audit_injections p =
  [ { Fault.site = Fault.Residual_leak; trigger = Fault.Probability p };
    { Fault.site = Fault.Scrub_fail; trigger = Fault.Probability (p /. 2.0) } ]

let finished = function
  | C.Finished (r, j) -> (r, j)
  | C.Crashed _ -> Alcotest.fail "campaign crashed without a crash fault"

let test_campaign_unarmed_has_no_verdicts () =
  let r, _ = finished (C.run C.default_config) in
  checkb "no verdicts without the audit sites" true (r.C.audit_verdicts = []);
  checkb "host records carry none" true
    (List.for_all (fun h -> h.C.hr_audit = None) r.C.hosts)

let test_campaign_audit_verdicts () =
  let fault = Fault.make ~seed:13L (audit_injections 0.6) in
  let r = C.run_to_completion ~fault C.default_config in
  let inplace_hosts =
    List.filter (fun h -> h.C.hr_status = C.Upgraded_inplace) r.C.hosts
  in
  checki "one verdict per in-place host" (List.length inplace_hosts)
    (List.length r.C.audit_verdicts);
  checkb "every in-place host carries a verdict" true
    (List.for_all (fun h -> h.C.hr_audit <> None) inplace_hosts);
  checkb "p=0.6 plants residue on some host" true
    (List.exists (fun (_, v) -> v <> C.A_clean) r.C.audit_verdicts);
  checki "accounting still closes" r.C.vms_total (C.vms_accounted r)

let test_campaign_audit_resume_roundtrip () =
  let mk extra =
    Fault.make ~seed:21L (audit_injections 0.7 @ extra)
  in
  let uninterrupted =
    match C.run ~fault:(mk []) C.default_config with
    | C.Finished (r, _) -> r
    | C.Crashed _ -> Alcotest.fail "no crash was armed"
  in
  let crash =
    [ { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 8 } ]
  in
  let resumed =
    match C.run ~fault:(mk crash) C.default_config with
    | C.Finished (r, _) -> r
    | C.Crashed journal -> (
      let text = C.journal_to_string journal in
      checkb "journal text carries audit verdicts" true
        (let rec has i =
           i + 7 <= String.length text
           && (String.sub text i 7 = " audit=" || has (i + 1))
         in
         has 0);
      let journal' =
        match C.journal_of_string text with
        | Ok j -> j
        | Error e -> Alcotest.failf "journal round-trip: %s" e
      in
      match C.resume ~fault:(mk crash) journal' with
      | C.Finished (r, _) -> r
      | C.Crashed _ -> Alcotest.fail "crashed again")
  in
  checkb "resume converges to the uninterrupted report" true
    (uninterrupted = resumed)

let test_campaign_resume_rejects_mismatched_audit () =
  (* Original plan: leak and scrub failure both certain, so every
     completed host journals A_failed.  Resuming with the scrub failure
     dropped would replay A_scrubbed — the journal must be rejected. *)
  let original =
    Fault.make ~seed:31L
      [ { Fault.site = Fault.Residual_leak; trigger = Fault.Probability 1.0 };
        { Fault.site = Fault.Scrub_fail; trigger = Fault.Probability 1.0 };
        { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 8 } ]
  in
  match C.run ~fault:original C.default_config with
  | C.Finished _ -> Alcotest.fail "controller crash never fired"
  | C.Crashed journal ->
    let mismatched =
      Fault.make ~seed:31L
        [ { Fault.site = Fault.Residual_leak; trigger = Fault.Probability 1.0 };
          { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 8 } ]
    in
    checkb "mismatched audit plan rejected" true
      (try
         ignore (C.resume ~fault:mismatched journal);
         false
       with Hypertp.Error.Error e ->
         e.Hypertp.Error.site = "Campaign.resume")

let test_verdict_strings_roundtrip () =
  List.iter
    (fun v ->
      match C.verdict_of_string (C.verdict_to_string v) with
      | Some v' -> checkb (C.verdict_to_string v) true (v = v')
      | None -> Alcotest.fail "verdict round-trip")
    [ C.A_clean; C.A_scrubbed; C.A_failed ];
  checkb "garbage rejected" true (C.verdict_of_string "garbage" = None)

let suites =
  [
    ( "audit.sweep",
      [
        Alcotest.test_case "calm world audits clean" `Quick
          test_calm_world_audits_clean;
        Alcotest.test_case "planted kinds flagged then scrubbed" `Quick
          test_planted_all_kinds_flagged_then_scrubbed;
        qtest prop_zero_false_negatives;
      ] );
    ( "audit.serialization",
      [
        qtest prop_report_roundtrip;
        Alcotest.test_case "parse errors" `Quick test_report_parse_errors;
        Alcotest.test_case "same seed byte-identical" `Quick
          test_same_seed_byte_identical;
        Alcotest.test_case "planted golden pin" `Quick test_planted_golden;
        Alcotest.test_case "shared diag shape" `Quick test_diag_shared_shape;
      ] );
    ( "audit.inplace",
      [
        Alcotest.test_case "calm clean, all directions" `Quick
          test_calm_transplants_audit_clean_all_directions;
        Alcotest.test_case "unarmed has no report" `Quick
          test_unarmed_run_has_no_report;
        Alcotest.test_case "leak scrubbed, never commits" `Quick
          test_leak_scrubbed_never_commits;
        Alcotest.test_case "scrub failure escalates" `Quick
          test_scrub_fail_escalates_to_full_reboot;
        Alcotest.test_case "one consultation per run" `Quick
          test_leak_nth2_never_fires;
        Alcotest.test_case "salvage then audit clean" `Quick
          test_salvage_then_audit_clean;
        Alcotest.test_case "audit time charged to downtime" `Quick
          test_audit_time_charged_to_downtime;
        Alcotest.test_case "rung spans reconcile" `Quick
          test_audit_rungs_reconcile_with_trace;
        Alcotest.test_case "costs monotone" `Quick test_costs_monotone;
        Alcotest.test_case "fault sites parse" `Quick test_fault_sites_parse;
      ] );
    ( "audit.migrate",
      [
        Alcotest.test_case "audit time charged" `Quick
          test_migrate_audit_time_charged;
        Alcotest.test_case "leak scrubbed stays clean" `Quick
          test_migrate_leak_scrubbed_stays_clean;
        Alcotest.test_case "scrub failure flags residue" `Quick
          test_migrate_scrub_fail_flags_residue;
      ] );
    ( "audit.campaign",
      [
        Alcotest.test_case "unarmed has no verdicts" `Quick
          test_campaign_unarmed_has_no_verdicts;
        Alcotest.test_case "per-host verdicts" `Quick
          test_campaign_audit_verdicts;
        Alcotest.test_case "resume round-trips verdicts" `Quick
          test_campaign_audit_resume_roundtrip;
        Alcotest.test_case "resume rejects mismatched verdicts" `Quick
          test_campaign_resume_rejects_mismatched_audit;
        Alcotest.test_case "verdict strings round-trip" `Quick
          test_verdict_strings_roundtrip;
      ] );
  ]
