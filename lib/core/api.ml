let hypervisor_of = function
  | Hv.Kind.Xen -> (module Xenhv.Xen : Hv.Intf.S)
  | Hv.Kind.Kvm -> (module Kvmhv.Kvm : Hv.Intf.S)
  | Hv.Kind.Bhyve -> (module Bhyvehv.Bhyve : Hv.Intf.S)

let provision ?seed ~name ~machine ~hv configs =
  let host = Hv.Host.create ?seed ~name machine in
  Hv.Host.boot_hypervisor host (hypervisor_of hv);
  List.iter (fun config -> ignore (Hv.Host.create_vm host config)) configs;
  host

type response = {
  advice : Cve.Window.advice;
  inplace : Inplace.report option;
}

let transplant_inplace ?options ?rng ?fault ?obs ?metrics ~host ~target () =
  Inplace.run ?options ?rng ?fault ?obs ?metrics ~host
    ~target:(hypervisor_of target) ()

let transplant_migration ?rng ?fault ?retry ?obs ?metrics ~src ~dst ?vm_names
    () =
  Migrate.run ?rng ?fault ?retry ?obs ?metrics ~src ~dst ?vm_names ()

let respond_to_cve ?options ?rng ?fault ~host ~cve_id ?(apply = true) () =
  let record =
    match Cve.Nvd.find cve_id with
    | Some r -> r
    | None -> invalid_arg ("Api.respond_to_cve: unknown CVE " ^ cve_id)
  in
  let current =
    match Hv.Host.hypervisor_kind host with
    | Some k -> Hv.Kind.to_string k
    | None -> invalid_arg "Api.respond_to_cve: host has no hypervisor"
  in
  let advice =
    Cve.Window.advise ~fleet:(List.map Hv.Kind.to_string Hv.Kind.all) ~current
      record
  in
  let inplace =
    match advice with
    | Cve.Window.Transplant_to target_name when apply ->
      let target =
        match Hv.Kind.of_string target_name with
        | Some k -> k
        | None -> invalid_arg "Api.respond_to_cve: unknown target"
      in
      Some (transplant_inplace ?options ?rng ?fault ~host ~target ())
    | Cve.Window.Transplant_to _ | Cve.Window.No_action
    | Cve.Window.No_safe_alternative ->
      None
  in
  { advice; inplace }
