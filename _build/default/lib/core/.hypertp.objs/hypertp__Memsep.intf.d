lib/core/memsep.mli: Format Hv Hw
