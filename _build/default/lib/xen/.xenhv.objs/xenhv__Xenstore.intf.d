lib/xen/xenstore.mli:
