type access_vector = Local | Adjacent_network | Network
type access_complexity = High | Medium_c | Low_c
type authentication = Multiple | Single | None_a
type impact = None_i | Partial | Complete

type vector = {
  av : access_vector;
  ac : access_complexity;
  au : authentication;
  conf : impact;
  integ : impact;
  avail : impact;
}

(* CVSS v2 base equation coefficients (first.org specification). *)
let av_score = function Local -> 0.395 | Adjacent_network -> 0.646 | Network -> 1.0
let ac_score = function High -> 0.35 | Medium_c -> 0.61 | Low_c -> 0.71
let au_score = function Multiple -> 0.45 | Single -> 0.56 | None_a -> 0.704
let impact_score = function None_i -> 0.0 | Partial -> 0.275 | Complete -> 0.660

let round1 x = Float.round (x *. 10.0) /. 10.0

let base_score v =
  let impact =
    10.41
    *. (1.0
        -. ((1.0 -. impact_score v.conf)
            *. (1.0 -. impact_score v.integ)
            *. (1.0 -. impact_score v.avail)))
  in
  let exploitability = 20.0 *. av_score v.av *. ac_score v.ac *. au_score v.au in
  let f_impact = if impact = 0.0 then 0.0 else 1.176 in
  round1 (((0.6 *. impact) +. (0.4 *. exploitability) -. 1.5) *. f_impact)

let parse s =
  let parts = String.split_on_char '/' s in
  let lookup key =
    List.find_map
      (fun part ->
        match String.index_opt part ':' with
        | Some i when String.sub part 0 i = key ->
          Some (String.sub part (i + 1) (String.length part - i - 1))
        | Some _ | None -> None)
      parts
  in
  let ( let* ) = Result.bind in
  let field key of_string =
    match lookup key with
    | None -> Error (Printf.sprintf "missing %s" key)
    | Some v -> (
      match of_string v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad %s:%s" key v))
  in
  let* av =
    field "AV" (function
      | "L" -> Some Local
      | "A" -> Some Adjacent_network
      | "N" -> Some Network
      | _ -> None)
  in
  let* ac =
    field "AC" (function
      | "H" -> Some High
      | "M" -> Some Medium_c
      | "L" -> Some Low_c
      | _ -> None)
  in
  let* au =
    field "Au" (function
      | "M" -> Some Multiple
      | "S" -> Some Single
      | "N" -> Some None_a
      | _ -> None)
  in
  let imp = function
    | "N" -> Some None_i
    | "P" -> Some Partial
    | "C" -> Some Complete
    | _ -> None
  in
  let* conf = field "C" imp in
  let* integ = field "I" imp in
  let* avail = field "A" imp in
  Ok { av; ac; au; conf; integ; avail }

let to_string v =
  let av = match v.av with Local -> "L" | Adjacent_network -> "A" | Network -> "N" in
  let ac = match v.ac with High -> "H" | Medium_c -> "M" | Low_c -> "L" in
  let au = match v.au with Multiple -> "M" | Single -> "S" | None_a -> "N" in
  let imp = function None_i -> "N" | Partial -> "P" | Complete -> "C" in
  Printf.sprintf "AV:%s/AC:%s/Au:%s/C:%s/I:%s/A:%s" av ac au (imp v.conf)
    (imp v.integ) (imp v.avail)

type severity = Low | Medium | Critical

let severity_of_score s =
  if s >= 7.0 then Critical else if s >= 4.0 then Medium else Low

let pp_severity fmt = function
  | Low -> Format.pp_print_string fmt "low"
  | Medium -> Format.pp_print_string fmt "medium"
  | Critical -> Format.pp_print_string fmt "critical"
