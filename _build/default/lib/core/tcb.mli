(** Trusted-computing-base accounting (section 4.4).

    HyperTP adds ~15 KLOC total, of which 8.5 KLOC join the TCB and
    nearly 90 % of that sits in userspace — negligible next to the
    millions of lines of hypervisor + management VM it protects. *)

type component = {
  comp_name : string;
  kloc : float;
  in_tcb : bool;
  userspace : bool;
}

val components : component list
(** The paper's breakdown: hypervisor patches (2.2), userspace
    management tools (5.2), orchestration (1.1), testing/utilities/
    evaluation (6.1). *)

val total_kloc : unit -> float
val tcb_kloc : unit -> float
val tcb_userspace_fraction : unit -> float
val baseline_tcb_kloc : float
(** Order of magnitude of the existing virtualization TCB (hypervisor +
    management VM, per Zhang et al. [58]). *)

val pp_table : Format.formatter -> unit -> unit
