(** Shared [from_uisr] building blocks.

    Every HyperTP-compliant hypervisor performs the same
    hypervisor-independent restoration steps — filtering MSRs it cannot
    virtualise (with recorded fixups), reconstructing devices from their
    snapshots, rescanning unplugged ones — before applying its own
    platform specifics (IOAPIC pin count, native containers).  Keeping
    them here is what makes adding the (N+1)-th hypervisor a small
    job. *)

val filter_msrs :
  supports_msr:(int -> bool) -> Uisr.Fixup.t list ref -> Vmstate.Vcpu.t ->
  Vmstate.Vcpu.t
(** Drop unsupported MSRs, recording one {!Uisr.Fixup.Msr_dropped} per
    drop. *)

val devices_of_snapshots :
  rng:Sim.Rng.t -> Uisr.Fixup.t list ref ->
  Uisr.Vm_state.device_snapshot list -> Vmstate.Device.t list
(** Rebuild the device set: carried-over emulated devices get their
    registers and virtqueue rings back exactly; unplugged network
    devices are rescanned with fresh state (recorded fixup) but keep
    their guest-visible identity and TCP connections.  All devices come
    back paused, awaiting the resume handshake. *)

val config_of_uisr :
  devices:Vmstate.Device.t list -> Uisr.Vm_state.t -> Vmstate.Vm.config
(** Reconstruct the VM configuration that rides along the UISR. *)
