type stats = {
  count : int;
  mean_days : float;
  min_days : int;
  max_days : int;
  over_60_fraction : float;
}

let stats_of windows =
  match windows with
  | [] -> invalid_arg "Window.stats_of: no documented windows"
  | _ ->
    let count = List.length windows in
    let sum = List.fold_left ( + ) 0 windows in
    let over_60 = List.length (List.filter (fun w -> w > 60) windows) in
    {
      count;
      mean_days = float_of_int sum /. float_of_int count;
      min_days = List.fold_left Stdlib.min max_int windows;
      max_days = List.fold_left Stdlib.max 0 windows;
      over_60_fraction = float_of_int over_60 /. float_of_int count;
    }

let documented_windows affected =
  List.filter_map
    (fun r -> if affected r then r.Nvd.window_days else None)
    Nvd.all

let kvm_stats () = stats_of (documented_windows Nvd.affects_kvm)
let xen_stats () = stats_of (documented_windows Nvd.affects_xen)

type advice =
  | No_action
  | Transplant_to of string
  | Wait_for_patch
  | No_safe_alternative

let affects_name (r : Nvd.record) = function
  | "xen" -> Nvd.affects_xen r
  | "kvm" -> Nvd.affects_kvm r
  | "bhyve" ->
    (* The studied dataset is a Xen/KVM history; bhyve shares neither
       codebase.  Only their common QEMU-derived device emulation could
       overlap, which bhyve does not use. *)
    false
  | other -> invalid_arg ("Window.advise: unknown hypervisor " ^ other)

let advise ~fleet ~current (r : Nvd.record) =
  if Nvd.is_hardware_level r then
    (* Spectre-class flaws live in the CPU: every hypervisor in any
       repertoire runs on the same silicon.  Transplant cannot help. *)
    No_safe_alternative
  else if not (affects_name r current) then No_action
  else if r.severity <> Cvss.Critical then No_action
  else begin
    let safe =
      List.find_opt
        (fun hv -> (not (String.equal hv current)) && not (affects_name r hv))
        fleet
    in
    match safe with
    | Some hv -> Transplant_to hv
    | None -> No_safe_alternative
  end

let affected r hv = affects_name r hv

(* The wait-vs-transplant crossover: waiting exposes the fleet for the
   whole patch delay, transplanting costs the campaign itself (queueing,
   wall-clock, downtime) expressed in the same host-hours currency.
   Waiting wins exactly when the weighted delay does not exceed the
   transplant cost. *)
let transplant_break_even_days ~transplant_cost_hours ~risk_weight =
  if transplant_cost_hours < 0.0 then
    invalid_arg "Window.transplant_break_even_days: negative cost";
  if risk_weight <= 0.0 then
    invalid_arg "Window.transplant_break_even_days: risk weight must be positive";
  transplant_cost_hours /. (24.0 *. risk_weight)

let advise_costed ~fleet ~current ~transplant_cost_hours ?(risk_weight = 1.0)
    (t : Nvd.timed) =
  let break_even =
    transplant_break_even_days ~transplant_cost_hours ~risk_weight
  in
  match advise ~fleet ~current t.Nvd.body with
  | (No_action | No_safe_alternative | Wait_for_patch) as a -> a
  | Transplant_to hv ->
    if t.Nvd.patch_delay_days <= break_even then Wait_for_patch
    else Transplant_to hv

(* Patch-availability delays for synthetic streams, drawn from the
   documented window statistics: a coordinated-disclosure mass (the
   patch ships with the advisory, as with most XSAs) plus the Red Hat
   empirical window set, jittered.  Exactly two RNG draws per call, so
   seeded streams stay aligned whichever branch is taken. *)
let empirical_windows () = documented_windows Nvd.affects_kvm

let sample_patch_delay ~rng ?(coordinated_fraction = 0.3) () =
  if coordinated_fraction < 0.0 || coordinated_fraction > 1.0 then
    invalid_arg "Window.sample_patch_delay: fraction outside [0, 1]";
  let u = Sim.Rng.float rng 1.0 in
  if u < coordinated_fraction then 0.25 +. Sim.Rng.float rng 2.75
  else begin
    let windows = Array.of_list (empirical_windows ()) in
    let w = windows.(Sim.Rng.int rng (Array.length windows)) in
    float_of_int w *. (0.8 +. 0.4 *. (u -. coordinated_fraction)
                              /. (1.0 -. coordinated_fraction))
  end

let transplants_needed_per_year ~fleet ~current =
  let years = List.sort_uniq Int.compare (List.map (fun r -> r.Nvd.year) Nvd.all) in
  List.map
    (fun year ->
      let n =
        List.length
          (List.filter
             (fun r ->
               r.Nvd.year = year
               &&
               match advise ~fleet ~current r with
               | Transplant_to _ -> true
               | No_action | Wait_for_patch | No_safe_alternative -> false)
             Nvd.all)
      in
      (year, n))
    years

let pp_stats fmt s =
  Format.fprintf fmt
    "%d windows: mean %.1f days, min %d, max %d, %.0f%% over 60 days" s.count
    s.mean_days s.min_days s.max_days (100.0 *. s.over_60_fraction)

let pp_advice fmt = function
  | No_action -> Format.pp_print_string fmt "no action needed"
  | Transplant_to hv -> Format.fprintf fmt "transplant to %s" hv
  | Wait_for_patch -> Format.pp_print_string fmt "wait for the patch"
  | No_safe_alternative -> Format.pp_print_string fmt "no safe alternative"
