lib/hv/npt.ml: Float Hw List Stdlib
