(* Residual-state auditing: prove the transplant left nothing of the
   source hypervisor behind, and scrub it when it did.

   The post-commit audit sweeps the target world against a fresh-boot
   reference of the target hypervisor: every allocated frame's content
   tag must be attributable to the target or to a riding guest, every
   staged UISR blob must be gone, and the guest-visible platform state
   must match the pre-transplant baseline modulo the modeled downtime.

   Run with: dune exec examples/residual_audit.exe *)

let fresh_host () =
  Hypertp.Api.provision ~name:"host0" ~machine:(Hw.Machine.m1 ())
    ~hv:Hv.Kind.Xen
    [ Vmstate.Vm.config ~name:"vm0" ~workload:Vmstate.Vm.Wl_redis ();
      Vmstate.Vm.config ~name:"vm1" () ]

let audited = Hypertp.Ctx.make ~audit:Hypertp.Ctx.audit_default ()

let () =
  Format.printf "=== HyperTP residual-state audit ===@.@.";

  (* 1. Calm path: a fault-free transplant must audit clean — zero
     findings, outcome still Committed. *)
  Format.printf "--- calm transplant, audit armed ---@.";
  let host = fresh_host () in
  let r =
    Hypertp.Api.transplant_inplace ~ctx:audited ~host ~target:Hv.Kind.Kvm ()
  in
  Format.printf "%a@." Hypertp.Inplace.pp_report r;
  (match r.Hypertp.Inplace.audit with
  | Some a -> Format.printf "%a@.@." Audit.pp_report a
  | None -> assert false);

  (* 2. A residual leak: the transplant leaves orphaned PRAM pages,
     source heap frames, a stale kernel frame and a retained staged
     blob behind.  The audit flags all of it, the scrub pass frees the
     frames and drops the blob, and the recheck comes back clean — but
     the run reports Recovered, never Committed. *)
  Format.printf "--- residual leak: audit, scrub, recheck ---@.";
  let host = fresh_host () in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Residual_leak; trigger = Fault.Nth_hit 1 } ]
  in
  let ctx = Hypertp.Ctx.with_fault fault audited in
  let r = Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm () in
  Format.printf "%a@.@." Hypertp.Inplace.pp_report r;

  (* 3. The scrub itself fails: the ladder escalates to the full-reboot
     rung rather than handing back a world with known residue. *)
  Format.printf "--- residual leak + scrub failure: full reboot ---@.";
  let host = fresh_host () in
  let fault =
    Fault.make
      [ { Fault.site = Fault.Residual_leak; trigger = Fault.Nth_hit 1 };
        { Fault.site = Fault.Scrub_fail; trigger = Fault.Nth_hit 1 } ]
  in
  let ctx = Hypertp.Ctx.with_fault fault audited in
  let r = Hypertp.Api.transplant_inplace ~ctx ~host ~target:Hv.Kind.Kvm () in
  Format.printf "%a@.@." Hypertp.Inplace.pp_report r;

  (* 4. MigrationTP gets the same rung: the destination world is swept
     after the last VM lands. *)
  Format.printf "--- audited MigrationTP ---@.";
  let src = fresh_host () in
  let dst =
    Hypertp.Api.provision ~name:"dst" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm []
  in
  let r =
    Hypertp.Api.transplant_migration ~ctx:audited ~src ~dst ()
  in
  Format.printf "%a@." Hypertp.Migrate.pp_report r
