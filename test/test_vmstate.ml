(* Tests for the architectural VM state vocabulary. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest
let rng () = Sim.Rng.create 0xABCL

(* --- Regs --- *)

let test_regs_msr_ops () =
  let r = Vmstate.Regs.generate (rng ()) in
  let r' = Vmstate.Regs.with_msr r 0x999 42L in
  Alcotest.check (Alcotest.option Alcotest.int64) "inserted" (Some 42L)
    (Vmstate.Regs.msr_value r' 0x999);
  let r'' = Vmstate.Regs.with_msr r' 0x999 43L in
  Alcotest.check (Alcotest.option Alcotest.int64) "replaced" (Some 43L)
    (Vmstate.Regs.msr_value r'' 0x999);
  checki "no duplicate" (List.length r'.Vmstate.Regs.msrs)
    (List.length r''.Vmstate.Regs.msrs);
  Alcotest.check (Alcotest.option Alcotest.int64) "missing" None
    (Vmstate.Regs.msr_value r 0x12345)

let test_regs_with_msr_sorted () =
  let r = Vmstate.Regs.generate (rng ()) in
  let r = Vmstate.Regs.with_msr r 0x1 1L in
  let indices = List.map (fun (m : Vmstate.Regs.msr) -> m.index) r.msrs in
  checkb "0x1 first" true (List.hd indices = 0x1)

let test_regs_equal () =
  let g = rng () in
  let a = Vmstate.Regs.generate g in
  checkb "reflexive" true (Vmstate.Regs.equal a a);
  let b = { a with Vmstate.Regs.gprs = { a.gprs with rax = Int64.add a.gprs.rax 1L } } in
  checkb "gpr change detected" false (Vmstate.Regs.equal a b)

(* --- Lapic --- *)

let test_lapic_pending () =
  let l = Vmstate.Lapic.generate (rng ()) ~apic_id:0 in
  let counted = Vmstate.Lapic.pending_interrupts l in
  let manual =
    Array.fold_left
      (fun acc w ->
        let rec pop x n =
          if Int64.equal x 0L then n
          else pop (Int64.logand x (Int64.sub x 1L)) (n + 1)
        in
        acc + pop w 0)
      0 l.Vmstate.Lapic.irr
  in
  checki "popcount matches" manual counted

let test_lapic_equal_detects () =
  let g = rng () in
  let a = Vmstate.Lapic.generate g ~apic_id:1 in
  checkb "reflexive" true (Vmstate.Lapic.equal a a);
  checkb "id change" false
    (Vmstate.Lapic.equal a { a with Vmstate.Lapic.apic_id = 2 })

(* --- Ioapic --- *)

let test_ioapic_truncate_extend () =
  let io = Vmstate.Ioapic.generate (rng ()) ~pins:48 in
  let t, dropped = Vmstate.Ioapic.truncate io ~pins:24 in
  checki "kept 24" 24 (Vmstate.Ioapic.pin_count t);
  let connected_high =
    Vmstate.Ioapic.connected_pins io - Vmstate.Ioapic.connected_pins t
  in
  checki "dropped = connected high pins" connected_high dropped;
  let e = Vmstate.Ioapic.extend t ~pins:48 in
  checki "extended back" 48 (Vmstate.Ioapic.pin_count e);
  checki "extension adds only masked pins"
    (Vmstate.Ioapic.connected_pins t)
    (Vmstate.Ioapic.connected_pins e)

let test_ioapic_truncate_identity () =
  let io = Vmstate.Ioapic.generate (rng ()) ~pins:24 in
  let t, dropped = Vmstate.Ioapic.truncate io ~pins:24 in
  checkb "no-op truncate" true (Vmstate.Ioapic.equal io t);
  checki "nothing dropped" 0 dropped

let test_ioapic_invalid () =
  let io = Vmstate.Ioapic.generate (rng ()) ~pins:24 in
  Alcotest.check_raises "truncate up"
    (Invalid_argument "Ioapic.truncate: extending, not truncating") (fun () ->
      ignore (Vmstate.Ioapic.truncate io ~pins:48));
  Alcotest.check_raises "extend down"
    (Invalid_argument "Ioapic.extend: truncating, not extending") (fun () ->
      ignore (Vmstate.Ioapic.extend io ~pins:12))

let prop_ioapic_truncate_prefix =
  QCheck.Test.make ~name:"truncate keeps the pin prefix intact"
    QCheck.(int_range 1 24)
    (fun keep ->
      let io = Vmstate.Ioapic.generate (Sim.Rng.create 5L) ~pins:48 in
      let t, _ = Vmstate.Ioapic.truncate io ~pins:keep in
      List.for_all
        (fun i -> io.Vmstate.Ioapic.pins.(i) = t.Vmstate.Ioapic.pins.(i))
        (List.init keep (fun i -> i)))

(* --- Mtrr --- *)

let test_mtrr_msr_roundtrip () =
  let m = Vmstate.Mtrr.generate (rng ()) in
  match Vmstate.Mtrr.of_msrs (Vmstate.Mtrr.to_msrs m) with
  | Some m' -> checkb "roundtrip" true (Vmstate.Mtrr.equal m m')
  | None -> Alcotest.fail "of_msrs failed"

let test_mtrr_incomplete_msrs () =
  let m = Vmstate.Mtrr.generate (rng ()) in
  let msrs = List.tl (Vmstate.Mtrr.to_msrs m) in
  checkb "missing msr detected" true (Vmstate.Mtrr.of_msrs msrs = None)

let test_mtrr_msr_count () =
  let m = Vmstate.Mtrr.generate (rng ()) in
  (* def_type + 11 fixed + 8 variable pairs. *)
  checki "msr count" (1 + 11 + 16) (List.length (Vmstate.Mtrr.to_msrs m))

(* --- Xsave --- *)

let test_xsave_size () =
  let x = Vmstate.Xsave.generate (rng ()) in
  checkb "header + components" true (Vmstate.Xsave.size_bytes x > 64);
  checkb "bv matches xcr0" true (Int64.equal x.xcr0 x.xstate_bv)

(* --- Device --- *)

let test_device_unplug_rescan () =
  let g = rng () in
  let d = Vmstate.Device.generate g ~id:0 ~kind:Vmstate.Device.Net_emulated () in
  let conns = d.tcp_connections in
  let u = Vmstate.Device.unplug d in
  checkb "state dropped" true (Array.length u.emulation_state = 0);
  checki "connections survive unplug" conns u.tcp_connections;
  let r = Vmstate.Device.rescan u g in
  checkb "running again" true (r.run_state = Vmstate.Device.Dev_running);
  checki "connections survive rescan" conns r.tcp_connections;
  checkb "guest-visible equality" true (Vmstate.Device.equal_guest_visible d r)

let test_device_passthrough_rules () =
  let g = rng () in
  let d = Vmstate.Device.generate g ~id:1 ~kind:Vmstate.Device.Net_passthrough () in
  checkb "passthrough" true (Vmstate.Device.is_passthrough d);
  checki "no emulation state" 0 (Array.length d.emulation_state);
  Alcotest.check_raises "unplug rejected"
    (Invalid_argument "Device.unplug: pass-through device") (fun () ->
      ignore (Vmstate.Device.unplug d))

let test_device_rescan_requires_unplug () =
  let g = rng () in
  let d = Vmstate.Device.generate g ~id:2 ~kind:Vmstate.Device.Blk_emulated () in
  Alcotest.check_raises "rescan without unplug"
    (Invalid_argument "Device.rescan: device was not unplugged") (fun () ->
      ignore (Vmstate.Device.rescan d g))

(* --- Virtqueue --- *)

let test_virtqueue_flow () =
  let q = Vmstate.Virtqueue.create (rng ()) ~size:8 ~guest_frames:1024 in
  Vmstate.Virtqueue.quiesce q;
  checki "drained" 0 (Vmstate.Virtqueue.in_flight q);
  Vmstate.Virtqueue.guest_post q 5;
  checki "posted" 5 (Vmstate.Virtqueue.in_flight q);
  Vmstate.Virtqueue.device_complete q 3;
  checki "completed some" 2 (Vmstate.Virtqueue.in_flight q);
  Alcotest.check_raises "overtake rejected"
    (Invalid_argument "Virtqueue.device_complete: overtaking avail") (fun () ->
      Vmstate.Virtqueue.device_complete q 3);
  Alcotest.check_raises "ring full"
    (Invalid_argument "Virtqueue.guest_post: ring full") (fun () ->
      Vmstate.Virtqueue.guest_post q 7);
  Vmstate.Virtqueue.quiesce q;
  checki "quiesced" 0 (Vmstate.Virtqueue.in_flight q)

let test_virtqueue_serialization () =
  let q = Vmstate.Virtqueue.create (rng ()) ~size:16 ~guest_frames:4096 in
  Vmstate.Virtqueue.guest_post q 3;
  let q' = Vmstate.Virtqueue.of_words (Vmstate.Virtqueue.to_words q) in
  checkb "roundtrip" true (Vmstate.Virtqueue.equal q q');
  checki "indices preserved" (Vmstate.Virtqueue.in_flight q)
    (Vmstate.Virtqueue.in_flight q');
  (* Malformed input rejected. *)
  let words = Vmstate.Virtqueue.to_words q in
  checkb "truncated rejected" true
    (try
       ignore (Vmstate.Virtqueue.of_words (Array.sub words 0 3));
       false
     with Invalid_argument _ -> true)

let prop_virtqueue_roundtrip =
  qtest
    (QCheck.Test.make ~name:"virtqueue serialise roundtrip" ~count:50
       QCheck.(pair (int_range 0 5) small_int)
       (fun (size_log, seed) ->
         let q =
           Vmstate.Virtqueue.create
             (Sim.Rng.create (Int64.of_int seed))
             ~size:(1 lsl (size_log + 1))
             ~guest_frames:65536
         in
         Vmstate.Virtqueue.equal q
           (Vmstate.Virtqueue.of_words (Vmstate.Virtqueue.to_words q))))

let test_device_pause_quiesces () =
  let d = Vmstate.Device.generate (rng ()) ~id:0 ~kind:Vmstate.Device.Blk_emulated () in
  let d = { d with queues = Array.map (fun q -> Vmstate.Virtqueue.quiesce q; q) d.queues } in
  Array.iter (fun q -> Vmstate.Virtqueue.guest_post q 4) d.queues;
  checkb "in flight before pause" true (Vmstate.Device.in_flight d > 0);
  let paused = Vmstate.Device.pause d in
  checki "quiesced by pause (4.2.3)" 0 (Vmstate.Device.in_flight paused)

(* --- Guest_mem --- *)

let mk_mem ?(bytes = Hw.Units.mib 64) ?(page_kind = Hw.Units.Page_2m) () =
  let pmem = Hw.Pmem.create ~frames:(512 * 128) () in
  (pmem, Vmstate.Guest_mem.create ~pmem ~rng:(rng ()) ~bytes ~page_kind ())

let test_guest_mem_shape () =
  let _, mem = mk_mem () in
  checki "pages" 32 (Vmstate.Guest_mem.page_count mem);
  checki "no dirty initially" 0 (Vmstate.Guest_mem.dirty_count mem);
  checki "gfn of page 1" 512
    (Hw.Frame.Gfn.to_int (Vmstate.Guest_mem.gfn_of_page mem 1))

let test_guest_mem_write_dirty () =
  let _, mem = mk_mem () in
  Vmstate.Guest_mem.write_page mem 3 123L;
  Vmstate.Guest_mem.write_page mem 3 124L;
  Vmstate.Guest_mem.write_page mem 7 1L;
  checki "dirty distinct pages" 2 (Vmstate.Guest_mem.dirty_count mem);
  Alcotest.check (Alcotest.list Alcotest.int) "dirty list" [ 3; 7 ]
    (Vmstate.Guest_mem.dirty_pages mem);
  Alcotest.check Alcotest.int64 "readback" 124L
    (Vmstate.Guest_mem.read_page mem 3);
  Vmstate.Guest_mem.clear_dirty_page mem 3;
  checki "selective clear" 1 (Vmstate.Guest_mem.dirty_count mem);
  Vmstate.Guest_mem.clear_dirty mem;
  checki "full clear" 0 (Vmstate.Guest_mem.dirty_count mem)

let test_guest_mem_writethrough () =
  let pmem, mem = mk_mem () in
  Vmstate.Guest_mem.write_page mem 0 77L;
  Alcotest.check (Alcotest.option Alcotest.int64) "backing updated" (Some 77L)
    (Hw.Pmem.read pmem (Vmstate.Guest_mem.mfn_of_page mem 0));
  checkb "verify clean" true (Vmstate.Guest_mem.verify_backing mem = [])

let test_guest_mem_clobber_detection () =
  let pmem, mem = mk_mem () in
  Hw.Pmem.write pmem (Vmstate.Guest_mem.mfn_of_page mem 5) 0xBADL;
  let bad = Vmstate.Guest_mem.verify_backing mem in
  checki "one clobbered page" 1 (List.length bad);
  checki "right page" 5 (fst (List.hd bad))

let test_guest_mem_checksum_sensitivity () =
  let _, mem = mk_mem () in
  let c0 = Vmstate.Guest_mem.checksum mem in
  Vmstate.Guest_mem.write_page mem 9 999L;
  checkb "checksum changed" false
    (Int64.equal c0 (Vmstate.Guest_mem.checksum mem))

let test_guest_mem_extents_cover () =
  let _, mem = mk_mem () in
  let total =
    List.fold_left
      (fun acc (_, _, frames) -> acc + frames)
      0
      (Vmstate.Guest_mem.extents mem)
  in
  checki "extents cover all frames" (Hw.Units.frames_of_bytes (Hw.Units.mib 64))
    total

let test_guest_mem_extents_alignment () =
  let _, mem = mk_mem () in
  List.iter
    (fun (_, mfn, _) ->
      checki "2MiB-aligned backing" 0 (Hw.Frame.Mfn.to_int mfn mod 512))
    (Vmstate.Guest_mem.extents mem)

let test_guest_mem_free_returns () =
  let pmem, mem = mk_mem () in
  let before = Hw.Pmem.free_frames pmem in
  Vmstate.Guest_mem.free mem;
  checki "frames returned"
    (before + Hw.Units.frames_of_bytes (Hw.Units.mib 64))
    (Hw.Pmem.free_frames pmem)

let prop_guest_mem_touch_random =
  QCheck.Test.make ~name:"touch_random dirties at most n pages"
    QCheck.(int_range 1 64)
    (fun n ->
      let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
      let mem =
        Vmstate.Guest_mem.create ~pmem ~rng:(Sim.Rng.create 1L)
          ~bytes:(Hw.Units.mib 32) ~page_kind:Hw.Units.Page_2m ()
      in
      Vmstate.Guest_mem.touch_random mem (Sim.Rng.create 2L) n;
      let d = Vmstate.Guest_mem.dirty_count mem in
      d >= 1 && d <= n)

(* --- Vm --- *)

let test_vm_create_shape () =
  let pmem = Hw.Pmem.create ~frames:(512 * 600) () in
  let config =
    Vmstate.Vm.config ~name:"t" ~vcpus:4 ~ram:(Hw.Units.gib 1) ()
  in
  let vm = Vmstate.Vm.create ~pmem ~rng:(rng ()) ~ioapic_pins:48 config in
  checki "vcpus" 4 (Array.length vm.vcpus);
  checki "ioapic pins" 48 (Vmstate.Ioapic.pin_count vm.ioapic);
  checki "devices" 3 (Array.length vm.devices);
  checkb "running" true (Vmstate.Vm.is_running vm);
  checkb "platform reflexive" true (Vmstate.Vm.equal_platform vm vm)

let test_vm_lifecycle () =
  let pmem = Hw.Pmem.create ~frames:(512 * 64) () in
  let vm =
    Vmstate.Vm.create ~pmem ~rng:(rng ())
      (Vmstate.Vm.config ~name:"t" ~ram:(Hw.Units.mib 32) ())
  in
  Vmstate.Vm.pause vm;
  checkb "paused" false (Vmstate.Vm.is_running vm);
  Vmstate.Vm.resume vm;
  checkb "resumed" true (Vmstate.Vm.is_running vm);
  Vmstate.Vm.suspend vm;
  checkb "suspended" false (Vmstate.Vm.is_running vm)

let test_vm_config_validation () =
  Alcotest.check_raises "zero vcpus"
    (Invalid_argument "Vm.config: non-positive vCPUs") (fun () ->
      ignore (Vmstate.Vm.config ~name:"x" ~vcpus:0 ()))

(* --- wire round-trips through the UISR codec put/get pairs --- *)

let wire_roundtrip put get equal v =
  let w = Uisr.Wire.Writer.create () in
  put w v;
  let r = Uisr.Wire.Reader.create (Uisr.Wire.Writer.contents w) in
  let v' = get r in
  Uisr.Wire.Reader.eof r && equal v v'

let gen_of seed = Sim.Rng.create (Int64.of_int (seed + 1))

let prop_mtrr_wire_roundtrip =
  qtest
    (QCheck.Test.make ~name:"mtrr codec roundtrip" ~count:100 QCheck.small_nat
       (fun seed ->
         wire_roundtrip Uisr.Codec.put_mtrr Uisr.Codec.get_mtrr
           Vmstate.Mtrr.equal
           (Vmstate.Mtrr.generate (gen_of seed))))

let prop_xsave_wire_roundtrip =
  qtest
    (QCheck.Test.make ~name:"xsave codec roundtrip" ~count:100 QCheck.small_nat
       (fun seed ->
         wire_roundtrip Uisr.Codec.put_xsave Uisr.Codec.get_xsave
           Vmstate.Xsave.equal
           (Vmstate.Xsave.generate (gen_of seed))))

let prop_pit_wire_roundtrip =
  qtest
    (QCheck.Test.make ~name:"pit codec roundtrip" ~count:100 QCheck.small_nat
       (fun seed ->
         wire_roundtrip Uisr.Codec.put_pit Uisr.Codec.get_pit Vmstate.Pit.equal
           (Vmstate.Pit.generate (gen_of seed))))

let prop_virtqueue_wire_roundtrip =
  qtest
    (QCheck.Test.make ~name:"virtqueue wire roundtrip" ~count:50
       QCheck.(pair (int_range 0 5) small_nat)
       (fun (size_log, seed) ->
         let q =
           Vmstate.Virtqueue.create (gen_of seed)
             ~size:(1 lsl (size_log + 1))
             ~guest_frames:65536
         in
         wire_roundtrip
           (fun w q ->
             Uisr.Wire.Writer.array w
               (Uisr.Wire.Writer.u64 w)
               (Vmstate.Virtqueue.to_words q))
           (fun r ->
             Vmstate.Virtqueue.of_words
               (Uisr.Wire.Reader.array r Uisr.Wire.Reader.u64))
           Vmstate.Virtqueue.equal q))

let suites =
  [
    ( "vmstate.regs",
      [
        Alcotest.test_case "msr lookup/update" `Quick test_regs_msr_ops;
        Alcotest.test_case "msr insert keeps order" `Quick test_regs_with_msr_sorted;
        Alcotest.test_case "equality" `Quick test_regs_equal;
      ] );
    ( "vmstate.lapic",
      [
        Alcotest.test_case "pending interrupts" `Quick test_lapic_pending;
        Alcotest.test_case "equality" `Quick test_lapic_equal_detects;
      ] );
    ( "vmstate.ioapic",
      [
        Alcotest.test_case "truncate/extend" `Quick test_ioapic_truncate_extend;
        Alcotest.test_case "truncate identity" `Quick test_ioapic_truncate_identity;
        Alcotest.test_case "invalid directions" `Quick test_ioapic_invalid;
        qtest prop_ioapic_truncate_prefix;
      ] );
    ( "vmstate.mtrr",
      [
        Alcotest.test_case "msr roundtrip" `Quick test_mtrr_msr_roundtrip;
        Alcotest.test_case "incomplete msrs" `Quick test_mtrr_incomplete_msrs;
        Alcotest.test_case "msr count" `Quick test_mtrr_msr_count;
        prop_mtrr_wire_roundtrip;
      ] );
    ( "vmstate.xsave",
      [
        Alcotest.test_case "size" `Quick test_xsave_size;
        prop_xsave_wire_roundtrip;
      ] );
    ( "vmstate.pit",
      [ prop_pit_wire_roundtrip ] );
    ( "vmstate.device",
      [
        Alcotest.test_case "unplug/rescan keeps TCP" `Quick test_device_unplug_rescan;
        Alcotest.test_case "pass-through rules" `Quick test_device_passthrough_rules;
        Alcotest.test_case "rescan needs unplug" `Quick test_device_rescan_requires_unplug;
        Alcotest.test_case "pause quiesces rings (4.2.3)" `Quick
          test_device_pause_quiesces;
      ] );
    ( "vmstate.virtqueue",
      [
        Alcotest.test_case "ring flow" `Quick test_virtqueue_flow;
        Alcotest.test_case "serialization" `Quick test_virtqueue_serialization;
        prop_virtqueue_roundtrip;
        prop_virtqueue_wire_roundtrip;
      ] );
    ( "vmstate.guest_mem",
      [
        Alcotest.test_case "shape" `Quick test_guest_mem_shape;
        Alcotest.test_case "writes and dirty bits" `Quick test_guest_mem_write_dirty;
        Alcotest.test_case "write-through" `Quick test_guest_mem_writethrough;
        Alcotest.test_case "clobber detection" `Quick test_guest_mem_clobber_detection;
        Alcotest.test_case "checksum sensitivity" `Quick
          test_guest_mem_checksum_sensitivity;
        Alcotest.test_case "extents cover memory" `Quick test_guest_mem_extents_cover;
        Alcotest.test_case "extent alignment" `Quick test_guest_mem_extents_alignment;
        Alcotest.test_case "free returns frames" `Quick test_guest_mem_free_returns;
        qtest prop_guest_mem_touch_random;
      ] );
    ( "vmstate.vm",
      [
        Alcotest.test_case "creation" `Quick test_vm_create_shape;
        Alcotest.test_case "lifecycle" `Quick test_vm_lifecycle;
        Alcotest.test_case "config validation" `Quick test_vm_config_validation;
      ] );
  ]
