lib/migration/precopy.ml: Float Format Hw Int64 List Sim Stdlib Vmstate
