(** The CVE-stream campaign service: a fleet living under years of
    synthetic vulnerability traffic (DESIGN.md section 5k).

    Three static host populations (home hypervisor Xen / KVM / bhyve)
    are served by a daemon loop on {!Sim.Engine}: a batch tick drains
    the {!Gen} arrival stream, opens one {e episode} per (critical CVE
    x affected population), prices the two mitigations in exposed
    host-hours — wait out the patch delay, or run a supervised
    {!Cluster.Campaign} moving the population to the advised safe
    hypervisor — and commits the {!Policy} choice.  The campaign
    simulation priced at decision time {e is} the execution when
    committed: its per-host completion times, stretched by [tempo]
    into calendar days, become the coverage times the exposure
    accounting integrates.

    Campaigns on one population serialise (no host is ever
    double-booked); campaigns on different populations overlap.  A
    critical arrival finding its population busy can preempt the
    in-flight campaigns ([preempt], or the {!Fault.Campaign_preempt}
    site), releasing not-yet-covered hosts back to exposure.

    Every run is journaled with fault-plan cursors; a
    {!Fault.Controller_crash} (consulted per journal append) kills the
    service and {!resume} replays the journal against a restarted plan
    and continues.  Equal configs, seeds and plans give byte-identical
    journals and reports. *)

type mix = { xen_hosts : int; kvm_hosts : int; bhyve_hosts : int }

val mix_of_topology : Cluster.Topology.t -> mix
(** Map a region-aware topology onto the service's per-hypervisor
    populations by region {e name} ("xen" / "kvm" / "bhyve"; absent
    populations are 0).  Raises [Hypertp.Error.Error] (site
    ["Stream.Service"]) for any other region name. *)

type config = {
  years : float;
  mix : mix;  (** population sizes; each must be 0 or at least 2 *)
  vms_per_host : int;
  rate_per_year : float;  (** CVE arrivals per virtual year *)
  critical_fraction : float;
  coordinated_fraction : float;  (** {!Cve.Window.sample_patch_delay} *)
  policy : Policy.kind;
  tempo : float;
      (** operational stretch: one simulated campaign second occupies
          [tempo] calendar seconds of the stream (maintenance windows,
          change freezes, soak gates between waves) *)
  concurrency : int;  (** hosts in flight per campaign *)
  inplace_fraction : float;  (** InPlaceTP-compatible share of each host *)
  batch_days : float;  (** admission tick period *)
  preempt : bool;
      (** always preempt busy populations on critical arrivals; when
          false the {!Fault.Campaign_preempt} site still can per-event *)
  seed : int64;
  track_bookings : bool;  (** record campaign intervals in the report *)
}

val default_config : config
(** 36 hosts (20 Xen + 16 KVM) x 4 VMs, 5 years at 14 CVEs/year,
    cost-aware, tempo 40, concurrency 4, 6-hour admission tick. *)

type booking = { b_episode : int; mutable b_start : float; mutable b_end : float }

type report = {
  r_config : config;
  cves_total : int;
  criticals : int;
  mediums : int;
  episodes : int;  (** critical (CVE x affected population) pairs *)
  campaigns : int;  (** committed, including later-preempted ones *)
  preemptions : int;
  released_hosts : int;  (** host slots released by preemptions *)
  exposed_host_hours : float;
      (** cumulative critical exposure: for every episode host, arrival
          until min(coverage, patch, horizon) *)
  medium_exposed_host_hours : float;
      (** mediums never campaign (the advise threshold); their
          arrival-to-patch exposure is tallied on the side *)
  uncovered_critical : int;
      (** episodes deferred despite a safe alternative whose scalar
          campaign estimate undercut waiting — the [serve] exit-2
          signal *)
  virtual_days : float;
  journal_entries : int;
  bookings : (string * (int * float * float) list) list;
      (** per population: (episode, start day, end day), chronological;
          empty unless [track_bookings].  Intervals on one population
          never overlap — preemption truncates before rebooking. *)
}

(** {1 Journal} *)

type journal
(** Config plus every service-level entry (arrival / decision /
    preemption / episode close), each stamped with the fault-plan
    cursor.  Sufficient to resume a crashed run. *)

val journal_config : journal -> config
val journal_length : journal -> int

val journal_to_string : journal -> string
(** Line-oriented text (for [serve --journal] / [--resume-from]). *)

val journal_of_string : string -> (journal, string) result

(** {1 Running} *)

type run_result =
  | Finished of report * journal
  | Crashed of journal  (** {!Fault.Controller_crash} fired mid-stream *)

val run :
  ?fault:Fault.t -> ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> config ->
  run_result
(** Serve the whole stream.  [fault] is consulted at
    {!Fault.Cve_burst} (per generated arrival),
    {!Fault.Campaign_preempt} (per critical arrival finding its
    population busy, unless [preempt] already forces it) and
    {!Fault.Controller_crash} (per journal append).  Backend campaigns
    run fault-free: their determinism comes from seeds derived per
    episode, so the pricing pass and the committed execution agree.
    [metrics] is the live dashboard (CVE counters by severity,
    campaign / preemption counters, exposure and virtual-day gauges);
    [obs] records campaign intervals and preemption instants on
    per-population tracks.  Raises [Hypertp_error.Error] (site
    ["Stream.Service"]) on a malformed config. *)

val resume :
  ?fault:Fault.t -> ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> journal ->
  run_result
(** Re-run from the journal's config, validating every re-emitted
    entry against the journaled prefix ([fault] is restarted first,
    exactly as {!Cluster.Campaign.resume} does); the crash site is
    suppressed inside the prefix, so the service replays {e past} the
    original crash point and continues.  Raises [Hypertp_error.Error]
    (site ["Stream.Service.resume"]) when the journal disagrees with
    the config, seed or plan. *)

val run_to_completion :
  ?fault:Fault.t -> ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> config ->
  report * journal
(** [run], resuming across any number of controller crashes.  The
    final report and journal are byte-identical to an uninterrupted
    run under the same seed. *)

val report_to_string : report -> string
(** Stable multi-line rendering (the determinism tests pin it). *)

val pp_report : Format.formatter -> report -> unit
