(** Structured errors for user-facing failures.

    One exception, [Error], replaces the scattered
    [Invalid_argument]/[Failure] raises across [Api], [Campaign],
    [Fleet] and [Fault.parse].  Each carries the raising {e site} (the
    public entry point), a human-readable {e reason}, and an optional
    {e hint} describing the fix.  The CLI catches [Error] at its
    top level and renders all three uniformly.

    Re-exported as [Hypertp.Error]; the exception constructor is
    shared, so catching [Hypertp.Error.Error] also catches errors
    raised by lower layers such as [Fault]. *)

type t = { site : string; reason : string; hint : string option }

exception Error of t

val make : site:string -> ?hint:string -> string -> t

val raise_error : site:string -> ?hint:string -> string -> 'a
(** [raise_error ~site ?hint reason] raises {!Error}. *)

val raise_errorf :
  site:string -> ?hint:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Like {!raise_error} with a format string for the reason. *)

val to_string : t -> string
(** ["<site>: <reason>"], with [" (hint: ...)"] appended when present. *)

val pp : Format.formatter -> t -> unit
