(** FreeBSD's ULE scheduler run-queues — bhyve's VM Management State.

    ULE keeps two queues per CPU group (current and next); threads are
    enqueued on next and the queues swap when current drains.  Like
    Xen's credit queues and Linux's CFS tree, this is rebuilt from the
    VM set after transplant, never translated. *)

type thread_ref = { vm_name : string; vcpu_index : int }

type t

val create : unit -> t
val enqueue_vm : t -> vm_name:string -> vcpus:int -> unit
val dequeue_vm : t -> vm_name:string -> unit
val runnable : t -> int

val pick_next : t -> thread_ref option
(** Pop from the current queue, swapping queues when it drains; the
    picked thread is re-enqueued on next. *)

val rebuild : t -> (string * int) list -> unit
val consistent : t -> (string * int) list -> bool
val state_bytes : t -> int
val pp : Format.formatter -> t -> unit
