type id = int

type kind = Interval | Instant

type t = {
  id : id;
  parent : id option;
  kind : kind;
  name : string;
  track : string;
  start : Sim.Time.t;
  mutable stop_ : Sim.Time.t option;
  mutable rev_attrs : (string * string) list;
  mutable rev_events : (Sim.Time.t * string) list;
}

let make ~id ?parent ~kind ~track ~attrs ~at name =
  {
    id;
    parent;
    kind;
    name;
    track;
    start = at;
    stop_ = (match kind with Instant -> Some at | Interval -> None);
    rev_attrs = List.rev attrs;
    rev_events = [];
  }

let id t = t.id
let parent t = t.parent
let name t = t.name
let track t = t.track
let kind t = t.kind
let start t = t.start
let stop t = t.stop_

let duration t =
  match t.stop_ with None -> None | Some s -> Some (Sim.Time.sub s t.start)

let attrs t = List.rev t.rev_attrs
let events t = List.rev t.rev_events

let set_attr t k v = t.rev_attrs <- (k, v) :: t.rev_attrs

let add_event t ~at label = t.rev_events <- (at, label) :: t.rev_events

let finish t ~at =
  match t.stop_ with
  | Some _ -> invalid_arg ("Span.finish: span already finished: " ^ t.name)
  | None ->
    if Sim.Time.(at < t.start) then
      invalid_arg ("Span.finish: stop before start: " ^ t.name);
    t.stop_ <- Some at

let pp fmt t =
  Format.fprintf fmt "[%d%s] %s @@ %a" t.id
    (match t.parent with Some p -> Printf.sprintf "<-%d" p | None -> "")
    t.name Sim.Time.pp t.start;
  (match t.stop_ with
  | Some s -> Format.fprintf fmt "..%a" Sim.Time.pp s
  | None -> Format.pp_print_string fmt "..(open)");
  List.iter (fun (k, v) -> Format.fprintf fmt " %s=%s" k v) (attrs t)
