type stats = {
  count : int;
  mean_days : float;
  min_days : int;
  max_days : int;
  over_60_fraction : float;
}

let stats_of windows =
  match windows with
  | [] -> invalid_arg "Window.stats_of: no documented windows"
  | _ ->
    let count = List.length windows in
    let sum = List.fold_left ( + ) 0 windows in
    let over_60 = List.length (List.filter (fun w -> w > 60) windows) in
    {
      count;
      mean_days = float_of_int sum /. float_of_int count;
      min_days = List.fold_left Stdlib.min max_int windows;
      max_days = List.fold_left Stdlib.max 0 windows;
      over_60_fraction = float_of_int over_60 /. float_of_int count;
    }

let documented_windows affected =
  List.filter_map
    (fun r -> if affected r then r.Nvd.window_days else None)
    Nvd.all

let kvm_stats () = stats_of (documented_windows Nvd.affects_kvm)
let xen_stats () = stats_of (documented_windows Nvd.affects_xen)

type advice =
  | No_action
  | Transplant_to of string
  | No_safe_alternative

let affects_name (r : Nvd.record) = function
  | "xen" -> Nvd.affects_xen r
  | "kvm" -> Nvd.affects_kvm r
  | "bhyve" ->
    (* The studied dataset is a Xen/KVM history; bhyve shares neither
       codebase.  Only their common QEMU-derived device emulation could
       overlap, which bhyve does not use. *)
    false
  | other -> invalid_arg ("Window.advise: unknown hypervisor " ^ other)

let advise ~fleet ~current (r : Nvd.record) =
  if Nvd.is_hardware_level r then
    (* Spectre-class flaws live in the CPU: every hypervisor in any
       repertoire runs on the same silicon.  Transplant cannot help. *)
    No_safe_alternative
  else if not (affects_name r current) then No_action
  else if r.severity <> Cvss.Critical then No_action
  else begin
    let safe =
      List.find_opt
        (fun hv -> (not (String.equal hv current)) && not (affects_name r hv))
        fleet
    in
    match safe with
    | Some hv -> Transplant_to hv
    | None -> No_safe_alternative
  end

let transplants_needed_per_year ~fleet ~current =
  let years = List.sort_uniq Int.compare (List.map (fun r -> r.Nvd.year) Nvd.all) in
  List.map
    (fun year ->
      let n =
        List.length
          (List.filter
             (fun r ->
               r.Nvd.year = year
               &&
               match advise ~fleet ~current r with
               | Transplant_to _ -> true
               | No_action | No_safe_alternative -> false)
             Nvd.all)
      in
      (year, n))
    years

let pp_stats fmt s =
  Format.fprintf fmt
    "%d windows: mean %.1f days, min %d, max %d, %.0f%% over 60 days" s.count
    s.mean_days s.min_days s.max_days (100.0 *. s.over_60_fraction)

let pp_advice fmt = function
  | No_action -> Format.pp_print_string fmt "no action needed"
  | Transplant_to hv -> Format.fprintf fmt "transplant to %s" hv
  | No_safe_alternative -> Format.pp_print_string fmt "no safe alternative"
