lib/workload/streaming.ml: Float Profile Sched Sim
