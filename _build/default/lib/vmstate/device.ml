type kind =
  | Net_emulated
  | Net_passthrough
  | Blk_emulated
  | Blk_passthrough
  | Serial_console

type run_state = Dev_running | Dev_paused | Dev_unplugged

type t = {
  id : int;
  kind : kind;
  run_state : run_state;
  emulation_state : int64 array;
  queues : Virtqueue.t array;
  tcp_connections : int;
}

let emulation_words = function
  | Net_emulated -> 64 (* MAC filter, feature bits, interrupt coalescing *)
  | Blk_emulated -> 48 (* geometry, feature bits, request accounting *)
  | Serial_console -> 8
  | Net_passthrough | Blk_passthrough -> 0

let queue_count = function
  | Net_emulated -> 2 (* rx + tx *)
  | Blk_emulated -> 1
  | Serial_console | Net_passthrough | Blk_passthrough -> 0

let fresh_queues rng kind ~guest_frames =
  Array.init (queue_count kind) (fun _ ->
      Virtqueue.create rng ~size:256 ~guest_frames)

let generate rng ~id ~kind ?(guest_frames = 262144) () =
  let words = emulation_words kind in
  {
    id;
    kind;
    run_state = Dev_running;
    emulation_state = Array.init words (fun _ -> Sim.Rng.int64 rng);
    queues = fresh_queues rng kind ~guest_frames;
    tcp_connections =
      (match kind with
      | Net_emulated | Net_passthrough -> 1 + Sim.Rng.int rng 32
      | Blk_emulated | Blk_passthrough | Serial_console -> 0);
  }

let is_passthrough t =
  match t.kind with
  | Net_passthrough | Blk_passthrough -> true
  | Net_emulated | Blk_emulated | Serial_console -> false

let is_network t =
  match t.kind with
  | Net_emulated | Net_passthrough -> true
  | Blk_emulated | Blk_passthrough | Serial_console -> false

let in_flight t =
  Array.fold_left (fun acc q -> acc + Virtqueue.in_flight q) 0 t.queues

let pause t =
  Array.iter Virtqueue.quiesce t.queues;
  { t with run_state = Dev_paused }

let unplug t =
  if is_passthrough t then invalid_arg "Device.unplug: pass-through device";
  { t with run_state = Dev_unplugged; emulation_state = [||]; queues = [||] }

let rescan t rng =
  if t.run_state <> Dev_unplugged then
    invalid_arg "Device.rescan: device was not unplugged";
  {
    t with
    run_state = Dev_running;
    emulation_state =
      Array.init (emulation_words t.kind) (fun _ -> Sim.Rng.int64 rng);
    queues = fresh_queues rng t.kind ~guest_frames:262144;
  }

let resume t = { t with run_state = Dev_running }

let equal a b =
  a.id = b.id && a.kind = b.kind && a.run_state = b.run_state
  && Array.for_all2 Int64.equal a.emulation_state b.emulation_state
  && Array.length a.queues = Array.length b.queues
  && Array.for_all2 Virtqueue.equal a.queues b.queues
  && a.tcp_connections = b.tcp_connections

let equal_guest_visible a b =
  a.id = b.id && a.kind = b.kind && a.tcp_connections = b.tcp_connections

let pp_kind fmt = function
  | Net_emulated -> Format.pp_print_string fmt "net(emulated)"
  | Net_passthrough -> Format.pp_print_string fmt "net(passthrough)"
  | Blk_emulated -> Format.pp_print_string fmt "blk(emulated)"
  | Blk_passthrough -> Format.pp_print_string fmt "blk(passthrough)"
  | Serial_console -> Format.pp_print_string fmt "console"

let pp fmt t =
  let state =
    match t.run_state with
    | Dev_running -> "running"
    | Dev_paused -> "paused"
    | Dev_unplugged -> "unplugged"
  in
  Format.fprintf fmt "dev%d %a [%s, %d conns, %d in flight]" t.id pp_kind
    t.kind state t.tcp_connections (in_flight t)
