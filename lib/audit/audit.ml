(* Differential post-transplant residual-state auditor.

   After a transplant commits, the target-hypervisor world should be
   indistinguishable from a world where the target had been running all
   along: the micro-reboot reclaims the source's HV State wholesale, the
   PRAM metadata is released, staged blobs are dropped, and management
   state is regenerated rather than copied.  This module checks that
   claim differentially — it sweeps the post-transplant world and
   compares what it finds against a fresh-boot reference of the target,
   flagging anything the reference cannot explain. *)

(* --- severity ladder --- *)

type severity = Benign | Fingerprintable | Exploitable

let severity_to_string = function
  | Benign -> "benign"
  | Fingerprintable -> "fingerprintable"
  | Exploitable -> "exploitable"

let severity_of_string = function
  | "benign" -> Some Benign
  | "fingerprintable" -> Some Fingerprintable
  | "exploitable" -> Some Exploitable
  | _ -> None

let severity_rank = function
  | Benign -> 0
  | Fingerprintable -> 1
  | Exploitable -> 2

let pp_severity fmt s = Format.pp_print_string fmt (severity_to_string s)

(* --- findings --- *)

type kind =
  | Orphan_pram_page
  | Unreclaimed_hv_frame
  | Stale_kexec_frame
  | Unattributed_frame
  | Stale_uisr_blob
  | Mgmt_not_regenerated
  | Clock_skew
  | Device_mismatch

let all_kinds =
  [ Orphan_pram_page; Unreclaimed_hv_frame; Stale_kexec_frame;
    Unattributed_frame; Stale_uisr_blob; Mgmt_not_regenerated; Clock_skew;
    Device_mismatch ]

let kind_to_string = function
  | Orphan_pram_page -> "orphan_pram_page"
  | Unreclaimed_hv_frame -> "unreclaimed_hv_frame"
  | Stale_kexec_frame -> "stale_kexec_frame"
  | Unattributed_frame -> "unattributed_frame"
  | Stale_uisr_blob -> "stale_uisr_blob"
  | Mgmt_not_regenerated -> "mgmt_not_regenerated"
  | Clock_skew -> "clock_skew"
  | Device_mismatch -> "device_mismatch"

let kind_of_string s =
  List.find_opt (fun k -> String.equal (kind_to_string k) s) all_kinds

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_subject : string; (* "mfn:N", a VM name, or "host"; never has spaces *)
  f_frame : int option;
  f_tag : int64 option;
  f_reason : string;
}

let pp_finding fmt f =
  Uisr.Diag.pp fmt
    ~label:(severity_to_string f.f_severity)
    ~subject:(kind_to_string f.f_kind ^ " " ^ f.f_subject)
    f.f_reason

type report = {
  r_source : string;
  r_target : string;
  r_frames_swept : int;
  r_guest_frames : int;
  r_findings : finding list;
}

let clean r = r.r_findings = []

let count r sev =
  List.length (List.filter (fun f -> f.f_severity = sev) r.r_findings)

let worst r =
  List.fold_left
    (fun acc f ->
      match acc with
      | Some s when severity_rank s >= severity_rank f.f_severity -> acc
      | _ -> Some f.f_severity)
    None r.r_findings

let pp_report fmt r =
  if clean r then
    Format.fprintf fmt "audit %s->%s: clean (%d frames swept, %d guest)"
      r.r_source r.r_target r.r_frames_swept r.r_guest_frames
  else begin
    Format.fprintf fmt
      "audit %s->%s: %d findings (%d exploitable, %d fingerprintable, %d \
       benign) over %d frames"
      r.r_source r.r_target
      (List.length r.r_findings)
      (count r Exploitable) (count r Fingerprintable) (count r Benign)
      r.r_frames_swept;
    List.iter (fun f -> Format.fprintf fmt "@,  %a" pp_finding f) r.r_findings
  end

(* --- deterministic serialization --- *)

let magic = "hypertp-audit-report v1"

let to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Printf.bprintf b "source=%s target=%s frames_swept=%d guest_frames=%d\n"
    r.r_source r.r_target r.r_frames_swept r.r_guest_frames;
  List.iter
    (fun f ->
      Printf.bprintf b "finding kind=%s severity=%s subject=%s"
        (kind_to_string f.f_kind)
        (severity_to_string f.f_severity)
        f.f_subject;
      (match f.f_frame with
      | Some n -> Printf.bprintf b " frame=%d" n
      | None -> ());
      (match f.f_tag with
      | Some t -> Printf.bprintf b " tag=0x%Lx" t
      | None -> ());
      Printf.bprintf b " reason=%s\n" f.f_reason)
    r.r_findings;
  Printf.bprintf b "end findings=%d\n" (List.length r.r_findings);
  Buffer.contents b

let split_kv tok =
  match String.index_opt tok '=' with
  | None -> (tok, "")
  | Some i ->
    (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))

let of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char '\n' s with
  | m :: header :: rest when String.equal m magic -> (
    let assoc line =
      List.map split_kv (String.split_on_char ' ' line)
    in
    let req kvs key =
      match List.assoc_opt key kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing %s" key)
    in
    let ( let* ) = Result.bind in
    let* src = req (assoc header) "source" in
    let* tgt = req (assoc header) "target" in
    let* swept = req (assoc header) "frames_swept" in
    let* guest = req (assoc header) "guest_frames" in
    let* swept =
      Option.to_result ~none:"bad frames_swept" (int_of_string_opt swept)
    in
    let* guest =
      Option.to_result ~none:"bad guest_frames" (int_of_string_opt guest)
    in
    let parse_finding line =
      (* the reason is free text: split it off before tokenizing *)
      let body, reason =
        match
          (* find " reason=" *)
          let needle = " reason=" in
          let nl = String.length needle in
          let rec search i =
            if i + nl > String.length line then None
            else if String.sub line i nl = needle then Some i
            else search (i + 1)
          in
          search 0
        with
        | Some i ->
          ( String.sub line 0 i,
            String.sub line (i + 8) (String.length line - i - 8) )
        | None -> (line, "")
      in
      let kvs = assoc body in
      let* kind_s = req kvs "kind" in
      let* sev_s = req kvs "severity" in
      let* subject = req kvs "subject" in
      let* f_kind =
        Option.to_result ~none:("bad kind " ^ kind_s) (kind_of_string kind_s)
      in
      let* f_severity =
        Option.to_result
          ~none:("bad severity " ^ sev_s)
          (severity_of_string sev_s)
      in
      let* f_frame =
        match List.assoc_opt "frame" kvs with
        | None -> Ok None
        | Some v -> (
          match int_of_string_opt v with
          | Some n -> Ok (Some n)
          | None -> Error ("bad frame " ^ v))
      in
      let* f_tag =
        match List.assoc_opt "tag" kvs with
        | None -> Ok None
        | Some v -> (
          match Int64.of_string_opt v with
          | Some t -> Ok (Some t)
          | None -> Error ("bad tag " ^ v))
      in
      Ok { f_kind; f_severity; f_subject = subject; f_frame; f_tag;
           f_reason = reason }
    in
    let rec go acc = function
      | [] | [ "" ] -> fail "missing end line"
      | line :: rest when String.length line >= 8
                          && String.sub line 0 8 = "finding " -> (
        match parse_finding (String.sub line 8 (String.length line - 8)) with
        | Ok f -> go (f :: acc) rest
        | Error e -> Error e)
      | line :: _ when String.length line >= 4 && String.sub line 0 4 = "end "
        -> (
        let kvs = assoc line in
        let* n = req kvs "findings" in
        match int_of_string_opt n with
        | Some n when n = List.length acc -> Ok (List.rev acc)
        | Some n ->
          fail "finding count mismatch: end says %d, parsed %d" n
            (List.length acc)
        | None -> fail "bad end line %S" line)
      | line :: _ -> fail "unexpected line %S" line
    in
    let* findings = go [] rest in
    Ok { r_source = src; r_target = tgt; r_frames_swept = swept;
         r_guest_frames = guest; r_findings = findings })
  | _ -> fail "not an audit report (missing %S)" magic

(* --- reference worlds --- *)

type reference = {
  ref_hv : string;
  ref_tags : int64 list; (* sorted distinct non-guest content tags *)
}

let guest_frame_set vms =
  let set = Hashtbl.create 4096 in
  List.iter
    (fun vm ->
      List.iter
        (fun (_gfn, mfn, len) ->
          let base = Hw.Frame.Mfn.to_int mfn in
          for i = 0 to len - 1 do
            Hashtbl.replace set (base + i) ()
          done)
        (Vmstate.Guest_mem.extents vm.Vmstate.Vm.mem))
    vms;
  set

let reference_of_fresh_boot ?(seed = 0xA0D17L) ~machine target =
  let module T = (val target : Hv.Intf.S) in
  let host = Hv.Host.create ~seed ~name:"audit-reference" machine in
  Hv.Host.boot_hypervisor host target;
  ignore
    (Hv.Host.create_vm host
       (Vmstate.Vm.config ~name:"audit-ref-vm" ~ram:(Hw.Units.mib 64) ()));
  let guest = guest_frame_set (Hv.Host.vms host) in
  let tags = Hashtbl.create 16 in
  Hw.Pmem.iter_allocated host.Hv.Host.pmem (fun mfn tag ->
      match tag with
      | Some t when not (Hashtbl.mem guest (Hw.Frame.Mfn.to_int mfn)) ->
        Hashtbl.replace tags t ()
      | Some _ | None -> ());
  { ref_hv = T.name;
    ref_tags =
      List.sort Int64.compare (Hashtbl.fold (fun t () acc -> t :: acc) tags [])
  }

(* --- the audited world --- *)

type world = {
  w_host : Hv.Host.t;
  w_staging : (string * bytes) list;
  w_baseline : (string * Uisr.Vm_state.t) list;
  w_downtime : Sim.Time.t;
  w_salvaged : string list;
}

let world ?(staging = []) ?(baseline = []) ?(downtime = Sim.Time.zero)
    ?(salvaged = []) host =
  { w_host = host; w_staging = staging; w_baseline = baseline;
    w_downtime = downtime; w_salvaged = salvaged }

(* Content-tag conventions of the simulated machine.  The kexec stamp
   is a prefix (low 24 bits carry a kernel-name hash) and a clobbered
   image frame carries the bitwise complement of its stamp. *)
let kexec_tag_prefix = 0x4B45584543000000L
let kexec_prefix_mask = 0xFFFFFFFFFF000000L

let is_kexec_tag tag =
  Int64.equal (Int64.logand tag kexec_prefix_mask) kexec_tag_prefix
  || Int64.equal
       (Int64.logand (Int64.lognot tag) kexec_prefix_mask)
       kexec_tag_prefix

(* --- the sweep --- *)

let run ~reference ?source w =
  let host = w.w_host in
  let pmem = host.Hv.Host.pmem in
  let guest = guest_frame_set (Hv.Host.vms host) in
  let frames_swept = ref 0 and guest_frames = ref 0 in
  let frame_findings = ref [] in
  let legit t = List.exists (Int64.equal t) reference.ref_tags in
  let source_tags =
    match source with Some s -> s.ref_tags | None -> []
  in
  let from_source t = List.exists (Int64.equal t) source_tags in
  let add kind severity frame tag reason =
    frame_findings :=
      { f_kind = kind; f_severity = severity;
        f_subject = Printf.sprintf "mfn:%d" frame; f_frame = Some frame;
        f_tag = Some tag; f_reason = reason }
      :: !frame_findings
  in
  Hw.Pmem.iter_allocated pmem (fun mfn tag ->
      incr frames_swept;
      let frame = Hw.Frame.Mfn.to_int mfn in
      if Hashtbl.mem guest frame then incr guest_frames
      else
        match tag with
        | None -> () (* untagged: carries no recoverable content *)
        | Some t when Int64.equal t Pram.Build.sentinel ->
          add Orphan_pram_page Exploitable frame t
            "PRAM metadata page still allocated after release"
        | Some t when is_kexec_tag t ->
          add Stale_kexec_frame Fingerprintable frame t
            "kexec image frame survived the transplant"
        | Some t when legit t -> ()
        | Some t when from_source t ->
          add Unreclaimed_hv_frame Exploitable frame t
            (Printf.sprintf
               "frame still tagged by the source hypervisor%s"
               (match source with
               | Some s -> " " ^ s.ref_hv
               | None -> ""))
        | Some t ->
          add Unattributed_frame Fingerprintable frame t
            (Printf.sprintf
               "allocated frame tagged by neither %s nor any guest"
               reference.ref_hv));
  let staging_findings =
    List.map
      (fun (name, blob) ->
        let severity, reason =
          match Uisr.Codec.decode blob with
          | Ok st
            when not
                   (String.equal st.Uisr.Vm_state.source_hypervisor
                      reference.ref_hv) ->
            ( Exploitable,
              Printf.sprintf
                "staged UISR blob still stamped by source hypervisor %s"
                st.Uisr.Vm_state.source_hypervisor )
          | Ok _ -> (Fingerprintable, "staged UISR blob retained after commit")
          | Error _ ->
            (Fingerprintable, "undecodable staged UISR blob retained")
        in
        { f_kind = Stale_uisr_blob; f_severity = severity; f_subject = name;
          f_frame = None; f_tag = None; f_reason = reason })
      w.w_staging
  in
  let vm_findings =
    List.concat_map
      (fun (name, (base : Uisr.Vm_state.t)) ->
        match Hv.Host.find_vm host name with
        | None -> []
        | Some vm ->
          let salvaged = List.mem name w.w_salvaged in
          let pit_ok =
            Vmstate.Pit.equal vm.Vmstate.Vm.pit base.Uisr.Vm_state.pit
            (* a salvaged VM's PIT was replaced with power-on defaults —
               regenerated state, not residue *)
            || (salvaged
               && Vmstate.Pit.equal vm.Vmstate.Vm.pit
                    Uisr.Integrity.default_pit)
          in
          let clock =
            if pit_ok then []
            else
              [ { f_kind = Clock_skew; f_severity = Fingerprintable;
                  f_subject = name; f_frame = None; f_tag = None;
                  f_reason =
                    Printf.sprintf
                      "PIT state diverged from the pre-transplant capture \
                       (guest timers are frozen across the modeled %.6fs \
                       downtime)"
                      (Sim.Time.to_sec_f w.w_downtime) } ]
          in
          let devices =
            let current = Array.to_list vm.Vmstate.Vm.devices in
            let missing_or_changed =
              List.filter_map
                (fun (s : Uisr.Vm_state.device_snapshot) ->
                  match
                    List.find_opt
                      (fun (d : Vmstate.Device.t) -> d.id = s.dev_id)
                      current
                  with
                  | None ->
                    Some
                      (Printf.sprintf "device %d vanished during re-enumeration"
                         s.dev_id)
                  | Some d when d.kind <> s.dev_kind ->
                    Some
                      (Printf.sprintf "device %d changed kind on re-enumeration"
                         s.dev_id)
                  | Some d when d.tcp_connections <> s.dev_tcp_connections ->
                    Some
                      (Printf.sprintf
                         "device %d TCP connections changed (%d -> %d)"
                         s.dev_id s.dev_tcp_connections d.tcp_connections)
                  | Some _ -> None)
                base.Uisr.Vm_state.devices
            in
            let extra =
              List.filter_map
                (fun (d : Vmstate.Device.t) ->
                  if
                    List.exists
                      (fun (s : Uisr.Vm_state.device_snapshot) ->
                        s.dev_id = d.id)
                      base.Uisr.Vm_state.devices
                  then None
                  else
                    Some
                      (Printf.sprintf
                         "device %d appeared out of nowhere on re-enumeration"
                         d.id))
                current
            in
            List.map
              (fun reason ->
                { f_kind = Device_mismatch; f_severity = Fingerprintable;
                  f_subject = name; f_frame = None; f_tag = None;
                  f_reason = reason })
              (missing_or_changed @ extra)
          in
          clock @ devices)
      w.w_baseline
  in
  let mgmt_findings =
    if Hv.Host.management_consistent host then []
    else
      [ { f_kind = Mgmt_not_regenerated; f_severity = Exploitable;
          f_subject = "host"; f_frame = None; f_tag = None;
          f_reason =
            "management state inconsistent with the running domains — copied \
             verbatim instead of regenerated" } ]
  in
  { r_source = (match source with Some s -> s.ref_hv | None -> "-");
    r_target = reference.ref_hv;
    r_frames_swept = !frames_swept;
    r_guest_frames = !guest_frames;
    r_findings =
      List.rev !frame_findings @ staging_findings @ vm_findings
      @ mgmt_findings }

(* --- the scrub pass --- *)

type scrub = {
  sc_world : world;
  sc_scrubbed : finding list;
  sc_unscrubbed : finding list;
  sc_frames_freed : int;
  sc_mgmt_rebuilds : int;
}

let scrub w report =
  let pmem = w.w_host.Hv.Host.pmem in
  let frames_freed = ref 0 and mgmt = ref 0 in
  let staging = ref w.w_staging in
  let scrubbed = ref [] and unscrubbed = ref [] in
  let ok f = scrubbed := f :: !scrubbed in
  let failed f = unscrubbed := f :: !unscrubbed in
  List.iter
    (fun f ->
      match (f.f_kind, f.f_frame) with
      | ( ( Orphan_pram_page | Unreclaimed_hv_frame | Stale_kexec_frame
          | Unattributed_frame ),
          Some frame ) ->
        let mfn = Hw.Frame.Mfn.of_int frame in
        if Hw.Pmem.is_allocated pmem mfn then begin
          if Hw.Pmem.is_reserved pmem mfn then
            Hw.Pmem.unreserve_extent pmem mfn 1;
          Hw.Pmem.free_extent pmem mfn 1;
          incr frames_freed
        end;
        ok f
      | Stale_uisr_blob, _ ->
        staging := List.filter (fun (n, _) -> n <> f.f_subject) !staging;
        ok f
      | Clock_skew, _ -> (
        match
          (Hv.Host.find_vm w.w_host f.f_subject,
           List.assoc_opt f.f_subject w.w_baseline)
        with
        | Some vm, Some base ->
          let dst = vm.Vmstate.Vm.pit.Vmstate.Pit.channels in
          let src = base.Uisr.Vm_state.pit.Vmstate.Pit.channels in
          for i = 0 to Stdlib.min (Array.length dst) (Array.length src) - 1 do
            dst.(i) <- src.(i)
          done;
          ok f
        | _ -> failed f)
      | Mgmt_not_regenerated, _ ->
        ignore (Hv.Host.rebuild_management_state w.w_host);
        incr mgmt;
        ok f
      | (Device_mismatch | Orphan_pram_page | Unreclaimed_hv_frame
        | Stale_kexec_frame | Unattributed_frame), _ ->
        (* guest-visible device topology cannot be un-observed, and a
           frame finding without a frame cannot be located *)
        failed f)
    report.r_findings;
  { sc_world = { w with w_staging = !staging };
    sc_scrubbed = List.rev !scrubbed;
    sc_unscrubbed = List.rev !unscrubbed;
    sc_frames_freed = !frames_freed;
    sc_mgmt_rebuilds = !mgmt }

(* --- seeded residual planting (ground truth for the auditor) --- *)

module Plant = struct
  type t =
    | Pram_page
    | Hv_frames of int
    | Kexec_frame
    | Stale_blob of string
    | Clock_skew_plant of string

  let to_string = function
    | Pram_page -> "pram_page"
    | Hv_frames n -> Printf.sprintf "hv_frames:%d" n
    | Kexec_frame -> "kexec_frame"
    | Stale_blob vm -> "stale_blob:" ^ vm
    | Clock_skew_plant vm -> "clock_skew:" ^ vm

  let expected_finding = function
    | Pram_page -> Orphan_pram_page
    | Hv_frames _ -> Unreclaimed_hv_frame
    | Kexec_frame -> Stale_kexec_frame
    | Stale_blob _ -> Stale_uisr_blob
    | Clock_skew_plant _ -> Clock_skew

  (* A stale staged kernel that was never unloaded. *)
  let stale_kexec_stamp = Int64.logor kexec_tag_prefix 0x57A1EL

  let source_plant_tag ~reference ~source =
    (* a tag the source world owns but the target reference does not —
       the signature of an unreclaimed source-HV frame *)
    match
      List.find_opt
        (fun t -> not (List.exists (Int64.equal t) reference.ref_tags))
        source.ref_tags
    with
    | Some t -> t
    | None -> 0x5245534944554553L (* "RESIDUES": still not in the reference *)

  let apply ~reference ~source w kinds =
    let pmem = w.w_host.Hv.Host.pmem in
    let staging = ref w.w_staging in
    let plant_frames n tag =
      List.iter
        (fun mfn -> Hw.Pmem.write pmem mfn tag)
        (Hw.Pmem.alloc_frames pmem n)
    in
    List.iter
      (fun k ->
        match k with
        | Pram_page -> plant_frames 1 Pram.Build.sentinel
        | Hv_frames n ->
          plant_frames (Stdlib.max 1 n) (source_plant_tag ~reference ~source)
        | Kexec_frame -> plant_frames 1 stale_kexec_stamp
        | Stale_blob vm ->
          let blob =
            match List.assoc_opt vm w.w_baseline with
            | Some st -> Uisr.Codec.encode st
            | None -> Bytes.of_string "not even a UISR blob"
          in
          staging := !staging @ [ (vm, blob) ]
        | Clock_skew_plant vm -> (
          match Hv.Host.find_vm w.w_host vm with
          | Some v ->
            let ch = v.Vmstate.Vm.pit.Vmstate.Pit.channels in
            if Array.length ch > 0 then
              ch.(0) <-
                { (ch.(0)) with
                  Vmstate.Pit.count = (ch.(0).Vmstate.Pit.count + 0x1234) land 0xFFFF }
          | None -> ()))
      kinds;
    { w with w_staging = !staging }

  let random_plan ~rng ~vms n =
    let pick_vm () =
      match vms with
      | [] -> None
      | _ -> Some (List.nth vms (Sim.Rng.int rng (List.length vms)))
    in
    List.init n (fun _ ->
        match Sim.Rng.int rng 5 with
        | 0 -> Pram_page
        | 1 -> Hv_frames (1 + Sim.Rng.int rng 4)
        | 2 -> Kexec_frame
        | 3 -> (
          match pick_vm () with Some vm -> Stale_blob vm | None -> Pram_page)
        | _ -> (
          match pick_vm () with
          | Some vm -> Clock_skew_plant vm
          | None -> Kexec_frame))
end
