lib/workload/redis.mli: Sched Sim
