type t = int

let zero = 0

let ns n =
  if n < 0 then invalid_arg "Time.ns: negative";
  n

let us n = ns (n * 1_000)
let ms n = ns (n * 1_000_000)
let sec n = ns (n * 1_000_000_000)

let of_sec_f s =
  if not (Float.is_finite s) || s < 0.0 then
    invalid_arg "Time.of_sec_f: negative or non-finite";
  int_of_float (Float.round (s *. 1e9))

let to_sec_f t = float_of_int t /. 1e9
let to_ms_f t = float_of_int t /. 1e6
let to_ns t = t

let add a b = a + b

let sub a b =
  if b > a then invalid_arg "Time.sub: negative result";
  a - b

let diff a b = abs (a - b)

let scale k t =
  if not (Float.is_finite k) || k < 0.0 then
    invalid_arg "Time.scale: negative or non-finite factor";
  int_of_float (Float.round (k *. float_of_int t))

let max = Stdlib.max
let min = Stdlib.min
let sum = List.fold_left add zero
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b

let pp fmt t =
  if t >= 1_000_000_000 then Format.fprintf fmt "%.3fs" (to_sec_f t)
  else if t >= 1_000_000 then Format.fprintf fmt "%.2fms" (to_ms_f t)
  else if t >= 1_000 then Format.fprintf fmt "%dus" (t / 1_000)
  else Format.fprintf fmt "%dns" t

let to_string t = Format.asprintf "%a" pp t
