type params = {
  nic : Hw.Nic.t;
  streams : int;
  max_rounds : int;
  stop_threshold_pages : int;
  page_overhead_bytes : int;
}

let default_params ~nic ?(streams = 1) () =
  { nic; streams; max_rounds = 5; stop_threshold_pages = 50;
    page_overhead_bytes = 16 }

type round = { index : int; pages_sent : int; duration : Sim.Time.t }

type plan = {
  rounds : round list;
  precopy_time : Sim.Time.t;
  final_pages : int;
  stop_copy_time : Sim.Time.t;
  total_bytes : Hw.Units.bytes_;
}

let page_time params ~page_bytes =
  let wire = page_bytes + params.page_overhead_bytes in
  float_of_int wire
  /. Hw.Nic.throughput_bytes_per_sec params.nic ~streams:params.streams

let plan params ~page_bytes ~total_pages ~dirty_pages_per_sec =
  if total_pages <= 0 then invalid_arg "Precopy.plan: non-positive pages";
  if page_bytes <= 0 then invalid_arg "Precopy.plan: non-positive page size";
  if not (Float.is_finite dirty_pages_per_sec) || dirty_pages_per_sec < 0.0
  then invalid_arg "Precopy.plan: dirty rate must be finite and >= 0";
  let per_page = page_time params ~page_bytes in
  (* A dirty rate at or above the link rate never shrinks the rounds:
     iterating to the cap would silently plan a stop-and-copy of the
     whole working set.  Refuse structurally — the shadow engine's
     convergence watchdog is the layer that handles divergence (it
     degrades to classic MigrationTP, then to defer). *)
  if dirty_pages_per_sec *. per_page >= 1.0 then
    Hypertp_error.raise_errorf ~site:"Precopy.plan"
      ~hint:
        "non-convergent workload: run it under the Migration.Shadow \
         convergence watchdog (shadow_diverge degrades shadow -> classic \
         -> defer)"
      "dirty rate %.0f pages/s >= link rate %.0f pages/s: pre-copy cannot \
       converge"
      dirty_pages_per_sec (1.0 /. per_page);
  let rec iterate index to_send acc_rounds acc_time acc_pages =
    let duration_s = float_of_int to_send *. per_page in
    let round =
      { index; pages_sent = to_send; duration = Sim.Time.of_sec_f duration_s }
    in
    let acc_rounds = round :: acc_rounds in
    let acc_time = acc_time +. duration_s in
    let acc_pages = acc_pages + to_send in
    (* Pages dirtied while this round was on the wire (cannot exceed the
       guest's page count). *)
    let dirtied =
      Stdlib.min total_pages
        (int_of_float (Float.round (dirty_pages_per_sec *. duration_s)))
    in
    if dirtied <= params.stop_threshold_pages || index + 1 >= params.max_rounds
    then (List.rev acc_rounds, acc_time, acc_pages, dirtied)
    else iterate (index + 1) dirtied acc_rounds acc_time acc_pages
  in
  let rounds, precopy_s, pages_sent, final_pages =
    iterate 0 total_pages [] 0.0 0
  in
  let stop_copy_s = float_of_int final_pages *. per_page in
  {
    rounds;
    precopy_time = Sim.Time.of_sec_f precopy_s;
    final_pages;
    stop_copy_time =
      Sim.Time.add (Hw.Nic.latency params.nic) (Sim.Time.of_sec_f stop_copy_s);
    total_bytes =
      (pages_sent + final_pages) * (page_bytes + params.page_overhead_bytes);
  }

let converges params ~page_bytes ~dirty_pages_per_sec =
  let per_page = page_time params ~page_bytes in
  dirty_pages_per_sec *. per_page < 1.0

let copy_memory ~src ~dst =
  if Vmstate.Guest_mem.page_count src <> Vmstate.Guest_mem.page_count dst then
    invalid_arg "Precopy.copy_memory: page count mismatch";
  if Vmstate.Guest_mem.page_kind src <> Vmstate.Guest_mem.page_kind dst then
    invalid_arg "Precopy.copy_memory: page kind mismatch";
  let n = Vmstate.Guest_mem.page_count src in
  for i = 0 to n - 1 do
    Vmstate.Guest_mem.write_page dst i (Vmstate.Guest_mem.read_page src i)
  done;
  Vmstate.Guest_mem.clear_dirty dst;
  n

type live_round = {
  live_index : int;
  guest_pages_sent : int;
  wall : Sim.Time.t;
}

type live_result = {
  live_rounds : live_round list;
  final_guest_pages : int;
  pages_copied_total : int;
  live_precopy_time : Sim.Time.t;
  live_stop_time : Sim.Time.t;
  memory_equal : bool;
}

let run_live params ~src ~dst ~dirty_pages_per_sec ~rng =
  if Vmstate.Guest_mem.page_count src <> Vmstate.Guest_mem.page_count dst then
    invalid_arg "Precopy.run_live: page count mismatch";
  if Vmstate.Guest_mem.page_kind src <> Vmstate.Guest_mem.page_kind dst then
    invalid_arg "Precopy.run_live: page kind mismatch";
  let fpp = Hw.Units.frames_per_page (Vmstate.Guest_mem.page_kind src) in
  let guest_page_bytes = Hw.Units.page_size (Vmstate.Guest_mem.page_kind src) in
  let per_guest_page = page_time params ~page_bytes:guest_page_bytes in
  (* Dirty logging is 4 KiB-granular; over huge-page backing, scattered
     stores concentrate on working-set pages, so we conservatively map
     the rate onto guest pages. *)
  let guest_dirty_rate =
    Float.max 0.05 (dirty_pages_per_sec /. float_of_int fpp)
  in
  let threshold_guest =
    Stdlib.max 1 (params.stop_threshold_pages / fpp)
  in
  let copy_pages pages =
    List.iter
      (fun i -> Vmstate.Guest_mem.write_page dst i (Vmstate.Guest_mem.read_page src i))
      pages
  in
  let touch duration_s =
    let n = int_of_float (Float.round (guest_dirty_rate *. duration_s)) in
    if n > 0 then Vmstate.Guest_mem.touch_random src rng n
  in
  Vmstate.Guest_mem.clear_dirty src;
  (* Round 0: everything. *)
  let npages = Vmstate.Guest_mem.page_count src in
  let all = List.init npages (fun i -> i) in
  copy_pages all;
  let d0 = float_of_int npages *. per_guest_page in
  touch d0;
  let rounds =
    ref [ { live_index = 0; guest_pages_sent = npages; wall = Sim.Time.of_sec_f d0 } ]
  in
  let total = ref npages in
  let precopy = ref d0 in
  let continue = ref true in
  while !continue do
    let dirty = Vmstate.Guest_mem.dirty_pages src in
    let n = List.length dirty in
    let index = List.length !rounds in
    if n <= threshold_guest || index >= params.max_rounds then continue := false
    else begin
      (* Snapshot this round's dirty set, clear the log, send, and let
         the guest dirty more while the data is on the wire. *)
      List.iter (Vmstate.Guest_mem.clear_dirty_page src) dirty;
      copy_pages dirty;
      let d = float_of_int n *. per_guest_page in
      touch d;
      rounds :=
        { live_index = index; guest_pages_sent = n; wall = Sim.Time.of_sec_f d }
        :: !rounds;
      total := !total + n;
      precopy := !precopy +. d
    end
  done;
  (* Stop-and-copy: the guest is paused, nothing dirties anymore. *)
  let final = Vmstate.Guest_mem.dirty_pages src in
  List.iter (Vmstate.Guest_mem.clear_dirty_page src) final;
  copy_pages final;
  Vmstate.Guest_mem.clear_dirty dst;
  let stop = float_of_int (List.length final) *. per_guest_page in
  {
    live_rounds = List.rev !rounds;
    final_guest_pages = List.length final;
    pages_copied_total = !total + List.length final;
    live_precopy_time = Sim.Time.of_sec_f !precopy;
    live_stop_time =
      Sim.Time.add (Hw.Nic.latency params.nic) (Sim.Time.of_sec_f stop);
    memory_equal =
      Int64.equal (Vmstate.Guest_mem.checksum src) (Vmstate.Guest_mem.checksum dst);
  }

let pp_plan fmt p =
  Format.fprintf fmt
    "precopy: %d rounds, %a running + %a stopped (%d final pages, %a on wire)"
    (List.length p.rounds) Sim.Time.pp p.precopy_time Sim.Time.pp
    p.stop_copy_time p.final_pages Hw.Units.pp_bytes p.total_bytes
