(* Quickstart: boot a Xen host with one VM, inspect the memory
   separation, transplant it in place onto KVM and show what happened.

   Run with: dune exec examples/quickstart.exe *)

let () =
  Format.printf "=== HyperTP quickstart ===@.@.";
  (* An M1-class machine (paper Table 3) running Xen with one VM:
     1 vCPU, 1 GiB, 2 MiB guest pages — the paper's basic scenario. *)
  let host =
    Hypertp.Api.provision ~name:"host0" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"vm0" ~workload:Vmstate.Vm.Wl_redis () ]
  in
  Format.printf "Provisioned: %a@.@." Hv.Host.pp host;

  Format.printf "--- memory separation (Fig. 2) ---@.%a@.@."
    Hypertp.Memsep.pp
    (Hypertp.Memsep.of_host host);

  (* A critical Xen CVE lands.  Ask HyperTP what to do and do it. *)
  let cve_id = "CVE-2016-6258" in
  Format.printf "--- responding to %s ---@." cve_id;
  (match Cve.Nvd.find cve_id with
  | Some r -> Format.printf "record: %a@." Cve.Nvd.pp_record r
  | None -> assert false);
  let response = Hypertp.Api.respond_to_cve ~host ~cve_id ~mode:`Apply () in
  Format.printf "advice: %a@.@." Cve.Window.pp_advice response.advice;

  (match response.outcome with
  | `Advised _ | `No_action | `No_safe_alternative ->
    Format.printf "no transplant performed@."
  | `Applied report ->
    Format.printf "%a@.@." Hypertp.Inplace.pp_report report;
    Format.printf "fixups:@.";
    List.iter
      (fun (vm, fixes) ->
        Format.printf "  %s: %a@." vm Uisr.Fixup.pp_list fixes)
      report.fixups;
    Format.printf "@.downtime: %a (paper: ~1.7 s on M1)@."
      Sim.Time.pp
      (Hypertp.Phases.downtime report.phases));

  Format.printf "@.host now: %a@." Hv.Host.pp host;
  Format.printf "VM still has its memory, on a different hypervisor.@."
