(* Tests for PRAM: entry packing, layout accounting, build/parse
   inverse, clobber detection, huge-page vs 4K granularity. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest
let rng () = Sim.Rng.create 0x9A4DL

(* --- Entry --- *)

let test_entry_pack_unpack () =
  let e =
    Pram.Entry.create ~gfn:(Hw.Frame.Gfn.of_int 12345)
      ~mfn:(Hw.Frame.Mfn.of_int 67890) ~order:9
  in
  let e' = Pram.Entry.unpack (Pram.Entry.pack e) in
  checkb "roundtrip" true (Pram.Entry.equal e e');
  checki "frames" 512 (Pram.Entry.frames e)

let prop_entry_pack_roundtrip =
  QCheck.Test.make ~name:"entry pack/unpack roundtrip"
    QCheck.(triple (int_range 0 0x3FFFFFF) (int_range 0 0xFFFFFF) (int_range 0 9))
    (fun (g, m, order) ->
      let e =
        Pram.Entry.create ~gfn:(Hw.Frame.Gfn.of_int g)
          ~mfn:(Hw.Frame.Mfn.of_int m) ~order
      in
      Pram.Entry.equal e (Pram.Entry.unpack (Pram.Entry.pack e)))

let test_entry_bounds () =
  Alcotest.check_raises "order too big"
    (Invalid_argument "Pram.Entry: bad order") (fun () ->
      ignore
        (Pram.Entry.create ~gfn:(Hw.Frame.Gfn.of_int 0)
           ~mfn:(Hw.Frame.Mfn.of_int 0) ~order:10))

let test_entry_granularity () =
  let mm : Uisr.Vm_state.memmap_entry =
    { gfn = Hw.Frame.Gfn.of_int 0; mfn = Hw.Frame.Mfn.of_int 1024; frames = 512 }
  in
  let huge = Pram.Entry.of_memmap_entry ~granularity:Hw.Units.Page_2m mm in
  let small = Pram.Entry.of_memmap_entry ~granularity:Hw.Units.Page_4k mm in
  checki "one 2MiB entry" 1 (List.length huge);
  checki "512 4KiB entries" 512 (List.length small);
  let frames entries =
    List.fold_left (fun acc e -> acc + Pram.Entry.frames e) 0 entries
  in
  checki "same coverage" (frames huge) (frames small)

let test_entry_alignment_split () =
  (* An unaligned host run cannot use a 2 MiB entry. *)
  let mm : Uisr.Vm_state.memmap_entry =
    { gfn = Hw.Frame.Gfn.of_int 0; mfn = Hw.Frame.Mfn.of_int 7; frames = 512 }
  in
  let entries = Pram.Entry.of_memmap_entry ~granularity:Hw.Units.Page_2m mm in
  checkb "split into naturally aligned runs" true (List.length entries > 1);
  List.iter
    (fun (e : Pram.Entry.t) ->
      checki "aligned" 0
        (Hw.Frame.Mfn.to_int e.mfn mod Pram.Entry.frames e))
    entries

(* --- Layout --- *)

let test_layout_paper_sizes () =
  (* Fig 14 ballpark: one 1 GiB VM with 2 MiB pages -> ~16-20 KiB;
     12 VMs -> ~150 KiB. *)
  let one = Pram.Layout.account ~entries_per_file:[ 512 ] in
  checkb "one VM around 16-20 KiB" true
    (one.Pram.Layout.total_bytes >= 16_384 && one.Pram.Layout.total_bytes <= 20_480);
  let twelve = Pram.Layout.account ~entries_per_file:(List.init 12 (fun _ -> 512)) in
  checkb "12 VMs around 150 KiB" true
    (twelve.Pram.Layout.total_bytes >= 140_000
    && twelve.Pram.Layout.total_bytes <= 160_000)

let test_layout_worst_case_rule () =
  (* 8 bytes per 4 KiB page: 1 GiB all-4K -> ~2 MiB of records. *)
  let a = Pram.Layout.account ~entries_per_file:[ 262144 ] in
  let record_bytes = a.Pram.Layout.node_pages * Pram.Layout.page_bytes in
  checkb "~2 MiB of node pages per GiB at 4K" true
    (record_bytes > 2_000_000 && record_bytes < 2_200_000)

let test_layout_node_math () =
  checki "empty file still needs a node page" 1
    (Pram.Layout.node_pages_for ~entries:0);
  checki "exact fill" 1 (Pram.Layout.node_pages_for ~entries:Pram.Layout.entries_per_node);
  checki "spill" 2
    (Pram.Layout.node_pages_for ~entries:(Pram.Layout.entries_per_node + 1))

(* --- Build / Parse --- *)

let build_setup ?(vms = 2) ?(mib = 32) ?(granularity = Hw.Units.Page_2m) () =
  let pmem = Hw.Pmem.create ~frames:(512 * 256) () in
  let mems =
    List.init vms (fun i ->
        ( Printf.sprintf "vm%d" i,
          Vmstate.Guest_mem.create ~pmem ~rng:(rng ()) ~bytes:(Hw.Units.mib mib)
            ~page_kind:Hw.Units.Page_2m () ))
  in
  let inputs =
    List.map
      (fun (n, mem) ->
        (n, Hw.Units.mib mib, Uisr.Vm_state.memmap_of_guest_mem mem))
      mems
  in
  let image = Pram.Build.build ~pmem ~granularity inputs in
  (pmem, mems, image)

let test_build_parse_inverse () =
  let pmem, mems, image = build_setup () in
  match Pram.Parse.parse ~pmem ~image (Pram.Build.pointer_mfn image) with
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pram.Parse.pp_error e)
  | Ok files ->
    checki "file per VM" 2 (List.length files);
    List.iter2
      (fun (n, mem) (f : Pram.Parse.parsed_file) ->
        Alcotest.check Alcotest.string "name" n f.name;
        checki "size" (Hw.Units.mib 32) f.size;
        let covered =
          List.fold_left (fun acc e -> acc + Pram.Entry.frames e) 0 f.entries
        in
        checki "covers guest memory" (Hw.Units.frames_of_bytes (Hw.Units.mib 32)) covered;
        (* Every entry points at real backing of this VM. *)
        let backing = Hashtbl.create 64 in
        List.iteri
          (fun i _ ->
            Hashtbl.replace backing
              (Hw.Frame.Mfn.to_int (Vmstate.Guest_mem.mfn_of_page mem i))
              ())
          (List.init (Vmstate.Guest_mem.page_count mem) (fun i -> i));
        List.iter
          (fun (e : Pram.Entry.t) ->
            checkb "entry points into backing" true
              (Hashtbl.mem backing (Hw.Frame.Mfn.to_int e.mfn)))
          f.entries)
      mems files

let test_build_metadata_reserved () =
  let pmem, _, image = build_setup () in
  List.iter
    (fun (mfn, len) ->
      checkb "metadata reserved" true (Hw.Pmem.is_reserved pmem mfn);
      checki "single frames" 1 len)
    (Pram.Build.metadata_extents image)

let test_build_metadata_never_aliases_guest () =
  let _, mems, image = build_setup () in
  let meta = Pram.Build.metadata_extents image in
  List.iter
    (fun (_, mem) ->
      for i = 0 to Vmstate.Guest_mem.page_count mem - 1 do
        let base = Hw.Frame.Mfn.to_int (Vmstate.Guest_mem.mfn_of_page mem i) in
        List.iter
          (fun (m, _) ->
            let f = Hw.Frame.Mfn.to_int m in
            checkb "no alias" false (f >= base && f < base + 512))
          meta
      done)
    mems

let test_parse_detects_clobber () =
  let pmem, _, image = build_setup () in
  (* Scrub one metadata page behind PRAM's back. *)
  let mfn, _ = List.hd (Pram.Build.metadata_extents image) in
  Hw.Pmem.write pmem mfn 0L;
  match Pram.Parse.parse ~pmem ~image (Pram.Build.pointer_mfn image) with
  | Error (Pram.Parse.Clobbered_page m) ->
    checki "right page" (Hw.Frame.Mfn.to_int mfn) (Hw.Frame.Mfn.to_int m)
  | Ok _ -> Alcotest.fail "clobber not detected"
  | Error e -> Alcotest.fail (Format.asprintf "wrong error %a" Pram.Parse.pp_error e)

let test_parse_wrong_pointer () =
  let pmem, _, image = build_setup () in
  let bogus = Hw.Frame.Mfn.of_int 3 in
  checkb "bogus pointer rejected" true
    (Result.is_error (Pram.Parse.parse ~pmem ~image bogus))

let test_preserve_predicate_covers () =
  let _, mems, image = build_setup () in
  let preserve = Pram.Build.preserve_predicate image in
  List.iter
    (fun (_, mem) ->
      for i = 0 to Vmstate.Guest_mem.page_count mem - 1 do
        checkb "guest page preserved" true
          (preserve (Vmstate.Guest_mem.mfn_of_page mem i))
      done)
    mems;
  List.iter
    (fun (mfn, _) -> checkb "metadata preserved" true (preserve mfn))
    (Pram.Build.metadata_extents image);
  checkb "unrelated frame not preserved" false
    (preserve (Hw.Frame.Mfn.of_int (512 * 255)))

let test_release_returns_frames () =
  let pmem, _, image = build_setup () in
  let used_before = Hw.Pmem.used_frames pmem in
  Pram.Build.release image ~pmem;
  checki "metadata freed"
    (used_before - (Pram.Build.accounting image).Pram.Layout.total_pages)
    (Hw.Pmem.used_frames pmem)

let test_granularity_size_difference () =
  let _, _, huge = build_setup ~granularity:Hw.Units.Page_2m () in
  let _, _, small = build_setup ~granularity:Hw.Units.Page_4k () in
  let hb = (Pram.Build.accounting huge).Pram.Layout.total_bytes in
  let sb = (Pram.Build.accounting small).Pram.Layout.total_bytes in
  (* 32 MiB VMs: the gap is bounded by the fixed pointer/root/file pages;
     for 1 GiB VMs it approaches the 512x record-count ratio. *)
  checkb "4K granularity is much bigger" true (sb > 5 * hb)

let test_survives_reboot_reset () =
  let pmem, mems, image = build_setup () in
  let preserve = Pram.Build.preserve_predicate image in
  ignore (Hw.Pmem.reboot_reset pmem ~preserve);
  (match Pram.Parse.parse ~pmem ~image (Pram.Build.pointer_mfn image) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pram.Parse.pp_error e));
  List.iter
    (fun (_, mem) ->
      checkb "guest contents survive" true
        (Vmstate.Guest_mem.verify_backing mem = []))
    mems

let prop_build_accounting_consistent =
  QCheck.Test.make ~name:"accounting matches layout for any VM mix" ~count:20
    QCheck.(list_of_size (Gen.int_range 1 5) (int_range 1 16))
    (fun sizes_mib ->
      let pmem = Hw.Pmem.create ~frames:(512 * 512) () in
      let inputs =
        List.mapi
          (fun i mib ->
            let mem =
              Vmstate.Guest_mem.create ~pmem ~rng:(Sim.Rng.create 3L)
                ~bytes:(Hw.Units.mib (mib * 2)) ~page_kind:Hw.Units.Page_2m ()
            in
            ( Printf.sprintf "v%d" i,
              Hw.Units.mib (mib * 2),
              Uisr.Vm_state.memmap_of_guest_mem mem ))
          sizes_mib
      in
      let image = Pram.Build.build ~pmem ~granularity:Hw.Units.Page_2m inputs in
      let acct = Pram.Build.accounting image in
      acct.Pram.Layout.total_pages
      = List.length (Pram.Build.metadata_extents image))

let suites =
  [
    ( "pram.entry",
      [
        Alcotest.test_case "pack/unpack" `Quick test_entry_pack_unpack;
        Alcotest.test_case "bounds" `Quick test_entry_bounds;
        Alcotest.test_case "granularity" `Quick test_entry_granularity;
        Alcotest.test_case "alignment splitting" `Quick test_entry_alignment_split;
        qtest prop_entry_pack_roundtrip;
      ] );
    ( "pram.layout",
      [
        Alcotest.test_case "paper sizes (Fig 14)" `Quick test_layout_paper_sizes;
        Alcotest.test_case "8B/page worst case" `Quick test_layout_worst_case_rule;
        Alcotest.test_case "node page math" `Quick test_layout_node_math;
      ] );
    ( "pram.build_parse",
      [
        Alcotest.test_case "build/parse inverse" `Quick test_build_parse_inverse;
        Alcotest.test_case "metadata reserved" `Quick test_build_metadata_reserved;
        Alcotest.test_case "metadata never aliases guest" `Quick
          test_build_metadata_never_aliases_guest;
        Alcotest.test_case "clobber detection" `Quick test_parse_detects_clobber;
        Alcotest.test_case "bogus pointer" `Quick test_parse_wrong_pointer;
        Alcotest.test_case "preserve predicate" `Quick test_preserve_predicate_covers;
        Alcotest.test_case "release frees metadata" `Quick test_release_returns_frames;
        Alcotest.test_case "granularity size gap" `Quick test_granularity_size_difference;
        Alcotest.test_case "survives reboot reset" `Quick test_survives_reboot_reset;
        qtest prop_build_accounting_consistent;
      ] );
  ]
