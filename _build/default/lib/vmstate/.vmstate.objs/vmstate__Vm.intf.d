lib/vmstate/vm.mli: Device Format Guest_mem Hw Ioapic Pit Sim Vcpu
