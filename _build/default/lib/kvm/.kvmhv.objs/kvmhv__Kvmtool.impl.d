lib/kvm/kvmtool.ml: Hw List String
