type variable_range = { base : int64; mask : int64 }

type t = {
  def_type : int;
  fixed : int64 array;
  variable : variable_range array;
}

let fixed_count = 11
let variable_count = 8

(* MSR indices, Intel SDM vol. 3. *)
let msr_def_type = 0x2FF
let msr_fixed_indices =
  [| 0x250; 0x258; 0x259; 0x268; 0x269; 0x26A; 0x26B; 0x26C; 0x26D; 0x26E; 0x26F |]
let msr_variable_base i = 0x200 + (2 * i)

let generate rng =
  let memory_types = [| 0L; 1L; 4L; 5L; 6L |] in
  let fixed _ =
    (* Each fixed register packs 8 one-byte memory types. *)
    let b () = memory_types.(Sim.Rng.int rng (Array.length memory_types)) in
    let rec pack acc = function
      | 0 -> acc
      | n -> pack (Int64.logor (Int64.shift_left acc 8) (b ())) (n - 1)
    in
    pack 0L 8
  in
  let variable i =
    if i < 2 then
      {
        base = Int64.of_int (Sim.Rng.int rng 0x100000 * 0x1000);
        mask = Int64.logor 0x800L (Int64.of_int (Sim.Rng.int rng 0xF000000));
      }
    else { base = 0L; mask = 0L }
  in
  {
    def_type = 0xC06;
    fixed = Array.init fixed_count fixed;
    variable = Array.init variable_count variable;
  }

let equal a b =
  a.def_type = b.def_type
  && Array.for_all2 Int64.equal a.fixed b.fixed
  && Array.for_all2 (fun (x : variable_range) y -> x = y) a.variable b.variable

let to_msrs t =
  let def = [ { Regs.index = msr_def_type; value = Int64.of_int t.def_type } ] in
  let fixed =
    Array.to_list
      (Array.mapi
         (fun i v -> { Regs.index = msr_fixed_indices.(i); value = v })
         t.fixed)
  in
  let variable =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i { base; mask } ->
              [
                { Regs.index = msr_variable_base i; value = base };
                { Regs.index = msr_variable_base i + 1; value = mask };
              ])
            t.variable))
  in
  def @ fixed @ variable

let of_msrs msrs =
  let find index =
    List.find_map
      (fun (m : Regs.msr) -> if m.index = index then Some m.value else None)
      msrs
  in
  let ( let* ) = Option.bind in
  let* def = find msr_def_type in
  let rec collect_fixed i acc =
    if i = fixed_count then Some (List.rev acc)
    else
      let* v = find msr_fixed_indices.(i) in
      collect_fixed (i + 1) (v :: acc)
  in
  let* fixed = collect_fixed 0 [] in
  let rec collect_variable i acc =
    if i = variable_count then Some (List.rev acc)
    else
      let* base = find (msr_variable_base i) in
      let* mask = find (msr_variable_base i + 1) in
      collect_variable (i + 1) ({ base; mask } :: acc)
  in
  let* variable = collect_variable 0 [] in
  Some
    {
      def_type = Int64.to_int def;
      fixed = Array.of_list fixed;
      variable = Array.of_list variable;
    }

let pp fmt t =
  let active =
    Array.fold_left
      (fun acc r -> if Int64.equal r.mask 0L then acc else acc + 1)
      0 t.variable
  in
  Format.fprintf fmt "mtrr[def=%x, %d variable active]" t.def_type active
