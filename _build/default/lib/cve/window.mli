(** Vulnerability-window statistics (section 2.2) and the transplant
    decision (section 1).

    A vulnerability window is the time between a flaw's identification
    and the patched hypervisor running in the datacenter; HyperTP exists
    to cover exactly this interval. *)

type stats = {
  count : int;
  mean_days : float;
  min_days : int;
  max_days : int;
  over_60_fraction : float;
}

val kvm_stats : unit -> stats
(** Statistics over the KVM vulnerabilities with documented windows
    (Red Hat tracker subset: avg 71 days, 60%+ above 60 days). *)

val xen_stats : unit -> stats

type advice =
  | No_action            (** severity below the transplant threshold *)
  | Transplant_to of string  (** a safe alternate hypervisor exists *)
  | No_safe_alternative  (** every hypervisor in the fleet is affected *)

val advise : fleet:string list -> current:string -> Nvd.record -> advice
(** The operator's decision procedure: on a critical flaw affecting
    [current], pick the first fleet member not affected by it.
    [fleet]/[current] use "xen" / "kvm" names. *)

val transplants_needed_per_year :
  fleet:string list -> current:string -> (int * int) list
(** For each studied year, how many transplants the policy would have
    triggered — the paper's argument that the count stays low. *)

val pp_stats : Format.formatter -> stats -> unit
val pp_advice : Format.formatter -> advice -> unit
