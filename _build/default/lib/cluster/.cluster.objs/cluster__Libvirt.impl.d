lib/cluster/libvirt.ml: Format Hv Hw Hypertp List String Vmstate
