lib/cluster/upgrade.mli: Btrplace Format Hw Model Sim
