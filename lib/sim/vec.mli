(** Growable array for hot paths.

    Replaces the [x :: !acc] + [List.rev] idiom: elements read back in
    push order with no reversal and no per-element cons cell.  The
    backing store doubles on overflow, so [n] pushes cost O(n)
    amortised.

    A [dummy] element is required at creation to fill unused capacity;
    it is never returned by any accessor. *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create ?capacity dummy] makes an empty vector.  [capacity] is an
    initial-allocation hint (default 16). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Reset length to zero, releasing element references.  Capacity is
    retained, so a cleared vector can be refilled without
    reallocating. *)

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] outside [0, length). *)

val last : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a -> 'a list -> 'a t
