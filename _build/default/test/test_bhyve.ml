(* Tests for the third hypervisor (bhyve): native snapshot format, ULE
   scheduler, IOAPIC bridging in both directions, MSR surface gaps, and
   the full three-hypervisor transplant chain — the UISR scaling
   claim. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let rng () = Sim.Rng.create 0xB47EL

(* --- ULE scheduler --- *)

let test_ule_queues () =
  let rq = Bhyvehv.Ule.create () in
  Bhyvehv.Ule.enqueue_vm rq ~vm_name:"a" ~vcpus:2;
  Bhyvehv.Ule.enqueue_vm rq ~vm_name:"b" ~vcpus:1;
  checki "runnable" 3 (Bhyvehv.Ule.runnable rq);
  checkb "consistent" true (Bhyvehv.Ule.consistent rq [ ("a", 2); ("b", 1) ]);
  Bhyvehv.Ule.dequeue_vm rq ~vm_name:"a";
  checki "after dequeue" 1 (Bhyvehv.Ule.runnable rq);
  Bhyvehv.Ule.rebuild rq [ ("c", 4) ];
  checkb "rebuilt" true (Bhyvehv.Ule.consistent rq [ ("c", 4) ])

let test_ule_round_robin () =
  let rq = Bhyvehv.Ule.create () in
  Bhyvehv.Ule.enqueue_vm rq ~vm_name:"a" ~vcpus:1;
  Bhyvehv.Ule.enqueue_vm rq ~vm_name:"b" ~vcpus:1;
  let counts = Hashtbl.create 2 in
  for _ = 1 to 50 do
    match Bhyvehv.Ule.pick_next rq with
    | Some th ->
      Hashtbl.replace counts th.Bhyvehv.Ule.vm_name
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts th.Bhyvehv.Ule.vm_name))
    | None -> Alcotest.fail "empty"
  done;
  checki "fair split" 25 (Hashtbl.find counts "a")

(* --- native snapshot format --- *)

let sample_platform ?(pins = 32) ?(vcpus = 2) () =
  let g = rng () in
  {
    Bhyvehv.Vmm_snapshot.vcpus =
      List.init vcpus (fun index -> Vmstate.Vcpu.generate g ~index);
    ioapic = Vmstate.Ioapic.generate g ~pins;
    pit = Vmstate.Pit.generate g;
  }

let test_snapshot_roundtrip () =
  let p = sample_platform () in
  match Bhyvehv.Vmm_snapshot.decode (Bhyvehv.Vmm_snapshot.encode p) with
  | Ok p' ->
    checkb "vcpus" true
      (List.for_all2 Vmstate.Vcpu.equal p.Bhyvehv.Vmm_snapshot.vcpus
         p'.Bhyvehv.Vmm_snapshot.vcpus);
    checkb "ioapic" true
      (Vmstate.Ioapic.equal p.Bhyvehv.Vmm_snapshot.ioapic
         p'.Bhyvehv.Vmm_snapshot.ioapic);
    checkb "pit" true
      (Vmstate.Pit.equal p.Bhyvehv.Vmm_snapshot.pit p'.Bhyvehv.Vmm_snapshot.pit)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Bhyvehv.Vmm_snapshot.pp_error e)

let test_snapshot_rejects () =
  checkb "garbage" true
    (Result.is_error (Bhyvehv.Vmm_snapshot.decode (Bytes.of_string "nope")));
  let blob = Bhyvehv.Vmm_snapshot.encode (sample_platform ~vcpus:1 ()) in
  checkb "truncated" true
    (Result.is_error
       (Bhyvehv.Vmm_snapshot.decode (Bytes.sub blob 0 (Bytes.length blob / 2))));
  Alcotest.check_raises "48 pins refused"
    (Invalid_argument "Vmm_snapshot: IOAPIC exceeds bhyve's 32 pins")
    (fun () ->
      ignore (Bhyvehv.Vmm_snapshot.encode (sample_platform ~pins:48 ())))

let test_three_native_formats_differ () =
  let g = rng () in
  let vcpus = [ Vmstate.Vcpu.generate g ~index:0 ] in
  let ioapic = Vmstate.Ioapic.generate g ~pins:24 in
  let pit = Vmstate.Pit.generate g in
  let xen = Xenhv.Hvm_records.encode { Xenhv.Hvm_records.vcpus; ioapic; pit } in
  let kvm = Kvmhv.Ioctl_stream.encode { Kvmhv.Ioctl_stream.vcpus; ioapic; pit } in
  let bhy = Bhyvehv.Vmm_snapshot.encode { Bhyvehv.Vmm_snapshot.vcpus; ioapic; pit } in
  checkb "xen != kvm" false (Bytes.equal xen kvm);
  checkb "xen != bhyve" false (Bytes.equal xen bhy);
  checkb "kvm != bhyve" false (Bytes.equal kvm bhy)

(* --- hypervisor over a host --- *)

let bhyve_host ?(vms = []) () =
  Hypertp.Api.provision ~name:"b-host" ~machine:(Hw.Machine.m1 ())
    ~hv:Hv.Kind.Bhyve vms

let test_bhyve_guests_32_pins () =
  let host =
    bhyve_host ~vms:[ Vmstate.Vm.config ~name:"g" ~ram:(Hw.Units.mib 64) () ] ()
  in
  let vm = Option.get (Hv.Host.find_vm host "g") in
  checki "32 pins" 32 (Vmstate.Ioapic.pin_count vm.Vmstate.Vm.ioapic);
  checkb "mgmt consistent" true (Hv.Host.management_consistent host)

let test_inplace_xen_to_bhyve () =
  let host =
    Hypertp.Api.provision ~name:"x" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"v" ~ram:(Hw.Units.mib 256) () ]
  in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Bhyve () in
  checkb "all checks" true (Hypertp.Inplace.all_ok r.checks);
  let fixes = List.assoc "v" r.fixups in
  checkb "48 -> 32 truncation" true
    (List.exists
       (function
         | Uisr.Fixup.Ioapic_pins_dropped { kept = 32; _ } -> true
         | _ -> false)
       fixes);
  checkb "MC-bank MSRs dropped" true
    (List.exists
       (function
         | Uisr.Fixup.Msr_dropped i -> i >= 0x400 && i < 0x480
         | _ -> false)
       fixes)

let test_inplace_kvm_to_bhyve_extends () =
  let host =
    Hypertp.Api.provision ~name:"k" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm
      [ Vmstate.Vm.config ~name:"v" ~ram:(Hw.Units.mib 256) () ]
  in
  let r = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Bhyve () in
  checkb "all checks" true (Hypertp.Inplace.all_ok r.checks);
  checkb "24 -> 32 extension" true
    (List.exists
       (function
         | Uisr.Fixup.Ioapic_pins_extended { from_pins = 24; to_pins = 32 } ->
           true
         | _ -> false)
       (List.assoc "v" r.fixups))

(* The scaling claim: a chain across all three hypervisors preserves
   vCPU state end to end (modulo the recorded MSR drops). *)
let test_three_hypervisor_chain () =
  let host =
    Hypertp.Api.provision ~name:"chain" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"v" ~vcpus:2 ~ram:(Hw.Units.mib 128) () ]
  in
  Hv.Host.pause_vm host "v";
  let u0 = Hv.Host.to_uisr host "v" in
  Hv.Host.resume_vm host "v";
  let r1 = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Bhyve () in
  let r2 = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let r3 = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Xen () in
  List.iter
    (fun (r : Hypertp.Inplace.report) ->
      checkb "leg ok" true (Hypertp.Inplace.all_ok r.checks))
    [ r1; r2; r3 ];
  Hv.Host.pause_vm host "v";
  let u3 = Hv.Host.to_uisr host "v" in
  (* MC-bank MSRs were dropped at the bhyve hop; everything else must
     survive all three legs. *)
  let strip (v : Vmstate.Vcpu.t) =
    { v with
      regs =
        { v.regs with
          msrs =
            List.filter
              (fun (m : Vmstate.Regs.msr) -> Bhyvehv.Bhyve.supports_msr m.index)
              v.regs.msrs } }
  in
  checkb "vcpus preserved across 3 hypervisors" true
    (List.for_all2
       (fun a b -> Vmstate.Vcpu.equal (strip a) (strip b))
       u0.Uisr.Vm_state.vcpus u3.Uisr.Vm_state.vcpus);
  checkb "pit preserved" true
    (Vmstate.Pit.equal u0.Uisr.Vm_state.pit u3.Uisr.Vm_state.pit);
  (* Pins 0..23 survive every hop (each hypervisor has >= 24). *)
  let low io = fst (Vmstate.Ioapic.truncate io ~pins:24) in
  checkb "low pins preserved" true
    (Vmstate.Ioapic.equal (low u0.Uisr.Vm_state.ioapic) (low u3.Uisr.Vm_state.ioapic))

let test_fleet_policy_escape () =
  (* With three hypervisors, even the one common Xen/KVM critical flaw
     has a safe target. *)
  let fleet = List.map Hv.Kind.to_string Hv.Kind.all in
  let venom = Option.get (Cve.Nvd.find "CVE-2015-3456") in
  checkb "bhyve escape" true
    (Cve.Window.advise ~fleet ~current:"xen" venom
    = Cve.Window.Transplant_to "bhyve");
  (* And the two-member fleet still has none. *)
  checkb "xen/kvm fleet stuck" true
    (Cve.Window.advise ~fleet:[ "xen"; "kvm" ] ~current:"xen" venom
    = Cve.Window.No_safe_alternative)

let test_migration_tp_to_bhyve () =
  let src =
    Hypertp.Api.provision ~name:"msrc" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"v" ~ram:(Hw.Units.mib 256) () ]
  in
  let dst = bhyve_host () in
  let r = Hypertp.Api.transplant_migration ~src ~dst () in
  checkb "heterogeneous" true (r.kind = `Migration_tp);
  checkb "memory equal" true r.checks.Hypertp.Migrate.memory_equal;
  checkb "landed" true (Hv.Host.find_vm dst "v" <> None)

let test_bhyve_boot_time_band () =
  let m1 = Hw.Machine.m1 () in
  let b = Sim.Time.to_sec_f (Bhyvehv.Bhyve.boot_time ~machine:m1) in
  let k = Sim.Time.to_sec_f (Kvmhv.Kvm.boot_time ~machine:m1) in
  let x = Sim.Time.to_sec_f (Xenhv.Xen.boot_time ~machine:m1) in
  checkb "type-II: slower than linux, far below xen+dom0" true
    (b > k && b < x /. 2.0)

let suites =
  [
    ( "bhyve.ule",
      [
        Alcotest.test_case "queues" `Quick test_ule_queues;
        Alcotest.test_case "round robin" `Quick test_ule_round_robin;
      ] );
    ( "bhyve.native_format",
      [
        Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
        Alcotest.test_case "rejects bad input" `Quick test_snapshot_rejects;
        Alcotest.test_case "three formats differ" `Quick
          test_three_native_formats_differ;
      ] );
    ( "bhyve.transplant",
      [
        Alcotest.test_case "guests get 32 pins" `Quick test_bhyve_guests_32_pins;
        Alcotest.test_case "xen -> bhyve (truncate + msr drop)" `Quick
          test_inplace_xen_to_bhyve;
        Alcotest.test_case "kvm -> bhyve (extend)" `Quick
          test_inplace_kvm_to_bhyve_extends;
        Alcotest.test_case "three-hypervisor chain" `Quick
          test_three_hypervisor_chain;
        Alcotest.test_case "fleet policy escape (VENOM)" `Quick
          test_fleet_policy_escape;
        Alcotest.test_case "migrationtp to bhyve" `Quick test_migration_tp_to_bhyve;
        Alcotest.test_case "boot time band" `Quick test_bhyve_boot_time_band;
      ] );
  ]
