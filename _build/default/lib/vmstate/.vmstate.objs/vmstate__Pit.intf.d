lib/vmstate/pit.mli: Format Sim
