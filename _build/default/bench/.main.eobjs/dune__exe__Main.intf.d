bench/main.mli:
