type outcome =
  | Completed
  | Completed_after_retries of int
  | Aborted_link_failure of int
  | Aborted_state_corruption of int

type retry_params = {
  max_attempts : int;
  backoff_base : Sim.Time.t;
  backoff_factor : float;
}

let default_retry =
  { max_attempts = 3; backoff_base = Sim.Time.ms 500; backoff_factor = 2.0 }

type vm_report = {
  vm_name : string;
  rounds : int;
  precopy_time : Sim.Time.t;
  downtime : Sim.Time.t;
  queue_wait : Sim.Time.t;
  retries : int;
  retry_wait : Sim.Time.t;
  wasted_time : Sim.Time.t;
  state_retransmits : int;
  total_time : Sim.Time.t;
  wire_bytes : Hw.Units.bytes_;
  state_bytes : int;
  fixups : Uisr.Fixup.t list;
  outcome : outcome;
}

type checks = {
  memory_equal : bool;
  connections_preserved : bool;
  management_consistent : bool;
  residual_clean : bool;
}

type report = {
  kind : [ `Migration_tp | `Homogeneous ];
  src_hv : string;
  dst_hv : string;
  per_vm : vm_report list;
  total_time : Sim.Time.t;
  checks : checks;
  audit : Audit.report option;
  audit_time : Sim.Time.t;
}

let setup_time = Sim.Time.ms 400 (* connection + capability negotiation *)

let pp_outcome fmt = function
  | Completed -> Format.pp_print_string fmt "completed"
  | Completed_after_retries n -> Format.fprintf fmt "completed after %d retries" n
  | Aborted_link_failure round ->
    Format.fprintf fmt "aborted (link failure, round %d)" round
  | Aborted_state_corruption attempts ->
    Format.fprintf fmt "aborted (state corrupt on all %d transmissions)"
      attempts

(* One pre-copy attempt over the analytic plan, walking its rounds and
   consulting the fault plan for link faults.  A degraded link halves
   the round's bandwidth (the round takes twice as long); a dropped
   link aborts the attempt at that round. *)
type attempt_result =
  | Link_ok of Sim.Time.t (* extra time from degraded rounds *)
  | Link_dropped of int * Sim.Time.t * Hw.Units.bytes_
      (* round index, time on the wire, bytes on the wire *)

let attempt_precopy ~fire ~vm:n ~page_wire_bytes
    (plan : Migration.Precopy.plan) =
  let rec walk i degrade_extra spent bytes = function
    | [] -> Link_ok degrade_extra
    | (r : Migration.Precopy.round) :: rest ->
      if fire ~vm:n Fault.Migration_link_drop then
        (* Everything up to and including this round was on the wire
           when the link died. *)
        Link_dropped
          ( i,
            Sim.Time.sum [ spent; degrade_extra; r.duration ],
            bytes + (r.pages_sent * page_wire_bytes) )
      else
        let degrade_extra =
          if fire ~vm:n Fault.Migration_link_degrade then
            Sim.Time.add degrade_extra r.duration
          else degrade_extra
        in
        walk (i + 1) degrade_extra
          (Sim.Time.add spent r.duration)
          (bytes + (r.pages_sent * page_wire_bytes))
          rest
  in
  walk 0 Sim.Time.zero Sim.Time.zero 0 plan.Migration.Precopy.rounds

(* Replay one VM's finished migration onto the optional tracer, laying
   segments back-to-back from t=0 on track ["vm:<name>"] using the
   report's own durations (setup, each dropped attempt + backoff,
   pre-copy with per-round children, downtime), so the root span's
   extent equals [total_time] exactly.  [dropped] lists the link-failed
   attempts in firing order as (round, wire time, backoff) — backoff is
   [None] only when the attempt budget ran out. *)
(* Metric labels must be low-cardinality enums, unlike the free-text
   span attribute built from [pp_outcome]. *)
let outcome_metric_label = function
  | Completed | Completed_after_retries _ -> "completed"
  | Aborted_link_failure _ -> "aborted_link_failure"
  | Aborted_state_corruption _ -> "aborted_state_corruption"

let emit_vm_obs obs metrics ~(plan : Migration.Precopy.plan) ~dropped
    (r : vm_report) =
  let outcome_label = Format.asprintf "%a" pp_outcome r.outcome in
  let track = "vm:" ^ r.vm_name in
  let root =
    Otrace.start obs ~at:Sim.Time.zero ~track
      ~attrs:
        [ ("engine", "migrate"); ("vm", r.vm_name);
          ("outcome", outcome_label) ]
      ("migrate:" ^ r.vm_name)
  in
  let c = ref Sim.Time.zero in
  let seg ?(attrs = []) name d =
    let until = Sim.Time.add !c d in
    let s = Otrace.span obs ~at:!c ~until ?parent:root ~track ~attrs name in
    c := until;
    s
  in
  ignore (seg "setup" setup_time);
  let dropped_wire =
    List.fold_left
      (fun acc (round, w_time, backoff) ->
        ignore
          (seg "precopy_attempt"
             ~attrs:
               [ ("result", "link_dropped"); ("round", string_of_int round) ]
             w_time);
        (match backoff with
        | Some b -> ignore (seg "backoff" b)
        | None -> ());
        Sim.Time.add acc w_time)
      Sim.Time.zero dropped
  in
  (match r.outcome with
  | Aborted_link_failure _ -> ()
  | Completed | Completed_after_retries _ | Aborted_state_corruption _ ->
    let p =
      seg "precopy"
        ~attrs:[ ("rounds", string_of_int r.rounds) ]
        r.precopy_time
    in
    (* Children use the analytic plan's raw round durations; the parent
       carries the jitter and any degraded-link stretch. *)
    let rc = ref (Sim.Time.sub !c r.precopy_time) in
    List.iter
      (fun (round : Migration.Precopy.round) ->
        let until = Sim.Time.add !rc round.duration in
        ignore
          (Otrace.span obs ~at:!rc ~until ?parent:p ~track
             ~attrs:[ ("pages_sent", string_of_int round.pages_sent) ]
             "round");
        rc := until)
      plan.Migration.Precopy.rounds;
    (match r.outcome with
    | Aborted_state_corruption _ ->
      (* The report folds the retransmission waste into wasted_time;
         what the dropped attempts did not burn was spent here. *)
      ignore
        (seg "state_retransmit"
           ~attrs:
             [ ("transmissions", string_of_int (r.state_retransmits + 1)) ]
           (Sim.Time.sub r.wasted_time dropped_wire))
    | _ ->
      let d =
        seg "downtime"
          ~attrs:
            [ ("queue_wait", Sim.Time.to_string r.queue_wait);
              ("state_retransmits", string_of_int r.state_retransmits) ]
          r.downtime
      in
      let dt_start = Sim.Time.sub !c r.downtime in
      for k = 1 to r.state_retransmits do
        Otrace.event d ~at:dt_start ("retransmit:" ^ string_of_int k)
      done));
  Otrace.finish obs root ~at:r.total_time;
  let labels = [ ("engine", "migrate") ] in
  Otrace.count metrics
    ~labels:(labels @ [ ("outcome", outcome_metric_label r.outcome) ])
    "hypertp_migrations_total";
  if r.retries > 0 then
    Otrace.count metrics ~by:(float_of_int r.retries) ~labels
      "hypertp_migration_retries_total";
  if r.state_retransmits > 0 then
    Otrace.count metrics
      ~by:(float_of_int r.state_retransmits)
      ~labels "hypertp_state_retransmits_total";
  Otrace.count metrics
    ~by:(float_of_int r.wire_bytes)
    ~labels "hypertp_wire_bytes_total";
  Otrace.observe metrics ~labels ~buckets:Otrace.seconds_buckets
    "hypertp_downtime_seconds"
    (Sim.Time.to_sec_f r.downtime)

let run ?ctx ?rng ?fault ?(retry = default_retry) ?obs ?metrics
    ~(src : Hv.Host.t) ~(dst : Hv.Host.t) ?vm_names () =
  let c = Ctx.resolve ?ctx ?rng ?fault ?obs ?metrics () in
  let rng =
    match c.Ctx.rng with Some r -> r | None -> Sim.Rng.create 0x3C4DL
  in
  let fault = c.Ctx.fault in
  let metrics = c.Ctx.metrics in
  let obs = Option.map Otrace.attach c.Ctx.obs in
  if retry.max_attempts < 1 then invalid_arg "Migrate.run: max_attempts < 1";
  let (Hv.Host.Packed ((module S), _, _)) = Hv.Host.running_exn src in
  let (Hv.Host.Packed ((module D), _, _)) = Hv.Host.running_exn dst in
  let kind =
    if Hv.Kind.equal S.kind D.kind then `Homogeneous else `Migration_tp
  in
  let vm_names =
    match vm_names with Some l -> l | None -> Hv.Host.vm_names src
  in
  if vm_names = [] then invalid_arg "Migrate.run: no VMs";
  Log.info (fun m ->
      m "%s %s -> %s: %d VMs"
        (match kind with
        | `Migration_tp -> "MigrationTP"
        | `Homogeneous -> "homogeneous migration")
        S.name D.name (List.length vm_names));
  List.iter
    (fun n ->
      if Hv.Host.find_vm src n = None then
        invalid_arg ("Migrate.run: unknown VM " ^ n))
    vm_names;
  let streams = List.length vm_names in
  let nic = src.Hv.Host.machine.Hw.Machine.nic in
  let params = Migration.Precopy.default_params ~nic ~streams () in
  let page_wire_bytes =
    Hw.Units.page_size_4k + params.Migration.Precopy.page_overhead_bytes
  in
  let fire ~vm site =
    match fault with
    | Some f ->
      let fired = Fault.fire f ~vm site in
      if fired then begin
        Log.warn (fun m -> m "fault injected at %a (%s)" Fault.pp_site site vm);
        Otrace.count metrics
          ~labels:
            [ ("engine", "migrate");
              ("site", Format.asprintf "%a" Fault.pp_site site) ]
          "hypertp_faults_total"
      end;
      fired
    | None -> false
  in

  (* Pre-copy plans (VMs still running, degraded). *)
  let plans =
    List.map
      (fun n ->
        let vm = Option.get (Hv.Host.find_vm src n) in
        let cfg = vm.Vmstate.Vm.config in
        (* The wire moves 4 KiB dirty-log granules regardless of the
           guest's backing page size. *)
        let page_bytes = Hw.Units.page_size_4k in
        let total_pages = Hw.Units.frames_of_bytes cfg.ram in
        let dirty =
          Workload.Profile.dirty_pages_per_sec cfg.workload ~ram:cfg.ram
            ~page_kind:cfg.page_kind
        in
        (n, vm, Migration.Precopy.plan params ~page_bytes ~total_pages
                  ~dirty_pages_per_sec:dirty))
      vm_names
  in

  (* Stop-and-copy: pause, capture state, copy memory, restore on the
     destination.  The receive queue serialises on Xen (Fig. 8). *)
  let receiver_busy = ref Sim.Time.zero in
  let checks_memory = ref true in
  let checks_conns = ref true in
  (* Landed VMs with the exact state blob that crossed the wire — the
     baseline for the optional post-migration residual audit. *)
  let migrated_uisrs = ref [] in
  let per_vm =
    List.map
      (fun (n, (vm : Vmstate.Vm.t), (plan : Migration.Precopy.plan)) ->
        (* Link-fault retry loop: a dropped attempt is non-destructive
           (the source VM never paused; nothing landed on the
           destination), so retry after an exponential backoff until
           the attempt budget runs out. *)
        let dropped = ref [] in
        let rec go attempt ~retry_wait ~wasted_time ~wasted_bytes =
          match attempt_precopy ~fire ~vm:n ~page_wire_bytes plan with
          | Link_dropped (round, w_time, w_bytes) ->
            let wasted_time = Sim.Time.add wasted_time w_time in
            let wasted_bytes = wasted_bytes + w_bytes in
            if attempt >= retry.max_attempts then begin
              dropped := (round, w_time, None) :: !dropped;
              Log.warn (fun m ->
                  m "%s: link dropped in round %d; attempt budget exhausted"
                    n round);
              {
                vm_name = n;
                rounds = round + 1;
                precopy_time = wasted_time;
                downtime = Sim.Time.zero;
                queue_wait = Sim.Time.zero;
                retries = attempt - 1;
                retry_wait;
                wasted_time;
                state_retransmits = 0;
                total_time = Sim.Time.sum [ setup_time; retry_wait; wasted_time ];
                wire_bytes = wasted_bytes;
                state_bytes = 0;
                fixups = [];
                outcome = Aborted_link_failure round;
              }
            end
            else begin
              let backoff =
                Sim.Time.scale
                  (retry.backoff_factor ** float_of_int (attempt - 1))
                  retry.backoff_base
              in
              dropped := (round, w_time, Some backoff) :: !dropped;
              Log.warn (fun m ->
                  m "%s: link dropped in round %d; retrying in %a (attempt %d/%d)"
                    n round Sim.Time.pp backoff (attempt + 1) retry.max_attempts);
              go (attempt + 1)
                ~retry_wait:(Sim.Time.add retry_wait backoff)
                ~wasted_time ~wasted_bytes
            end
          | Link_ok degrade_extra ->
            (* The live data path: multi-round pre-copy over the VM's
               actual dirty bits while it still runs (timings are
               reported from the calibrated analytic plan; the live
               rounds carry the data and verify convergence on real
               state). *)
            let dst_mem =
              Vmstate.Guest_mem.create ~pmem:dst.Hv.Host.pmem
                ~rng:dst.Hv.Host.rng ~bytes:vm.Vmstate.Vm.config.ram
                ~page_kind:vm.Vmstate.Vm.config.page_kind ()
            in
            let live =
              Migration.Precopy.run_live params ~src:vm.Vmstate.Vm.mem
                ~dst:dst_mem
                ~dirty_pages_per_sec:
                  (Workload.Profile.dirty_pages_per_sec
                     vm.Vmstate.Vm.config.workload
                     ~ram:vm.Vmstate.Vm.config.ram
                     ~page_kind:vm.Vmstate.Vm.config.page_kind)
                ~rng
            in
            assert live.Migration.Precopy.memory_equal;
            Hv.Host.pause_vm src n;
            let src_checksum = Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem in
            let src_conns = Vmstate.Vm.total_tcp_connections vm in
            let uisr = Hv.Host.to_uisr src n in
            let state_blob = Uisr.Codec.encode uisr in
            let state_bytes = Bytes.length state_blob in
            let state_transfer =
              Hw.Nic.transfer_time nic ~streams state_bytes
            in
            (* Receiver-side verification: the destination proxy checks
               the blob's envelope and per-section CRCs before acking.
               A corrupt chunk is retransmitted from the source's
               still-intact copy — the pre-copied memory is not resent —
               bounded by the same attempt budget as the link loop. *)
            let rec transmit k =
              let wire_blob =
                if fire ~vm:n Fault.Uisr_corrupt then begin
                  Log.warn (fun m ->
                      m "%s: state chunk corrupted in flight" n);
                  Uisr.Codec.corrupt_section ~tag:Uisr.Codec.tag_vcpu
                    state_blob
                end
                else state_blob
              in
              match
                (Uisr.Codec.decode_verified wire_blob).Uisr.Integrity.verdict
              with
              | Uisr.Integrity.Intact -> Ok (k - 1) (* retransmits *)
              | Uisr.Integrity.Salvaged _ | Uisr.Integrity.Rejected _ ->
                if k >= retry.max_attempts then Error k
                else begin
                  Log.warn (fun m ->
                      m
                        "%s: receiver rejected state chunk; retransmitting \
                         (attempt %d/%d)"
                        n (k + 1) retry.max_attempts);
                  transmit (k + 1)
                end
            in
            (match transmit 1 with
            | Error attempts ->
              (* Every transmission arrived corrupt: abort without
                 touching the source.  The VM resumes where it paused;
                 the destination discards its half-built copy. *)
              Log.warn (fun m ->
                  m "%s: state verification failed after %d transmissions; \
                     aborting"
                    n attempts);
              Vmstate.Guest_mem.free dst_mem;
              Hv.Host.resume_vm src n;
              let retransmit_waste =
                Sim.Time.scale (float_of_int attempts) state_transfer
              in
              let precopy_time =
                Sim.Time.add
                  (Sim.Time.scale (Sim.Rng.jitter rng 0.02)
                     plan.Migration.Precopy.precopy_time)
                  degrade_extra
              in
              {
                vm_name = n;
                rounds = List.length plan.Migration.Precopy.rounds;
                precopy_time;
                downtime = Sim.Time.zero;
                queue_wait = Sim.Time.zero;
                retries = attempt - 1;
                retry_wait;
                wasted_time = Sim.Time.add wasted_time retransmit_waste;
                state_retransmits = attempts - 1;
                total_time =
                  Sim.Time.sum
                    [ setup_time; retry_wait; wasted_time; precopy_time;
                      retransmit_waste ];
                wire_bytes =
                  plan.Migration.Precopy.total_bytes
                  + (attempts * state_bytes) + wasted_bytes;
                state_bytes;
                fixups = [];
                outcome = Aborted_state_corruption attempts;
              }
            | Ok state_retransmits ->
            (* Proxy translation cost: a fraction of a full local save,
               paid inside the stop phase. *)
            let proxy_cost =
              let (Hv.Host.Packed ((module S'), shv, table)) =
                Hv.Host.running_exn src
              in
              match Hashtbl.find_opt table n with
              | None -> assert false
              | Some dom -> Sim.Time.scale 0.05 (S'.save_cost shv dom)
            in
            let fixups = Hv.Host.restore_from_uisr dst ~mem:dst_mem uisr in
            Hv.Host.resume_vm dst n;
            let dst_vm = Option.get (Hv.Host.find_vm dst n) in
            if
              not
                (Int64.equal
                   (Vmstate.Guest_mem.checksum dst_vm.Vmstate.Vm.mem)
                   src_checksum)
            then checks_memory := false;
            if Vmstate.Vm.total_tcp_connections dst_vm <> src_conns then
              checks_conns := false;
            Hv.Host.destroy_vm src n;
            migrated_uisrs := (n, uisr) :: !migrated_uisrs;
            (* Timing: retransmitted state chunks stretch the downtime —
               the VM is paused while they cross the wire again. *)
            let retransmit_extra =
              Sim.Time.scale (float_of_int state_retransmits) state_transfer
            in
            let resume_cost =
              D.migration_resume_cost ~machine:dst.Hv.Host.machine
                ~vcpus:vm.Vmstate.Vm.config.vcpus
            in
            let service_time =
              Sim.Time.sum
                [ plan.Migration.Precopy.stop_copy_time; state_transfer;
                  retransmit_extra; proxy_cost; resume_cost ]
            in
            let queue_wait =
              if D.sequential_migration_receive then !receiver_busy
              else Sim.Time.zero
            in
            if D.sequential_migration_receive then
              receiver_busy := Sim.Time.add !receiver_busy service_time;
            let jitter = Sim.Rng.jitter rng 0.03 in
            let downtime =
              Sim.Time.scale jitter (Sim.Time.add queue_wait service_time)
            in
            let precopy_time =
              Sim.Time.add
                (Sim.Time.scale (Sim.Rng.jitter rng 0.02)
                   plan.Migration.Precopy.precopy_time)
                degrade_extra
            in
            let retries = attempt - 1 in
            {
              vm_name = n;
              rounds = List.length plan.Migration.Precopy.rounds;
              precopy_time;
              downtime;
              queue_wait;
              retries;
              retry_wait;
              wasted_time;
              state_retransmits;
              total_time =
                Sim.Time.sum
                  [ setup_time; retry_wait; wasted_time; precopy_time;
                    downtime ];
              wire_bytes =
                plan.Migration.Precopy.total_bytes
                + ((state_retransmits + 1) * state_bytes)
                + wasted_bytes;
              state_bytes;
              fixups;
              outcome =
                (if retries = 0 then Completed
                 else Completed_after_retries retries);
            })
        in
        let r =
          go 1 ~retry_wait:Sim.Time.zero ~wasted_time:Sim.Time.zero
            ~wasted_bytes:0
        in
        emit_vm_obs obs metrics ~plan ~dropped:(List.rev !dropped) r;
        r)
      plans
  in
  let total_time =
    List.fold_left
      (fun acc (r : vm_report) -> Sim.Time.max acc r.total_time)
      Sim.Time.zero per_vm
  in
  (* Optional post-migration residual audit of the destination world:
     same contract as the InPlaceTP rung — findings trigger a
     scrub-and-recheck, anything left standing fails the
     [residual_clean] check.  Audit/scrub time extends the reported
     total and is laid as spans after the last VM lands, so the trace
     reconciles with [audit_time] exactly. *)
  let audit_report = ref None in
  let audit_time = ref Sim.Time.zero in
  let residual_clean = ref true in
  (match c.Ctx.audit with
  | None -> ()
  | Some acfg ->
    let machine = dst.Hv.Host.machine in
    let fire_host site =
      match fault with
      | Some f ->
        let fired = Fault.fire f site in
        if fired then begin
          Log.warn (fun m -> m "fault injected at %a" Fault.pp_site site);
          Otrace.count metrics
            ~labels:
              [ ("engine", "migrate");
                ("site", Format.asprintf "%a" Fault.pp_site site) ]
            "hypertp_faults_total"
        end;
        fired
      | None -> false
    in
    let reference =
      Audit.reference_of_fresh_boot ~machine (module D : Hv.Intf.S)
    in
    let source_ref =
      Audit.reference_of_fresh_boot ~machine (module S : Hv.Intf.S)
    in
    let max_downtime =
      List.fold_left
        (fun acc (r : vm_report) -> Sim.Time.max acc r.downtime)
        Sim.Time.zero per_vm
    in
    let world =
      Audit.world
        ~baseline:(List.rev !migrated_uisrs)
        ~downtime:max_downtime dst
    in
    let world =
      if fire_host Fault.Residual_leak then
        let plants =
          [ Audit.Plant.Pram_page; Audit.Plant.Hv_frames 2;
            Audit.Plant.Kexec_frame ]
          @
          match !migrated_uisrs with
          | (n, _) :: _ -> [ Audit.Plant.Stale_blob n ]
          | [] -> []
        in
        Audit.Plant.apply ~reference ~source:source_ref world plants
      else world
    in
    let charge name attrs secs =
      let d = Sim.Time.of_sec_f secs in
      ignore
        (Otrace.span obs
           ~at:(Sim.Time.add total_time !audit_time)
           ~until:(Sim.Time.add total_time (Sim.Time.add !audit_time d))
           ~track:("host:" ^ dst.Hv.Host.host_name)
           ~attrs:(("engine", "migrate") :: attrs)
           name);
      audit_time := Sim.Time.add !audit_time d
    in
    let sweep w =
      let r = Audit.run ~reference ~source:source_ref w in
      charge "audit"
        [ ("findings", string_of_int (List.length r.Audit.r_findings)) ]
        (Costs.audit_sweep_seconds machine
           ~frames_swept:r.Audit.r_frames_swept
           ~vms:(List.length (Hv.Host.vms dst)));
      r
    in
    let first = sweep world in
    audit_report := Some first;
    if not (Audit.clean first) then begin
      let findings = List.length first.Audit.r_findings in
      Log.warn (fun m ->
          m "post-migration audit: %d residual finding(s)" findings);
      if not acfg.Ctx.audit_scrub then residual_clean := false
      else if fire_host Fault.Scrub_fail then begin
        residual_clean := false;
        Log.warn (fun m -> m "scrub failed: destination retains residue")
      end
      else begin
        let sc = Audit.scrub world first in
        charge "scrub"
          [ ("freed", string_of_int sc.Audit.sc_frames_freed) ]
          (Costs.scrub_seconds machine
             ~frames_freed:sc.Audit.sc_frames_freed ~findings);
        let second = sweep sc.Audit.sc_world in
        audit_report := Some second;
        if not (Audit.clean second) then residual_clean := false
      end
    end);
  {
    kind;
    src_hv = S.name;
    dst_hv = D.name;
    per_vm;
    total_time = Sim.Time.add total_time !audit_time;
    checks =
      {
        memory_equal = !checks_memory;
        connections_preserved = !checks_conns;
        management_consistent = Hv.Host.management_consistent dst;
        residual_clean = !residual_clean;
      };
    audit = !audit_report;
    audit_time = !audit_time;
  }

(* ------------------------------------------------------------------ *)
(* Shadow-host MigrationTP: abort-safe pre-staged cutover.

   The five-phase transaction (stage -> stream -> converge -> swap ->
   reclaim) keeps every phase before the identity swap purely analytic
   on the source side: the checkpoint stream and the replay rounds are
   walked over the calibrated plan ([Migration.Shadow.attempt_stream])
   without touching guest memory, so an abort at any pre-swap fault
   site provably leaves the source byte-identical and running — the
   handler just re-verifies the entry fingerprint.  Real data moves
   only at commit, mirroring [run]'s stop-and-copy tail but with the
   downtime shrunk to the final dirty set plus the swap handshake. *)

type shadow_strategy =
  | Shadow_cutover
  | Classic_fallback of Fault.site
  | Shadow_deferred of Fault.site

let strategy_label = function
  | Shadow_cutover -> "shadow_cutover"
  | Classic_fallback _ -> "classic_fallback"
  | Shadow_deferred _ -> "deferred"

let pp_shadow_strategy fmt = function
  | Shadow_cutover -> Format.pp_print_string fmt "shadow cutover"
  | Classic_fallback s ->
    Format.fprintf fmt "classic fallback (%a)" Fault.pp_site s
  | Shadow_deferred s -> Format.fprintf fmt "deferred (%a)" Fault.pp_site s

type shadow_vm = {
  sv_name : string;
  sv_plan : Migration.Shadow.plan option;
  sv_downtime : Sim.Time.t;
  sv_wire_bytes : Hw.Units.bytes_;
  sv_state_bytes : int;
}

type shadow_report = {
  sh_src_hv : string;
  sh_target_hv : string;
  sh_spare : string;
  sh_strategy : shadow_strategy;
  sh_phases : (Migration.Shadow.phase * Sim.Time.t) list;
  sh_per_vm : shadow_vm list;
  sh_downtime : Sim.Time.t;
  sh_wire_bytes : Hw.Units.bytes_;
  sh_shadow_time : Sim.Time.t;
  sh_total_time : Sim.Time.t;
  sh_source_intact : bool;
  sh_watchdog_trips : int;
  sh_watchdog_cancels : int;
  sh_checks : checks option;
  sh_classic : report option;
}

exception Shadow_abort of Fault.site

let run_shadow ?ctx ?rng ?fault ?(retry = default_retry) ?obs ?metrics ?params
    ?ladder ~(src : Hv.Host.t) ~(spare : Hv.Host.t) ~target ?vm_names () =
  let module T = (val target : Hv.Intf.S) in
  let c = Ctx.resolve ?ctx ?rng ?fault ?obs ?metrics () in
  let rng =
    match c.Ctx.rng with Some r -> r | None -> Sim.Rng.create 0x5AD0L
  in
  let fault = c.Ctx.fault in
  let metrics = c.Ctx.metrics in
  let obs = Option.map Otrace.attach c.Ctx.obs in
  let ladder =
    match ladder with
    | Some b -> b
    | None -> (
      match c.Ctx.shadow with
      | Some s -> s.Ctx.shadow_ladder
      | None -> Ctx.shadow_default.Ctx.shadow_ladder)
  in
  let (Hv.Host.Packed ((module S), _, _)) = Hv.Host.running_exn src in
  let vm_names =
    match vm_names with Some l -> l | None -> Hv.Host.vm_names src
  in
  if vm_names = [] then invalid_arg "Migrate.run_shadow: no VMs";
  List.iter
    (fun n ->
      if Hv.Host.find_vm src n = None then
        invalid_arg ("Migrate.run_shadow: unknown VM " ^ n))
    vm_names;
  (match Hv.Host.hypervisor_kind spare with
  | Some k when not (Hv.Kind.equal k T.kind) ->
    invalid_arg "Migrate.run_shadow: spare runs a different hypervisor"
  | Some _ | None -> ());
  if Hv.Host.vm_names spare <> [] then
    invalid_arg "Migrate.run_shadow: spare is not empty";
  Log.info (fun m ->
      m "shadow MigrationTP %s -> %s (spare %s): %d VMs" S.name T.name
        spare.Hv.Host.host_name (List.length vm_names));
  let streams = List.length vm_names in
  let nic = src.Hv.Host.machine.Hw.Machine.nic in
  let sparams =
    match params with
    | Some p -> p
    | None -> Migration.Shadow.default_params ~nic ~streams ()
  in
  let page_bytes = Hw.Units.page_size_4k in
  let per_page =
    Migration.Precopy.page_time sparams.Migration.Shadow.precopy ~page_bytes
  in
  let note_fault ?vm site =
    Log.warn (fun m ->
        m "fault injected at %a%s" Fault.pp_site site
          (match vm with Some n -> " (" ^ n ^ ")" | None -> ""));
    Otrace.count metrics
      ~labels:
        [ ("engine", "shadow");
          ("site", Format.asprintf "%a" Fault.pp_site site) ]
      "hypertp_faults_total"
  in
  let fire ?vm site =
    match fault with
    | Some f ->
      let fired = Fault.fire f ?vm site in
      if fired then note_fault ?vm site;
      fired
    | None -> false
  in
  (* The watchdog engine: one private discrete-event engine for the
     whole run; the timer hook keeps the fire/cancel ledger the report
     exposes. *)
  let engine = Sim.Engine.create () in
  let trips = ref 0 and cancels = ref 0 in
  Sim.Engine.set_timer_hook engine (fun _ -> function
    | `Fired -> incr trips
    | `Cancelled -> incr cancels);
  (* Source fingerprint at entry: the abort contract is re-verified
     against this, never assumed. *)
  let entry =
    List.map
      (fun n ->
        let vm = Option.get (Hv.Host.find_vm src n) in
        (n, Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem))
      vm_names
  in
  let source_intact () =
    Hv.Host.management_consistent src
    && List.for_all
         (fun (n, sum) ->
           match Hv.Host.find_vm src n with
           | None -> false
           | Some vm ->
             Vmstate.Vm.is_running vm
             && Int64.equal (Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem) sum)
         entry
  in
  let stage_t = ref Sim.Time.zero in
  let stream_t = ref Sim.Time.zero in
  let converge_t = ref Sim.Time.zero in
  let swap_t = ref Sim.Time.zero in
  let reclaim_t = ref Sim.Time.zero in
  let per_vm = ref [] in
  let wire = ref 0 in
  let downtime = ref Sim.Time.zero in
  let cutover_checks = ref None in
  let classic = ref None in
  let finish strategy ~intact =
    let phases =
      [ (Migration.Shadow.Stage, !stage_t); (Migration.Shadow.Stream, !stream_t);
        (Migration.Shadow.Converge, !converge_t);
        (Migration.Shadow.Swap, !swap_t);
        (Migration.Shadow.Reclaim, !reclaim_t) ]
    in
    let shadow_time =
      List.fold_left (fun acc (_, d) -> Sim.Time.add acc d) Sim.Time.zero
        phases
    in
    let classic_r = !classic in
    let classic_wire =
      match classic_r with
      | None -> 0
      | Some r ->
        List.fold_left (fun acc (v : vm_report) -> acc + v.wire_bytes) 0
          r.per_vm
    in
    let downtime =
      match classic_r with
      | None -> !downtime
      | Some r ->
        List.fold_left
          (fun acc (v : vm_report) -> Sim.Time.max acc v.downtime)
          Sim.Time.zero r.per_vm
    in
    let total_time =
      match classic_r with
      | None -> shadow_time
      | Some r -> Sim.Time.add shadow_time r.total_time
    in
    (* Phase spans laid back-to-back from t=0 on the shadow track: the
       root's extent equals the sum of the five phases exactly, so the
       trace reconciles with [sh_shadow_time] to the nanosecond. *)
    let track = "shadow:" ^ src.Hv.Host.host_name in
    let root =
      Otrace.start obs ~at:Sim.Time.zero ~track
        ~attrs:
          [ ("engine", "shadow"); ("src", src.Hv.Host.host_name);
            ("spare", spare.Hv.Host.host_name);
            ("strategy", strategy_label strategy);
            ("source_intact", string_of_bool intact) ]
        ("shadow:" ^ src.Hv.Host.host_name)
    in
    let cursor = ref Sim.Time.zero in
    List.iter
      (fun (p, d) ->
        let until = Sim.Time.add !cursor d in
        ignore
          (Otrace.span obs ~at:!cursor ~until ?parent:root ~track
             (Migration.Shadow.phase_to_string p));
        (match p with
        | Migration.Shadow.Swap when strategy = Shadow_cutover ->
          Otrace.event root ~at:!cursor "identity_swap"
        | _ -> ());
        cursor := until)
      phases;
    (match strategy with
    | Shadow_cutover -> ()
    | Classic_fallback site | Shadow_deferred site ->
      Otrace.event root ~at:shadow_time ("abort:" ^ Fault.site_to_string site));
    Otrace.finish obs root ~at:shadow_time;
    let labels = [ ("engine", "shadow") ] in
    Otrace.count metrics
      ~labels:(labels @ [ ("strategy", strategy_label strategy) ])
      "hypertp_shadow_total";
    Otrace.count metrics
      ~by:(float_of_int (!wire + classic_wire))
      ~labels "hypertp_wire_bytes_total";
    if !trips > 0 then
      Otrace.count metrics ~by:(float_of_int !trips) ~labels
        "hypertp_watchdog_trips_total";
    if !cancels > 0 then
      Otrace.count metrics ~by:(float_of_int !cancels) ~labels
        "hypertp_watchdog_cancels_total";
    (match strategy with
    | Shadow_cutover ->
      Otrace.observe metrics ~labels ~buckets:Otrace.seconds_buckets
        "hypertp_downtime_seconds"
        (Sim.Time.to_sec_f downtime)
    | Classic_fallback _ | Shadow_deferred _ -> ());
    Log.info (fun m ->
        m "shadow %s: %a (total %a, downtime %a)" src.Hv.Host.host_name
          pp_shadow_strategy strategy Sim.Time.pp total_time Sim.Time.pp
          downtime);
    {
      sh_src_hv = S.name;
      sh_target_hv = T.name;
      sh_spare = spare.Hv.Host.host_name;
      sh_strategy = strategy;
      sh_phases = phases;
      sh_per_vm = !per_vm;
      sh_downtime = downtime;
      sh_wire_bytes = !wire + classic_wire;
      sh_shadow_time = shadow_time;
      sh_total_time = total_time;
      sh_source_intact = intact;
      sh_watchdog_trips = !trips;
      sh_watchdog_cancels = !cancels;
      sh_checks = !cutover_checks;
      sh_classic = classic_r;
    }
  in
  try
    (* --- stage: admission + booting the target on the spare.  The
       spare-pool check comes first — without a spare there is nothing
       to stage (and nothing for classic MigrationTP to land on
       either, so this site always defers). *)
    if fire Fault.Spare_exhausted then
      raise (Shadow_abort Fault.Spare_exhausted);
    let booted =
      match Hv.Host.hypervisor_kind spare with
      | Some _ -> false (* pre-staged pool: already running the target *)
      | None ->
        Hv.Host.boot_hypervisor spare (module T : Hv.Intf.S);
        true
    in
    stage_t :=
      Sim.Time.scale (Sim.Rng.jitter rng 0.02)
        (Sim.Time.of_sec_f
           (Costs.shadow_stage_seconds
              ~boot_seconds:
                (if booted then
                   Sim.Time.to_sec_f sparams.Migration.Shadow.stage_boot
                 else 0.0)
              ~vms:streams));
    (* The boot itself succeeded; what can still fail is pre-staging
       the VM skeletons on the freshly booted target. *)
    if fire Fault.Shadow_stage_fail then
      raise (Shadow_abort Fault.Shadow_stage_fail);
    (* --- stream + converge: every VM walks the analytic checkpoint
       stream concurrently (the link model already divides the
       bandwidth across [streams]); the engine watchdog re-derives each
       verdict from cancellable deadline timers. *)
    let outcomes =
      List.map
        (fun n ->
          let vm = Option.get (Hv.Host.find_vm src n) in
          let cfg = vm.Vmstate.Vm.config in
          let total_pages = Hw.Units.frames_of_bytes cfg.Vmstate.Vm.ram in
          let dirty =
            Workload.Profile.dirty_pages_per_sec cfg.Vmstate.Vm.workload
              ~ram:cfg.Vmstate.Vm.ram ~page_kind:cfg.Vmstate.Vm.page_kind
          in
          let outcome =
            Migration.Shadow.attempt_stream sparams ?fault ~vm:n ~page_bytes
              ~total_pages ~dirty_pages_per_sec:dirty ()
          in
          (n, vm, total_pages, dirty, outcome))
        vm_names
    in
    let dropped = ref None in
    let diverged = ref None in
    List.iter
      (fun (n, _vm, total_pages, dirty, outcome) ->
        let stream_dur =
          Sim.Time.of_sec_f (float_of_int total_pages *. per_page)
        in
        match outcome with
        | Migration.Shadow.Stream_dropped { drop_round; spent; wasted_bytes }
          ->
          (* Only the stream-drop fault site produces this outcome. *)
          note_fault ~vm:n Fault.Shadow_stream_drop;
          Log.warn (fun m ->
              m "%s: checkpoint stream died in round %d" n drop_round);
          if drop_round = 0 then stream_t := Sim.Time.max !stream_t spent
          else begin
            stream_t := Sim.Time.max !stream_t stream_dur;
            converge_t :=
              Sim.Time.max !converge_t (Sim.Time.sub spent stream_dur)
          end;
          wire := !wire + wasted_bytes;
          per_vm :=
            !per_vm
            @ [ { sv_name = n; sv_plan = None; sv_downtime = Sim.Time.zero;
                  sv_wire_bytes = wasted_bytes; sv_state_bytes = 0 } ];
          if !dropped = None then dropped := Some n
        | Migration.Shadow.Stream_ok p | Migration.Shadow.Stream_diverged p ->
          let rounds =
            (p.Migration.Shadow.stream_round
            :: p.Migration.Shadow.replay_rounds)
            @
            match p.Migration.Shadow.violator with
            | Some v -> [ v ]
            | None -> []
          in
          let w = Migration.Shadow.run_watchdog sparams ~engine ~rounds in
          (match (w, p.Migration.Shadow.verdict) with
          | Migration.Shadow.Watchdog_passed wall, _ ->
            (* Converging, or the replay budget ran dry with every
               round still shrinking (no violator to trip on). *)
            stream_t := Sim.Time.max !stream_t p.Migration.Shadow.stream_time;
            converge_t :=
              Sim.Time.max !converge_t (Sim.Time.sub wall stream_dur)
          | ( Migration.Shadow.Watchdog_tripped { trip_round; wall },
              Migration.Shadow.Diverging i ) ->
            (* The engine watchdog and the analytic verdict agree on
               the violating round. *)
            assert (trip_round = i);
            stream_t := Sim.Time.max !stream_t p.Migration.Shadow.stream_time;
            converge_t :=
              Sim.Time.max !converge_t (Sim.Time.sub wall stream_dur)
          | Migration.Shadow.Watchdog_tripped _, Migration.Shadow.Converging
            ->
            assert false);
          wire := !wire + p.Migration.Shadow.wire_bytes;
          per_vm :=
            !per_vm
            @ [ { sv_name = n; sv_plan = Some p; sv_downtime = Sim.Time.zero;
                  sv_wire_bytes = p.Migration.Shadow.wire_bytes;
                  sv_state_bytes = 0 } ];
          (match outcome with
          | Migration.Shadow.Stream_diverged _ ->
            (* A naturally convergent workload only diverges when the
               shadow_diverge site inflated its dirty rate. *)
            if
              Migration.Precopy.converges sparams.Migration.Shadow.precopy
                ~page_bytes ~dirty_pages_per_sec:dirty
            then note_fault ~vm:n Fault.Shadow_diverge;
            Log.warn (fun m ->
                m "%s: convergence watchdog tripped (%a)" n
                  Migration.Shadow.pp_verdict p.Migration.Shadow.verdict);
            if !diverged = None then diverged := Some n
          | _ -> ()))
      outcomes;
    if !dropped <> None then raise (Shadow_abort Fault.Shadow_stream_drop);
    if !diverged <> None then raise (Shadow_abort Fault.Shadow_diverge);
    (* --- swap: the partition check strictly precedes the flip — a
       partition detected during the handshake aborts with the source
       still authoritative. *)
    if fire Fault.Swap_partition then raise (Shadow_abort Fault.Swap_partition);
    let checks_memory = ref true in
    let checks_conns = ref true in
    per_vm :=
      List.map
        (fun sv ->
          let n = sv.sv_name in
          let vm = Option.get (Hv.Host.find_vm src n) in
          let cfg = vm.Vmstate.Vm.config in
          let plan = Option.get sv.sv_plan in
          (* The data path: replay over the VM's actual dirty bits
             lands the shadow copy, then the flip moves only the final
             dirty set and the platform state. *)
          let dst_mem =
            Vmstate.Guest_mem.create ~pmem:spare.Hv.Host.pmem
              ~rng:spare.Hv.Host.rng ~bytes:cfg.Vmstate.Vm.ram
              ~page_kind:cfg.Vmstate.Vm.page_kind ()
          in
          let live =
            Migration.Precopy.run_live sparams.Migration.Shadow.precopy
              ~src:vm.Vmstate.Vm.mem ~dst:dst_mem
              ~dirty_pages_per_sec:
                (Workload.Profile.dirty_pages_per_sec cfg.Vmstate.Vm.workload
                   ~ram:cfg.Vmstate.Vm.ram ~page_kind:cfg.Vmstate.Vm.page_kind)
              ~rng
          in
          assert live.Migration.Precopy.memory_equal;
          Hv.Host.pause_vm src n;
          let src_checksum = Vmstate.Guest_mem.checksum vm.Vmstate.Vm.mem in
          let src_conns = Vmstate.Vm.total_tcp_connections vm in
          let uisr = Hv.Host.to_uisr src n in
          let state_bytes = Bytes.length (Uisr.Codec.encode uisr) in
          ignore (Hv.Host.restore_from_uisr spare ~mem:dst_mem uisr);
          Hv.Host.resume_vm spare n;
          let dst_vm = Option.get (Hv.Host.find_vm spare n) in
          if
            not
              (Int64.equal
                 (Vmstate.Guest_mem.checksum dst_vm.Vmstate.Vm.mem)
                 src_checksum)
          then checks_memory := false;
          if Vmstate.Vm.total_tcp_connections dst_vm <> src_conns then
            checks_conns := false;
          let vm_downtime =
            Sim.Time.scale (Sim.Rng.jitter rng 0.03)
              (Sim.Time.add plan.Migration.Shadow.cutover_downtime
                 (Sim.Time.of_sec_f Costs.shadow_flip_seconds))
          in
          swap_t := Sim.Time.max !swap_t vm_downtime;
          downtime := Sim.Time.max !downtime vm_downtime;
          wire := !wire + state_bytes;
          { sv with sv_downtime = vm_downtime;
            sv_wire_bytes = sv.sv_wire_bytes + state_bytes; sv_state_bytes =
            state_bytes })
        !per_vm;
    (* --- reclaim: the spare is authoritative; tear the source copies
       down and verify both management planes. *)
    List.iter (fun n -> Hv.Host.destroy_vm src n) vm_names;
    reclaim_t :=
      Sim.Time.scale (Sim.Rng.jitter rng 0.02)
        (Sim.Time.of_sec_f (Costs.shadow_reclaim_seconds ~vms:streams));
    cutover_checks :=
      Some
        {
          memory_equal = !checks_memory;
          connections_preserved = !checks_conns;
          management_consistent =
            Hv.Host.management_consistent src
            && Hv.Host.management_consistent spare;
          residual_clean = true;
        };
    finish Shadow_cutover ~intact:true
  with Shadow_abort site ->
    (* Every abort fires strictly before the identity swap: nothing
       paused, nothing landed — verify rather than assume. *)
    let intact = source_intact () in
    if not intact then
      Log.err (fun m ->
          m "shadow abort at %a left the source damaged" Fault.pp_site site)
    else
      Log.warn (fun m ->
          m "shadow aborted at %a: source intact, %s" Fault.pp_site site
            (if site = Fault.Spare_exhausted || not ladder then
               "deferring (exposure accounted)"
             else "degrading to classic MigrationTP"));
    if site = Fault.Spare_exhausted || not ladder then
      finish (Shadow_deferred site) ~intact
    else begin
      classic :=
        Some (run ~ctx:c ~rng ~retry ~src ~dst:spare ~vm_names ());
      finish (Classic_fallback site) ~intact
    end

let pp_shadow_report fmt r =
  Format.fprintf fmt "@[<v>shadow MigrationTP %s -> %s (spare %s): %a@,"
    r.sh_src_hv r.sh_target_hv r.sh_spare pp_shadow_strategy r.sh_strategy;
  Format.fprintf fmt "  phases:";
  List.iter
    (fun (p, d) ->
      Format.fprintf fmt " %a=%a" Migration.Shadow.pp_phase p Sim.Time.pp d)
    r.sh_phases;
  Format.fprintf fmt "@,";
  List.iter
    (fun sv ->
      match sv.sv_plan with
      | Some p ->
        Format.fprintf fmt
          "  %s: %d replay rounds, %a; downtime %a, %a on wire@," sv.sv_name
          (List.length p.Migration.Shadow.replay_rounds)
          Migration.Shadow.pp_verdict p.Migration.Shadow.verdict Sim.Time.pp
          sv.sv_downtime Hw.Units.pp_bytes sv.sv_wire_bytes
      | None ->
        Format.fprintf fmt "  %s: stream dropped, %a wasted@," sv.sv_name
          Hw.Units.pp_bytes sv.sv_wire_bytes)
    r.sh_per_vm;
  (match r.sh_classic with
  | Some c ->
    Format.fprintf fmt "  classic fallback: total %a@," Sim.Time.pp
      c.total_time
  | None -> ());
  Format.fprintf fmt
    "  downtime %a, %a on wire, total %a; source_intact=%b watchdog \
     trips=%d cancels=%d"
    Sim.Time.pp r.sh_downtime Hw.Units.pp_bytes r.sh_wire_bytes Sim.Time.pp
    r.sh_total_time r.sh_source_intact r.sh_watchdog_trips
    r.sh_watchdog_cancels;
  (match r.sh_checks with
  | Some ck ->
    Format.fprintf fmt "@,  checks: memory=%b conns=%b mgmt=%b"
      ck.memory_equal ck.connections_preserved ck.management_consistent
  | None -> ());
  Format.fprintf fmt "@]"

let pp_report fmt r =
  let kind =
    match r.kind with
    | `Migration_tp -> "MigrationTP"
    | `Homogeneous -> "homogeneous migration"
  in
  Format.fprintf fmt "@[<v>%s %s -> %s: total %a@," kind r.src_hv r.dst_hv
    Sim.Time.pp r.total_time;
  List.iter
    (fun v ->
      Format.fprintf fmt
        "  %s: %d rounds, precopy %a, downtime %a (wait %a), %a on wire, %a@,"
        v.vm_name v.rounds Sim.Time.pp v.precopy_time Sim.Time.pp v.downtime
        Sim.Time.pp v.queue_wait Hw.Units.pp_bytes v.wire_bytes pp_outcome
        v.outcome;
      if v.retries > 0 || v.wasted_time <> Sim.Time.zero then
        Format.fprintf fmt "    %d retries, backoff %a, wasted %a@," v.retries
          Sim.Time.pp v.retry_wait Sim.Time.pp v.wasted_time;
      if v.state_retransmits > 0 then
        Format.fprintf fmt "    %d state retransmits@," v.state_retransmits)
    r.per_vm;
  (match r.audit with
  | None -> ()
  | Some a ->
    Format.fprintf fmt "  audit: %d finding(s) in %a%s@,"
      (List.length a.Audit.r_findings)
      Sim.Time.pp r.audit_time
      (if r.checks.residual_clean then "" else " (RESIDUE LEFT)"));
  Format.fprintf fmt "  checks: memory=%b conns=%b mgmt=%b%s@]"
    r.checks.memory_equal r.checks.connections_preserved
    r.checks.management_consistent
    (match r.audit with
    | None -> ""
    | Some _ -> Printf.sprintf " residual=%b" r.checks.residual_clean)
