lib/cve/window.ml: Cvss Format Int List Nvd Stdlib String
