(** InPlaceTP: in-place micro-reboot-based hypervisor transplant
    (sections 3.2 and 4.2).

    The seven-step workflow on a single host: stage the target's kernel,
    build PRAM while VMs run, pause, translate VM_i State to UISR,
    kexec into the target, parse PRAM at early boot, restore from UISR
    onto the untouched guest memory, rebuild management state, resume.

    The run both {e performs} the transplant on the simulated host
    (guest memory objects survive in place; the report's checks verify
    it) and {e accounts} each phase's virtual-time cost. *)

type checks = {
  guest_memory_intact : bool;
      (** per-page checksums identical before/after; backing unclobbered *)
  pram_parse_ok : bool;
  kexec_image_intact : bool;
  uisr_roundtrip_ok : bool;   (** every UISR blob decoded to its source *)
  management_consistent : bool;
  platform_preserved : bool;  (** vCPU/PIT state identical modulo fixups *)
  devices_preserved : bool;   (** guest-visible device state (incl. TCP
                                  connections) survived unplug/rescan *)
}

val all_ok : checks -> bool

type report = {
  source : string;
  target : string;
  vm_count : int;
  phases : Phases.t;
  fixups : (string * Uisr.Fixup.t list) list;
  uisr_platform_bytes : int; (** encoded platform UISR, all VMs *)
  pram_accounting : Pram.Layout.accounting;
  frames_wiped : int;
  checks : checks;
}

val run :
  ?options:Options.t -> ?rng:Sim.Rng.t -> host:Hv.Host.t ->
  target:(module Hv.Intf.S) -> unit -> report
(** Transplant every VM on [host] onto [target].  On return the host
    runs the target hypervisor with all VMs resumed.  Raises
    [Invalid_argument] if the host has no hypervisor or no VMs, or if
    the target is already the running hypervisor. *)

val pp_report : Format.formatter -> report -> unit
