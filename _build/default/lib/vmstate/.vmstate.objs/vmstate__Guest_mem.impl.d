lib/vmstate/guest_mem.ml: Array Bytes Char Hw Int64 List Sim Stdlib
