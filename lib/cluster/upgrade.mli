(** Cluster-upgrade execution timing (Fig. 13).

    BtrPlace executes migration actions sequentially (the conservative
    setting operators use — cf. Alibaba's 15-day, 45k-VM maintenance
    [59]); host upgrades overlap with the following group's migrations,
    so the wall-clock is dominated by the migration chain plus the last
    upgrade. *)

type timing = {
  migration_count : int;
  inplace_vm_count : int;
  migration_time : Sim.Time.t;   (** sum of sequential migration ops *)
  upgrade_tail : Sim.Time.t;     (** the non-overlapped last host upgrade *)
  total : Sim.Time.t;
}

val migration_op_time :
  nic:Hw.Nic.t -> vm:Model.vm -> Sim.Time.t
(** One live-migration action: setup + pre-copy + stop-and-copy over
    the cluster network.  Memoised on (nic, VM RAM, workload) — see
    {!Hypertp.Costs.Memo} — so fleet-scale planning computes each
    distinct VM profile once. *)

val inplace_host_time : vms:int -> Sim.Time.t
(** One InPlaceTP host upgrade (kexec + restore of [vms] VMs) on a
    cluster node.  Memoised on the riding-VM count. *)

val reboot_host_time : Sim.Time.t
(** Full reboot of a drained host (the migration-only path). *)

val execute : nic:Hw.Nic.t -> Btrplace.plan -> timing

val sweep :
  ?nodes:int -> ?vms_per_node:int -> fractions:float list -> unit ->
  (float * timing) list
(** Run the section 5.4 experiment for each InPlaceTP-compatible
    fraction: 10 nodes x 10 VMs (1 vCPU / 4 GiB; 30 % streaming, 30 %
    CPU+memory, 40 % idle) on a 10 Gbps network. *)

val pp_timing : Format.formatter -> timing -> unit

(** {1 Fault-aware execution}

    Per-host failure handling during the rolling upgrade: an
    InPlaceTP host hit by a {!Fault.Host_crash} either rolled back
    before its point of no return — its VMs are drained with
    MigrationTP and the host rebooted empty — or failed after it and
    was recovered by the ReHype-style ladder at the cost of a full
    reboot.  Either way every VM survives; only wall-clock is lost. *)

type fallback =
  | Migrate_and_reboot  (** pre-PNR rollback: drain via MigrationTP *)
  | Recovered_reboot    (** post-PNR: recovery ladder + full reboot *)

type host_failure = {
  failed_node : string;
  failed_vms : int;
  fallback : fallback;
  added : Sim.Time.t;  (** wall-clock this failure added *)
}

type faulty_timing = {
  base : timing;
  failures : host_failure list;
  vms_inplace_ok : int;         (** upgraded in place, no fault *)
  vms_migrated_fallback : int;  (** drained after a pre-PNR rollback *)
  vms_recovered : int;          (** survived post-PNR recovery *)
  added_time : Sim.Time.t;
  total_with_faults : Sim.Time.t;
}

val vms_accounted : faulty_timing -> int
(** [vms_inplace_ok + vms_migrated_fallback + vms_recovered]; equals
    [base.inplace_vm_count] — no VM is ever lost, only delayed. *)

val execute_faulty :
  ?ctx:Hypertp.Ctx.t -> ?fault:Fault.t -> ?fallback_vm_ram:Hw.Units.bytes_ ->
  ?fallback_workload:Vmstate.Vm.workload_kind -> nic:Hw.Nic.t ->
  Btrplace.plan -> faulty_timing
(** Like {!execute}, but consults the fault plan — taken from [?ctx]
    ({!Hypertp.Ctx.t}) or the deprecated [?fault] argument, which
    overrides the [ctx] field — once per in-place host
    upgrade ({!Fault.Host_crash}, the host name as the VM key).  The
    pre/post-PNR split of a failed host is drawn from a per-host RNG
    independent of the plan's stream, so which hosts fail depends only
    on the fault plan's seed and probability. *)

val sweep_faulty :
  ?nodes:int -> ?vms_per_node:int -> ?seed:int64 ->
  probabilities:float list -> unit -> (float * faulty_timing) list
(** Sweep the per-host failure probability over a fully
    InPlaceTP-compatible 10x10 cluster, one fresh fault plan per point,
    all sharing [seed] — so the set of failing hosts grows monotonically
    with the probability and added wall-clock is comparable across
    points. *)

val pp_faulty_timing : Format.formatter -> faulty_timing -> unit
