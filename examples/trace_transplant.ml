(* Tracing a transplant: attach the observability subsystem to an
   InPlaceTP run, read the span tree back, reconcile it with the
   report's phase accounting, and export Chrome-trace / OpenMetrics
   artifacts.

   The tracer runs on virtual time only, so the seeded faulty run below
   produces the same spans — and byte-identical exports — every time.

   Run with: dune exec examples/trace_transplant.exe *)

let small_vm name =
  Vmstate.Vm.config ~name ~vcpus:1 ~ram:(Hw.Units.mib 512)
    ~workload:Vmstate.Vm.Wl_idle ~inplace_compatible:true ()

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  Format.printf "=== tracing a transplant ===@.@.";

  (* 1. Set up a tracer and a metrics registry and hand them to the
     engine.  Every phase, per-VM restore and recovery rung becomes a
     span; counters and histograms accumulate alongside. *)
  let tracer = Obs.Tracer.create () in
  let metrics = Obs.Metrics.create () in
  let host =
    Hypertp.Api.provision ~name:"node-0" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ small_vm "web"; small_vm "db" ]
  in
  (* Inject a restore fault so the run exercises the recovery ladder:
     the trace then shows rung spans under the recovery phase. *)
  let fault =
    Fault.make ~seed:7L
      [ { Fault.site = Fault.Vm_restore; trigger = Fault.Nth_hit 1 } ]
  in
  let report =
    Hypertp.Api.transplant_inplace ~fault ~obs:tracer ~metrics ~host
      ~target:Hv.Kind.Kvm ()
  in
  (match report.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Committed -> Format.printf "outcome: committed@."
  | Hypertp.Inplace.Rolled_back site ->
    Format.printf "outcome: rolled back at %a@." Fault.pp_site site
  | Hypertp.Inplace.Recovered d ->
    Format.printf "outcome: recovered (%d restore retries, %a recovery)@."
      d.Hypertp.Inplace.restore_retries Sim.Time.pp
      d.Hypertp.Inplace.recovery_time);

  (* 2. Walk the span tree.  Spans come back oldest-first; phases live
     on the root track, restores on per-VM tracks, recovery rungs as
     children of the recovery phase. *)
  Format.printf "@.--- span tree (%d spans) ---@." (Obs.Tracer.count tracer);
  List.iter
    (fun s -> Format.printf "  %a@." Obs.Span.pp s)
    (Obs.Tracer.spans tracer);

  let rungs =
    List.filter (fun s -> starts_with "rung:" (Obs.Span.name s))
      (Obs.Tracer.spans tracer)
  in
  Format.printf "@.recovery rungs taken:@.";
  List.iter
    (fun s ->
      Format.printf "  %s%s@." (Obs.Span.name s)
        (match List.assoc_opt "vm" (Obs.Span.attrs s) with
        | Some vm -> " (vm " ^ vm ^ ")"
        | None -> ""))
    rungs;

  (* 3. Reconcile: phase durations recomputed from the trace equal the
     report's hand-accumulated record exactly — the property the test
     suite pins for every engine. *)
  let derived = Hypertp.Phases.of_trace (Obs.Tracer.spans tracer) in
  Format.printf "@.report downtime:  %a@." Sim.Time.pp
    (Hypertp.Phases.downtime report.Hypertp.Inplace.phases);
  Format.printf "span-derived:     %a@." Sim.Time.pp
    (Hypertp.Phases.downtime derived);
  assert (
    Sim.Time.equal
      (Hypertp.Phases.downtime derived)
      (Hypertp.Phases.downtime report.Hypertp.Inplace.phases));

  (* 4. Export.  The Chrome trace loads in Perfetto (ui.perfetto.dev)
     or chrome://tracing; the OpenMetrics dump is scrape-ready text. *)
  let trace_path = Filename.temp_file "hypertp_trace" ".json" in
  let oc = open_out trace_path in
  output_string oc (Obs.Export.chrome_trace tracer);
  close_out oc;
  Format.printf "@.chrome trace written to %s@." trace_path;
  Format.printf "@.--- OpenMetrics snapshot ---@.%s"
    (Obs.Export.open_metrics metrics)
