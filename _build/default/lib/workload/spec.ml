type run = {
  app : Spec_data.app;
  time_s : float;
  degradation_vs_xen_pct : float;
  degradation_vs_kvm_pct : float;
  degradation_pct : float;
}

let run_app ~rng ~sched ~residual_overhead_s app =
  (* Work is normalised to 1.0; rate on platform p is 1/base_time(p). *)
  let base p = 1.0 /. Spec_data.base_time app p in
  let jitter = Sim.Rng.jitter rng 0.004 in
  let finish = Sched.completion_time sched ~start:0.0 ~work:1.0 ~base in
  let time_s = (finish +. residual_overhead_s) *. jitter in
  let deg ref_time = (time_s -. ref_time) /. ref_time *. 100.0 in
  {
    app;
    time_s;
    degradation_vs_xen_pct = deg app.Spec_data.xen_time_s;
    degradation_vs_kvm_pct = deg app.Spec_data.kvm_time_s;
    degradation_pct =
      Float.max (deg app.Spec_data.xen_time_s) (deg app.Spec_data.kvm_time_s);
  }

let run_suite ~rng ~sched ~residual_overhead_s =
  List.map (run_app ~rng ~sched ~residual_overhead_s) Spec_data.all

let max_degradation runs =
  List.fold_left (fun acc r -> Float.max acc r.degradation_pct) 0.0 runs
