(** A physical host whose hypervisor can be swapped at runtime.

    The host owns the machine model, its physical memory and a
    deterministic RNG stream; the running hypervisor is a first-class
    module packed together with its instance state and domain table, so
    transplant code can operate on "whatever is running" generically. *)

type packed =
  | Packed :
      (module Intf.S with type t = 'hv and type domain = 'dom)
      * 'hv
      * (string, 'dom) Hashtbl.t
      -> packed

type t = {
  host_name : string;
  machine : Hw.Machine.t;
  pmem : Hw.Pmem.t;
  rng : Sim.Rng.t;
  mutable running : packed option;
  mutable boots : int;
}

val create : ?seed:int64 -> name:string -> Hw.Machine.t -> t
(** A powered-on host with no hypervisor yet. *)

val boot_hypervisor : t -> (module Intf.S) -> unit
(** Boot a hypervisor on an idle host.  Raises [Invalid_argument] if one
    is already running. *)

val running_exn : t -> packed
val hypervisor_kind : t -> Kind.t option
val hypervisor_name : t -> string

val create_vm : t -> Vmstate.Vm.config -> Vmstate.Vm.t
(** Create a VM under the running hypervisor, registered by name.
    Raises [Invalid_argument] if no hypervisor runs or the name is
    taken. *)

val vm_names : t -> string list
val find_vm : t -> string -> Vmstate.Vm.t option
val vms : t -> Vmstate.Vm.t list
val vm_count : t -> int

val pause_vm : t -> string -> unit
val resume_vm : t -> string -> unit
val pause_all : t -> unit
val resume_all : t -> unit

val to_uisr : t -> string -> Uisr.Vm_state.t
val to_uisr_all : t -> (string * Uisr.Vm_state.t) list

val detach_vm : t -> string -> Vmstate.Vm.t
(** Remove a VM from the hypervisor keeping its memory/state alive. *)

val destroy_vm : t -> string -> unit

val restore_from_uisr :
  t -> mem:Vmstate.Guest_mem.t -> Uisr.Vm_state.t -> Uisr.Fixup.t list
(** [from_uisr] on the running hypervisor, registering the domain under
    its UISR name. *)

val shutdown_hypervisor : t -> keep_guest_memory:bool -> unit
(** Tear the hypervisor down in an orderly fashion.  With
    [keep_guest_memory:true] domains are detached — guest state survives
    in place; otherwise they are destroyed. *)

val crash_hypervisor : t -> (string * Vmstate.Vm.t) list
(** Drop the hypervisor {e without} tearing anything down — the
    InPlaceTP path: the micro-reboot will reclaim its heap, NPTs and
    management state wholesale ({!Hw.Pmem.reboot_reset}).  Returns the
    VMs (name, state), whose guest memory stays allocated and in
    place. *)

val management_consistent : t -> bool
val rebuild_management_state : t -> Sim.Time.t
val pp : Format.formatter -> t -> unit
