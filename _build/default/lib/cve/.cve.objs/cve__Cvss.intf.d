lib/cve/cvss.mli: Format
