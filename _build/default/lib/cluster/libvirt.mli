(** A libvirt-style generic VM management library (section 4.5.1).

    The paper's operator survey found that sysadmins never touch
    hypervisor-specific tools (class G1: xl, kvmtool, bhyvectl) — every
    orchestrator drives hosts through a generic library (class G2).
    This module is that library: one connection API whose URI scheme
    selects the hypervisor driver, so the orchestration above never
    changes when a transplant swaps the hypervisor underneath. *)

type conn
(** An open connection to a host's hypervisor. *)

exception Uri_mismatch of { uri : string; running : string }

val connect : Hv.Host.t -> uri:string -> conn
(** [connect host ~uri] opens a connection; the scheme must match the
    running hypervisor ("xen:///system", "qemu:///system" for KVM,
    "bhyve:///system").  Raises {!Uri_mismatch} otherwise and
    [Invalid_argument] on unparseable URIs or hypervisor-less hosts. *)

val uri_of_kind : Hv.Kind.t -> string

val reconnect : conn -> conn
(** Re-open after a transplant changed the hypervisor underneath: the
    same host, the new scheme. *)

type dom_state = Dom_running | Dom_paused | Dom_shutoff

type dominfo = {
  dom_name : string;
  dom_vcpus : int;
  dom_memory_kib : int;
  dom_state : dom_state;
}

val list_all_domains : conn -> dominfo list
val dominfo : conn -> string -> dominfo
val suspend : conn -> string -> unit
val resume : conn -> string -> unit

val node_info : conn -> string
(** Hypervisor type/version + machine summary, as `virsh nodeinfo`. *)

val migrate_live : conn -> dest:conn -> string -> Hypertp.Migrate.report
(** virsh migrate --live: works across hypervisors thanks to the
    MigrationTP proxies. *)

val hypervisor_agnostic : (conn -> 'a) -> Hv.Host.t -> 'a
(** Run a G2 operation against whatever the host currently runs —
    the reason HyperTP does not burden sysadmins. *)
