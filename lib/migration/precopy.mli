(** The pre-copy live-migration engine (Clark et al., NSDI'05 — the
    paper's reference [12]).

    Round 0 sends every guest page while the VM keeps running; each
    following round sends the pages dirtied during the previous one; the
    loop stops when the remaining dirty set is small enough (or a round
    cap is hit), and the final stop-and-copy sends the remainder while
    the VM is paused. *)

type params = {
  nic : Hw.Nic.t;
  streams : int;       (** concurrent migrations sharing the link *)
  max_rounds : int;    (** cap on pre-copy iterations (default 5) *)
  stop_threshold_pages : int;  (** switch to stop-and-copy below this *)
  page_overhead_bytes : int;   (** per-page protocol framing *)
}

val default_params : nic:Hw.Nic.t -> ?streams:int -> unit -> params

type round = { index : int; pages_sent : int; duration : Sim.Time.t }

type plan = {
  rounds : round list;
  precopy_time : Sim.Time.t;  (** VM running, degraded *)
  final_pages : int;          (** sent during stop-and-copy *)
  stop_copy_time : Sim.Time.t;
  total_bytes : Hw.Units.bytes_;
      (** everything on the wire, per-page protocol framing included *)
}

val plan :
  params -> page_bytes:int -> total_pages:int -> dirty_pages_per_sec:float ->
  plan
(** Closed-form iteration of the pre-copy recurrence.  A zero dirty
    rate plans exactly one round (round 0 sends everything; nothing is
    left for the stop-and-copy).  Raises [Invalid_argument] on
    non-positive page counts or a negative/non-finite dirty rate, and
    [Hypertp_error.Error] (site ["Precopy.plan"], hint naming the
    {!Shadow} convergence watchdog) when the dirty rate meets or
    exceeds the link rate — such a plan can never converge, and
    silently iterating to the round cap would hide it. *)

val page_time : params -> page_bytes:int -> float
(** Seconds one page (plus framing) spends on one of the link's
    streams — the recurrence's only physical constant, shared with the
    {!Shadow} replay math. *)

val converges : params -> page_bytes:int -> dirty_pages_per_sec:float -> bool
(** Whether the dirty rate stays below the link rate (otherwise rounds
    stop shrinking and the round cap decides downtime). *)

val copy_memory :
  src:Vmstate.Guest_mem.t -> dst:Vmstate.Guest_mem.t -> int
(** Actually copy guest page contents source -> destination (the data
    path under the plan's timings); returns pages copied.  Raises
    [Invalid_argument] on size/page-kind mismatch.  Clears the
    destination's dirty bits. *)

type live_round = {
  live_index : int;
  guest_pages_sent : int;
  wall : Sim.Time.t;
}

type live_result = {
  live_rounds : live_round list;
  final_guest_pages : int;  (** copied during the stop-and-copy *)
  pages_copied_total : int;
  live_precopy_time : Sim.Time.t;
  live_stop_time : Sim.Time.t;
  memory_equal : bool;      (** destination == source afterwards *)
}

val run_live :
  params -> src:Vmstate.Guest_mem.t -> dst:Vmstate.Guest_mem.t ->
  dirty_pages_per_sec:float -> rng:Sim.Rng.t -> live_result
(** The full pre-copy loop over {e actual} dirty bits: round 0 copies
    every guest page; while each round's data is "on the wire" the
    source keeps dirtying pages (driven deterministically by [rng] at
    the given 4 KiB-page rate); following rounds copy exactly the dirty
    set and clear it; the stop-and-copy moves the remainder and the
    result records whether the destination ended bit-identical.  Raises
    like {!copy_memory} on geometry mismatches. *)

val pp_plan : Format.formatter -> plan -> unit
