(** Little-endian binary writer/reader with CRC32, shared by the UISR
    codec and the hypervisors' native state formats. *)

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit
  val bool : t -> bool -> unit
  val string : t -> string -> unit
  (** Length-prefixed (u16). *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Count-prefixed (u32). *)

  val array : t -> ('a -> unit) -> 'a array -> unit
  val size : t -> int
  val contents : t -> bytes

  val section : t -> tag:int -> (t -> unit) -> unit
  (** Write a TLV section: u16 tag, u32 length, payload. *)
end

module Reader : sig
  type t

  exception Truncated
  exception Bad_format of string

  val create : bytes -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i32 : t -> int32
  val u64 : t -> int64
  val bool : t -> bool
  val string : t -> string
  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val remaining : t -> int
  val eof : t -> bool

  val section : t -> (tag:int -> t -> 'a) -> 'a
  (** Read one TLV section; the callback receives a reader scoped to the
      payload.  Raises {!Bad_format} if the payload is not fully
      consumed. *)
end

val crc32 : bytes -> int32
(** Standard CRC-32 (IEEE 802.3). *)

val append_crc : bytes -> bytes
val check_crc : bytes -> (bytes, string) result
(** Split and verify the trailing CRC; [Error] explains the mismatch. *)
