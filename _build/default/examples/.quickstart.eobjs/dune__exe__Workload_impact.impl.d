examples/workload_impact.ml: Array Float Format Hv Hw Hypertp List Sim Stdlib String Vmstate Workload
