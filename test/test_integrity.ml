(* Tests for the state-integrity subsystem: the salvage decoder and its
   verdicts, PRAM page CRCs with per-file containment, the seeded
   corruption fuzzer, and the engine wiring (salvage-and-resume in
   InPlaceTP, verify-before-ack in MigrationTP). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let state = lazy (Integrity.Gen.vm_state ~seed:0x5EEDL ())
let blob = lazy (Uisr.Codec.encode (Lazy.force state))

(* --- salvage decoder verdicts --- *)

let test_pristine_intact () =
  let r = Uisr.Codec.decode_verified (Lazy.force blob) in
  (match r.Uisr.Integrity.verdict with
  | Uisr.Integrity.Intact -> ()
  | v -> Alcotest.fail (Format.asprintf "%a" Uisr.Integrity.pp_verdict v));
  (match r.Uisr.Integrity.state with
  | Some s ->
    checkb "state recovered" true (Uisr.Vm_state.equal s (Lazy.force state))
  | None -> Alcotest.fail "no state");
  checkb "no diagnostics" true (Uisr.Integrity.diagnostics r = []);
  checki "all sections ok" r.Uisr.Integrity.sections_total
    r.Uisr.Integrity.sections_ok

let test_salvage_pit () =
  let original = Lazy.force state in
  let mutated =
    Uisr.Codec.corrupt_section ~tag:Uisr.Codec.tag_pit (Lazy.force blob)
  in
  let r = Uisr.Codec.decode_verified mutated in
  match r.Uisr.Integrity.verdict with
  | Uisr.Integrity.Salvaged diags ->
    checkb "diagnostics recorded" true (diags <> []);
    checkb "pit diag named" true
      (List.exists (fun d -> d.Uisr.Integrity.diag_section = "pit") diags);
    (match r.Uisr.Integrity.state with
    | None -> Alcotest.fail "salvage lost the state"
    | Some s ->
      checkb "vcpus preserved" true
        (List.for_all2 Vmstate.Vcpu.equal original.Uisr.Vm_state.vcpus
           s.Uisr.Vm_state.vcpus);
      checkb "devices preserved" true
        (List.length original.Uisr.Vm_state.devices
        = List.length s.Uisr.Vm_state.devices);
      checkb "pit is the reset default" true
        (Vmstate.Pit.equal s.Uisr.Vm_state.pit Uisr.Integrity.default_pit));
    checkb "one section lost" true
      (r.Uisr.Integrity.sections_ok < r.Uisr.Integrity.sections_total)
  | v -> Alcotest.fail (Format.asprintf "%a" Uisr.Integrity.pp_verdict v)

let test_fatal_section_rejected () =
  let mutated =
    Uisr.Codec.corrupt_section ~tag:Uisr.Codec.tag_vcpu (Lazy.force blob)
  in
  let r = Uisr.Codec.decode_verified mutated in
  match r.Uisr.Integrity.verdict with
  | Uisr.Integrity.Rejected d ->
    checkb "vcpu named" true (d.Uisr.Integrity.diag_section = "vcpu");
    checkb "fatal" true d.Uisr.Integrity.diag_fatal
  | v -> Alcotest.fail (Format.asprintf "%a" Uisr.Integrity.pp_verdict v)

let test_envelope_only_damage_recovers_everything () =
  (* Flip a bit inside the outer CRC itself: every section checksum
     still passes, so the whole state comes back — flagged, not lost. *)
  let b = Bytes.copy (Lazy.force blob) in
  let i = Bytes.length b - 2 in
  Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor 1);
  let r = Uisr.Codec.decode_verified b in
  match r.Uisr.Integrity.verdict with
  | Uisr.Integrity.Salvaged diags ->
    checkb "envelope diag" true
      (List.exists
         (fun d -> d.Uisr.Integrity.diag_section = "envelope")
         diags);
    (match r.Uisr.Integrity.state with
    | Some s ->
      checkb "full state recovered" true
        (Uisr.Vm_state.equal s (Lazy.force state))
    | None -> Alcotest.fail "no state")
  | v -> Alcotest.fail (Format.asprintf "%a" Uisr.Integrity.pp_verdict v)

let test_v1_compat () =
  let original = Lazy.force state in
  let b1 = Uisr.Codec.encode_v1 original in
  (match Uisr.Codec.decode b1 with
  | Ok s -> checkb "v1 decode" true (Uisr.Vm_state.equal s original)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Uisr.Codec.pp_error e));
  (match (Uisr.Codec.decode_verified b1).Uisr.Integrity.verdict with
  | Uisr.Integrity.Intact -> ()
  | v -> Alcotest.fail (Format.asprintf "v1 pristine: %a" Uisr.Integrity.pp_verdict v));
  (* v1 has no per-section checksums: any damage rejects the blob. *)
  let r = Uisr.Codec.decode_verified (Uisr.Codec.corrupt b1) in
  match r.Uisr.Integrity.verdict with
  | Uisr.Integrity.Rejected _ -> ()
  | v -> Alcotest.fail (Format.asprintf "v1 corrupt: %a" Uisr.Integrity.pp_verdict v)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_decode_error_carries_offset () =
  (* Satellite: Bad_format diagnostics carry byte offset and section. *)
  let mutated =
    Uisr.Codec.corrupt_section ~tag:Uisr.Codec.tag_vcpu (Lazy.force blob)
  in
  (* Re-frame the outer CRC so the strict decoder reaches the damaged
     section instead of stopping at the envelope. *)
  let mutated =
    Uisr.Wire.append_crc (Bytes.sub mutated 0 (Bytes.length mutated - 4))
  in
  match Uisr.Codec.decode mutated with
  | Error (Uisr.Codec.Malformed msg) ->
    checkb "offset in message" true (contains ~needle:"at byte" msg);
    checkb "section in message" true (contains ~needle:"in section" msg)
  | _ -> Alcotest.fail "expected Malformed"

(* --- corruption mutators --- *)

let prop_mutant_never_intact_decoder_total =
  QCheck.Test.make ~count:300 ~name:"mutant never intact; decoder never raises"
    QCheck.(pair small_nat (int_bound (List.length Integrity.Corrupt.kinds - 1)))
    (fun (seed, k) ->
      let rng = Sim.Rng.create (Int64.of_int (0x1000 + seed)) in
      let kind = List.nth Integrity.Corrupt.kinds k in
      match Integrity.Corrupt.apply rng kind (Lazy.force blob) with
      | None -> true
      | Some mutated -> (
        match Uisr.Codec.decode_verified mutated with
        | exception _ -> false
        | r -> r.Uisr.Integrity.verdict <> Uisr.Integrity.Intact))

let test_fuzz_campaign () =
  let s = Integrity.Fuzz.run ~seed:0xF00DL ~cases:500 () in
  checkb
    (Format.asprintf "campaign passes: %a" Integrity.Fuzz.pp s)
    true (Integrity.Fuzz.ok s);
  checki "all cases ran" 500 s.Integrity.Fuzz.cases;
  checkb "most mutations applicable" true
    (s.Integrity.Fuzz.applied > 450);
  checkb "some damage salvaged" true (s.Integrity.Fuzz.salvaged > 0);
  checkb "some damage rejected" true (s.Integrity.Fuzz.rejected > 0);
  checkb "every mutator exercised" true
    (List.length s.Integrity.Fuzz.by_kind
    = List.length Integrity.Corrupt.kinds);
  (* Equal seeds replay the campaign bit-for-bit. *)
  let s' = Integrity.Fuzz.run ~seed:0xF00DL ~cases:500 () in
  checkb "deterministic" true (s = s')

(* --- PRAM page CRCs --- *)

let rng () = Sim.Rng.create 0x9A4DL

let pram_setup ?(vms = 3) () =
  let pmem = Hw.Pmem.create ~frames:(512 * 256) () in
  let mems =
    List.init vms (fun i ->
        ( Printf.sprintf "vm%d" i,
          Vmstate.Guest_mem.create ~pmem ~rng:(rng ())
            ~bytes:(Hw.Units.mib 32) ~page_kind:Hw.Units.Page_2m () ))
  in
  let inputs =
    List.map
      (fun (n, mem) ->
        (n, Hw.Units.mib 32, Uisr.Vm_state.memmap_of_guest_mem mem))
      mems
  in
  let image = Pram.Build.build ~pmem ~granularity:Hw.Units.Page_2m inputs in
  (pmem, image)

let test_pram_pages_stamped () =
  let _, image = pram_setup () in
  List.iter
    (fun mfn ->
      match Pram.Build.page_content image mfn with
      | None -> Alcotest.fail "file-info page missing"
      | Some page ->
        let stored = Pram.Build.stored_crc page in
        checkb "stamped" true (not (Int32.equal stored 0l));
        checkb "crc valid" true
          (Int32.equal stored (Pram.Build.page_crc page)))
    (Pram.Build.file_info_mfns image)

let test_pram_crc_containment () =
  let pmem, image = pram_setup () in
  let pointer = Pram.Build.pointer_mfn image in
  (* Pristine: every file parses. *)
  (match Pram.Parse.parse_verified ~pmem ~image pointer with
  | Ok outcomes ->
    checkb "all ok" true
      (List.for_all
         (function Pram.Parse.File_ok _ -> true | _ -> false)
         outcomes)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pram.Parse.pp_error e));
  (* Bit-rot in vm1's file-info page: only vm1 is lost. *)
  let damaged_mfn = Pram.Build.corrupt_file image ~index:1 in
  (match Pram.Parse.parse_verified ~pmem ~image pointer with
  | Error e ->
    Alcotest.fail (Format.asprintf "table lost: %a" Pram.Parse.pp_error e)
  | Ok outcomes ->
    checki "three files" 3 (List.length outcomes);
    List.iteri
      (fun i outcome ->
        match (i, outcome) with
        | 1, Pram.Parse.File_damaged (Pram.Parse.Page_crc_mismatch mfn) ->
          checkb "damaged frame identified" true
            (Hw.Frame.Mfn.to_int mfn = Hw.Frame.Mfn.to_int damaged_mfn)
        | 1, _ -> Alcotest.fail "vm1 should be damaged"
        | _, Pram.Parse.File_ok f ->
          Alcotest.check Alcotest.string "sibling name"
            (Printf.sprintf "vm%d" i) f.Pram.Parse.name
        | _, Pram.Parse.File_damaged e ->
          Alcotest.fail
            (Format.asprintf "sibling vm%d damaged: %a" i Pram.Parse.pp_error e))
      outcomes);
  (* The strict parser rejects the whole table on the same damage. *)
  match Pram.Parse.parse ~pmem ~image pointer with
  | Error (Pram.Parse.Page_crc_mismatch _) -> ()
  | Ok _ -> Alcotest.fail "strict parse accepted bit-rot"
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pram.Parse.pp_error e)

let test_pram_legacy_unstamped_accepted () =
  let pmem, image = pram_setup ~vms:1 () in
  (* Zero every CRC slot: a pre-CRC build.  Parses fine. *)
  List.iter
    (fun mfn ->
      match Pram.Build.page_content image mfn with
      | Some page -> Bytes.set_int32_le page Pram.Build.crc_offset 0l
      | None -> ())
    (List.map fst (Pram.Build.metadata_extents image));
  match Pram.Parse.parse ~pmem ~image (Pram.Build.pointer_mfn image) with
  | Ok files -> checki "one file" 1 (List.length files)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Pram.Parse.pp_error e)

(* --- engine wiring --- *)

let small_vm ?(name = "vm0") ?(vcpus = 1) ?(mib = 256)
    ?(workload = Vmstate.Vm.Wl_idle) () =
  Vmstate.Vm.config ~name ~vcpus ~ram:(Hw.Units.mib mib) ~workload ()

let xen_host ?(vms = [ small_vm () ]) () =
  Hypertp.Api.provision ~name:"ih" ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Xen
    vms

let kvm_dst ?(name = "idst") () =
  Hypertp.Api.provision ~name ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Kvm []

let one site trigger = Fault.make [ { Fault.site; trigger } ]

let test_inplace_salvage () =
  let host =
    xen_host
      ~vms:[ small_vm (); small_vm ~name:"vm1" (); small_vm ~name:"vm2" () ]
      ()
  in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Uisr_corrupt (Fault.On_vm "vm1"))
      ~host ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d ->
    checkb "vm1 salvaged" true (List.map fst d.salvaged = [ "vm1" ]);
    checkb "salvage carries diagnostics" true
      (List.for_all (fun (_, diags) -> diags <> []) d.salvaged);
    checkb "nothing quarantined" true (d.quarantined = []);
    checkb "no full reboot" true (not d.full_reboot)
  | o -> Alcotest.fail (Format.asprintf "%a" Hypertp.Inplace.pp_outcome o));
  (* Salvage is a rung above quarantine: the VM survives. *)
  checki "all three VMs survive" 3 (Hv.Host.vm_count host);
  checkb "all running" true
    (List.for_all Vmstate.Vm.is_running (Hv.Host.vms host));
  checkb "checks hold" true (Hypertp.Inplace.all_ok r.Hypertp.Inplace.checks)

let test_inplace_pram_corrupt_quarantines () =
  let host =
    xen_host
      ~vms:[ small_vm (); small_vm ~name:"vm1" (); small_vm ~name:"vm2" () ]
      ()
  in
  let r =
    Hypertp.Api.transplant_inplace
      ~fault:(one Fault.Pram_corrupt (Fault.On_vm "vm1"))
      ~host ~target:Hv.Kind.Kvm ()
  in
  (match r.Hypertp.Inplace.outcome with
  | Hypertp.Inplace.Recovered d ->
    checkb "vm1 quarantined" true (d.quarantined = [ "vm1" ]);
    checkb "nothing salvaged" true (d.salvaged = [])
  | o -> Alcotest.fail (Format.asprintf "%a" Hypertp.Inplace.pp_outcome o));
  checki "two survivors" 2 (Hv.Host.vm_count host);
  checkb "pram check holds for siblings" true
    r.Hypertp.Inplace.checks.Hypertp.Inplace.pram_parse_ok

let test_migrate_state_retransmit () =
  let src = xen_host () and dst = kvm_dst () in
  let r =
    Hypertp.Migrate.run
      ~fault:(one Fault.Uisr_corrupt (Fault.Nth_hit 1))
      ~src ~dst ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  checkb "completed" true (v.Hypertp.Migrate.outcome = Hypertp.Migrate.Completed);
  checki "one retransmit" 1 v.Hypertp.Migrate.state_retransmits;
  checkb "retransmit billed on the wire" true
    (v.Hypertp.Migrate.wire_bytes > v.Hypertp.Migrate.state_bytes);
  checkb "vm landed" true (Hv.Host.vm_count dst = 1 && Hv.Host.vm_count src = 0);
  checkb "memory equal" true r.Hypertp.Migrate.checks.Hypertp.Migrate.memory_equal

let test_migrate_state_corrupt_abort () =
  let src = xen_host () and dst = kvm_dst () in
  let r =
    Hypertp.Migrate.run
      ~fault:(one Fault.Uisr_corrupt (Fault.On_vm "vm0"))
      ~src ~dst ()
  in
  let v = List.hd r.Hypertp.Migrate.per_vm in
  (match v.Hypertp.Migrate.outcome with
  | Hypertp.Migrate.Aborted_state_corruption 3 -> ()
  | o -> Alcotest.fail (Format.asprintf "%a" Hypertp.Migrate.pp_outcome o));
  checki "two retransmits burnt" 2 v.Hypertp.Migrate.state_retransmits;
  (* Non-destructive: the source VM resumes where it paused. *)
  checki "vm stays on source" 1 (Hv.Host.vm_count src);
  checki "nothing on destination" 0 (Hv.Host.vm_count dst);
  checkb "source vm running" true
    (List.for_all Vmstate.Vm.is_running (Hv.Host.vms src))

let test_new_fault_sites_parse () =
  (match Fault.parse_injection "uisr_corrupt:vm=vm1" with
  | Ok { Fault.site = Fault.Uisr_corrupt; trigger = Fault.On_vm "vm1" } -> ()
  | _ -> Alcotest.fail "uisr_corrupt:vm=vm1");
  (match Fault.parse_injection "pram_corrupt:1" with
  | Ok { Fault.site = Fault.Pram_corrupt; trigger = Fault.Nth_hit 1 } -> ()
  | _ -> Alcotest.fail "pram_corrupt:1");
  checkb "engine sites include corruption" true
    (List.mem Fault.Uisr_corrupt Fault.engine_sites
    && List.mem Fault.Pram_corrupt Fault.engine_sites);
  checkb "post-PNR" true
    ((not (Fault.pre_pnr Fault.Uisr_corrupt))
    && not (Fault.pre_pnr Fault.Pram_corrupt))

let suites =
  [
    ( "integrity.decoder",
      [
        Alcotest.test_case "pristine intact" `Quick test_pristine_intact;
        Alcotest.test_case "pit salvage" `Quick test_salvage_pit;
        Alcotest.test_case "fatal section rejected" `Quick
          test_fatal_section_rejected;
        Alcotest.test_case "envelope-only damage" `Quick
          test_envelope_only_damage_recovers_everything;
        Alcotest.test_case "v1 compatibility" `Quick test_v1_compat;
        Alcotest.test_case "error carries offset" `Quick
          test_decode_error_carries_offset;
      ] );
    ( "integrity.fuzz",
      [
        qtest prop_mutant_never_intact_decoder_total;
        Alcotest.test_case "seeded campaign" `Quick test_fuzz_campaign;
      ] );
    ( "integrity.pram",
      [
        Alcotest.test_case "pages stamped" `Quick test_pram_pages_stamped;
        Alcotest.test_case "per-file containment" `Quick
          test_pram_crc_containment;
        Alcotest.test_case "legacy unstamped accepted" `Quick
          test_pram_legacy_unstamped_accepted;
      ] );
    ( "integrity.engines",
      [
        Alcotest.test_case "inplace salvage" `Quick test_inplace_salvage;
        Alcotest.test_case "inplace pram containment" `Quick
          test_inplace_pram_corrupt_quarantines;
        Alcotest.test_case "migrate retransmit" `Quick
          test_migrate_state_retransmit;
        Alcotest.test_case "migrate corrupt abort" `Quick
          test_migrate_state_corrupt_abort;
        Alcotest.test_case "fault sites parse" `Quick
          test_new_fault_sites_parse;
      ] );
  ]
