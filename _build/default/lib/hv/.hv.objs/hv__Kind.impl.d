lib/hv/kind.ml: Format Workload
