lib/vmstate/virtqueue.ml: Array Bool Format Hw Int64 Sim Stdlib
