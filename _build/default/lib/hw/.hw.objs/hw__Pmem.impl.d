lib/hw/pmem.ml: Array Format Frame Hashtbl Int List Option Sim Stdlib
