(* Deterministic sharded execution of independent simulation tasks.

   A fleet simulation is partitioned into region shards, each a pure
   function of its index (own [Engine], own derived seed).  [map] runs
   the tasks under one of three schedules — sequential, rotated
   batches, or parallel on stdlib domains — and always returns results
   in task-index order.  Because every task is independent and
   deterministic, all three schedules produce identical result arrays;
   the mode only decides wall-clock, never bytes.  The qcheck suite
   pins exactly that. *)

type mode =
  | Sequential
  | Rotated of int
  | Parallel of { shards : int; domains : int }

let validate = function
  | Sequential -> Ok ()
  | Rotated k ->
    if k >= 1 then Ok ()
    else Error (Printf.sprintf "rotation count must be >= 1 (got %d)" k)
  | Parallel { shards; domains } ->
    if shards >= 1 && domains >= 1 then Ok ()
    else
      Error
        (Printf.sprintf
           "parallel shards and domains must be >= 1 (got %dx%d)" shards
           domains)

let to_string = function
  | Sequential -> "seq"
  | Rotated k -> Printf.sprintf "rotated:%d" k
  | Parallel { shards; domains } -> Printf.sprintf "parallel:%dx%d" shards domains

let of_string s =
  let int_of v = match int_of_string_opt v with
    | Some i when i >= 1 -> Some i
    | _ -> None
  in
  match String.split_on_char ':' (String.trim s) with
  | [ ("seq" | "sequential") ] -> Ok Sequential
  | [ ("rotated" | "rot"); k ] -> (
    match int_of k with
    | Some k -> Ok (Rotated k)
    | None -> Error (Printf.sprintf "bad rotation count %S" k))
  | [ ("parallel" | "par"); spec ] -> (
    match String.split_on_char 'x' spec with
    | [ sh; dm ] -> (
      match (int_of sh, int_of dm) with
      | Some shards, Some domains -> Ok (Parallel { shards; domains })
      | _ -> Error (Printf.sprintf "bad parallel spec %S (want SHARDSxDOMAINS)" spec))
    | [ sh ] -> (
      match int_of sh with
      | Some shards -> Ok (Parallel { shards; domains = shards })
      | None -> Error (Printf.sprintf "bad parallel spec %S" spec))
    | _ -> Error (Printf.sprintf "bad parallel spec %S (want SHARDSxDOMAINS)" spec))
  | _ ->
    Error
      (Printf.sprintf
         "unknown sharding mode %S (want seq, rotated:K or parallel:SxD)" s)

(* How many worker batches / domains a mode uses over [n] tasks; the
   answer feeds benchmark metadata, not scheduling decisions. *)
let shards_used mode n =
  match mode with
  | Sequential -> 1
  | Rotated k -> Stdlib.min (Stdlib.max 1 k) (Stdlib.max 1 n)
  | Parallel { shards; _ } -> Stdlib.min (Stdlib.max 1 shards) (Stdlib.max 1 n)

let domains_used mode n =
  match mode with
  | Sequential | Rotated _ -> 1
  | Parallel { domains; _ } as m -> Stdlib.min (Stdlib.max 1 domains) (shards_used m n)

let map mode n f =
  if n < 0 then invalid_arg "Shard.map: negative task count";
  (match validate mode with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Shard.map: " ^ msg));
  let out = Array.make n None in
  let run i = out.(i) <- Some (f i) in
  (match mode with
  | Sequential -> for i = 0 to n - 1 do run i done
  | Rotated k ->
    (* k rotation batches: batch r serves tasks r, r+k, r+2k, ...  A
       different execution order from Sequential, the same results. *)
    let k = Stdlib.min (Stdlib.max 1 k) (Stdlib.max 1 n) in
    for r = 0 to k - 1 do
      let i = ref r in
      while !i < n do
        run !i;
        i := !i + k
      done
    done
  | Parallel { shards; domains } ->
    (* Contiguous chunks dealt to domains through an atomic counter.
       Each result lands in its own slot, so no ordering between
       domains is observable; [Domain.join] publishes the writes. *)
    let shards = Stdlib.min (Stdlib.max 1 shards) (Stdlib.max 1 n) in
    let chunk = (n + shards - 1) / shards in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let c = Atomic.fetch_and_add next 1 in
        if c >= shards || Atomic.get failed <> None then continue_ := false
        else
          let lo = c * chunk and hi = Stdlib.min n ((c + 1) * chunk) in
          try
            for i = lo to hi - 1 do
              run i
            done
          with e -> ignore (Atomic.compare_and_set failed None (Some e))
      done
    in
    let workers = Stdlib.min (Stdlib.max 1 domains) shards in
    if workers <= 1 then worker ()
    else begin
      let doms = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join doms
    end;
    (match Atomic.get failed with Some e -> raise e | None -> ()));
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Shard.map: task produced no result")
    out
