type t = {
  prepare_before_pause : bool;
  parallel_translation : bool;
  huge_page_pram : bool;
  early_restoration : bool;
  restore_retry_limit : int;
}

let default =
  {
    prepare_before_pause = true;
    parallel_translation = true;
    huge_page_pram = true;
    early_restoration = true;
    restore_retry_limit = 2;
  }

let all_off =
  {
    prepare_before_pause = false;
    parallel_translation = false;
    huge_page_pram = false;
    early_restoration = false;
    restore_retry_limit = 2;
  }

let pp fmt t =
  let flag name v = if v then name else "no-" ^ name in
  Format.fprintf fmt "{%s %s %s %s retries=%d}"
    (flag "prepare" t.prepare_before_pause)
    (flag "parallel" t.parallel_translation)
    (flag "hugepage" t.huge_page_pram)
    (flag "early-restore" t.early_restoration)
    t.restore_retry_limit
