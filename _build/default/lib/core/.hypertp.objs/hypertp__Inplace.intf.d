lib/core/inplace.mli: Format Hv Options Phases Pram Sim Uisr
