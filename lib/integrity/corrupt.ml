(* Seeded mutators over encoded UISR blobs.  Each mutator draws from the
   caller's Sim.Rng stream, so a fuzz campaign is reproducible from its
   seed alone.  [apply] guarantees the mutated blob differs from the
   input — a mutation that lands on a no-op is reported as inapplicable
   rather than silently passed through, so the "never classify a mutant
   as Intact" property is meaningful for every applied case. *)

type kind = Bit_flip | Truncate | Duplicate_section | Length_lie | Semantic

let kinds = [ Bit_flip; Truncate; Duplicate_section; Length_lie; Semantic ]

let kind_name = function
  | Bit_flip -> "bit_flip"
  | Truncate -> "truncate"
  | Duplicate_section -> "duplicate_section"
  | Length_lie -> "length_lie"
  | Semantic -> "semantic"

(* v2 blob layout, tracking Codec: magic(4) + version(2) + flags(1),
   sections from byte 7 framed as tag u16 / len u32 / payload / crc u32
   (when the flags bit is set), outer CRC32 in the last 4 bytes. *)
let body_start = 7
let header_bytes = 6
let section_trailer blob = if Bytes.get_uint8 blob 6 land 0x01 <> 0 then 4 else 0

let sections blob =
  let len = Bytes.length blob in
  let trailer = section_trailer blob in
  let rec walk pos acc =
    if pos + header_bytes > len - 4 then List.rev acc
    else
      let tag = Bytes.get_uint16_le blob pos in
      let slen = Int32.to_int (Bytes.get_int32_le blob (pos + 2)) in
      if slen < 0 || pos + header_bytes + slen + trailer > len - 4 then
        List.rev acc
      else walk (pos + header_bytes + slen + trailer) ((pos, tag, slen) :: acc)
  in
  walk body_start []

let strip_outer blob = Bytes.sub blob 0 (Bytes.length blob - 4)
let pick rng l = List.nth l (Sim.Rng.int rng (List.length l))

let bit_flip rng blob =
  let b = Bytes.copy blob in
  let i = Sim.Rng.int rng (Bytes.length b) in
  let bit = Sim.Rng.int rng 8 in
  Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl bit));
  Some b

let truncate rng blob =
  let len = Bytes.length blob in
  if len < 2 then None else Some (Bytes.sub blob 0 (Sim.Rng.int rng (len - 1)))

(* Append a copy of an existing section and re-frame the outer CRC, so
   the envelope checks pass and the mutation exercises the scan loop's
   duplicate handling (singleton sections) or the semantic validator
   (duplicated vCPUs or devices). *)
let duplicate_section rng blob =
  match sections blob with
  | [] -> None
  | secs ->
    let pos, _, slen = pick rng secs in
    let trailer = section_trailer blob in
    let sect = header_bytes + slen + trailer in
    let body = strip_outer blob in
    let b = Bytes.create (Bytes.length body + sect) in
    Bytes.blit body 0 b 0 (Bytes.length body);
    Bytes.blit body pos b (Bytes.length body) sect;
    Some (Uisr.Wire.append_crc b)

(* Make one section's length field claim more payload than the blob
   holds, with a valid outer CRC: only the framing sanity check in the
   scan loop can catch it. *)
let length_lie rng blob =
  match sections blob with
  | [] -> None
  | secs ->
    let pos, _, _ = pick rng secs in
    let body = strip_outer blob in
    let b = Bytes.copy body in
    let lie = Bytes.length body + 1 + Sim.Rng.int rng 4096 in
    Bytes.set_int32_le b (pos + 2) (Int32.of_int lie);
    Some (Uisr.Wire.append_crc b)

(* CRC-preserving corruption: decode, break a semantic invariant in the
   typed state, re-encode.  Every checksum passes; only the semantic
   validator stands between the mutant and an Intact verdict. *)
let semantic rng blob =
  match Uisr.Codec.decode blob with
  | Error _ -> None
  | Ok (state : Uisr.Vm_state.t) ->
    let state' =
      match Sim.Rng.int rng 3 with
      | 0 -> (
        (* duplicate vCPU index *)
        match state.vcpus with
        | v :: _ -> { state with Uisr.Vm_state.vcpus = v :: state.vcpus }
        | [] -> state)
      | 1 -> (
        (* reserved MTRR default memory type *)
        match state.vcpus with
        | v :: rest ->
          let mtrr = { v.Vmstate.Vcpu.mtrr with Vmstate.Mtrr.def_type = 2 } in
          {
            state with
            Uisr.Vm_state.vcpus = { v with Vmstate.Vcpu.mtrr } :: rest;
          }
        | [] -> state)
      | _ -> (
        (* overlapping memory-map entries *)
        match state.memmap with
        | e :: _ -> { state with Uisr.Vm_state.memmap = e :: state.memmap }
        | [] -> state)
    in
    if state' == state then None else Some (Uisr.Codec.encode state')

let apply rng kind blob =
  let mutated =
    match kind with
    | Bit_flip -> bit_flip rng blob
    | Truncate -> truncate rng blob
    | Duplicate_section -> duplicate_section rng blob
    | Length_lie -> length_lie rng blob
    | Semantic -> semantic rng blob
  in
  match mutated with
  | Some b when not (Bytes.equal b blob) -> Some b
  | Some _ | None -> None
