lib/core/snapshot.mli: Hv Uisr
