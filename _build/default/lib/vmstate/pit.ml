type channel = {
  count : int;
  latched_count : int;
  status : int;
  read_state : int;
  write_state : int;
  mode : int;
  bcd : bool;
  gate : bool;
}

type t = { channels : channel array; speaker_data_on : bool }

let generate rng =
  let channel i =
    {
      count = Sim.Rng.int rng 0x10000;
      latched_count = Sim.Rng.int rng 0x10000;
      status = Sim.Rng.int rng 0x100;
      read_state = Sim.Rng.int rng 4;
      write_state = Sim.Rng.int rng 4;
      mode = (if i = 0 then 2 (* rate generator for the tick *) else Sim.Rng.int rng 6);
      bcd = false;
      gate = i <> 2 || Sim.Rng.int rng 2 = 0;
    }
  in
  { channels = Array.init 3 channel; speaker_data_on = false }

let equal a b =
  Array.for_all2 (fun (x : channel) y -> x = y) a.channels b.channels
  && Bool.equal a.speaker_data_on b.speaker_data_on

let pp fmt t =
  Format.fprintf fmt "pit[ch0 mode=%d count=%d]" t.channels.(0).mode
    t.channels.(0).count
