(** Minimal xenstore: the hierarchical key-value store Xen's toolstack
    keeps VM metadata in.  Part of VM Management State — rebuilt from
    domain records after transplant, never translated. *)

type t

val create : unit -> t
val write : t -> string -> string -> unit
val read : t -> string -> string option
val rm : t -> string -> unit
(** Remove a path and everything below it. *)

val list : t -> string -> string list
(** Immediate children names of a directory path, sorted. *)

val entries : t -> int

val register_domain :
  t -> domid:int -> name:string -> memory_kib:int -> vcpus:int -> unit

val unregister_domain : t -> domid:int -> unit
val domain_ids : t -> int list
