lib/vmstate/lapic.mli: Format Sim
