lib/workload/darknet.ml: Float List Profile Sched Sim
