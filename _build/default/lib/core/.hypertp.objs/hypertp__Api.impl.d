lib/core/api.ml: Bhyvehv Cve Hv Inplace Kvmhv List Migrate Xenhv
