type labels = (string * string) list

type kind = Counter | Gauge | Histogram

type instrument = {
  name : string;
  help : string;
  labels : labels; (* sorted by key *)
  kind : kind;
  mutable value : float; (* counter total / gauge level *)
  buckets : float array; (* upper bounds, strictly increasing *)
  bucket_counts : int array; (* length = Array.length buckets + 1 (+Inf) *)
  mutable observations : int;
  mutable sum : float;
  mutable rev_samples : float list; (* retained for Stats summaries *)
  mutable retained : int;
}

type counter = instrument
type gauge = instrument
type histogram = instrument

(* Raw samples kept per histogram for Sim.Stats summaries; beyond this
   the buckets/sum/count still update but samples stop accumulating, so
   memory stays bounded. *)
let sample_retention = 4096

type t = {
  tbl : (string * labels, instrument) Hashtbl.t;
}

let create () = { tbl = Hashtbl.create 32 }

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let register t ~name ~help ~labels ~kind ~buckets =
  if name = "" then invalid_arg "Metrics: empty metric name";
  let labels = sort_labels labels in
  match Hashtbl.find_opt t.tbl (name, labels) with
  | Some i ->
    if i.kind <> kind then
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name
           (kind_to_string i.kind));
    i
  | None ->
    let rec increasing = function
      | a :: (b :: _ as rest) ->
        if a >= b then
          invalid_arg "Metrics: histogram buckets must be strictly increasing"
        else increasing rest
      | _ -> ()
    in
    increasing buckets;
    let buckets = Array.of_list buckets in
    let i =
      {
        name;
        help;
        labels;
        kind;
        value = 0.0;
        buckets;
        bucket_counts = Array.make (Array.length buckets + 1) 0;
        observations = 0;
        sum = 0.0;
        rev_samples = [];
        retained = 0;
      }
    in
    Hashtbl.replace t.tbl (name, labels) i;
    i

let counter t ?(labels = []) ?(help = "") name =
  register t ~name ~help ~labels ~kind:Counter ~buckets:[]

let gauge t ?(labels = []) ?(help = "") name =
  register t ~name ~help ~labels ~kind:Gauge ~buckets:[]

let histogram t ?(labels = []) ?(help = "") ~buckets name =
  if buckets = [] then invalid_arg "Metrics.histogram: no buckets";
  register t ~name ~help ~labels ~kind:Histogram ~buckets

let expect i kind op =
  if i.kind <> kind then
    invalid_arg
      (Printf.sprintf "Metrics.%s: %s is a %s" op i.name
         (kind_to_string i.kind))

let inc ?(by = 1.0) i =
  expect i Counter "inc";
  if by < 0.0 then invalid_arg "Metrics.inc: counters only go up";
  i.value <- i.value +. by

let set i v =
  expect i Gauge "set";
  i.value <- v

let value i = i.value

(* Prometheus-style upper-bound-inclusive assignment: bucket [j] counts
   values [v <= buckets.(j)]; the last (+Inf) bucket takes the rest.  A
   value exactly on a boundary lands in the bucket whose bound it
   equals. *)
let bucket_index i v =
  expect i Histogram "bucket_index";
  let n = Array.length i.buckets in
  let rec find j = if j >= n then n else if v <= i.buckets.(j) then j else find (j + 1) in
  find 0

let observe i v =
  expect i Histogram "observe";
  let j = bucket_index i v in
  i.bucket_counts.(j) <- i.bucket_counts.(j) + 1;
  i.observations <- i.observations + 1;
  i.sum <- i.sum +. v;
  if i.retained < sample_retention then begin
    i.rev_samples <- v :: i.rev_samples;
    i.retained <- i.retained + 1
  end

let observations i = i.observations
let sum i = i.sum
let bucket_bounds i = Array.to_list i.buckets
let bucket_counts i = Array.to_list i.bucket_counts

let summary i =
  expect i Histogram "summary";
  match i.rev_samples with
  | [] -> None
  | samples -> Some (Sim.Stats.summarize samples)

let name i = i.name
let instrument_labels i = i.labels
let instrument_kind i = i.kind
let help i = i.help

let instruments t =
  let all = Hashtbl.fold (fun _ i acc -> i :: acc) t.tbl [] in
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> Stdlib.compare a.labels b.labels
      | c -> c)
    all
