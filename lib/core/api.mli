(** The unified HyperTP entry points: hypervisor registry, host
    provisioning and the CVE-driven transplant decision of Fig. 1(b). *)

val hypervisor_of : Hv.Kind.t -> (module Hv.Intf.S)
(** The HyperTP-compliant hypervisor repertoire (Xen and KVM). *)

val provision :
  ?seed:int64 -> name:string -> machine:Hw.Machine.t -> hv:Hv.Kind.t ->
  Vmstate.Vm.config list -> Hv.Host.t
(** Boot a host with the given hypervisor and create its VMs. *)

type outcome =
  [ `Applied of Inplace.report
    (** the advice was a transplant and [`Apply] mode ran InPlaceTP *)
  | `Advised of Hv.Kind.t
    (** the advice was a transplant but [`Advise] mode left the host
        untouched; the payload is the recommended target *)
  | `No_action  (** the running hypervisor is not affected *)
  | `No_safe_alternative
    (** every hypervisor in the fleet repertoire is affected *) ]

type response = { advice : Cve.Window.advice; outcome : outcome }

val respond_to_cve :
  ?ctx:Ctx.t -> ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  host:Hv.Host.t -> cve_id:string -> mode:[ `Advise | `Apply ] -> unit ->
  response
(** The operator's one-click flow: look the CVE up, ask the policy for
    a safe alternate in the fleet repertoire and — in [`Apply] mode,
    when the advice is a transplant — run InPlaceTP.  [`Advise] mode
    never mutates the host; the outcome distinguishes "advised but not
    applied" ([`Advised target]) from "no transplant needed"
    ([`No_action] / [`No_safe_alternative]).  Raises {!Error.Error}
    (site ["Api.respond_to_cve"]) on an unknown CVE id or a host
    without a hypervisor. *)

val respond_to_cve_legacy :
  ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t -> host:Hv.Host.t ->
  cve_id:string -> ?apply:bool -> unit -> response
(** Deprecated pre-[mode] spelling: [?apply:true] (the default) is
    [`Apply], [false] is [`Advise].  Thin wrapper over
    {!respond_to_cve}; produces identical responses. *)

val applied_report : response -> Inplace.report option
(** [Some report] iff the outcome is [`Applied] — convenience for
    callers that only care whether a transplant ran. *)

val transplant_inplace :
  ?ctx:Ctx.t -> ?options:Options.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t -> host:Hv.Host.t ->
  target:Hv.Kind.t -> unit -> Inplace.report
(** InPlaceTP against a {!Hv.Kind.t} target.  Run knobs may be bundled
    as [?ctx] ({!Ctx.t}); the individual optional arguments are
    deprecated wrappers that override the matching [ctx] field. *)

val transplant_migration :
  ?ctx:Ctx.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  ?retry:Migrate.retry_params -> ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t ->
  src:Hv.Host.t -> dst:Hv.Host.t -> ?vm_names:string list -> unit ->
  Migrate.report
(** MigrationTP (or the homogeneous baseline).  Same [?ctx] contract as
    {!transplant_inplace}; [retry] stays separate. *)

val transplant_shadow :
  ?ctx:Ctx.t -> ?rng:Sim.Rng.t -> ?fault:Fault.t ->
  ?retry:Migrate.retry_params -> ?obs:Obs.Tracer.t -> ?metrics:Obs.Metrics.t ->
  ?params:Migration.Shadow.params -> ?ladder:bool -> src:Hv.Host.t ->
  spare:Hv.Host.t -> target:Hv.Kind.t -> ?vm_names:string list -> unit ->
  Migrate.shadow_report
(** Shadow-host MigrationTP against a {!Hv.Kind.t} target
    ({!Migrate.run_shadow} with the module resolved from the
    repertoire): pre-stage on [spare], stream + converge while [src]
    serves, swap atomically; any pre-swap fault aborts with the source
    verified intact and walks the degradation ladder. *)
