type t = { gfn : Hw.Frame.Gfn.t; mfn : Hw.Frame.Mfn.t; order : int }

let max_order = 9
let gfn_bits = 26
let mfn_bits = 32
let order_bits = 6

let create ~gfn ~mfn ~order =
  if order < 0 || order > max_order then invalid_arg "Pram.Entry: bad order";
  if Hw.Frame.Gfn.to_int gfn >= 1 lsl gfn_bits then
    invalid_arg "Pram.Entry: gfn exceeds field width";
  if Hw.Frame.Mfn.to_int mfn >= 1 lsl mfn_bits then
    invalid_arg "Pram.Entry: mfn exceeds field width";
  { gfn; mfn; order }

let frames t = 1 lsl t.order

let pack t =
  let g = Int64.of_int (Hw.Frame.Gfn.to_int t.gfn) in
  let m = Int64.of_int (Hw.Frame.Mfn.to_int t.mfn) in
  let o = Int64.of_int t.order in
  Int64.logor
    (Int64.shift_left g (mfn_bits + order_bits))
    (Int64.logor (Int64.shift_left m order_bits) o)

let unpack packed =
  let mask bits = Int64.sub (Int64.shift_left 1L bits) 1L in
  let o = Int64.to_int (Int64.logand packed (mask order_bits)) in
  let m =
    Int64.to_int
      (Int64.logand (Int64.shift_right_logical packed order_bits) (mask mfn_bits))
  in
  let g =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical packed (mfn_bits + order_bits))
         (mask gfn_bits))
  in
  create ~gfn:(Hw.Frame.Gfn.of_int g) ~mfn:(Hw.Frame.Mfn.of_int m) ~order:o

let of_memmap_entry ~granularity (e : Uisr.Vm_state.memmap_entry) =
  match granularity with
  | Hw.Units.Page_4k ->
    List.init e.frames (fun i ->
        create
          ~gfn:(Hw.Frame.Gfn.add e.gfn i)
          ~mfn:(Hw.Frame.Mfn.add e.mfn i)
          ~order:0)
  | Hw.Units.Page_2m ->
    (* Split into maximal power-of-two, naturally-aligned runs. *)
    let rec go gfn mfn frames acc =
      if frames = 0 then List.rev acc
      else begin
        let rec largest o =
          if o < max_order && 1 lsl (o + 1) <= frames
             && Hw.Frame.Mfn.to_int mfn mod (1 lsl (o + 1)) = 0
          then largest (o + 1)
          else o
        in
        let order = largest 0 in
        let n = 1 lsl order in
        go (Hw.Frame.Gfn.add gfn n) (Hw.Frame.Mfn.add mfn n) (frames - n)
          (create ~gfn ~mfn ~order :: acc)
      end
    in
    go e.gfn e.mfn e.frames []

let equal a b =
  Hw.Frame.Gfn.equal a.gfn b.gfn && Hw.Frame.Mfn.equal a.mfn b.mfn
  && a.order = b.order

let compare a b =
  match Hw.Frame.Gfn.compare a.gfn b.gfn with
  | 0 -> Int.compare a.order b.order
  | c -> c

let pp fmt t =
  Format.fprintf fmt "%a -> %a x%d" Hw.Frame.Gfn.pp t.gfn Hw.Frame.Mfn.pp
    t.mfn (frames t)
