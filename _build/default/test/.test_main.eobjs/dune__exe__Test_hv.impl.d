test/test_hv.ml: Alcotest Hashtbl Hv Hw Int64 Kvmhv List Option Vmstate Workload Xenhv
