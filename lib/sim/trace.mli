(** Time-series traces for application timelines (Figures 11 and 12).

    A trace records (time, value) samples — e.g. Redis QPS sampled once a
    second — plus labelled markers for events such as "transplant starts". *)

type t

val create : name:string -> unit -> t
val name : t -> string

val add : t -> Time.t -> float -> unit
(** Samples must be added in non-decreasing time order. *)

val mark : t -> Time.t -> string -> unit
(** Attach a labelled marker (rendered alongside the series). *)

val samples : t -> (Time.t * float) list
(** In insertion (time) order. *)

val markers : t -> (Time.t * string) list

val bucketize : t -> width:Time.t -> (Time.t * float) list
(** Average samples into fixed-width buckets; buckets with no samples are
    reported as 0 (a paused application produces no work). *)

val between : t -> Time.t -> Time.t -> (Time.t * float) list
(** Samples with [start <= time < stop]. *)

val mean_between : t -> Time.t -> Time.t -> float
(** Mean value over a window; 0 if the window holds no samples. *)

val pp : Format.formatter -> t -> unit
(** Render as aligned "t value" rows with markers interleaved in
    chronological order.  Tie-break: when a marker and a sample share a
    timestamp, the marker renders before the sample — the marker names
    the event that explains the reading that follows it.  Markers
    sharing a timestamp keep their insertion order. *)
