lib/kvm/kvmtool.mli: Hw
