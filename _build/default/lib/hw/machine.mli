(** Machine catalog and calibrated cost parameters.

    The work performed by every transplant phase (pages walked, PRAM
    entries written, bytes encoded, frames reserved) is computed from the
    actual simulated data structures; the parameters below convert those
    work quantities into virtual time.  They are calibrated against the
    paper's measurements on its M1/M2 testbeds and on the Grid'5000
    cluster nodes (Table 3 and section 5.1); EXPERIMENTS.md records
    paper-vs-simulated values for every experiment. *)

type costs = {
  cpu_factor : float;
  (** Per-thread compute slowdown relative to M1's 2.5 GHz i5 (>= 1 is
      slower). Applied to CPU-bound management work. *)
  mgmt_factor : float;
  (** Toolstack/NUMA overhead multiplier for hypervisor management
      operations (domain save/restore ioctls); dual-socket machines pay
      cross-node round-trips. *)
  mem_factor : float;
  (** Memory-walk slowdown for page-table / PRAM traversal. *)
  dom0_device_init : Sim.Time.t;
  (** Device re-initialisation paid by a type-I hypervisor's dom0 during
      boot (disks, buses).  Type-II boots pay it as part of the kernel
      boot formula instead. *)
}

type t = {
  name : string;
  cpu : Cpu.t;
  ram : Units.bytes_;
  nic : Nic.t;
  reserved_threads : int;  (** threads pinned to the administration OS *)
  costs : costs;
}

val create :
  name:string -> cpu:Cpu.t -> ram:Units.bytes_ -> nic:Nic.t ->
  ?reserved_threads:int -> costs:costs -> unit -> t

val m1 : unit -> t
(** Intel i5-8400H, 4c/8t 2.5 GHz, 16 GiB, 1 Gbps (paper Table 3). *)

val m2 : unit -> t
(** 2x Xeon E5-2650L v4, 14c/28t 1.7 GHz, 64 GiB, 1 Gbps (paper Table 3). *)

val g5k_node : unit -> t
(** Grid'5000 cluster node: 2x Xeon E5-2630 v3, 96 GiB, 10 Gbps
    (paper section 5.1). *)

val worker_threads : t -> int
(** Threads available to parallelise transplant work (all threads minus
    the reserved administration threads). *)

val fresh_pmem : ?seed:int64 -> t -> Pmem.t
(** A physical-memory instance sized for this machine. *)

val max_vms : t -> vm_ram:Units.bytes_ -> int
(** How many VMs of [vm_ram] fit, keeping 2 GiB for the administration
    OS and the hypervisor ("our smallest machine (M1) can host up to 12
    VMs" of 1 GiB — section 5.2.1). *)

val pp : Format.formatter -> t -> unit
