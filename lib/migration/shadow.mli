(** Shadow-host cutover planning: the protocol layer of shadow-host
    MigrationTP.

    Classic MigrationTP (section 4.3) evacuates a VM with its full
    stop-and-copy downtime.  The shadow-host strategy instead
    pre-stages the {e target} hypervisor on a spare host, streams the
    checkpoint while the source keeps serving traffic, buffers and
    replays dirty state in bounded rounds — the same dirty-rate
    recurrence as {!Precopy}, but with a deeper replay budget and a
    much smaller cutover threshold — and finally swaps identities
    atomically.  Downtime shrinks to the final dirty set plus the swap
    handshake; everything else happens while the VM runs.

    The protocol is a five-phase transaction:

    {v stage -> stream -> converge -> swap -> reclaim v}

    Every phase before [swap] is abortable: nothing the protocol did so
    far has touched the source, so an abort simply discards the
    shadow's half-built state and the source keeps running.  The abort
    matrix and the strategy-degradation ladder (shadow -> classic
    MigrationTP -> defer) live in [Hypertp.Migrate.run_shadow]; this
    module owns the analytic plan, the convergence watchdog and the
    fault-aware stream walk.

    Divergence is the watchdog's business, not an error: a guest that
    dirties faster than the replay link drains is detected — a replay
    round that fails to shrink below [watchdog_shrink] x its
    predecessor, on a cancellable {!Sim.Engine} timer in the live
    engine — and reported as a {!verdict}, so the caller can degrade
    the strategy instead of looping forever. *)

(** The five protocol phases, in execution order. *)
type phase = Stage | Stream | Converge | Swap | Reclaim

val all_phases : phase list
val phase_to_string : phase -> string
val pp_phase : Format.formatter -> phase -> unit

type params = {
  precopy : Precopy.params;  (** link model shared with classic pre-copy *)
  stage_boot : Sim.Time.t;
      (** booting + pre-staging the target hypervisor on the spare —
          paid while the source serves, never inside the downtime *)
  swap_rtts : int;  (** identity-swap handshake round-trips (>= 1) *)
  replay_budget : int;
      (** replay-round cap; deeper than the classic [max_rounds]
          because replay rounds cost no downtime *)
  cutover_threshold_pages : int;
      (** swap once the dirty set shrinks below this (a few pages) *)
  watchdog_shrink : float;
      (** a replay round must shrink below this fraction of its
          predecessor or the watchdog declares divergence; in (0, 1) *)
}

val default_params : nic:Hw.Nic.t -> ?streams:int -> unit -> params
(** Classic {!Precopy.default_params} link model, 20 s stage boot,
    3-RTT swap handshake, replay budget 32, cutover threshold 8 pages,
    watchdog shrink 0.9. *)

type verdict =
  | Converging
  | Diverging of int
      (** the watchdog tripped at this replay-round index (or the
          replay budget ran out with the dirty set still above the
          threshold) *)

val pp_verdict : Format.formatter -> verdict -> unit

type plan = {
  stream_round : Precopy.round;  (** round 0: the full checkpoint *)
  replay_rounds : Precopy.round list;  (** buffered replay, rounds 1.. *)
  verdict : verdict;
  violator : Precopy.round option;
      (** the non-shrinking round behind a [Diverging] verdict, so the
          engine watchdog can be driven over
          [stream_round :: replay_rounds @ [violator]] and trip at the
          same index {!watchdog_verdict} reports; [None] when
          converging or when the replay {e budget} ran out with every
          round still shrinking *)
  final_pages : int;  (** dirty set crossed during the swap; 0 if diverging *)
  stream_time : Sim.Time.t;
  converge_time : Sim.Time.t;
  cutover_downtime : Sim.Time.t;
      (** final dirty set + one propagation latency + the swap
          handshake; {!Sim.Time.zero} when diverging (no swap) *)
  wire_bytes : Hw.Units.bytes_;  (** framing included, like {!Precopy} *)
}

val plan :
  params -> page_bytes:int -> total_pages:int -> dirty_pages_per_sec:float ->
  plan
(** Closed-form shadow plan: one full stream round, then the
    {!Precopy} dirty recurrence under the shadow replay budget, with
    the watchdog shrink rule applied to every replay round.  Unlike
    {!Precopy.plan} a non-convergent rate is {e not} an error here —
    it comes back as [Diverging] so the caller can walk the
    degradation ladder.  Raises [Invalid_argument] on non-positive
    page counts or a negative/non-finite dirty rate. *)

val watchdog_verdict : params -> Precopy.round list -> verdict
(** The pure watchdog rule over a round list whose head is the
    baseline (the stream round): the first subsequent round whose
    pages fail to shrink below [watchdog_shrink] x its predecessor's
    trips it, reported by its 1-based position.  The engine's
    timer-based watchdog ({!run_watchdog}) and the analytic {!plan}
    both reduce to this rule; note a {!plan}'s [replay_rounds] only
    ever contain shrinking rounds — the violator is excluded and named
    by the [Diverging] index. *)

type watchdog_outcome =
  | Watchdog_passed of Sim.Time.t  (** converge wall clock *)
  | Watchdog_tripped of { trip_round : int; wall : Sim.Time.t }

val run_watchdog :
  params -> engine:Sim.Engine.t -> rounds:Precopy.round list ->
  watchdog_outcome
(** Drive the replay rounds through a discrete-event engine with a
    {e cancellable deadline timer} per round: round [i]'s deadline is
    [watchdog_shrink] x round [i-1]'s duration; the completion event
    cancels the timer, the timer firing first (ties included — equal
    durations are non-shrinking) trips the watchdog and abandons the
    remaining rounds.  The outcome provably agrees with
    {!watchdog_verdict} on the same rounds; what the engine adds is
    the timer fire/cancel record (via {!Sim.Engine.set_timer_hook})
    and virtual-time wall clocks.  The engine's queue is drained when
    this returns. *)

type stream_outcome =
  | Stream_ok of plan  (** converged; ready to swap *)
  | Stream_dropped of {
      drop_round : int;
      spent : Sim.Time.t;  (** wire time burnt before the drop *)
      wasted_bytes : Hw.Units.bytes_;
    }  (** {!Fault.Shadow_stream_drop} killed the checkpoint stream *)
  | Stream_diverged of plan  (** watchdog verdict; [plan.verdict = Diverging] *)

val attempt_stream :
  params -> ?fault:Fault.t -> ?vm:string -> page_bytes:int ->
  total_pages:int -> dirty_pages_per_sec:float -> unit -> stream_outcome
(** One fault-aware walk of the stream + converge phases for one VM.
    {!Fault.Shadow_diverge} is consulted once (per VM): when it fires,
    the effective dirty rate is inflated past the link rate, so the
    watchdog genuinely detects the divergence rather than being told
    about it.  {!Fault.Shadow_stream_drop} is consulted once per round
    walked (stream round included); firing kills the stream at that
    round with the time and bytes burnt so far.  Nothing here touches
    source or destination memory — the walk is analytic, which is what
    makes every abort provably source-intact. *)

val pp_plan : Format.formatter -> plan -> unit
