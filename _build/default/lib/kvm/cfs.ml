type thread_ref = { vm_name : string; vcpu_index : int }

module Key = struct
  type t = float * string * int (* vruntime, name, vcpu: total order *)

  let compare (a1, a2, a3) (b1, b2, b3) =
    match Float.compare a1 b1 with
    | 0 -> (
      match String.compare a2 b2 with 0 -> Int.compare a3 b3 | c -> c)
    | c -> c
end

module Tree = Map.Make (Key)

type t = { mutable tree : thread_ref Tree.t; mutable clock : float }

let create () = { tree = Tree.empty; clock = 0.0 }

let enqueue_vm t ~vm_name ~vcpus =
  for vcpu_index = 0 to vcpus - 1 do
    (* New tasks start at min_vruntime so they do not starve others. *)
    t.tree <-
      Tree.add (t.clock, vm_name, vcpu_index) { vm_name; vcpu_index } t.tree
  done

let dequeue_vm t ~vm_name =
  t.tree <-
    Tree.filter (fun _ thread -> not (String.equal thread.vm_name vm_name)) t.tree

let runnable t = Tree.cardinal t.tree

let min_vruntime t =
  match Tree.min_binding_opt t.tree with
  | None -> t.clock
  | Some ((v, _, _), _) -> v

let timeslice = 0.006 (* 6 ms default CFS slice *)

let pick_next t =
  match Tree.min_binding_opt t.tree with
  | None -> None
  | Some (((v, name, idx) as key), thread) ->
    t.tree <- Tree.remove key t.tree;
    let v' = v +. timeslice in
    t.clock <- Float.max t.clock v';
    t.tree <- Tree.add (v', name, idx) thread t.tree;
    Some thread

let rebuild t vms =
  t.tree <- Tree.empty;
  t.clock <- 0.0;
  List.iter (fun (vm_name, vcpus) -> enqueue_vm t ~vm_name ~vcpus) vms

let consistent t vms =
  let expected = Hashtbl.create 16 in
  List.iter
    (fun (vm_name, vcpus) ->
      for i = 0 to vcpus - 1 do
        Hashtbl.replace expected (vm_name, i) 0
      done)
    vms;
  let ok = ref true in
  Tree.iter
    (fun _ thread ->
      let key = (thread.vm_name, thread.vcpu_index) in
      match Hashtbl.find_opt expected key with
      | None -> ok := false
      | Some n -> Hashtbl.replace expected key (n + 1))
    t.tree;
  Hashtbl.iter (fun _ n -> if n <> 1 then ok := false) expected;
  !ok

let state_bytes t = 64 + (runnable t * 72) (* rq header + sched entities *)

let pp fmt t =
  Format.fprintf fmt "cfs[%d runnable, min_vruntime %.3f]" (runnable t)
    (min_vruntime t)
