module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val add : t -> int -> t
  val offset : t -> t -> int
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (Tag : sig
  val name : string
end) : S = struct
  type t = int

  let of_int n =
    if n < 0 then invalid_arg (Tag.name ^ ".of_int: negative");
    n

  let to_int t = t

  let add t n =
    let r = t + n in
    if r < 0 then invalid_arg (Tag.name ^ ".add: negative result");
    r

  let offset a b = a - b
  let compare = Int.compare
  let equal = Int.equal
  let hash = Hashtbl.hash
  let pp fmt t = Format.fprintf fmt "%s:0x%x" Tag.name t
end

module Mfn = Make (struct
  let name = "mfn"
end)

module Gfn = Make (struct
  let name = "gfn"
end)
