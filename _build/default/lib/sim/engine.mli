(** Discrete-event simulation engine.

    Events are closures scheduled at absolute virtual times and executed
    in time order; ties break in scheduling order, which keeps every run
    deterministic.  Handlers may schedule further events. *)

type t

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero}. *)

val now : t -> Time.t
(** Current virtual time.  Inside a handler, this is the event's time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at e t f] runs [f] when the clock reaches [t].  Raises
    [Invalid_argument] if [t] is in the past. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_after e d f] runs [f] at [now e + d]. *)

val run : t -> unit
(** Execute events until the queue is empty. *)

val run_until : t -> Time.t -> unit
(** Execute events with time [<= limit], then advance the clock to
    [limit] (even if the queue still holds later events). *)

val pending : t -> int
(** Number of events not yet executed. *)
