lib/sim/rng.mli:
