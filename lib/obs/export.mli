(** Deterministic exporters for traces and metrics.

    Both formats are plain strings the caller writes wherever it wants;
    output order depends only on recording order (traces) and sorted
    registry order (metrics), so a seeded run exports byte-identical
    artifacts — goldens can diff them. *)

val chrome_trace : ?process:string -> Tracer.t -> string
(** Chrome [trace_event] JSON (the ["traceEvents"] array form),
    loadable in Perfetto or chrome://tracing.  Interval spans become
    complete ([ph:"X"]) events, instants and span annotations become
    thread-scoped instant ([ph:"i"]) events, and each {!Span} track
    becomes a named thread.  Timestamps are microseconds with
    nanosecond precision.  A still-open span exports with zero duration
    and an ["unfinished"] arg. *)

val open_metrics : Metrics.t -> string
(** OpenMetrics-style text: [# TYPE] headers, one sample line per
    counter/gauge, cumulative [_bucket{le=...}] + [_sum] + [_count]
    lines per histogram, final [# EOF]. *)
