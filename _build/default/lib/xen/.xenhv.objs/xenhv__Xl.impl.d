lib/xen/xl.ml: Format Hv Hw Int List String Vmstate Xen
