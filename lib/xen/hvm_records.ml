type error =
  | Bad_header
  | Truncated
  | Unknown_typecode of int
  | Malformed of string

let pp_error fmt = function
  | Bad_header -> Format.pp_print_string fmt "bad header record"
  | Truncated -> Format.pp_print_string fmt "truncated stream"
  | Unknown_typecode c -> Format.fprintf fmt "unknown typecode %d" c
  | Malformed msg -> Format.fprintf fmt "malformed: %s" msg

let typecode_header = 1
let typecode_cpu = 2
let typecode_ioapic = 4
let typecode_lapic = 5
let typecode_lapic_regs = 6
let typecode_pit = 10
let typecode_mtrr = 14
let typecode_xsave = 16
let typecode_end = 0

let header_magic = 0x48564D31l (* "HVM1" *)

type platform = {
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t;
  pit : Vmstate.Pit.t;
}

open Uisr.Wire

(* Record framing: u16 typecode, u16 instance, u32 length, body.
   Instance is the vCPU index for per-vCPU records, 0 otherwise. *)
let record w ~typecode ~instance body =
  let payload = Writer.create () in
  body payload;
  Writer.u16 w typecode;
  Writer.u16 w instance;
  Writer.u32 w (Writer.size payload);
  let b = Writer.contents payload in
  Bytes.iter (fun c -> Writer.u8 w (Char.code c)) b

(* Xen's hvm_hw_cpu packs GPRs, then segment descriptors, then control
   registers, then a fixed MSR block, then the FPU area — a different
   field order from the UISR codec. *)
let put_cpu w (v : Vmstate.Vcpu.t) =
  let g = v.regs.gprs in
  (* Xen orders flags/rip first. *)
  Writer.u64 w g.rflags;
  Writer.u64 w g.rip;
  List.iter (Writer.u64 w)
    [ g.rax; g.rcx; g.rdx; g.rbx; g.rsp; g.rbp; g.rsi; g.rdi;
      g.r8; g.r9; g.r10; g.r11; g.r12; g.r13; g.r14; g.r15 ];
  let s = v.regs.sregs in
  let seg (x : Vmstate.Regs.segment) =
    Writer.u64 w x.base;
    Writer.i32 w x.limit;
    Writer.u16 w x.selector;
    Writer.u16 w x.attrs
  in
  List.iter seg [ s.cs; s.ss; s.ds; s.es; s.fs; s.gs; s.ldt; s.tr ];
  List.iter (Writer.u64 w) [ s.cr0; s.cr2; s.cr3; s.cr4; s.efer; s.apic_base ];
  Writer.list w
    (fun (m : Vmstate.Regs.msr) ->
      Writer.u64 w m.value;
      Writer.u32 w m.index)
    v.regs.msrs;
  let f = v.regs.fpu in
  Writer.i32 w f.mxcsr;
  Writer.u16 w f.fcw;
  Writer.u16 w f.fsw;
  Writer.u16 w f.ftw;
  Writer.array w (Writer.u64 w) f.st;
  Writer.array w (Writer.u64 w) f.xmm

let get_cpu r : Vmstate.Regs.t =
  let rflags = Reader.u64 r in
  let rip = Reader.u64 r in
  let rax = Reader.u64 r in
  let rcx = Reader.u64 r in
  let rdx = Reader.u64 r in
  let rbx = Reader.u64 r in
  let rsp = Reader.u64 r in
  let rbp = Reader.u64 r in
  let rsi = Reader.u64 r in
  let rdi = Reader.u64 r in
  let r8 = Reader.u64 r in
  let r9 = Reader.u64 r in
  let r10 = Reader.u64 r in
  let r11 = Reader.u64 r in
  let r12 = Reader.u64 r in
  let r13 = Reader.u64 r in
  let r14 = Reader.u64 r in
  let r15 = Reader.u64 r in
  let gprs : Vmstate.Regs.gprs =
    { rax; rbx; rcx; rdx; rsi; rdi; rsp; rbp; r8; r9; r10; r11; r12; r13;
      r14; r15; rip; rflags }
  in
  let seg () : Vmstate.Regs.segment =
    let base = Reader.u64 r in
    let limit = Reader.i32 r in
    let selector = Reader.u16 r in
    let attrs = Reader.u16 r in
    { selector; base; limit; attrs }
  in
  let cs = seg () in
  let ss = seg () in
  let ds = seg () in
  let es = seg () in
  let fs = seg () in
  let gs = seg () in
  let ldt = seg () in
  let tr = seg () in
  let cr0 = Reader.u64 r in
  let cr2 = Reader.u64 r in
  let cr3 = Reader.u64 r in
  let cr4 = Reader.u64 r in
  let efer = Reader.u64 r in
  let apic_base = Reader.u64 r in
  let sregs : Vmstate.Regs.sregs =
    { cs; ds; es; fs; gs; ss; tr; ldt; cr0; cr2; cr3; cr4; efer; apic_base }
  in
  let msrs =
    Reader.list r (fun r ->
        let value = Reader.u64 r in
        let index = Reader.u32 r in
        { Vmstate.Regs.index; value })
  in
  let mxcsr = Reader.i32 r in
  let fcw = Reader.u16 r in
  let fsw = Reader.u16 r in
  let ftw = Reader.u16 r in
  let st = Reader.array r Reader.u64 in
  let xmm = Reader.array r Reader.u64 in
  let fpu : Vmstate.Regs.fpu = { fcw; fsw; ftw; mxcsr; st; xmm } in
  { gprs; sregs; msrs; fpu }

(* LAPIC is split across two Xen records: LAPIC (control fields) and
   LAPIC_REGS (the register page). *)
let put_lapic_control w (l : Vmstate.Lapic.t) =
  Writer.u32 w l.apic_id;
  Writer.u32 w l.version;
  Writer.bool w l.enabled;
  Writer.u8 w l.tpr

let put_lapic_regs w (l : Vmstate.Lapic.t) =
  Writer.i32 w l.ldr;
  Writer.i32 w l.dfr;
  Writer.i32 w l.svr;
  Writer.array w (Writer.u64 w) l.isr;
  Writer.array w (Writer.u64 w) l.irr;
  Writer.array w (Writer.u64 w) l.tmr;
  Writer.array w (Writer.i32 w) l.lvt;
  Writer.i32 w l.timer_dcr;
  Writer.i32 w l.timer_icr;
  Writer.i32 w l.timer_ccr

type lapic_control = { c_apic_id : int; c_version : int; c_enabled : bool; c_tpr : int }

let get_lapic_control r =
  let c_apic_id = Reader.u32 r in
  let c_version = Reader.u32 r in
  let c_enabled = Reader.bool r in
  let c_tpr = Reader.u8 r in
  { c_apic_id; c_version; c_enabled; c_tpr }

let get_lapic_regs r (c : lapic_control) : Vmstate.Lapic.t =
  let ldr = Reader.i32 r in
  let dfr = Reader.i32 r in
  let svr = Reader.i32 r in
  let isr = Reader.array r Reader.u64 in
  let irr = Reader.array r Reader.u64 in
  let tmr = Reader.array r Reader.u64 in
  let lvt = Reader.array r Reader.i32 in
  let timer_dcr = Reader.i32 r in
  let timer_icr = Reader.i32 r in
  let timer_ccr = Reader.i32 r in
  { apic_id = c.c_apic_id; version = c.c_version; tpr = c.c_tpr; ldr; dfr;
    svr; isr; irr; tmr; lvt; timer_dcr; timer_icr; timer_ccr;
    enabled = c.c_enabled }

let put_mtrr w (m : Vmstate.Mtrr.t) =
  Writer.u64 w (Int64.of_int m.def_type);
  Writer.array w
    (fun (v : Vmstate.Mtrr.variable_range) ->
      Writer.u64 w v.base;
      Writer.u64 w v.mask)
    m.variable;
  Writer.array w (Writer.u64 w) m.fixed

let get_mtrr r : Vmstate.Mtrr.t =
  let def_type = Int64.to_int (Reader.u64 r) in
  let variable =
    Reader.array r (fun r ->
        let base = Reader.u64 r in
        let mask = Reader.u64 r in
        { Vmstate.Mtrr.base; mask })
  in
  let fixed = Reader.array r Reader.u64 in
  { def_type; fixed; variable }

let put_xsave w (x : Vmstate.Xsave.t) =
  Writer.u64 w x.xcr0;
  Writer.u64 w x.xstate_bv;
  Writer.list w
    (fun (c : Vmstate.Xsave.component) ->
      Writer.u32 w c.id;
      Writer.array w (Writer.u64 w) c.data)
    x.components

let get_xsave r : Vmstate.Xsave.t =
  let xcr0 = Reader.u64 r in
  let xstate_bv = Reader.u64 r in
  let components =
    Reader.list r (fun r ->
        let id = Reader.u32 r in
        let data = Reader.array r Reader.u64 in
        { Vmstate.Xsave.id; data })
  in
  { xcr0; xstate_bv; components }

let put_ioapic w (io : Vmstate.Ioapic.t) =
  Writer.u32 w io.id;
  Writer.array w
    (fun (p : Vmstate.Ioapic.redirection) ->
      (* Xen stores redirection entries as packed 64-bit words. *)
      let word =
        Int64.logor
          (Int64.of_int (p.vector land 0xFF))
          (Int64.logor
             (Int64.shift_left (Int64.of_int p.delivery_mode) 8)
             (Int64.logor
                (Int64.shift_left (Int64.of_int p.dest_mode) 11)
                (Int64.logor
                   (Int64.shift_left (Int64.of_int p.polarity) 13)
                   (Int64.logor
                      (Int64.shift_left (Int64.of_int p.trigger_mode) 15)
                      (Int64.logor
                         (Int64.shift_left (if p.masked then 1L else 0L) 16)
                         (Int64.shift_left (Int64.of_int p.dest) 56))))))
      in
      Writer.u64 w word)
    io.pins

let get_ioapic r : Vmstate.Ioapic.t =
  let id = Reader.u32 r in
  let pins =
    Reader.array r (fun r ->
        let word = Reader.u64 r in
        let bit off width =
          Int64.to_int
            (Int64.logand
               (Int64.shift_right_logical word off)
               (Int64.sub (Int64.shift_left 1L width) 1L))
        in
        {
          Vmstate.Ioapic.vector = bit 0 8;
          delivery_mode = bit 8 3;
          dest_mode = bit 11 1;
          polarity = bit 13 1;
          trigger_mode = bit 15 1;
          masked = bit 16 1 = 1;
          dest = bit 56 8;
        })
  in
  { id; pins }

let put_pit w (p : Vmstate.Pit.t) =
  Writer.array w
    (fun (c : Vmstate.Pit.channel) ->
      Writer.u32 w c.count;
      Writer.u16 w c.latched_count;
      Writer.u8 w c.status;
      Writer.u8 w ((c.read_state lsl 4) lor c.write_state);
      Writer.u8 w c.mode;
      Writer.bool w c.bcd;
      Writer.bool w c.gate)
    p.channels;
  Writer.bool w p.speaker_data_on

let get_pit r : Vmstate.Pit.t =
  let channels =
    Reader.array r (fun r ->
        let count = Reader.u32 r in
        let latched_count = Reader.u16 r in
        let status = Reader.u8 r in
        let rw = Reader.u8 r in
        let mode = Reader.u8 r in
        let bcd = Reader.bool r in
        let gate = Reader.bool r in
        { Vmstate.Pit.count; latched_count; status; read_state = rw lsr 4;
          write_state = rw land 0xF; mode; bcd; gate })
  in
  let speaker_data_on = Reader.bool r in
  { channels; speaker_data_on }

let encode (p : platform) =
  let w = Writer.create () in
  record w ~typecode:typecode_header ~instance:0 (fun w ->
      Writer.i32 w header_magic;
      Writer.u32 w (List.length p.vcpus));
  List.iter
    (fun (v : Vmstate.Vcpu.t) ->
      record w ~typecode:typecode_cpu ~instance:v.index (fun w -> put_cpu w v);
      record w ~typecode:typecode_lapic ~instance:v.index (fun w ->
          put_lapic_control w v.lapic);
      record w ~typecode:typecode_lapic_regs ~instance:v.index (fun w ->
          put_lapic_regs w v.lapic);
      record w ~typecode:typecode_mtrr ~instance:v.index (fun w ->
          put_mtrr w v.mtrr);
      record w ~typecode:typecode_xsave ~instance:v.index (fun w ->
          put_xsave w v.xsave))
    p.vcpus;
  record w ~typecode:typecode_ioapic ~instance:0 (fun w -> put_ioapic w p.ioapic);
  record w ~typecode:typecode_pit ~instance:0 (fun w -> put_pit w p.pit);
  record w ~typecode:typecode_end ~instance:0 (fun _ -> ());
  Writer.contents w

type partial_vcpu = {
  mutable pv_cpu : Vmstate.Regs.t option;
  mutable pv_lapic_control : lapic_control option;
  mutable pv_lapic : Vmstate.Lapic.t option;
  mutable pv_mtrr : Vmstate.Mtrr.t option;
  mutable pv_xsave : Vmstate.Xsave.t option;
}

exception Fail_typecode of int

let decode data =
  let r = Reader.create data in
  let vcpu_parts : (int, partial_vcpu) Hashtbl.t = Hashtbl.create 8 in
  let part index =
    match Hashtbl.find_opt vcpu_parts index with
    | Some p -> p
    | None ->
      let p =
        { pv_cpu = None; pv_lapic_control = None; pv_lapic = None;
          pv_mtrr = None; pv_xsave = None }
      in
      Hashtbl.replace vcpu_parts index p;
      p
  in
  let ioapic = ref None in
  let pit = ref None in
  let saw_header = ref false in
  let finished = ref false in
  try
    while not !finished do
      if Reader.eof r then Reader.fail r "missing END record";
      let typecode = Reader.u16 r in
      let instance = Reader.u16 r in
      let len = Reader.u32 r in
      if Reader.remaining r < len then raise Reader.Truncated;
      let body = Bytes.create len in
      for i = 0 to len - 1 do
        Bytes.set_uint8 body i (Reader.u8 r)
      done;
      let br = Reader.create body in
      if typecode = typecode_header then begin
        let magic = Reader.i32 br in
        if not (Int32.equal magic header_magic) then raise Exit;
        ignore (Reader.u32 br);
        saw_header := true
      end
      else if typecode = typecode_end then finished := true
      else if not !saw_header then raise Exit
      else if typecode = typecode_cpu then
        (part instance).pv_cpu <- Some (get_cpu br)
      else if typecode = typecode_lapic then
        (part instance).pv_lapic_control <- Some (get_lapic_control br)
      else if typecode = typecode_lapic_regs then begin
        let p = part instance in
        match p.pv_lapic_control with
        | None -> Reader.fail br "LAPIC_REGS before LAPIC"
        | Some c -> p.pv_lapic <- Some (get_lapic_regs br c)
      end
      else if typecode = typecode_mtrr then
        (part instance).pv_mtrr <- Some (get_mtrr br)
      else if typecode = typecode_xsave then
        (part instance).pv_xsave <- Some (get_xsave br)
      else if typecode = typecode_ioapic then ioapic := Some (get_ioapic br)
      else if typecode = typecode_pit then pit := Some (get_pit br)
      else raise (Fail_typecode typecode)
    done;
    let indices =
      List.sort Int.compare
        (Hashtbl.fold (fun k _ acc -> k :: acc) vcpu_parts [])
    in
    let build index =
      let p = Hashtbl.find vcpu_parts index in
      match (p.pv_cpu, p.pv_lapic, p.pv_mtrr, p.pv_xsave) with
      | Some regs, Some lapic, Some mtrr, Some xsave ->
        { Vmstate.Vcpu.index; regs; lapic; mtrr; xsave }
      | _ -> Reader.fail r "incomplete vCPU records"
    in
    let vcpus = List.map build indices in
    match (!ioapic, !pit) with
    | Some ioapic, Some pit -> Ok { vcpus; ioapic; pit }
    | _ -> Error (Malformed "missing IOAPIC or PIT record")
  with
  | Reader.Truncated -> Error Truncated
  | Reader.Bad_format e -> Error (Malformed (Reader.format_error_to_string e))
  | Exit -> Error Bad_header
  | Fail_typecode c -> Error (Unknown_typecode c)

let record_count (p : platform) = 1 + (5 * List.length p.vcpus) + 2 + 1
