(** The simulated bhyve hypervisor (FreeBSD vmm.ko + one bhyve process
    per VM, type-II).

    The third member of the HyperTP repertoire: it exists to demonstrate
    the UISR scaling claim — adding it required exactly one new
    signature implementation and zero changes to InPlaceTP, MigrationTP
    or the orchestrator.  Its virtual platform differs from both others:
    a 32-pin IOAPIC (Xen guests get truncated, KVM guests extended) and
    a narrower MSR surface (machine-check bank MSRs are dropped with
    recorded fixups). *)

include Hv.Intf.S

val vm_handle : domain -> int
(** The /dev/vmm handle backing this VM. *)

val run_queue : t -> Ule.t
