type t = {
  cap : int;
  ring : Span.t option array;
  mutable head : int; (* next write position *)
  mutable count : int;
  mutable next_id : int;
  mutable dropped : int;
  mutable hook : ([ `Open | `Close ] -> Span.t -> Sim.Time.t -> unit) option;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    cap = capacity;
    ring = Array.make capacity None;
    head = 0;
    count = 0;
    next_id = 0;
    dropped = 0;
    hook = None;
  }

let set_hook t hook = t.hook <- Some hook
let clear_hook t = t.hook <- None

let notify t phase span at =
  match t.hook with None -> () | Some hook -> hook phase span at

let record t span =
  if t.ring.(t.head) <> None then t.dropped <- t.dropped + 1
  else t.count <- t.count + 1;
  t.ring.(t.head) <- Some span;
  t.head <- (t.head + 1) mod t.cap

let fresh t ~at ?parent ?(track = "main") ?(attrs = []) ~kind name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let span =
    Span.make ~id
      ?parent:(Option.map Span.id parent)
      ~kind ~track ~attrs ~at name
  in
  record t span;
  span

let start t ~at ?parent ?track ?attrs name =
  let span = fresh t ~at ?parent ?track ?attrs ~kind:Span.Interval name in
  notify t `Open span at;
  span

let finish t span ~at =
  Span.finish span ~at;
  notify t `Close span at

let instant t ~at ?parent ?track ?attrs name =
  let span = fresh t ~at ?parent ?track ?attrs ~kind:Span.Instant name in
  notify t `Open span at

let span t ~at ~until ?parent ?track ?attrs name =
  let s = start t ~at ?parent ?track ?attrs name in
  finish t s ~at:until;
  s

let spans t =
  (* Oldest first: the ring's tail is at [head] when full, 0 otherwise. *)
  let out = ref [] in
  let from = if t.ring.(t.head) = None then 0 else t.head in
  for i = t.cap - 1 downto 0 do
    match t.ring.((from + i) mod t.cap) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  !out

let count t = t.count
let capacity t = t.cap
let dropped t = t.dropped
