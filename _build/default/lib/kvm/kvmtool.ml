type process = {
  pid : int;
  proc_vm_name : string;
  guest_mmap_bytes : Hw.Units.bytes_;
}

type t = { mutable procs : process list; mutable next_pid : int }

let create () = { procs = []; next_pid = 1000 }

let spawn t ~vm_name ~guest_bytes =
  if List.exists (fun p -> String.equal p.proc_vm_name vm_name) t.procs then
    invalid_arg ("Kvmtool.spawn: duplicate VM " ^ vm_name);
  let p = { pid = t.next_pid; proc_vm_name = vm_name; guest_mmap_bytes = guest_bytes } in
  t.next_pid <- t.next_pid + 1;
  t.procs <- t.procs @ [ p ];
  p

let kill t ~vm_name =
  if not (List.exists (fun p -> String.equal p.proc_vm_name vm_name) t.procs)
  then invalid_arg ("Kvmtool.kill: no process for " ^ vm_name);
  t.procs <- List.filter (fun p -> not (String.equal p.proc_vm_name vm_name)) t.procs

let find t ~vm_name =
  List.find_opt (fun p -> String.equal p.proc_vm_name vm_name) t.procs

let processes t = t.procs
let count t = List.length t.procs

let state_bytes t =
  (* task_struct + fd table + vma list per process. *)
  count t * 24_576
