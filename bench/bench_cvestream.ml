(* CVE-stream policy benchmark: five virtual years of vulnerability
   traffic against a 10k-host / 80k-VM fleet, one run per mitigation
   policy.  The fleet is under contention (tempo stretches campaigns to
   weeks, arrivals land monthly), so the cost-aware policy's refusal to
   run campaigns the patch beats frees the population for the criticals
   that need it — the benchmark asserts it lands strictly below both
   baselines on exposed host-hours, and pins determinism by running the
   cost-aware point twice.

   Emits BENCH_cvestream.json (consumed by the cvestream-smoke CI job).
   Accepts --hosts/--tempo/--conc/--rate/--years for a small CI mode. *)

open Bench_util

type knobs = {
  k_hosts : int;
  k_vms_per_host : int;
  k_tempo : float;
  k_conc : int;
  k_rate : float;
  k_years : float;
}

let default_knobs =
  {
    k_hosts = 10_000;
    k_vms_per_host = 8;
    k_tempo = 2_000.0;
    k_conc = 64;
    k_rate = 30.0;
    k_years = 5.0;
  }

let seed = 0x5EEDL

let config k policy =
  {
    Stream.Service.default_config with
    Stream.Service.mix =
      {
        Stream.Service.xen_hosts = (k.k_hosts + 1) / 2;
        kvm_hosts = k.k_hosts / 2;
        bhyve_hosts = 0;
      };
    vms_per_host = k.k_vms_per_host;
    years = k.k_years;
    rate_per_year = k.k_rate;
    tempo = k.k_tempo;
    concurrency = k.k_conc;
    policy;
    seed;
  }

type point = {
  p_policy : Stream.Policy.kind;
  p_exposed_hh : float;
  p_cves : int;
  p_campaigns : int;
  p_uncovered : int;
  p_wall_s : float;  (* real time for the run *)
}

let run_once k policy =
  let t0 = Unix.gettimeofday () in
  let r, _ = Stream.Service.run_to_completion (config k policy) in
  {
    p_policy = policy;
    p_exposed_hh = r.Stream.Service.exposed_host_hours;
    p_cves = r.Stream.Service.cves_total;
    p_campaigns = r.Stream.Service.campaigns;
    p_uncovered = r.Stream.Service.uncovered_critical;
    p_wall_s = Unix.gettimeofday () -. t0;
  }

(* Same seed => byte-identical journal and identical report numbers. *)
let deterministic k =
  let snap () =
    let r, j =
      Stream.Service.run_to_completion (config k Stream.Policy.Cost_aware)
    in
    ( Stream.Service.journal_to_string j,
      Stream.Service.report_to_string r )
  in
  snap () = snap ()

let emit k points deterministic_checked =
  let oc = open_out "BENCH_cvestream.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"cvestream\",\n  \"hosts\": %d,\n  \
     \"vms_per_host\": %d,\n  \"years\": %.1f,\n  \"rate_per_year\": %.1f,\n  \
     \"tempo\": %.1f,\n  \"concurrency\": %d,\n  \"seed\": %Ld,\n  \
     \"deterministic\": %b,\n  \"policies\": [\n"
    k.k_hosts k.k_vms_per_host k.k_years k.k_rate k.k_tempo k.k_conc seed
    deterministic_checked;
  List.iteri
    (fun i p ->
      Printf.fprintf oc
        "    {\"policy\": \"%s\", \"exposed_host_hours\": %.4f, \"cves\": \
         %d, \"campaigns\": %d, \"uncovered_critical\": %d, \
         \"wall_clock_s\": %.3f}%s\n"
        (Stream.Policy.kind_to_string p.p_policy)
        p.p_exposed_hh p.p_cves p.p_campaigns p.p_uncovered p.p_wall_s
        (if i = List.length points - 1 then "" else ","))
    points;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  note "wrote BENCH_cvestream.json@."

let run ?(knobs = default_knobs) () =
  header
    (Printf.sprintf
       "CVE-stream campaign service: %d hosts x %d VMs, %.1f years at \
        %.0f CVEs/year"
       knobs.k_hosts knobs.k_vms_per_host knobs.k_years knobs.k_rate);
  Format.printf "%-16s %-16s %-7s %-10s %-10s %s@." "policy" "exposed-hh"
    "cves" "campaigns" "uncovered" "wall(s)";
  let points =
    List.map
      (fun policy ->
        let p = run_once knobs policy in
        Format.printf "%-16s %-16.1f %-7d %-10d %-10d %.3f@."
          (Stream.Policy.kind_to_string p.p_policy)
          p.p_exposed_hh p.p_cves p.p_campaigns p.p_uncovered p.p_wall_s;
        p)
      Stream.Policy.all_kinds
  in
  let exposed policy =
    (List.find (fun p -> p.p_policy = policy) points).p_exposed_hh
  in
  let cost = exposed Stream.Policy.Cost_aware in
  let ta = exposed Stream.Policy.Transplant_all in
  let da = exposed Stream.Policy.Defer_all in
  if not (cost < ta && cost < da) then begin
    Format.eprintf
      "FATAL: cost-aware (%.1f hh) is not strictly below transplant-all \
       (%.1f hh) and defer-all (%.1f hh)@."
      cost ta da;
    exit 1
  end;
  note "cost-aware strictly dominates: %.1f < min(%.1f, %.1f) hh@." cost ta da;
  note "re-running the cost-aware point to pin determinism...@.";
  if not (deterministic knobs) then begin
    Format.eprintf "FATAL: the stream service is not deterministic@.";
    exit 1
  end;
  note "identical journal and report across runs@.";
  emit knobs points true
