test/test_migration.ml: Alcotest Hw Int Int64 List Migration QCheck QCheck_alcotest Sim Vmstate
