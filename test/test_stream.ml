(* Tests for the CVE-stream campaign service: generator determinism,
   policy dominance, contention/preemption safety and journal
   crash-resume. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf msg = Alcotest.check (Alcotest.float 0.001) msg
let qtest = QCheck_alcotest.to_alcotest

let stream_to_string events =
  String.concat "\n" (List.map Stream.Gen.event_to_string events)

(* --- Gen --- *)

let test_gen_deterministic () =
  let a = Stream.Gen.generate Stream.Gen.default in
  let b = Stream.Gen.generate Stream.Gen.default in
  checks "same seed, same stream" (stream_to_string a) (stream_to_string b);
  let c =
    Stream.Gen.generate { Stream.Gen.default with Stream.Gen.seed = 7L }
  in
  checkb "different seed, different stream" false
    (String.equal (stream_to_string a) (stream_to_string c))

let test_gen_shape () =
  let events = Stream.Gen.generate Stream.Gen.default in
  let n = List.length events in
  (* 5 years at 14/year: the Poisson total should land near 70. *)
  checkb "plausible arrival count" true (n > 35 && n < 120);
  let horizon = Stream.Gen.default.Stream.Gen.years *. 365.0 in
  List.iteri
    (fun i ev ->
      checki "seq is position" i ev.Stream.Gen.seq;
      checkb "day within horizon" true
        (ev.Stream.Gen.day > 0.0 && ev.Stream.Gen.day <= horizon);
      checkb "patch delay positive" true
        (ev.Stream.Gen.cve.Cve.Nvd.patch_delay_days > 0.0))
    events;
  let days = List.map (fun e -> e.Stream.Gen.day) events in
  checkb "chronological" true (List.sort Float.compare days = days)

(* The attribution wheels must agree with the dataset's classifier:
   whatever class scheduled the arrival is the class the record
   classifies back into. *)
let prop_gen_taxonomy_consistent =
  QCheck.Test.make ~count:20 ~name:"generated records classify into their class"
    QCheck.(map Int64.of_int small_int)
    (fun seed ->
      let events =
        Stream.Gen.generate { Stream.Gen.default with Stream.Gen.seed }
      in
      List.for_all
        (fun ev ->
          Cve.Nvd.classify ev.Stream.Gen.cve.Cve.Nvd.body
          = ev.Stream.Gen.cve.Cve.Nvd.tax)
        events)

let test_gen_burst () =
  let plain = Stream.Gen.generate Stream.Gen.default in
  let fault =
    Fault.make [ { Fault.site = Fault.Cve_burst; trigger = Fault.Nth_hit 5 } ]
  in
  let burst = Stream.Gen.generate ~fault Stream.Gen.default in
  checki "burst site consulted per arrival" (List.length burst)
    (Fault.hits fault Fault.Cve_burst);
  (* Compressing gaps only pulls events earlier: same or more arrivals
     fit the horizon, and the 10th event lands strictly earlier. *)
  checkb "at least as many arrivals" true
    (List.length burst >= List.length plain);
  let day n evs = (List.nth evs n).Stream.Gen.day in
  checkb "events pulled earlier" true (day 9 burst < day 9 plain)

let test_gen_validation () =
  let expect_error cfg =
    match Stream.Gen.generate cfg with
    | exception Hypertp_error.Error _ -> ()
    | _ -> Alcotest.fail "expected a config error"
  in
  expect_error { Stream.Gen.default with Stream.Gen.years = 0.0 };
  expect_error { Stream.Gen.default with Stream.Gen.rate_per_year = -1.0 };
  expect_error { Stream.Gen.default with Stream.Gen.critical_fraction = 1.5 };
  expect_error { Stream.Gen.default with Stream.Gen.class_mix = [] };
  expect_error
    {
      Stream.Gen.default with
      Stream.Gen.class_mix = [ (Cve.Nvd.Cross_domain, 0.0) ];
    }

(* --- Service: determinism --- *)

(* Small but busy: months-long campaigns (tempo) against a dense
   stream, so queueing and policy differences are exercised. *)
let small_config =
  {
    Stream.Service.default_config with
    Stream.Service.mix =
      { Stream.Service.xen_hosts = 6; kvm_hosts = 4; bhyve_hosts = 0 };
    vms_per_host = 2;
    years = 2.0;
    rate_per_year = 24.0;
    concurrency = 2;
    tempo = 16000.0;
    seed = 0xD15EA5EL;
  }

let run_clean ?fault cfg = Stream.Service.run_to_completion ?fault cfg

let test_service_deterministic_pin () =
  let r1, j1 = run_clean small_config in
  let r2, j2 = run_clean small_config in
  checks "byte-identical journals"
    (Stream.Service.journal_to_string j1)
    (Stream.Service.journal_to_string j2);
  checks "byte-identical reports"
    (Stream.Service.report_to_string r1)
    (Stream.Service.report_to_string r2);
  checkb "stream was served" true (r1.Stream.Service.cves_total > 10);
  checkb "campaigns ran" true (r1.Stream.Service.campaigns > 0)

let prop_service_deterministic =
  QCheck.Test.make ~count:8 ~name:"same seed, byte-identical journal and report"
    QCheck.(map Int64.of_int small_int)
    (fun seed ->
      let cfg = { small_config with Stream.Service.seed } in
      let r1, j1 = run_clean cfg in
      let r2, j2 = run_clean cfg in
      String.equal
        (Stream.Service.journal_to_string j1)
        (Stream.Service.journal_to_string j2)
      && String.equal
           (Stream.Service.report_to_string r1)
           (Stream.Service.report_to_string r2))

(* --- Service: policy dominance --- *)

let exposed policy cfg =
  let r, _ = run_clean { cfg with Stream.Service.policy } in
  r.Stream.Service.exposed_host_hours

(* Cost-aware decisions are the exact per-episode minimum of the two
   baselines' realized exposures (same cohorts, same campaign seeds,
   monotone queueing), so the total can never exceed either. *)
let prop_policy_dominance =
  QCheck.Test.make ~count:8
    ~name:"cost-aware never exceeds transplant-all or defer-all"
    QCheck.(map Int64.of_int small_int)
    (fun seed ->
      let cfg = { small_config with Stream.Service.seed } in
      let c = exposed Stream.Policy.Cost_aware cfg in
      let t = exposed Stream.Policy.Transplant_all cfg in
      let d = exposed Stream.Policy.Defer_all cfg in
      let leq a b = a <= (b *. (1.0 +. 1e-9)) +. 1e-6 in
      leq c t && leq c d)

(* Under contention the bound goes strict: transplant-all wastes
   population time on campaigns the patch beats, delaying later
   critical coverage. *)
let test_policy_dominance_strict () =
  let cfg =
    {
      Stream.Service.default_config with
      Stream.Service.mix =
        { Stream.Service.xen_hosts = 20; kvm_hosts = 16; bhyve_hosts = 0 };
      rate_per_year = 30.0;
      concurrency = 2;
      tempo = 16000.0;
      seed = 0x5EEDL;
    }
  in
  let c = exposed Stream.Policy.Cost_aware cfg in
  let t = exposed Stream.Policy.Transplant_all cfg in
  let d = exposed Stream.Policy.Defer_all cfg in
  checkb "cost-aware strictly beats transplant-all" true (c < t);
  checkb "cost-aware strictly beats defer-all" true (c < d)

let test_uncovered_critical () =
  let r_cost, _ =
    run_clean { small_config with Stream.Service.policy = Stream.Policy.Cost_aware }
  in
  let r_defer, _ =
    run_clean { small_config with Stream.Service.policy = Stream.Policy.Defer_all }
  in
  checki "cost-aware leaves no window uncovered" 0
    r_cost.Stream.Service.uncovered_critical;
  checkb "defer-all is flagged" true
    (r_defer.Stream.Service.uncovered_critical > 0)

(* --- Service: contention, preemption, bookings --- *)

let overlap_free bookings =
  List.for_all
    (fun (_pop, intervals) ->
      let sorted =
        List.sort
          (fun (_, s1, _) (_, s2, _) -> Float.compare s1 s2)
          intervals
      in
      let rec ok = function
        | (_, _, e1) :: ((_, s2, _) :: _ as tl) ->
          e1 <= s2 +. 1e-6 && ok tl
        | _ -> true
      in
      ok sorted)
    bookings

let preempt_config =
  {
    small_config with
    Stream.Service.mix =
      { Stream.Service.xen_hosts = 8; kvm_hosts = 4; bhyve_hosts = 0 };
    rate_per_year = 40.0;
    tempo = 30000.0;
    track_bookings = true;
  }

let test_preemption_forced () =
  let r, _ = run_clean { preempt_config with Stream.Service.preempt = true } in
  checkb "contention triggered preemptions" true
    (r.Stream.Service.preemptions > 0);
  checkb "preempted hosts were released" true
    (r.Stream.Service.released_hosts > 0);
  checkb "bookings never overlap" true (overlap_free r.Stream.Service.bookings)

let test_preemption_fault_site () =
  let fault =
    Fault.make
      [ { Fault.site = Fault.Campaign_preempt; trigger = Fault.Nth_hit 1 } ]
  in
  let r, _ = run_clean ~fault preempt_config in
  checki "the armed site preempted exactly once" 1
    r.Stream.Service.preemptions;
  checkb "bookings never overlap" true (overlap_free r.Stream.Service.bookings)

(* Any preemption schedule — forced on every critical or fired
   probabilistically by the fault site — leaves zero double-booked
   hosts, and every journal prefix resumes to the same final state. *)
let prop_preemption_safe =
  QCheck.Test.make ~count:6
    ~name:"preemption never double-books and journals stay resumable"
    QCheck.(pair (map Int64.of_int small_int) bool)
    (fun (seed, forced) ->
      let cfg =
        { preempt_config with Stream.Service.seed; preempt = forced }
      in
      let fault =
        if forced then None
        else
          Some
            (Fault.make ~seed
               [ { Fault.site = Fault.Campaign_preempt;
                   trigger = Fault.Probability 0.5 } ])
      in
      let r, j = run_clean ?fault cfg in
      let text = Stream.Service.journal_to_string j in
      (* Truncate the journal to a prefix and resume: the service must
         replay the prefix and land on the same report. *)
      let lines = String.split_on_char '\n' text in
      let keep = 2 + (Stream.Service.journal_length j / 2) in
      let prefix =
        String.concat "\n"
          (List.filteri (fun i _ -> i < keep) lines @ [ "" ])
      in
      match Stream.Service.journal_of_string prefix with
      | Error e -> QCheck.Test.fail_report e
      | Ok truncated -> (
        match
          Stream.Service.resume
            ?fault:(Option.map Fault.restart fault)
            truncated
        with
        | Stream.Service.Crashed _ ->
          QCheck.Test.fail_report "resume crashed without a crash site"
        | Stream.Service.Finished (r2, j2) ->
          overlap_free r.Stream.Service.bookings
          && String.equal
               (Stream.Service.report_to_string r)
               (Stream.Service.report_to_string r2)
          && String.equal text (Stream.Service.journal_to_string j2)))

(* --- Service: crash and resume --- *)

let test_crash_resume () =
  let fault =
    Fault.make
      [ { Fault.site = Fault.Controller_crash; trigger = Fault.Nth_hit 10 } ]
  in
  (match Stream.Service.run ~fault small_config with
  | Stream.Service.Finished _ -> Alcotest.fail "expected a crash"
  | Stream.Service.Crashed j ->
    checki "journal holds the pre-crash entries" 10
      (Stream.Service.journal_length j);
    (* The full loop reaches the same end state as a fault-free run
       (journals carry fault cursors, so byte-identity is against a
       second crash-and-resume loop under a fresh copy of the plan). *)
    let r_clean, _ = run_clean small_config in
    let r, j' =
      Stream.Service.run_to_completion ~fault:(Fault.restart fault)
        small_config
    in
    checks "report survives the crash"
      (Stream.Service.report_to_string r_clean)
      (Stream.Service.report_to_string r);
    let _, j'' =
      Stream.Service.run_to_completion ~fault:(Fault.restart fault)
        small_config
    in
    checks "journal survives the crash"
      (Stream.Service.journal_to_string j'')
      (Stream.Service.journal_to_string j'))

let test_journal_roundtrip () =
  let _, j = run_clean small_config in
  let text = Stream.Service.journal_to_string j in
  match Stream.Service.journal_of_string text with
  | Error e -> Alcotest.fail e
  | Ok j2 ->
    checks "text round-trips" text (Stream.Service.journal_to_string j2);
    checki "length preserved"
      (Stream.Service.journal_length j)
      (Stream.Service.journal_length j2);
    (* Resuming a complete journal replays it and finishes identically. *)
    (match Stream.Service.resume j2 with
    | Stream.Service.Crashed _ -> Alcotest.fail "resume crashed"
    | Stream.Service.Finished (_, j3) ->
      checks "complete-journal resume is identity" text
        (Stream.Service.journal_to_string j3))

let test_resume_rejects_mismatch () =
  let _, j = run_clean small_config in
  let text = Stream.Service.journal_to_string j in
  (* Tamper with the config line's seed: the replay must disagree. *)
  let tampered =
    match String.split_on_char '\n' text with
    | magic :: cfg :: rest ->
      let cfg' =
        String.concat " "
          (List.map
             (fun kv ->
               if String.length kv >= 5 && String.equal (String.sub kv 0 5) "seed="
               then "seed=1"
               else kv)
             (String.split_on_char ' ' cfg))
      in
      String.concat "\n" (magic :: cfg' :: rest)
    | _ -> Alcotest.fail "journal missing header"
  in
  match Stream.Service.journal_of_string tampered with
  | Error _ -> Alcotest.fail "tampered journal should still parse"
  | Ok j' -> (
    match Stream.Service.resume j' with
    | exception Hypertp_error.Error _ -> ()
    | _ -> Alcotest.fail "expected a journal-mismatch error")

let test_service_validation () =
  let expect_error cfg =
    match Stream.Service.run cfg with
    | exception Hypertp_error.Error _ -> ()
    | _ -> Alcotest.fail "expected a config error"
  in
  expect_error
    {
      small_config with
      Stream.Service.mix =
        { Stream.Service.xen_hosts = 1; kvm_hosts = 4; bhyve_hosts = 0 };
    };
  expect_error { small_config with Stream.Service.tempo = 0.0 };
  expect_error { small_config with Stream.Service.batch_days = -1.0 };
  expect_error { small_config with Stream.Service.concurrency = 0 }

let test_metrics_dashboard () =
  let metrics = Obs.Metrics.create () in
  let r, _ = Stream.Service.run_to_completion ~metrics small_config in
  let find name =
    List.find_opt
      (fun i -> String.equal (Obs.Metrics.name i) name)
      (Obs.Metrics.instruments metrics)
  in
  (match find "stream_campaigns_total" with
  | None -> Alcotest.fail "campaign counter missing"
  | Some c ->
    checkf "campaign counter agrees with the report"
      (float_of_int r.Stream.Service.campaigns)
      (Obs.Metrics.value c));
  match find "stream_exposed_host_hours" with
  | None -> Alcotest.fail "exposure gauge missing"
  | Some g ->
    checkf "exposure gauge agrees with the report"
      r.Stream.Service.exposed_host_hours (Obs.Metrics.value g)

let suites =
  [
    ( "stream.gen",
      [
        Alcotest.test_case "seeded determinism" `Quick test_gen_deterministic;
        Alcotest.test_case "stream shape" `Quick test_gen_shape;
        Alcotest.test_case "burst fault compresses arrivals" `Quick
          test_gen_burst;
        Alcotest.test_case "config validation" `Quick test_gen_validation;
        qtest prop_gen_taxonomy_consistent;
      ] );
    ( "stream.service",
      [
        Alcotest.test_case "twice-run byte identity" `Quick
          test_service_deterministic_pin;
        Alcotest.test_case "strict dominance under contention" `Quick
          test_policy_dominance_strict;
        Alcotest.test_case "uncovered-critical audit" `Quick
          test_uncovered_critical;
        Alcotest.test_case "forced preemption" `Quick test_preemption_forced;
        Alcotest.test_case "campaign_preempt fault site" `Quick
          test_preemption_fault_site;
        Alcotest.test_case "crash and resume" `Quick test_crash_resume;
        Alcotest.test_case "journal text round-trip" `Quick
          test_journal_roundtrip;
        Alcotest.test_case "resume rejects a tampered journal" `Quick
          test_resume_rejects_mismatch;
        Alcotest.test_case "config validation" `Quick test_service_validation;
        Alcotest.test_case "metrics dashboard" `Quick test_metrics_dashboard;
        qtest prop_service_deterministic;
        qtest prop_policy_dominance;
        qtest prop_preemption_safe;
      ] );
  ]
