lib/hw/units.ml: Format
