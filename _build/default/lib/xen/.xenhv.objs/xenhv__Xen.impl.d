lib/xen/xen.ml: Array Bytes Credit Event_channel Format Grant_table Hv Hvm_records Hw List Sim String Uisr Vmstate Workload Xenstore
