lib/bhyve/ule.ml: Format Hashtbl List String
