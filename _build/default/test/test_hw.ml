(* Tests for the hardware substrate: units, frames, physical memory,
   CPU, NIC, machine catalog. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

(* --- Units --- *)

let test_units_sizes () =
  checki "kib" 1024 (Hw.Units.kib 1);
  checki "mib" (1024 * 1024) (Hw.Units.mib 1);
  checki "gib" (1024 * 1024 * 1024) (Hw.Units.gib 1);
  checki "frames per 2m page" 512 (Hw.Units.frames_per_page Hw.Units.Page_2m);
  checki "4k pages in 1gib" 262144
    (Hw.Units.pages_of_bytes Hw.Units.Page_4k (Hw.Units.gib 1));
  checki "2m pages in 1gib" 512
    (Hw.Units.pages_of_bytes Hw.Units.Page_2m (Hw.Units.gib 1))

let test_units_rounding () =
  checki "round up" 2 (Hw.Units.pages_of_bytes Hw.Units.Page_4k 4097);
  checki "exact" 1 (Hw.Units.pages_of_bytes Hw.Units.Page_4k 4096);
  checki "zero" 0 (Hw.Units.pages_of_bytes Hw.Units.Page_4k 0)

let test_units_to_float () =
  checkf "gib" 2.0 (Hw.Units.to_gib_f (Hw.Units.gib 2));
  checkf "kib" 148.0 (Hw.Units.to_kib_f (Hw.Units.kib 148))

(* --- Frame --- *)

let test_frame_typed () =
  let g = Hw.Frame.Gfn.of_int 100 in
  let m = Hw.Frame.Mfn.of_int 200 in
  checki "gfn add" 105 (Hw.Frame.Gfn.to_int (Hw.Frame.Gfn.add g 5));
  checki "mfn offset" 50
    (Hw.Frame.Mfn.offset (Hw.Frame.Mfn.of_int 250) m);
  Alcotest.check_raises "negative gfn"
    (Invalid_argument "gfn.of_int: negative") (fun () ->
      ignore (Hw.Frame.Gfn.of_int (-1)))

(* --- Pmem --- *)

let mk_pmem ?(frames = 512 * 64) () = Hw.Pmem.create ~frames ()

let test_pmem_alloc_free_counts () =
  let p = mk_pmem () in
  let total = Hw.Pmem.total_frames p in
  let extents = Hw.Pmem.alloc_extents p 1000 in
  checki "allocated count" 1000
    (List.fold_left (fun acc (_, len) -> acc + len) 0 extents);
  checki "used" 1000 (Hw.Pmem.used_frames p);
  List.iter (fun (s, l) -> Hw.Pmem.free_extent p s l) extents;
  checki "all free again" total (Hw.Pmem.free_frames p)

let test_pmem_alignment () =
  let p = mk_pmem () in
  let extents = Hw.Pmem.alloc_extents p ~align:512 1024 in
  List.iter
    (fun (start, len) ->
      checki "aligned start" 0 (Hw.Frame.Mfn.to_int start mod 512);
      checkb "aligned len" true (len mod 512 = 0))
    extents

let test_pmem_no_overlap () =
  let p = mk_pmem () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 20 do
    let frames = Hw.Pmem.alloc_frames p 100 in
    List.iter
      (fun mfn ->
        let f = Hw.Frame.Mfn.to_int mfn in
        checkb "never handed out twice" false (Hashtbl.mem seen f);
        Hashtbl.replace seen f ())
      frames
  done

let test_pmem_oom () =
  let p = mk_pmem ~frames:512 () in
  Alcotest.check_raises "oom" Hw.Pmem.Out_of_memory (fun () ->
      ignore (Hw.Pmem.alloc_extents p 513))

let test_pmem_contents () =
  let p = mk_pmem () in
  let frames = Hw.Pmem.alloc_frames p 10 in
  let mfn = List.nth frames 3 in
  Alcotest.check (Alcotest.option Alcotest.int64) "unwritten" None
    (Hw.Pmem.read p mfn);
  Hw.Pmem.write p mfn 0xDEADL;
  Alcotest.check (Alcotest.option Alcotest.int64) "written" (Some 0xDEADL)
    (Hw.Pmem.read p mfn)

let test_pmem_write_unallocated () =
  let p = mk_pmem () in
  Alcotest.check_raises "unallocated write"
    (Invalid_argument "Pmem.write: frame not allocated") (fun () ->
      Hw.Pmem.write p (Hw.Frame.Mfn.of_int 7) 1L)

let test_pmem_reserve_protects () =
  let p = mk_pmem () in
  let extents = Hw.Pmem.alloc_extents p 4 in
  let start, len = List.hd extents in
  Hw.Pmem.reserve_extent p start len;
  checkb "is reserved" true (Hw.Pmem.is_reserved p start);
  Alcotest.check_raises "reserved free rejected"
    (Invalid_argument "Pmem.free_extent: frame is reserved") (fun () ->
      Hw.Pmem.free_extent p start len);
  Hw.Pmem.unreserve_extent p start len;
  Hw.Pmem.free_extent p start len;
  checkb "freed after unreserve" false (Hw.Pmem.is_allocated p start)

let test_pmem_wipe_semantics () =
  let p = mk_pmem () in
  let keep = Hw.Pmem.alloc_frames p 5 in
  let lose = Hw.Pmem.alloc_frames p 5 in
  List.iter (fun m -> Hw.Pmem.write p m 1L) keep;
  List.iter (fun m -> Hw.Pmem.write p m 2L) lose;
  let keep_set = List.map Hw.Frame.Mfn.to_int keep in
  let wiped =
    Hw.Pmem.wipe_unpreserved p ~preserve:(fun m ->
        List.mem (Hw.Frame.Mfn.to_int m) keep_set)
  in
  checki "wiped count" 5 wiped;
  List.iter
    (fun m ->
      Alcotest.check (Alcotest.option Alcotest.int64) "kept" (Some 1L)
        (Hw.Pmem.read p m))
    keep;
  List.iter
    (fun m ->
      Alcotest.check (Alcotest.option Alcotest.int64) "gone" None
        (Hw.Pmem.read p m))
    lose

let test_pmem_reboot_reset () =
  let p = mk_pmem () in
  let preserved = Hw.Pmem.alloc_frames p 8 in
  let reserved = Hw.Pmem.alloc_frames p 4 in
  let doomed = Hw.Pmem.alloc_frames p 16 in
  List.iter (fun m -> Hw.Pmem.write p m 7L) (preserved @ reserved @ doomed);
  List.iter (fun m -> Hw.Pmem.reserve_extent p m 1) reserved;
  let pset = List.map Hw.Frame.Mfn.to_int preserved in
  let reclaimed =
    Hw.Pmem.reboot_reset p ~preserve:(fun m ->
        List.mem (Hw.Frame.Mfn.to_int m) pset)
  in
  checki "reclaimed only the doomed" 16 reclaimed;
  List.iter
    (fun m -> checkb "doomed frames freed" false (Hw.Pmem.is_allocated p m))
    doomed;
  List.iter
    (fun m -> checkb "preserved still allocated" true (Hw.Pmem.is_allocated p m))
    preserved;
  List.iter
    (fun m -> checkb "reserved still allocated" true (Hw.Pmem.is_allocated p m))
    reserved

(* Stateful property: under random interleavings of alloc/free/reserve
   operations, the allocator's counters stay consistent and no frame is
   ever handed out twice. *)
let prop_pmem_random_ops =
  QCheck.Test.make ~name:"pmem invariants under random op sequences" ~count:30
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 0 999))
    (fun ops ->
      let p = Hw.Pmem.create ~frames:(512 * 32) () in
      let total = Hw.Pmem.total_frames p in
      let live = ref [] in (* (start, len, reserved) *)
      let ok = ref true in
      let live_frames () =
        List.fold_left (fun acc (_, len, _) -> acc + len) 0 !live
      in
      List.iter
        (fun op ->
          match op mod 4 with
          | 0 | 1 -> (
            (* Allocate a small extent list. *)
            let n = 1 + (op mod 700) in
            match Hw.Pmem.alloc_extents p n with
            | extents ->
              List.iter (fun (s, l) -> live := (s, l, false) :: !live) extents
            | exception Hw.Pmem.Out_of_memory -> ())
          | 2 -> (
            (* Free the most recent unreserved extent. *)
            match List.partition (fun (_, _, r) -> not r) !live with
            | (s, l, _) :: rest_un, reserved ->
              Hw.Pmem.free_extent p s l;
              live := rest_un @ reserved
            | [], _ -> ())
          | _ -> (
            (* Reserve the most recent unreserved extent. *)
            match List.partition (fun (_, _, r) -> not r) !live with
            | (s, l, _) :: rest_un, reserved ->
              Hw.Pmem.reserve_extent p s l;
              live := rest_un @ ((s, l, true) :: reserved)
            | [], _ -> ()))
        ops;
      (* Counter consistency. *)
      if Hw.Pmem.used_frames p <> live_frames () then ok := false;
      if Hw.Pmem.free_frames p + Hw.Pmem.used_frames p <> total then ok := false;
      (* Every live extent is still allocated; reserved ones reserved. *)
      List.iter
        (fun (s, l, r) ->
          for i = 0 to l - 1 do
            let m = Hw.Frame.Mfn.add s i in
            if not (Hw.Pmem.is_allocated p m) then ok := false;
            if r && not (Hw.Pmem.is_reserved p m) then ok := false
          done)
        !live;
      (* No overlaps among live extents. *)
      let seen = Hashtbl.create 512 in
      List.iter
        (fun (s, l, _) ->
          for i = 0 to l - 1 do
            let f = Hw.Frame.Mfn.to_int s + i in
            if Hashtbl.mem seen f then ok := false;
            Hashtbl.replace seen f ()
          done)
        !live;
      !ok)

let prop_pmem_alloc_free_idempotent =
  QCheck.Test.make ~name:"pmem alloc/free restores free count"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 600))
    (fun sizes ->
      let p = mk_pmem () in
      let before = Hw.Pmem.free_frames p in
      let all = List.map (fun n -> Hw.Pmem.alloc_extents p n) sizes in
      List.iter
        (fun extents ->
          List.iter (fun (s, l) -> Hw.Pmem.free_extent p s l) extents)
        all;
      Hw.Pmem.free_frames p = before)

(* --- Cpu / Nic / Machine --- *)

let test_cpu () =
  let c = Hw.Cpu.create ~sockets:2 ~cores_per_socket:14 ~threads_per_core:2 ~freq_ghz:1.7 in
  checki "cores" 28 (Hw.Cpu.total_cores c);
  checki "threads" 56 (Hw.Cpu.total_threads c);
  checki "usable" 54 (Hw.Cpu.usable_threads c ~reserved:2);
  checki "usable floor" 1 (Hw.Cpu.usable_threads c ~reserved:100)

let test_nic_transfer () =
  let nic = Hw.Nic.create ~bandwidth_gbps:1.0 ~efficiency:1.0 ~latency:Sim.Time.zero () in
  (* 1 Gbps = 125 MB/s; 125 MB should take 1 s. *)
  let t = Hw.Nic.transfer_time nic ~streams:1 125_000_000 in
  checkb "1s +- 1ms" true
    (Float.abs (Sim.Time.to_sec_f t -. 1.0) < 0.001)

let test_nic_stream_sharing () =
  let nic = Hw.Nic.create ~bandwidth_gbps:10.0 () in
  let t1 = Hw.Nic.throughput_bytes_per_sec nic ~streams:1 in
  let t4 = Hw.Nic.throughput_bytes_per_sec nic ~streams:4 in
  checkb "4 streams quarter" true (Float.abs ((t1 /. 4.0) -. t4) < 1.0)

let test_machine_catalog () =
  let m1 = Hw.Machine.m1 () and m2 = Hw.Machine.m2 () in
  checki "m1 threads" 8 (Hw.Cpu.total_threads m1.Hw.Machine.cpu);
  checki "m2 threads" 56 (Hw.Cpu.total_threads m2.Hw.Machine.cpu);
  checki "m1 workers" 6 (Hw.Machine.worker_threads m1);
  checki "m1 hosts 12 x 1GiB + 2GiB admin" 14
    (Hw.Machine.max_vms m1 ~vm_ram:(Hw.Units.gib 1));
  checkb "m2 slower per core" true
    (m2.Hw.Machine.costs.Hw.Machine.cpu_factor > 1.0)

let test_machine_pmem () =
  let m1 = Hw.Machine.m1 () in
  let p = Hw.Machine.fresh_pmem m1 in
  checki "16GiB of frames" (16 * 262144) (Hw.Pmem.total_frames p)

let suites =
  [
    ( "hw.units",
      [
        Alcotest.test_case "sizes" `Quick test_units_sizes;
        Alcotest.test_case "rounding" `Quick test_units_rounding;
        Alcotest.test_case "float conversions" `Quick test_units_to_float;
      ] );
    ("hw.frame", [ Alcotest.test_case "typed frames" `Quick test_frame_typed ]);
    ( "hw.pmem",
      [
        Alcotest.test_case "alloc/free counts" `Quick test_pmem_alloc_free_counts;
        Alcotest.test_case "alignment" `Quick test_pmem_alignment;
        Alcotest.test_case "no double allocation" `Quick test_pmem_no_overlap;
        Alcotest.test_case "out of memory" `Quick test_pmem_oom;
        Alcotest.test_case "content tags" `Quick test_pmem_contents;
        Alcotest.test_case "unallocated write rejected" `Quick
          test_pmem_write_unallocated;
        Alcotest.test_case "reservation protects" `Quick test_pmem_reserve_protects;
        Alcotest.test_case "wipe honours preserve" `Quick test_pmem_wipe_semantics;
        Alcotest.test_case "reboot reset reclaims" `Quick test_pmem_reboot_reset;
        qtest prop_pmem_alloc_free_idempotent;
        qtest prop_pmem_random_ops;
      ] );
    ( "hw.machine",
      [
        Alcotest.test_case "cpu topology" `Quick test_cpu;
        Alcotest.test_case "nic transfer time" `Quick test_nic_transfer;
        Alcotest.test_case "nic stream sharing" `Quick test_nic_stream_sharing;
        Alcotest.test_case "catalog" `Quick test_machine_catalog;
        Alcotest.test_case "pmem sizing" `Quick test_machine_pmem;
      ] );
  ]
