type redirection = {
  vector : int;
  delivery_mode : int;
  dest_mode : int;
  polarity : int;
  trigger_mode : int;
  masked : bool;
  dest : int;
}

type t = { id : int; pins : redirection array }

let xen_pins = 48
let kvm_pins = 24

let masked_redirection =
  {
    vector = 0;
    delivery_mode = 0;
    dest_mode = 0;
    polarity = 0;
    trigger_mode = 0;
    masked = true;
    dest = 0;
  }

let generate rng ~pins =
  if pins <= 0 then invalid_arg "Ioapic.generate: non-positive pins";
  let redirection i =
    (* Low pins (legacy ISA range) are typically wired; higher ones are
       mostly masked. *)
    let active = i < 16 || Sim.Rng.int rng 4 = 0 in
    if active then
      {
        vector = 0x20 + Sim.Rng.int rng 0xC0;
        delivery_mode = Sim.Rng.int rng 2;
        dest_mode = Sim.Rng.int rng 2;
        polarity = Sim.Rng.int rng 2;
        trigger_mode = Sim.Rng.int rng 2;
        masked = false;
        dest = Sim.Rng.int rng 8;
      }
    else masked_redirection
  in
  { id = 0; pins = Array.init pins redirection }

let equal a b =
  a.id = b.id
  && Array.length a.pins = Array.length b.pins
  && Array.for_all2 (fun (x : redirection) y -> x = y) a.pins b.pins

let pin_count t = Array.length t.pins

let truncate t ~pins =
  if pins > Array.length t.pins then
    invalid_arg "Ioapic.truncate: extending, not truncating";
  let dropped = ref 0 in
  for i = pins to Array.length t.pins - 1 do
    if not t.pins.(i).masked then incr dropped
  done;
  ({ t with pins = Array.sub t.pins 0 pins }, !dropped)

let extend t ~pins =
  if pins < Array.length t.pins then
    invalid_arg "Ioapic.extend: truncating, not extending";
  let old = Array.length t.pins in
  let pin i = if i < old then t.pins.(i) else masked_redirection in
  { t with pins = Array.init pins pin }

let connected_pins t =
  Array.fold_left (fun acc p -> if p.masked then acc else acc + 1) 0 t.pins

let pp fmt t =
  Format.fprintf fmt "ioapic[%d pins, %d connected]" (pin_count t)
    (connected_pins t)
