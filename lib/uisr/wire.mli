(** Little-endian binary writer/reader with CRC32, shared by the UISR
    codec and the hypervisors' native state formats. *)

module Writer : sig
  type t

  val create : unit -> t

  val reset : t -> unit
  (** Empty the writer for reuse while keeping its backing storage and
      its pool of section scratch buffers.  Encoders that translate
      many VM states in a row (e.g. a fleet campaign) reset one shared
      writer instead of allocating a fresh one per blob, making
      encoding O(blobs) rather than O(blobs x sections) in buffer
      allocations.  {!contents} copies, so bytes returned before a
      [reset] stay valid. *)

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit
  val bool : t -> bool -> unit

  val string : t -> string -> unit
  (** Length-prefixed (u32), so strings of 64 KiB and beyond encode
      faithfully. *)

  val string16 : t -> string -> unit
  (** The legacy u16 length prefix (UISR format v1 and older native
      streams).  Raises [Invalid_argument] on strings >= 64 KiB instead
      of truncating the length. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Count-prefixed (u32). *)

  val array : t -> ('a -> unit) -> 'a array -> unit
  val size : t -> int
  val contents : t -> bytes

  val section : t -> tag:int -> (t -> unit) -> unit
  (** Write a TLV section: u16 tag, u32 length, payload. *)

  val section_crc : t -> tag:int -> (t -> unit) -> unit
  (** Write a checksummed TLV section: u16 tag, u32 length, payload,
      u32 CRC32 of the payload.  The per-section CRC is what lets the
      salvage decoder recover intact siblings of a damaged section. *)
end

module Reader : sig
  type format_error = { offset : int; section : int option; reason : string }
  (** Where a malformation was found: absolute byte offset into the
      buffer being read, the enclosing TLV section tag (if any), and a
      human-readable reason. *)

  type t

  exception Truncated
  exception Bad_format of format_error

  val format_error_to_string : format_error -> string

  val create : ?section:int -> bytes -> t
  (** [?section] labels errors raised from this reader as belonging to
      that TLV tag (used when reading an extracted section payload). *)

  val fail : t -> string -> 'a
  (** Raise {!Bad_format} at the reader's current offset, tagged with
      the enclosing section. *)

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i32 : t -> int32
  val u64 : t -> int64
  val bool : t -> bool

  val string : t -> string
  (** u32 length-prefixed. *)

  val string16 : t -> string
  (** Legacy u16 length-prefixed. *)

  val list : t -> (t -> 'a) -> 'a list
  val array : t -> (t -> 'a) -> 'a array
  val remaining : t -> int
  val eof : t -> bool

  val section : t -> (tag:int -> t -> 'a) -> 'a
  (** Read one TLV section; the callback receives a reader scoped to the
      payload.  Raises {!Bad_format} if the payload is not fully
      consumed. *)

  val section_crc : t -> (tag:int -> t -> 'a) -> 'a
  (** Like {!section} for checksummed sections: verifies the trailing
      payload CRC32 (raising {!Bad_format} on mismatch) before handing
      the payload to the callback. *)
end

val crc32 : bytes -> int32
(** Standard CRC-32 (IEEE 802.3). *)

val crc32_sub : bytes -> pos:int -> len:int -> int32
(** CRC-32 of a slice, without copying. *)

val append_crc : bytes -> bytes
val check_crc : bytes -> (bytes, string) result
(** Split and verify the trailing CRC; [Error] explains the mismatch. *)
