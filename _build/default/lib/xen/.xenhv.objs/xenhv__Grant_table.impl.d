lib/xen/grant_table.ml: Hashtbl Hw List Printf
