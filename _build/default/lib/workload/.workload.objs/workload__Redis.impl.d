lib/workload/redis.ml: Float List Profile Sched Sim Vmstate
