type t = {
  pram : Sim.Time.t;
  translation : Sim.Time.t;
  reboot : Sim.Time.t;
  restoration : Sim.Time.t;
  recovery : Sim.Time.t;
  network : Sim.Time.t;
}

let downtime t = Sim.Time.sum [ t.translation; t.reboot; t.restoration; t.recovery ]
let total t = Sim.Time.add t.pram (downtime t)

let downtime_with_network t =
  (* The NIC starts initialising when the new kernel boots; restoration
     proceeds in parallel.  A networked service is back when both are
     done. *)
  let tail = Sim.Time.max (Sim.Time.add t.restoration t.recovery) t.network in
  Sim.Time.sum [ t.translation; t.reboot; tail ]

let zero =
  { pram = Sim.Time.zero; translation = Sim.Time.zero; reboot = Sim.Time.zero;
    restoration = Sim.Time.zero; recovery = Sim.Time.zero;
    network = Sim.Time.zero }

(* The engines name their top-level phase spans "phase:<field>"; this
   prefix is the contract between the tracer instrumentation and the
   derived breakdown. *)
let span_prefix = "phase:"

let of_trace spans =
  let dur field =
    let name = span_prefix ^ field in
    List.fold_left
      (fun acc s ->
        if String.equal (Obs.Span.name s) name then
          match Obs.Span.duration s with
          | Some d -> Sim.Time.add acc d
          | None -> acc
        else acc)
      Sim.Time.zero spans
  in
  {
    pram = dur "pram";
    translation = dur "translation";
    reboot = dur "reboot";
    restoration = dur "restoration";
    recovery = dur "recovery";
    network = dur "network";
  }

let pp fmt t =
  Format.fprintf fmt
    "pram %a | translation %a | reboot %a | restoration %a | network %a => downtime %a, total %a"
    Sim.Time.pp t.pram Sim.Time.pp t.translation Sim.Time.pp t.reboot
    Sim.Time.pp t.restoration Sim.Time.pp t.network Sim.Time.pp (downtime t)
    Sim.Time.pp (total t);
  if not (Sim.Time.equal t.recovery Sim.Time.zero) then
    Format.fprintf fmt " (incl. recovery %a)" Sim.Time.pp t.recovery

let pp_row fmt t =
  Format.fprintf fmt "%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f"
    (Sim.Time.to_sec_f t.pram)
    (Sim.Time.to_sec_f t.translation)
    (Sim.Time.to_sec_f t.reboot)
    (Sim.Time.to_sec_f (Sim.Time.add t.restoration t.recovery))
    (Sim.Time.to_sec_f t.network)
    (Sim.Time.to_sec_f (downtime t))
    (Sim.Time.to_sec_f (total t))
