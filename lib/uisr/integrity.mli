(** Structured integrity verdicts for UISR blobs.

    [Codec.decode_verified] classifies every blob as [Intact] (bytes
    pristine, state architecturally sane), [Salvaged] (some damage was
    detected, localized by the per-section CRCs or repaired with
    substitute state, and the VM can still resume) or [Rejected] (a
    mandatory section or invariant is gone — the VM must be
    quarantined).  The semantic validator backs the verdict with
    architecture-level checks on the decoded state. *)

type diagnostic = {
  diag_section : string;  (** e.g. ["vcpu[1]"], ["memmap"], ["envelope"] *)
  diag_offset : int option;  (** byte offset inside the blob, if known *)
  diag_reason : string;
  diag_fatal : bool;
      (** fatal diagnostics force [Rejected]; the rest allow salvage *)
}

type verdict =
  | Intact
  | Salvaged of diagnostic list
  | Rejected of diagnostic

type report = {
  verdict : verdict;
  state : Vm_state.t option;  (** decoded state, for Intact/Salvaged *)
  sections_total : int;  (** TLV sections encountered in the blob *)
  sections_ok : int;  (** sections whose CRC and decode both passed *)
}

val diag :
  ?offset:int -> section:string -> fatal:bool -> string -> diagnostic

val diagnostics : report -> diagnostic list
(** All diagnostics carried by the verdict ([] for [Intact]). *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit

val default_pit : Vmstate.Pit.t
(** Power-on PIT substituted when the PIT section is damaged. *)

val default_ioapic : pins:int -> Vmstate.Ioapic.t
(** All-masked IOAPIC substituted when the IOAPIC section is damaged. *)

val validate :
  ?frame_ok:(Hw.Frame.Mfn.t -> bool) -> Vm_state.t -> diagnostic list
(** The semantic validator: LAPIC vector-range and register-shape rules,
    MTRR count/type/overlap rules, XSAVE area bounds against
    [Xsave.component_words], virtqueue index sanity via
    [Virtqueue.of_words], device uniqueness/unplug consistency, memory
    map power-of-two/coverage/overlap rules, and (when [frame_ok] is
    given, typically [Pram.Build.preserve_predicate]) that every mapped
    machine frame is resolvable in the PRAM-preserved frame map.
    Pristine states produced by the hypervisors' [to_uisr] pass with
    zero diagnostics. *)

(**/**)

(* Assembly helpers for [Codec.decode_verified]. *)

val verdict_of :
  outer_ok:bool ->
  scan_diags:diagnostic list ->
  semantic_diags:diagnostic list ->
  state:Vm_state.t ->
  sections_total:int ->
  sections_ok:int ->
  report

val rejected :
  ?offset:int ->
  section:string ->
  sections_total:int ->
  sections_ok:int ->
  string ->
  report
