(** SPECrate 2017 execution model (Table 5).

    An application is a fixed quantity of work; its completion time under
    a schedule (with a transplant in the middle) follows from integrating
    the platform-dependent rate.  Degradation is computed exactly as in
    the paper: the max of the relative slowdowns vs. pure-Xen and
    pure-KVM runs. *)

type run = {
  app : Spec_data.app;
  time_s : float;
  degradation_vs_xen_pct : float;
  degradation_vs_kvm_pct : float;
  degradation_pct : float; (** max of the two, the paper's metric *)
}

val run_app :
  rng:Sim.Rng.t -> sched:Sched.t -> residual_overhead_s:float ->
  Spec_data.app -> run
(** [residual_overhead_s] is a small fixed penalty added by the
    transplant machinery itself (cold caches, NPT rebuild). *)

val run_suite :
  rng:Sim.Rng.t -> sched:Sched.t -> residual_overhead_s:float -> run list

val max_degradation : run list -> float
