type t = (string, string) Hashtbl.t

let create () = Hashtbl.create 64

let normalize path =
  if path = "" || path.[0] <> '/' then invalid_arg "Xenstore: path must be absolute";
  if String.length path > 1 && path.[String.length path - 1] = '/' then
    String.sub path 0 (String.length path - 1)
  else path

let write t path value = Hashtbl.replace t (normalize path) value
let read t path = Hashtbl.find_opt t (normalize path)

let rm t path =
  let path = normalize path in
  let prefix = path ^ "/" in
  let victims =
    Hashtbl.fold
      (fun k _ acc ->
        if String.equal k path || String.starts_with ~prefix k then k :: acc
        else acc)
      t []
  in
  List.iter (Hashtbl.remove t) victims

let list t path =
  let path = normalize path in
  let prefix = if path = "/" then "/" else path ^ "/" in
  let children = Hashtbl.create 8 in
  Hashtbl.iter
    (fun k _ ->
      if String.starts_with ~prefix k then begin
        let rest = String.sub k (String.length prefix) (String.length k - String.length prefix) in
        let child =
          match String.index_opt rest '/' with
          | Some i -> String.sub rest 0 i
          | None -> rest
        in
        if child <> "" then Hashtbl.replace children child ()
      end)
    t;
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) children [])

let entries t = Hashtbl.length t

let domain_path domid = Printf.sprintf "/local/domain/%d" domid

let register_domain t ~domid ~name ~memory_kib ~vcpus =
  let base = domain_path domid in
  write t (base ^ "/name") name;
  write t (base ^ "/memory/target") (string_of_int memory_kib);
  write t (base ^ "/cpu/count") (string_of_int vcpus);
  write t (base ^ "/device/vif/0/state") "connected"

let unregister_domain t ~domid = rm t (domain_path domid)

let domain_ids t =
  List.filter_map int_of_string_opt (list t "/local/domain")
  |> List.sort Int.compare
