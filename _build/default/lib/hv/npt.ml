type t = {
  extents : (Hw.Frame.Mfn.t * int) list;
  nframes : int;
  mutable freed : bool;
}

let div_ceil a b = (a + b - 1) / b

let table_frames_needed ~guest_frames ~page_kind =
  if guest_frames <= 0 then invalid_arg "Npt: non-positive guest size";
  let l1 =
    match page_kind with
    | Hw.Units.Page_4k -> div_ceil guest_frames 512
    | Hw.Units.Page_2m -> 0
  in
  let l2 = div_ceil guest_frames (512 * 512) in
  let l3 = div_ceil guest_frames (512 * 512 * 512) in
  let l4 = 1 in
  l1 + l2 + l3 + l4

let build ~pmem ~guest_frames ~page_kind ~metadata_factor =
  if metadata_factor < 1.0 then invalid_arg "Npt.build: factor below 1";
  let base = table_frames_needed ~guest_frames ~page_kind in
  let nframes =
    int_of_float (Float.round (float_of_int base *. metadata_factor))
  in
  let nframes = Stdlib.max 1 nframes in
  let extents = Hw.Pmem.alloc_extents pmem nframes in
  List.iter
    (fun (start, len) ->
      for i = 0 to len - 1 do
        Hw.Pmem.write pmem (Hw.Frame.Mfn.add start i) 0x4E50540000000000L
      done)
    extents;
  { extents; nframes; freed = false }

let frames t = t.nframes
let bytes t = t.nframes * 4096

let free t ~pmem =
  if not t.freed then begin
    t.freed <- true;
    List.iter (fun (start, len) -> Hw.Pmem.free_extent pmem start len) t.extents
  end

let is_freed t = t.freed
