lib/bhyve/bhyve.ml: Array Bytes Format Hv Hw List Sim String Uisr Ule Vmm_snapshot Vmstate Workload
