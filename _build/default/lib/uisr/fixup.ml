type t =
  | Ioapic_pins_dropped of { kept : int; dropped_connected : int }
  | Ioapic_pins_extended of { from_pins : int; to_pins : int }
  | Msr_dropped of int
  | Device_rescanned of int
  | Lapic_container_changed

let equal a b =
  match (a, b) with
  | Ioapic_pins_dropped x, Ioapic_pins_dropped y ->
    x.kept = y.kept && x.dropped_connected = y.dropped_connected
  | Ioapic_pins_extended x, Ioapic_pins_extended y ->
    x.from_pins = y.from_pins && x.to_pins = y.to_pins
  | Msr_dropped x, Msr_dropped y -> x = y
  | Device_rescanned x, Device_rescanned y -> x = y
  | Lapic_container_changed, Lapic_container_changed -> true
  | ( ( Ioapic_pins_dropped _ | Ioapic_pins_extended _ | Msr_dropped _
      | Device_rescanned _ | Lapic_container_changed ),
      _ ) ->
    false

let is_lossy = function
  | Ioapic_pins_dropped { dropped_connected; _ } -> dropped_connected > 0
  | Msr_dropped _ -> true
  | Ioapic_pins_extended _ | Device_rescanned _ | Lapic_container_changed ->
    false

let pp fmt = function
  | Ioapic_pins_dropped { kept; dropped_connected } ->
    Format.fprintf fmt "ioapic truncated to %d pins (%d connected dropped)"
      kept dropped_connected
  | Ioapic_pins_extended { from_pins; to_pins } ->
    Format.fprintf fmt "ioapic extended %d -> %d pins" from_pins to_pins
  | Msr_dropped index -> Format.fprintf fmt "msr 0x%x dropped" index
  | Device_rescanned id -> Format.fprintf fmt "device %d rescanned" id
  | Lapic_container_changed ->
    Format.pp_print_string fmt "lapic container format changed"

let pp_list fmt fixes =
  if fixes = [] then Format.pp_print_string fmt "(none)"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
      pp fmt fixes
