lib/workload/profile.ml: Float Format Hw Vmstate
