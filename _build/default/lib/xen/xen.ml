let kind = Hv.Kind.Xen
let name = "xen-4.12.1"
let version = "4.12.1"
let hv_type = Hv.Kind.Type1
let platform = Workload.Profile.P_xen
let ioapic_pins = Vmstate.Ioapic.xen_pins
let kernel_image_bytes = Hw.Units.mib 40 (* xen.gz + dom0 vmlinuz + initrd *)
let sequential_migration_receive = true

(* Xen's MSR load list covers the architectural set; AMD-range extras
   (0xC0010000+) are refused by its msr policy. *)
let supports_msr index = index < 0xC0010000

type domain = {
  domid : int;
  dvm : Vmstate.Vm.t;
  npt : Hv.Npt.t;
  shared_info : Hw.Frame.Mfn.t;
  evtchn : Event_channel.t;
  gnttab : Grant_table.t;
  mutable detached : bool;
}

type t = {
  machine : Hw.Machine.t;
  pmem : Hw.Pmem.t;
  mutable doms : domain list;
  sched : Credit.t;
  store : Xenstore.t;
  mutable next_domid : int;
  hv_heap : (Hw.Frame.Mfn.t * int) list; (* Xen heap + dom0 kernel *)
  mutable alive : bool;
}

(* Xen's p2m keeps auditing metadata beside the architectural tables. *)
let npt_metadata_factor = 1.25

(* Fixed footprint of the hypervisor + dom0 working set that is
   reinitialised at each micro-reboot (HV State). *)
let hv_heap_frames = Hw.Units.frames_of_bytes (Hw.Units.mib 48)

let boot ~machine ~pmem ~rng:_ =
  let hv_heap = Hw.Pmem.alloc_extents pmem hv_heap_frames in
  List.iter
    (fun (start, len) ->
      for i = 0 to len - 1 do
        Hw.Pmem.write pmem (Hw.Frame.Mfn.add start i) 0x58454E5F48454150L
      done)
    hv_heap;
  {
    machine;
    pmem;
    doms = [];
    sched =
      Credit.create ~pcpus:(Hw.Cpu.total_threads machine.Hw.Machine.cpu);
    store = Xenstore.create ();
    next_domid = 1; (* dom0 is 0 *)
    hv_heap;
    alive = true;
  }

(* Type-I boot = Xen core + dom0 kernel + device bring-up by dom0.
   Calibrated against Fig. 6/10: ~7.6 s on M1, ~17.7 s on M2. *)
let boot_time ~machine =
  let cpu = machine.Hw.Machine.cpu in
  let threads = Hw.Cpu.total_threads cpu in
  let gib = Hw.Units.to_gib_f machine.Hw.Machine.ram in
  let base = 4.87 in
  let per_socket = 0.9 *. float_of_int cpu.Hw.Cpu.sockets in
  let per_thread = 0.06 *. float_of_int threads in
  let per_gib = 0.05 *. gib in
  Sim.Time.add
    (Sim.Time.of_sec_f (base +. per_socket +. per_thread +. per_gib))
    machine.Hw.Machine.costs.Hw.Machine.dom0_device_init

let machine t = t.machine
let pmem t = t.pmem

let check_alive t = if not t.alive then invalid_arg "Xen: hypervisor is down"

let shutdown t =
  check_alive t;
  if t.doms <> [] then invalid_arg "Xen.shutdown: domains remain";
  List.iter (fun (start, len) -> Hw.Pmem.free_extent t.pmem start len) t.hv_heap;
  t.alive <- false

(* Ring pages a PV backend maps per emulated device (front/back shared
   rings plus a modest buffer pool). *)
let ring_grants_per_device = 32

let build_vmi_state t (vm : Vmstate.Vm.t) =
  let npt =
    Hv.Npt.build ~pmem:t.pmem
      ~guest_frames:(Hw.Units.frames_of_bytes vm.config.ram)
      ~page_kind:vm.config.page_kind ~metadata_factor:npt_metadata_factor
  in
  let shared_info =
    match Hw.Pmem.alloc_extents t.pmem 1 with
    | [ (mfn, 1) ] -> mfn
    | _ -> assert false
  in
  Hw.Pmem.write t.pmem shared_info 0x5348415245444946L;
  (* PV plumbing: per emulated device, two interdomain event channels
     (tx/rx) and a set of ring-page grants to dom0; plus the console and
     xenstore channels and a timer VIRQ. *)
  let evtchn = Event_channel.create () in
  let gnttab = Grant_table.create () in
  let npages = Vmstate.Guest_mem.page_count vm.mem in
  Array.iteri
    (fun di d ->
      if not (Vmstate.Device.is_passthrough d) then begin
        List.iter
          (fun lane ->
            let port = Event_channel.alloc_unbound evtchn ~remote_domid:0 in
            Event_channel.bind_interdomain evtchn port ~remote_domid:0
              ~remote_port:((100 * (di + 1)) + lane))
          [ 0; 1 ];
        for g = 0 to ring_grants_per_device - 1 do
          let page = (di + g) mod npages in
          let gref =
            Grant_table.grant gnttab
              ~frame:(Vmstate.Guest_mem.gfn_of_page vm.mem page)
              ~granted_to:0 ~readonly:(g mod 2 = 1)
          in
          Grant_table.map gnttab gref
        done
      end)
    vm.devices;
  List.iter
    (fun lane ->
      let port = Event_channel.alloc_unbound evtchn ~remote_domid:0 in
      Event_channel.bind_interdomain evtchn port ~remote_domid:0
        ~remote_port:lane)
    [ 2; 3 ] (* console, xenstore *);
  ignore (Event_channel.bind_virq evtchn ~virq:0 (* VIRQ_TIMER *));
  (npt, shared_info, evtchn, gnttab)

let register t dom =
  t.doms <- t.doms @ [ dom ];
  Credit.insert_domain t.sched ~domid:dom.domid
    ~vcpus:(Array.length dom.dvm.Vmstate.Vm.vcpus);
  Xenstore.register_domain t.store ~domid:dom.domid
    ~name:dom.dvm.Vmstate.Vm.config.name
    ~memory_kib:(dom.dvm.Vmstate.Vm.config.ram / 1024)
    ~vcpus:dom.dvm.Vmstate.Vm.config.vcpus

let adopt_vm t (vm : Vmstate.Vm.t) =
  check_alive t;
  let npt, shared_info, evtchn, gnttab = build_vmi_state t vm in
  let dom =
    { domid = t.next_domid; dvm = vm; npt; shared_info; evtchn; gnttab;
      detached = false }
  in
  t.next_domid <- t.next_domid + 1;
  register t dom;
  dom

let create_vm t ~rng config =
  check_alive t;
  let vm = Vmstate.Vm.create ~pmem:t.pmem ~rng ~ioapic_pins config in
  adopt_vm t vm

let free_vmi_state t dom =
  if not dom.detached then begin
    dom.detached <- true;
    (* PV plumbing first: backends unmap their grants, channels close. *)
    ignore (Grant_table.force_teardown dom.gnttab);
    ignore (Event_channel.close_all dom.evtchn);
    Hv.Npt.free dom.npt ~pmem:t.pmem;
    Hw.Pmem.free_extent t.pmem dom.shared_info 1;
    Credit.remove_domain t.sched ~domid:dom.domid;
    Xenstore.unregister_domain t.store ~domid:dom.domid;
    t.doms <- List.filter (fun d -> d.domid <> dom.domid) t.doms
  end

let detach_vm t dom =
  check_alive t;
  free_vmi_state t dom;
  dom.dvm

let destroy_vm t dom =
  check_alive t;
  free_vmi_state t dom;
  Vmstate.Guest_mem.free dom.dvm.Vmstate.Vm.mem

let domains t = t.doms

let find_domain t vm_name =
  List.find_opt
    (fun d -> String.equal d.dvm.Vmstate.Vm.config.name vm_name)
    t.doms

let vm dom = dom.dvm
let pause _t dom = Vmstate.Vm.pause dom.dvm
let resume _t dom = Vmstate.Vm.resume dom.dvm

let native_context dom =
  Hvm_records.encode
    {
      Hvm_records.vcpus = Array.to_list dom.dvm.Vmstate.Vm.vcpus;
      ioapic = dom.dvm.Vmstate.Vm.ioapic;
      pit = dom.dvm.Vmstate.Vm.pit;
    }

let to_uisr dom =
  if Vmstate.Vm.is_running dom.dvm then
    invalid_arg "Xen.to_uisr: VM must be paused";
  (* Route platform state through the native save format, exactly as the
     prototype reuses xc_domain_hvm_getcontext (section 4.2.1). *)
  let plat =
    match Hvm_records.decode (native_context dom) with
    | Ok p -> p
    | Error e ->
      invalid_arg
        (Format.asprintf "Xen.to_uisr: native context: %a" Hvm_records.pp_error e)
  in
  let base = Uisr.Vm_state.of_vm ~source_hypervisor:name dom.dvm in
  { base with vcpus = plat.Hvm_records.vcpus; ioapic = plat.Hvm_records.ioapic;
    pit = plat.Hvm_records.pit }


let from_uisr t ~rng ~mem (uisr : Uisr.Vm_state.t) =
  check_alive t;
  let fixups = ref [] in
  if not (String.equal uisr.source_hypervisor name) then
    fixups := Uisr.Fixup.Lapic_container_changed :: !fixups;
  let ioapic =
    if Vmstate.Ioapic.pin_count uisr.ioapic < ioapic_pins then begin
      fixups :=
        Uisr.Fixup.Ioapic_pins_extended
          { from_pins = Vmstate.Ioapic.pin_count uisr.ioapic;
            to_pins = ioapic_pins }
        :: !fixups;
      Vmstate.Ioapic.extend uisr.ioapic ~pins:ioapic_pins
    end
    else uisr.ioapic
  in
  let vcpus = List.map (Hv.Restore.filter_msrs ~supports_msr fixups) uisr.vcpus in
  let devices = Hv.Restore.devices_of_snapshots ~rng fixups uisr.devices in
  let config = Hv.Restore.config_of_uisr ~devices uisr in
  let vm : Vmstate.Vm.t =
    {
      config;
      vcpus = Array.of_list vcpus;
      ioapic;
      pit = uisr.pit;
      devices = Array.of_list devices;
      mem;
      run_state = Vmstate.Vm.Paused;
    }
  in
  (adopt_vm t vm, List.rev !fixups)

(* --- memory-separation accounting --- *)

let vmi_state_bytes _t dom =
  Hv.Npt.bytes dom.npt + 4096 (* shared info *)
  + Event_channel.state_bytes dom.evtchn
  + Grant_table.state_bytes dom.gnttab
  + Bytes.length (native_context dom)

let management_state_bytes t =
  Credit.state_bytes t.sched + (Xenstore.entries t.store * 128)

let hv_state_bytes _t = hv_heap_frames * 4096

let rebuild_management_state t =
  check_alive t;
  Credit.rebuild t.sched
    (List.map
       (fun d -> (d.domid, Array.length d.dvm.Vmstate.Vm.vcpus))
       t.doms);
  (* Cost: toolstack walks every domain record once. *)
  let per_dom = 0.004 *. t.machine.Hw.Machine.costs.Hw.Machine.mgmt_factor in
  Sim.Time.of_sec_f (0.01 +. (per_dom *. float_of_int (List.length t.doms)))

let management_state_consistent t =
  Credit.consistent t.sched
    (List.map
       (fun d -> (d.domid, Array.length d.dvm.Vmstate.Vm.vcpus))
       t.doms)

(* --- calibrated costs --- *)

let cost_factor t =
  t.machine.Hw.Machine.costs.Hw.Machine.cpu_factor
  *. t.machine.Hw.Machine.costs.Hw.Machine.mgmt_factor

let save_cost t dom =
  let vcpus = float_of_int (Array.length dom.dvm.Vmstate.Vm.vcpus) in
  let gib = Hw.Units.to_gib_f dom.dvm.Vmstate.Vm.config.ram in
  Sim.Time.of_sec_f
    ((0.040 +. (0.008 *. vcpus) +. (0.010 *. gib)) *. cost_factor t)

let restore_cost t dom =
  (* libxl-side domain rebuild is markedly heavier than kvmtool's. *)
  let vcpus = float_of_int (Array.length dom.dvm.Vmstate.Vm.vcpus) in
  let gib = Hw.Units.to_gib_f dom.dvm.Vmstate.Vm.config.ram in
  Sim.Time.of_sec_f
    ((0.100 +. (0.012 *. vcpus) +. (0.020 *. gib)) *. cost_factor t)

let migration_resume_cost ~machine ~vcpus =
  let f = machine.Hw.Machine.costs.Hw.Machine.mgmt_factor in
  Sim.Time.of_sec_f ((0.125 +. (0.003 *. float_of_int vcpus)) *. f)

(* --- extras --- *)

let domid dom = dom.domid
let event_channels dom = dom.evtchn
let grant_table dom = dom.gnttab
let npt_frames dom = Hv.Npt.frames dom.npt
let xenstore t = t.store
let scheduler t = t.sched
