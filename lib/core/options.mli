(** InPlaceTP optimisation toggles (section 4.2.5) and recovery
    policy knobs.

    All four optimisations are on by default — the paper's
    configuration; turning them off individually drives the ablation
    benches. *)

type t = {
  prepare_before_pause : bool;
      (** build PRAM while VMs still run (pre-copy-style preparation) *)
  parallel_translation : bool;
      (** one worker thread per VM for translation/restoration *)
  huge_page_pram : bool;
      (** 2 MiB PRAM entries instead of per-4 KiB-page entries *)
  early_restoration : bool;
      (** start VM restoration as soon as the target's VM services are
          up, overlapping the boot tail *)
  restore_retry_limit : int;
      (** post-PNR recovery: how many extra per-VM restore attempts
          before the VM is quarantined (default 2) *)
}

val default : t
val all_off : t
val pp : Format.formatter -> t -> unit
