(* Datacenter CVE response drill: walk the studied vulnerability
   history, show what the transplant policy decides for a Xen fleet,
   then act out one full incident end-to-end, including the transplant
   back once the patch lands (Fig. 1b).

   Run with: dune exec examples/cve_response.exe *)

let () =
  Format.printf "=== CVE response drill ===@.@.";

  (* 1. The study that motivates transplant (section 2). *)
  Format.printf "--- vulnerability study, 2013-2019 (Table 1) ---@.";
  Format.printf "year   xen(crit/med)  kvm(crit/med)  common(crit/med)@.";
  let rows = Cve.Nvd.table1 () in
  List.iter
    (fun (r : Cve.Nvd.table1_row) ->
      Format.printf "%4d   %3d / %3d      %3d / %3d      %3d / %3d@."
        r.row_year r.xen_crit r.xen_med r.kvm_crit r.kvm_med r.common_crit
        r.common_med)
    rows;
  let t = Cve.Nvd.total rows in
  Format.printf "total  %3d / %3d      %3d / %3d      %3d / %3d@.@."
    t.xen_crit t.xen_med t.kvm_crit t.kvm_med t.common_crit t.common_med;

  Format.printf "KVM vulnerability windows: %a@." Cve.Window.pp_stats
    (Cve.Window.kvm_stats ());
  Format.printf "transplants a Xen fleet would need per year:@.";
  List.iter
    (fun (year, n) -> Format.printf "  %d: %d critical flaws trigger one@." year n)
    (Cve.Window.transplants_needed_per_year ~fleet:[ "xen"; "kvm" ]
       ~current:"xen");
  Format.printf "@.";

  (* 2. One incident, end to end. *)
  let host =
    Hypertp.Api.provision ~name:"prod-07" ~machine:(Hw.Machine.m2 ())
      ~hv:Hv.Kind.Xen
      [
        Vmstate.Vm.config ~name:"db" ~vcpus:2 ~ram:(Hw.Units.gib 4)
          ~workload:Vmstate.Vm.Wl_mysql ();
        Vmstate.Vm.config ~name:"cache" ~vcpus:1 ~ram:(Hw.Units.gib 2)
          ~workload:Vmstate.Vm.Wl_redis ();
        Vmstate.Vm.config ~name:"batch" ~vcpus:4 ~ram:(Hw.Units.gib 8)
          ~workload:(Vmstate.Vm.Wl_spec "gcc") ();
      ]
  in
  Format.printf "--- incident: CVE-2016-6258 lands; fleet runs %s ---@."
    (Hv.Host.hypervisor_name host);
  let response =
    Hypertp.Api.respond_to_cve ~host ~cve_id:"CVE-2016-6258" ~mode:`Apply ()
  in
  Format.printf "policy: %a@." Cve.Window.pp_advice response.advice;
  (match response.outcome with
  | `Applied r ->
    Format.printf "executed InPlaceTP on M2: downtime %a (paper: ~3.0 s)@."
      Sim.Time.pp
      (Hypertp.Phases.downtime r.phases);
    assert (Hypertp.Inplace.all_ok r.checks)
  | `Advised _ | `No_action | `No_safe_alternative -> assert false);

  (* 3. Patch released and applied upstream: transplant back. *)
  Format.printf
    "@.--- 7 days later: Xen patch released; transplanting back ---@.";
  let back =
    Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Xen ()
  in
  Format.printf "KVM -> Xen downtime %a (paper: ~7.8 s on M1-class, more on M2: type-I boot)@."
    Sim.Time.pp
    (Hypertp.Phases.downtime back.phases);
  assert (Hypertp.Inplace.all_ok back.checks);
  Format.printf "@.vulnerability window covered; VMs never rebooted.@.";
  Format.printf "%a@." Hv.Host.pp host
