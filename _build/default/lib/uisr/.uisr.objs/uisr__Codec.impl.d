lib/uisr/codec.ml: Bytes Char Format Hw Int64 List Printf Reader String Vm_state Vmstate Wire Writer
