lib/xen/xen.mli: Credit Event_channel Grant_table Hv Xenstore
