(** PRAM page entries.

    Each entry records one run of guest memory: the guest frame number,
    the machine frame number backing it, and a power-of-two run length
    (so hypervisor-side large pages are one entry — section 4.2.5).
    Entries pack into 8 bytes, which is where the paper's "8-byte records
    for every VM's memory page" worst-case overhead comes from. *)

type t = {
  gfn : Hw.Frame.Gfn.t;
  mfn : Hw.Frame.Mfn.t;
  order : int; (** run covers [2^order] 4 KiB frames; 0..9 *)
}

val max_order : int (* 9 = one 2 MiB page *)

val create : gfn:Hw.Frame.Gfn.t -> mfn:Hw.Frame.Mfn.t -> order:int -> t
(** Raises [Invalid_argument] if [order] is out of range or either frame
    number exceeds the packed field width. *)

val frames : t -> int

val pack : t -> int64
(** 8-byte encoding: gfn in bits 63..38, mfn in bits 37..6, order in
    bits 5..0. *)

val unpack : int64 -> t

val of_memmap_entry :
  granularity:Hw.Units.page_kind -> Uisr.Vm_state.memmap_entry -> t list
(** Convert a UISR memory-map run into PRAM entries.  With [Page_4k]
    granularity every 4 KiB frame gets its own entry (the original PRAM
    patchset); with [Page_2m] runs are split into maximal power-of-two
    entries up to 2 MiB (the paper's huge-page adaptation). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
