(** Per-hypervisor application performance profiles.

    The paper observes that the same application performs differently on
    Xen and KVM (Table 5 columns, the +37 % Redis jump of Fig. 11); a
    transplant therefore changes steady-state performance in addition to
    inserting a downtime gap.  These profiles are the calibrated ground
    truth the workload models draw from. *)

type platform = P_xen | P_kvm | P_bhyve

val equal_platform : platform -> platform -> bool
val pp_platform : Format.formatter -> platform -> unit

val redis_qps : platform -> float
(** Steady-state redis-benchmark QPS (Fig. 11: ~29 kQPS on Xen, ~37 %
    higher on KVM for this workload). *)

val mysql_qps : platform -> float
val mysql_latency_ms : platform -> float

val darknet_iteration_s : platform -> float
(** MNIST training iteration duration (Table 6 default: 2.044 s). *)

val streaming_mbps : platform -> float

(** Degradation while the VM is under pre-copy migration (dirty-page
    tracking + network contention). Factors multiply the steady rate. *)

val precopy_qps_factor : Vmstate.Vm.workload_kind -> float
val precopy_latency_factor : Vmstate.Vm.workload_kind -> float
val precopy_slowdown : Vmstate.Vm.workload_kind -> float
(** Completion-time stretch for batch workloads during pre-copy. *)

val dirty_pages_per_sec :
  Vmstate.Vm.workload_kind -> ram:Hw.Units.bytes_ ->
  page_kind:Hw.Units.page_kind -> float
(** Guest page dirtying rate driving the pre-copy loop.  Idle guests
    dirty a handful of pages a second (kernel timekeeping); databases
    dirty a substantial share of their working set. *)

val transplant_residual_overhead : Vmstate.Vm.workload_kind -> float
(** Lingering post-transplant slowdown factor (cold caches, rebuilt
    NPTs), applied for a short window after resume. *)
