(** Versioned binary codec for UISR blobs.

    Layout (v2): magic "UISR" + u16 format version + u8 flags, followed
    by TLV sections (VM info, one section per vCPU, IOAPIC, PIT,
    devices, memory map) each carrying its own payload CRC32, terminated
    by a CRC32 over everything before it.  Flag bit 0 records whether
    the per-section checksums are present, so a reader can tell how a
    blob was framed; v1 blobs (no flags byte, no section checksums,
    u16-prefixed strings) still decode.

    {!decode} is the strict reader: unknown section tags are rejected;
    truncated or corrupted blobs fail decoding — the failure-injection
    tests depend on both properties.  {!decode_verified} is the salvage
    reader: it recovers every section whose CRC checks even when
    siblings are damaged, substitutes power-on defaults for damaged
    non-critical sections, runs the semantic validator, and never
    raises.

    The format is deliberately close in spirit to Xen's HVM save-record
    stream (typed records with explicit lengths): the paper chose a
    slightly modified Xen representation as its UISR because Xen's is
    mature and open (section 4.2). *)

type error =
  | Truncated
  | Bad_magic
  | Unsupported_version of int
  | Crc_mismatch of string
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val format_version : int
(** Current version (2): flags byte + per-section CRC32. *)

val legacy_format_version : int
(** v1: no flags byte, no section checksums, u16 string prefixes. *)

(** Section tags, exposed for targeted corruption and diagnostics. *)

val tag_vm_info : int
val tag_vcpu : int
val tag_ioapic : int
val tag_pit : int
val tag_devices : int
val tag_memmap : int

val section_name : int -> string

val encode : Vm_state.t -> bytes
(** Encode at {!format_version} (checksummed sections). *)

val encode_v1 : Vm_state.t -> bytes
(** Encode at {!legacy_format_version} — byte-identical to what older
    HyperTP builds wrote; kept so compatibility decoding stays honest
    and testable. *)

val decode : bytes -> (Vm_state.t, error) result
(** Strict decode; accepts {!format_version} and
    {!legacy_format_version}. *)

val decode_verified :
  ?frame_ok:(Hw.Frame.Mfn.t -> bool) -> bytes -> Integrity.report
(** The salvage decoder.  Classifies the blob (see {!Integrity.verdict})
    and returns decoded state whenever the VM can still resume.  Never
    raises.  [frame_ok] (typically [Pram.Build.preserve_predicate])
    lets the semantic pass check that every mapped machine frame
    survives in the PRAM-preserved frame map. *)

val corrupt : bytes -> bytes
(** A copy of the blob with one payload byte flipped, leaving the
    length intact — the deterministic bit-rot the fault-injection
    campaigns feed to {!decode}, which must reject it
    ([Crc_mismatch]). *)

val corrupt_section : tag:int -> bytes -> bytes
(** A copy of a v2 blob with one byte flipped in the middle of the
    first section carrying [tag] — damages that section's CRC (and the
    envelope CRC) while leaving the sibling sections salvageable.
    Raises [Invalid_argument] if the blob is not v2 or has no such
    section. *)

val size_bytes : Vm_state.t -> int
(** Encoded size — the "UISR formats" series of Fig. 14. *)

val platform_size_bytes : Vm_state.t -> int
(** Encoded size of the platform sections only (vCPUs + IOAPIC + PIT +
    devices), excluding the memory map (accounted to PRAM in Fig. 14). *)

(**/**)

(* Per-record put/get pairs, exposed for the round-trip property tests. *)

val put_lapic : Wire.Writer.t -> Vmstate.Lapic.t -> unit
val get_lapic : Wire.Reader.t -> Vmstate.Lapic.t
val put_mtrr : Wire.Writer.t -> Vmstate.Mtrr.t -> unit
val get_mtrr : Wire.Reader.t -> Vmstate.Mtrr.t
val put_xsave : Wire.Writer.t -> Vmstate.Xsave.t -> unit
val get_xsave : Wire.Reader.t -> Vmstate.Xsave.t
val put_pit : Wire.Writer.t -> Vmstate.Pit.t -> unit
val get_pit : Wire.Reader.t -> Vmstate.Pit.t
val put_device : Wire.Writer.t -> Vm_state.device_snapshot -> unit
val get_device : Wire.Reader.t -> Vm_state.device_snapshot
