(* Per-CVE, per-population mitigation decisions.

   The lattice: [Transplant_all] always moves when somewhere safe
   exists, [Defer_all] never moves, [Cost_aware] compares the two
   exposures — the realized campaign simulation against waiting out the
   patch delay — and takes the cheaper.  Because the cost-aware choice
   is the exact minimum of the two other policies' per-episode
   exposures (computed on the same cohort with the same campaign seed),
   it can never score worse than either baseline. *)

type kind = Cost_aware | Transplant_all | Defer_all

let all_kinds = [ Cost_aware; Transplant_all; Defer_all ]

let kind_to_string = function
  | Cost_aware -> "cost-aware"
  | Transplant_all -> "transplant-all"
  | Defer_all -> "defer-all"

let kind_of_string = function
  | "cost-aware" -> Some Cost_aware
  | "transplant-all" -> Some Transplant_all
  | "defer-all" -> Some Defer_all
  | _ -> None

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

type action =
  | Transplant of string
  | Wait
  | Defer

let action_to_string = function
  | Transplant hv -> "transplant:" ^ hv
  | Wait -> "wait"
  | Defer -> "defer"

let action_of_string s =
  match String.index_opt s ':' with
  | Some i when String.equal (String.sub s 0 i) "transplant" ->
    Some (Transplant (String.sub s (i + 1) (String.length s - i - 1)))
  | _ -> ( match s with "wait" -> Some Wait | "defer" -> Some Defer | _ -> None)

let pp_action fmt a = Format.pp_print_string fmt (action_to_string a)

let decide kind ~advice ~transplant_hh ~wait_hh =
  match (advice, kind) with
  | (Cve.Window.No_action | Cve.Window.Wait_for_patch), _ -> Wait
  | Cve.Window.No_safe_alternative, _ -> Defer
  | Cve.Window.Transplant_to _, Defer_all -> Defer
  | Cve.Window.Transplant_to hv, Transplant_all -> Transplant hv
  | Cve.Window.Transplant_to hv, Cost_aware -> (
    (* Strict inequality: on a tie the wait branch is the exact
       defer-all exposure, so ties keep the dominance bound. *)
    match transplant_hh with
    | Some t when t < wait_hh -> Transplant hv
    | Some _ | None -> Wait)

(* A scalar, simulation-free transplant estimate for the coverage
   audit: campaign wall ~ serial batches of the expected host upgrade,
   stretched by the operational tempo; the average host is covered at
   half the wall. *)
let scalar_transplant_hh ~hosts ~vms_per_host ~concurrency ~tempo =
  if hosts <= 0 then 0.0
  else begin
    let per_host =
      Hypertp.Costs.expected_host_upgrade_seconds ~boot_seconds:30.0
        ~vms:vms_per_host
    in
    let batches =
      float_of_int ((hosts + concurrency - 1) / Stdlib.max 1 concurrency)
    in
    let wall_hours = per_host *. batches *. tempo /. 3600.0 in
    float_of_int hosts *. wall_hours /. 2.0
  end
