(** The Unified Intermediate State Representation of one VM.

    This is the hypervisor-neutral description of everything needed to
    restore a VM under any HyperTP-compliant hypervisor (section 3.1):
    platform state per vCPU and per VM, device snapshots, and the memory
    map pointing at the in-place Guest State.  The typed view lives here;
    the byte-level format is {!Codec}. *)

type memmap_entry = {
  gfn : Hw.Frame.Gfn.t;
  mfn : Hw.Frame.Mfn.t;
  frames : int; (** power-of-two run length in 4 KiB frames *)
}

type device_snapshot = {
  dev_id : int;
  dev_kind : Vmstate.Device.kind;
  dev_unplugged : bool;
      (** network devices are unplugged pre-transplant (section 4.2.3) *)
  dev_emulation_state : int64 array;
  dev_queues : int64 array array;
      (** serialised virtqueues ({!Vmstate.Virtqueue.to_words}); the ring
          indices must land unchanged on the target *)
  dev_tcp_connections : int;
}

type t = {
  vm_name : string;
  vcpus : Vmstate.Vcpu.t list;
  ioapic : Vmstate.Ioapic.t;
  pit : Vmstate.Pit.t;
  devices : device_snapshot list;
  page_kind : Hw.Units.page_kind;
  ram_bytes : Hw.Units.bytes_;
  memmap : memmap_entry list;
  source_hypervisor : string;
  workload : Vmstate.Vm.workload_kind;
      (** orchestrator metadata riding along with the state, as libxl's
          domain-config JSON rides along a migration stream *)
  inplace_compatible : bool;
}

val of_vm : source_hypervisor:string -> Vmstate.Vm.t -> t
(** Capture a paused VM: snapshot platform + devices, derive the memory
    map from the guest address space's host extents (splitting runs into
    power-of-two lengths as PRAM entries require).  Emulated network
    devices are captured as unplugged.  Raises [Invalid_argument] if the
    VM is still running. *)

val memmap_of_guest_mem : Vmstate.Guest_mem.t -> memmap_entry list

val total_mapped_frames : t -> int
val vcpu_count : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
