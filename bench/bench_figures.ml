(* Regeneration of the paper's figures: 6 (time breakdown), 7/10
   (InPlaceTP scalability both directions), 8/9 (MigrationTP downtime
   and total time sweeps), 11/12 (application timelines), 13 (cluster),
   14 (memory overhead), plus the section 4.2.5 ablations. *)

open Bench_util

let inplace_once ?(options = Hypertp.Options.default) ?obs ~machine ~src_kind
    ~seed vms =
  let host =
    match src_kind with
    | Hv.Kind.Xen -> fresh_xen_host ~machine ~seed vms
    | Hv.Kind.Kvm -> fresh_kvm_host ~machine ~seed vms
    | Hv.Kind.Bhyve ->
      Hypertp.Api.provision ~seed ~name:"bench-src" ~machine ~hv:Hv.Kind.Bhyve
        vms
  in
  Hypertp.Inplace.run ~options ?obs
    ~rng:(Sim.Rng.create (Int64.add seed 7L))
    ~host
    ~target:(Hypertp.Api.hypervisor_of (Hv.Kind.other src_kind))
    ()

let phase_stats reports select =
  Sim.Stats.summarize
    (List.map (fun r -> Sim.Time.to_sec_f (select r.Hypertp.Inplace.phases)) reports)

(* --- Fig 6 --- *)

let fig6 () =
  header "Fig 6: InPlaceTP time breakdown, Xen->KVM, single 1 vCPU / 1 GiB VM";
  Format.printf
    "machine   PRAM    Transl  Reboot  Restore  | downtime  total  | network@.";
  List.iter
    (fun machine ->
      let reports =
        repeat (fun rng ->
            inplace_once ~machine ~src_kind:Hv.Kind.Xen ~seed:(seed_of_rng rng)
              [ vm_config () ])
      in
      List.iter
        (fun r -> assert (Hypertp.Inplace.all_ok r.Hypertp.Inplace.checks))
        reports;
      let m select = (phase_stats reports select).Sim.Stats.mean in
      Format.printf
        "%-8s  %.3f   %.3f   %.3f   %.3f    | %.3f     %.3f  | %.3f@."
        machine.Hw.Machine.name
        (m (fun p -> p.Hypertp.Phases.pram))
        (m (fun p -> p.Hypertp.Phases.translation))
        (m (fun p -> p.Hypertp.Phases.reboot))
        (m (fun p -> p.Hypertp.Phases.restoration))
        (m Hypertp.Phases.downtime)
        (m Hypertp.Phases.total)
        (m (fun p -> p.Hypertp.Phases.network)))
    [ Hw.Machine.m1 (); Hw.Machine.m2 () ];
  (* Span-derived cross-check: re-run once per machine with a tracer
     attached and recover the breakdown from the trace alone.  The
     derived downtime must equal the report's to the tick. *)
  Format.printf "@.span-derived breakdown (one traced run each):@.";
  List.iter
    (fun machine ->
      let tr = Obs.Tracer.create () in
      let r =
        inplace_once ~obs:tr ~machine ~src_kind:Hv.Kind.Xen ~seed:1234L
          [ vm_config () ]
      in
      let derived = Hypertp.Phases.of_trace (Obs.Tracer.spans tr) in
      assert (
        Sim.Time.equal
          (Hypertp.Phases.downtime derived)
          (Hypertp.Phases.downtime r.Hypertp.Inplace.phases));
      Format.printf "%-8s  %a@." machine.Hw.Machine.name Hypertp.Phases.pp
        derived)
    [ Hw.Machine.m1 (); Hw.Machine.m2 () ];
  note
    "paper M1: pram 0.45, transl 0.08, reboot 1.52, restore 0.12 -> downtime 1.7, network 6.6@.";
  note
    "paper M2: pram 0.50, transl 0.24, reboot 2.40, restore 0.34 -> downtime 3.01, network 2.3@."

(* --- Fig 7 / Fig 10 --- *)

let scalability_sweep ~src_kind () =
  let directions =
    Printf.sprintf "%s->%s"
      (Hv.Kind.to_string src_kind)
      (Hv.Kind.to_string (Hv.Kind.other src_kind))
  in
  List.iter
    (fun machine ->
      subheader
        (Printf.sprintf "%s on %s: vCPU sweep (1 GiB)" directions
           machine.Hw.Machine.name);
      Format.printf "vcpus  pram   transl reboot restore | downtime@.";
      List.iter
        (fun vcpus ->
          let reports =
            repeat (fun rng ->
                inplace_once ~machine ~src_kind ~seed:(seed_of_rng rng)
                  [ vm_config ~vcpus () ])
          in
          let m select = (phase_stats reports select).Sim.Stats.mean in
          Format.printf "%5d  %.3f  %.3f  %.3f  %.3f   | %.3f@." vcpus
            (m (fun p -> p.Hypertp.Phases.pram))
            (m (fun p -> p.Hypertp.Phases.translation))
            (m (fun p -> p.Hypertp.Phases.reboot))
            (m (fun p -> p.Hypertp.Phases.restoration))
            (m Hypertp.Phases.downtime))
        [ 1; 2; 4; 6; 8; 10 ];
      subheader
        (Printf.sprintf "%s on %s: memory sweep (1 vCPU)" directions
           machine.Hw.Machine.name);
      Format.printf "GiB    pram   transl reboot restore | downtime@.";
      List.iter
        (fun gib ->
          let reports =
            repeat (fun rng ->
                inplace_once ~machine ~src_kind ~seed:(seed_of_rng rng)
                  [ vm_config ~gib () ])
          in
          let m select = (phase_stats reports select).Sim.Stats.mean in
          Format.printf "%5d  %.3f  %.3f  %.3f  %.3f   | %.3f@." gib
            (m (fun p -> p.Hypertp.Phases.pram))
            (m (fun p -> p.Hypertp.Phases.translation))
            (m (fun p -> p.Hypertp.Phases.reboot))
            (m (fun p -> p.Hypertp.Phases.restoration))
            (m Hypertp.Phases.downtime))
        [ 2; 4; 6; 8; 10; 12 ];
      subheader
        (Printf.sprintf "%s on %s: #VM sweep (1 vCPU / 1 GiB each)" directions
           machine.Hw.Machine.name);
      Format.printf "#VMs   pram   transl reboot restore | downtime@.";
      List.iter
        (fun nvms ->
          let vms =
            List.init nvms (fun i -> vm_config ~name:(Printf.sprintf "vm%d" i) ())
          in
          let reports =
            repeat (fun rng ->
                inplace_once ~machine ~src_kind ~seed:(seed_of_rng rng) vms)
          in
          let m select = (phase_stats reports select).Sim.Stats.mean in
          Format.printf "%5d  %.3f  %.3f  %.3f  %.3f   | %.3f@." nvms
            (m (fun p -> p.Hypertp.Phases.pram))
            (m (fun p -> p.Hypertp.Phases.translation))
            (m (fun p -> p.Hypertp.Phases.reboot))
            (m (fun p -> p.Hypertp.Phases.restoration))
            (m Hypertp.Phases.downtime))
        [ 2; 4; 6; 8; 10; 12 ])
    [ Hw.Machine.m1 (); Hw.Machine.m2 () ]

let fig7 () =
  header "Fig 7: InPlaceTP scalability, Xen->KVM";
  scalability_sweep ~src_kind:Hv.Kind.Xen ();
  note "paper: downtime within 1.7-3.6 s (M1) and 2.94-4.28 s (M2)@."

let fig10 () =
  header "Fig 10: InPlaceTP scalability, KVM->Xen";
  scalability_sweep ~src_kind:Hv.Kind.Kvm ();
  note "paper: ~7.8 s on M1 and ~17.8 s on M2, dominated by the Xen+dom0 boot@."

(* --- Fig 8 / Fig 9 --- *)

let migration_sweep ~dst_kind ~configs ~seed_base =
  List.map
    (fun (label, vms) ->
      let per_rep =
        repeat (fun rng ->
            let seed = Int64.add seed_base (seed_of_rng rng) in
            let src = fresh_xen_host ~seed vms in
            let dst = fresh_dst ~seed:(Int64.add seed 1L) dst_kind in
            (Hypertp.Api.transplant_migration ~rng ~src ~dst ())
              .Hypertp.Migrate.per_vm)
      in
      (label, List.concat per_rep))
    configs

let fig8_9 () =
  header "Fig 8 + Fig 9: MigrationTP vs Xen->Xen across sweeps";
  let sweeps =
    [
      ( "vCPUs (1 GiB)",
        List.map
          (fun v -> (string_of_int v, [ vm_config ~vcpus:v () ]))
          [ 1; 2; 4; 6; 8; 10 ] );
      ( "memory GiB (1 vCPU)",
        List.map
          (fun g -> (string_of_int g, [ vm_config ~gib:g () ]))
          [ 2; 4; 6; 8; 10; 12 ] );
      ( "#VMs (1 vCPU / 1 GiB)",
        List.map
          (fun n ->
            ( string_of_int n,
              List.init n (fun i -> vm_config ~name:(Printf.sprintf "v%d" i) ()) ))
          [ 2; 4; 6; 8; 10; 12 ] );
    ]
  in
  List.iter
    (fun (sweep_name, configs) ->
      subheader (Printf.sprintf "sweep: %s" sweep_name);
      Format.printf
        "point | Xen downtime(ms)             | TP downtime(ms)              | Xen total(s) | TP total(s)@.";
      List.iter2
        (fun (label, xen_vms) (_, tp_vms) ->
          let dms l =
            Sim.Stats.summarize
              (List.map
                 (fun (v : Hypertp.Migrate.vm_report) -> Sim.Time.to_ms_f v.downtime)
                 l)
          in
          let tot l =
            Sim.Stats.summarize
              (List.map
                 (fun (v : Hypertp.Migrate.vm_report) ->
                   Sim.Time.to_sec_f v.total_time)
                 l)
          in
          let x = dms xen_vms and t = dms tp_vms in
          Format.printf
            "%5s | med %6.1f [%6.1f..%6.1f] | med %6.2f [%6.2f..%6.2f] | %8.2f | %8.2f@."
            label x.Sim.Stats.median x.Sim.Stats.min x.Sim.Stats.max
            t.Sim.Stats.median t.Sim.Stats.min t.Sim.Stats.max
            (tot xen_vms).Sim.Stats.max (tot tp_vms).Sim.Stats.max)
        (migration_sweep ~dst_kind:Hv.Kind.Xen ~configs ~seed_base:1000L)
        (migration_sweep ~dst_kind:Hv.Kind.Kvm ~configs ~seed_base:2000L))
    sweeps;
  note "paper Fig 8: Xen ~130 ms with wide spread on multi-VM; TP constant ms-scale@.";
  note "paper Fig 9: totals grow with memory size, near-equal between systems@."

(* --- Fig 11 / Fig 12 --- *)

let timeline_schedules () =
  (* Measure the real gaps once, then build guest-visible schedules. *)
  let host = fresh_xen_host ~seed:301L [ vm_config ~vcpus:2 ~gib:8 ~workload:Vmstate.Vm.Wl_redis () ] in
  let ip = Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm () in
  let ip_gap = Sim.Time.to_sec_f (Hypertp.Phases.downtime_with_network ip.phases) in
  let src = fresh_xen_host ~seed:303L [ vm_config ~vcpus:2 ~gib:8 ~workload:Vmstate.Vm.Wl_redis () ] in
  let dst = fresh_dst ~seed:305L Hv.Kind.Kvm in
  let mig = Hypertp.Api.transplant_migration ~src ~dst () in
  let v = List.hd mig.Hypertp.Migrate.per_vm in
  let precopy = Sim.Time.to_sec_f v.Hypertp.Migrate.precopy_time in
  let down = Sim.Time.to_sec_f v.Hypertp.Migrate.downtime in
  let at = 50.0 in
  let sched_ip =
    Workload.Sched.make ~initial:Workload.Profile.P_xen
      [ (at, Workload.Sched.Stopped);
        (at +. ip_gap, Workload.Sched.Running Workload.Profile.P_kvm) ]
  in
  let sched_mig =
    Workload.Sched.make ~initial:Workload.Profile.P_xen
      [ (at, Workload.Sched.Degraded (Workload.Profile.P_xen, 1.1));
        (at +. precopy, Workload.Sched.Stopped);
        (at +. precopy +. down, Workload.Sched.Running Workload.Profile.P_kvm) ]
  in
  (sched_ip, ip_gap, sched_mig, precopy, down)

let print_series name trace =
  Format.printf "%s (10 s buckets):@." name;
  List.iter
    (fun (t, v) -> Format.printf "  t=%5.0fs  %10.1f@." (Sim.Time.to_sec_f t) v)
    (Sim.Trace.bucketize trace ~width:(Sim.Time.sec 10))

let fig11 () =
  header "Fig 11: Redis QPS under InPlaceTP and MigrationTP (2 vCPU, 8 GiB)";
  let sched_ip, ip_gap, sched_mig, precopy, down = timeline_schedules () in
  let rng = Sim.Rng.create 307L in
  subheader
    (Printf.sprintf "InPlaceTP: service gap %.1f s incl. NIC re-init (paper ~9 s)"
       ip_gap);
  print_series "redis QPS" (Workload.Redis.qps_timeline ~rng ~sched:sched_ip ~duration_s:200.0);
  let t = Workload.Redis.qps_timeline ~rng ~sched:sched_ip ~duration_s:200.0 in
  Format.printf "improvement after landing on KVM: +%.0f%% (paper ~37%%)@."
    (100.0
    *. ((Workload.Redis.mean_qps t ~from_s:80.0 ~until_s:190.0
        /. Workload.Redis.mean_qps t ~from_s:10.0 ~until_s:45.0)
       -. 1.0));
  subheader
    (Printf.sprintf
       "MigrationTP: pre-copy %.0f s (paper ~78 s), downtime %.0f ms" precopy
       (1000.0 *. down));
  print_series "redis QPS"
    (Workload.Redis.qps_timeline ~rng ~sched:sched_mig ~duration_s:250.0)

let fig12 () =
  header "Fig 12: MySQL latency/QPS under InPlaceTP and MigrationTP";
  let sched_ip, ip_gap, sched_mig, precopy, _ = timeline_schedules () in
  let rng = Sim.Rng.create 311L in
  subheader (Printf.sprintf "InPlaceTP (gap %.1f s)" ip_gap);
  let lat, qps = Workload.Mysql.timelines ~rng ~sched:sched_ip ~duration_s:150.0 in
  print_series "latency ms" lat;
  print_series "QPS" qps;
  subheader (Printf.sprintf "MigrationTP (pre-copy %.0f s; paper ~76 s)" precopy);
  let lat, qps = Workload.Mysql.timelines ~rng ~sched:sched_mig ~duration_s:200.0 in
  print_series "latency ms" lat;
  print_series "QPS" qps;
  let base = Sim.Trace.mean_between lat Sim.Time.zero (Sim.Time.sec 49) in
  let during = Sim.Trace.mean_between lat (Sim.Time.sec 55) (Sim.Time.sec 120) in
  Format.printf "latency increase during pre-copy: +%.0f%% (paper +252%%)@."
    (100.0 *. ((during /. base) -. 1.0));
  let qbase = Sim.Trace.mean_between qps Sim.Time.zero (Sim.Time.sec 49) in
  let qduring = Sim.Trace.mean_between qps (Sim.Time.sec 55) (Sim.Time.sec 120) in
  Format.printf "throughput drop during pre-copy: -%.0f%% (paper -68%%)@."
    (100.0 *. (1.0 -. (qduring /. qbase)))

(* --- Fig 13 --- *)

let fig13 () =
  header "Fig 13: cluster upgrade, 10 nodes x 10 VMs (1 vCPU / 4 GiB)";
  let sweep = Cluster.Upgrade.sweep ~fractions:[ 0.0; 0.2; 0.4; 0.6; 0.8 ] () in
  let baseline =
    match sweep with
    | (_, t) :: _ -> Sim.Time.to_sec_f t.Cluster.Upgrade.total
    | [] -> assert false
  in
  Format.printf "in-place%%  #migrations  total time     time gain@.";
  List.iter
    (fun (f, t) ->
      Format.printf "   %3.0f      %5d       %8.1f s     %3.0f%%@."
        (100.0 *. f) t.Cluster.Upgrade.migration_count
        (Sim.Time.to_sec_f t.Cluster.Upgrade.total)
        (100.0 *. (1.0 -. (Sim.Time.to_sec_f t.Cluster.Upgrade.total /. baseline))))
    sweep;
  note "paper: 154 migrations at 0%%; 109 at 20%% (17%% gain); 73%% fewer at 60%% (68%% gain); 25 at 80%% (~80%% gain, 3m54 vs up to 19min)@."

(* --- Fig 14 --- *)

let fig14 () =
  header "Fig 14: memory overhead (PRAM structures + UISR formats)";
  let measure vms =
    let r = inplace_once ~machine:(Hw.Machine.m1 ()) ~src_kind:Hv.Kind.Xen ~seed:401L vms in
    ( r.Hypertp.Inplace.pram_accounting.Pram.Layout.total_bytes,
      r.Hypertp.Inplace.uisr_platform_bytes )
  in
  subheader "vCPU sweep (1 GiB VM)";
  Format.printf "vcpus  pram(KiB)  uisr(KiB)@.";
  List.iter
    (fun v ->
      let p, u = measure [ vm_config ~vcpus:v () ] in
      Format.printf "%5d  %9.1f  %9.1f@." v
        (Hw.Units.to_kib_f p) (Hw.Units.to_kib_f u))
    [ 1; 2; 4; 6; 8; 10 ];
  subheader "memory sweep (1 vCPU)";
  Format.printf "GiB    pram(KiB)  uisr(KiB)@.";
  List.iter
    (fun g ->
      let p, u = measure [ vm_config ~gib:g () ] in
      Format.printf "%5d  %9.1f  %9.1f@." g
        (Hw.Units.to_kib_f p) (Hw.Units.to_kib_f u))
    [ 2; 4; 6; 8; 10; 12 ];
  subheader "#VM sweep (1 vCPU / 1 GiB each)";
  Format.printf "#VMs   pram(KiB)  uisr(KiB)@.";
  List.iter
    (fun n ->
      let p, u =
        measure (List.init n (fun i -> vm_config ~name:(Printf.sprintf "v%d" i) ()))
      in
      Format.printf "%5d  %9.1f  %9.1f@." n
        (Hw.Units.to_kib_f p) (Hw.Units.to_kib_f u))
    [ 2; 4; 6; 8; 10; 12 ];
  note "paper: PRAM 16 KiB (1 GiB VM) -> 60 KiB (12 GiB); 148 KiB for 12 VMs;@.";
  note "       UISR 5 KiB (1 vCPU) -> 38 KiB (10 vCPUs); total 21-98 KiB per VM@."

(* --- memory separation (Fig 2) --- *)

let memsep () =
  header "Fig 2: memory separation on a loaded M2 host (8 x 4 GiB VMs)";
  List.iter
    (fun hv ->
      let host =
        Hypertp.Api.provision ~seed:77L ~name:"ms" ~machine:(Hw.Machine.m2 ())
          ~hv
          (List.init 8 (fun i ->
               vm_config ~name:(Printf.sprintf "v%d" i) ~vcpus:2 ~gib:4 ()))
      in
      subheader (Printf.sprintf "under %s" (Hv.Host.hypervisor_name host));
      Format.printf "%a@." Hypertp.Memsep.pp (Hypertp.Memsep.of_host host))
    Hv.Kind.all;
  note "Guest State dominates everywhere: the transplant only ever@.";
  note "translates the tiny VM_i slice, which is the design's point@."

(* --- repertoire extension (section 3.1 + UISR scaling claim) --- *)

let repertoire () =
  header "Repertoire extension: all six transplant directions (1 vCPU / 1 GiB, M1)";
  Format.printf "direction        downtime   dominated by@.";
  let kinds = Hv.Kind.all in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Hv.Kind.equal src dst) then begin
            let reports =
              repeat (fun rng ->
                  let host =
                    Hypertp.Api.provision ~seed:(seed_of_rng rng)
                      ~name:"rep-src" ~machine:(Hw.Machine.m1 ()) ~hv:src
                      [ vm_config () ]
                  in
                  Hypertp.Inplace.run
                    ~rng:(Sim.Rng.create (seed_of_rng rng))
                    ~host ~target:(Hypertp.Api.hypervisor_of dst) ())
            in
            List.iter
              (fun r -> assert (Hypertp.Inplace.all_ok r.Hypertp.Inplace.checks))
              reports;
            let d = (phase_stats reports Hypertp.Phases.downtime).Sim.Stats.mean in
            let reboot =
              (phase_stats reports (fun p -> p.Hypertp.Phases.reboot)).Sim.Stats.mean
            in
            Format.printf "%-6s -> %-6s  %6.3f s   reboot %.0f%%@."
              (Hv.Kind.to_string src) (Hv.Kind.to_string dst) d
              (100.0 *. reboot /. d)
          end)
        kinds)
    kinds;
  note
    "adding bhyve to the Xen/KVM pair cost one Intf.S implementation; every@.";
  note
    "direction works because each side only speaks UISR (section 3.1)@."

(* --- fleet timeline (Fig 1) --- *)

let fleet () =
  header "Fig 1 scenario: fleet exposure with and without HyperTP";
  List.iter
    (fun cve_id ->
      subheader cve_id;
      let o = Cluster.Fleet.simulate ~hosts:8 ~vms_per_host:4 ~cve_id () in
      Format.printf "%a@." Cluster.Fleet.pp_outcome o)
    [ "CVE-2016-6258" (* 7-day window *); "CVE-2015-3456" (* VENOM: escape to bhyve *) ];
  note "without a third hypervisor, VENOM would leave no safe alternative@."

(* --- supervised campaign controller --- *)

let campaign_probabilities = [ 0.0; 0.3; 0.7 ]

let campaign () =
  header "Supervised rolling-transplant campaign (admission + breaker + ladder)";
  let results =
    Cluster.Campaign.sweep ~probabilities:campaign_probabilities ()
  in
  Format.printf "%-6s %-10s %-11s %-9s %-7s %s@." "p" "wall" "exposed-hh"
    "deferred" "trips" "statuses (inplace/drained/retried/exposed)";
  List.iter
    (fun (p, (r : Cluster.Campaign.report)) ->
      let count s =
        List.length
          (List.filter
             (fun h -> h.Cluster.Campaign.hr_status = s)
             r.Cluster.Campaign.hosts)
      in
      Format.printf "%-6.2f %-10s %-11.3f %-9d %-7d %d/%d/%d/%d@." p
        (Sim.Time.to_string r.Cluster.Campaign.wall_clock)
        r.Cluster.Campaign.exposed_host_hours
        (List.length r.Cluster.Campaign.deferred)
        r.Cluster.Campaign.breaker_trips
        (count Cluster.Campaign.Upgraded_inplace)
        (count Cluster.Campaign.Drained)
        (count Cluster.Campaign.Deferred_resolved)
        (count Cluster.Campaign.Deferred_exposed))
    results;
  (* Machine-readable trajectory point for CI. *)
  let oc = open_out "BENCH_campaign.json" in
  let cfg = Cluster.Campaign.default_config in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"campaign\",\n  \"nodes\": %d,\n  \
     \"vms_per_node\": %d,\n  \"concurrency\": %d,\n  \"points\": [\n"
    cfg.Cluster.Campaign.nodes cfg.Cluster.Campaign.vms_per_node
    cfg.Cluster.Campaign.concurrency;
  List.iteri
    (fun i (p, (r : Cluster.Campaign.report)) ->
      Printf.fprintf oc
        "    {\"probability\": %g, \"wall_clock_s\": %.3f, \
         \"exposed_host_hours\": %.4f, \"breaker_trips\": %d, \
         \"deferred_hosts\": %d}%s\n"
        p
        (Sim.Time.to_sec_f r.Cluster.Campaign.wall_clock)
        r.Cluster.Campaign.exposed_host_hours
        r.Cluster.Campaign.breaker_trips
        (List.length r.Cluster.Campaign.deferred)
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  note "wrote BENCH_campaign.json@."

(* --- ablations (section 4.2.5) --- *)

let ablation () =
  header "Ablation: the four InPlaceTP optimisations (section 4.2.5)";
  let base = Hypertp.Options.default in
  let variants =
    [
      ("all optimisations on", base);
      ("no preparation before pause",
       { base with Hypertp.Options.prepare_before_pause = false });
      ("no parallel translation",
       { base with Hypertp.Options.parallel_translation = false });
      ("no huge-page PRAM", { base with Hypertp.Options.huge_page_pram = false });
      ("no early restoration",
       { base with Hypertp.Options.early_restoration = false });
      ("everything off", Hypertp.Options.all_off);
    ]
  in
  let vms = List.init 6 (fun i -> vm_config ~name:(Printf.sprintf "v%d" i) ~gib:2 ()) in
  Format.printf "%-30s downtime   total      pram bytes@." "configuration";
  List.iter
    (fun (label, options) ->
      let reports =
        repeat (fun rng ->
            inplace_once ~options ~machine:(Hw.Machine.m1 ())
              ~src_kind:Hv.Kind.Xen ~seed:(seed_of_rng rng) vms)
      in
      let m select = (phase_stats reports select).Sim.Stats.mean in
      let pram_bytes =
        (List.hd reports).Hypertp.Inplace.pram_accounting.Pram.Layout.total_bytes
      in
      Format.printf "%-30s %.3f s    %.3f s   %9d@." label
        (m Hypertp.Phases.downtime) (m Hypertp.Phases.total) pram_bytes)
    variants
