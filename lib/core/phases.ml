type t = {
  pram : Sim.Time.t;
  translation : Sim.Time.t;
  reboot : Sim.Time.t;
  restoration : Sim.Time.t;
  recovery : Sim.Time.t;
  network : Sim.Time.t;
}

let downtime t = Sim.Time.sum [ t.translation; t.reboot; t.restoration; t.recovery ]
let total t = Sim.Time.add t.pram (downtime t)

let downtime_with_network t =
  (* The NIC starts initialising when the new kernel boots; restoration
     proceeds in parallel.  A networked service is back when both are
     done. *)
  let tail = Sim.Time.max (Sim.Time.add t.restoration t.recovery) t.network in
  Sim.Time.sum [ t.translation; t.reboot; tail ]

let zero =
  { pram = Sim.Time.zero; translation = Sim.Time.zero; reboot = Sim.Time.zero;
    restoration = Sim.Time.zero; recovery = Sim.Time.zero;
    network = Sim.Time.zero }

let pp fmt t =
  Format.fprintf fmt
    "pram %a | translation %a | reboot %a | restoration %a | network %a => downtime %a, total %a"
    Sim.Time.pp t.pram Sim.Time.pp t.translation Sim.Time.pp t.reboot
    Sim.Time.pp t.restoration Sim.Time.pp t.network Sim.Time.pp (downtime t)
    Sim.Time.pp (total t);
  if not (Sim.Time.equal t.recovery Sim.Time.zero) then
    Format.fprintf fmt " (incl. recovery %a)" Sim.Time.pp t.recovery

let pp_row fmt t =
  Format.fprintf fmt "%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f"
    (Sim.Time.to_sec_f t.pram)
    (Sim.Time.to_sec_f t.translation)
    (Sim.Time.to_sec_f t.reboot)
    (Sim.Time.to_sec_f (Sim.Time.add t.restoration t.recovery))
    (Sim.Time.to_sec_f t.network)
    (Sim.Time.to_sec_f (downtime t))
    (Sim.Time.to_sec_f (total t))
