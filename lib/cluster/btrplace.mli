(** BtrPlace-style reconfiguration planning (Hermenier et al. [20]).

    The cluster upgrade of section 5.4: hosts are taken offline in
    groups; VMs that cannot tolerate InPlaceTP downtime are migrated to
    online hosts under capacity constraints, the host is upgraded
    (InPlaceTP transplants the remaining VMs with it), and the next
    group follows.  A final rebalance restores an even spread.  The plan
    lists every action in execution order. *)

type action =
  | Migrate of { vm : Model.vm; src : string; dst : string }
  | Take_offline of string
  | Upgrade_inplace of { node : string; vms_in_place : int }
  | Bring_online of string

type plan = {
  actions : action array;  (** every action, in execution order *)
  migration_count : int;
  inplace_vm_count : int; (** VMs upgraded without moving *)
}

exception No_capacity of string

val plan_upgrade : ?group_size:int -> Model.t -> plan
(** Generate and {e apply} the rolling-upgrade plan on the model (the
    model ends fully upgraded and rebalanced).  Raises {!No_capacity}
    if evicted VMs cannot be placed anywhere.  Default group size 1. *)

val capacity_safe : Model.t -> bool
(** No node over capacity, every VM placed exactly once. *)

(** {1 Per-host strategy selection}

    The transplant repertoire grew a third option: besides InPlaceTP
    (kexec micro-reboot) and classic MigrationTP (stop-and-copy
    evacuation of the InPlaceTP-incompatible VMs), a host can be
    retired by a {e shadow-host cutover} — the whole placement streamed
    onto a pre-staged spare and swapped with near-zero downtime.
    {!choose_strategies} picks per host under two budgets. *)

type host_strategy =
  | Use_inplace  (** every VM rides InPlaceTP; no wire cost *)
  | Use_shadow
      (** whole placement streamed to a staged spare; near-zero cutover
          downtime at ~1.25x the placement's RAM on the wire *)
  | Use_migrate
      (** classic MigrationTP for the incompatible VMs only (~1.10x
          their RAM); the rest ride InPlaceTP's blackout *)
  | Use_defer  (** no budget left; host stays on the vulnerable hv *)

type strategy_choice = {
  sc_node : string;
  sc_strategy : host_strategy;
  sc_wire_bytes : Hw.Units.bytes_;  (** estimated wire cost, 0 for
                                        inplace/defer *)
  sc_vms : int;  (** VMs placed on the host at planning time *)
}

type strategy_plan = {
  choices : strategy_choice list;  (** in model node order *)
  shadow_lanes : int;  (** the [spare_hosts] bound: concurrent shadow
                           pipelines, not a per-host consumable — a
                           cutover frees its source as the next spare *)
  wire_total : Hw.Units.bytes_;
  n_inplace : int;
  n_shadow : int;
  n_migrate : int;
  n_defer : int;
}

val choose_strategies :
  ?spare_hosts:int -> ?wire_budget:Hw.Units.bytes_ -> Model.t -> strategy_plan
(** Planning-only (the model is not mutated): walk the nodes in order
    and pick the cheapest-downtime strategy that fits.  A host whose
    placement is fully InPlaceTP-compatible always takes {!Use_inplace}.
    Otherwise shadow is preferred when [spare_hosts > 0] and its wire
    estimate fits the remaining [wire_budget]; then classic
    {!Use_migrate}; then {!Use_defer}.  Defaults — [spare_hosts = 0],
    unbounded [wire_budget] — reproduce the pre-shadow behaviour
    (inplace or migrate only, nothing deferred).  Raises
    [Invalid_argument] on a negative budget. *)

val strategy_to_string : host_strategy -> string
val pp_host_strategy : Format.formatter -> host_strategy -> unit
val pp_strategy_plan : Format.formatter -> strategy_plan -> unit

val max_concurrent_drains : Model.t -> int
(** Capacity-aware admission bound for a supervised rolling upgrade:
    the largest number of hosts that may drain simultaneously while the
    remaining online nodes can still absorb their whole VM load (the
    fallback path drains even InPlaceTP-compatible VMs, so each
    draining host is charged its full placement).  Always at least 1 —
    with no spare capacity at all the plan itself would have raised
    {!No_capacity}. *)

val pp_plan : Format.formatter -> plan -> unit
