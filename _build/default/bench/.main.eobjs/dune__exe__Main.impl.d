bench/main.ml: Array Bench_figures Bench_micro Bench_tables Format List String Sys
