lib/core/costs.ml: Array Float Hw List
