type t = {
  name : string;
  mutable rev_samples : (Time.t * float) list;
  mutable rev_markers : (Time.t * string) list;
  mutable last : Time.t;
}

let create ~name () =
  { name; rev_samples = []; rev_markers = []; last = Time.zero }

let name t = t.name

let add t at v =
  if Time.(at < t.last) then invalid_arg "Trace.add: time going backwards";
  t.last <- at;
  t.rev_samples <- (at, v) :: t.rev_samples

let mark t at label = t.rev_markers <- (at, label) :: t.rev_markers
let samples t = List.rev t.rev_samples
let markers t = List.rev t.rev_markers

let bucketize t ~width =
  let width_ns = Time.to_ns width in
  if width_ns <= 0 then invalid_arg "Trace.bucketize: zero width";
  match samples t with
  | [] -> []
  | all ->
    let last_t, _ = List.hd t.rev_samples in
    let nbuckets = (Time.to_ns last_t / width_ns) + 1 in
    let sums = Array.make nbuckets 0.0 and counts = Array.make nbuckets 0 in
    let place (at, v) =
      let i = Time.to_ns at / width_ns in
      sums.(i) <- sums.(i) +. v;
      counts.(i) <- counts.(i) + 1
    in
    List.iter place all;
    List.init nbuckets (fun i ->
        let at = Time.ns (i * width_ns) in
        let v = if counts.(i) = 0 then 0.0 else sums.(i) /. float_of_int counts.(i) in
        (at, v))

let between t start stop =
  let keep (at, _) = Time.(start <= at) && Time.(at < stop) in
  List.filter keep (samples t)

let mean_between t start stop =
  match between t start stop with
  | [] -> 0.0
  | window -> Stats.mean (List.map snd window)

let pp fmt t =
  Format.fprintf fmt "@[<v>trace %s:@," t.name;
  (* Merge markers and samples into one chronological stream.  On a
     shared timestamp the marker renders first: it names the event that
     explains the sample ("transplant starts" before the QPS dip). *)
  let pp_mark (at, label) = Format.fprintf fmt "  mark %a: %s@," Time.pp at label
  and pp_sample (at, v) =
    Format.fprintf fmt "  %8.2f %10.2f@," (Time.to_sec_f at) v
  in
  let rec interleave marks samples =
    match (marks, samples) with
    | [], [] -> ()
    | m :: ms, [] ->
      pp_mark m;
      interleave ms []
    | [], s :: ss ->
      pp_sample s;
      interleave [] ss
    | ((mat, _) as m) :: ms, ((sat, _) as s) :: ss ->
      if Time.(mat <= sat) then begin
        pp_mark m;
        interleave ms samples
      end
      else begin
        pp_sample s;
        interleave marks ss
      end
  in
  let marks =
    (* [mark] does not require monotone timestamps; sort stably so ties
       keep insertion order. *)
    List.stable_sort (fun (a, _) (b, _) -> Time.compare a b) (markers t)
  in
  interleave marks (samples t);
  Format.fprintf fmt "@]"
