lib/cluster/model.ml: Array Float Format Hw List Printf Sim String Vmstate
