(** The vulnerability dataset behind Table 1.

    A study-faithful reconstruction: per-year critical/medium counts for
    Xen, KVM and their intersection exactly match Table 1; category
    proportions match section 2.1 (PV mechanisms, resource management,
    hardware mishandling, toolstack, QEMU, ioctls); the three real
    common CVEs (VENOM and the two 2015 DoS flaws) and the documented
    timeline anchors (CVE-2016-6258, CVE-2017-12188, CVE-2013-0311)
    appear under their real identifiers.  Synthetic identifiers use a
    9xxx suffix to stay out of the real CVE namespace. *)

type system = Xen_only | Kvm_only | Both

type category =
  | Pv_mechanisms     (** event channels, hypercalls *)
  | Resource_mgmt     (** CPU scheduler, memory accounting *)
  | Hardware_handling (** VT-x state mismanagement *)
  | Toolstack         (** libxl *)
  | Qemu
  | Ioctl

type record = {
  id : string;
  year : int;
  affects : system;
  severity : Cvss.severity;
  category : category;
  vector : Cvss.vector;
  window_days : int option;
      (** discovery-to-patch window where documented (section 2.2) *)
}

val all : record list
(** The Table 1 dataset.  Hardware-level flaws are excluded, as in the
    paper's footnote (their CVEs were declared on CPU products). *)

val hardware_level : record list
(** Spectre/Meltdown-class flaws: they hit the CPU under {e every}
    hypervisor, so transplant cannot escape them — the boundary of the
    HyperTP defence.  Their 7-month coordination window (June 2017 to
    January 2018, section 2.1) is recorded. *)

val is_hardware_level : record -> bool

val affects_xen : record -> bool
val affects_kvm : record -> bool

type table1_row = {
  row_year : int;
  xen_crit : int;
  xen_med : int;
  kvm_crit : int;
  kvm_med : int;
  common_crit : int;
  common_med : int;
}

val table1 : unit -> table1_row list
(** Per-year rows, 2013..2019, plus callers can sum for the total row. *)

val total : table1_row list -> table1_row

val category_breakdown :
  xen:bool -> Cvss.severity -> (category * int) list
(** Distribution of categories among (xen|kvm) vulnerabilities of the
    given severity, sorted by count descending. *)

val find : string -> record option
val pp_category : Format.formatter -> category -> unit
val pp_record : Format.formatter -> record -> unit
