(** MigrationTP: live-migration-based hypervisor transplant
    (sections 3.3 and 4.3), plus the homogeneous live-migration baseline
    it is compared against (Table 4, Figs. 8-9).

    The pre-copy data path is the standard one; the MigrationTP novelty
    is the pair of proxies translating VM_i State through UISR so source
    and destination may run different hypervisors.  Guest pages are
    never translated — they are copied verbatim. *)

type outcome =
  | Completed
  | Aborted_link_failure of int
      (** the link died during this pre-copy round; pre-copy is
          non-destructive, so the source VM keeps running and the
          partially-populated destination is torn down *)

type vm_report = {
  vm_name : string;
  rounds : int;
  precopy_time : Sim.Time.t;
  downtime : Sim.Time.t;
      (** stop-and-copy + state transfer + receive-queue wait +
          destination resume *)
  queue_wait : Sim.Time.t;
      (** time spent waiting for a sequential receiver (Xen) *)
  total_time : Sim.Time.t;
  wire_bytes : Hw.Units.bytes_;
  state_bytes : int; (** UISR (or native-context) platform payload *)
  fixups : Uisr.Fixup.t list;
  outcome : outcome;
}

type checks = {
  memory_equal : bool;  (** destination guest memory == source at pause *)
  connections_preserved : bool;
  management_consistent : bool;
}

type report = {
  kind : [ `Migration_tp | `Homogeneous ];
  src_hv : string;
  dst_hv : string;
  per_vm : vm_report list;
  total_time : Sim.Time.t; (** completion of the last VM, setup included *)
  checks : checks;
}

val run :
  ?rng:Sim.Rng.t -> ?fail_link:string * int -> src:Hv.Host.t ->
  dst:Hv.Host.t -> ?vm_names:string list -> unit -> report
(** Migrate the named VMs (default: all) from [src] to [dst].  The
    destination hypervisor must already be booted; the kind is inferred:
    same hypervisor -> homogeneous baseline (native-format stream,
    Xen's sequential receive), different -> MigrationTP (UISR proxies).
    Source VMs are destroyed after a successful hand-off, as in real
    live migration.

    [fail_link] (vm, round) injects a network failure while that VM's
    pre-copy round is on the wire: its migration aborts, the source VM
    stays resident and running, nothing lands on the destination.

    Raises [Invalid_argument] if the destination lacks memory or a
    hypervisor, or a VM name is unknown. *)

val pp_report : Format.formatter -> report -> unit
