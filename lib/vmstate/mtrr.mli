(** Memory-type range registers (per vCPU).

    Xen keeps MTRR state in a dedicated HVM record; KVM exposes it
    through the MSR interface (Table 2) — another representation gap the
    UISR bridges. *)

type variable_range = { base : int64; mask : int64 }

type t = {
  def_type : int;            (** default memory type + enable bits *)
  fixed : int64 array;       (** 11 fixed-range registers *)
  variable : variable_range array; (** 8 base/mask pairs *)
}

val fixed_count : int
(** 11 fixed-range registers. *)

val variable_count : int
(** 8 variable base/mask pairs. *)

val generate : Sim.Rng.t -> t
val equal : t -> t -> bool

val to_msrs : t -> Regs.msr list
(** Flatten into the MSR encoding KVM uses (0x2FF def-type, 0x250..
    fixed, 0x200.. variable pairs). *)

val of_msrs : Regs.msr list -> t option
(** Rebuild from MSRs; [None] if any expected MSR index is missing. *)

val pp : Format.formatter -> t -> unit
