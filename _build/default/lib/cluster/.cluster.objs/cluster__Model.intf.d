lib/cluster/model.mli: Format Hw Vmstate
