type condition =
  | Running of Profile.platform
  | Degraded of Profile.platform * float
  | Stopped

(* Segments: (start_s, condition); the last segment extends forever. *)
type t = (float * condition) list

let always p = [ (0.0, Running p) ]

let make ~initial changes =
  let rec check last = function
    | [] -> ()
    | (at, _) :: rest ->
      if at <= last then invalid_arg "Sched.make: breakpoints not increasing";
      check at rest
  in
  check 0.0 changes;
  List.iter
    (fun (_, c) ->
      match c with
      | Degraded (_, stretch) when stretch < 1.0 ->
        invalid_arg "Sched.make: stretch factor below 1"
      | Degraded _ | Running _ | Stopped -> ())
    changes;
  (0.0, Running initial) :: changes

let condition_at t at =
  let rec go current = function
    | [] -> current
    | (start, c) :: rest -> if start <= at then go c rest else current
  in
  match t with
  | [] -> invalid_arg "Sched.condition_at: empty schedule"
  | (_, first) :: rest -> go first rest

let rate_of ~base = function
  | Running p -> base p
  | Degraded (p, stretch) -> base p /. stretch
  | Stopped -> 0.0

let rate_factor t at ~base = rate_of ~base (condition_at t at)

let segments_between t t0 t1 =
  (* Pieces of [t0, t1] with their condition. *)
  let rec go acc = function
    | [] -> List.rev acc
    | (start, c) :: rest ->
      let stop = match rest with [] -> t1 | (next, _) :: _ -> Float.min next t1 in
      let lo = Float.max start t0 and hi = Float.min stop t1 in
      let acc = if hi > lo then (lo, hi, c) :: acc else acc in
      if stop >= t1 then List.rev acc else go acc rest
  in
  go [] t

let work_between t t0 t1 ~base =
  if t1 < t0 then invalid_arg "Sched.work_between: reversed interval";
  List.fold_left
    (fun acc (lo, hi, c) -> acc +. ((hi -. lo) *. rate_of ~base c))
    0.0
    (segments_between t t0 t1)

let completion_time t ~start ~work ~base =
  if work < 0.0 then invalid_arg "Sched.completion_time: negative work";
  (* Walk segments from [start], consuming work at each segment's rate. *)
  let rec go at remaining =
    if remaining <= 1e-12 then at
    else begin
      let c = condition_at t at in
      let rate = rate_of ~base c in
      (* Find the next breakpoint after [at]. *)
      let next =
        List.fold_left
          (fun best (s, _) ->
            if s > at then Float.min best s else best)
          Float.infinity t
      in
      if rate <= 0.0 then
        if next = Float.infinity then
          invalid_arg "Sched.completion_time: stopped forever"
        else go next remaining
      else begin
        let span = next -. at in
        let doable = rate *. span in
        if doable >= remaining then at +. (remaining /. rate)
        else go next (remaining -. doable)
      end
    end
  in
  go start work

let breakpoints t = List.filter_map (fun (s, _) -> if s > 0.0 then Some s else None) t

let pp fmt t =
  let pp_cond fmt = function
    | Running p -> Profile.pp_platform fmt p
    | Degraded (p, k) -> Format.fprintf fmt "%a/%.2f" Profile.pp_platform p k
    | Stopped -> Format.pp_print_string fmt "stopped"
  in
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " -> ")
       (fun fmt (s, c) -> Format.fprintf fmt "%.1fs:%a" s pp_cond c))
    t
