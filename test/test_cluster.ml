(* Tests for the cluster layer: model, BtrPlace-style planner, upgrade
   timing, Nova orchestration. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let paper_model ?(inplace_fraction = 0.0) () =
  Cluster.Model.make ~nodes:10 ~vms_per_node:10 ~vm_ram:(Hw.Units.gib 4)
    ~node_ram:(Hw.Units.gib 96) ~inplace_fraction
    ~workload_mix:
      [ (Vmstate.Vm.Wl_streaming, 0.3); (Vmstate.Vm.Wl_spec "mcf", 0.3);
        (Vmstate.Vm.Wl_idle, 0.4) ]
    ()

(* --- Model --- *)

let test_model_shape () =
  let m = paper_model () in
  checki "nodes" 10 (List.length m.Cluster.Model.nodes);
  checki "vms" 100 (Cluster.Model.total_vms m);
  List.iter
    (fun n -> checki "10 per node" 10 (List.length n.Cluster.Model.placed))
    m.Cluster.Model.nodes

let test_model_inplace_fraction () =
  let m = paper_model ~inplace_fraction:0.6 () in
  let compat =
    List.fold_left
      (fun acc n ->
        acc
        + List.length
            (List.filter
               (fun vm -> vm.Cluster.Model.inplace_compatible)
               n.Cluster.Model.placed))
      0 m.Cluster.Model.nodes
  in
  checki "60 compatible" 60 compat

let test_model_capacity () =
  let m = paper_model () in
  let node = List.hd m.Cluster.Model.nodes in
  checkb "40 GiB used" true (Cluster.Model.used_ram node = Hw.Units.gib 40);
  let vm = List.hd node.Cluster.Model.placed in
  checkb "more fits" true (Cluster.Model.fits node vm);
  Cluster.Model.evict node vm;
  checki "evicted" 9 (List.length node.Cluster.Model.placed);
  Cluster.Model.place node vm;
  checki "replaced" 10 (List.length node.Cluster.Model.placed)

let test_model_workload_mix () =
  let m = paper_model () in
  let count kind =
    List.fold_left
      (fun acc n ->
        acc
        + List.length
            (List.filter (fun vm -> vm.Cluster.Model.workload = kind)
               n.Cluster.Model.placed))
      0 m.Cluster.Model.nodes
  in
  checki "30% streaming" 30 (count Vmstate.Vm.Wl_streaming);
  checki "40% idle" 40 (count Vmstate.Vm.Wl_idle)

(* --- Btrplace --- *)

let test_plan_all_upgraded () =
  let m = paper_model () in
  let _ = Cluster.Btrplace.plan_upgrade m in
  List.iter
    (fun n -> checkb "upgraded" true n.Cluster.Model.upgraded)
    m.Cluster.Model.nodes;
  checkb "capacity safe" true (Cluster.Btrplace.capacity_safe m);
  checki "no vm lost" 100 (Cluster.Model.total_vms m)

let test_plan_migration_counts_shape () =
  (* Fig. 13: ~150 migrations at 0% falling to ~25 at 80%. *)
  let count f =
    (Cluster.Btrplace.plan_upgrade (paper_model ~inplace_fraction:f ())).migration_count
  in
  let c0 = count 0.0 and c20 = count 0.2 and c60 = count 0.6 and c80 = count 0.8 in
  checkb "monotone decreasing" true (c0 > c20 && c20 > c60 && c60 > c80);
  checkb "baseline near paper's 154" true (c0 > 100 && c0 < 170);
  checkb "80% near paper's 25" true (c80 > 15 && c80 < 35);
  checkb "60% cuts ~3/4 (paper: 73%)" true
    (float_of_int c60 /. float_of_int c0 < 0.45)

let test_plan_inplace_vms_never_move () =
  let m = paper_model ~inplace_fraction:0.8 () in
  let plan = Cluster.Btrplace.plan_upgrade m in
  Array.iter
    (fun action ->
      match action with
      | Cluster.Btrplace.Migrate { vm; _ } ->
        checkb "only incompatible vms migrate" false vm.Cluster.Model.inplace_compatible
      | Cluster.Btrplace.Take_offline _ | Cluster.Btrplace.Upgrade_inplace _
      | Cluster.Btrplace.Bring_online _ ->
        ())
    plan.Cluster.Btrplace.actions

let test_plan_inplace_vm_accounting () =
  let plan = Cluster.Btrplace.plan_upgrade (paper_model ~inplace_fraction:0.8 ()) in
  checki "80 vms ride in place" 80 plan.Cluster.Btrplace.inplace_vm_count

let test_plan_rejects_overfull () =
  (* 10 VMs x 16 GiB on 96 GiB nodes: evicting one node's worth cannot
     fit anywhere once headroom is counted. *)
  let m =
    Cluster.Model.make ~nodes:2 ~vms_per_node:10 ~vm_ram:(Hw.Units.gib 9)
      ~node_ram:(Hw.Units.gib 96) ~inplace_fraction:0.0
      ~workload_mix:[ (Vmstate.Vm.Wl_idle, 1.0) ] ()
  in
  checkb "no capacity raises" true
    (try
       ignore (Cluster.Btrplace.plan_upgrade m);
       false
     with Cluster.Btrplace.No_capacity _ -> true)

(* --- Upgrade timing --- *)

let test_upgrade_sweep_shape () =
  let sweep =
    Cluster.Upgrade.sweep ~fractions:[ 0.0; 0.2; 0.4; 0.6; 0.8 ] ()
  in
  let totals =
    List.map (fun (_, t) -> Sim.Time.to_sec_f t.Cluster.Upgrade.total) sweep
  in
  (match totals with
  | t0 :: rest ->
    (* Baseline in the paper's "up to 19 minutes" ballpark. *)
    checkb "baseline 10-20 min" true (t0 > 600.0 && t0 < 1_200.0);
    let last = List.nth rest (List.length rest - 1) in
    let gain = 1.0 -. (last /. t0) in
    checkb "80% in-place cuts ~80% (Fig 13)" true (gain > 0.70 && gain < 0.90);
    checkb "monotone" true
      (List.for_all2 (fun a b -> b < a) (t0 :: List.tl totals) totals
      || List.sort Float.compare totals = List.rev totals)
  | [] -> Alcotest.fail "empty sweep")

let test_migration_op_time_sane () =
  let nic = Hw.Nic.create ~bandwidth_gbps:10.0 () in
  let vm =
    { Cluster.Model.vm_name = "v"; ram = Hw.Units.gib 4;
      inplace_compatible = false; workload = Vmstate.Vm.Wl_idle }
  in
  let t = Sim.Time.to_sec_f (Cluster.Upgrade.migration_op_time ~nic ~vm) in
  (* 4 GiB at ~1.2 GB/s + setup: several seconds. *)
  checkb "5-12s per op" true (t > 5.0 && t < 12.0)

(* --- Nova --- *)

let mk_nova () =
  let mk i vms =
    Hypertp.Api.provision
      ~seed:(Int64.of_int (500 + i))
      ~name:(Printf.sprintf "c%d" i)
      ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Xen vms
  in
  let h0 =
    mk 0
      [
        Vmstate.Vm.config ~name:"stay" ~ram:(Hw.Units.mib 256) ();
        Vmstate.Vm.config ~name:"move" ~ram:(Hw.Units.mib 256)
          ~inplace_compatible:false ();
      ]
  in
  let h1 = mk 1 [] in
  let nova = Cluster.Nova.create () in
  Cluster.Nova.add_host nova h0;
  Cluster.Nova.add_host nova h1;
  (nova, h0, h1)

let test_nova_db_tracks_placement () =
  let nova, _, _ = mk_nova () in
  checkb "consistent initially" true (Cluster.Nova.db_consistent nova);
  Alcotest.check (Alcotest.option Alcotest.string) "placement" (Some "c0")
    (Cluster.Nova.host_of_vm nova "stay")

let test_nova_host_live_upgrade () =
  let nova, h0, h1 = mk_nova () in
  let r = Cluster.Nova.host_live_upgrade nova ~host:"c0" ~target:Hv.Kind.Kvm in
  checki "one evacuation" 1 (List.length r.Cluster.Nova.migrated_away);
  Alcotest.check (Alcotest.option Alcotest.string) "moved to c1" (Some "c1")
    (Cluster.Nova.host_of_vm nova "move");
  Alcotest.check (Alcotest.option Alcotest.string) "stayed" (Some "c0")
    (Cluster.Nova.host_of_vm nova "stay");
  checkb "inplace ran" true (r.Cluster.Nova.inplace <> None);
  checkb "c0 on kvm" true (Hv.Host.hypervisor_kind h0 = Some Hv.Kind.Kvm);
  checkb "c1 untouched hv" true (Hv.Host.hypervisor_kind h1 = Some Hv.Kind.Xen);
  checkb "db consistent after" true (Cluster.Nova.db_consistent nova)

let test_nova_empty_host_plain_reboot () =
  let nova, _, _ = mk_nova () in
  let r = Cluster.Nova.host_live_upgrade nova ~host:"c1" ~target:Hv.Kind.Kvm in
  checkb "no inplace needed" true (r.Cluster.Nova.inplace = None);
  checkb "db consistent" true (Cluster.Nova.db_consistent nova)

let test_nova_scheduler_affinity () =
  (* The HyperTP-aware filter co-locates VMs by InPlaceTP compatibility
     (section 4.5.2 item 4). *)
  let mk i vms =
    Hypertp.Api.provision
      ~seed:(Int64.of_int (700 + i))
      ~name:(Printf.sprintf "s%d" i)
      ~machine:(Hw.Machine.m1 ()) ~hv:Hv.Kind.Kvm vms
  in
  let compat_host =
    mk 0
      [
        Vmstate.Vm.config ~name:"c1" ~ram:(Hw.Units.mib 256) ();
        Vmstate.Vm.config ~name:"c2" ~ram:(Hw.Units.mib 256) ();
      ]
  in
  let incompat_host =
    mk 1
      [
        Vmstate.Vm.config ~name:"i1" ~ram:(Hw.Units.mib 256)
          ~inplace_compatible:false ();
      ]
  in
  let nova = Cluster.Nova.create () in
  Cluster.Nova.add_host nova compat_host;
  Cluster.Nova.add_host nova incompat_host;
  (* A compatible instance lands with the compatible crowd even though
     the other host is less loaded. *)
  Alcotest.check Alcotest.string "compatible co-located" "s0"
    (Cluster.Nova.schedule_instance nova
       (Vmstate.Vm.config ~name:"new-c" ~ram:(Hw.Units.mib 256) ()));
  Alcotest.check Alcotest.string "incompatible co-located" "s1"
    (Cluster.Nova.schedule_instance nova
       (Vmstate.Vm.config ~name:"new-i" ~ram:(Hw.Units.mib 256)
          ~inplace_compatible:false ()));
  let placed =
    Cluster.Nova.boot_instance nova
      (Vmstate.Vm.config ~name:"new-c" ~ram:(Hw.Units.mib 256) ())
  in
  Alcotest.check Alcotest.string "booted where scheduled" "s0" placed;
  checkb "db consistent" true (Cluster.Nova.db_consistent nova);
  checkb "affinity stays perfect" true
    (Cluster.Nova.affinity_score nova "s0" = 1.0)

let test_nova_scheduler_capacity () =
  let tiny =
    Hypertp.Api.provision ~seed:801L ~name:"tiny" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm
      [ Vmstate.Vm.config ~name:"fat" ~ram:(Hw.Units.gib 13) () ]
  in
  let nova = Cluster.Nova.create () in
  Cluster.Nova.add_host nova tiny;
  Alcotest.check_raises "no capacity"
    (Invalid_argument "Nova.schedule_instance: no host has capacity")
    (fun () ->
      ignore
        (Cluster.Nova.schedule_instance nova
           (Vmstate.Vm.config ~name:"big" ~ram:(Hw.Units.gib 8) ())))

let test_nova_unknown_host () =
  let nova, _, _ = mk_nova () in
  Alcotest.check_raises "unknown" (Invalid_argument "Nova: unknown host zz")
    (fun () ->
      ignore (Cluster.Nova.host_live_upgrade nova ~host:"zz" ~target:Hv.Kind.Kvm))

(* --- Libvirt (G2) --- *)

let test_libvirt_connect_and_list () =
  let host =
    Hypertp.Api.provision ~seed:901L ~name:"lv" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"d1" ~vcpus:2 ~ram:(Hw.Units.mib 256) () ]
  in
  let conn = Cluster.Libvirt.connect host ~uri:"xen:///system" in
  let doms = Cluster.Libvirt.list_all_domains conn in
  checki "one domain" 1 (List.length doms);
  let info = Cluster.Libvirt.dominfo conn "d1" in
  checki "vcpus" 2 info.Cluster.Libvirt.dom_vcpus;
  checki "memory kib" (256 * 1024) info.Cluster.Libvirt.dom_memory_kib;
  checkb "running" true (info.Cluster.Libvirt.dom_state = Cluster.Libvirt.Dom_running);
  Cluster.Libvirt.suspend conn "d1";
  checkb "paused via G2" true
    ((Cluster.Libvirt.dominfo conn "d1").Cluster.Libvirt.dom_state
    = Cluster.Libvirt.Dom_paused);
  Cluster.Libvirt.resume conn "d1";
  checkb "resumed via G2" true
    ((Cluster.Libvirt.dominfo conn "d1").Cluster.Libvirt.dom_state
    = Cluster.Libvirt.Dom_running)

let test_libvirt_uri_mismatch () =
  let host =
    Hypertp.Api.provision ~seed:903L ~name:"lvm" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Kvm []
  in
  checkb "wrong scheme rejected" true
    (try
       ignore (Cluster.Libvirt.connect host ~uri:"xen:///system");
       false
     with Cluster.Libvirt.Uri_mismatch _ -> true);
  ignore (Cluster.Libvirt.connect host ~uri:"qemu:///system")

let test_libvirt_survives_transplant () =
  (* The sysadmin story of section 4.5.1: after the transplant, the same
     G2 operations work — only the connection URI scheme changes, which
     the orchestrator's reconnect handles. *)
  let host =
    Hypertp.Api.provision ~seed:905L ~name:"lvt" ~machine:(Hw.Machine.m1 ())
      ~hv:Hv.Kind.Xen
      [ Vmstate.Vm.config ~name:"d1" ~ram:(Hw.Units.mib 256) () ]
  in
  let conn = Cluster.Libvirt.connect host ~uri:"xen:///system" in
  ignore (Hypertp.Api.transplant_inplace ~host ~target:Hv.Kind.Kvm ());
  (* The old connection notices the swap... *)
  checkb "stale connection flagged" true
    (try
       ignore (Cluster.Libvirt.list_all_domains conn);
       false
     with Cluster.Libvirt.Uri_mismatch _ -> true);
  (* ...and a reconnect restores service with identical semantics. *)
  let conn = Cluster.Libvirt.reconnect conn in
  let info = Cluster.Libvirt.dominfo conn "d1" in
  checkb "same domain visible under kvm" true
    (info.Cluster.Libvirt.dom_state = Cluster.Libvirt.Dom_running);
  (* Fully generic code path: *)
  let names =
    Cluster.Libvirt.hypervisor_agnostic
      (fun c ->
        List.map
          (fun d -> d.Cluster.Libvirt.dom_name)
          (Cluster.Libvirt.list_all_domains c))
      host
  in
  Alcotest.check (Alcotest.list Alcotest.string) "agnostic listing" [ "d1" ] names

(* --- Fleet timeline --- *)

let test_fleet_timeline () =
  let o = Cluster.Fleet.simulate ~hosts:3 ~vms_per_host:2 ~window_days:2
      ~cve_id:"CVE-2016-6258" ()
  in
  checki "two transplants per host" 6 o.Cluster.Fleet.transplants;
  checkb "exposure tiny vs baseline" true
    (o.Cluster.Fleet.exposed_host_hours
    < 0.05 *. o.Cluster.Fleet.baseline_exposed_host_hours);
  let events = Array.to_list o.Cluster.Fleet.events in
  checkb "events in time order" true
    (let rec ordered = function
       | (a, _) :: ((b, _) :: _ as rest) ->
         Sim.Time.compare a b <= 0 && ordered rest
       | [ _ ] | [] -> true
     in
     ordered events);
  (* Disclosure first, patch release before any Host_patched. *)
  (match events with
  | (_, Cluster.Fleet.Disclosed _) :: _ -> ()
  | _ -> Alcotest.fail "disclosure must come first");
  let patched_before_release =
    let released = ref false in
    List.exists
      (fun (_, ev) ->
        match ev with
        | Cluster.Fleet.Patch_released ->
          released := true;
          false
        | Cluster.Fleet.Host_patched _ -> not !released
        | Cluster.Fleet.Disclosed _ | Cluster.Fleet.Host_transplanted _ ->
          false)
      events
  in
  checkb "no host patched before the patch exists" false patched_before_release

(* Golden pin of the Fig. 13 sweep: exact migration counts and totals
   at the paper's fractions, plus the ~80 % time-gain shape.  Any
   planner or cost-model drift shows up here first. *)
let test_upgrade_sweep_golden () =
  let sweep = Cluster.Upgrade.sweep ~fractions:[ 0.0; 0.5; 0.8; 1.0 ] () in
  let golden =
    [ (0.0, 120, 916.562); (0.5, 64, 475.009); (0.8, 24, 190.330);
      (1.0, 0, 19.390) ]
  in
  List.iter2
    (fun (f, migs, total) ((f', t) : float * Cluster.Upgrade.timing) ->
      checkb "fractions align" true (Float.abs (f -. f') < 1e-9);
      checki
        (Printf.sprintf "migrations at %.1f" f)
        migs t.Cluster.Upgrade.migration_count;
      checkb
        (Printf.sprintf "total at %.1f (golden %.3f s)" f total)
        true
        (Float.abs (total -. Sim.Time.to_sec_f t.Cluster.Upgrade.total) < 0.01))
    golden sweep;
  let total_at f =
    Sim.Time.to_sec_f (List.assoc f (List.map (fun (f, t) -> (f, t.Cluster.Upgrade.total)) sweep))
  in
  let gain = 1.0 -. (total_at 0.8 /. total_at 0.0) in
  checkb "80% in-place gains ~80% (Fig 13)" true (gain > 0.75 && gain < 0.85)

(* --- Fleet exposure arithmetic --- *)

(* The vulnerability window integral: a host stops accruing exposure at
   its FIRST transplant (to the safe hypervisor); the transplant back
   after the patch adds nothing. *)
let first_transplants (o : Cluster.Fleet.outcome) =
  let tbl = Hashtbl.create 16 in
  let disclosed = ref Sim.Time.zero in
  Array.iter
    (fun ((t, ev) : Sim.Time.t * Cluster.Fleet.event) ->
      match ev with
      | Cluster.Fleet.Disclosed _ -> disclosed := t
      | Cluster.Fleet.Host_transplanted { host; _ } ->
        if not (Hashtbl.mem tbl host) then Hashtbl.add tbl host t
      | Cluster.Fleet.Patch_released | Cluster.Fleet.Host_patched _ -> ())
    o.Cluster.Fleet.events;
  (!disclosed, tbl)

let test_fleet_exposure_integral () =
  let o = Cluster.Fleet.simulate ~cve_id:"CVE-2016-6258" () in
  let disclosed, firsts = first_transplants o in
  checki "transplant out and back per host" (2 * Hashtbl.length firsts)
    o.Cluster.Fleet.transplants;
  let integral =
    Hashtbl.fold
      (fun _ t acc ->
        acc +. (Sim.Time.to_sec_f (Sim.Time.sub t disclosed) /. 3600.0))
      firsts 0.0
  in
  checkb "exposure = sum of first-transplant times" true
    (Float.abs (integral -. o.Cluster.Fleet.exposed_host_hours) < 1e-6);
  checkb "strictly below the no-transplant baseline" true
    (o.Cluster.Fleet.exposed_host_hours > 0.0
    && o.Cluster.Fleet.exposed_host_hours
       < o.Cluster.Fleet.baseline_exposed_host_hours)

let test_fleet_stagger_scales_exposure () =
  let at stagger =
    (Cluster.Fleet.simulate ~stagger ~cve_id:"CVE-2016-6258" ())
      .Cluster.Fleet.exposed_host_hours
  in
  let fast = at (Sim.Time.sec 60)
  and default_ =
    (Cluster.Fleet.simulate ~cve_id:"CVE-2016-6258" ())
      .Cluster.Fleet.exposed_host_hours
  and slow = at (Sim.Time.sec 3600) in
  checkb "tighter stagger strictly reduces exposure" true
    (fast < default_ && default_ < slow);
  (* Pinned values for the default 8-host scenario. *)
  checkb "default exposure pinned (4.8 host-hours)" true
    (Float.abs (default_ -. 4.8) < 0.05);
  checkb "60 s stagger pinned (0.6 host-hours)" true
    (Float.abs (fast -. 0.6) < 0.05);
  checkb "1 h stagger pinned (28.13 host-hours)" true
    (Float.abs (slow -. 28.1333) < 0.05)

let test_fleet_rejects_medium () =
  checkb "medium flaw: policy refuses" true
    (try
       ignore (Cluster.Fleet.simulate ~cve_id:"CVE-2015-8104" ());
       false
     with Hypertp.Error.Error e -> e.Hypertp.Error.site = "Fleet.simulate")

let suites =
  [
    ( "cluster.model",
      [
        Alcotest.test_case "shape" `Quick test_model_shape;
        Alcotest.test_case "inplace fraction" `Quick test_model_inplace_fraction;
        Alcotest.test_case "capacity ops" `Quick test_model_capacity;
        Alcotest.test_case "workload mix" `Quick test_model_workload_mix;
      ] );
    ( "cluster.btrplace",
      [
        Alcotest.test_case "full upgrade" `Quick test_plan_all_upgraded;
        Alcotest.test_case "migration counts (Fig 13)" `Quick
          test_plan_migration_counts_shape;
        Alcotest.test_case "compatible vms never move" `Quick
          test_plan_inplace_vms_never_move;
        Alcotest.test_case "inplace accounting" `Quick test_plan_inplace_vm_accounting;
        Alcotest.test_case "overfull rejected" `Quick test_plan_rejects_overfull;
      ] );
    ( "cluster.upgrade",
      [
        Alcotest.test_case "sweep shape (Fig 13)" `Quick test_upgrade_sweep_shape;
        Alcotest.test_case "sweep golden pin (Fig 13)" `Quick
          test_upgrade_sweep_golden;
        Alcotest.test_case "op timing" `Quick test_migration_op_time_sane;
      ] );
    ( "cluster.nova",
      [
        Alcotest.test_case "db tracks placement" `Quick test_nova_db_tracks_placement;
        Alcotest.test_case "host live upgrade" `Quick test_nova_host_live_upgrade;
        Alcotest.test_case "empty host reboot" `Quick test_nova_empty_host_plain_reboot;
        Alcotest.test_case "scheduler affinity filter" `Quick
          test_nova_scheduler_affinity;
        Alcotest.test_case "scheduler capacity" `Quick test_nova_scheduler_capacity;
        Alcotest.test_case "unknown host" `Quick test_nova_unknown_host;
      ] );
    ( "cluster.libvirt",
      [
        Alcotest.test_case "connect and manage (G2)" `Quick
          test_libvirt_connect_and_list;
        Alcotest.test_case "uri mismatch" `Quick test_libvirt_uri_mismatch;
        Alcotest.test_case "survives transplant" `Quick
          test_libvirt_survives_transplant;
      ] );
    ( "cluster.fleet",
      [
        Alcotest.test_case "vulnerability-window timeline (Fig 1)" `Quick
          test_fleet_timeline;
        Alcotest.test_case "exposure integral ends at transplant" `Quick
          test_fleet_exposure_integral;
        Alcotest.test_case "stagger scales exposure" `Quick
          test_fleet_stagger_scales_exposure;
        Alcotest.test_case "medium flaws rejected" `Quick test_fleet_rejects_medium;
      ] );
  ]
