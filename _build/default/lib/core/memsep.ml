type report = {
  guest_state_bytes : Hw.Units.bytes_;
  vmi_state_bytes : Hw.Units.bytes_;
  management_state_bytes : Hw.Units.bytes_;
  hv_state_bytes : Hw.Units.bytes_;
}

let of_host host =
  let (Hv.Host.Packed ((module H), hv, _)) = Hv.Host.running_exn host in
  let doms = H.domains hv in
  let guest =
    List.fold_left
      (fun acc d -> acc + Vmstate.Guest_mem.bytes (H.vm d).Vmstate.Vm.mem)
      0 doms
  in
  let vmi = List.fold_left (fun acc d -> acc + H.vmi_state_bytes hv d) 0 doms in
  {
    guest_state_bytes = guest;
    vmi_state_bytes = vmi;
    management_state_bytes = H.management_state_bytes hv;
    hv_state_bytes = H.hv_state_bytes hv;
  }

let translated_fraction r =
  let total =
    r.guest_state_bytes + r.vmi_state_bytes + r.management_state_bytes
    + r.hv_state_bytes
  in
  if total = 0 then 0.0
  else float_of_int r.vmi_state_bytes /. float_of_int total

let pp fmt r =
  Format.fprintf fmt
    "@[<v>guest state:      %a (kept in place)@,\
     VM_i state:       %a (translated via UISR)@,\
     management state: %a (rebuilt)@,\
     HV state:         %a (reinitialised)@,\
     translated fraction: %.4f%%@]"
    Hw.Units.pp_bytes r.guest_state_bytes Hw.Units.pp_bytes r.vmi_state_bytes
    Hw.Units.pp_bytes r.management_state_bytes Hw.Units.pp_bytes
    r.hv_state_bytes
    (100.0 *. translated_fraction r)
