(* Cluster-scale upgrade (section 5.4): plan a rolling hypervisor
   transplant of a 10-node cluster with BtrPlace-style planning, then
   demonstrate the OpenStack/Nova "host live upgrade" API on real
   simulated hosts.

   Run with: dune exec examples/cluster_upgrade.exe *)

let () =
  Format.printf "=== cluster upgrade ===@.@.";

  (* 1. Planner-level sweep (the Fig. 13 experiment). *)
  Format.printf "--- 10 nodes x 10 VMs, varying InPlaceTP-compatible share ---@.";
  let sweep =
    Cluster.Upgrade.sweep ~fractions:[ 0.0; 0.2; 0.4; 0.6; 0.8 ] ()
  in
  let baseline =
    match sweep with
    | (_, t0) :: _ -> Sim.Time.to_sec_f t0.Cluster.Upgrade.total
    | [] -> assert false
  in
  List.iter
    (fun (f, t) ->
      let gain =
        100.0 *. (1.0 -. (Sim.Time.to_sec_f t.Cluster.Upgrade.total /. baseline))
      in
      Format.printf "  %2.0f%% in-place: %a  (time gain %.0f%%)@." (100.0 *. f)
        Cluster.Upgrade.pp_timing t gain)
    sweep;
  Format.printf "@.";

  (* 2. The Nova path on real hosts: three M2-class hosts, upgrade one.
     VM 'web1' is marked migration-only; the rest ride the kexec. *)
  Format.printf "--- Nova host live upgrade on real hosts ---@.";
  let mk_host i vms =
    Hypertp.Api.provision
      ~seed:(Int64.of_int (100 + i))
      ~name:(Printf.sprintf "compute-%d" i)
      ~machine:(Hw.Machine.m2 ()) ~hv:Hv.Kind.Xen vms
  in
  let h0 =
    mk_host 0
      [
        Vmstate.Vm.config ~name:"web1" ~inplace_compatible:false
          ~workload:Vmstate.Vm.Wl_streaming ();
        Vmstate.Vm.config ~name:"db1" ~vcpus:2 ~ram:(Hw.Units.gib 2)
          ~workload:Vmstate.Vm.Wl_mysql ();
        Vmstate.Vm.config ~name:"worker1" ~workload:(Vmstate.Vm.Wl_spec "xz") ();
      ]
  in
  let h1 = mk_host 1 [ Vmstate.Vm.config ~name:"other1" () ] in
  let h2 = mk_host 2 [] in
  let nova = Cluster.Nova.create () in
  List.iter (Cluster.Nova.add_host nova) [ h0; h1; h2 ];
  Format.printf "before: @.";
  List.iter
    (fun (vm, host) -> Format.printf "  %s on %s@." vm host)
    (Cluster.Nova.instances nova);

  let report =
    Cluster.Nova.host_live_upgrade nova ~host:"compute-0" ~target:Hv.Kind.Kvm
  in
  Format.printf "@.upgrade of %s:@." report.host;
  List.iter
    (fun (vm, dst) -> Format.printf "  evacuated %s -> %s (MigrationTP)@." vm dst)
    report.migrated_away;
  (match report.inplace with
  | Some r ->
    Format.printf "  %d VMs transplanted in place, downtime %a@."
      r.Hypertp.Inplace.vm_count Sim.Time.pp
      (Hypertp.Phases.downtime r.phases)
  | None -> Format.printf "  host was empty: plain reboot@.");

  Format.printf "@.after:@.";
  List.iter
    (fun (vm, host) -> Format.printf "  %s on %s@." vm host)
    (Cluster.Nova.instances nova);
  assert (Cluster.Nova.db_consistent nova);
  Format.printf "@.Nova database consistent; compute-0 now runs %s.@."
    (Hv.Host.hypervisor_name h0)
