test/test_extras.ml: Alcotest Cluster Hashtbl Hv Hw Hypertp Int64 Kexec List Option Sim String Vmstate Xenhv
