type t = {
  bandwidth_gbps : float;
  latency : Sim.Time.t;
  efficiency : float;
  init_time : Sim.Time.t;
}

let create ~bandwidth_gbps ?(latency = Sim.Time.us 100) ?(efficiency = 0.95)
    ?(init_time = Sim.Time.zero) () =
  if bandwidth_gbps <= 0.0 then invalid_arg "Nic.create: non-positive bandwidth";
  if efficiency <= 0.0 || efficiency > 1.0 then
    invalid_arg "Nic.create: efficiency out of (0,1]";
  { bandwidth_gbps; latency; efficiency; init_time }

let bandwidth_gbps t = t.bandwidth_gbps
let init_time t = t.init_time
let latency t = t.latency

let throughput_bytes_per_sec t ~streams =
  if streams <= 0 then invalid_arg "Nic.throughput: non-positive streams";
  t.bandwidth_gbps *. 1e9 /. 8.0 *. t.efficiency /. float_of_int streams

let transfer_time t ~streams bytes =
  if bytes < 0 then invalid_arg "Nic.transfer_time: negative size";
  let secs = float_of_int bytes /. throughput_bytes_per_sec t ~streams in
  Sim.Time.add t.latency (Sim.Time.of_sec_f secs)

let pp fmt t =
  Format.fprintf fmt "%.0fGbps (eff %.0f%%, init %a)" t.bandwidth_gbps
    (100.0 *. t.efficiency) Sim.Time.pp t.init_time
