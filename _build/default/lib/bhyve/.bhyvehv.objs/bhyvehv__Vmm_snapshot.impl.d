lib/bhyve/vmm_snapshot.ml: Format Int32 List Reader Uisr Vmstate Writer
